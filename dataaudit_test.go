package dataaudit_test

// Integration tests exercising the public facade end to end — the same
// surface the examples and a downstream adopter would use.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dataaudit"
)

func facadeSchema(t testing.TB) *dataaudit.Schema {
	t.Helper()
	return dataaudit.MustSchema(
		dataaudit.NewNominal("MODEL", "sedan", "wagon", "coupe"),
		dataaudit.NewNominal("ENGINE", "E20", "E30", "D25"),
		dataaudit.NewNominal("FUEL", "petrol", "diesel"),
		dataaudit.NewNumeric("KM", 0, 300000),
	)
}

func facadeRules(t testing.TB, schema *dataaudit.Schema) []dataaudit.Rule {
	t.Helper()
	return []dataaudit.Rule{
		{
			Premise:    dataaudit.Atom{Kind: dataaudit.EqConst, A: 0, Val: schema.Attr(0).MustNominal("coupe")},
			Conclusion: dataaudit.Atom{Kind: dataaudit.EqConst, A: 1, Val: schema.Attr(1).MustNominal("E30")},
		},
		{
			Premise:    dataaudit.Atom{Kind: dataaudit.EqConst, A: 1, Val: schema.Attr(1).MustNominal("D25")},
			Conclusion: dataaudit.Atom{Kind: dataaudit.EqConst, A: 2, Val: schema.Attr(2).MustNominal("diesel")},
		},
	}
}

func TestEndToEndThroughFacade(t *testing.T) {
	schema := facadeSchema(t)
	rules := facadeRules(t, schema)

	ok, err := dataaudit.NaturalRuleSet(schema, rules)
	if err != nil || !ok {
		t.Fatalf("rule set not natural: %v", err)
	}

	rng := rand.New(rand.NewSource(5))
	clean, err := dataaudit.GenerateData(schema, rules, dataaudit.DataGenParams{NumRecords: 3000}, rng)
	if err != nil {
		t.Fatal(err)
	}

	dirty, logbook := dataaudit.Pollute(clean, dataaudit.PollutionPlan{
		Cell: []dataaudit.ConfiguredPolluter{
			{Prob: 0.02, P: &dataaudit.WrongValuePolluter{}},
			{Prob: 0.01, P: &dataaudit.NullValuePolluter{}},
		},
	}, rng)
	if len(logbook.Events) == 0 {
		t.Fatal("no corruption happened")
	}

	model, err := dataaudit.Induce(dirty, dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := model.AuditTable(dirty)
	sus := res.Suspicious()
	if len(sus) == 0 {
		t.Fatal("audit flagged nothing despite 3% corruption on strong structure")
	}
	truth := logbook.CorruptedIDs()
	hits := 0
	for _, rep := range sus {
		if truth[rep.ID] {
			hits++
		}
	}
	if float64(hits)/float64(len(sus)) < 0.9 {
		t.Fatalf("precision collapsed: %d of %d flagged are real", hits, len(sus))
	}
}

func TestFacadePipelineAndMeasures(t *testing.T) {
	cfg := dataaudit.BaseConfig(99)
	cfg.DataGen.NumRecords = 1200
	cfg.RuleGen.NumRules = 15
	res, err := dataaudit.RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Specificity() < 0.95 {
		t.Fatalf("specificity = %g", res.Specificity())
	}
	if res.Confusion.Total() != res.NumDirty {
		t.Fatalf("confusion incomplete")
	}
}

func TestFacadeModelPersistence(t *testing.T) {
	schema := facadeSchema(t)
	rules := facadeRules(t, schema)
	rng := rand.New(rand.NewSource(6))
	clean, err := dataaudit.GenerateData(schema, rules, dataaudit.DataGenParams{NumRecords: 1500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	model, err := dataaudit.Induce(clean, dataaudit.AuditOptions{
		MinConfidence: 0.8,
		Filter:        dataaudit.FilterReachableOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := dataaudit.SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataaudit.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	// A record violating rule 1 must be flagged identically by both.
	row := clean.Row(0)
	row[0] = schema.Attr(0).MustNominal("coupe")
	row[1] = schema.Attr(1).MustNominal("E20")
	a, b := model.CheckRow(row), loaded.CheckRow(row)
	if !a.Suspicious || !b.Suspicious || a.ErrorConf != b.ErrorConf {
		t.Fatalf("persistence changed verdicts: %+v vs %+v", a.ErrorConf, b.ErrorConf)
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	schema := facadeSchema(t)
	rng := rand.New(rand.NewSource(7))
	table, err := dataaudit.GenerateData(schema, nil, dataaudit.DataGenParams{NumRecords: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := dataaudit.WriteCSVFile(path, table); err != nil {
		t.Fatal(err)
	}
	back, err := dataaudit.ReadCSVFile(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != table.NumRows() {
		t.Fatalf("rows changed through CSV")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeQUIS(t *testing.T) {
	if testing.Short() {
		t.Skip("QUIS generation is heavyweight")
	}
	sample, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{NumRecords: 30000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sample.Data.NumRows() != 30000 {
		t.Fatalf("rows = %d", sample.Data.NumRows())
	}
	if dataaudit.QUISSchema().Len() != 8 {
		t.Fatalf("QUIS schema must have 8 attributes")
	}
}

func TestFacadeStatsHelpers(t *testing.T) {
	if dataaudit.ErrorConfidence(1, 0, 16118, 0.95) < 0.999 {
		t.Fatalf("the paper's §6.2 confidence regime must be reachable")
	}
	if dataaudit.LeftBound(0.5, 100, 0.95) >= dataaudit.RightBound(0.5, 100, 0.95) {
		t.Fatalf("bounds inverted")
	}
	if dataaudit.MinInstForConfidence(0.8, 0.95) < 2 {
		t.Fatalf("minInst implausible")
	}
}
