#!/usr/bin/env bash
# bench_gate.sh — the CI perf-regression gate for the scoring core.
#
# Measures the current tree with cmd/benchcore (or takes a pre-measured
# candidate via $CANDIDATE) and compares it against the committed
# baseline BENCH_core.json. Exits non-zero when the candidate regresses:
# more than $MAX_NS_REGRESS percent slower per row (default 15), or any
# allocs/row increase on the steady-state scoring path.
#
#   ./scripts/bench_gate.sh                      # measure + gate
#   CANDIDATE=new.json ./scripts/bench_gate.sh   # gate a saved measurement
#   BASELINE=other.json MAX_NS_REGRESS=5 ./scripts/bench_gate.sh
#
# To refresh the baseline after an intentional change (run on the same
# machine class as CI so ns/row is comparable):
#
#   go run ./cmd/benchcore -out BENCH_core.json
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${BASELINE:-BENCH_core.json}
candidate=${CANDIDATE:-}
max_ns_regress=${MAX_NS_REGRESS:-15}

if [ ! -f "$baseline" ]; then
  echo "bench_gate: baseline $baseline not found (generate with: go run ./cmd/benchcore -out $baseline)" >&2
  exit 2
fi

if [ -z "$candidate" ]; then
  candidate=$(mktemp -t bench_core_candidate.XXXXXX)
  trap 'rm -f "$candidate"' EXIT
  echo "bench_gate: measuring candidate (go run ./cmd/benchcore)" >&2
  go run ./cmd/benchcore -out "$candidate"
fi

exec go run ./cmd/benchcore -gate "$baseline" -candidate "$candidate" -max-ns-regress "$max_ns_regress"
