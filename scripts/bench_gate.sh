#!/usr/bin/env bash
# bench_gate.sh — the CI perf-regression gate for the scoring core.
#
# Measures the current tree with cmd/benchcore (or takes a pre-measured
# candidate via $CANDIDATE) and gates it in two halves:
#
#   1. ns/row (machine-sensitive) — hermetic: the merge-base revision is
#      measured with the same tool on the same machine in the same job
#      (via a temporary git worktree), and the candidate is compared
#      against that number. No cross-machine wall-clock comparison ever
#      happens, so the check cannot flake on a different runner class.
#   2. allocs/row, steady-state zero-alloc, suspicious-count determinism
#      (machine-exact) — against the committed baseline BENCH_core.json,
#      which remains the durable record of the allocation contract — plus
#      the reinduce speedup check (incremental re-induction must stay at
#      least 3x faster than a full induction), which compares the
#      candidate against itself and so is machine-free.
#
# When no merge base can be measured (shallow clone, no git, HEAD == base,
# or HERMETIC=0), the gate falls back to the committed baseline for every
# check — benchcore prints its hardware-mismatch warning in that case.
#
#   ./scripts/bench_gate.sh                      # measure + gate
#   CANDIDATE=new.json ./scripts/bench_gate.sh   # gate a saved measurement
#   BASE_JSON=base.json ./scripts/bench_gate.sh  # pre-measured merge base
#   MERGE_BASE=origin/main HERMETIC=1 MAX_NS_REGRESS=5 ./scripts/bench_gate.sh
#
# To refresh the committed baseline after an intentional change:
#
#   go run ./cmd/benchcore -out BENCH_core.json
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${BASELINE:-BENCH_core.json}
candidate=${CANDIDATE:-}
base_json=${BASE_JSON:-}
max_ns_regress=${MAX_NS_REGRESS:-15}
hermetic=${HERMETIC:-1}

if [ ! -f "$baseline" ]; then
  echo "bench_gate: baseline $baseline not found (generate with: go run ./cmd/benchcore -out $baseline)" >&2
  exit 2
fi

tmpdir=$(mktemp -d -t bench_gate.XXXXXX)
cleanup() {
  if [ -n "${worktree:-}" ]; then
    git worktree remove --force "$worktree" >/dev/null 2>&1 || true
  fi
  rm -rf "$tmpdir"
}
trap cleanup EXIT

if [ -z "$candidate" ]; then
  candidate="$tmpdir/candidate.json"
  echo "bench_gate: measuring candidate (go run ./cmd/benchcore)" >&2
  go run ./cmd/benchcore -out "$candidate"
fi

# Resolve and measure the merge base for the hermetic ns/row comparison,
# unless a pre-measured $BASE_JSON was handed in.
if [ -z "$base_json" ] && [ "$hermetic" != "0" ] && git rev-parse --git-dir >/dev/null 2>&1; then
  base_ref=${MERGE_BASE:-}
  if [ -z "$base_ref" ]; then
    for ref in origin/main origin/master main master; do
      if git rev-parse --verify -q "$ref^{commit}" >/dev/null 2>&1; then
        base_ref=$(git merge-base HEAD "$ref" 2>/dev/null) && break || base_ref=""
      fi
    done
  fi
  if [ -n "$base_ref" ] && [ "$(git rev-parse "$base_ref^{commit}")" != "$(git rev-parse HEAD)" ]; then
    worktree="$tmpdir/base-tree"
    echo "bench_gate: measuring merge base $(git rev-parse --short "$base_ref") on this machine" >&2
    if git worktree add --detach "$worktree" "$base_ref" >/dev/null 2>&1 \
       && (cd "$worktree" && go run ./cmd/benchcore -out "$tmpdir/base.json"); then
      base_json="$tmpdir/base.json"
    else
      echo "bench_gate: WARNING: merge-base measurement failed; falling back to the committed baseline for ns/row" >&2
    fi
  fi
fi

# No exec below: the EXIT trap must still run to remove the worktree and
# tmpdir (set -e propagates the gate's failure status).
if [ -n "$base_json" ]; then
  echo "bench_gate: ns/row gate vs same-machine merge base ($base_json)" >&2
  go run ./cmd/benchcore -gate "$base_json" -candidate "$candidate" \
    -checks ns -max-ns-regress "$max_ns_regress"
  echo "bench_gate: alloc/determinism/reinduce gate vs committed $baseline" >&2
  go run ./cmd/benchcore -gate "$baseline" -candidate "$candidate" \
    -checks alloc,suspicious,reinduce
else
  echo "bench_gate: no merge-base measurement available; gating every check vs committed $baseline" >&2
  go run ./cmd/benchcore -gate "$baseline" -candidate "$candidate" \
    -checks all -max-ns-regress "$max_ns_regress"
fi
