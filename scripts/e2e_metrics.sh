#!/usr/bin/env bash
# e2e_metrics.sh — end-to-end observability check. Boots a real auditd
# on a loopback port, drives the full induce → audit → drift →
# re-induction cycle over the HTTP API with curl, then scrapes
# GET /metrics and fails on a malformed exposition (cmd/promcheck, the
# same format oracle the unit tests use) or on any advertised series
# missing or carrying the wrong value. Needs only curl and the go
# toolchain; run from anywhere inside the repo. CI runs it as the e2e
# job.
set -euo pipefail
cd "$(dirname "$0")/.."

# The shared harness installs the cleanup trap the moment it is sourced —
# before the first boot — so no assertion failure can leak a process.
source scripts/lib_e2e.sh
WORK="$E2E_WORK"

PORT="${E2E_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"

# --- fixture: rule-governed clean table + a heavily polluted batch ----
cat > "$WORK/engine.schema" <<'EOF'
BRV nominal 404,501,600
GBM nominal G1,G2,G3
KBM nominal 01,02,03
KM  numeric 0 200000
EOF
go run ./cmd/tdgen -schema "$WORK/engine.schema" -records 4000 -rules 20 \
    -seed 7 -out "$WORK/clean.csv"
# Half the records corrupted: the dirty batch's suspicious rate has to
# clear the drift threshold over the clean-trained baseline. No
# duplication/deletion so the batch keeps a predictable shape.
go run ./cmd/pollute -schema "$WORK/engine.schema" -in "$WORK/clean.csv" \
    -out "$WORK/dirty.csv" -wrong 0.5 -null 0.1 -dup 0 -del 0 -seed 42

# --- boot auditd ------------------------------------------------------
go build -o "$WORK/auditd" ./cmd/auditd
# -null-delta 0.01: the polluter nulls one random attribute per hit
# record, so the dirty window's per-attribute null rates sit near
# null-prob/num-attrs ≈ 0.025 — above 0.01, so completeness drift latches.
"$WORK/auditd" -addr "127.0.0.1:$PORT" -dir "$WORK/registry" \
    -monitor-window 1000 -drift-delta 0.05 -null-delta 0.01 -auto-reinduce \
    -reservoir-rows 2048 &
e2e_register_pid $!

e2e_wait_healthy "$BASE" auditd

# --- induce → audit → drift ------------------------------------------
curl -fsS -F name=e2e -F schema=@"$WORK/engine.schema" \
    -F csv=@"$WORK/clean.csv" -F 'options={"minConfidence":0.8}' \
    "$BASE/v1/models" >/dev/null
audit() {
    curl -fsS -H 'Content-Type: text/csv' --data-binary @"$1" \
        "$BASE/v1/models/e2e/audit" >/dev/null
}
audit "$WORK/clean.csv"   # window 1: establishes the MinWindows warm-up
audit "$WORK/clean.csv"   # window 2
audit "$WORK/dirty.csv"   # window 3: suspicious-rate excess fires drift

# The re-induction runs in a background worker; wait for its outcome
# counter rather than the published version to avoid racing the scrape.
for i in $(seq 1 120); do
    if curl -fsS "$BASE/metrics" | grep -qF \
        'dataaudit_reinductions_total{model="e2e",outcome="reinduced"} 1'; then
        break
    fi
    if [ "$i" = 120 ]; then
        echo "e2e_metrics: drift never produced a re-induction; last scrape:" >&2
        curl -fsS "$BASE/metrics" >&2 || true
        exit 1
    fi
    sleep 0.5
done

# --- scrape and verify ------------------------------------------------
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
go run ./cmd/promcheck "$WORK/metrics.txt"

fail=0
require() {
    if ! grep -qF -- "$1" "$WORK/metrics.txt"; then
        echo "e2e_metrics: MISSING series: $1" >&2
        fail=1
    fi
}
# Scoring and monitoring state for the driven model.
require 'dataaudit_rows_scored_total{model="e2e"}'
require 'dataaudit_rows_suspicious_total{model="e2e"}'
require 'dataaudit_attr_deviations_total{model="e2e",attr="GBM"}'
require 'dataaudit_attr_suspicious_total{model="e2e",attr="GBM"}'
require 'dataaudit_monitor_windows_sealed_total{model="e2e"} 3'
require 'dataaudit_window_suspicious_rate{model="e2e"}'
require 'dataaudit_baseline_suspicious_rate{model="e2e"}'
require 'dataaudit_drift_delta{model="e2e"}'
require 'dataaudit_drift_page_hinkley{model="e2e"}'
require 'dataaudit_drift_active{model="e2e"} 0'   # cleared by the successor swap
# Completeness: the dirty batch nulls ~2.5% of each attribute's cells, so
# the null counters fill and the window-3 null rates latch the (purely
# observational) completeness-drift counter.
require 'dataaudit_attr_nulls_total{model="e2e",attr="GBM"}'
require 'dataaudit_attr_null_rate{model="e2e",attr="GBM"}'
require 'dataaudit_attr_null_drift_total{model="e2e",attr="GBM"} 1'
require 'dataaudit_reservoir_rows{model="e2e"}'
# The closed loop: drift produced exactly one successful re-induction.
require 'dataaudit_reinductions_total{model="e2e",outcome="reinduced"} 1'
require 'dataaudit_reinduction_seconds_count 1'
# Route instrumentation: the three audit calls above, with latency.
require 'dataaudit_http_requests_total{route="/v1/models/{name}/audit",method="POST",code="200"} 3'
require 'dataaudit_http_request_seconds_bucket{route="/v1/models/{name}/audit",le='
# Process- and registry-level series.
require 'dataaudit_registry_cache_hits_total'
require 'dataaudit_registry_cache_misses_total'
require 'dataaudit_registry_cache_resident'
require 'dataaudit_uptime_seconds'
require 'dataaudit_build_info{version='

if [ "$fail" -ne 0 ]; then
    echo "e2e_metrics: FAILED; full scrape:" >&2
    cat "$WORK/metrics.txt" >&2
    exit 1
fi

families=$(grep -c '^# TYPE ' "$WORK/metrics.txt")
if [ "$families" -lt 12 ]; then
    echo "e2e_metrics: only $families metric families exported, want >= 12" >&2
    exit 1
fi
echo "e2e_metrics: OK ($families metric families, drift loop closed)"
