#!/usr/bin/env bash
# check_coverage.sh — enforces per-package statement-coverage floors on
# the scoring core.
#
#   go test -coverprofile=coverage.out ./...
#   ./scripts/check_coverage.sh coverage.out
#
# The floor applies to the packages whose correctness the audit results
# depend on most directly; override with FLOOR / PACKAGES:
#
#   FLOOR=80 PACKAGES="dataaudit/internal/audit" ./scripts/check_coverage.sh
set -euo pipefail

profile=${1:-coverage.out}
floor=${FLOOR:-70}
packages=${PACKAGES:-"dataaudit/internal/audit dataaudit/internal/mlcore dataaudit/internal/monitor dataaudit/internal/obs dataaudit/internal/dataset dataaudit/internal/shard dataaudit/internal/assoc dataaudit/internal/dedup"}

if [ ! -f "$profile" ]; then
  echo "check_coverage: profile $profile not found (run: go test -coverprofile=$profile ./...)" >&2
  exit 2
fi

status=0
for pkg in $packages; do
  # Coverprofile lines: <file>:<positions> <numStatements> <hitCount>.
  # Statement-weighted coverage per package = covered stmts / total stmts.
  # The file's directory must equal the package exactly — a bare prefix
  # match would fold test-less subpackages (e.g. mlcore/conform, present
  # with zero counts since Go 1.22 lists untested packages in ./...
  # profiles) into their parent's floor.
  pct=$(awk -v pkg="$pkg" '
    NR > 1 {
      file = $1
      sub(/:.*/, "", file)
      dir = file
      sub(/\/[^\/]*$/, "", dir)
      if (dir == pkg) {
        total += $2
        if ($3 > 0) covered += $2
      }
    }
    END {
      if (total == 0) print "-1"
      else printf "%.1f", covered / total * 100
    }' "$profile")
  if [ "$pct" = "-1" ]; then
    echo "check_coverage: FAIL: $pkg has no statements in $profile" >&2
    status=1
    continue
  fi
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "check_coverage: FAIL: $pkg at ${pct}% (floor ${floor}%)" >&2
    status=1
  else
    echo "check_coverage: $pkg at ${pct}% (floor ${floor}%)"
  fi
done
exit $status
