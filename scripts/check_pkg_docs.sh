#!/bin/sh
# check_pkg_docs.sh — fail when any package in the module lacks a package
# (doc) comment: a //-comment block immediately preceding the package
# clause in at least one non-test file of the package. Run from the repo
# root; the CI docs job runs it after gofmt and go vet.
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    has_doc=0
    for f in "$dir"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        [ -e "$f" ] || continue
        if awk '
            /^package / { if (prev ~ /^\/\//) found = 1; exit }
            { prev = $0 }
            END { exit !found }
        ' "$f"; then
            has_doc=1
            break
        fi
    done
    if [ "$has_doc" -eq 0 ]; then
        echo "missing package comment: $dir" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_pkg_docs: add a doc comment (// Package <name> ... or // Command <name> ...) to the packages above" >&2
    exit 1
fi
echo "check_pkg_docs: every package documented"
