#!/usr/bin/env bash
# e2e_shard.sh — multi-process differential check for coordinator mode.
# Boots 3 worker auditd processes plus 1 coordinator auditd on loopback
# ports, induces a model on the coordinator from a 55k-row QUIS sample,
# audits the polluted batch through the coordinator both sharded and
# in-process (?local=1), and diffs the two reports byte-for-byte after
# stripping only timing/topology fields. It then re-runs the sharded
# audit with cmd/auditshard while killing one worker mid-stream and
# asserts the merged gob result is still byte-identical to the
# single-node oracle. Needs curl and jq plus the go toolchain; run from
# anywhere inside the repo. CI runs it as the shard-e2e job.
set -euo pipefail
cd "$(dirname "$0")/.."

# The shared harness installs the cleanup trap the moment it is sourced —
# before the first boot — so no assertion failure can leak a process.
source scripts/lib_e2e.sh
WORK="$E2E_WORK"

PORT="${E2E_SHARD_PORT:-18180}"   # coordinator; workers take PORT+1..+3
BASE="http://127.0.0.1:$PORT"
ROWS="${E2E_SHARD_ROWS:-55000}"

# --- fixture: clean QUIS sample + polluted batch ----------------------
go run ./cmd/tdgen -quis -records "$ROWS" -seed 2003 \
    -out "$WORK/clean.csv" -schemaout "$WORK/quis.schema"
go run ./cmd/pollute -schema "$WORK/quis.schema" -in "$WORK/clean.csv" \
    -out "$WORK/dirty.csv" -wrong 0.02 -null 0.01 -dup 0 -del 0 -seed 42

# --- boot 3 workers + 1 coordinator -----------------------------------
go build -o "$WORK/auditd" ./cmd/auditd
go build -o "$WORK/auditshard" ./cmd/auditshard

WORKER_URLS=""
declare -a WORKER_PIDS=()
for i in 1 2 3; do
    wport=$((PORT + i))
    "$WORK/auditd" -addr "127.0.0.1:$wport" -dir "$WORK/w$i" \
        -metrics=false -dashboard=false &
    pid=$!
    e2e_register_pid "$pid"
    WORKER_PIDS+=("$pid")
    WORKER_URLS="$WORKER_URLS,http://127.0.0.1:$wport"
done
WORKER_URLS="${WORKER_URLS#,}"

"$WORK/auditd" -addr "127.0.0.1:$PORT" -dir "$WORK/registry" \
    -coordinator "$WORKER_URLS" -metrics=false -dashboard=false &
e2e_register_pid $!

for i in 0 1 2 3; do
    e2e_wait_healthy "http://127.0.0.1:$((PORT + i))" "auditd :$((PORT + i))"
done

# --- induce on the coordinator ----------------------------------------
curl -fsS -F name=e2e -F schema=@"$WORK/quis.schema" \
    -F csv=@"$WORK/clean.csv" -F 'options={"minConfidence":0.8}' \
    "$BASE/v1/models" >/dev/null

# --- differential: sharded vs in-process over the same HTTP route ------
audit_json() { # out-file extra-query
    curl -fsS -H 'Content-Type: text/csv' --data-binary @"$WORK/dirty.csv" \
        "$BASE/v1/models/e2e/audit$2" > "$1"
}
audit_json "$WORK/sharded.json" ""
audit_json "$WORK/local.json"   "?local=1"

if [ "$(jq -r .sharded "$WORK/sharded.json")" != "true" ]; then
    echo "e2e_shard: coordinator response not flagged sharded" >&2
    exit 1
fi
if [ "$(jq -r .sharded "$WORK/local.json")" = "true" ]; then
    echo "e2e_shard: ?local=1 response flagged sharded" >&2
    exit 1
fi
SUS=$(jq -r .numSuspicious "$WORK/sharded.json")
if [ "$SUS" -le 0 ]; then
    echo "e2e_shard: polluted batch produced no suspicious records" >&2
    exit 1
fi

# Byte-for-byte identical after stripping only wall-time and topology.
norm() { jq -S 'del(.checkMillis, .workers, .sharded, .shardWorkers)' "$1"; }
if ! diff <(norm "$WORK/sharded.json") <(norm "$WORK/local.json") > "$WORK/report.diff"; then
    echo "e2e_shard: sharded and in-process reports diverge:" >&2
    head -50 "$WORK/report.diff" >&2
    exit 1
fi
echo "e2e_shard: sharded == local over ${ROWS} rows ($SUS suspicious)"

# --- worker death mid-stream ------------------------------------------
# The single-node oracle, persisted as a CheckTime-zeroed gob.
"$WORK/auditshard" -dir "$WORK/registry" -name e2e -in "$WORK/dirty.csv" \
    -local -out "$WORK/oracle.gob" >/dev/null

# Sharded run with many small shards so the kill lands mid-audit; the
# coordinator must reassign the dead worker's shards and still produce
# byte-identical output.
"$WORK/auditshard" -dir "$WORK/registry" -name e2e -in "$WORK/dirty.csv" \
    -workers "$WORKER_URLS" -shards 12 -out "$WORK/killed.gob" >/dev/null &
AUDITSHARD_PID=$!
sleep 1
kill "${WORKER_PIDS[1]}" 2>/dev/null || true
if ! wait "$AUDITSHARD_PID"; then
    echo "e2e_shard: sharded audit failed after a worker died" >&2
    exit 1
fi
if ! cmp "$WORK/oracle.gob" "$WORK/killed.gob"; then
    echo "e2e_shard: result after worker death differs from single-node oracle" >&2
    exit 1
fi
echo "e2e_shard: OK (worker killed mid-stream, output still byte-identical)"
