# lib_e2e.sh — shared harness for the e2e scripts. Source this FIRST,
# before booting any server process: it creates the scratch directory and
# installs the cleanup trap immediately, so a failed assertion anywhere in
# the sourcing script can never leak an auditd process or scratch files.
#
#   source "$(dirname "$0")/lib_e2e.sh"
#   ... build fixture under "$E2E_WORK" ...
#   some-server -addr ... &
#   e2e_register_pid $!
#   e2e_wait_healthy "http://127.0.0.1:8080" some-server
#
# Requires bash and curl.

E2E_WORK="$(mktemp -d)"
E2E_PIDS=()

e2e_cleanup() {
    local pid
    for pid in ${E2E_PIDS[@]+"${E2E_PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$E2E_WORK"
}
trap e2e_cleanup EXIT

# e2e_register_pid PID — ensure the process is killed on exit.
e2e_register_pid() {
    E2E_PIDS+=("$1")
}

# e2e_wait_healthy BASE_URL [NAME] — poll GET /healthz for up to 10s.
e2e_wait_healthy() {
    local base="$1" name="${2:-server}" i
    for i in $(seq 1 50); do
        curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "e2e: $name never became healthy on $base" >&2
    return 1
}
