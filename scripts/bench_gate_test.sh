#!/usr/bin/env bash
# bench_gate_test.sh — proves the perf gate actually gates.
#
# Derives synthetic candidates from the committed baseline and asserts:
#   1. an identical candidate passes;
#   2. a 20% ns/row regression fails (the gate's tolerance is 15%);
#   3. an allocation on the steady-state path fails.
#
# Requires jq. Run from anywhere: ./scripts/bench_gate_test.sh
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${BASELINE:-BENCH_core.json}
command -v jq >/dev/null || { echo "bench_gate_test: jq is required" >&2; exit 2; }
[ -f "$baseline" ] || { echo "bench_gate_test: baseline $baseline not found" >&2; exit 2; }

tmpdir=$(mktemp -d -t bench_gate_test.XXXXXX)
trap 'rm -rf "$tmpdir"' EXIT

fail() { echo "bench_gate_test: FAIL: $*" >&2; exit 1; }

# 1. Identity: the baseline gated against itself must pass.
CANDIDATE="$baseline" ./scripts/bench_gate.sh >/dev/null 2>&1 \
  || fail "identical candidate was rejected"

# 2. Synthetic 20% ns/row regression must fail.
jq '.runs |= map(.nsPerRow = .nsPerRow * 1.2)' "$baseline" > "$tmpdir/slow.json"
if CANDIDATE="$tmpdir/slow.json" ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a 20% ns/row regression passed the gate"
fi

# 3. Any allocation on the steady-state path must fail.
jq '.runs |= map(if .steadyState then .allocsPerRow = 0.01 else . end)' \
  "$baseline" > "$tmpdir/alloc.json"
if CANDIDATE="$tmpdir/alloc.json" ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a steady-state allocation passed the gate"
fi

echo "bench_gate_test: PASS (identity accepted; 20% regression and steady-state allocation rejected)"
