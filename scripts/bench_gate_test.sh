#!/usr/bin/env bash
# bench_gate_test.sh — proves the perf gate actually gates.
#
# Derives synthetic candidates from the committed baseline and asserts,
# on the fallback (non-hermetic) path:
#   1. an identical candidate passes;
#   2. a 20% ns/row regression fails (the gate's tolerance is 15%);
#   3. an allocation on the steady-state path fails;
# and on the hermetic path (pre-measured merge base via $BASE_JSON):
#   4. an identical candidate passes both halves;
#   5. a 20% ns/row regression vs the same-machine merge base fails even
#      when the committed baseline is slow enough to mask it;
#   6. a steady-state allocation fails against the committed baseline
#      even when the merge-base measurement carries the same leak (the
#      allocation contract is anchored to the committed record);
#   7. a suspicious-count drift vs the committed baseline fails on the
#      hermetic path;
#   8. an eroded incremental re-induction speedup (reinduce ns/row pushed
#      within 2x of induce) fails on both paths — the check is
#      within-candidate, so no reference can mask it.
#
# It also proves the shardscale gate (cmd/benchshard -gate) gates:
#   9.  a super-linear candidate on a big-enough machine passes;
#   10. a sub-linear candidate on a big-enough machine fails;
#   11. a sub-linear candidate on a machine with fewer cores than
#       processes warns and skips (exit 0) instead of failing — the
#       scaling contract is only enforceable when every process can
#       actually run in parallel.
#
# Requires jq. Run from anywhere: ./scripts/bench_gate_test.sh
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${BASELINE:-BENCH_core.json}
command -v jq >/dev/null || { echo "bench_gate_test: jq is required" >&2; exit 2; }
[ -f "$baseline" ] || { echo "bench_gate_test: baseline $baseline not found" >&2; exit 2; }

tmpdir=$(mktemp -d -t bench_gate_test.XXXXXX)
trap 'rm -rf "$tmpdir"' EXIT

fail() { echo "bench_gate_test: FAIL: $*" >&2; exit 1; }

# --- fallback path (HERMETIC=0: every check vs the committed baseline) --

# 1. Identity: the baseline gated against itself must pass.
HERMETIC=0 CANDIDATE="$baseline" ./scripts/bench_gate.sh >/dev/null 2>&1 \
  || fail "identical candidate was rejected (fallback path)"

# 2. Synthetic 20% ns/row regression must fail.
jq '.runs |= map(.nsPerRow = .nsPerRow * 1.2)' "$baseline" > "$tmpdir/slow.json"
if HERMETIC=0 CANDIDATE="$tmpdir/slow.json" ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a 20% ns/row regression passed the gate (fallback path)"
fi

# 3. Any allocation on the steady-state path must fail.
jq '.runs |= map(if .steadyState then .allocsPerRow = 0.01 else . end)' \
  "$baseline" > "$tmpdir/alloc.json"
if HERMETIC=0 CANDIDATE="$tmpdir/alloc.json" ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a steady-state allocation passed the gate (fallback path)"
fi

# --- hermetic path ($BASE_JSON: ns vs merge base, rest vs committed) ----

# 4. Identity against both references must pass.
BASE_JSON="$baseline" CANDIDATE="$baseline" ./scripts/bench_gate.sh >/dev/null 2>&1 \
  || fail "identical candidate was rejected (hermetic path)"

# 5. The ns check must anchor to the same-machine merge base: with a
# committed baseline 10x slower than the merge base, a 20% regression
# against the merge base would look like a huge improvement to the
# committed number — only the hermetic comparison can catch it.
jq '.runs |= map(.nsPerRow = .nsPerRow * 10)' "$baseline" > "$tmpdir/slow_committed.json"
jq '.runs |= map(.nsPerRow = .nsPerRow * 1.2)' "$baseline" > "$tmpdir/slow20.json"
if BASELINE="$tmpdir/slow_committed.json" BASE_JSON="$baseline" \
   CANDIDATE="$tmpdir/slow20.json" ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a 20% regression vs the merge base passed because the committed baseline masked it"
fi

# 6. The allocation contract must anchor to the committed baseline: a
# merge-base measurement that already carries the leak must not launder
# it through the hermetic path.
if BASE_JSON="$tmpdir/alloc.json" CANDIDATE="$tmpdir/alloc.json" \
   ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a steady-state allocation passed because the merge base carried it too"
fi

# 7. Output determinism is still gated on the hermetic path.
jq '(.runs[0].suspicious) |= . + 1' "$baseline" > "$tmpdir/drift.json"
if BASE_JSON="$tmpdir/drift.json" CANDIDATE="$tmpdir/drift.json" \
   ./scripts/bench_gate.sh >/dev/null 2>&1; then
  fail "a suspicious-count drift passed the hermetic path"
fi

# 8. The incremental-induction contract: a candidate whose reinduce
# surface has slowed to within 2x of a full induction must fail, no
# matter which reference the other checks anchor to.
induce_ns=$(jq '[.runs[] | select(.name == "induce") | .nsPerRow] | first // empty' "$baseline")
if [ -n "$induce_ns" ]; then
  jq --argjson ns "$induce_ns" \
     '.runs |= map(if .name == "reinduce" then .nsPerRow = ($ns / 2) else . end)' \
     "$baseline" > "$tmpdir/slow_reinduce.json"
  if HERMETIC=0 CANDIDATE="$tmpdir/slow_reinduce.json" ./scripts/bench_gate.sh >/dev/null 2>&1; then
    fail "an eroded reinduce speedup passed the gate (fallback path)"
  fi
  if BASE_JSON="$tmpdir/slow_reinduce.json" CANDIDATE="$tmpdir/slow_reinduce.json" \
     ./scripts/bench_gate.sh >/dev/null 2>&1; then
    fail "an eroded reinduce speedup passed the gate (hermetic path)"
  fi
else
  fail "baseline $baseline has no induce run — refresh it with: go run ./cmd/benchcore -out $baseline"
fi

# --- shardscale gate (cmd/benchshard -gate -checks shardscale) ----------

shard_baseline=${SHARD_BASELINE:-BENCH_shard.json}
[ -f "$shard_baseline" ] || fail "shard baseline $shard_baseline not found"
shardgate() { # candidate
  go run ./cmd/benchshard -gate -candidate "$1" -checks shardscale -min-scale 2.2
}

# 9. Super-linear scaling on a machine with enough cores must pass.
jq '.cores = 8 | .scale = 2.5' "$shard_baseline" > "$tmpdir/shard_good.json"
shardgate "$tmpdir/shard_good.json" >/dev/null 2>&1 \
  || fail "a 2.5x shard scale on 8 cores was rejected"

# 10. Sub-linear scaling on the same machine must fail.
jq '.cores = 8 | .scale = 1.4' "$shard_baseline" > "$tmpdir/shard_slow.json"
if shardgate "$tmpdir/shard_slow.json" >/dev/null 2>&1; then
  fail "a 1.4x shard scale on 8 cores passed the 2.2x gate"
fi

# 11. Too few cores to host every process: warn and skip, never fail.
jq '.cores = 1 | .scale = 0.9' "$shard_baseline" > "$tmpdir/shard_tiny.json"
shardgate "$tmpdir/shard_tiny.json" > "$tmpdir/shard_tiny.out" 2>&1 \
  || fail "a core-starved measurement failed the gate instead of skipping"
grep -qi "skip" "$tmpdir/shard_tiny.out" \
  || fail "core-starved skip did not announce itself"

echo "bench_gate_test: PASS (fallback: identity/regression/allocation; hermetic: identity, merge-base ns anchoring, committed alloc+determinism anchoring; reinduce speedup on both paths; shardscale: pass/fail/core-starved-skip)"
