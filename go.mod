module dataaudit

go 1.24
