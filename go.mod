module dataaudit

go 1.23
