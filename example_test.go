package dataaudit_test

// Runnable examples for the facade's core workflows. go test executes
// them (the Output comments are asserted) and pkg.go.dev renders them
// next to the symbols they are named after.

import (
	"fmt"
	"log"
	"os"
	"strings"

	"dataaudit"
)

// engineTable builds a small engine relation with one strong dependency
// (BRV determines GBM) and a single planted violation in the last row —
// the shape of the paper's §6.2 QUIS findings, at example scale.
func engineTable() *dataaudit.Table {
	schema := dataaudit.MustSchema(
		dataaudit.NewNominal("BRV", "404", "501"),
		dataaudit.NewNominal("GBM", "901", "911"),
		dataaudit.NewNumeric("DISP", 1000, 5000),
	)
	tab := dataaudit.NewTable(schema)
	for i := 0; i < 120; i++ {
		brv := i % 2
		tab.AppendRow([]dataaudit.Value{
			dataaudit.Nom(brv), dataaudit.Nom(brv), dataaudit.Num(2000 + float64(brv)*1000 + float64(i%7)*10),
		})
	}
	// The deviation: a BRV=404 engine recorded with the 501 gearbox.
	tab.AppendRow([]dataaudit.Value{dataaudit.Nom(0), dataaudit.Nom(1), dataaudit.Num(2030)})
	return tab
}

// ExampleInduce induces a structure model and audits the same table —
// the paper's one-shot workflow: every attribute gets a classifier, the
// planted violation is flagged with its error confidence and a proposed
// correction.
func ExampleInduce() {
	tab := engineTable()
	model, err := dataaudit.Induce(tab, dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	res := model.AuditTable(tab)
	for _, rep := range res.Suspicious() { // ranked by error confidence
		fmt.Printf("row %d: %s\n", rep.Row, model.DescribeFinding(rep.Best))
	}
	fmt.Printf("suspicious: %d of %d\n", res.NumSuspicious(), tab.NumRows())
	// Output:
	// row 120: GBM: observed 911, expected 901 (P=0.9836, n=61, error confidence 85.96%)
	// suspicious: 1 of 121
}

// ExampleOpenRegistry publishes a model into a disk-backed registry and
// loads it back — the §2.2 asynchronous workflow: induce once, score
// anywhere.
func ExampleOpenRegistry() {
	dir, err := os.MkdirTemp("", "registry")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	reg, err := dataaudit.OpenRegistry(dir, dataaudit.RegistryCacheSize(4))
	if err != nil {
		log.Fatal(err)
	}

	model, err := dataaudit.Induce(engineTable(), dataaudit.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	meta, err := reg.Publish("engines", model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %s v%d (%d attribute models)\n", meta.Name, meta.Version, meta.NumAttrModels)

	loaded, meta2, err := reg.Get("engines")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded v%d, schema %v\n", meta2.Version, loaded.Schema.Names())
	// Output:
	// published engines v1 (3 attribute models)
	// loaded v1, schema [BRV GBM DISP]
}

// ExampleAuditModel_AuditStream scores a CSV stream with bounded memory:
// rows flow from the decoder through the chunked scorer without ever
// materializing a table, and the result carries running counts plus the
// top-K ranking.
func ExampleAuditModel_AuditStream() {
	model, err := dataaudit.Induce(engineTable(), dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	csv := "BRV,GBM,DISP\n" +
		"404,901,2010\n" +
		"501,911,3050\n" +
		"404,911,2020\n" + // violates BRV=404 → GBM=901
		"501,911,3000\n"
	src, err := dataaudit.NewCSVSource(strings.NewReader(csv), model.Schema)
	if err != nil {
		log.Fatal(err)
	}

	res, err := model.AuditStream(src, dataaudit.StreamOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked %d rows, %d suspicious\n", res.RowsChecked, res.NumSuspicious)
	for _, rep := range res.Top {
		fmt.Printf("row %d: %s\n", rep.Row, model.DescribeFinding(rep.Best))
	}
	// Output:
	// checked 4 rows, 1 suspicious
	// row 2: GBM: observed 911, expected 901 (P=0.9836, n=61, error confidence 85.96%)
}
