package dedup

import (
	"fmt"
	"math"
	"sort"

	"dataaudit/internal/assoc"
	"dataaudit/internal/dataset"
)

// Key discovery: which attributes make a good blocking key? A candidate
// key should identify records, so two properties matter:
//
//  1. It should not be functionally determined by other attributes.
//     The dormant Apriori machinery of internal/assoc finds exactly
//     these dependencies: a high-confidence single-consequent rule
//     X → y says y carries (almost) no identifying power beyond X, so
//     attributes appearing as rule consequents are excluded first.
//  2. Among the rest, higher selectivity (more distinct values per row)
//     identifies better, so candidates are ranked by distinct ratio.
//
// The discovery runs on a bounded sample (Options.SampleRows): rule
// confidence and distinct ratios are both stable under sampling at the
// scales involved, and Apriori's counting pass is quadratic-ish in the
// frequent sets.

// AssocOptions re-exports assoc.Options so callers configure discovery
// without importing the mining package.
type AssocOptions = assoc.Options

// DiscoverKey picks up to MaxKeyAttrs blocking-key attributes from the
// accumulated rows, excluding attributes determined by high-confidence
// association rules and ranking the rest by selectivity.
func (d *Detector) DiscoverKey(opts Options) ([]int, error) {
	opts = opts.withDefaults()
	if d.rows == 0 {
		return nil, fmt.Errorf("dedup: cannot discover a key on an empty detector")
	}
	sample := d.sampleTable(opts.SampleRows)

	determined := make(map[int]bool)
	model, err := assoc.Mine(sample, opts.Assoc)
	if err != nil {
		return nil, fmt.Errorf("dedup: key discovery mining: %w", err)
	}
	for _, rule := range model.Rules {
		determined[rule.Consequent.Attr] = true
	}

	type candidate struct {
		attr     int
		distinct float64 // distinct ratio over non-null sample cells
	}
	rank := func(excludeDetermined bool) []candidate {
		var cands []candidate
		for c := 0; c < d.schema.Len(); c++ {
			if excludeDetermined && determined[c] {
				continue
			}
			cands = append(cands, candidate{attr: c, distinct: d.distinctRatio(sample, c)})
		}
		// Selectivity descending, column index as the deterministic tie
		// break.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].distinct != cands[j].distinct {
				return cands[i].distinct > cands[j].distinct
			}
			return cands[i].attr < cands[j].attr
		})
		return cands
	}

	cands := rank(true)
	if len(cands) == 0 {
		// Degenerate: every attribute is determined by some rule. Fall
		// back to pure selectivity over all attributes.
		cands = rank(false)
	}
	if len(cands) > opts.MaxKeyAttrs {
		cands = cands[:opts.MaxKeyAttrs]
	}
	key := make([]int, len(cands))
	for i, c := range cands {
		key[i] = c.attr
	}
	sort.Ints(key)
	return key, nil
}

// sampleTable materializes the first n accumulated rows as a Table for
// the mining pass.
func (d *Detector) sampleTable(n int) *dataset.Table {
	if n > d.rows {
		n = d.rows
	}
	tab := dataset.NewTable(d.schema)
	row := make([]dataset.Value, d.schema.Len())
	for r := 0; r < n; r++ {
		for c := range d.cols {
			col := &d.cols[c]
			switch {
			case col.numLike && math.IsNaN(col.num[r]):
				row[c] = dataset.Null()
			case col.numLike:
				row[c] = dataset.Num(col.num[r])
			case col.nom[r] < 0:
				row[c] = dataset.Null()
			default:
				row[c] = dataset.Nom(int(col.nom[r]))
			}
		}
		tab.AppendRow(row)
	}
	return tab
}

// distinctRatio is the sample's distinct non-null values per non-null
// cell for one attribute.
func (d *Detector) distinctRatio(sample *dataset.Table, c int) float64 {
	n := sample.NumRows()
	seen := make(map[uint64]bool)
	nonNull := 0
	for r := 0; r < n; r++ {
		v := sample.Get(r, c)
		if v.IsNull() {
			continue
		}
		nonNull++
		seen[dataset.HashValue(v)] = true
	}
	if nonNull == 0 {
		return 0
	}
	return float64(len(seen)) / float64(nonNull)
}
