// Package dedup implements exact and near-duplicate record detection —
// the uniqueness dimension's record-level detector, complementing the
// deviation detection of internal/audit with the duplicate pollution the
// ground-truth log has always recorded but nothing audited against.
//
// Exact duplicates are found by full-row hashing with cell-by-cell
// verification (a hash collision can never produce a false group). Near
// duplicates use blocking on a candidate key: rows are partitioned by the
// hash of their key attributes and only rows sharing a block are compared
// pairwise, with a leave-one-out pass per key attribute so a copy whose
// key was itself perturbed still lands in a common block. The candidate
// key is either supplied or discovered from the data with the Apriori
// machinery of internal/assoc (see discover.go).
//
// The detector consumes typed ColumnChunks, so it rides the same columnar
// ingestion path as the scoring core: any RowSource/ChunkSource —
// CSV, JSONL, a database/sql query — feeds it without a row-form detour.
package dedup

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"dataaudit/internal/dataset"
)

// Options configure detection.
type Options struct {
	// Key lists the blocking-key attributes for near-duplicate
	// detection. Nil discovers a key from the data (DiscoverKey).
	Key []int
	// MaxKeyAttrs caps the discovered key size (default 3).
	MaxKeyAttrs int
	// Threshold is the minimal mean per-attribute similarity for two
	// blocked rows to count as near duplicates (default 0.85). With an
	// 8-attribute schema a single flipped nominal still scores 0.875,
	// so the default catches one-attribute perturbations. Set to 1 to
	// disable the near pass (exact detection only).
	Threshold float64
	// MaxBlock caps the rows of one block that enter the pairwise
	// comparison (default 512); Result.BlocksCapped counts the blocks
	// the cap truncated, so oversized blocks never fail silently.
	MaxBlock int
	// SampleRows caps the rows used for key discovery (default 5000).
	SampleRows int
	// Assoc forwards mining options to DiscoverKey.
	Assoc AssocOptions
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.MaxKeyAttrs <= 0 {
		o.MaxKeyAttrs = 3
	}
	if o.Threshold == 0 {
		o.Threshold = 0.85
	}
	if o.MaxBlock <= 0 {
		o.MaxBlock = 512
	}
	if o.SampleRows <= 0 {
		o.SampleRows = 5000
	}
	return o
}

// Group is one set of mutually duplicate records. The first member (the
// lowest row) is the canonical record; the rest are its duplicates.
type Group struct {
	// Rows are the member row positions in detection order, ascending;
	// IDs the corresponding record IDs.
	Rows []int
	IDs  []int64
	// Exact reports whether every member is cell-for-cell identical to
	// the canonical record.
	Exact bool
	// MinSimilarity is the smallest member-to-canonical similarity
	// (1 for exact groups).
	MinSimilarity float64
}

// Result is a full duplicate scan.
type Result struct {
	// Rows is the number of records scanned.
	Rows int
	// Key is the blocking key used for the near pass; KeyDiscovered
	// whether it came from DiscoverKey rather than Options.Key.
	Key           []int
	KeyDiscovered bool
	// Groups holds every duplicate group, ordered by canonical row.
	Groups []Group
	// ExactGroups / NearGroups split the group count; DuplicateRows
	// counts the non-canonical members across all groups.
	ExactGroups   int
	NearGroups    int
	DuplicateRows int
	// BlocksCapped counts blocks truncated to MaxBlock during the near
	// pass — when positive, coverage of the affected blocks is partial.
	BlocksCapped int
	// DetectTime is the wall time of Finalize.
	DetectTime time.Duration
}

// DuplicateRate is the fraction of scanned rows that are non-canonical
// group members.
func (r *Result) DuplicateRate() float64 {
	if r.Rows == 0 {
		return 0
	}
	return float64(r.DuplicateRows) / float64(r.Rows)
}

// Detector accumulates records from column chunks for a duplicate scan.
// Not safe for concurrent use.
type Detector struct {
	schema *dataset.Schema
	cols   []colData
	ids    []int64
	hashes []uint64 // full-row hashes, filled during Observe
	rows   int
}

// colData is one accumulated column in the chunk encoding: nominal
// domain indices with -1 at nulls, or float payloads with NaN at nulls.
type colData struct {
	nom     []int32
	num     []float64
	numLike bool
	span    float64 // Max-Min of a number-like attribute (0 if unbounded)
}

// NewDetector returns an empty detector over the schema.
func NewDetector(s *dataset.Schema) *Detector {
	d := &Detector{schema: s, cols: make([]colData, s.Len())}
	for c := range d.cols {
		a := s.Attr(c)
		if a.IsNumberLike() {
			d.cols[c].numLike = true
			if span := a.Max - a.Min; span > 0 {
				d.cols[c].span = span
			}
		}
	}
	return d
}

// Observe appends one chunk's rows to the detector.
func (d *Detector) Observe(ck *dataset.ColumnChunk) {
	n := ck.Rows()
	for c := range d.cols {
		col := ck.Col(c)
		if d.cols[c].numLike {
			d.cols[c].num = append(d.cols[c].num, col.Num[:n]...)
		} else {
			d.cols[c].nom = append(d.cols[c].nom, col.Nom[:n]...)
		}
	}
	for r := 0; r < n; r++ {
		d.ids = append(d.ids, ck.ID(r))
		d.hashes = append(d.hashes, dataset.HashChunkRow(ck, r, nil))
	}
	d.rows += n
}

// Rows returns the number of accumulated records.
func (d *Detector) Rows() int { return d.rows }

// cellEqual reports exact cell equality (nulls equal nulls only).
func (d *Detector) cellEqual(c, a, b int) bool {
	col := &d.cols[c]
	if !col.numLike {
		return col.nom[a] == col.nom[b]
	}
	va, vb := col.num[a], col.num[b]
	return va == vb || (math.IsNaN(va) && math.IsNaN(vb))
}

// rowsEqual reports exact row equality.
func (d *Detector) rowsEqual(a, b int) bool {
	for c := range d.cols {
		if !d.cellEqual(c, a, b) {
			return false
		}
	}
	return true
}

// cellSimilarity scores one attribute pair in [0, 1]: nominal cells match
// or don't; number-like cells score by normalized distance over the
// attribute's declared range. Null-null pairs agree, null-value pairs
// don't.
func (d *Detector) cellSimilarity(c, a, b int) float64 {
	col := &d.cols[c]
	if !col.numLike {
		na, nb := col.nom[a], col.nom[b]
		if na == nb {
			return 1
		}
		return 0
	}
	va, vb := col.num[a], col.num[b]
	an, bn := math.IsNaN(va), math.IsNaN(vb)
	switch {
	case an && bn:
		return 1
	case an || bn:
		return 0
	case va == vb:
		return 1
	case col.span > 0:
		s := 1 - math.Abs(va-vb)/col.span
		if s < 0 {
			return 0
		}
		return s
	default:
		return 0
	}
}

// Similarity is the mean per-attribute similarity of two accumulated
// rows.
func (d *Detector) Similarity(a, b int) float64 {
	total := 0.0
	for c := range d.cols {
		total += d.cellSimilarity(c, a, b)
	}
	return total / float64(len(d.cols))
}

// hashKey hashes the key attributes of row r (detector-local hashing; no
// cross-representation contract needed here).
func (d *Detector) hashKey(r int, key []int, skip int) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, c := range key {
		if c == skip {
			continue
		}
		col := &d.cols[c]
		var cell uint64
		if col.numLike {
			cell = dataset.HashFloat(col.num[r])
		} else {
			cell = dataset.Mix64(uint64(col.nom[r]+1) + 0x9e37)
		}
		h = dataset.Mix64(h ^ dataset.Mix64(cell^dataset.Mix64(uint64(c)+1)))
	}
	return h
}

// Finalize runs the scan over the accumulated rows. The detector can be
// finalized repeatedly (e.g. with different options); it is left intact.
func (d *Detector) Finalize(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	res := &Result{Rows: d.rows}

	uf := newUnionFind(d.rows)

	// Exact pass: group by full-row hash in row order, verify cell by
	// cell before uniting, so collisions cannot fabricate duplicates.
	byHash := make(map[uint64][]int32, d.rows)
	for r := 0; r < d.rows; r++ {
		h := d.hashes[r]
		matched := false
		for _, rep := range byHash[h] {
			if d.rowsEqual(int(rep), r) {
				uf.union(int(rep), r)
				matched = true
				break
			}
		}
		if !matched {
			byHash[h] = append(byHash[h], int32(r))
		}
	}

	// Near pass: leave-one-out blocking over the key. Pass i blocks on
	// the key minus attribute i, so a copy differing from its source in
	// any single key attribute still shares a block with it in at least
	// one pass. A single-attribute key gets one pass over itself.
	if opts.Threshold < 1 && d.rows > 1 {
		key := opts.Key
		if key == nil {
			var err error
			key, err = d.DiscoverKey(opts)
			if err != nil {
				return nil, err
			}
			res.KeyDiscovered = true
		}
		for _, c := range key {
			if c < 0 || c >= len(d.cols) {
				return nil, fmt.Errorf("dedup: key attribute %d outside the %d-attribute schema", c, len(d.cols))
			}
		}
		res.Key = key

		passes := key
		if len(key) < 2 {
			passes = []int{-1} // skip nothing: block on the whole key
		}
		for _, skip := range passes {
			blocks := make(map[uint64][]int32)
			for r := 0; r < d.rows; r++ {
				h := d.hashKey(r, key, skip)
				blocks[h] = append(blocks[h], int32(r))
			}
			for _, members := range blocks {
				if len(members) > opts.MaxBlock {
					res.BlocksCapped++
					members = members[:opts.MaxBlock]
				}
				for i := 0; i < len(members); i++ {
					for j := i + 1; j < len(members); j++ {
						a, b := int(members[i]), int(members[j])
						if uf.find(a) == uf.find(b) {
							continue
						}
						if d.Similarity(a, b) >= opts.Threshold {
							uf.union(a, b)
						}
					}
				}
			}
		}
	} else if opts.Key != nil {
		res.Key = opts.Key
	}

	// Assemble groups: members keyed by their root (the lowest row of
	// the set, by the union rule), canonical member first.
	members := make(map[int][]int)
	for r := 0; r < d.rows; r++ {
		members[uf.find(r)] = append(members[uf.find(r)], r)
	}
	roots := make([]int, 0, len(members))
	for root, rows := range members {
		if len(rows) > 1 {
			roots = append(roots, root)
		}
	}
	sort.Ints(roots)
	for _, root := range roots {
		rows := members[root]
		sort.Ints(rows)
		g := Group{Rows: rows, IDs: make([]int64, len(rows)), Exact: true, MinSimilarity: 1}
		for i, r := range rows {
			g.IDs[i] = d.ids[r]
			if i == 0 {
				continue
			}
			if !d.rowsEqual(rows[0], r) {
				g.Exact = false
			}
			if s := d.Similarity(rows[0], r); s < g.MinSimilarity {
				g.MinSimilarity = s
			}
		}
		if g.Exact {
			res.ExactGroups++
		} else {
			res.NearGroups++
		}
		res.DuplicateRows += len(rows) - 1
		res.Groups = append(res.Groups, g)
	}
	res.DetectTime = time.Since(start)
	return res, nil
}

// Detect scans a table: chunked accumulation, then Finalize.
func Detect(tab *dataset.Table, opts Options) (*Result, error) {
	d := NewDetector(tab.Schema())
	ck := dataset.NewColumnChunk(tab.Schema())
	n := tab.NumRows()
	const chunkRows = 4096
	for lo := 0; lo < n; lo += chunkRows {
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		tab.ChunkInto(ck, lo, hi)
		d.Observe(ck)
	}
	return d.Finalize(opts)
}

// DetectSource scans any row source, preferring the source's native
// columnar decode when it is a ChunkSource.
func DetectSource(src dataset.RowSource, opts Options) (*Result, error) {
	d := NewDetector(src.Schema())
	ck := dataset.NewColumnChunk(src.Schema())
	cs, fast := src.(dataset.ChunkSource)
	var buf []dataset.Value
	if !fast {
		buf = make([]dataset.Value, src.Schema().Len())
	}
	for {
		ck.Reset()
		var n int
		var err error
		if fast {
			n, err = cs.NextChunk(ck, 4096)
		} else {
			n, err = dataset.FillChunk(src, ck, buf, 4096)
		}
		if n > 0 {
			d.Observe(ck)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
	}
	return d.Finalize(opts)
}

// unionFind is a disjoint-set forest whose union rule keeps the lowest
// member as the root, making group assembly deterministic.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for int(uf.parent[x]) != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = int(uf.parent[x])
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
}
