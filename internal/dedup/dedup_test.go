package dedup

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dataaudit/internal/dataset"
)

// dedupSchema is an 8-attribute relation with one functional dependency
// (region determines regcode) and an account column selective enough to
// anchor a blocking key.
func dedupSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNumeric("acct", 0, 1e6),
		dataset.NewNominal("region", "north", "south", "east", "west"),
		dataset.NewNominal("regcode", "N", "S", "E", "W"),
		dataset.NewNominal("status", "new", "open", "closed"),
		dataset.NewNumeric("amount", 0, 10000),
		dataset.NewDate("day", dataset.MustParseDate("2000-01-01"), dataset.MustParseDate("2003-12-31")),
		dataset.NewNominal("tier", "a", "b"),
		dataset.NewNumeric("visits", 0, 500),
	)
}

// dedupTable builds n clean rows; regcode mirrors region exactly.
func dedupTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(dedupSchema(t))
	rng := rand.New(rand.NewSource(seed))
	day0 := dataset.MustParseDate("2000-01-01")
	for i := 0; i < n; i++ {
		region := rng.Intn(4)
		row := []dataset.Value{
			dataset.Num(float64(i)*7 + 13), // unique per row
			dataset.Nom(region),
			dataset.Nom(region), // determined by region
			dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(100000)) / 10),
			dataset.DateValue(day0.AddDate(0, 0, rng.Intn(1400))),
			dataset.Nom(rng.Intn(2)),
			dataset.Num(float64(rng.Intn(500))),
		}
		if rng.Intn(40) == 0 {
			row[4] = dataset.Null()
		}
		tab.AppendRow(row)
	}
	return tab
}

func TestDetectExactDuplicates(t *testing.T) {
	tab := dedupTable(t, 800, 3)
	// Three copies of row 10 (one group of 4), one copy of row 20.
	tab.DuplicateRow(10)
	tab.DuplicateRow(10)
	tab.DuplicateRow(10)
	tab.DuplicateRow(20)

	res, err := Detect(tab, Options{Threshold: 1}) // exact pass only
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 804 {
		t.Fatalf("Rows = %d, want 804", res.Rows)
	}
	if res.ExactGroups != 2 || res.NearGroups != 0 {
		t.Fatalf("groups = %d exact / %d near, want 2/0", res.ExactGroups, res.NearGroups)
	}
	if res.DuplicateRows != 4 {
		t.Fatalf("DuplicateRows = %d, want 4", res.DuplicateRows)
	}
	byCanonical := map[int]Group{}
	for _, g := range res.Groups {
		byCanonical[g.Rows[0]] = g
	}
	g10, ok := byCanonical[10]
	if !ok || len(g10.Rows) != 4 || !g10.Exact || g10.MinSimilarity != 1 {
		t.Fatalf("group of row 10 wrong: %+v", g10)
	}
	if g20, ok := byCanonical[20]; !ok || len(g20.Rows) != 2 {
		t.Fatalf("group of row 20 wrong: %+v", g20)
	}
	// IDs must align with rows.
	for _, g := range res.Groups {
		for i, r := range g.Rows {
			if g.IDs[i] != tab.ID(r) {
				t.Fatalf("group ID mismatch at row %d", r)
			}
		}
	}
	if got := res.DuplicateRate(); got != 4.0/804 {
		t.Fatalf("DuplicateRate = %g, want %g", got, 4.0/804)
	}
}

func TestDetectNearDuplicates(t *testing.T) {
	tab := dedupTable(t, 1000, 5)
	// A near duplicate differing in one non-key nominal.
	r1 := tab.NumRows()
	tab.DuplicateRow(50)
	tab.Set(r1, 3, dataset.Nom((tab.Get(50, 3).NomIdx()+1)%3))
	// A near duplicate whose key attribute itself was perturbed — only
	// the leave-one-out blocking passes can land it next to its source.
	r2 := tab.NumRows()
	tab.DuplicateRow(60)
	tab.Set(r2, 0, dataset.Num(tab.Get(60, 0).Float()+1))

	res, err := Detect(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.KeyDiscovered || len(res.Key) == 0 {
		t.Fatalf("expected a discovered key, got %+v", res.Key)
	}
	found := map[int]bool{}
	for _, g := range res.Groups {
		if g.Exact {
			t.Fatalf("unexpected exact group %+v", g)
		}
		if g.MinSimilarity < 0.85 || g.MinSimilarity >= 1 {
			t.Fatalf("near group similarity %g outside [0.85, 1)", g.MinSimilarity)
		}
		found[g.Rows[0]] = true
	}
	if !found[50] || !found[60] {
		t.Fatalf("near duplicates not detected: groups %+v (key %v)", res.Groups, res.Key)
	}
	if res.NearGroups != len(res.Groups) || res.DuplicateRows < 2 {
		t.Fatalf("counts wrong: %+v", res)
	}
}

func TestDiscoverKeyExcludesDeterminedAttrs(t *testing.T) {
	tab := dedupTable(t, 1500, 7)
	d := NewDetector(tab.Schema())
	ck := dataset.NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, tab.NumRows())
	d.Observe(ck)

	key, err := d.DiscoverKey(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 3 {
		t.Fatalf("key = %v, want 3 attributes", key)
	}
	for _, c := range key {
		// region (1) and regcode (2) determine each other with
		// confidence 1.0, so neither may enter the key.
		if c == 1 || c == 2 {
			t.Fatalf("functionally determined attribute %d in key %v", c, key)
		}
	}
	// acct is unique per row — the most selective column must be in.
	if key[0] != 0 {
		t.Fatalf("acct (attr 0) missing from key %v", key)
	}
}

func TestDetectSourceMatchesDetect(t *testing.T) {
	tab := dedupTable(t, 600, 11)
	tab.DuplicateRow(5)
	tab.DuplicateRow(17)
	want, err := Detect(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectSource(dataset.NewTableSource(tab), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want.DetectTime, got.DetectTime = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("DetectSource result differs from Detect:\n got %+v\nwant %+v", got, want)
	}
}

func TestDetectBlockCap(t *testing.T) {
	// Every row identical on the key columns forces one giant block;
	// the cap must truncate it and say so.
	tab := dedupTable(t, 300, 13)
	for r := 0; r < tab.NumRows(); r++ {
		tab.Set(r, 0, dataset.Num(1))
	}
	res, err := Detect(tab, Options{Key: []int{0}, MaxBlock: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksCapped == 0 {
		t.Fatalf("expected capped blocks, got %+v", res)
	}
}

func TestDetectOptionErrors(t *testing.T) {
	tab := dedupTable(t, 50, 17)
	if _, err := Detect(tab, Options{Key: []int{99}}); err == nil {
		t.Fatal("out-of-range key attribute accepted")
	}
	d := NewDetector(tab.Schema())
	if _, err := d.DiscoverKey(Options{}); err == nil {
		t.Fatal("key discovery on an empty detector succeeded")
	}
	// Finalize on an empty detector is a clean zero result.
	res, err := d.Finalize(Options{Threshold: 1})
	if err != nil || res.Rows != 0 || len(res.Groups) != 0 {
		t.Fatalf("empty Finalize = %+v, %v", res, err)
	}
}

func TestSimilaritySemantics(t *testing.T) {
	tab := dedupTable(t, 2, 19)
	// Make row 1 a copy of row 0, then check component semantics.
	for c := 0; c < tab.NumCols(); c++ {
		tab.Set(1, c, tab.Get(0, c))
	}
	d := NewDetector(tab.Schema())
	ck := dataset.NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, 2)
	d.Observe(ck)
	if s := d.Similarity(0, 1); s != 1 {
		t.Fatalf("identical rows similarity = %g, want 1", s)
	}

	cases := []struct {
		name string
		set  func(*dataset.Table)
		want func(s float64) bool
	}{
		{"one flipped nominal of 8", func(tb *dataset.Table) {
			tb.Set(1, 3, dataset.Nom((tb.Get(0, 3).NomIdx()+1)%3))
		}, func(s float64) bool { return s == 7.0/8 }},
		{"null vs value disagrees", func(tb *dataset.Table) {
			tb.Set(1, 4, dataset.Null())
		}, func(s float64) bool { return s <= 7.0/8+1e-9 }},
		{"small numeric nudge stays close to 1", func(tb *dataset.Table) {
			tb.Set(1, 4, dataset.Num(tb.Get(0, 4).Float()+10))
		}, func(s float64) bool { return s > 0.99 && s < 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab2 := tab.Clone()
			tc.set(tab2)
			d2 := NewDetector(tab2.Schema())
			ck2 := dataset.NewColumnChunk(tab2.Schema())
			tab2.ChunkInto(ck2, 0, 2)
			d2.Observe(ck2)
			if s := d2.Similarity(0, 1); !tc.want(s) {
				t.Fatalf("similarity = %g fails predicate", s)
			}
		})
	}
}

func TestDetectTimeRecorded(t *testing.T) {
	tab := dedupTable(t, 100, 23)
	res, err := Detect(tab, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectTime < 0 || res.DetectTime > time.Minute {
		t.Fatalf("implausible DetectTime %v", res.DetectTime)
	}
}

// TestDetectChunkingInsensitive: the same rows through different chunk
// geometries produce the identical result.
func TestDetectChunkingInsensitive(t *testing.T) {
	tab := dedupTable(t, 700, 29)
	tab.DuplicateRow(3)
	want, err := Detect(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64} {
		d := NewDetector(tab.Schema())
		ck := dataset.NewColumnChunk(tab.Schema())
		for lo := 0; lo < tab.NumRows(); lo += chunk {
			hi := lo + chunk
			if hi > tab.NumRows() {
				hi = tab.NumRows()
			}
			tab.ChunkInto(ck, lo, hi)
			d.Observe(ck)
		}
		got, err := d.Finalize(Options{})
		if err != nil {
			t.Fatal(err)
		}
		want.DetectTime, got.DetectTime = 0, 0
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("chunk=%d: result differs from 4096-chunk Detect", chunk)
		}
	}
}
