// Package c45 implements decision-tree induction and classification
// following ID3 [21] and C4.5 [22] as described in §5.1 of the paper:
// information gain and gain ratio split selection, binary splits on
// numerical attributes, training with missing values through fractional
// instance weights, and pessimistic-error pruning by subtree replacement.
//
// The §5.4 data-auditing adjustments — minInst pre-pruning and integrated
// pruning by expected error confidence — are implemented here as Options
// hooks and packaged into a ready-made trainer by internal/audittree.
package c45

import (
	"fmt"
	"strings"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// Node is one decision-tree node. Fields are exported so trees serialize
// with encoding/gob (asynchronous auditing, §2.2).
type Node struct {
	// Attr is the split attribute column, or -1 for a leaf.
	Attr int
	// IsNumeric marks a binary threshold split (Children[0]: value <=
	// Thresh, Children[1]: value > Thresh); otherwise the split is nominal
	// with one child per domain value.
	IsNumeric bool
	// Thresh is the numeric split threshold.
	Thresh float64
	// Children are the subtrees (nil for leaves).
	Children []*Node
	// Dist is the weighted training class distribution at this node. By
	// construction the children's distributions sum to the parent's, so a
	// missing value can be answered with the node's own distribution —
	// exactly the fractional-descent aggregate of C4.5.
	Dist mlcore.Distribution
}

// IsLeaf reports whether the node has no split.
func (n *Node) IsLeaf() bool { return n.Attr < 0 }

// Tree is an induced decision-tree classifier for one class attribute.
type Tree struct {
	Root *Node
	// K is the number of class values.
	K int
	// Base lists the base attribute columns the tree may test.
	Base []int
}

var _ mlcore.Classifier = (*Tree)(nil)

// Predict implements mlcore.Classifier: it descends to the leaf selected by
// the row's base attribute values and returns that leaf's class
// distribution (with its training support as Total). Missing values stop
// at the current node and return its aggregate distribution.
func (t *Tree) Predict(row []dataset.Value) mlcore.Distribution {
	return t.descend(row).Dist
}

// PredictInto implements mlcore.Classifier without allocating: the
// answering node's distribution is copied into the caller's scratch
// buffer.
func (t *Tree) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	d.CopyFrom(t.descend(row).Dist)
}

// descend walks to the node that answers the row: the selected leaf, or
// the interior node at which a missing or out-of-domain value stops the
// descent (its aggregate distribution is the fractional-descent answer).
func (t *Tree) descend(row []dataset.Value) *Node {
	n := t.Root
	for !n.IsLeaf() {
		v := row[n.Attr]
		if v.IsNull() {
			return n
		}
		if n.IsNumeric {
			if v.Float() <= n.Thresh {
				n = n.Children[0]
			} else {
				n = n.Children[1]
			}
		} else {
			idx := v.NomIdx()
			if idx >= len(n.Children) {
				return n // out-of-domain code: fall back to the node
			}
			n = n.Children[idx]
		}
	}
	return n
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return nodeCount(t.Root) }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leafCount(t.Root) }

// Depth returns the longest root-to-leaf path length (a single leaf has
// depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeCount(n *Node) int {
	if n == nil {
		return 0
	}
	c := 1
	for _, ch := range n.Children {
		c += nodeCount(ch)
	}
	return c
}

func leafCount(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	c := 0
	for _, ch := range n.Children {
		c += leafCount(ch)
	}
	return c
}

func nodeDepth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	max := 0
	for _, ch := range n.Children {
		if d := nodeDepth(ch); d > max {
			max = d
		}
	}
	return max + 1
}

// Render pretty-prints the tree using schema metadata; for debugging and
// the example programs.
func (t *Tree) Render(s *dataset.Schema, classLabel func(int) string) string {
	var b strings.Builder
	renderNode(&b, t.Root, s, classLabel, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, s *dataset.Schema, classLabel func(int) string, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		best, p := n.Dist.Best()
		fmt.Fprintf(b, "%s=> %s (p=%.3f, n=%.1f)\n", indent, classLabel(best), p, n.Dist.N())
		return
	}
	attr := s.Attr(n.Attr)
	if n.IsNumeric {
		fmt.Fprintf(b, "%s%s <= %g:\n", indent, attr.Name, n.Thresh)
		renderNode(b, n.Children[0], s, classLabel, depth+1)
		fmt.Fprintf(b, "%s%s > %g:\n", indent, attr.Name, n.Thresh)
		renderNode(b, n.Children[1], s, classLabel, depth+1)
		return
	}
	for i, ch := range n.Children {
		fmt.Fprintf(b, "%s%s = %s:\n", indent, attr.Name, attr.Domain[i])
		renderNode(b, ch, s, classLabel, depth+1)
	}
}
