package c45

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// xorSchema: class = f(a, b) with a noise attribute.
func treeSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("a", "a0", "a1"),
		dataset.NewNominal("b", "b0", "b1"),
		dataset.NewNominal("noise", "n0", "n1", "n2"),
		dataset.NewNumeric("x", 0, 100),
		dataset.NewNominal("class", "c0", "c1"),
	)
}

// buildInstances builds Instances with the last column as class.
func buildInstances(t testing.TB, tab *dataset.Table, base []int) *mlcore.Instances {
	t.Helper()
	classCol := tab.NumCols() - 1
	k := tab.Schema().Attr(classCol).NumValues()
	return mlcore.NewInstances(tab, base, k, func(r int) int {
		v := tab.Get(r, classCol)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
}

// conjTable: class = a AND b (learnable greedily, unlike XOR whose inputs
// have zero marginal information gain), noise/numeric attributes random.
func conjTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	s := treeSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		cls := 0
		if a == 1 && b == 1 {
			cls = 1
		}
		tab.AppendRow([]dataset.Value{
			dataset.Nom(a), dataset.Nom(b), dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(101))), dataset.Nom(cls),
		})
	}
	return tab
}

func TestLearnsConjunction(t *testing.T) {
	tab := conjTable(t, 400, 1)
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	tr := &Trainer{Opts: Options{UseGainRatio: true, Prune: true}}
	tree, err := tr.TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Every training record must classify correctly (the target is
	// noise-free and greedily learnable).
	correct := 0
	for r := 0; r < tab.NumRows(); r++ {
		d := tree.Predict(tab.Row(r))
		best, _ := d.Best()
		if best == tab.Get(r, 4).NomIdx() {
			correct++
		}
	}
	if acc := float64(correct) / float64(tab.NumRows()); acc < 0.99 {
		t.Fatalf("conjunction training accuracy = %g", acc)
	}
}

func TestLearnsNumericThreshold(t *testing.T) {
	s := treeSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		cls := 0
		if x > 42 {
			cls = 1
		}
		tab.AppendRow([]dataset.Value{
			dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(x), dataset.Nom(cls),
		})
	}
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() || !tree.Root.IsNumeric || tree.Root.Attr != 3 {
		t.Fatalf("root should split numerically on x, got %+v", tree.Root)
	}
	if math.Abs(tree.Root.Thresh-42) > 3 {
		t.Fatalf("threshold = %g, want ~42", tree.Root.Thresh)
	}
	// Probe predictions around the boundary.
	probe := func(x float64) int {
		d := tree.Predict([]dataset.Value{dataset.Nom(0), dataset.Nom(0), dataset.Nom(0), dataset.Num(x), dataset.Null()})
		best, _ := d.Best()
		return best
	}
	if probe(10) != 0 || probe(90) != 1 {
		t.Fatalf("boundary predictions wrong: f(10)=%d f(90)=%d", probe(10), probe(90))
	}
}

func TestGainRatioAvoidsManyValuedBias(t *testing.T) {
	// §5.1.2: "The ID3 information gain measure systematically favors
	// attributes with many values over those with fewer values."
	// Construction: a 20-valued code attribute whose parity determines the
	// class exactly (gain 1.0, but split info log2(20) ≈ 4.3), a binary
	// attribute agreeing with the class on 92.5% of records (gain ≈ 0.62,
	// split info 1.0), and a junk attribute diluting the mean-gain filter.
	codes := make([]string, 20)
	for i := range codes {
		codes[i] = fmt.Sprintf("v%02d", i)
	}
	s := dataset.MustSchema(
		dataset.NewNominal("code", codes...),
		dataset.NewNominal("bin", "s0", "s1"),
		dataset.NewNominal("junk", "j0", "j1", "j2"),
		dataset.NewNominal("class", "c0", "c1"),
	)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(3))
	flipped := 0
	for i := 0; i < 400; i++ {
		code := i % 20
		cls := code % 2
		bin := cls
		// Flip bin for exactly 30 records (15 per class).
		if flipped < 30 && i%13 == 0 {
			bin = 1 - bin
			flipped++
		}
		tab.AppendRow([]dataset.Value{
			dataset.Nom(code), dataset.Nom(bin), dataset.Nom(rng.Intn(3)), dataset.Nom(cls),
		})
	}
	ins := buildInstances(t, tab, []int{0, 1, 2})

	id3Tree, err := (&Trainer{Opts: Options{UseGainRatio: false}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	c45Tree, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if id3Tree.Root.Attr != 0 {
		t.Fatalf("ID3 should greedily split on the many-valued code attribute, got %d", id3Tree.Root.Attr)
	}
	if c45Tree.Root.Attr != 1 {
		t.Fatalf("C4.5 should split on the binary attribute, got %d", c45Tree.Root.Attr)
	}
}

func TestMissingValuesFractionalWeights(t *testing.T) {
	s := treeSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		a := rng.Intn(2)
		av := dataset.Nom(a)
		if rng.Float64() < 0.2 {
			av = dataset.Null() // 20% missing on the split attribute
		}
		tab.AppendRow([]dataset.Value{
			av, dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(50), dataset.Nom(a),
		})
	}
	ins := buildInstances(t, tab, []int{0, 1, 2})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() || tree.Root.Attr != 0 {
		t.Fatalf("tree should split on attribute a despite missing values")
	}
	// Children distributions must sum to the parent's (fractional weights
	// conserve mass).
	var childTotal float64
	for _, ch := range tree.Root.Children {
		childTotal += ch.Dist.N()
	}
	if math.Abs(childTotal-tree.Root.Dist.N()) > 1e-6 {
		t.Fatalf("mass not conserved: children %g vs parent %g", childTotal, tree.Root.Dist.N())
	}
	// Prediction with a missing split value returns the node aggregate.
	d := tree.Predict([]dataset.Value{dataset.Null(), dataset.Nom(0), dataset.Nom(0), dataset.Num(1), dataset.Null()})
	if math.Abs(d.N()-tree.Root.Dist.N()) > 1e-6 {
		t.Fatalf("missing-value prediction should carry the node's support")
	}
}

func TestNullClassRowsAreDropped(t *testing.T) {
	tab := conjTable(t, 100, 5)
	// Null out half the class labels.
	for r := 0; r < 50; r++ {
		tab.Set(r, 4, dataset.Null())
	}
	ins := buildInstances(t, tab, []int{0, 1})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Root.Dist.N()-50) > 1e-9 {
		t.Fatalf("root support = %g, want 50 (null-class rows dropped)", tree.Root.Dist.N())
	}
}

func TestAllNullClassFails(t *testing.T) {
	tab := conjTable(t, 10, 6)
	for r := 0; r < 10; r++ {
		tab.Set(r, 4, dataset.Null())
	}
	ins := buildInstances(t, tab, []int{0, 1})
	if _, err := (&Trainer{Opts: Options{}}).TrainTree(ins); err == nil {
		t.Fatalf("training on all-null classes must fail")
	}
}

func TestPruningShrinksNoiseTree(t *testing.T) {
	// Class is 90/10 random noise; an unpruned tree fragments on the noise
	// attributes, the pruned tree should collapse (the paper's motivation
	// for pruning).
	s := treeSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 600; i++ {
		cls := 0
		if rng.Float64() < 0.1 {
			cls = 1
		}
		tab.AppendRow([]dataset.Value{
			dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(101))), dataset.Nom(cls),
		})
	}
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	unpruned, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := (&Trainer{Opts: Options{UseGainRatio: true, Prune: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() >= unpruned.Size() {
		t.Fatalf("pruning did not shrink the tree: %d >= %d", pruned.Size(), unpruned.Size())
	}
}

func TestMinInstPrePruning(t *testing.T) {
	tab := conjTable(t, 100, 8)
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	// minInst larger than the data: everything collapses to a single leaf
	// (§5.4 pre-pruning).
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true, MinInst: 1000}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Fatalf("minInst=1000 on 100 records must yield a single leaf")
	}
	// Reasonable minInst keeps the structure.
	tree2, err := (&Trainer{Opts: Options{UseGainRatio: true, MinInst: 5}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Root.IsLeaf() {
		t.Fatalf("minInst=5 should not kill the XOR structure")
	}
}

func TestExpErrConfPruneKeepsFunctionalDependency(t *testing.T) {
	// class == a (functional): pure children under a mixed parent, both
	// sides of Def. 9 are zero — the split must survive (strict
	// inequality).
	s := treeSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		a := rng.Intn(2)
		tab.AppendRow([]dataset.Value{
			dataset.Nom(a), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(50), dataset.Nom(a),
		})
	}
	ins := buildInstances(t, tab, []int{0, 1, 2})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true, ExpErrConfPrune: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatalf("expErrConf pruning must not collapse a functional dependency")
	}
}

func TestExpErrConfPruneCollapsesNoise(t *testing.T) {
	// Class is skewed noise: splitting cannot increase error-detection
	// capability, so the integrated pruning should give a much smaller tree
	// than unpruned growth.
	s := treeSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 800; i++ {
		cls := 0
		if rng.Float64() < 0.05 {
			cls = 1
		}
		tab.AppendRow([]dataset.Value{
			dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(101))), dataset.Nom(cls),
		})
	}
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	plain, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	adjusted, err := (&Trainer{Opts: Options{UseGainRatio: true, ExpErrConfPrune: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if adjusted.Size() >= plain.Size() {
		t.Fatalf("expErrConf pruning should shrink a noise tree: %d >= %d", adjusted.Size(), plain.Size())
	}
}

func TestPredictionDistributionIsNormalized(t *testing.T) {
	tab := conjTable(t, 300, 11)
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true, Prune: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		rowVals := []dataset.Value{
			dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(101))), dataset.Null(),
		}
		if rng.Float64() < 0.3 {
			rowVals[rng.Intn(4)] = dataset.Null()
		}
		d := tree.Predict(rowVals)
		sum := 0.0
		for c := 0; c < d.K(); c++ {
			p := d.P(c)
			if p < 0 || p > 1 {
				t.Fatalf("P out of range: %g", p)
			}
			sum += p
		}
		if d.N() > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %g", sum)
		}
		if d.N() < 0 {
			t.Fatalf("negative support")
		}
	}
}

func TestTreeMetricsAndRender(t *testing.T) {
	tab := conjTable(t, 200, 13)
	ins := buildInstances(t, tab, []int{0, 1})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 3 || tree.Leaves() < 2 || tree.Depth() < 1 {
		t.Fatalf("metrics: size=%d leaves=%d depth=%d", tree.Size(), tree.Leaves(), tree.Depth())
	}
	if tree.Leaves() >= tree.Size() {
		t.Fatalf("leaves must be fewer than nodes")
	}
	out := tree.Render(tab.Schema(), func(c int) string { return tab.Schema().Attr(4).Domain[c] })
	if !strings.Contains(out, "a =") && !strings.Contains(out, "b =") {
		t.Fatalf("Render output unexpected:\n%s", out)
	}
}

func TestPessimisticErrorMonotoneInN(t *testing.T) {
	// Same observed error rate, more data -> smaller pessimistic error.
	opts := Options{}.WithDefaults()
	small := mlcore.NewDistribution(2)
	small.Add(0, 9)
	small.Add(1, 1)
	big := mlcore.NewDistribution(2)
	big.Add(0, 900)
	big.Add(1, 100)
	if pessErrorLeaf(small, opts) <= pessErrorLeaf(big, opts) {
		t.Fatalf("pessimistic error must shrink with sample size")
	}
	if pe := pessErrorLeaf(big, opts); pe <= 0.1 {
		t.Fatalf("pessimistic error must exceed the observed rate, got %g", pe)
	}
}

func TestExpErrorConfDefinition(t *testing.T) {
	// Hand-check Def. 9 on a small leaf.
	d := mlcore.NewDistribution(3)
	d.Add(0, 90)
	d.Add(1, 10)
	conf := 0.95
	want := (10.0 / 100.0) * stats.ErrorConfidence(0.9, 0.1, 100, conf)
	if got := ExpErrorConfLeaf(d, conf, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpErrorConfLeaf = %g, want %g", got, want)
	}
	// Pure leaf: zero.
	pure := mlcore.NewDistribution(2)
	pure.Add(1, 50)
	if ExpErrorConfLeaf(pure, conf, 0) != 0 {
		t.Fatalf("pure leaf must have zero expected error confidence")
	}
	// Clipping: a threshold above the achievable confidence zeroes the
	// contribution.
	if ExpErrorConfLeaf(d, conf, 0.99) != 0 {
		t.Fatalf("clipped expected error confidence must be zero")
	}
}

func TestEmptyBranchFallsBackToParent(t *testing.T) {
	// Value b1 never occurs in training for one branch; predictions for it
	// must answer with the parent's evidence.
	s := dataset.MustSchema(
		dataset.NewNominal("f", "f0", "f1", "f2"),
		dataset.NewNominal("class", "c0", "c1"),
	)
	tab := dataset.NewTable(s)
	for i := 0; i < 100; i++ {
		f := i % 2 // f2 never occurs
		tab.AppendRow([]dataset.Value{dataset.Nom(f), dataset.Nom(f)})
	}
	ins := buildInstances(t, tab, []int{0})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatalf("expected a split on f")
	}
	d := tree.Predict([]dataset.Value{dataset.Nom(2), dataset.Null()})
	if d.N() != tree.Root.Dist.N() {
		t.Fatalf("unseen branch should answer with parent evidence (n=%g, want %g)", d.N(), tree.Root.Dist.N())
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	tab := conjTable(t, 400, 61)
	ins := buildInstances(t, tab, []int{0, 1, 2, 3})
	tree, err := (&Trainer{Opts: Options{UseGainRatio: true, Prune: true}}).TrainTree(ins)
	if err != nil {
		t.Fatal(err)
	}
	var d mlcore.Distribution
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 500; i++ {
		row := []dataset.Value{
			dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(101))), dataset.Null(),
		}
		if rng.Intn(4) == 0 {
			row[rng.Intn(4)] = dataset.Null()
		}
		want := tree.Predict(row)
		tree.PredictInto(row, &d)
		if want.Total != d.Total || len(want.Counts) != len(d.Counts) {
			t.Fatalf("row %v: Predict %+v, PredictInto %+v", row, want, d)
		}
		for c := range want.Counts {
			if want.Counts[c] != d.Counts[c] {
				t.Fatalf("row %v class %d: %v vs %v", row, c, want.Counts[c], d.Counts[c])
			}
		}
		// PredictInto must hand back an independent copy, not the node's
		// own distribution.
		if len(want.Counts) > 0 && &want.Counts[0] == &d.Counts[0] {
			t.Fatal("PredictInto must not alias the tree's distribution")
		}
	}
}
