package c45

import (
	"fmt"

	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// Warm-started re-induction. A Skeleton records a previous tree's split
// structure (attributes and thresholds, not distributions); TrainTreeWarm
// grows a fresh tree over new data but tries each hinted split first —
// evaluating a single attribute per node in one O(rows) pass instead of
// searching every attribute (numeric splits skip the O(rows log rows)
// sort entirely). Only where a hinted split has become inadmissible on
// the new data does the grower fall back to the full split search, so
// just the changed subtrees pay the re-search cost. Distributions,
// pre-pruning and the §5.4 integrated pruning are always recomputed from
// the new data, which keeps the warm tree quality-equivalent to a cold
// retrain.

// Skeleton is the structural hint extracted from a previous tree: the
// split attribute (or -1 for a leaf), the numeric threshold, and the
// child hints in branch order. It gob-serializes alongside the models
// that embed it (audittree.RuleSet).
type Skeleton struct {
	Attr      int
	IsNumeric bool
	Thresh    float64
	Children  []*Skeleton
}

// Skeleton extracts the tree's structural hint for warm re-induction.
func (t *Tree) Skeleton() *Skeleton { return skeletonOf(t.Root) }

func skeletonOf(n *Node) *Skeleton {
	if n == nil {
		return nil
	}
	s := &Skeleton{Attr: n.Attr, IsNumeric: n.IsNumeric, Thresh: n.Thresh}
	if len(n.Children) > 0 {
		s.Children = make([]*Skeleton, len(n.Children))
		for i, ch := range n.Children {
			s.Children[i] = skeletonOf(ch)
		}
	}
	return s
}

// TrainTreeWarm induces a tree like TrainTree, seeding the split search
// with a previous tree's skeleton. prev may be nil (equivalent to a cold
// TrainTree).
func (t *Trainer) TrainTreeWarm(ins *mlcore.Instances, prev *Skeleton) (*Tree, error) {
	return t.trainTree(ins, prev)
}

var _ mlcore.IncrementalClassifier = (*Tree)(nil)

// Update implements mlcore.IncrementalClassifier by warm re-induction
// over the full post-delta set with the receiver's own skeleton as the
// hint. The trainer must be the *c45.Trainer carrying the induction
// options (a tree does not store them); the successor is
// quality-equivalent to a cold retrain.
func (t *Tree) Update(trainer mlcore.Trainer, d mlcore.UpdateDelta) (mlcore.Classifier, error) {
	if d.Full == nil {
		return nil, fmt.Errorf("c45: update requires the full post-delta instance set")
	}
	tr, ok := trainer.(*Trainer)
	if !ok {
		return nil, fmt.Errorf("c45: update requires a *c45.Trainer, got %T", trainer)
	}
	return tr.TrainTreeWarm(d.Full, t.Skeleton())
}

// evalHint re-evaluates a previously chosen split on the current
// instance set: the hinted attribute only, with the old threshold for
// numeric splits. It returns nil when the split is no longer admissible
// (the caller then falls back to the full search).
func (g *grower) evalHint(hint *Skeleton, rows []int, weights []float64) *split {
	var s *split
	if hint.IsNumeric {
		s = g.numericSplitAt(hint.Attr, hint.Thresh, rows, weights)
	} else {
		s = g.nominalSplit(hint.Attr, rows, weights)
	}
	if s == nil || s.gain <= 1e-10 {
		return nil
	}
	if g.opts.MinInst > 0 && !s.hasClassWithAtLeast(g.opts.MinInst) {
		return nil
	}
	return s
}

// numericSplitAt evaluates the binary split at one fixed threshold in a
// single unsorted pass — the warm-path replacement for numericSplit's
// sort-and-scan threshold search.
func (g *grower) numericSplitAt(attr int, thresh float64, rows []int, weights []float64) *split {
	left := make([]float64, g.ins.K)
	right := make([]float64, g.ins.K)
	parent := make([]float64, g.ins.K)
	leftW, rightW, missingW := 0.0, 0.0, 0.0
	for i, r := range rows {
		val := g.ins.Table.Get(r, attr)
		if val.IsNull() {
			missingW += weights[i]
			continue
		}
		c := g.ins.Class[r]
		w := weights[i]
		parent[c] += w
		if val.Float() <= thresh {
			left[c] += w
			leftW += w
		} else {
			right[c] += w
			rightW += w
		}
	}
	if leftW < g.opts.MinLeaf || rightW < g.opts.MinLeaf {
		return nil
	}
	knownW := leftW + rightW
	gain := stats.InfoGain(parent, [][]float64{left, right}) * knownW / (knownW + missingW)
	sizes := []float64{leftW, rightW}
	if missingW > 0 {
		sizes = append(sizes, missingW)
	}
	return &split{
		attr:      attr,
		isNumeric: true,
		thresh:    thresh,
		gain:      gain,
		gainRatio: stats.GainRatio(gain, sizes),
		branches:  [][]float64{left, right},
	}
}
