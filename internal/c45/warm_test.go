package c45_test

import (
	"testing"

	"dataaudit/internal/c45"
	"dataaudit/internal/mlcore/conform"
)

// TestWarmConformanceC45 and TestWarmConformanceID3 hold the
// warm-started tree Update to the IncrementalClassifier contract:
// copy-on-write, deterministic, and prediction-agreeing with a cold
// retrain on the post-delta set.
func TestWarmConformanceC45(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 5)
	conform.Run(t, conform.Config{
		Trainer:  &c45.Trainer{Opts: c45.Options{UseGainRatio: true, Prune: true}},
		MinAgree: 0.9,
	}, base, delta)
}

func TestWarmConformanceID3(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 6)
	conform.Run(t, conform.Config{
		Trainer:  &c45.Trainer{},
		MinAgree: 0.9,
	}, base, delta)
}

// TestWarmStartReusesSkeleton checks the warm path actually follows the
// hint: regrowing on the *same* data with the tree's own skeleton keeps
// the structure identical (every previous split stays admissible).
func TestWarmStartReusesSkeleton(t *testing.T) {
	base, _ := conform.Fixture(t, 400, 0, 1, 7)
	tr := &c45.Trainer{Opts: c45.Options{UseGainRatio: true}}
	cold, err := tr.TrainTree(base)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := tr.TrainTreeWarm(base, cold.Skeleton())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Size() != warm.Size() || cold.Leaves() != warm.Leaves() || cold.Depth() != warm.Depth() {
		t.Fatalf("warm regrow on identical data changed the structure: cold size=%d/leaves=%d/depth=%d, warm %d/%d/%d",
			cold.Size(), cold.Leaves(), cold.Depth(), warm.Size(), warm.Leaves(), warm.Depth())
	}
}
