package c45

import (
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// This file implements the two pruning criteria of the paper:
//
//  1. C4.5's pessimistic classification error (§5.1.2): the observed leaf
//     error rate is replaced by the right bound of its confidence interval
//     ("rightBound(p, n) denotes the right bound of the confidence interval
//     for the true probability of occurrence"), and a subtree is replaced
//     by a leaf when that does not increase the pessimistic error.
//
//  2. The expected error confidence (Definition 9, §5.4), which judges a
//     node by how much error-detection capability it provides rather than
//     by its misclassification rate, and is used by the integrated pruning
//     strategy during growth (see grower.grow).

// pessErrorLeaf is the paper's pessError for a leaf:
// rightBound(1 - |S_C=c|/|S|, |S|) with c the majority class.
func pessErrorLeaf(d mlcore.Distribution, opts Options) float64 {
	if d.N() <= 0 {
		return 1
	}
	_, pMaj := d.Best()
	return stats.RightBound(1-pMaj, d.N(), 1-opts.CF)
}

// pessErrorNode is the weighted average over the children for inner nodes.
func pessErrorNode(n *Node, opts Options) float64 {
	if n.IsLeaf() {
		return pessErrorLeaf(n.Dist, opts)
	}
	if n.Dist.N() <= 0 {
		return 1
	}
	sum := 0.0
	for _, ch := range n.Children {
		sum += ch.Dist.N() / n.Dist.N() * pessErrorNode(ch, opts)
	}
	return sum
}

// prunePessimistic performs bottom-up subtree replacement: a subtree
// becomes a leaf when the leaf's pessimistic error does not exceed the
// subtree's.
func prunePessimistic(n *Node, opts Options) {
	if n.IsLeaf() {
		return
	}
	for _, ch := range n.Children {
		prunePessimistic(ch, opts)
	}
	if pessErrorLeaf(n.Dist, opts) <= pessErrorNode(n, opts)+1e-12 {
		n.Attr = -1
		n.IsNumeric = false
		n.Thresh = 0
		n.Children = nil
	}
}

// expErrConfLeaf is Definition 9 for a leaf: the training-distribution
// expectation of the error confidence the leaf would assign to its own
// instances,
//
//	expErrorConf(k) := Σ_c |S_C=c|/|S| · errorConf(P, c),
//
// with confidences below minConf clipped to zero (only confidences the
// user would ever see count as detection capability; pass minConf = 0 for
// the unclipped Definition 9).
func expErrConfLeaf(d mlcore.Distribution, confLevel, minConf float64) float64 {
	n := d.N()
	if n <= 0 {
		return 0
	}
	cHat, pHat := d.Best()
	sum := 0.0
	for c := range d.Counts {
		pc := d.P(c)
		if pc == 0 || c == cHat {
			continue // errorConf is zero for the predicted class itself
		}
		ec := stats.ErrorConfidence(pHat, pc, n, confLevel)
		if ec >= minConf {
			sum += pc * ec
		}
	}
	return sum
}

// expErrConfNode is Definition 9 for an inner node: the instance-weighted
// average of the children's expected error confidences.
func expErrConfNode(n *Node, confLevel, minConf float64) float64 {
	if n.IsLeaf() {
		return expErrConfLeaf(n.Dist, confLevel, minConf)
	}
	if n.Dist.N() <= 0 {
		return 0
	}
	sum := 0.0
	for _, ch := range n.Children {
		sum += ch.Dist.N() / n.Dist.N() * expErrConfNode(ch, confLevel, minConf)
	}
	return sum
}

// ExpErrorConf exposes Definition 9 for a whole (sub)tree; internal/audittree
// and the experiment harness report it.
func ExpErrorConf(n *Node, confLevel, minConf float64) float64 {
	return expErrConfNode(n, confLevel, minConf)
}

// ExpErrorConfLeaf exposes the leaf form of Definition 9.
func ExpErrorConfLeaf(d mlcore.Distribution, confLevel, minConf float64) float64 {
	return expErrConfLeaf(d, confLevel, minConf)
}
