package c45

import (
	"fmt"
	"sort"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// Options configure tree induction.
type Options struct {
	// UseGainRatio selects C4.5's gain-ratio criterion; false falls back to
	// plain ID3 information gain (§5.1.1 vs §5.1.2).
	UseGainRatio bool
	// MinLeaf is the minimum weighted instance count each of (at least two)
	// branches of a split must receive; C4.5's default is 2.
	MinLeaf float64
	// Prune enables pessimistic-error subtree replacement after growth.
	Prune bool
	// CF is the pruning confidence factor (C4.5 default 0.25): the
	// pessimistic error is the upper bound of the (1-CF) one-sided
	// confidence interval of the leaf error rate.
	CF float64

	// ---- §5.4 data-auditing adjustments ----

	// MinInst, when positive, enables the paper's pre-pruning: a split is
	// rejected when no resulting partition contains at least MinInst
	// (weighted) instances of a single class. Derive it from the minimum
	// error confidence with stats.MinInstForConfidence.
	MinInst float64
	// ExpErrConfPrune enables the integrated pruning strategy of Def. 9:
	// while the tree is built (bottom-up), a subtree is replaced by a leaf
	// whenever the leaf has at least the subtree's expected error
	// confidence.
	ExpErrConfPrune bool
	// MinErrConf clips the expected error confidence: contributions below
	// this threshold count as zero detection capability. §5.4 lets the
	// user "restrict his interest by giving a minimal confidence for
	// detected errors"; without the clip, a mixed leaf's many weak (and
	// never-reported) confidences would outweigh a subtree's few strong
	// ones and the integrated pruning would collapse genuine structure.
	MinErrConf float64
	// ConfLevel is the one-sided confidence level for the error-confidence
	// bounds (default 0.95).
	ConfLevel float64
}

// WithDefaults fills unset fields with C4.5's standard values.
func (o Options) WithDefaults() Options {
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	if o.CF == 0 {
		o.CF = 0.25
	}
	if o.ConfLevel == 0 {
		o.ConfLevel = 0.95
	}
	return o
}

// Trainer induces decision trees.
type Trainer struct {
	Opts Options
}

var _ mlcore.Trainer = (*Trainer)(nil)

// Name implements mlcore.Trainer.
func (t *Trainer) Name() string {
	if t.Opts.UseGainRatio {
		return "c4.5"
	}
	return "id3"
}

// Train implements mlcore.Trainer.
func (t *Trainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	tree, err := t.TrainTree(ins)
	if err != nil {
		return nil, err
	}
	return tree, nil
}

// TrainTree induces the tree with its concrete type.
func (t *Trainer) TrainTree(ins *mlcore.Instances) (*Tree, error) {
	return t.trainTree(ins, nil)
}

// trainTree grows a tree, optionally seeded with a previous tree's
// skeleton (see warm.go).
func (t *Trainer) trainTree(ins *mlcore.Instances, prev *Skeleton) (*Tree, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	opts := t.Opts.WithDefaults()
	g := &grower{ins: ins, opts: opts, schema: ins.Table.Schema()}
	// Rows whose class is null carry no supervision; C4.5 drops them.
	var rows []int
	var weights []float64
	for i, r := range ins.Rows {
		if ins.Class[r] >= 0 {
			rows = append(rows, r)
			weights = append(weights, ins.Weights[i])
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("c45: no instances with a known class value")
	}
	root := g.grow(rows, weights, len(ins.Base), prev)
	tree := &Tree{Root: root, K: ins.K, Base: ins.Base}
	if opts.Prune {
		prunePessimistic(root, opts)
	}
	return tree, nil
}

// grower carries induction state.
type grower struct {
	ins    *mlcore.Instances
	opts   Options
	schema *dataset.Schema
}

// distOf tallies the weighted class distribution of the rows.
func (g *grower) distOf(rows []int, weights []float64) mlcore.Distribution {
	d := mlcore.NewDistribution(g.ins.K)
	for i, r := range rows {
		d.Add(g.ins.Class[r], weights[i])
	}
	return d
}

// grow recursively builds (and, with ExpErrConfPrune, integrally prunes)
// the subtree for the given weighted instance set. hint, when non-nil,
// is the previous tree's structure at this position (see warm.go): a
// hinted split is re-evaluated alone, and only if it has become
// inadmissible does the full search run — with no hints below, since the
// old structure no longer describes this subtree.
func (g *grower) grow(rows []int, weights []float64, attrsLeft int, hint *Skeleton) *Node {
	dist := g.distOf(rows, weights)
	leaf := &Node{Attr: -1, Dist: dist}

	// Stop: pure node, too small, or no attributes left.
	if attrsLeft == 0 || dist.N() < 2*g.opts.MinLeaf || isPure(dist) {
		return leaf
	}
	// A leaf hint means the previous tree stopped here: keep the leaf
	// without searching for a split (the stop conditions above and the
	// integrated pruning below still apply on the recursion path).
	if hint != nil && hint.Attr < 0 {
		return leaf
	}

	var best *split
	var childHints []*Skeleton
	if hint != nil {
		if best = g.evalHint(hint, rows, weights); best != nil {
			childHints = hint.Children
		}
	}
	if best == nil {
		best = g.bestSplit(rows, weights)
		if best == nil {
			return leaf
		}
		// §5.4 pre-pruning: reject the split when no partition would contain at
		// least minInst instances of one class ("This number can be used in a
		// pre-pruning strategy to prevent a training instance set from being
		// further partitioned when there is not at least one subset with
		// minInst instances of one class").
		if g.opts.MinInst > 0 && !best.hasClassWithAtLeast(g.opts.MinInst) {
			return leaf
		}
	}

	node := &Node{Attr: best.attr, IsNumeric: best.isNumeric, Thresh: best.thresh, Dist: dist}
	childSets := best.partition(g, rows, weights)
	node.Children = make([]*Node, len(childSets))
	for i, cs := range childSets {
		var ch *Skeleton
		if i < len(childHints) {
			ch = childHints[i]
		}
		if len(cs.rows) == 0 {
			// Empty branch: C4.5 predicts the parent's majority here; we
			// keep the parent's distribution so that unseen branch values
			// answer with the parent's evidence.
			node.Children[i] = &Node{Attr: -1, Dist: dist.Clone()}
			continue
		}
		node.Children[i] = g.grow(cs.rows, cs.weights, attrsLeft-1, ch)
	}

	// §5.4 integrated pruning: replace the freshly grown subtree by a leaf
	// whenever that transformation leads to a strictly higher expected
	// error confidence (Def. 9). Strictness matters: a functional
	// dependency yields pure children (expErrorConf 0) under a mixed
	// parent (also 0), and must survive.
	if g.opts.ExpErrConfPrune {
		leafEC := expErrConfLeaf(dist, g.opts.ConfLevel, g.opts.MinErrConf)
		nodeEC := expErrConfNode(node, g.opts.ConfLevel, g.opts.MinErrConf)
		if leafEC > nodeEC+1e-15 {
			return leaf
		}
	}
	return node
}

func isPure(d mlcore.Distribution) bool {
	seen := false
	for _, c := range d.Counts {
		if c > 0 {
			if seen {
				return false
			}
			seen = true
		}
	}
	return true
}

// split describes a candidate split and its quality.
type split struct {
	attr      int
	isNumeric bool
	thresh    float64
	gain      float64
	gainRatio float64
	// branch class histograms over known-valued instances (used by the
	// minInst pre-pruning check).
	branches [][]float64
}

// hasClassWithAtLeast reports whether some branch holds at least min
// weighted instances of a single class.
func (s *split) hasClassWithAtLeast(min float64) bool {
	for _, b := range s.branches {
		for _, c := range b {
			if c >= min {
				return true
			}
		}
	}
	return false
}

// bestSplit evaluates every base attribute and returns the winner under
// the configured criterion (gain ratio filtered by mean gain for C4.5,
// plain gain for ID3), or nil if no admissible split exists.
func (g *grower) bestSplit(rows []int, weights []float64) *split {
	var candidates []*split
	for _, attr := range g.ins.Base {
		var s *split
		if g.schema.Attr(attr).IsNumberLike() {
			s = g.numericSplit(attr, rows, weights)
		} else {
			s = g.nominalSplit(attr, rows, weights)
		}
		if s != nil && s.gain > 1e-10 {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	if !g.opts.UseGainRatio {
		best := candidates[0]
		for _, s := range candidates[1:] {
			if s.gain > best.gain {
				best = s
			}
		}
		return best
	}
	// C4.5: restrict to candidates with at least average gain, then pick
	// the best gain ratio (guards the ratio against tiny-split-info
	// artifacts).
	meanGain := 0.0
	for _, s := range candidates {
		meanGain += s.gain
	}
	meanGain /= float64(len(candidates))
	var best *split
	for _, s := range candidates {
		if s.gain+1e-12 < meanGain {
			continue
		}
		if best == nil || s.gainRatio > best.gainRatio {
			best = s
		}
	}
	if best == nil {
		best = candidates[0]
	}
	return best
}

// nominalSplit evaluates the multiway split on a nominal attribute.
func (g *grower) nominalSplit(attr int, rows []int, weights []float64) *split {
	nv := g.schema.Attr(attr).NumValues()
	branches := make([][]float64, nv)
	for i := range branches {
		branches[i] = make([]float64, g.ins.K)
	}
	parent := make([]float64, g.ins.K)
	branchSizes := make([]float64, nv, nv+1)
	knownW, missingW := 0.0, 0.0
	for i, r := range rows {
		v := g.ins.Table.Get(r, attr)
		w := weights[i]
		if v.IsNull() {
			missingW += w
			continue
		}
		c := g.ins.Class[r]
		branches[v.NomIdx()][c] += w
		parent[c] += w
		branchSizes[v.NomIdx()] += w
		knownW += w
	}
	if knownW <= 0 {
		return nil
	}
	// At least two branches must carry MinLeaf weight.
	populated := 0
	for _, sz := range branchSizes {
		if sz >= g.opts.MinLeaf {
			populated++
		}
	}
	if populated < 2 {
		return nil
	}
	gain := stats.InfoGain(parent, branches) * knownW / (knownW + missingW)
	sizesWithMissing := branchSizes
	if missingW > 0 {
		sizesWithMissing = append(sizesWithMissing, missingW)
	}
	return &split{
		attr:      attr,
		gain:      gain,
		gainRatio: stats.GainRatio(gain, sizesWithMissing),
		branches:  branches,
	}
}

// numericSplit finds the best binary threshold on a numeric attribute.
func (g *grower) numericSplit(attr int, rows []int, weights []float64) *split {
	type vw struct {
		v float64
		c int
		w float64
	}
	var known []vw
	missingW := 0.0
	parent := make([]float64, g.ins.K)
	for i, r := range rows {
		val := g.ins.Table.Get(r, attr)
		if val.IsNull() {
			missingW += weights[i]
			continue
		}
		c := g.ins.Class[r]
		known = append(known, vw{v: val.Float(), c: c, w: weights[i]})
		parent[c] += weights[i]
	}
	if len(known) < 2 {
		return nil
	}
	sort.Slice(known, func(i, j int) bool { return known[i].v < known[j].v })
	knownW := 0.0
	for _, k := range known {
		knownW += k.w
	}

	left := make([]float64, g.ins.K)
	right := append([]float64(nil), parent...)
	leftW := 0.0
	bestGain, bestThresh := -1.0, 0.0
	var bestLeft, bestRight []float64
	for i := 0; i < len(known)-1; i++ {
		left[known[i].c] += known[i].w
		right[known[i].c] -= known[i].w
		leftW += known[i].w
		if known[i].v == known[i+1].v {
			continue // threshold must separate distinct values
		}
		if leftW < g.opts.MinLeaf || knownW-leftW < g.opts.MinLeaf {
			continue
		}
		gain := stats.InfoGain(parent, [][]float64{left, right})
		if gain > bestGain {
			bestGain = gain
			bestThresh = (known[i].v + known[i+1].v) / 2
			bestLeft = append(bestLeft[:0], left...)
			bestRight = append(bestRight[:0], right...)
		}
	}
	if bestGain < 0 {
		return nil
	}
	gain := bestGain * knownW / (knownW + missingW)
	leftSize, rightSize := 0.0, 0.0
	for _, c := range bestLeft {
		leftSize += c
	}
	for _, c := range bestRight {
		rightSize += c
	}
	sizes := []float64{leftSize, rightSize}
	if missingW > 0 {
		sizes = append(sizes, missingW)
	}
	return &split{
		attr:      attr,
		isNumeric: true,
		thresh:    bestThresh,
		gain:      gain,
		gainRatio: stats.GainRatio(gain, sizes),
		branches:  [][]float64{bestLeft, bestRight},
	}
}

// childSet is one branch's weighted instance set.
type childSet struct {
	rows    []int
	weights []float64
}

// partition distributes the instances over the split's branches; instances
// with a missing split value go to every branch with weight scaled by the
// branch's share of the known weight — C4.5's fractional instances
// ("this approach requires the possibility to 'distribute' a training
// instance over several branches of an inner node", §5.1.2).
func (s *split) partition(g *grower, rows []int, weights []float64) []childSet {
	nb := len(s.branches)
	if s.isNumeric {
		nb = 2
	}
	sets := make([]childSet, nb)
	shares := make([]float64, nb)
	knownW := 0.0
	for b := range s.branches {
		for _, c := range s.branches[b] {
			shares[b] += c
			knownW += c
		}
	}
	if knownW > 0 {
		for b := range shares {
			shares[b] /= knownW
		}
	}
	for i, r := range rows {
		v := g.ins.Table.Get(r, s.attr)
		w := weights[i]
		if v.IsNull() {
			for b := range sets {
				if shares[b] <= 0 {
					continue
				}
				sets[b].rows = append(sets[b].rows, r)
				sets[b].weights = append(sets[b].weights, w*shares[b])
			}
			continue
		}
		var b int
		if s.isNumeric {
			if v.Float() <= s.thresh {
				b = 0
			} else {
				b = 1
			}
		} else {
			b = v.NomIdx()
		}
		sets[b].rows = append(sets[b].rows, r)
		sets[b].weights = append(sets[b].weights, w)
	}
	return sets
}
