package audittree

import (
	"math"

	"dataaudit/internal/dataset"
)

// The compiled rule matcher. ExtractRules unfolds the decision tree into
// root-to-leaf rules, so a linear first-match scan re-evaluates the same
// root conditions once per rule — O(rules × conds) per prediction. But the
// rules of one tree are disjoint prefix paths: grouping them by their
// condition prefixes reassembles the tree, and matching becomes a single
// O(depth) descent. The trie is built lazily on first prediction and
// yields exactly the rule the linear scan would find; rule sets that do
// not have tree shape (e.g. hand-assembled ones where one rule's
// antecedent is a prefix of another's) fail compilation and keep the
// linear scan, so the matcher is a pure optimization, never a semantic
// change.

// trieNode is one node of the compiled matcher.
type trieNode struct {
	// rule is the index of the rule terminating here, or -1. Terminal
	// nodes have no children (a tree leaf has no descendants).
	rule int
	// attr is the column the children test; isNumeric and thresh describe
	// a binary threshold split (le: value <= thresh, gt: value > thresh),
	// otherwise nom holds one child per tested domain value (nil entries
	// match no rule).
	attr      int
	isNumeric bool
	thresh    float64
	nom       []*trieNode
	le, gt    *trieNode
}

// match descends to the matching rule's index, or -1. The condition
// semantics mirror Cond.Matches exactly: a null value fails every test,
// and a non-nominal value fails a nominal test.
func (n *trieNode) match(row []dataset.Value) int {
	for n != nil {
		if n.rule >= 0 {
			return n.rule
		}
		v := row[n.attr]
		if v.IsNull() {
			return -1
		}
		if n.isNumeric {
			f := v.Float()
			if math.IsNaN(f) {
				// NaN fails both threshold tests in Cond.Matches, so no
				// rule through this node can match.
				return -1
			}
			if f <= n.thresh {
				n = n.le
			} else {
				n = n.gt
			}
			continue
		}
		if !v.IsNominal() {
			return -1
		}
		idx := v.NomIdx()
		if idx >= len(n.nom) {
			return -1
		}
		n = n.nom[idx]
	}
	return -1
}

// compileRules builds the trie, or returns nil when the rule set does not
// conform to the disjoint-prefix shape tree extraction guarantees.
func compileRules(rules []Rule) *trieNode {
	idxs := make([]int, len(rules))
	for i := range idxs {
		idxs[i] = i
	}
	return compileGroup(rules, idxs, 0)
}

// compileGroup builds the subtrie for the rules sharing a condition
// prefix of the given depth.
func compileGroup(rules []Rule, idxs []int, depth int) *trieNode {
	node := &trieNode{rule: -1}
	var rest []int
	for _, i := range idxs {
		if len(rules[i].Conds) == depth {
			if node.rule >= 0 {
				return nil // duplicate path: linear order would matter
			}
			node.rule = i
		} else {
			rest = append(rest, i)
		}
	}
	if node.rule >= 0 {
		if len(rest) > 0 {
			return nil // one rule is a prefix of another: order matters
		}
		return node
	}
	if len(rest) == 0 {
		return node // dead branch: matches nothing
	}

	// Every continuing rule must test the same attribute here (the
	// children of one tree split), and numeric tests must share the
	// threshold.
	first := rules[rest[0]].Conds[depth]
	node.attr, node.isNumeric, node.thresh = first.Attr, first.IsNumeric, first.Thresh
	maxVal := -1
	for _, i := range rest {
		c := rules[i].Conds[depth]
		if c.Attr != node.attr || c.IsNumeric != node.isNumeric {
			return nil
		}
		if node.isNumeric {
			if c.Thresh != node.thresh {
				return nil
			}
		} else if c.Val > maxVal {
			maxVal = c.Val
		}
	}

	if node.isNumeric {
		var le, gt []int
		for _, i := range rest {
			if rules[i].Conds[depth].Gt {
				gt = append(gt, i)
			} else {
				le = append(le, i)
			}
		}
		if len(le) > 0 {
			if node.le = compileGroup(rules, le, depth+1); node.le == nil {
				return nil
			}
		}
		if len(gt) > 0 {
			if node.gt = compileGroup(rules, gt, depth+1); node.gt == nil {
				return nil
			}
		}
		return node
	}

	byVal := make([][]int, maxVal+1)
	for _, i := range rest {
		v := rules[i].Conds[depth].Val
		byVal[v] = append(byVal[v], i)
	}
	node.nom = make([]*trieNode, maxVal+1)
	for v, group := range byVal {
		if len(group) == 0 {
			continue
		}
		if node.nom[v] = compileGroup(rules, group, depth+1); node.nom[v] == nil {
			return nil
		}
	}
	return node
}
