// Package audittree packages the paper's §5.4 adjustments of C4.5 for the
// data-auditing context into a ready-made trainer:
//
//   - pre-pruning via the minimal instance count minInst derived from the
//     user's minimum error confidence,
//   - integrated pruning by expected error confidence (Definition 9)
//     replacing C4.5's pessimistic-error criterion,
//   - transformation of the decision tree into an equivalent rule set with
//     deletion of the rules that cannot contribute to error detection.
//
// The resulting rule sets "build the structure model of the data. In
// database terminology it can be seen as a set of integrity constraints
// that must hold with a given probability" (§5.4).
package audittree

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dataaudit/internal/c45"
	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// FilterMode selects which extracted rules are deleted.
type FilterMode uint8

const (
	// FilterPaper deletes rules with an expected error confidence of zero
	// and rules whose best achievable error confidence stays below the
	// minimum confidence — the full §5.4 behaviour.
	FilterPaper FilterMode = iota
	// FilterReachableOnly keeps zero-expErrorConf rules (pure leaves) as
	// long as they could flag a deviation in unseen data; useful when the
	// structure model is induced offline and applied to new loads (§2.2).
	FilterReachableOnly
	// FilterNone keeps every rule.
	FilterNone
)

// Options configure the adjusted inducer.
type Options struct {
	// MinConfidence is the user's minimal error confidence for detected
	// errors (the paper's evaluation fixes 0.8).
	MinConfidence float64
	// ConfLevel is the one-sided confidence level for all interval bounds
	// (default 0.95).
	ConfLevel float64
	// Filter selects the rule-deletion mode (default FilterPaper).
	Filter FilterMode
	// MinLeaf is C4.5's minimum branch weight (default 2).
	MinLeaf float64
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.ConfLevel == 0 {
		o.ConfLevel = 0.95
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	return o
}

// Trainer induces audit-adjusted trees and converts them to rule sets.
type Trainer struct {
	Opts Options
}

var _ mlcore.Trainer = (*Trainer)(nil)

// Name implements mlcore.Trainer.
func (t *Trainer) Name() string { return "c4.5-audit" }

// Train implements mlcore.Trainer: it induces the adjusted tree and returns
// the filtered rule set (the structure model used for deviation detection).
func (t *Trainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	rs, err := t.TrainRuleSet(ins)
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// inner builds the §5.4-adjusted C4.5 trainer.
func (t *Trainer) inner() *c45.Trainer {
	opts := t.Opts.WithDefaults()
	minInst := stats.MinInstForConfidence(opts.MinConfidence, opts.ConfLevel)
	return &c45.Trainer{Opts: c45.Options{
		UseGainRatio:    true,
		MinLeaf:         opts.MinLeaf,
		MinInst:         float64(minInst),
		ExpErrConfPrune: true,
		MinErrConf:      opts.MinConfidence,
		ConfLevel:       opts.ConfLevel,
	}}
}

// TrainTree induces the audit-adjusted decision tree.
func (t *Trainer) TrainTree(ins *mlcore.Instances) (*c45.Tree, error) {
	return t.inner().TrainTree(ins)
}

// TrainRuleSet induces the tree and extracts the filtered rule set.
func (t *Trainer) TrainRuleSet(ins *mlcore.Instances) (*RuleSet, error) {
	return t.TrainRuleSetWarm(ins, nil)
}

// TrainRuleSetWarm induces the tree warm-started from a previous tree's
// skeleton (nil is a cold TrainRuleSet) and extracts the filtered rule
// set. The induced tree's own skeleton is stored on the rule set so the
// next re-induction can warm-start in turn.
func (t *Trainer) TrainRuleSetWarm(ins *mlcore.Instances, prev *c45.Skeleton) (*RuleSet, error) {
	tree, err := t.inner().TrainTreeWarm(ins, prev)
	if err != nil {
		return nil, err
	}
	rs := ExtractRules(tree, t.Opts.WithDefaults())
	rs.Hint = tree.Skeleton()
	return rs, nil
}

// Cond is one test on a root-to-leaf path.
type Cond struct {
	// Attr is the tested column.
	Attr int
	// IsNumeric distinguishes threshold tests from nominal equality.
	IsNumeric bool
	// Val is the required nominal domain index.
	Val int
	// Thresh and Gt encode the numeric test: value > Thresh when Gt,
	// value <= Thresh otherwise.
	Thresh float64
	Gt     bool
}

// Matches evaluates the condition on a row; a null value never matches
// (a rule whose antecedent cannot be evaluated is not applicable).
func (c Cond) Matches(row []dataset.Value) bool {
	v := row[c.Attr]
	if v.IsNull() {
		return false
	}
	if c.IsNumeric {
		if c.Gt {
			return v.Float() > c.Thresh
		}
		return v.Float() <= c.Thresh
	}
	return v.IsNominal() && v.NomIdx() == c.Val
}

// Render pretty-prints the condition.
func (c Cond) Render(s *dataset.Schema) string {
	a := s.Attr(c.Attr)
	if c.IsNumeric {
		op := "<="
		if c.Gt {
			op = ">"
		}
		return fmt.Sprintf("%s %s %s", a.Name, op, a.Format(dataset.Num(c.Thresh)))
	}
	return fmt.Sprintf("%s = %s", a.Name, a.Domain[c.Val])
}

// Rule is one root-to-leaf path with the leaf's class distribution.
type Rule struct {
	Conds []Cond
	// Dist is the leaf's weighted class distribution; its Total is the n
	// of Definition 7.
	Dist mlcore.Distribution
	// ExpErrConf caches Definition 9 for the leaf.
	ExpErrConf float64
	// MaxErrConf caches the best error confidence the rule could assign
	// (observed class probability 0).
	MaxErrConf float64
}

// Matches reports whether every condition holds on the row.
func (r *Rule) Matches(row []dataset.Value) bool {
	for _, c := range r.Conds {
		if !c.Matches(row) {
			return false
		}
	}
	return true
}

// Render pretty-prints the rule in the paper's §6.2 style
// ("KBM = 01 ∧ GBM = 901 → BRV = 501").
func (r *Rule) Render(s *dataset.Schema, classLabel func(int) string) string {
	parts := make([]string, len(r.Conds))
	for i, c := range r.Conds {
		parts[i] = c.Render(s)
	}
	best, _ := r.Dist.Best()
	lhs := strings.Join(parts, " ∧ ")
	if lhs == "" {
		lhs = "⊤"
	}
	return fmt.Sprintf("%s → %s  [n=%.0f]", lhs, classLabel(best), r.Dist.N())
}

// RuleSet is the structure model for one class attribute: the filtered
// rules extracted from the audit-adjusted tree. It implements
// mlcore.Classifier so it can drive deviation detection directly; rows
// matching no retained rule answer with an empty distribution (no evidence,
// no error flagged) — this is what causes the paper's Figure-3 jump at
// 6000 records ("As these rule are deleted, they cannot be used for error
// detection").
type RuleSet struct {
	Rules []Rule
	// K is the number of class values.
	K int
	// Dropped counts the rules deleted by filtering (for reports).
	Dropped int
	// Hint is the skeleton of the tree the rules were extracted from; it
	// seeds the next warm re-induction and gob-serializes with the model.
	// Rule sets decoded from before the field existed carry nil (Update
	// then falls back to a cold retrain).
	Hint *c45.Skeleton

	// compileOnce builds the trie matcher lazily on first prediction (and
	// so also after a gob load, which bypasses ExtractRules). Both fields
	// are unexported: gob ignores them and a decoded RuleSet recompiles.
	compileOnce sync.Once
	trie        *trieNode
}

var _ mlcore.Classifier = (*RuleSet)(nil)
var _ mlcore.IncrementalClassifier = (*RuleSet)(nil)

// Update implements mlcore.IncrementalClassifier by warm re-induction:
// the tree is regrown over the full post-delta set seeded with the
// stored skeleton (only subtrees whose split became inadmissible
// re-search), then rules are re-extracted and re-filtered. The trainer
// must be the *audittree.Trainer carrying the filter options; the
// successor is quality-equivalent to a cold retrain.
func (rs *RuleSet) Update(trainer mlcore.Trainer, d mlcore.UpdateDelta) (mlcore.Classifier, error) {
	if d.Full == nil {
		return nil, fmt.Errorf("audittree: update requires the full post-delta instance set")
	}
	tr, ok := trainer.(*Trainer)
	if !ok {
		return nil, fmt.Errorf("audittree: update requires a *audittree.Trainer, got %T", trainer)
	}
	return tr.TrainRuleSetWarm(d.Full, rs.Hint)
}

// match returns the first rule matching the row, or nil. Rules extracted
// from a tree are disjoint prefix paths, so the compiled trie descends to
// the unique match in O(depth); rule sets that do not conform to the tree
// shape (hand-built sets) keep the linear first-match scan.
func (rs *RuleSet) match(row []dataset.Value) *Rule {
	rs.compileOnce.Do(func() { rs.trie = compileRules(rs.Rules) })
	if rs.trie != nil {
		if i := rs.trie.match(row); i >= 0 {
			return &rs.Rules[i]
		}
		return nil
	}
	for i := range rs.Rules {
		if rs.Rules[i].Matches(row) {
			return &rs.Rules[i]
		}
	}
	return nil
}

// Predict implements mlcore.Classifier.
func (rs *RuleSet) Predict(row []dataset.Value) mlcore.Distribution {
	if r := rs.match(row); r != nil {
		return r.Dist
	}
	return mlcore.NewDistribution(rs.K)
}

// PredictInto implements mlcore.Classifier without allocating: the
// matched rule's distribution is copied into the caller's scratch buffer;
// rows matching no retained rule answer with an empty distribution.
func (rs *RuleSet) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	if r := rs.match(row); r != nil {
		d.CopyFrom(r.Dist)
		return
	}
	d.Reset(rs.K)
}

// ExtractRules walks the tree and converts every root-to-leaf path into a
// rule, then deletes rules according to the filter mode. Rules are ordered
// by descending support so that reports list the strongest dependencies
// first (tree paths are disjoint, so order does not affect Predict).
func ExtractRules(tree *c45.Tree, opts Options) *RuleSet {
	opts = opts.WithDefaults()
	rs := &RuleSet{K: tree.K}
	var walk func(n *c45.Node, conds []Cond)
	walk = func(n *c45.Node, conds []Cond) {
		if n.IsLeaf() {
			rule := Rule{
				Conds:      append([]Cond(nil), conds...),
				Dist:       n.Dist,
				ExpErrConf: c45.ExpErrorConfLeaf(n.Dist, opts.ConfLevel, opts.MinConfidence),
			}
			_, pHat := n.Dist.Best()
			rule.MaxErrConf = stats.ErrorConfidence(pHat, 0, n.Dist.N(), opts.ConfLevel)
			if keepRule(&rule, opts) {
				rs.Rules = append(rs.Rules, rule)
			} else {
				rs.Dropped++
			}
			return
		}
		if n.IsNumeric {
			walk(n.Children[0], append(conds, Cond{Attr: n.Attr, IsNumeric: true, Thresh: n.Thresh}))
			walk(n.Children[1], append(conds, Cond{Attr: n.Attr, IsNumeric: true, Thresh: n.Thresh, Gt: true}))
			return
		}
		for val, ch := range n.Children {
			walk(ch, append(conds, Cond{Attr: n.Attr, Val: val}))
		}
	}
	walk(tree.Root, nil)
	sort.SliceStable(rs.Rules, func(i, j int) bool {
		return rs.Rules[i].Dist.N() > rs.Rules[j].Dist.N()
	})
	return rs
}

func keepRule(r *Rule, opts Options) bool {
	switch opts.Filter {
	case FilterNone:
		return true
	case FilterReachableOnly:
		return r.MaxErrConf >= opts.MinConfidence
	default: // FilterPaper
		return r.ExpErrConf > 0 && r.MaxErrConf >= opts.MinConfidence
	}
}
