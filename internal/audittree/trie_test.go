package audittree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// linearPredict is the pre-trie matching semantics: first rule whose
// antecedent holds, in rule-set order.
func linearPredict(rs *RuleSet, row []dataset.Value) mlcore.Distribution {
	for i := range rs.Rules {
		if rs.Rules[i].Matches(row) {
			return rs.Rules[i].Dist
		}
	}
	return mlcore.NewDistribution(rs.K)
}

// TestTrieMatchesLinearScan proves the compiled matcher is behaviourally
// identical to the linear first-match scan on a trained rule set,
// including null and out-of-domain values.
func TestTrieMatchesLinearScan(t *testing.T) {
	tab := engineTable(t, 5000, 3, 31)
	ins := gbmInstances(t, tab)
	rs, err := (&Trainer{Opts: Options{MinConfidence: 0.8, Filter: FilterNone}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	rs.compileOnce.Do(func() { rs.trie = compileRules(rs.Rules) })
	if rs.trie == nil {
		t.Fatal("tree-extracted rule set must compile to a trie")
	}

	rng := rand.New(rand.NewSource(99))
	val := func(k int) dataset.Value {
		switch rng.Intn(5) {
		case 0:
			return dataset.Null()
		default:
			return dataset.Nom(rng.Intn(k + 1)) // +1 exercises out-of-domain codes
		}
	}
	for i := 0; i < 5000; i++ {
		row := []dataset.Value{val(3), val(2), val(3)}
		want := linearPredict(rs, row)
		got := rs.Predict(row)
		if !reflect.DeepEqual(want.Counts, got.Counts) || want.Total != got.Total {
			t.Fatalf("row %v: trie %+v, linear %+v", row, got, want)
		}
		var into mlcore.Distribution
		rs.PredictInto(row, &into)
		if !reflect.DeepEqual(want.Counts, into.Counts) || want.Total != into.Total {
			t.Fatalf("row %v: PredictInto %+v, linear %+v", row, into, want)
		}
	}
}

// TestTrieRejectsNonTreeShapes: rule sets whose match outcome could
// depend on rule order must fall back to the linear scan.
func TestTrieRejectsNonTreeShapes(t *testing.T) {
	dist := func(w float64) mlcore.Distribution {
		d := mlcore.NewDistribution(2)
		d.Add(0, w)
		return d
	}
	nomRow := []dataset.Value{dataset.Nom(1), dataset.Nom(0), dataset.Nom(0)}
	numRow := []dataset.Value{dataset.Num(1.5), dataset.Nom(0), dataset.Nom(0)}
	cases := []struct {
		name  string
		rules []Rule
		row   []dataset.Value
	}{
		{"prefix-of-another", []Rule{
			{Conds: []Cond{{Attr: 0, Val: 1}, {Attr: 1, Val: 0}}, Dist: dist(5)},
			{Conds: []Cond{{Attr: 0, Val: 1}}, Dist: dist(3)},
		}, nomRow},
		{"duplicate-path", []Rule{
			{Conds: []Cond{{Attr: 0, Val: 1}}, Dist: dist(5)},
			{Conds: []Cond{{Attr: 0, Val: 1}}, Dist: dist(3)},
		}, nomRow},
		{"mixed-attrs-at-depth", []Rule{
			{Conds: []Cond{{Attr: 0, Val: 1}}, Dist: dist(5)},
			{Conds: []Cond{{Attr: 1, Val: 0}}, Dist: dist(3)},
		}, nomRow},
		{"mixed-thresholds", []Rule{
			{Conds: []Cond{{Attr: 0, IsNumeric: true, Thresh: 1}}, Dist: dist(5)},
			{Conds: []Cond{{Attr: 0, IsNumeric: true, Thresh: 2, Gt: true}}, Dist: dist(3)},
		}, numRow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if trie := compileRules(tc.rules); trie != nil {
				t.Fatal("non-tree rule set must not compile")
			}
			// The fallback must still answer: first match wins.
			rs := &RuleSet{Rules: tc.rules, K: 2}
			want := linearPredict(rs, tc.row)
			got := rs.Predict(tc.row)
			if !reflect.DeepEqual(want.Counts, got.Counts) || want.Total != got.Total {
				t.Fatalf("fallback Predict differs: want %+v, got %+v", want, got)
			}
		})
	}
}

// TestTrieNaNMatchesLinearScan: a NaN numeric value fails both sides of
// a threshold split in Cond.Matches, so the trie must answer exactly
// like the linear scan — no rule, empty distribution.
func TestTrieNaNMatchesLinearScan(t *testing.T) {
	dist := func(w float64) mlcore.Distribution {
		d := mlcore.NewDistribution(2)
		d.Add(0, w)
		return d
	}
	rules := []Rule{
		{Conds: []Cond{{Attr: 0, IsNumeric: true, Thresh: 10}}, Dist: dist(5)},
		{Conds: []Cond{{Attr: 0, IsNumeric: true, Thresh: 10, Gt: true}}, Dist: dist(3)},
	}
	trie := compileRules(rules)
	if trie == nil {
		t.Fatal("a binary threshold split must compile")
	}
	rs := &RuleSet{Rules: rules, K: 2}
	row := []dataset.Value{dataset.Num(math.NaN())}
	want := linearPredict(rs, row)
	if want.N() != 0 {
		t.Fatal("precondition: the linear scan must not match NaN")
	}
	if got := rs.Predict(row); got.N() != 0 {
		t.Fatalf("trie matched a NaN value: %+v", got)
	}
	var d mlcore.Distribution
	rs.PredictInto(row, &d)
	if d.N() != 0 || d.K() != 2 {
		t.Fatalf("PredictInto matched a NaN value: %+v", d)
	}
}

// TestTrieEmptyRuleSet: a fully filtered rule set answers every row with
// an empty distribution, through both paths.
func TestTrieEmptyRuleSet(t *testing.T) {
	rs := &RuleSet{K: 3}
	row := []dataset.Value{dataset.Nom(0)}
	if d := rs.Predict(row); d.N() != 0 || d.K() != 3 {
		t.Fatalf("empty rule set must predict an empty %d-class distribution, got %+v", 3, d)
	}
	var d mlcore.Distribution
	rs.PredictInto(row, &d)
	if d.N() != 0 || d.K() != 3 {
		t.Fatalf("PredictInto on empty rule set: got %+v", d)
	}
}
