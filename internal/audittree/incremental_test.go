package audittree_test

import (
	"testing"

	"dataaudit/internal/audittree"
	"dataaudit/internal/mlcore/conform"
)

// TestIncrementalConformance holds the rule-set Update (warm tree
// regrow + rule re-extraction) to the IncrementalClassifier contract:
// copy-on-write, deterministic, and prediction-agreeing with a cold
// retrain. Agreement is over matched rules only, so the tolerance is
// looser than the plain-tree families — a structural difference in one
// subtree can unmatch a block of rows.
func TestIncrementalConformance(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 8)
	conform.Run(t, conform.Config{
		Trainer:  &audittree.Trainer{Opts: audittree.Options{MinConfidence: 0.8, Filter: audittree.FilterReachableOnly}},
		MinAgree: 0.85,
	}, base, delta)
}
