package audittree

import (
	"dataaudit/internal/dataset"
)

// The columnar matcher. MatchBlock descends the compiled trie once per
// *block* instead of once per row: at every split the current row set is
// partitioned over typed column vectors (a two-way scatter for numeric
// thresholds, a counting scatter for nominal splits), so the per-row cost
// is one comparison per trie level with no Value unboxing and no per-row
// call dispatch. Rows reaching the same leaf come back as one MatchGroup,
// which lets the scorer compute the leaf's finding once and reuse it for
// every row in the group.

// MatchGroup is one leaf's worth of matched rows: the rule index and the
// chunk-row indices that reached it. Rows is backed by the MatchScratch
// and valid until the next MatchBlock call on the same scratch.
type MatchGroup struct {
	Rule int
	Rows []int32
}

// MatchScratch holds the per-depth partition buffers MatchBlock reuses
// across calls. The zero value is ready to use; after a warm-up call the
// matcher allocates nothing.
type MatchScratch struct {
	levels [][]int32 // one row-index slab per trie depth
	counts [][]int32 // per-depth counting-scatter histogram
	groups []MatchGroup
	out    []int32 // group-row arena; slab segments are copied here at
	// the leaves because a sibling subtree reuses (and overwrites) the
	// same-depth slab after the group was recorded
}

// level returns the depth-d slab with capacity for n rows.
func (s *MatchScratch) level(d, n int) []int32 {
	for len(s.levels) <= d {
		s.levels = append(s.levels, nil)
	}
	if cap(s.levels[d]) < n {
		s.levels[d] = make([]int32, n)
	}
	return s.levels[d][:n]
}

// zeroCounts returns the depth-d histogram of length n, zeroed.
func (s *MatchScratch) zeroCounts(d, n int) []int32 {
	for len(s.counts) <= d {
		s.counts = append(s.counts, nil)
	}
	if cap(s.counts[d]) < n {
		s.counts[d] = make([]int32, n)
	}
	c := s.counts[d][:n]
	for i := range c {
		c[i] = 0
	}
	return c
}

// MatchBlock matches every row of the chunk against the compiled trie and
// returns one group per matched leaf (row order within a group is
// unspecified; a row appears in at most one group). Rows matching no rule
// appear in no group — exactly the rows for which the row path would
// predict an empty distribution. It returns ok == false when the rule set
// has no tree shape and therefore no trie; callers must then fall back to
// per-row matching. The groups (and their Rows) are backed by the scratch
// and valid until the next MatchBlock call on it.
func (rs *RuleSet) MatchBlock(ck *dataset.ColumnChunk, s *MatchScratch) (groups []MatchGroup, ok bool) {
	rs.compileOnce.Do(func() { rs.trie = compileRules(rs.Rules) })
	if rs.trie == nil {
		return nil, false
	}
	n := ck.Rows()
	rows := s.level(0, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rs.matchRows(ck, rows, s), true
}

// MatchRows is MatchBlock restricted to a subset of the chunk's rows:
// only the listed row indices are matched, everything else about the
// contract is identical. The rows slice is read but never written or
// retained. Like MatchBlock it reports ok == false when the rule set has
// no trie.
func (rs *RuleSet) MatchRows(ck *dataset.ColumnChunk, rows []int32, s *MatchScratch) (groups []MatchGroup, ok bool) {
	rs.compileOnce.Do(func() { rs.trie = compileRules(rs.Rules) })
	if rs.trie == nil {
		return nil, false
	}
	return rs.matchRows(ck, rows, s), true
}

func (rs *RuleSet) matchRows(ck *dataset.ColumnChunk, rows []int32, s *MatchScratch) []MatchGroup {
	s.groups = s.groups[:0]
	if len(rows) == 0 {
		return s.groups
	}
	// Every row lands in at most one group, so len(rows) capacity removes
	// all arena growth from the walk.
	if cap(s.out) < len(rows) {
		s.out = make([]int32, 0, len(rows))
	} else {
		s.out = s.out[:0]
	}
	matchBlock(rs.trie, ck, rows, 1, s)
	return s.groups
}

// NumericSplits calls visit for every numeric threshold comparison the
// compiled matcher can perform, with the attribute it tests. It reports
// false when the rule set has no tree shape (and therefore no trie): a
// caller that needs the exhaustive set of comparisons — e.g. to build a
// value grid that is decision-equivalent to the raw column — must then
// treat the rule set as opaque.
func (rs *RuleSet) NumericSplits(visit func(attr int, thresh float64)) bool {
	rs.compileOnce.Do(func() { rs.trie = compileRules(rs.Rules) })
	if rs.trie == nil {
		return false
	}
	var walk func(t *trieNode)
	walk = func(t *trieNode) {
		if t == nil || t.rule >= 0 {
			return
		}
		if t.isNumeric {
			visit(t.attr, t.thresh)
			walk(t.le)
			walk(t.gt)
			return
		}
		for _, c := range t.nom {
			walk(c)
		}
	}
	walk(rs.trie)
	return true
}

// smallGroupRows is the row count under which the partitioned descent
// switches to a per-row scalar walk: with only a handful of rows left,
// the per-node scatter setup (histogram zeroing, prefix sums, two passes)
// costs more than just walking each row down the remaining levels.
const smallGroupRows = 64

// matchBlock partitions rows over node's split and recurses. The depth-d
// slab holds the partition of the rows slice (which lives in the parent's
// slab); a subtree only ever writes slabs deeper than its parent's, so
// the sibling's still-unread segment and every emitted group stay intact.
func matchBlock(t *trieNode, ck *dataset.ColumnChunk, rows []int32, depth int, s *MatchScratch) {
	if t.rule >= 0 {
		start := len(s.out)
		s.out = append(s.out, rows...)
		s.groups = append(s.groups, MatchGroup{Rule: t.rule, Rows: s.out[start:]})
		return
	}
	if len(rows) <= smallGroupRows {
		matchRowsScalar(t, ck, rows, s)
		return
	}
	col := ck.Col(t.attr)

	if t.isNumeric {
		// Two-way scatter: le rows grow from the front of the slab, gt
		// rows from the back. The chunk stores NaN at numeric nulls, and
		// NaN fails both threshold comparisons — so nulls, like genuine
		// NaN values, drop out without a null-bitmap load, mirroring
		// trieNode.match.
		nums := col.Num
		buf := s.level(depth, len(rows))
		li, gi := 0, len(rows)
		for _, r := range rows {
			f := nums[r]
			if f <= t.thresh {
				buf[li] = r
				li++
			} else if f > t.thresh {
				gi--
				buf[gi] = r
			}
		}
		if t.le != nil && li > 0 {
			matchBlock(t.le, ck, buf[:li], depth+1, s)
		}
		if t.gt != nil && gi < len(rows) {
			matchBlock(t.gt, ck, buf[gi:], depth+1, s)
		}
		return
	}

	// Nominal split: counting scatter into one contiguous segment per
	// tested domain value. The chunk stores -1 at nominal nulls, so the
	// unsigned bounds test drops nulls and out-of-range values alike
	// without a bitmap load. Values whose segment belongs to a nil child
	// are scattered too but never recursed into.
	nvals := len(t.nom)
	if nvals == 0 {
		return // dead branch: matches nothing
	}
	noms := col.Nom
	cnt := s.zeroCounts(depth, nvals)
	for _, r := range rows {
		if v := noms[r]; uint32(v) < uint32(nvals) {
			cnt[v]++
		}
	}
	buf := s.level(depth, len(rows))
	off := int32(0)
	for v := range cnt {
		c := cnt[v]
		cnt[v] = off // becomes the segment's write cursor
		off += c
	}
	for _, r := range rows {
		if v := noms[r]; uint32(v) < uint32(nvals) {
			buf[cnt[v]] = r
			cnt[v]++
		}
	}
	start := int32(0)
	for v := 0; v < nvals; v++ {
		end := cnt[v] // cursor has advanced to the segment end
		if end > start && t.nom[v] != nil {
			matchBlock(t.nom[v], ck, buf[start:end], depth+1, s)
		}
		start = end
	}
}

// matchRowsScalar finishes the descent row-at-a-time over the columns —
// the same tests as the partitioned path, minus the per-node setup.
// Matched rows become single-row groups (the scorer's finding cache
// makes group size irrelevant to the per-leaf amortization).
func matchRowsScalar(t *trieNode, ck *dataset.ColumnChunk, rows []int32, s *MatchScratch) {
	for _, r := range rows {
		n := t
		for n != nil && n.rule < 0 {
			col := ck.Col(n.attr)
			if n.isNumeric {
				f := col.Num[r]
				if f <= n.thresh {
					n = n.le
				} else if f > n.thresh {
					n = n.gt
				} else {
					n = nil // NaN (or the NaN null encoding) fails both
				}
			} else {
				if v := col.Nom[r]; uint32(v) < uint32(len(n.nom)) {
					n = n.nom[v]
				} else {
					n = nil
				}
			}
		}
		if n != nil {
			start := len(s.out)
			s.out = append(s.out, r)
			s.groups = append(s.groups, MatchGroup{Rule: n.rule, Rows: s.out[start:]})
		}
	}
}
