package audittree

import (
	"math/rand"
	"sort"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// mixedSchema has a numeric and a nominal feature, so the batch matcher's
// two-way threshold scatter and counting scatter are both exercised.
func mixedSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNumeric("X", 0, 100),
		dataset.NewNominal("A", "a", "b", "c"),
		dataset.NewNominal("C", "c0", "c1", "c2"),
	)
}

// mixedTable: C = c0 when X <= 30, else c1 when A = b, else c2 — with a
// little noise so the leaves keep real distributions, plus nulls in both
// features.
func mixedTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(mixedSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		a := rng.Intn(3)
		c := 2
		if x <= 30 {
			c = 0
		} else if a == 1 {
			c = 1
		}
		if rng.Float64() < 0.02 {
			c = rng.Intn(3)
		}
		row := []dataset.Value{dataset.Num(x), dataset.Nom(a), dataset.Nom(c)}
		if rng.Float64() < 0.03 {
			row[0] = dataset.Null()
		}
		if rng.Float64() < 0.03 {
			row[1] = dataset.Null()
		}
		tab.AppendRow(row)
	}
	return tab
}

// trainMixedRuleSet induces the audit-style rule set over the fixture.
func trainMixedRuleSet(t testing.TB, tab *dataset.Table) *RuleSet {
	t.Helper()
	ins := mlcore.NewInstances(tab, []int{0, 1}, 3, func(r int) int {
		v := tab.Get(r, 2)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
	rs, err := (&Trainer{Opts: Options{MinConfidence: 0.8}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) == 0 {
		t.Fatal("fixture trained an empty rule set")
	}
	return rs
}

// linearMatch is the batch matcher's oracle: the documented first-match
// linear scan over Rule.Matches, independent of the trie and of the
// columnar partitioning.
func linearMatch(rs *RuleSet, row []dataset.Value) int {
	for i := range rs.Rules {
		if rs.Rules[i].Matches(row) {
			return i
		}
	}
	return -1
}

// blockAssignment runs MatchBlock and flattens the groups into a per-row
// rule index (-1 = no match), failing if any row appears twice.
func blockAssignment(t *testing.T, groups []MatchGroup, n int) []int {
	t.Helper()
	got := make([]int, n)
	for r := range got {
		got[r] = -1
	}
	for _, g := range groups {
		for _, r := range g.Rows {
			if got[r] != -1 {
				t.Fatalf("row %d appears in two groups", r)
			}
			got[r] = g.Rule
		}
	}
	return got
}

// TestMatchBlockMatchesLinearScan holds the columnar descent to the
// linear-scan oracle row by row, for chunks above the partitioned path's
// threshold and small chunks that take the scalar walk.
func TestMatchBlockMatchesLinearScan(t *testing.T) {
	tab := mixedTable(t, 5000, 11)
	rs := trainMixedRuleSet(t, tab)
	var s MatchScratch

	for _, chunkRows := range []int{5000, smallGroupRows, 17, 1} {
		ck := dataset.NewColumnChunk(tab.Schema())
		row := make([]dataset.Value, tab.NumCols())
		for lo := 0; lo < tab.NumRows(); lo += chunkRows {
			hi := min(lo+chunkRows, tab.NumRows())
			tab.ChunkInto(ck, lo, hi)
			groups, ok := rs.MatchBlock(ck, &s)
			if !ok {
				t.Fatal("trained rule set has no trie")
			}
			got := blockAssignment(t, groups, hi-lo)
			for r := lo; r < hi; r++ {
				tab.RowInto(r, row)
				if want := linearMatch(rs, row); got[r-lo] != want {
					t.Fatalf("chunk=%d row %d: block matched rule %d, linear scan %d", chunkRows, r, got[r-lo], want)
				}
			}
		}
	}
}

// TestMatchRowsSubset checks the subset variant only touches the listed
// rows and agrees with the oracle on them.
func TestMatchRowsSubset(t *testing.T) {
	tab := mixedTable(t, 3000, 13)
	rs := trainMixedRuleSet(t, tab)
	ck := dataset.NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, tab.NumRows())

	var rows []int32
	inSubset := make(map[int32]bool)
	for r := int32(0); int(r) < tab.NumRows(); r += 3 {
		rows = append(rows, r)
		inSubset[r] = true
	}
	var s MatchScratch
	groups, ok := rs.MatchRows(ck, rows, &s)
	if !ok {
		t.Fatal("trained rule set has no trie")
	}
	row := make([]dataset.Value, tab.NumCols())
	matched := make(map[int32]int)
	for _, g := range groups {
		for _, r := range g.Rows {
			if !inSubset[r] {
				t.Fatalf("row %d matched but was not in the subset", r)
			}
			matched[r] = g.Rule
		}
	}
	for _, r := range rows {
		tab.RowInto(int(r), row)
		want := linearMatch(rs, row)
		got, hit := matched[r]
		if !hit {
			got = -1
		}
		if got != want {
			t.Fatalf("row %d: subset matched rule %d, linear scan %d", r, got, want)
		}
	}
}

// TestNumericSplitsCoversDecisions checks NumericSplits' contract: the
// visited thresholds are a decision-complete grid — two values falling
// between the same adjacent thresholds are indistinguishable to the
// matcher, whatever the other attributes hold.
func TestNumericSplitsCoversDecisions(t *testing.T) {
	tab := mixedTable(t, 5000, 17)
	rs := trainMixedRuleSet(t, tab)

	var grid []float64
	if !rs.NumericSplits(func(attr int, thresh float64) {
		if attr != 0 {
			t.Fatalf("visited a split on attribute %d; only column 0 is numeric", attr)
		}
		grid = append(grid, thresh)
	}) {
		t.Fatal("NumericSplits reported no trie for a trained rule set")
	}
	if len(grid) == 0 {
		t.Fatal("fixture rule set tests no numeric thresholds")
	}
	sort.Float64s(grid)

	// Probe pairs of values inside every grid cell (and beyond both
	// ends): same cell must mean same matched rule for every nominal
	// context.
	cells := [][2]float64{{grid[0] - 2, grid[0] - 1}}
	for i := 0; i+1 < len(grid); i++ {
		if grid[i+1] > grid[i] {
			lo := grid[i]
			w := grid[i+1] - grid[i]
			cells = append(cells, [2]float64{lo + w/3, lo + 2*w/3})
		}
	}
	cells = append(cells, [2]float64{grid[len(grid)-1] + 1, grid[len(grid)-1] + 2})
	row := make([]dataset.Value, tab.NumCols())
	for _, cell := range cells {
		for a := 0; a < 3; a++ {
			row[1], row[2] = dataset.Nom(a), dataset.Null()
			row[0] = dataset.Num(cell[0])
			m1 := linearMatch(rs, row)
			row[0] = dataset.Num(cell[1])
			m2 := linearMatch(rs, row)
			if m1 != m2 {
				t.Fatalf("values %v and %v (same grid cell, A=%d) matched rules %d and %d",
					cell[0], cell[1], a, m1, m2)
			}
		}
	}
}

// TestBatchMatcherNoTrieFallback: a hand-assembled rule set where one
// antecedent is a prefix of another has no trie; every batch entry point
// must report that instead of guessing.
func TestBatchMatcherNoTrieFallback(t *testing.T) {
	rs := &RuleSet{K: 3, Rules: []Rule{
		{Conds: []Cond{{Attr: 1, Val: 0}}},
		{Conds: []Cond{{Attr: 1, Val: 0}, {Attr: 0, IsNumeric: true, Thresh: 5}}},
	}}
	ck := dataset.NewColumnChunk(mixedSchema(t))
	var s MatchScratch
	if _, ok := rs.MatchBlock(ck, &s); ok {
		t.Fatal("MatchBlock compiled a trie for a prefix-overlapping rule set")
	}
	if _, ok := rs.MatchRows(ck, nil, &s); ok {
		t.Fatal("MatchRows compiled a trie for a prefix-overlapping rule set")
	}
	if rs.NumericSplits(func(int, float64) {}) {
		t.Fatal("NumericSplits reported a trie for a prefix-overlapping rule set")
	}
}
