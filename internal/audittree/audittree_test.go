package audittree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// engineSchema mimics the §6.2 QUIS flavor: BRV determines GBM with rare
// deviations.
func engineSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501", "600"),
		dataset.NewNominal("KBM", "01", "02"),
		dataset.NewNominal("GBM", "901", "911", "950"),
	)
}

// engineTable: BRV=404 -> GBM=901 (with `deviations` exceptions),
// BRV=501 -> GBM=911, BRV=600 -> GBM mixed.
func engineTable(t testing.TB, n, deviations int, seed int64) *dataset.Table {
	t.Helper()
	s := engineSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		brv := rng.Intn(3)
		gbm := brv % 3
		if brv == 0 && deviations > 0 {
			gbm = 1
			deviations--
		}
		if brv == 2 {
			gbm = rng.Intn(3)
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(brv), dataset.Nom(rng.Intn(2)), dataset.Nom(gbm)})
	}
	return tab
}

func gbmInstances(t testing.TB, tab *dataset.Table) *mlcore.Instances {
	t.Helper()
	return mlcore.NewInstances(tab, []int{0, 1}, 3, func(r int) int {
		v := tab.Get(r, 2)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
}

func TestTrainRuleSetFindsDependency(t *testing.T) {
	tab := engineTable(t, 3000, 2, 21)
	ins := gbmInstances(t, tab)
	tr := &Trainer{Opts: Options{MinConfidence: 0.8}}
	rs, err := tr.TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) == 0 {
		t.Fatalf("no rules extracted")
	}
	// The strongest rule must be the BRV=404 -> GBM=901 dependency (with 2
	// deviations in training it has positive expected error confidence).
	found := false
	s := tab.Schema()
	for _, r := range rs.Rules {
		text := r.Render(s, func(c int) string { return s.Attr(2).Domain[c] })
		if strings.Contains(text, "BRV = 404") && strings.Contains(text, "→ 901") {
			found = true
			if r.ExpErrConf <= 0 {
				t.Fatalf("deviating rule must have positive expected error confidence")
			}
		}
	}
	if !found {
		for _, r := range rs.Rules {
			t.Logf("rule: %s", r.Render(s, func(c int) string { return s.Attr(2).Domain[c] }))
		}
		t.Fatalf("BRV=404 → GBM=901 not found")
	}
}

func TestRuleSetFlagsDeviation(t *testing.T) {
	tab := engineTable(t, 5000, 1, 22)
	ins := gbmInstances(t, tab)
	rs, err := (&Trainer{Opts: Options{MinConfidence: 0.8}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	// A record BRV=404, GBM=911 must receive a high error confidence.
	row := []dataset.Value{dataset.Nom(0), dataset.Nom(0), dataset.Nom(1)}
	d := rs.Predict(row)
	if d.N() == 0 {
		t.Fatalf("no rule matched the deviating record")
	}
	cHat, pHat := d.Best()
	if cHat != 0 {
		t.Fatalf("predicted GBM class = %d, want 0 (901)", cHat)
	}
	ec := stats.ErrorConfidence(pHat, d.P(1), d.N(), 0.95)
	if ec < 0.9 {
		t.Fatalf("error confidence for the deviation = %g, want > 0.9", ec)
	}
}

func TestFilterPaperDropsPureAndWeakRules(t *testing.T) {
	// Small data: leaves cannot reach the 0.8 confidence limit -> all rules
	// deleted (the Fig. 3 effect below ~minInst records).
	tab := engineTable(t, 12, 1, 23)
	ins := gbmInstances(t, tab)
	rs, err := (&Trainer{Opts: Options{MinConfidence: 0.8}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 0 {
		t.Fatalf("tiny training set must not retain any rule, got %d", len(rs.Rules))
	}
	// Unmatched records yield the empty distribution: no detection.
	d := rs.Predict([]dataset.Value{dataset.Nom(0), dataset.Nom(0), dataset.Nom(1)})
	if d.N() != 0 {
		t.Fatalf("empty rule set must return empty distribution")
	}
}

func TestFilterModes(t *testing.T) {
	// Perfectly clean dependency: leaves are pure, expErrorConf = 0.
	tab := engineTable(t, 4000, 0, 24)
	ins := gbmInstances(t, tab)

	paper, err := (&Trainer{Opts: Options{MinConfidence: 0.8, Filter: FilterPaper}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	reachable, err := (&Trainer{Opts: Options{MinConfidence: 0.8, Filter: FilterReachableOnly}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	all, err := (&Trainer{Opts: Options{MinConfidence: 0.8, Filter: FilterNone}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Paper mode deletes the pure rules; reachable mode keeps them (they
	// could flag unseen deviations); none keeps everything.
	pureKept := 0
	for _, r := range reachable.Rules {
		if r.ExpErrConf == 0 {
			pureKept++
		}
	}
	if pureKept == 0 {
		t.Fatalf("FilterReachableOnly should keep pure high-support rules")
	}
	for _, r := range paper.Rules {
		if r.ExpErrConf == 0 {
			t.Fatalf("FilterPaper kept a zero-expErrorConf rule")
		}
	}
	if len(all.Rules) < len(reachable.Rules) {
		t.Fatalf("FilterNone must keep at least as many rules")
	}
	if paper.Dropped == 0 {
		t.Fatalf("paper filter should report dropped rules")
	}
}

func TestCondMatching(t *testing.T) {
	nominal := Cond{Attr: 0, Val: 1}
	if !nominal.Matches([]dataset.Value{dataset.Nom(1)}) {
		t.Fatalf("nominal match failed")
	}
	if nominal.Matches([]dataset.Value{dataset.Nom(0)}) {
		t.Fatalf("nominal mismatch accepted")
	}
	if nominal.Matches([]dataset.Value{dataset.Null()}) {
		t.Fatalf("null must never match")
	}
	le := Cond{Attr: 0, IsNumeric: true, Thresh: 5}
	gt := Cond{Attr: 0, IsNumeric: true, Thresh: 5, Gt: true}
	if !le.Matches([]dataset.Value{dataset.Num(5)}) || le.Matches([]dataset.Value{dataset.Num(6)}) {
		t.Fatalf("<= condition broken")
	}
	if !gt.Matches([]dataset.Value{dataset.Num(6)}) || gt.Matches([]dataset.Value{dataset.Num(5)}) {
		t.Fatalf("> condition broken")
	}
}

func TestCondRender(t *testing.T) {
	s := dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501"),
		dataset.NewNumeric("KM", 0, 100),
	)
	if got := (Cond{Attr: 0, Val: 0}).Render(s); got != "BRV = 404" {
		t.Fatalf("Render = %q", got)
	}
	if got := (Cond{Attr: 1, IsNumeric: true, Thresh: 42.5, Gt: true}).Render(s); got != "KM > 42.5" {
		t.Fatalf("Render = %q", got)
	}
}

func TestRulesAreDisjointAndOrdered(t *testing.T) {
	tab := engineTable(t, 3000, 3, 25)
	ins := gbmInstances(t, tab)
	rs, err := (&Trainer{Opts: Options{MinConfidence: 0.8, Filter: FilterNone}}).TrainRuleSet(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Ordered by descending support.
	for i := 1; i < len(rs.Rules); i++ {
		if rs.Rules[i].Dist.N() > rs.Rules[i-1].Dist.N()+1e-9 {
			t.Fatalf("rules not ordered by support")
		}
	}
	// Tree paths are disjoint: every fully-specified row matches at most
	// one rule.
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 500; trial++ {
		row := []dataset.Value{dataset.Nom(rng.Intn(3)), dataset.Nom(rng.Intn(2)), dataset.Nom(rng.Intn(3))}
		matches := 0
		for i := range rs.Rules {
			if rs.Rules[i].Matches(row) {
				matches++
			}
		}
		if matches > 1 {
			t.Fatalf("row matched %d rules; tree paths must be disjoint", matches)
		}
	}
}

func TestMaxErrConfCaching(t *testing.T) {
	d := mlcore.NewDistribution(2)
	d.Add(0, 999)
	d.Add(1, 1)
	r := Rule{Dist: d}
	_, pHat := d.Best()
	want := stats.ErrorConfidence(pHat, 0, d.N(), 0.95)
	// ExtractRules computes this; emulate and sanity-check monotonicity.
	if want < stats.ErrorConfidence(pHat, d.P(1), d.N(), 0.95) {
		t.Fatalf("max achievable confidence must dominate the observed one")
	}
	if math.IsNaN(want) || want <= 0 {
		t.Fatalf("unexpected max err conf: %g", want)
	}
	_ = r
}
