package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// workerClient speaks the shard protocol to one worker auditd.
type workerClient struct {
	base string // "http://host:port", no trailing slash
	hc   *http.Client
}

// statusError is a non-2xx worker reply, with the body's error string when
// the worker sent the usual JSON error shape.
type statusError struct {
	Status int
	Msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("worker replied %d: %s", e.Status, e.Msg)
}

// isVersionConflict reports the 409 a worker sends when the pinned
// (version, createdAt) no longer matches its local model — the signal to
// resync the replica and retry the shard.
func isVersionConflict(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.Status == http.StatusConflict
}

func (w *workerClient) url(path string, query url.Values) string {
	u := w.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return u
}

// readStatusError drains a non-2xx response into a *statusError.
func readStatusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	msg := string(body)
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	return &statusError{Status: resp.StatusCode, Msg: msg}
}

// meta fetches the worker's latest committed metadata for name over the
// plain model route. A 404 comes back as registry.NotFoundError so the
// caller can treat "worker has no copy" uniformly with "worker has the
// wrong copy".
func (w *workerClient) meta(ctx context.Context, name string) (registry.Meta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url("/v1/models/"+name, nil), nil)
	if err != nil {
		return registry.Meta{}, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return registry.Meta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return registry.Meta{}, &registry.NotFoundError{Name: name}
	}
	if resp.StatusCode != http.StatusOK {
		return registry.Meta{}, readStatusError(resp)
	}
	var meta registry.Meta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return registry.Meta{}, fmt.Errorf("decoding worker meta: %w", err)
	}
	return meta, nil
}

// ensureModel makes the worker hold exactly the coordinator's model
// version: it pulls the worker's metadata and pushes a replica only on
// mismatch (missing model, foreign version, schema-hash or CreatedAt
// disagreement — the last is the recreated-model guard). It reports
// whether a replica was actually pushed.
func (w *workerClient) ensureModel(ctx context.Context, meta registry.Meta, m *audit.Model) (pushed bool, err error) {
	remote, err := w.meta(ctx, meta.Name)
	if err == nil &&
		remote.Version == meta.Version &&
		remote.SchemaHash == meta.SchemaHash &&
		remote.CreatedAt.Equal(meta.CreatedAt) {
		return false, nil
	}
	if err != nil && !registry.IsNotFound(err) {
		return false, fmt.Errorf("checking worker model: %w", err)
	}
	if err := w.replicate(ctx, meta, m); err != nil {
		return false, err
	}
	return true, nil
}

// replicate pushes the model to the worker's replicate route.
func (w *workerClient) replicate(ctx context.Context, meta registry.Meta, m *audit.Model) error {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(EncodeReplica(pw, meta, m)) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.url("/v1/models/"+meta.Name+"/replicate", nil), pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentTypeReplica)
	resp, err := w.hc.Do(req)
	if err != nil {
		return fmt.Errorf("replicating %s v%d: %w", meta.Name, meta.Version, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicating %s v%d: %w", meta.Name, meta.Version, readStatusError(resp))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// auditShard streams the shard's rows to the worker and decodes the
// validated result. rows are global row indices into tab; the request
// pins (version, createdAt) so a worker whose model moved replies 409
// instead of scoring with the wrong model.
func (w *workerClient) auditShard(ctx context.Context, meta registry.Meta, tab *dataset.Table, rows []int, chunkRows int) (*audit.Result, error) {
	query := url.Values{
		"version":   {strconv.Itoa(meta.Version)},
		"createdAt": {meta.CreatedAt.UTC().Format(time.RFC3339Nano)},
	}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(writeShardStream(pw, tab, rows, chunkRows)) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url("/v1/models/"+meta.Name+"/audit/shard", query), pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentTypeChunkStream)
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readStatusError(resp)
	}
	sr, err := DecodeShardResult(resp.Body, len(rows), tab.NumCols())
	if err != nil {
		return nil, err
	}
	return sr.Result, nil
}

// writeShardStream encodes the shard's rows as a chunk stream. Contiguous
// index runs (the whole shard, under StrategyRange) take the columnar
// ChunkInto fast path; scattered hash shards append row by row. Record IDs
// ride through unchanged either way.
func writeShardStream(w io.Writer, tab *dataset.Table, rows []int, chunkRows int) error {
	sw := dataset.NewChunkStreamWriter(w)
	ck := dataset.NewColumnChunk(tab.Schema())
	buf := make([]dataset.Value, tab.NumCols())
	for lo := 0; lo < len(rows); lo += chunkRows {
		hi := min(lo+chunkRows, len(rows))
		if rows[hi-1]-rows[lo] == hi-1-lo { // contiguous run
			tab.ChunkInto(ck, rows[lo], rows[hi-1]+1)
		} else {
			ck.Reset()
			for _, r := range rows[lo:hi] {
				ck.AppendRow(tab.RowInto(r, buf), tab.ID(r))
			}
		}
		if err := sw.Write(ck); err != nil {
			return err
		}
	}
	return nil
}
