package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"dataaudit/internal/dataset"
)

// Strategy names a deterministic row→shard assignment.
type Strategy string

const (
	// StrategyRange cuts the batch into contiguous, near-equal row
	// ranges — shard s covers rows [s·n/S, (s+1)·n/S). Merging is a
	// plain audit.MergeResults in shard order.
	StrategyRange Strategy = "range"
	// StrategyHash assigns each row by an FNV-1a hash of its canonical
	// value signature, so identical rows always land on the same worker
	// (maximizing that worker's row-signature memo hits) and the split
	// is independent of row order within the batch contents themselves.
	StrategyHash Strategy = "hash"
)

// ParseStrategy validates a strategy name from a flag or query parameter.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case StrategyRange, StrategyHash:
		return Strategy(s), nil
	case "":
		return StrategyRange, nil
	}
	return "", fmt.Errorf("shard: unknown strategy %q (want range or hash)", s)
}

// Split assigns every row of the table to one of n shards and returns the
// per-shard global row indices, ascending within each shard. The
// assignment is a pure function of (table contents, strategy, n): it does
// not depend on chunk geometry, worker count or dispatch order, which is
// what makes the merged result reproducible.
//
// Shards may come back empty (fewer rows than shards, or a skewed hash);
// callers skip dispatching those.
func Split(tab *dataset.Table, strategy Strategy, n int) ([][]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	rows := tab.NumRows()
	shards := make([][]int, n)
	switch strategy {
	case StrategyRange:
		for s := 0; s < n; s++ {
			lo, hi := rows*s/n, rows*(s+1)/n
			if lo == hi {
				continue
			}
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = lo + i
			}
			shards[s] = idx
		}
	case StrategyHash:
		nominal := make([]bool, tab.NumCols())
		for c := range nominal {
			nominal[c] = tab.Schema().Attr(c).Type == dataset.NominalType
		}
		for r := 0; r < rows; r++ {
			s := int(rowHash(tab, r, nominal) % uint64(n))
			shards[s] = append(shards[s], r)
		}
	default:
		return nil, fmt.Errorf("shard: unknown strategy %q", strategy)
	}
	return shards, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// rowHash is an FNV-1a hash over the row's canonical value rendering: one
// 9-byte record per column — a kind tag (null/nominal/number) followed by
// 8 bytes of payload (domain index or Float64bits). The rendering is
// byte-exact, so two rows hash equal iff they are value-equal column by
// column; record IDs deliberately do not participate (duplicates of one
// row co-locate on one worker).
func rowHash(tab *dataset.Table, r int, nominal []bool) uint64 {
	var buf [9]byte
	h := uint64(fnvOffset)
	for c := range nominal {
		v := tab.Get(r, c)
		switch {
		case v.IsNull():
			buf[0] = 0
			binary.LittleEndian.PutUint64(buf[1:], 0)
		case nominal[c]:
			buf[0] = 1
			binary.LittleEndian.PutUint64(buf[1:], uint64(v.NomIdx()))
		default:
			buf[0] = 2
			binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(v.Float()))
		}
		for _, b := range buf {
			h ^= uint64(b)
			h *= fnvPrime
		}
	}
	return h
}
