// Package shard scales the audit pipeline across processes: a Coordinator
// splits a batch into shards (contiguous ranges or hash-of-row-signature),
// streams each shard's column chunks to a worker auditd over HTTP, and
// reassembles the workers' per-shard Results into one Result that is
// gob-byte-identical to a single-node audit of the same batch.
//
// The protocol rides the existing auditd surface: workers are plain auditd
// processes. Two worker-side routes carry it —
//
//	POST /v1/models/{name}/audit/shard?version=V&createdAt=T
//	    body: dataset chunk stream (Content-Type application/x-dataaudit-chunks)
//	    resp: gob ShardResult      (Content-Type application/x-dataaudit-result)
//	PUT  /v1/models/{name}/replicate
//	    body: gob ReplicaEnvelope  (Content-Type application/x-dataaudit-model)
//
// Model sync is pull-on-version-mismatch: before its first shard, the
// coordinator GETs the worker's /v1/models/{name} metadata and pushes a
// replica only when (Version, SchemaHash, CreatedAt) disagree —
// registry.InstallReplica's CreatedAt guard means a deleted-and-recreated
// model on either side can never silently poison a worker. Shard requests
// then pin both version and CreatedAt; a worker whose model changed
// underneath answers 409 and the coordinator resyncs and retries.
//
// Failure handling is shard-grained: a worker that dies mid-shard has its
// partial response discarded and the whole shard re-dispatched to a
// surviving worker, so the merged report is deterministic regardless of
// which workers failed when.
package shard

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"dataaudit/internal/audit"
	"dataaudit/internal/registry"
)

// Content types of the shard protocol. They are deliberately not generic
// ("application/octet-stream"): a worker can reject a mis-routed body
// before decoding a byte.
const (
	ContentTypeChunkStream = "application/x-dataaudit-chunks"
	ContentTypeShardResult = "application/x-dataaudit-result"
	ContentTypeReplica     = "application/x-dataaudit-model"
)

// ShardResult is a worker's response to one shard dispatch: the scored
// reports in dispatch order. Rows duplicates len(Result.Reports) so a
// truncated body fails validation instead of merging short.
type ShardResult struct {
	Rows   int
	Result *audit.Result
}

// EncodeShardResult writes the gob wire form.
func EncodeShardResult(w io.Writer, sr *ShardResult) error {
	return gob.NewEncoder(w).Encode(sr)
}

// DecodeShardResult reads and validates a worker response. wantRows is the
// dispatched shard size and wantAttrs the relation width; any disagreement
// — short report list, foreign width, out-of-range finding attributes,
// shard-local row indices that are not 0..n-1 in order — is a protocol
// error, never a silent partial merge.
func DecodeShardResult(r io.Reader, wantRows, wantAttrs int) (*ShardResult, error) {
	var sr ShardResult
	if err := gob.NewDecoder(r).Decode(&sr); err != nil {
		return nil, fmt.Errorf("shard: decoding result: %w", err)
	}
	if sr.Result == nil {
		return nil, fmt.Errorf("shard: result missing from response")
	}
	if sr.Rows != wantRows || len(sr.Result.Reports) != wantRows {
		return nil, fmt.Errorf("shard: worker returned %d/%d reports for a %d-row shard", sr.Rows, len(sr.Result.Reports), wantRows)
	}
	if sr.Result.NumAttrs != wantAttrs {
		return nil, fmt.Errorf("shard: worker scored %d attributes, want %d", sr.Result.NumAttrs, wantAttrs)
	}
	for i := range sr.Result.Reports {
		rep := &sr.Result.Reports[i]
		if rep.Row != i {
			return nil, fmt.Errorf("shard: report %d carries shard-local row %d", i, rep.Row)
		}
		for _, f := range rep.Findings {
			if f.Attr < 0 || f.Attr >= wantAttrs {
				return nil, fmt.Errorf("shard: report %d finding names attribute %d of %d", i, f.Attr, wantAttrs)
			}
		}
		// Gob decodes Best as a standalone Finding; re-aim it into the
		// report's own slice so downstream holds the usual invariant.
		rep.RepointBest()
	}
	return &sr, nil
}

// ReplicaEnvelope is the replication payload: the source registry's meta
// sidecar verbatim plus the model's gob bytes (audit.Marshal). The model
// travels as opaque bytes so the envelope decode cannot partially
// materialize a model the meta guard then rejects.
type ReplicaEnvelope struct {
	Meta  registry.Meta
	Model []byte
}

// EncodeReplica writes the gob wire form of a replication push.
func EncodeReplica(w io.Writer, meta registry.Meta, m *audit.Model) error {
	b, err := audit.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: marshalling replica: %w", err)
	}
	return gob.NewEncoder(w).Encode(&ReplicaEnvelope{Meta: meta, Model: b})
}

// DecodeReplica reads a replication push and materializes the model.
// Identity validation (schema hash vs meta, CreatedAt guard) belongs to
// registry.InstallReplica — this only gets the bytes back into shape.
func DecodeReplica(r io.Reader) (registry.Meta, *audit.Model, error) {
	var env ReplicaEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return registry.Meta{}, nil, fmt.Errorf("shard: decoding replica: %w", err)
	}
	m, err := audit.Unmarshal(env.Model)
	if err != nil {
		return registry.Meta{}, nil, fmt.Errorf("shard: replica model: %w", err)
	}
	return env.Meta, m, nil
}

// ErrSchemaMismatch marks a shard stream whose schema does not hash to the
// model's recorded fingerprint. Workers map it to 400.
var ErrSchemaMismatch = errors.New("shard: stream schema does not match the model's schema hash")

// RowLimitError reports a shard stream that crossed the worker's row
// limit. Workers map it to 413.
type RowLimitError struct{ Limit int }

func (e *RowLimitError) Error() string {
	return fmt.Sprintf("shard: stream exceeds the %d-row limit", e.Limit)
}
