package shard

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/obs"
	"dataaudit/internal/registry"
)

// maxConsecFails is how many dispatches in a row one worker may fail
// before the coordinator stops routing to it for the rest of the audit.
const maxConsecFails = 3

// Options configure a Coordinator.
type Options struct {
	// Workers are the worker auditd base URLs ("http://host:port").
	// Required, at least one.
	Workers []string
	// Shards is the number of shards per audit (default: #workers).
	// More shards than workers gives finer-grained reassignment when a
	// worker dies mid-audit.
	Shards int
	// Strategy picks the row→shard assignment (default StrategyRange).
	Strategy Strategy
	// ChunkRows is the wire chunk size (default 4096, capped at 65536).
	ChunkRows int
	// Retries is the per-shard re-dispatch budget after the first
	// attempt (default 2).
	Retries int
	// Backoff is the base failure backoff a worker's dispatch loop
	// sleeps after an error, doubling per consecutive failure
	// (default 100ms).
	Backoff time.Duration
	// HTTPClient overrides the transport (default: a client with no
	// overall timeout — shard audits are long-running streams; cancel
	// via the request context instead).
	HTTPClient *http.Client
	// Logger receives dispatch/retry/death events (default: discard).
	Logger *log.Logger
	// Metrics, when set, receives per-worker shard series.
	Metrics *obs.ShardMetrics
}

// Coordinator fans a batch audit out over worker auditd processes and
// merges the shard results into one Result byte-identical to a local
// audit. Safe for concurrent use; each Audit call dispatches
// independently.
type Coordinator struct {
	opts    Options
	workers []*workerClient
}

// New validates the options and builds a Coordinator.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("shard: no workers configured")
	}
	// Normalize into a private copy — never the caller's backing array,
	// which it may share with other coordinators.
	workers := make([]string, len(opts.Workers))
	for i, w := range opts.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return nil, fmt.Errorf("shard: worker %q: want an http(s) base URL", opts.Workers[i])
		}
		workers[i] = w
	}
	opts.Workers = workers
	if opts.Shards == 0 {
		opts.Shards = len(opts.Workers)
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", opts.Shards)
	}
	if opts.Strategy == "" {
		opts.Strategy = StrategyRange
	}
	if _, err := ParseStrategy(string(opts.Strategy)); err != nil {
		return nil, err
	}
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = 4096
	}
	if opts.ChunkRows > 65536 {
		opts.ChunkRows = 65536
	}
	if opts.Retries < 0 {
		return nil, fmt.Errorf("shard: invalid retry budget %d", opts.Retries)
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.Logger == nil {
		opts.Logger = log.New(discard{}, "", 0)
	}
	c := &Coordinator{opts: opts}
	for _, w := range opts.Workers {
		c.workers = append(c.workers, &workerClient{base: w, hc: opts.HTTPClient})
	}
	return c, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Workers returns the configured worker base URLs.
func (c *Coordinator) Workers() []string { return c.opts.Workers }

// Strategy returns the configured split strategy.
func (c *Coordinator) Strategy() Strategy { return c.opts.Strategy }

// Shards returns the configured shard count.
func (c *Coordinator) Shards() int { return c.opts.Shards }

// AuditSource materializes a RowSource (preserving record IDs) and audits
// it across the workers.
func (c *Coordinator) AuditSource(ctx context.Context, model *audit.Model, meta registry.Meta, src dataset.RowSource) (*audit.Result, error) {
	tab, err := dataset.ReadAllKeepIDs(src)
	if err != nil {
		return nil, err
	}
	return c.AuditTable(ctx, model, meta, tab)
}

// AuditTable audits the table across the workers and returns a Result
// identical (modulo CheckTime) to model.AuditTable(tab) run locally:
// same reports in the same row order, same Suspicious ranking, same
// tallies when folded. meta must be the coordinator registry's committed
// metadata for model — its (Version, SchemaHash, CreatedAt) identity is
// what workers are synced to and what shard requests pin.
func (c *Coordinator) AuditTable(ctx context.Context, model *audit.Model, meta registry.Meta, tab *dataset.Table) (*audit.Result, error) {
	start := time.Now()
	width := model.Schema.Len()
	if tab.NumCols() != width {
		return nil, &dataset.RowWidthError{Got: tab.NumCols(), Want: width}
	}
	shards, err := Split(tab, c.opts.Strategy, c.opts.Shards)
	if err != nil {
		return nil, err
	}

	var jobs []*shardJob
	for id, rows := range shards {
		if len(rows) > 0 {
			jobs = append(jobs, &shardJob{id: id, rows: rows})
		}
	}
	results := make([]*audit.Result, len(shards))
	if err := c.dispatch(ctx, model, meta, tab, jobs, results); err != nil {
		return nil, err
	}

	var merged *audit.Result
	switch c.opts.Strategy {
	case StrategyRange:
		merged, err = audit.MergeResults(results...)
		if err != nil {
			return nil, err
		}
	case StrategyHash:
		merged = scatterMerge(results, shards, tab.NumRows())
	}
	if len(merged.Reports) != tab.NumRows() {
		return nil, fmt.Errorf("shard: merged %d reports for %d rows", len(merged.Reports), tab.NumRows())
	}
	merged.NumAttrs = width
	merged.CheckTime = time.Since(start)
	return merged, nil
}

// scatterMerge reassembles hash-sharded results: shard s's j-th report
// belongs to global row shards[s][j]. Findings were detached by the wire
// decode, so the reports are moved, not copied.
func scatterMerge(results []*audit.Result, shards [][]int, n int) *audit.Result {
	out := &audit.Result{Reports: make([]audit.RecordReport, n)}
	for s, res := range results {
		if res == nil {
			continue
		}
		for j := range res.Reports {
			rep := res.Reports[j]
			rep.Row = shards[s][j]
			rep.RepointBest()
			out.Reports[rep.Row] = rep
		}
		switch {
		case out.Dims == nil:
			out.Dims = audit.CloneDims(res.Dims)
		case res.Dims != nil:
			audit.MergeDims(out.Dims, res.Dims)
		}
	}
	return out
}

// shardJob is one dispatchable shard.
type shardJob struct {
	id       int
	rows     []int
	attempts int
}

// outcome is one finished dispatch attempt (or a worker bowing out).
type outcome struct {
	job    *shardJob
	res    *audit.Result
	err    error
	worker int
	dead   bool // the sending worker's loop exits after this outcome
}

// dispatch drives the shard queue to completion: one goroutine per worker
// pulls jobs, a failed attempt requeues its shard (bounded by the retry
// budget), and a worker that fails maxConsecFails times in a row is
// abandoned — its outstanding shard moves to the survivors. All workers
// dead with shards outstanding is the only unrecoverable state.
func (c *Coordinator) dispatch(ctx context.Context, model *audit.Model, meta registry.Meta, tab *dataset.Table, pending []*shardJob, results []*audit.Result) error {
	total := len(pending)
	if total == 0 {
		return nil
	}
	jobCh := make(chan *shardJob)
	outCh := make(chan outcome)
	quit := make(chan struct{})
	defer close(quit)

	for i := range c.workers {
		go c.workerLoop(ctx, i, quit, jobCh, outCh, model, meta, tab)
	}
	defer close(jobCh)

	done, inflight, alive := 0, 0, len(c.workers)
	for done < total {
		var sendCh chan *shardJob
		var next *shardJob
		if len(pending) > 0 && alive > 0 {
			sendCh, next = jobCh, pending[len(pending)-1]
		}
		if alive == 0 && inflight == 0 {
			return fmt.Errorf("shard: all %d workers failed with %d of %d shards unfinished", len(c.workers), total-done, total)
		}
		select {
		case sendCh <- next:
			pending = pending[:len(pending)-1]
			inflight++
		case o := <-outCh:
			inflight--
			if o.dead {
				alive--
				c.opts.Logger.Printf("shard: abandoning worker %s after %d consecutive failures", c.opts.Workers[o.worker], maxConsecFails)
				if m := c.opts.Metrics; m != nil {
					m.WorkerDeaths.With(c.opts.Workers[o.worker]).Inc()
				}
			}
			if o.err != nil {
				o.job.attempts++
				if o.job.attempts > c.opts.Retries {
					return fmt.Errorf("shard %d (%d rows): giving up after %d attempts: %w", o.job.id, len(o.job.rows), o.job.attempts, o.err)
				}
				c.opts.Logger.Printf("shard: shard %d attempt %d on %s failed, requeueing: %v", o.job.id, o.job.attempts, c.opts.Workers[o.worker], o.err)
				if m := c.opts.Metrics; m != nil {
					m.Retries.Inc()
				}
				pending = append(pending, o.job)
			} else {
				results[o.job.id] = o.res
				done++
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// workerLoop is one worker's dispatch loop: sync the model lazily before
// the first shard (and again after a 409), score shards until the job
// channel closes, back off after failures, and exit for good after
// maxConsecFails consecutive errors.
func (c *Coordinator) workerLoop(ctx context.Context, idx int, quit <-chan struct{}, jobCh <-chan *shardJob, outCh chan<- outcome, model *audit.Model, meta registry.Meta, tab *dataset.Table) {
	w := c.workers[idx]
	name := c.opts.Workers[idx]
	synced := false
	consec := 0
	for {
		var job *shardJob
		select {
		case j, ok := <-jobCh:
			if !ok {
				return
			}
			job = j
		case <-quit:
			return
		}

		start := time.Now()
		res, err := c.runShard(ctx, w, &synced, name, model, meta, tab, job)
		if m := c.opts.Metrics; m != nil {
			m.DispatchSeconds.With(name).Observe(time.Since(start).Seconds())
			if err != nil {
				m.Dispatches.With(name, "error").Inc()
			} else {
				m.Dispatches.With(name, "ok").Inc()
				m.RowsShipped.With(name).Add(uint64(len(job.rows)))
			}
		}
		if err != nil {
			consec++
		} else {
			consec = 0
		}
		dead := consec >= maxConsecFails
		select {
		case outCh <- outcome{job: job, res: res, err: err, worker: idx, dead: dead}:
		case <-quit:
			return
		}
		if dead {
			return
		}
		if err != nil {
			// Exponential backoff inside this worker's loop only: the
			// scheduler keeps feeding healthy workers meanwhile.
			backoff := c.opts.Backoff << (consec - 1)
			select {
			case <-time.After(backoff):
			case <-quit:
				return
			case <-ctx.Done():
				return
			}
		}
	}
}

// runShard executes one dispatch attempt: ensure the worker holds the
// pinned model version, stream the shard, decode the validated result. A
// 409 (the worker's model moved between sync and scoring) flips the sync
// flag so the next attempt replicates first.
func (c *Coordinator) runShard(ctx context.Context, w *workerClient, synced *bool, name string, model *audit.Model, meta registry.Meta, tab *dataset.Table, job *shardJob) (*audit.Result, error) {
	if !*synced {
		pushed, err := w.ensureModel(ctx, meta, model)
		if err != nil {
			return nil, err
		}
		if pushed {
			c.opts.Logger.Printf("shard: replicated %s v%d to %s", meta.Name, meta.Version, name)
			if m := c.opts.Metrics; m != nil {
				m.Replications.With(name).Inc()
			}
		}
		*synced = true
	}
	res, err := w.auditShard(ctx, meta, tab, job.rows, c.opts.ChunkRows)
	if isVersionConflict(err) {
		*synced = false
	}
	return res, err
}
