package shard

import (
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
)

func splitFixture(t *testing.T, rows int) *dataset.Table {
	t.Helper()
	s := dataset.MustSchema(
		dataset.NewNominal("c", "a", "b", "c"),
		dataset.NewNumeric("x", 0, 1e6),
	)
	tab := dataset.NewTable(s)
	row := make([]dataset.Value, 2)
	for r := 0; r < rows; r++ {
		row[0] = dataset.Nom(r % 3)
		row[1] = dataset.Num(float64(r%97) * 1.5)
		if r%13 == 0 {
			row[0] = dataset.Null()
		}
		if r%17 == 0 {
			row[1] = dataset.Null()
		}
		tab.AppendRow(row)
	}
	return tab
}

// TestSplitPartition: for both strategies and several shard counts, every
// row lands in exactly one shard, ascending within its shard.
func TestSplitPartition(t *testing.T) {
	tab := splitFixture(t, 503)
	for _, strategy := range []Strategy{StrategyRange, StrategyHash} {
		for _, n := range []int{1, 2, 4, 8, 700} {
			shards, err := Split(tab, strategy, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != n {
				t.Fatalf("%s/%d: %d shards", strategy, n, len(shards))
			}
			seen := make([]bool, tab.NumRows())
			for s, rows := range shards {
				prev := -1
				for _, r := range rows {
					if r <= prev {
						t.Fatalf("%s/%d shard %d: rows not ascending (%d after %d)", strategy, n, s, r, prev)
					}
					prev = r
					if seen[r] {
						t.Fatalf("%s/%d: row %d assigned twice", strategy, n, r)
					}
					seen[r] = true
				}
			}
			for r, ok := range seen {
				if !ok {
					t.Fatalf("%s/%d: row %d unassigned", strategy, n, r)
				}
			}
		}
	}
}

// TestSplitRangeContiguous: range shards are contiguous and ordered, so
// concatenating them in shard order reproduces 0..n-1 — the property the
// MergeResults merge path rests on.
func TestSplitRangeContiguous(t *testing.T) {
	tab := splitFixture(t, 100)
	shards, err := Split(tab, StrategyRange, 3)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for s, rows := range shards {
		for _, r := range rows {
			if r != next {
				t.Fatalf("shard %d: row %d, want %d", s, r, next)
			}
			next++
		}
	}
	if next != tab.NumRows() {
		t.Fatalf("concatenation covers %d rows, want %d", next, tab.NumRows())
	}
}

// TestSplitDeterministic: the assignment is a pure function of contents —
// same table, same strategy, same count → same split; and hash assignment
// keys on values, so a value-identical table with different record IDs
// splits identically.
func TestSplitDeterministic(t *testing.T) {
	tab := splitFixture(t, 400)
	for _, strategy := range []Strategy{StrategyRange, StrategyHash} {
		a, err := Split(tab, strategy, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Split(tab, strategy, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: split not deterministic", strategy)
		}
	}

	// Same values under fresh IDs: rowHash must ignore IDs.
	clone := splitFixture(t, 400)
	clone.DeleteRow(0)
	tab.DeleteRow(0) // both drop row 0, IDs now differ from ordinals
	a, _ := Split(tab, StrategyHash, 5)
	b, _ := Split(clone, StrategyHash, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("hash split depends on record IDs")
	}
}

// TestSplitHashSpread: the hash strategy actually spreads a varied table
// (no shard hogs everything) and co-locates duplicate rows.
func TestSplitHashSpread(t *testing.T) {
	tab := splitFixture(t, 1000)
	shards, err := Split(tab, StrategyHash, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s, rows := range shards {
		if len(rows) == 0 || len(rows) > 600 {
			t.Fatalf("shard %d holds %d of 1000 rows — degenerate spread", s, len(rows))
		}
	}

	// Duplicate rows co-locate: rows r and r+3*97*17*13 cycle every value
	// generator, so build an explicit duplicate instead.
	dup := dataset.NewTable(tab.Schema())
	row := make([]dataset.Value, 2)
	row[0], row[1] = dataset.Nom(1), dataset.Num(42)
	dup.AppendRow(row)
	dup.AppendRow(row)
	nominal := []bool{true, false}
	if rowHash(dup, 0, nominal) != rowHash(dup, 1, nominal) {
		t.Fatal("value-identical rows hash differently")
	}
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{"": StrategyRange, "range": StrategyRange, "hash": StrategyHash} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("modulo"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSplitRejectsBadCount(t *testing.T) {
	tab := splitFixture(t, 10)
	if _, err := Split(tab, StrategyRange, 0); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	if _, err := Split(tab, Strategy("bogus"), 2); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}
