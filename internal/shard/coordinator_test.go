package shard_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/registry"
	"dataaudit/internal/serve"
	"dataaudit/internal/shard"
)

// The differential fixture: a polluted QUIS sample and its structure
// model, shared across tests (induction is the expensive part).
var (
	fixOnce  sync.Once
	fixModel *audit.Model
	fixTable *dataset.Table
	fixErr   error
)

func quisFixture(t testing.TB) (*audit.Model, *dataset.Table) {
	t.Helper()
	fixOnce.Do(func() {
		schema := dataset.MustSchema(
			dataset.NewNominal("BRV", "404", "501", "600"),
			dataset.NewNominal("KBM", "01", "02"),
			dataset.NewNominal("GBM", "901", "911", "950"),
			dataset.NewNumeric("DISP", 1000, 4000),
		)
		clean := dataset.NewTable(schema)
		rng := rand.New(rand.NewSource(2003))
		row := make([]dataset.Value, 4)
		for i := 0; i < 4000; i++ {
			brv := rng.Intn(3)
			disp := 1500 + float64(brv)*1000 + rng.NormFloat64()*80
			if disp < 1000 {
				disp = 1000
			}
			if disp > 4000 {
				disp = 4000
			}
			row[0], row[1], row[2], row[3] = dataset.Nom(brv), dataset.Nom(rng.Intn(2)), dataset.Nom(brv), dataset.Num(disp)
			clean.AppendRow(row)
		}
		plan := pollute.Plan{Cell: []pollute.Configured{
			{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
			{Prob: 0.01, P: &pollute.NullValuePolluter{}},
		}}
		dirty, _ := pollute.Run(clean, plan, rand.New(rand.NewSource(42)))
		m, err := audit.Induce(dirty, audit.Options{MinConfidence: 0.8})
		if err != nil {
			fixErr = err
			return
		}
		fixModel, fixTable = m, dirty
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixModel, fixTable
}

// publishFixture commits the fixture model into a fresh coordinator-side
// registry and returns its meta (the identity workers get synced to).
func publishFixture(t *testing.T, m *audit.Model) registry.Meta {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

// startWorker boots a plain auditd over a fresh registry — exactly what a
// production worker is — and returns its base URL plus the registry for
// post-hoc assertions.
func startWorker(t *testing.T) (string, *registry.Registry) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(reg, serve.WithMetrics(false), serve.WithDashboard(false))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, reg
}

func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i], _ = startWorker(t)
	}
	return urls
}

// gobBytes serializes a Result with the wall-time field zeroed, for
// byte-identity comparison (the same helper the in-process differential
// suites use).
func gobBytes(t *testing.T, res *audit.Result) []byte {
	t.Helper()
	cp := *res
	cp.CheckTime = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newCoordinator(t *testing.T, workers []string, mutate func(*shard.Options)) *shard.Coordinator {
	t.Helper()
	opts := shard.Options{
		Workers:   workers,
		ChunkRows: 512, // several chunks per shard even on the small fixture
		Backoff:   5 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := shard.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedDifferentialQUIS is the tentpole contract: across shard
// counts {1,2,4,8} × both strategies, a 3-worker sharded audit produces a
// Result gob-byte-identical to the single-node scorer — same reports,
// same record IDs, same Suspicious ranking, same monitor tallies.
func TestShardedDifferentialQUIS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process differential fixture is expensive")
	}
	m, dirty := quisFixture(t)
	meta := publishFixture(t, m)
	workers := startWorkers(t, 3)

	want := m.AuditTable(dirty)
	wantBytes := gobBytes(t, want)
	wantSus, wantTallies := m.TallyResult(want)

	for _, strategy := range []shard.Strategy{shard.StrategyRange, shard.StrategyHash} {
		for _, shards := range []int{1, 2, 4, 8} {
			coord := newCoordinator(t, workers, func(o *shard.Options) {
				o.Strategy = strategy
				o.Shards = shards
			})
			got, err := coord.AuditTable(context.Background(), m, meta, dirty)
			if err != nil {
				t.Fatalf("%s/%d: %v", strategy, shards, err)
			}
			if !bytes.Equal(wantBytes, gobBytes(t, got)) {
				t.Fatalf("%s/%d: sharded result is not byte-identical to single-node", strategy, shards)
			}
			gotSus, gotTallies := m.TallyResult(got)
			if gotSus != wantSus {
				t.Fatalf("%s/%d: suspicious %d, want %d", strategy, shards, gotSus, wantSus)
			}
			if len(gotTallies) != len(wantTallies) {
				t.Fatalf("%s/%d: tally count %d, want %d", strategy, shards, len(gotTallies), len(wantTallies))
			}
			for i := range wantTallies {
				if wantTallies[i] != gotTallies[i] {
					t.Fatalf("%s/%d tally %d: %+v, want %+v", strategy, shards, i, gotTallies[i], wantTallies[i])
				}
			}
		}
	}
}

// TestShardedReplication: workers start empty, the first audit replicates
// the pinned version verbatim (same Version, CreatedAt, SchemaHash), and
// a recreated model on the coordinator side re-replicates cleanly over
// the stale worker copy.
func TestShardedReplication(t *testing.T) {
	m, dirty := quisFixture(t)
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	workerURL, workerReg := startWorker(t)
	coord := newCoordinator(t, []string{workerURL}, nil)

	if _, err := coord.AuditTable(context.Background(), m, meta, dirty); err != nil {
		t.Fatal(err)
	}
	wMeta, err := workerReg.MetaOfVersion("engines", meta.Version)
	if err != nil {
		t.Fatalf("worker has no replica: %v", err)
	}
	if !wMeta.CreatedAt.Equal(meta.CreatedAt) || wMeta.SchemaHash != meta.SchemaHash {
		t.Fatalf("replica identity %+v diverges from source %+v", wMeta, meta)
	}

	// Recreate the model coordinator-side: same version number, new
	// CreatedAt. The next audit must resync the worker through the
	// conflict path, not score against the impostor.
	if err := reg.Delete("engines"); err != nil {
		t.Fatal(err)
	}
	meta2, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Version != meta.Version || meta2.CreatedAt.Equal(meta.CreatedAt) {
		t.Fatalf("recreation did not produce a same-version different-CreatedAt publish: %+v vs %+v", meta2, meta)
	}
	if _, err := coord.AuditTable(context.Background(), m, meta2, dirty); err != nil {
		t.Fatal(err)
	}
	wMeta2, err := workerReg.MetaOfVersion("engines", meta2.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !wMeta2.CreatedAt.Equal(meta2.CreatedAt) {
		t.Fatal("worker still holds the stale pre-recreation replica")
	}
}

// flakyWorker wraps a real worker and misbehaves on its shard route for
// the first `failures` requests, in a per-case way.
type flakyWorker struct {
	h        http.Handler
	mode     string // "abort", "conflict", "corrupt"
	mu       sync.Mutex
	failures int
	seen     int
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/audit/shard") {
		f.mu.Lock()
		fail := f.failures > 0
		if fail {
			f.failures--
		}
		f.seen++
		f.mu.Unlock()
		if fail {
			switch f.mode {
			case "abort":
				// Die mid-shard: the connection drops while the
				// coordinator is mid-request.
				panic(http.ErrAbortHandler)
			case "conflict":
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusConflict)
				w.Write([]byte(`{"error":"model moved underneath you"}`))
				return
			case "corrupt":
				w.Header().Set("Content-Type", shard.ContentTypeShardResult)
				w.WriteHeader(http.StatusOK)
				w.Write([]byte("these are not the gobs you are looking for"))
				return
			}
		}
	}
	f.h.ServeHTTP(w, r)
}

// startFlakyWorker boots a worker behind a flaky front.
func startFlakyWorker(t *testing.T, mode string, failures int) (string, *flakyWorker) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(reg, serve.WithMetrics(false), serve.WithDashboard(false))
	f := &flakyWorker{h: srv.Handler(), mode: mode, failures: failures}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return ts.URL, f
}

// TestShardedWorkerFailures is the table-driven failure suite: every
// recoverable failure mode must still converge on output byte-identical
// to single-node; unrecoverable ones must fail loudly.
func TestShardedWorkerFailures(t *testing.T) {
	m, dirty := quisFixture(t)
	meta := publishFixture(t, m)
	want := gobBytes(t, m.AuditTable(dirty))

	deadURL := func() string {
		ts := httptest.NewServer(http.NotFoundHandler())
		url := ts.URL
		ts.Close() // refuses connections from here on
		return url
	}

	cases := []struct {
		name    string
		workers func(t *testing.T) []string
		shards  int
		wantErr bool
	}{
		{
			name: "worker dead at dispatch",
			workers: func(t *testing.T) []string {
				return append(startWorkers(t, 2), deadURL())
			},
			shards: 6,
		},
		{
			name: "worker dies mid-shard",
			workers: func(t *testing.T) []string {
				live := startWorkers(t, 2)
				flaky, _ := startFlakyWorker(t, "abort", 2)
				return append(live, flaky)
			},
			shards: 6,
		},
		{
			name: "version conflict forces resync",
			workers: func(t *testing.T) []string {
				flaky, _ := startFlakyWorker(t, "conflict", 1)
				return []string{flaky}
			},
			shards: 3,
		},
		{
			name: "corrupt shard response is retried",
			workers: func(t *testing.T) []string {
				live := startWorkers(t, 1)
				flaky, _ := startFlakyWorker(t, "corrupt", 2)
				return append(live, flaky)
			},
			shards: 4,
		},
		{
			name: "all workers dead",
			workers: func(t *testing.T) []string {
				return []string{deadURL(), deadURL()}
			},
			shards:  4,
			wantErr: true,
		},
		{
			name: "persistent corruption exhausts the retry budget",
			workers: func(t *testing.T) []string {
				flaky, _ := startFlakyWorker(t, "corrupt", 1<<30)
				return []string{flaky}
			},
			shards:  2,
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord := newCoordinator(t, tc.workers(t), func(o *shard.Options) {
				o.Shards = tc.shards
				o.Retries = 4
			})
			got, err := coord.AuditTable(context.Background(), m, meta, dirty)
			if tc.wantErr {
				if err == nil {
					t.Fatal("audit succeeded, want failure")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, gobBytes(t, got)) {
				t.Fatal("result after worker failure is not byte-identical to single-node")
			}
		})
	}
}

// TestAuditSourceKeepsIDs: the RowSource entry point preserves source
// record IDs end to end (CSV row ordinals here), matching single-node.
func TestAuditSourceKeepsIDs(t *testing.T) {
	m, dirty := quisFixture(t)
	meta := publishFixture(t, m)
	coord := newCoordinator(t, startWorkers(t, 2), nil)

	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, dirty); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewCSVSource(bytes.NewReader(csv.Bytes()), dirty.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.AuditSource(context.Background(), m, meta, src)
	if err != nil {
		t.Fatal(err)
	}

	// Single-node oracle over the same CSV materialization.
	oracleTab, err := dataset.ReadCSV(bytes.NewReader(csv.Bytes()), dirty.Schema())
	if err != nil {
		t.Fatal(err)
	}
	want := m.AuditTable(oracleTab)
	if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
		t.Fatal("AuditSource result diverges from single-node over the same CSV")
	}
}

// TestCoordinatorOptionValidation: bad worker sets and parameters are
// rejected at construction, not at audit time.
func TestCoordinatorOptionValidation(t *testing.T) {
	if _, err := shard.New(shard.Options{}); err == nil {
		t.Fatal("empty worker set accepted")
	}
	if _, err := shard.New(shard.Options{Workers: []string{"localhost:8080"}}); err == nil {
		t.Fatal("schemeless worker URL accepted")
	}
	if _, err := shard.New(shard.Options{Workers: []string{"http://x"}, Strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if _, err := shard.New(shard.Options{Workers: []string{"http://x"}, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	c, err := shard.New(shard.Options{Workers: []string{"http://x/", " http://y "}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers()[0] != "http://x" || c.Workers()[1] != "http://y" {
		t.Fatalf("worker URLs not normalized: %v", c.Workers())
	}
	if c.Shards() != 2 || c.Strategy() != shard.StrategyRange {
		t.Fatalf("defaults: shards=%d strategy=%s", c.Shards(), c.Strategy())
	}
}

// TestWidthMismatchRejected: a table of foreign arity fails fast.
func TestWidthMismatchRejected(t *testing.T) {
	m, _ := quisFixture(t)
	meta := publishFixture(t, m)
	coord := newCoordinator(t, []string{"http://127.0.0.1:1"}, nil)
	narrow := dataset.NewTable(dataset.MustSchema(dataset.NewNumeric("x", 0, 1)))
	narrow.AppendRow([]dataset.Value{dataset.Num(0.5)})
	if _, err := coord.AuditTable(context.Background(), m, meta, narrow); err == nil {
		t.Fatal("foreign-arity table accepted")
	}
}
