package shard

import (
	"fmt"
	"io"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// ScoreStream is the worker half of the shard protocol: it decodes a
// chunk stream and scores each chunk as it arrives, so the worker never
// buffers the shard in wire form. Reports carry shard-local row indices
// (0..n-1 in stream order) — the coordinator owns the mapping back to
// global rows — and the record IDs ride through the chunk stream
// unchanged.
//
// wantSchemaHash, when non-empty, must match the stream schema's
// registry.SchemaHash fingerprint (ErrSchemaMismatch otherwise); maxRows,
// when positive, bounds the stream (*RowLimitError beyond it).
func ScoreStream(model *audit.Model, sr *dataset.ChunkStreamReader, wantSchemaHash string, maxRows int) (*ShardResult, error) {
	start := time.Now()
	res := &audit.Result{NumAttrs: model.Schema.Len()}
	scratch := audit.NewChunkScratch(model)
	dims := audit.NewDimTracker(model.Schema)
	checked := false
	rows := 0
	for {
		ck, err := sr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if !checked {
			if wantSchemaHash != "" && registry.SchemaHash(sr.Schema()) != wantSchemaHash {
				return nil, ErrSchemaMismatch
			}
			if sr.Schema().Len() != model.Schema.Len() {
				return nil, fmt.Errorf("shard: stream arity %d != model arity %d", sr.Schema().Len(), model.Schema.Len())
			}
			checked = true
		}
		if maxRows > 0 && rows+ck.Rows() > maxRows {
			return nil, &RowLimitError{Limit: maxRows}
		}
		dims.ObserveChunk(ck)
		reps := model.CheckChunk(ck, int64(rows), scratch)
		for i := range reps {
			res.Reports = append(res.Reports, reps[i].Detach())
		}
		rows += ck.Rows()
	}
	// Shard dims fold back to the single-node values at the coordinator:
	// every accumulator is a sum or set union, so the partition into
	// shards is invisible in the merged result.
	res.Dims = dims.Dims()
	res.CheckTime = time.Since(start)
	return &ShardResult{Rows: rows, Result: res}, nil
}
