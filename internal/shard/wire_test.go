package shard

import (
	"bytes"
	"strings"
	"testing"

	"dataaudit/internal/audit"
)

func wireResult(rows, attrs int) *ShardResult {
	res := &audit.Result{NumAttrs: attrs}
	for i := 0; i < rows; i++ {
		rep := audit.RecordReport{Row: i, ID: int64(100 + i)}
		if i%2 == 0 {
			rep.ErrorConf = 0.9
			rep.Suspicious = true
			rep.Findings = []audit.Finding{{Attr: i % attrs, Observed: 0, Predicted: 1, ErrorConf: 0.9}}
			rep.Best = &rep.Findings[0]
		}
		res.Reports = append(res.Reports, rep)
	}
	return &ShardResult{Rows: rows, Result: res}
}

func TestShardResultRoundTrip(t *testing.T) {
	sr := wireResult(7, 3)
	var buf bytes.Buffer
	if err := EncodeShardResult(&buf, sr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardResult(&buf, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Result.Reports) != 7 || got.Result.Reports[2].ID != 102 {
		t.Fatalf("round trip mangled reports: %+v", got.Result.Reports)
	}
	// Best must be re-aimed into the report's own findings slice.
	rep := &got.Result.Reports[0]
	if rep.Best != &rep.Findings[0] {
		t.Fatal("Best not repointed into the decoded findings slice")
	}
}

// TestDecodeShardResultRejects: every way a worker response can lie about
// its shape must surface as a protocol error.
func TestDecodeShardResultRejects(t *testing.T) {
	encode := func(sr *ShardResult) *bytes.Buffer {
		var buf bytes.Buffer
		if err := EncodeShardResult(&buf, sr); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	cases := []struct {
		name     string
		body     *bytes.Buffer
		rows     int
		attrs    int
		fragment string
	}{
		{"garbage", bytes.NewBufferString("not gob"), 3, 2, "decoding"},
		{"nil result", encode(&ShardResult{Rows: 3}), 3, 2, "missing"},
		{"short reports", encode(wireResult(2, 2)), 3, 2, "reports"},
		{"rows lie", encode(&ShardResult{Rows: 5, Result: wireResult(3, 2).Result}), 3, 2, "reports"},
		{"wrong width", encode(wireResult(3, 4)), 3, 2, "attributes"},
		{"bad finding attr", func() *bytes.Buffer {
			sr := wireResult(3, 2)
			sr.Result.Reports[0].Findings[0].Attr = 9
			return encode(sr)
		}(), 3, 2, "finding"},
		{"rows out of order", func() *bytes.Buffer {
			sr := wireResult(3, 2)
			sr.Result.Reports[1].Row = 2
			return encode(sr)
		}(), 3, 2, "shard-local row"},
	}
	for _, tc := range cases {
		_, err := DecodeShardResult(tc.body, tc.rows, tc.attrs)
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.fragment) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.fragment)
		}
	}
}

func TestDecodeReplicaRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeReplica(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage replica decoded")
	}
}
