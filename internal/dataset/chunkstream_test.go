package dataset

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestChunkStreamRoundTrip streams a table through the chunk-stream codec
// in several chunk sizes and checks every value, ID and null comes back.
func TestChunkStreamRoundTrip(t *testing.T) {
	tab := chunkFixtureTable(t)
	for _, chunkRows := range []int{1, 7, 64, 1000} {
		var buf bytes.Buffer
		sw := NewChunkStreamWriter(&buf)
		ck := NewColumnChunk(tab.Schema())
		for lo := 0; lo < tab.NumRows(); lo += chunkRows {
			hi := min(lo+chunkRows, tab.NumRows())
			tab.ChunkInto(ck, lo, hi)
			if err := sw.Write(ck); err != nil {
				t.Fatalf("chunk %d: Write: %v", chunkRows, err)
			}
		}

		sr := NewChunkStreamReader(&buf)
		if sr.Schema() != nil {
			t.Fatalf("chunk %d: schema resolved before first Read", chunkRows)
		}
		row, want := make([]Value, tab.NumCols()), make([]Value, tab.NumCols())
		r := 0
		for {
			got, err := sr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunk %d: Read: %v", chunkRows, err)
			}
			for i := 0; i < got.Rows(); i++ {
				if got.ID(i) != tab.ID(r) {
					t.Fatalf("chunk %d row %d: ID %d, want %d", chunkRows, r, got.ID(i), tab.ID(r))
				}
				got.RowInto(i, row)
				tab.RowInto(r, want)
				for c := range want {
					if !row[c].Equal(want[c]) {
						t.Fatalf("chunk %d row %d col %d: %v, want %v", chunkRows, r, c, row[c], want[c])
					}
				}
				r++
			}
		}
		if r != tab.NumRows() {
			t.Fatalf("chunk %d: decoded %d rows, want %d", chunkRows, r, tab.NumRows())
		}
		if sr.Schema() == nil || sr.Schema().Len() != tab.Schema().Len() {
			t.Fatalf("chunk %d: stream schema not resolved", chunkRows)
		}
	}
}

// TestChunkStreamEmpty: a stream with zero Write calls decodes as an
// immediate clean io.EOF, not a header error.
func TestChunkStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	_ = NewChunkStreamWriter(&buf) // never written
	sr := NewChunkStreamReader(&buf)
	if _, err := sr.Read(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestChunkStreamCorrupt: truncated streams and garbage bytes surface as
// errors, never as silently short or misaligned chunks.
func TestChunkStreamCorrupt(t *testing.T) {
	tab := chunkFixtureTable(t)
	var buf bytes.Buffer
	sw := NewChunkStreamWriter(&buf)
	ck := NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, tab.NumRows())
	if err := sw.Write(ck); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		sr := NewChunkStreamReader(bytes.NewReader(full[:len(full)/2]))
		if _, err := sr.Read(); err == nil || err == io.EOF {
			t.Fatalf("truncated stream: err = %v, want decode error", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		sr := NewChunkStreamReader(strings.NewReader("not a gob stream at all"))
		if _, err := sr.Read(); err == nil || err == io.EOF {
			t.Fatalf("garbage stream: err = %v, want decode error", err)
		}
	})
	t.Run("schema-change-mid-stream", func(t *testing.T) {
		var b bytes.Buffer
		w := NewChunkStreamWriter(&b)
		if err := w.Write(ck); err != nil {
			t.Fatal(err)
		}
		other := NewColumnChunk(fuzzSchema(t))
		if err := w.Write(other); err == nil {
			t.Fatal("schema change mid-stream: want error")
		}
	})
}

// TestChunkStreamValidation: a decoded chunk passes through the same
// corrupt-chunk checks as DecodeChunk — here, an out-of-domain nominal
// index injected into an otherwise valid wire message.
func TestChunkStreamValidation(t *testing.T) {
	tab := chunkFixtureTable(t)
	ck := NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, 10)
	// Corrupt in place, encode, restore.
	orig := ck.cols[0].Nom[1]
	ck.cols[0].Nom[1] = 99 // fuzzSchema's nominal attr has 3 values
	var buf bytes.Buffer
	sw := NewChunkStreamWriter(&buf)
	err := sw.Write(ck)
	ck.cols[0].Nom[1] = orig
	if err != nil {
		t.Fatal(err)
	}
	sr := NewChunkStreamReader(&buf)
	if _, err := sr.Read(); err == nil {
		t.Fatal("out-of-domain nominal index decoded without error")
	}
}

// TestReadAllKeepIDs: IDs survive materialization, unlike ReadAll.
func TestReadAllKeepIDs(t *testing.T) {
	tab := chunkFixtureTable(t)
	tab.DeleteRow(3) // make IDs != row ordinals
	got, err := ReadAllKeepIDs(NewTableSource(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), tab.NumRows())
	}
	for r := 0; r < tab.NumRows(); r++ {
		if got.ID(r) != tab.ID(r) {
			t.Fatalf("row %d: ID %d, want %d", r, got.ID(r), tab.ID(r))
		}
	}
}
