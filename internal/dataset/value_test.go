package dataset

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNullValue(t *testing.T) {
	v := Null()
	if !v.IsNull() || v.IsNominal() || v.IsNumber() {
		t.Fatalf("Null() misreports kind: %v", v)
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatalf("zero Value must be null")
	}
	if !v.Equal(zero) {
		t.Fatalf("null must equal null")
	}
}

func TestNominalValue(t *testing.T) {
	v := Nom(3)
	if v.IsNull() || !v.IsNominal() {
		t.Fatalf("Nom misreports kind")
	}
	if v.NomIdx() != 3 {
		t.Fatalf("NomIdx = %d, want 3", v.NomIdx())
	}
	if v.Equal(Nom(4)) {
		t.Fatalf("Nom(3) must not equal Nom(4)")
	}
	if !v.Equal(Nom(3)) {
		t.Fatalf("Nom(3) must equal Nom(3)")
	}
	if v.Equal(Num(3)) {
		t.Fatalf("nominal must not equal number")
	}
}

func TestNominalPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Nom(-1) must panic")
		}
	}()
	Nom(-1)
}

func TestFloatPanicsOnNominal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Float on nominal must panic")
		}
	}()
	Nom(0).Float()
}

func TestNomIdxPanicsOnNumber(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NomIdx on number must panic")
		}
	}()
	Num(1).NomIdx()
}

func TestNumberValue(t *testing.T) {
	v := Num(2.5)
	if !v.IsNumber() || v.Float() != 2.5 {
		t.Fatalf("Num misbehaves: %v", v)
	}
	if got := Num(1).Compare(Num(2)); got != -1 {
		t.Fatalf("Compare(1,2) = %d", got)
	}
	if got := Num(2).Compare(Num(1)); got != 1 {
		t.Fatalf("Compare(2,1) = %d", got)
	}
	if got := Num(2).Compare(Num(2)); got != 0 {
		t.Fatalf("Compare(2,2) = %d", got)
	}
}

func TestNaNEquality(t *testing.T) {
	if !Num(math.NaN()).Equal(Num(math.NaN())) {
		t.Fatalf("NaN values should compare equal for table diffing purposes")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "<null>"},
		{Nom(2), "#2"},
		{Num(1.5), "1.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	err := quick.Check(func(secs int64) bool {
		// Constrain to a sane range: years ~1900..2100.
		secs = secs % (200 * 365 * 24 * 3600)
		tm := time.Unix(secs, 0).UTC()
		days := DateToDays(tm)
		back := DaysToDate(days)
		return back.Sub(tm).Abs() < time.Millisecond
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDateValueFormatting(t *testing.T) {
	a := NewDate("d", MustParseDate("2000-01-01"), MustParseDate("2010-12-31"))
	v := DateValue(MustParseDate("2005-06-15"))
	if got := a.Format(v); got != "2005-06-15" {
		t.Fatalf("Format = %q", got)
	}
	parsed, err := a.Parse("2005-06-15")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(v) {
		t.Fatalf("Parse round-trip failed: %v vs %v", parsed, v)
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParseDate must panic on garbage")
		}
	}()
	MustParseDate("not-a-date")
}
