package dataset_test

import (
	"database/sql"
	"database/sql/driver"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"dataaudit/internal/dataset"
	"dataaudit/internal/sqlmem"
)

func sqlSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("brv", "404", "501"),
		dataset.NewNumeric("disp", 0, 10000),
		dataset.NewDate("prod", dataset.MustParseDate("1995-01-01"), dataset.MustParseDate("2002-12-31")),
	)
}

func openSQLMem(t *testing.T, table string, cols []string, rows [][]driver.Value) *sql.DB {
	t.Helper()
	if err := sqlmem.RegisterTable(table, cols, rows); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sqlmem.DropTable(table) })
	db, err := sql.Open("sqlmem", "test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSQLSourceCoercions(t *testing.T) {
	s := sqlSchema(t)
	day := dataset.MustParseDate("1999-03-02")
	db := openSQLMem(t, "quis", []string{"brv", "disp", "prod"}, [][]driver.Value{
		{"404", 2300.5, day},                       // native driver types
		{[]byte("501"), int64(1750), "2001-07-09"}, // bytes, ints, and date text coerce
		{nil, nil, nil},                            // SQL NULLs
		{"?", "", nil},                             // textual null spellings
	})
	src, closer, err := dataset.OpenSQLSource(db, "SELECT * FROM quis", s)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	tab, err := dataset.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]dataset.Value{
		{dataset.Nom(0), dataset.Num(2300.5), dataset.DateValue(day)},
		{dataset.Nom(1), dataset.Num(1750), dataset.DateValue(dataset.MustParseDate("2001-07-09"))},
		{dataset.Null(), dataset.Null(), dataset.Null()},
		{dataset.Null(), dataset.Null(), dataset.Null()},
	}
	if tab.NumRows() != len(want) {
		t.Fatalf("rows = %d, want %d", tab.NumRows(), len(want))
	}
	for r := range want {
		for c := range want[r] {
			if !tab.Get(r, c).Equal(want[r][c]) {
				t.Fatalf("cell (%d,%d) = %v, want %v", r, c, tab.Get(r, c), want[r][c])
			}
		}
	}
}

func TestSQLSourceColumnValidation(t *testing.T) {
	s := sqlSchema(t)
	db := openSQLMem(t, "narrow", []string{"brv", "disp"}, nil)
	if _, _, err := dataset.OpenSQLSource(db, "SELECT * FROM narrow", s); !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("err = %v, want ErrRowWidth", err)
	}
	db2 := openSQLMem(t, "misnamed", []string{"brv", "displacement", "prod"}, nil)
	if _, _, err := dataset.OpenSQLSource(db2, "SELECT * FROM misnamed", s); !errors.Is(err, dataset.ErrHeader) {
		t.Fatalf("err = %v, want ErrHeader", err)
	}
}

func TestSQLSourceCellErrors(t *testing.T) {
	s := sqlSchema(t)
	cases := []struct {
		name    string
		row     []driver.Value
		wantSub string
	}{
		{"numeric into nominal", []driver.Value{int64(404), nil, nil}, "nominal"},
		{"time into numeric", []driver.Value{nil, time.Now(), nil}, "non-date"},
		{"bool cell", []driver.Value{nil, true, nil}, "unsupported"},
		{"out-of-domain code", []driver.Value{"999", nil, nil}, "brv"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := openSQLMem(t, "bad", []string{"brv", "disp", "prod"}, [][]driver.Value{tc.row})
			src, closer, err := dataset.OpenSQLSource(db, "SELECT * FROM bad", s)
			if err != nil {
				t.Fatal(err)
			}
			defer closer.Close()
			buf := make([]dataset.Value, s.Len())
			if _, err := src.Next(buf); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestSQLSourceChunkPath(t *testing.T) {
	s := sqlSchema(t)
	var rows [][]driver.Value
	for i := 0; i < 10; i++ {
		rows = append(rows, []driver.Value{"404", float64(i), nil})
	}
	db := openSQLMem(t, "chunky", []string{"brv", "disp", "prod"}, rows)
	src, closer, err := dataset.OpenSQLSource(db, "SELECT * FROM chunky", s)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	ck := dataset.NewColumnChunk(s)
	var got []int64
	for {
		ck.Reset()
		n, err := src.NextChunk(ck, 3)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			got = append(got, ck.ID(r))
		}
	}
	if len(got) != 10 {
		t.Fatalf("chunk path delivered %d rows, want 10", len(got))
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("id[%d] = %d", i, id)
		}
	}
}

func TestSQLMemRejectsUnsupportedQueries(t *testing.T) {
	db := openSQLMem(t, "x", []string{"a"}, nil)
	if _, err := db.Query("SELECT a FROM x WHERE a > 1"); err == nil {
		t.Fatal("complex query accepted by the fake driver")
	}
	if _, err := db.Query("SELECT * FROM nope"); err == nil {
		t.Fatal("unregistered table accepted")
	}
	if _, err := db.Exec("DELETE FROM x"); err == nil {
		t.Fatal("exec accepted")
	}
}
