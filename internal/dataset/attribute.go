package dataset

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type enumerates the attribute types supported by the test-data generator
// and the auditing tool, matching the QUIS domain description in the paper
// (§3.2): "The majority of QUIS attributes are of nominal type, furthermore
// there are a number of attributes of numerical or date type."
type Type uint8

const (
	// NominalType attributes draw values from a finite, ordered domain of
	// strings.
	NominalType Type = iota
	// NumericType attributes hold float64 values within [Min, Max].
	NumericType
	// DateType attributes hold dates stored as fractional days since
	// 1970-01-01 UTC, within [Min, Max].
	DateType
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case NominalType:
		return "nominal"
	case NumericType:
		return "numeric"
	case DateType:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Attribute describes one column of a relation: its name, its type, and its
// domain range. Domain ranges are what the generator's satisfiability test
// (§4.1.3) initializes its current domain ranges from.
type Attribute struct {
	Name string
	Type Type

	// Domain lists the admissible values of a nominal attribute in a fixed
	// order; nominal Values index into this slice.
	Domain []string

	// Min and Max bound numeric and date attributes (inclusive).
	// For date attributes they are fractional days since the epoch.
	Min, Max float64

	index map[string]int // lazy string -> domain index
}

// NewNominal builds a nominal attribute with the given domain.
func NewNominal(name string, domain ...string) *Attribute {
	a := &Attribute{Name: name, Type: NominalType, Domain: domain}
	a.buildIndex()
	return a
}

// NewNumeric builds a numeric attribute with inclusive bounds [min, max].
func NewNumeric(name string, min, max float64) *Attribute {
	return &Attribute{Name: name, Type: NumericType, Min: min, Max: max}
}

// NewDate builds a date attribute bounded by the two dates (inclusive).
func NewDate(name string, min, max time.Time) *Attribute {
	return &Attribute{Name: name, Type: DateType, Min: DateToDays(min), Max: DateToDays(max)}
}

func (a *Attribute) buildIndex() {
	a.index = make(map[string]int, len(a.Domain))
	for i, s := range a.Domain {
		a.index[s] = i
	}
}

// IsNumberLike reports whether the attribute stores number payloads
// (numeric or date). The generator treats date attributes exactly like
// numeric ones, only formatting differs.
func (a *Attribute) IsNumberLike() bool { return a.Type == NumericType || a.Type == DateType }

// NumValues returns the domain size of a nominal attribute and 0 otherwise.
func (a *Attribute) NumValues() int {
	if a.Type != NominalType {
		return 0
	}
	return len(a.Domain)
}

// Index returns the domain index of a nominal value string.
func (a *Attribute) Index(s string) (int, bool) {
	if a.index == nil {
		a.buildIndex()
	}
	i, ok := a.index[s]
	return i, ok
}

// Nominal returns the Value for the given domain string, or an error when
// the string is not part of the domain.
func (a *Attribute) Nominal(s string) (Value, error) {
	i, ok := a.Index(s)
	if !ok {
		return Null(), fmt.Errorf("dataset: %q is not in the domain of nominal attribute %s", s, a.Name)
	}
	return Nom(i), nil
}

// MustNominal is Nominal but panics on unknown values; for tests/examples.
func (a *Attribute) MustNominal(s string) Value {
	v, err := a.Nominal(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Contains reports whether a non-null value lies within the attribute's
// domain range. Null values are considered admissible for every attribute.
func (a *Attribute) Contains(v Value) bool {
	if v.IsNull() {
		return true
	}
	switch a.Type {
	case NominalType:
		return v.IsNominal() && v.NomIdx() < len(a.Domain)
	default:
		if !v.IsNumber() {
			return false
		}
		f := v.Float()
		return f >= a.Min && f <= a.Max && !math.IsNaN(f)
	}
}

// Format renders a value of this attribute as a string. Null renders as "?".
func (a *Attribute) Format(v Value) string {
	if v.IsNull() {
		return "?"
	}
	switch a.Type {
	case NominalType:
		idx := v.NomIdx()
		if idx >= len(a.Domain) {
			return fmt.Sprintf("<bad:%d>", idx)
		}
		return a.Domain[idx]
	case DateType:
		return DaysToDate(v.Float()).UTC().Format("2006-01-02")
	default:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	}
}

// Parse converts a string into a Value of this attribute. The null token
// "?" and the empty string both parse to null.
func (a *Attribute) Parse(s string) (Value, error) {
	if s == "?" || s == "" {
		return Null(), nil
	}
	switch a.Type {
	case NominalType:
		return a.Nominal(s)
	case DateType:
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			return Null(), fmt.Errorf("dataset: attribute %s: %w", a.Name, err)
		}
		return DateValue(t), nil
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("dataset: attribute %s: %w", a.Name, err)
		}
		return Num(f), nil
	}
}

// Validate checks internal consistency of the attribute definition.
func (a *Attribute) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("dataset: attribute with empty name")
	}
	switch a.Type {
	case NominalType:
		if len(a.Domain) == 0 {
			return fmt.Errorf("dataset: nominal attribute %s has an empty domain", a.Name)
		}
		seen := make(map[string]bool, len(a.Domain))
		for _, s := range a.Domain {
			if seen[s] {
				return fmt.Errorf("dataset: nominal attribute %s has duplicate domain value %q", a.Name, s)
			}
			seen[s] = true
		}
	case NumericType, DateType:
		if math.IsNaN(a.Min) || math.IsNaN(a.Max) || a.Min > a.Max {
			return fmt.Errorf("dataset: attribute %s has invalid range [%g, %g]", a.Name, a.Min, a.Max)
		}
	default:
		return fmt.Errorf("dataset: attribute %s has unknown type %d", a.Name, a.Type)
	}
	return nil
}

// Clone returns a deep copy of the attribute.
func (a *Attribute) Clone() *Attribute {
	c := &Attribute{Name: a.Name, Type: a.Type, Min: a.Min, Max: a.Max}
	if a.Domain != nil {
		c.Domain = append([]string(nil), a.Domain...)
		c.buildIndex()
	}
	return c
}
