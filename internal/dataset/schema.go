package dataset

import "fmt"

// Schema is the ordered list of attributes of the target relation
// ("After defining a schema for the target relation with domain ranges for
// each attribute...", §4.1).
type Schema struct {
	attrs  []*Attribute
	byName map[string]int
}

// NewSchema builds and validates a schema from the given attributes.
func NewSchema(attrs ...*Attribute) (*Schema, error) {
	s := &Schema{attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		s.byName[a.Name] = i
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one attribute")
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for tests and examples.
func MustSchema(attrs ...*Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) *Attribute { return s.attrs[i] }

// Attrs returns the attribute slice (callers must not mutate it).
func (s *Schema) Attrs() []*Attribute { return s.attrs }

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// ByName returns the named attribute or nil.
func (s *Schema) ByName(name string) *Attribute {
	i := s.Index(name)
	if i < 0 {
		return nil
	}
	return s.attrs[i]
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	attrs := make([]*Attribute, len(s.attrs))
	for i, a := range s.attrs {
		attrs[i] = a.Clone()
	}
	c, err := NewSchema(attrs...)
	if err != nil {
		panic(err) // a valid schema clones to a valid schema
	}
	return c
}

// CheckRow validates a row against the schema: correct arity (a mismatch
// is a RowWidthError wrapping ErrRowWidth), every value null or within its
// attribute's domain range.
func (s *Schema) CheckRow(row []Value) error {
	if len(row) != len(s.attrs) {
		return &RowWidthError{Got: len(row), Want: len(s.attrs)}
	}
	for i, v := range row {
		if !s.attrs[i].Contains(v) {
			return fmt.Errorf("dataset: value %s out of domain for attribute %s", s.attrs[i].Format(v), s.attrs[i].Name)
		}
	}
	return nil
}
