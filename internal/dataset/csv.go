package dataset

import (
	"encoding/csv"
	"io"
	"os"
)

// WriteCSV serializes the table with a header row of attribute names.
// Nulls are encoded as "?"; dates as ISO 2006-01-02.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c, a := range t.Schema().Attrs() {
			rec[c] = a.Format(t.Get(r, c))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from CSV against a known schema. The header row
// must match the schema's attribute names in order. Rows whose width
// mismatches the schema fail with a RowWidthError (wrapping ErrRowWidth).
// It is the materializing shortcut over NewCSVSource + ReadAll; callers
// that do not need the whole table resident should stream from a
// CSVSource instead.
func ReadCSV(r io.Reader, s *Schema) (*Table, error) {
	src, err := NewCSVSource(r, s)
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}

// WriteCSVFile writes the table to the named file.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, t); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSVFile reads the named file against a known schema.
func ReadCSVFile(path string, s *Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, s)
}
