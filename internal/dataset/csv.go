package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV serializes the table with a header row of attribute names.
// Nulls are encoded as "?"; dates as ISO 2006-01-02.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c, a := range t.Schema().Attrs() {
			rec[c] = a.Format(t.Get(r, c))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from CSV against a known schema. The header row
// must match the schema's attribute names in order.
func ReadCSV(r io.Reader, s *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = s.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for i, name := range s.Names() {
		if header[i] != name {
			return nil, fmt.Errorf("dataset: CSV header %q does not match schema attribute %q", header[i], name)
		}
	}
	t := NewTable(s)
	row := make([]Value, s.Len())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		for c, a := range s.Attrs() {
			v, err := a.Parse(rec[c])
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
			}
			row[c] = v
		}
		t.AppendRow(row)
	}
	return t, nil
}

// WriteCSVFile writes the table to the named file.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, t); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSVFile reads the named file against a known schema.
func ReadCSVFile(path string, s *Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, s)
}
