package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// ColumnChunk is a typed, columnar block of rows: nominal attributes are
// stored as encoded domain indices ([]int32), numeric and date attributes
// as their float64 payloads, with a per-column null bitmap. It is the unit
// the chunked scoring core (audit.CheckChunk) operates on — kernels read
// whole columns without per-cell interface dispatch or Value unboxing.
//
// Chunks are reusable buffers: Reset keeps the column capacity, so a
// fill/score loop reaches a steady state with zero allocations. A chunk is
// not safe for concurrent mutation; the streaming engine gives each chunk
// to exactly one goroutine at a time.
type ColumnChunk struct {
	schema *Schema
	cols   []ChunkCol
	ids    []int64
	n      int
}

// ChunkCol is one typed column of a ColumnChunk. Exactly one of Nom and
// Num is populated, matching the attribute type: Nom for nominal
// attributes (domain index, -1 at null rows), Num for numeric and date
// attributes (NaN at null rows). Nulls are tracked authoritatively in a
// bitmap queried via Null; the in-band null encodings (-1 / NaN) exist so
// scan kernels whose tests already reject them — a domain-bounds check, a
// threshold comparison — can skip the bitmap load entirely.
type ChunkCol struct {
	// Nom holds the domain index per row for a nominal column; -1 at
	// null rows.
	Nom []int32
	// Num holds the float64 payload per row for a numeric or date column.
	Num []float64

	nulls []uint64 // bit r set ⇒ row r is null
}

// Null reports whether row r of the column is null.
func (c *ChunkCol) Null(r int) bool {
	return c.nulls[uint(r)>>6]&(1<<(uint(r)&63)) != 0
}

// NullCount counts the null rows among the first n rows of the column by
// popcounting the bitmap, so the quality dimensions can measure
// completeness without a per-row scan.
func (c *ChunkCol) NullCount(n int) int64 {
	var total int64
	full := n >> 6
	for w := 0; w < full; w++ {
		total += int64(bits.OnesCount64(c.nulls[w]))
	}
	if tail := uint(n) & 63; tail != 0 {
		total += int64(bits.OnesCount64(c.nulls[full] & (1<<tail - 1)))
	}
	return total
}

// nullWords returns the bitmap length (in words) needed for n rows.
func nullWords(n int) int { return (n + 63) / 64 }

// NewColumnChunk returns an empty chunk over the schema.
func NewColumnChunk(s *Schema) *ColumnChunk {
	return &ColumnChunk{schema: s, cols: make([]ChunkCol, s.Len())}
}

// Schema returns the schema the chunk's columns conform to.
func (ck *ColumnChunk) Schema() *Schema { return ck.schema }

// Rows returns the number of rows currently in the chunk.
func (ck *ColumnChunk) Rows() int { return ck.n }

// ID returns the record identifier of row r.
func (ck *ColumnChunk) ID(r int) int64 { return ck.ids[r] }

// Col returns column c for direct kernel access. The returned pointer is
// valid until the next AppendRow or Reset.
func (ck *ColumnChunk) Col(c int) *ChunkCol { return &ck.cols[c] }

// Reset empties the chunk, keeping all column capacity for reuse.
func (ck *ColumnChunk) Reset() {
	ck.n = 0
	ck.ids = ck.ids[:0]
	for c := range ck.cols {
		col := &ck.cols[c]
		col.Nom = col.Nom[:0]
		col.Num = col.Num[:0]
		col.nulls = col.nulls[:0]
	}
}

// AppendRow appends one row (in schema order) with the given record ID.
// It panics on arity mismatch or when a non-null value's kind disagrees
// with the attribute type, exactly as Table.AppendRow and the Value
// accessors would.
func (ck *ColumnChunk) AppendRow(row []Value, id int64) {
	if len(row) != len(ck.cols) {
		panic(fmt.Sprintf("dataset: AppendRow arity %d != %d", len(row), len(ck.cols)))
	}
	r := ck.n
	word, bit := uint(r)>>6, uint64(1)<<(uint(r)&63)
	for c := range ck.cols {
		col := &ck.cols[c]
		if int(word) >= len(col.nulls) {
			col.nulls = append(col.nulls, 0)
		}
		v := row[c]
		if ck.schema.Attr(c).Type == NominalType {
			if v.IsNull() {
				col.nulls[word] |= bit
				col.Nom = append(col.Nom, -1)
			} else {
				col.Nom = append(col.Nom, int32(v.NomIdx()))
			}
		} else {
			if v.IsNull() {
				col.nulls[word] |= bit
				col.Num = append(col.Num, math.NaN())
			} else {
				col.Num = append(col.Num, v.Float())
			}
		}
	}
	ck.ids = append(ck.ids, id)
	ck.n++
}

// Value reconstructs the Value at (row, col).
func (ck *ColumnChunk) Value(r, c int) Value {
	col := &ck.cols[c]
	if col.Null(r) {
		return Null()
	}
	if ck.schema.Attr(c).Type == NominalType {
		return Nom(int(col.Nom[r]))
	}
	return Num(col.Num[r])
}

// RowInto reconstructs row r into buf (which must have the schema's
// arity) and returns it. The row-path fallback of the chunked scorer uses
// this to hand rows to classifiers without a batch kernel.
func (ck *ColumnChunk) RowInto(r int, buf []Value) []Value {
	for c := range ck.cols {
		buf[c] = ck.Value(r, c)
	}
	return buf
}

// appendTableRows appends rows [lo, hi) of the table, preserving the
// table's record IDs. The copy is column-wise: one type test per column,
// not per cell kind switch in the inner loop.
func (ck *ColumnChunk) appendTableRows(t *Table, lo, hi int) {
	if t.schema != ck.schema && t.schema.Len() != ck.schema.Len() {
		panic(fmt.Sprintf("dataset: chunk arity %d != table arity %d", ck.schema.Len(), t.schema.Len()))
	}
	n := hi - lo
	if n <= 0 {
		return
	}
	base := ck.n
	for c := range ck.cols {
		col := &ck.cols[c]
		src := t.cols[c][lo:hi]
		for need := nullWords(base + n); len(col.nulls) < need; {
			col.nulls = append(col.nulls, 0)
		}
		if ck.schema.Attr(c).Type == NominalType {
			for i, v := range src {
				if v.IsNull() {
					r := uint(base + i)
					col.nulls[r>>6] |= 1 << (r & 63)
					col.Nom = append(col.Nom, -1)
				} else {
					col.Nom = append(col.Nom, int32(v.NomIdx()))
				}
			}
		} else {
			for i, v := range src {
				if v.IsNull() {
					r := uint(base + i)
					col.nulls[r>>6] |= 1 << (r & 63)
					col.Num = append(col.Num, math.NaN())
				} else {
					col.Num = append(col.Num, v.Float())
				}
			}
		}
	}
	ck.ids = append(ck.ids, t.ids[lo:hi]...)
	ck.n += n
}

// ChunkInto replaces ck's contents with rows [lo, hi) of the table,
// keeping the chunk's buffers. This is the zero-allocation fill path of
// the batch scorers (audit.AuditTable and friends).
func (t *Table) ChunkInto(ck *ColumnChunk, lo, hi int) {
	ck.Reset()
	ck.appendTableRows(t, lo, hi)
}

// ChunkSource is a RowSource that can additionally fill typed column
// chunks directly, skipping the row-of-Values detour. The streaming
// engine probes for it and falls back to FillChunk otherwise.
type ChunkSource interface {
	RowSource
	// NextChunk appends up to max rows to ck and returns how many were
	// appended. Like io.Reader, it returns rows > 0 with a nil error as
	// long as data flows, and (0, io.EOF) once the source is exhausted.
	// A malformed row surfaces as the same typed error Next would
	// return, after the preceding clean rows were appended.
	NextChunk(ck *ColumnChunk, max int) (int, error)
}

// NextChunk implements ChunkSource with a columnar copy out of the table.
func (s *TableSource) NextChunk(ck *ColumnChunk, max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	rem := s.tab.NumRows() - s.row
	if rem <= 0 {
		return 0, io.EOF
	}
	n := min(rem, max)
	ck.appendTableRows(s.tab, s.row, s.row+n)
	s.row += n
	return n, nil
}

// NextChunk implements ChunkSource: it decodes up to max CSV records into
// the chunk. Parse and width errors carry the same typed values as Next.
func (s *CSVSource) NextChunk(ck *ColumnChunk, max int) (int, error) {
	if cap(s.rowBuf) < s.schema.Len() {
		s.rowBuf = make([]Value, s.schema.Len())
	}
	buf := s.rowBuf[:s.schema.Len()]
	n := 0
	for n < max {
		id, err := s.Next(buf)
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ck.AppendRow(buf, id)
		n++
	}
	return n, nil
}

// FillChunk appends up to max rows from any RowSource into ck via the
// row buffer buf (which must have the schema's arity). It is the generic
// adapter for sources without a native NextChunk; semantics match
// ChunkSource.NextChunk.
func FillChunk(src RowSource, ck *ColumnChunk, buf []Value, max int) (int, error) {
	n := 0
	for n < max {
		id, err := src.Next(buf)
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ck.AppendRow(buf, id)
		n++
	}
	return n, nil
}

// wireChunkCol is the gob wire form of one chunk column.
type wireChunkCol struct {
	Nom   []int32
	Num   []float64
	Nulls []uint64
}

// wireChunk is the gob wire form of a ColumnChunk.
type wireChunk struct {
	Schema wireSchema
	IDs    []int64
	N      int
	Cols   []wireChunkCol
}

// EncodeChunk writes the chunk (schema included) in gob wire form.
func EncodeChunk(w io.Writer, ck *ColumnChunk) error {
	wc := wireChunk{Schema: toWireSchema(ck.schema), IDs: ck.ids, N: ck.n}
	wc.Cols = make([]wireChunkCol, len(ck.cols))
	for c := range ck.cols {
		wc.Cols[c] = wireChunkCol{Nom: ck.cols[c].Nom, Num: ck.cols[c].Num, Nulls: ck.cols[c].nulls}
	}
	return gob.NewEncoder(w).Encode(&wc)
}

// DecodeChunk reads a chunk written by EncodeChunk, validating column
// arity, lengths, and nominal domain bounds so a corrupt or adversarial
// stream cannot materialize a misaligned chunk.
func DecodeChunk(r io.Reader) (*ColumnChunk, error) {
	var wc wireChunk
	if err := gob.NewDecoder(r).Decode(&wc); err != nil {
		return nil, err
	}
	s, err := fromWireSchema(wc.Schema)
	if err != nil {
		return nil, err
	}
	return chunkFromWire(s, wc.IDs, wc.N, wc.Cols)
}

// chunkFromWire validates decoded wire columns against a resolved schema
// and materializes the chunk. Shared by DecodeChunk and ChunkStreamReader
// so both entry points enforce the same corrupt-stream checks.
func chunkFromWire(s *Schema, ids []int64, n int, cols []wireChunkCol) (*ColumnChunk, error) {
	wc := wireChunk{IDs: ids, N: n, Cols: cols}
	if wc.N < 0 || len(wc.IDs) != wc.N {
		return nil, fmt.Errorf("dataset: chunk has %d IDs for %d rows", len(wc.IDs), wc.N)
	}
	if len(wc.Cols) != s.Len() {
		return nil, fmt.Errorf("dataset: chunk has %d columns, schema has %d attributes", len(wc.Cols), s.Len())
	}
	ck := &ColumnChunk{schema: s, ids: wc.IDs, n: wc.N}
	ck.cols = make([]ChunkCol, len(wc.Cols))
	for c := range wc.Cols {
		col := ChunkCol{Nom: wc.Cols[c].Nom, Num: wc.Cols[c].Num, nulls: wc.Cols[c].Nulls}
		if len(col.nulls) < nullWords(wc.N) {
			return nil, fmt.Errorf("dataset: chunk column %d null bitmap has %d words, need %d", c, len(col.nulls), nullWords(wc.N))
		}
		a := s.Attr(c)
		if a.Type == NominalType {
			if len(col.Nom) != wc.N || len(col.Num) != 0 {
				return nil, fmt.Errorf("dataset: chunk column %d (%s) is not a nominal column of %d rows", c, a.Name, wc.N)
			}
			k := int32(a.NumValues())
			for r, idx := range col.Nom {
				if col.Null(r) {
					if idx != -1 {
						return nil, fmt.Errorf("dataset: chunk column %d row %d: null row encodes index %d", c, r, idx)
					}
					continue
				}
				if idx < 0 || idx >= k {
					return nil, fmt.Errorf("dataset: chunk column %d row %d: index %d outside domain of %d", c, r, idx, k)
				}
			}
		} else {
			if len(col.Num) != wc.N || len(col.Nom) != 0 {
				return nil, fmt.Errorf("dataset: chunk column %d (%s) is not a numeric column of %d rows", c, a.Name, wc.N)
			}
			for r := range col.Num {
				if col.Null(r) {
					col.Num[r] = math.NaN() // canonicalize the null payload
				}
			}
		}
		ck.cols[c] = col
	}
	return ck, nil
}
