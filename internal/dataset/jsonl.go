package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// JSONLSource decodes newline-delimited JSON objects incrementally
// against a known schema: one object per line, one row per Next call,
// O(1) memory regardless of input size. Record IDs are the 0-based data
// row index, matching CSVSource.
//
// Field mapping is by attribute name. A missing field and a JSON null
// both decode to the null value, as do the textual null spellings "?"
// and "" (the same tokens Attribute.Parse accepts). Numbers are decoded
// from their literal text through Attribute.Parse, so a value arrives
// bit-identical to the same text in a CSV cell; numeric strings
// ("42.5") coerce the same way. A field not in the schema is an error —
// a misspelled column name must fail loudly, not silently null out a
// whole attribute (the JSONL analogue of the CSV header check).
type JSONLSource struct {
	schema *Schema
	br     *bufio.Reader
	max    int64 // per-record byte cap, 0 = unbounded
	buf    []byte
	line   int // 1-based line of the next record
	nextID int64
	rowBuf []Value // reusable row buffer for NextChunk
	done   bool
}

// NewJSONLSource wraps a JSONL stream.
func NewJSONLSource(r io.Reader, s *Schema) *JSONLSource {
	return &JSONLSource{schema: s, br: bufio.NewReader(r), line: 1}
}

// NewBoundedJSONLSource is NewJSONLSource with a cap on the bytes of any
// single line. The cap is enforced while the line is read, so a
// pathological record fails once it crosses the cap instead of being
// buffered whole. Servers decoding untrusted streams should always bound
// records.
func NewBoundedJSONLSource(r io.Reader, s *Schema, maxRecordBytes int64) (*JSONLSource, error) {
	if maxRecordBytes <= 0 {
		return nil, fmt.Errorf("dataset: record byte cap must be positive, got %d", maxRecordBytes)
	}
	src := NewJSONLSource(r, s)
	src.max = maxRecordBytes
	return src, nil
}

// Schema implements RowSource.
func (s *JSONLSource) Schema() *Schema { return s.schema }

// readLine returns the next non-blank line, enforcing the byte cap while
// accumulating fragments so a runaway line never buffers past the cap.
func (s *JSONLSource) readLine() ([]byte, int, error) {
	if s.done {
		return nil, 0, io.EOF
	}
	for {
		line := s.line
		s.buf = s.buf[:0]
		for {
			frag, err := s.br.ReadSlice('\n')
			s.buf = append(s.buf, frag...)
			if s.max > 0 && int64(len(s.buf)) > s.max {
				return nil, line, fmt.Errorf("dataset: JSONL line %d exceeds the %d-byte limit", line, s.max)
			}
			if err == bufio.ErrBufferFull {
				continue
			}
			if err == io.EOF {
				s.done = true
				break
			}
			if err != nil {
				return nil, line, fmt.Errorf("dataset: reading JSONL line %d: %w", line, err)
			}
			break
		}
		s.line++
		if trimmed := bytes.TrimSpace(s.buf); len(trimmed) > 0 {
			return trimmed, line, nil
		}
		if s.done {
			return nil, 0, io.EOF
		}
	}
}

// Next implements RowSource.
func (s *JSONLSource) Next(buf []Value) (int64, error) {
	data, line, err := s.readLine()
	if err != nil {
		return 0, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var obj map[string]any
	if err := dec.Decode(&obj); err != nil {
		return 0, fmt.Errorf("dataset: JSONL line %d: %w", line, err)
	}
	if dec.More() {
		return 0, fmt.Errorf("dataset: JSONL line %d: trailing data after object", line)
	}
	matched := 0
	for c, a := range s.schema.Attrs() {
		raw, ok := obj[a.Name]
		if !ok {
			buf[c] = Null()
			continue
		}
		matched++
		v, err := jsonCell(a, raw)
		if err != nil {
			return 0, fmt.Errorf("dataset: JSONL line %d: %w", line, err)
		}
		buf[c] = v
	}
	if matched != len(obj) {
		for name := range obj {
			if s.schema.Index(name) < 0 {
				return 0, fmt.Errorf("dataset: JSONL line %d: field %q is not in the schema", line, name)
			}
		}
	}
	id := s.nextID
	s.nextID++
	return id, nil
}

// jsonCell converts one decoded JSON value into a typed cell.
func jsonCell(a *Attribute, raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null(), nil
	case string:
		v, err := a.Parse(x)
		if err != nil {
			return Null(), err
		}
		return v, nil
	case json.Number:
		// The literal text goes through the same Parse as a CSV cell, so
		// a number arrives bit-identical to its CSV rendering; a nominal
		// domain of numeric-looking codes ("404") resolves the same way.
		v, err := a.Parse(x.String())
		if err != nil {
			return Null(), err
		}
		return v, nil
	case bool:
		return Null(), fmt.Errorf("dataset: attribute %s: JSON booleans are not supported", a.Name)
	default:
		return Null(), fmt.Errorf("dataset: attribute %s: unsupported JSON value of type %T", a.Name, raw)
	}
}

// NextChunk implements ChunkSource: it decodes up to max records into the
// chunk. Errors carry the same typed values as Next.
func (s *JSONLSource) NextChunk(ck *ColumnChunk, max int) (int, error) {
	if cap(s.rowBuf) < s.schema.Len() {
		s.rowBuf = make([]Value, s.schema.Len())
	}
	buf := s.rowBuf[:s.schema.Len()]
	n := 0
	for n < max {
		id, err := s.Next(buf)
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ck.AppendRow(buf, id)
		n++
	}
	return n, nil
}

// OpenJSONLFileSource opens the named JSONL file as a streaming
// RowSource. The caller owns the returned closer.
func OpenJSONLFileSource(path string, s *Schema) (*JSONLSource, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return NewJSONLSource(f, s), f, nil
}

// WriteJSONL renders the table as one JSON object per row, fields in
// schema order, nulls as JSON null. Numbers are emitted in the same
// shortest round-trip rendering CSV export uses, so a JSONL round trip
// reproduces the exact cell values.
func WriteJSONL(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	attrs := t.Schema().Attrs()
	names := make([][]byte, len(attrs))
	for c, a := range attrs {
		n, err := json.Marshal(a.Name)
		if err != nil {
			return err
		}
		names[c] = n
	}
	for r := 0; r < t.NumRows(); r++ {
		bw.WriteByte('{')
		for c, a := range attrs {
			if c > 0 {
				bw.WriteByte(',')
			}
			bw.Write(names[c])
			bw.WriteByte(':')
			v := t.Get(r, c)
			switch {
			case v.IsNull():
				bw.WriteString("null")
			case a.Type == NominalType, a.Type == DateType:
				enc, err := json.Marshal(a.Format(v))
				if err != nil {
					return err
				}
				bw.Write(enc)
			default:
				bw.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
			}
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}
