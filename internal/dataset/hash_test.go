package dataset

import (
	"math"
	"testing"
	"time"
)

func hashTestSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		NewNominal("color", "red", "green", "blue"),
		NewNumeric("size", 0, 100),
		NewDate("seen", time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestHashTableChunkAgreement(t *testing.T) {
	s := hashTestSchema(t)
	tab := NewTable(s)
	day := time.Date(2003, 5, 1, 0, 0, 0, 0, time.UTC)
	rows := [][]Value{
		{Nom(0), Num(1.5), DateValue(day)},
		{Null(), Num(math.Copysign(0, -1)), Null()},
		{Nom(2), Null(), DateValue(day.AddDate(0, 1, 0))},
		{Nom(1), Num(99), DateValue(day)},
	}
	for _, row := range rows {
		tab.AppendRow(row)
	}
	ck := NewColumnChunk(s)
	tab.ChunkInto(ck, 0, tab.NumRows())

	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < s.Len(); c++ {
			th, ch := HashTableCell(tab, r, c), HashChunkCell(ck, r, c)
			if th != ch {
				t.Errorf("cell (%d,%d): table hash %x != chunk hash %x", r, c, th, ch)
			}
		}
		if th, ch := HashTableRow(tab, r, nil), HashChunkRow(ck, r, nil); th != ch {
			t.Errorf("row %d: table hash %x != chunk hash %x", r, th, ch)
		}
		cols := []int{2, 0}
		if th, ch := HashTableRow(tab, r, cols), HashChunkRow(ck, r, cols); th != ch {
			t.Errorf("row %d cols %v: table hash %x != chunk hash %x", r, cols, th, ch)
		}
	}
}

func TestHashCanonicalization(t *testing.T) {
	if HashFloat(math.Copysign(0, -1)) != HashFloat(0) {
		t.Errorf("-0 and +0 hash differently")
	}
	if HashValue(Null()) == HashValue(Num(math.NaN())) {
		t.Errorf("null and NaN collide — they are distinct cell states")
	}
	if HashValue(Nom(0)) == HashValue(Num(0)) {
		t.Errorf("Nom(0) and Num(0) collide")
	}
	// Same payload in different columns must not produce the same keyed
	// cell hash (column seeds decorrelate the streams).
	s := hashTestSchema(t)
	tab := NewTable(s)
	tab.AppendRow([]Value{Null(), Null(), Null()})
	if HashTableCell(tab, 0, 0) == HashTableCell(tab, 0, 1) {
		t.Errorf("null cells in different columns hash identically")
	}
}

func TestHashRowDiscriminates(t *testing.T) {
	s := hashTestSchema(t)
	tab := NewTable(s)
	tab.AppendRow([]Value{Nom(0), Num(1), Null()})
	tab.AppendRow([]Value{Nom(0), Num(1), Null()}) // exact duplicate of row 0
	tab.AppendRow([]Value{Nom(1), Num(1), Null()})
	if HashTableRow(tab, 0, nil) != HashTableRow(tab, 1, nil) {
		t.Errorf("identical rows hash differently")
	}
	if HashTableRow(tab, 0, nil) == HashTableRow(tab, 2, nil) {
		t.Errorf("distinct rows collide")
	}
	// Restricted to the columns on which they agree, they hash equal.
	if HashTableRow(tab, 0, []int{1, 2}) != HashTableRow(tab, 2, []int{1, 2}) {
		t.Errorf("rows equal on cols 1,2 hash differently when keyed on them")
	}
}

func TestChunkColNullCount(t *testing.T) {
	s := hashTestSchema(t)
	tab := NewTable(s)
	const n = 200 // spans multiple bitmap words plus a tail
	wantNulls := int64(0)
	for i := 0; i < n; i++ {
		row := []Value{Nom(int(i % 3)), Num(float64(i)), Null()}
		if i%7 == 0 {
			row[1] = Null()
			wantNulls++
		}
		tab.AppendRow(row)
	}
	ck := NewColumnChunk(s)
	tab.ChunkInto(ck, 0, n)
	if got := ck.Col(1).NullCount(n); got != wantNulls {
		t.Errorf("NullCount(size) = %d, want %d", got, wantNulls)
	}
	if got := ck.Col(0).NullCount(n); got != 0 {
		t.Errorf("NullCount(color) = %d, want 0", got)
	}
	if got := ck.Col(2).NullCount(n); got != int64(n) {
		t.Errorf("NullCount(seen) = %d, want %d", got, n)
	}
	// Prefix counts must honour the tail mask.
	if got := ck.Col(1).NullCount(8); got != 2 { // rows 0 and 7
		t.Errorf("NullCount(size, 8) = %d, want 2", got)
	}
	if got := ck.Col(1).NullCount(0); got != 0 {
		t.Errorf("NullCount(size, 0) = %d, want 0", got)
	}
}
