package dataset

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func sourceSchema() *Schema {
	return MustSchema(
		NewNominal("BRV", "404", "501"),
		NewNominal("GBM", "901", "911"),
		NewNumeric("DISP", 1000, 5000),
	)
}

// TestCSVSourceStreamsRows drains a well-formed stream and checks rows,
// IDs and the EOF contract.
func TestCSVSourceStreamsRows(t *testing.T) {
	s := sourceSchema()
	in := "BRV,GBM,DISP\n404,901,2100\n501,911,?\n"
	src, err := NewCSVSource(strings.NewReader(in), s)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Value, s.Len())

	id, err := src.Next(buf)
	if err != nil || id != 0 {
		t.Fatalf("first row: id %d, err %v", id, err)
	}
	if buf[0].NomIdx() != 0 || buf[2].Float() != 2100 {
		t.Fatalf("first row parsed wrong: %v", buf)
	}
	id, err = src.Next(buf)
	if err != nil || id != 1 {
		t.Fatalf("second row: id %d, err %v", id, err)
	}
	if !buf[2].IsNull() {
		t.Fatalf("null token not parsed: %v", buf[2])
	}
	if _, err := src.Next(buf); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	// EOF is sticky.
	if _, err := src.Next(buf); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
}

// TestCSVSourceMalformed is the table-driven malformed-input contract:
// short rows and extra columns surface as the typed ErrRowWidth, bad cell
// payloads as parse errors, and every message names the offending line.
func TestCSVSourceMalformed(t *testing.T) {
	cases := []struct {
		name      string
		csv       string
		wantWidth bool   // errors.Is(err, ErrRowWidth)
		wantIn    string // substring of the error message
	}{
		{
			name:      "short row",
			csv:       "BRV,GBM,DISP\n404,901,2100\n501,911\n",
			wantWidth: true,
			wantIn:    "line 3",
		},
		{
			name:      "extra column",
			csv:       "BRV,GBM,DISP\n404,901,2100,extra\n",
			wantWidth: true,
			wantIn:    "line 2",
		},
		{
			name:   "bad numeric",
			csv:    "BRV,GBM,DISP\n404,901,not-a-number\n",
			wantIn: "line 2",
		},
		{
			name:   "bad nominal",
			csv:    "BRV,GBM,DISP\n999,901,2100\n",
			wantIn: "line 2",
		},
		{
			name:      "short header",
			csv:       "BRV,GBM\n404,901\n",
			wantWidth: true,
			wantIn:    "line 1",
		},
		{
			name:   "wrong header name",
			csv:    "BRV,XXX,DISP\n404,901,2100\n",
			wantIn: `column 2 is "XXX" (want "GBM")`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sourceSchema()
			err := drainCSV(tc.csv, s)
			if err == nil {
				t.Fatal("malformed CSV accepted")
			}
			if got := errors.Is(err, ErrRowWidth); got != tc.wantWidth {
				t.Fatalf("errors.Is(err, ErrRowWidth) = %v, want %v (err: %v)", got, tc.wantWidth, err)
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("error %q does not mention %q", err, tc.wantIn)
			}
			// The batch reader is the same decoder, so it must agree.
			if _, berr := ReadCSV(strings.NewReader(tc.csv), s); berr == nil {
				t.Fatal("ReadCSV accepted what CSVSource rejected")
			} else if errors.Is(berr, ErrRowWidth) != tc.wantWidth {
				t.Fatalf("ReadCSV width-typing disagrees: %v", berr)
			}
		})
	}
}

func drainCSV(in string, s *Schema) error {
	src, err := NewCSVSource(strings.NewReader(in), s)
	if err != nil {
		return err
	}
	buf := make([]Value, s.Len())
	for {
		if _, err := src.Next(buf); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
	}
}

// TestBoundedCSVSource pins the record byte cap: normal streams of any
// length pass, while a single oversized record — including the
// pathological unterminated-quote shape whose newlines are field
// content, not record boundaries — fails without being buffered whole.
func TestBoundedCSVSource(t *testing.T) {
	s := sourceSchema()
	const capBytes = 1 << 10

	t.Run("many small records pass", func(t *testing.T) {
		var b strings.Builder
		b.WriteString("BRV,GBM,DISP\n")
		for i := 0; i < 500; i++ {
			b.WriteString("404,901,2100\n") // total stream far over cap
		}
		src, err := NewBoundedCSVSource(strings.NewReader(b.String()), s, capBytes)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]Value, s.Len())
		rows := 0
		for {
			if _, err := src.Next(buf); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			rows++
		}
		if rows != 500 {
			t.Fatalf("decoded %d rows, want 500", rows)
		}
	})

	for _, tc := range []struct{ name, payload string }{
		{"one huge line", "404,901," + strings.Repeat("9", 4*capBytes) + "\n"},
		{"unterminated quote with newlines", "\"" + strings.Repeat("x\n", 4*capBytes)},
		{"quoted field spanning lines", "\"" + strings.Repeat("x\n", 4*capBytes) + "\",901,2100\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := "BRV,GBM,DISP\n404,901,2100\n" + tc.payload
			src, err := NewBoundedCSVSource(strings.NewReader(in), s, capBytes)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]Value, s.Len())
			if _, err := src.Next(buf); err != nil {
				t.Fatalf("good row rejected: %v", err)
			}
			_, err = src.Next(buf)
			if err == nil || !strings.Contains(err.Error(), "byte limit") {
				t.Fatalf("oversized record not capped: %v", err)
			}
		})
	}

	t.Run("huge header capped too", func(t *testing.T) {
		in := "\"" + strings.Repeat("h", 4*capBytes) + "\",GBM,DISP\n"
		if _, err := NewBoundedCSVSource(strings.NewReader(in), s, capBytes); err == nil ||
			!strings.Contains(err.Error(), "byte limit") {
			t.Fatalf("oversized header not capped: %v", err)
		}
	})
}

// TestTableSourceRoundTrip streams a table out and back and checks
// equality including record IDs on the outbound leg.
func TestTableSourceRoundTrip(t *testing.T) {
	s := sourceSchema()
	tab := NewTable(s)
	tab.AppendRow([]Value{Nom(0), Nom(0), Num(2000)})
	tab.AppendRow([]Value{Nom(1), Nom(1), Null()})
	tab.DeleteRow(0) // IDs no longer dense: remaining row has ID 1

	src := NewTableSource(tab)
	buf := make([]Value, s.Len())
	id, err := src.Next(buf)
	if err != nil || id != 1 {
		t.Fatalf("id %d, err %v; want id 1", id, err)
	}
	if _, err := src.Next(buf); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}

	got, err := ReadAll(NewTableSource(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() {
		t.Fatalf("round trip: %d rows, want %d", got.NumRows(), tab.NumRows())
	}
}

// TestStringRowsSourceWidth checks the JSON-rows source produces the same
// typed width error.
func TestStringRowsSourceWidth(t *testing.T) {
	s := sourceSchema()
	src := NewStringRowsSource(s, [][]string{
		{"404", "901", "2100"},
		{"501", "911"},
	})
	buf := make([]Value, s.Len())
	if _, err := src.Next(buf); err != nil {
		t.Fatal(err)
	}
	_, err := src.Next(buf)
	if !errors.Is(err, ErrRowWidth) {
		t.Fatalf("want ErrRowWidth, got %v", err)
	}
	var rwe *RowWidthError
	if !errors.As(err, &rwe) || rwe.Got != 2 || rwe.Want != 3 {
		t.Fatalf("RowWidthError fields wrong: %+v", rwe)
	}
}

// TestCheckRowWidthTyped checks Schema.CheckRow joins the typed-error
// contract.
func TestCheckRowWidthTyped(t *testing.T) {
	s := sourceSchema()
	if err := s.CheckRow([]Value{Nom(0)}); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("want ErrRowWidth, got %v", err)
	}
}

// TestCSVHeaderMismatchTyped is the regression test for the silent
// column-misalignment bug: a header with the right arity but wrong names
// or order must fail fast with the typed HeaderMismatchError naming every
// offending column — never be scored misaligned.
func TestCSVHeaderMismatchTyped(t *testing.T) {
	s := sourceSchema()
	cases := []struct {
		name    string
		csv     string
		wantBad []int
	}{
		{
			// Same columns, shuffled order: the arity check alone would
			// accept this and silently misalign every value.
			name:    "shuffled columns",
			csv:     "GBM,BRV,DISP\n901,404,2100\n",
			wantBad: []int{0, 1},
		},
		{
			name:    "renamed column",
			csv:     "BRV,GEARBOX,DISP\n404,901,2100\n",
			wantBad: []int{1},
		},
		{
			name:    "all columns wrong",
			csv:     "a,b,c\n404,901,2100\n",
			wantBad: []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCSVSource(strings.NewReader(tc.csv), s)
			if err == nil {
				t.Fatal("misaligned header accepted")
			}
			if !errors.Is(err, ErrHeader) {
				t.Fatalf("errors.Is(err, ErrHeader) = false (err: %v)", err)
			}
			var hm *HeaderMismatchError
			if !errors.As(err, &hm) {
				t.Fatalf("error %T is not a HeaderMismatchError", err)
			}
			if len(hm.Bad) != len(tc.wantBad) {
				t.Fatalf("Bad = %v, want %v", hm.Bad, tc.wantBad)
			}
			for i, c := range tc.wantBad {
				if hm.Bad[i] != c {
					t.Fatalf("Bad = %v, want %v", hm.Bad, tc.wantBad)
				}
				if !strings.Contains(err.Error(), hm.Got[c]) || !strings.Contains(err.Error(), hm.Want[c]) {
					t.Fatalf("error %q does not name column %d (%q vs %q)", err, c, hm.Got[c], hm.Want[c])
				}
			}
			// The batch reader is the same decoder, so it must agree.
			if _, berr := ReadCSV(strings.NewReader(tc.csv), s); !errors.Is(berr, ErrHeader) {
				t.Fatalf("ReadCSV disagrees: %v", berr)
			}
			// An arity mismatch stays a RowWidthError, not a header error.
			if _, werr := NewCSVSource(strings.NewReader("BRV,GBM\n404,901\n"), s); errors.Is(werr, ErrHeader) || !errors.Is(werr, ErrRowWidth) {
				t.Fatalf("arity mismatch misclassified: %v", werr)
			}
		})
	}
}
