package dataset

import "math"

// Cell and row hashing shared by the quality dimensions (distinct-count
// sketches, duplicate detection). The contract is representation
// independence: the same logical cell hashes identically whether it is
// read from a Table or a ColumnChunk, so sketches built on the columnar
// streaming path match sketches built on the row path bit for bit.

// Mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixer. It is NOT cryptographic — it keys no secrets and resists no
// adversaries; it only needs to spread cell payloads uniformly enough for
// bottom-k sketching and duplicate blocking.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nullPayload is the canonical payload of a null cell. An arbitrary odd
// constant no real domain index or float bit pattern is likely to collide
// with after mixing.
const nullPayload = 0x9e3779b97f4a7c15

// HashFloat hashes a float payload, canonicalizing -0 to +0 and every NaN
// bit pattern to one payload so Value.Equal-equal cells hash equal.
func HashFloat(f float64) uint64 {
	if f == 0 {
		f = 0 // collapses -0 into +0
	}
	if math.IsNaN(f) {
		return Mix64(nullPayload ^ 0x5bf0_3635)
	}
	return Mix64(math.Float64bits(f))
}

// hashNomIdx hashes a nominal domain index (-1 ⇒ null).
func hashNomIdx(idx int32) uint64 {
	if idx < 0 {
		return Mix64(nullPayload)
	}
	return Mix64(uint64(idx) + 1)
}

// HashValue hashes one cell value in its canonical payload form.
func HashValue(v Value) uint64 {
	switch {
	case v.IsNull():
		return Mix64(nullPayload)
	case v.IsNominal():
		return hashNomIdx(int32(v.NomIdx()))
	default:
		return HashFloat(v.Float())
	}
}

// colSeed decorrelates the per-column hash streams so identical payloads
// in different columns do not collide in row hashes.
func colSeed(c int) uint64 { return Mix64(uint64(c)*0x9e37_79b9 + 0x85eb_ca6b) }

// HashChunkCell hashes cell (r, c) of a chunk, keyed by column position.
func HashChunkCell(ck *ColumnChunk, r, c int) uint64 {
	col := &ck.cols[c]
	var h uint64
	switch {
	case col.Null(r):
		h = Mix64(nullPayload)
	case col.Nom != nil:
		h = hashNomIdx(col.Nom[r])
	default:
		h = HashFloat(col.Num[r])
	}
	return Mix64(h ^ colSeed(c))
}

// HashTableCell hashes cell (r, c) of a table, keyed by column position.
// Equal cells satisfy HashTableCell(t, r, c) == HashChunkCell(ck, r', c)
// whenever row r of t was copied into row r' of ck.
func HashTableCell(t *Table, r, c int) uint64 {
	return Mix64(HashValue(t.Get(r, c)) ^ colSeed(c))
}

// HashChunkRow combines the cell hashes of the listed columns (all
// columns when cols is nil) of chunk row r into one row hash.
func HashChunkRow(ck *ColumnChunk, r int, cols []int) uint64 {
	h := uint64(0x27d4_eb2f_1656_67c5)
	if cols == nil {
		for c := range ck.cols {
			h = Mix64(h ^ HashChunkCell(ck, r, c))
		}
		return h
	}
	for _, c := range cols {
		h = Mix64(h ^ HashChunkCell(ck, r, c))
	}
	return h
}

// HashTableRow is HashChunkRow over a table row: identical rows hash
// identically across the two representations.
func HashTableRow(t *Table, r int, cols []int) uint64 {
	h := uint64(0x27d4_eb2f_1656_67c5)
	if cols == nil {
		for c := 0; c < t.Schema().Len(); c++ {
			h = Mix64(h ^ HashTableCell(t, r, c))
		}
		return h
	}
	for _, c := range cols {
		h = Mix64(h ^ HashTableCell(t, r, c))
	}
	return h
}
