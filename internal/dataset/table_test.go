package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		NewNominal("color", "red", "green", "blue"),
		NewNumeric("size", 0, 100),
		NewDate("made", MustParseDate("2000-01-01"), MustParseDate("2020-12-31")),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("size") != 1 || s.Index("nope") != -1 {
		t.Fatalf("Index broken")
	}
	if s.ByName("color") == nil || s.ByName("ghost") != nil {
		t.Fatalf("ByName broken")
	}
	want := []string{"color", "size", "made"}
	for i, n := range s.Names() {
		if n != want[i] {
			t.Fatalf("Names = %v", s.Names())
		}
	}
}

func TestSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(NewNumeric("a", 0, 1), NewNumeric("a", 0, 1))
	if err == nil {
		t.Fatalf("duplicate attribute names must be rejected")
	}
}

func TestSchemaRejectsEmpty(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatalf("empty schema must be rejected")
	}
}

func TestSchemaRejectsInvalidAttribute(t *testing.T) {
	if _, err := NewSchema(NewNumeric("a", 5, 1)); err == nil {
		t.Fatalf("invalid attribute must be rejected")
	}
}

func TestSchemaCloneIsDeep(t *testing.T) {
	s := testSchema(t)
	c := s.Clone()
	c.Attr(0).Domain[0] = "mauve"
	if s.Attr(0).Domain[0] != "red" {
		t.Fatalf("Clone must deep-copy attributes")
	}
}

func TestSchemaCheckRow(t *testing.T) {
	s := testSchema(t)
	good := []Value{Nom(0), Num(50), DateValue(MustParseDate("2010-05-05"))}
	if err := s.CheckRow(good); err != nil {
		t.Fatalf("good row rejected: %v", err)
	}
	if err := s.CheckRow(good[:2]); err == nil {
		t.Fatalf("wrong arity accepted")
	}
	bad := []Value{Nom(9), Num(50), Null()}
	if err := s.CheckRow(bad); err == nil {
		t.Fatalf("out-of-domain nominal accepted")
	}
	bad2 := []Value{Nom(0), Num(1e9), Null()}
	if err := s.CheckRow(bad2); err == nil {
		t.Fatalf("out-of-range numeric accepted")
	}
}

func fillTable(t *testing.T, n int) *Table {
	t.Helper()
	s := testSchema(t)
	tab := NewTable(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		row := []Value{
			Nom(rng.Intn(3)),
			Num(float64(rng.Intn(101))),
			DateValue(MustParseDate("2010-05-05")),
		}
		tab.AppendRow(row)
	}
	return tab
}

func TestTableAppendAndGet(t *testing.T) {
	tab := fillTable(t, 10)
	if tab.NumRows() != 10 || tab.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tab.NumRows(), tab.NumCols())
	}
	for r := 0; r < 10; r++ {
		if tab.ID(r) != int64(r) {
			t.Fatalf("IDs must be sequential from 0, got %d at row %d", tab.ID(r), r)
		}
	}
	tab.Set(3, 1, Num(77))
	if tab.Get(3, 1).Float() != 77 {
		t.Fatalf("Set/Get broken")
	}
}

func TestTableAppendArityPanics(t *testing.T) {
	tab := fillTable(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("AppendRow with wrong arity must panic")
		}
	}()
	tab.AppendRow([]Value{Nom(0)})
}

func TestTableRowCopySemantics(t *testing.T) {
	tab := fillTable(t, 3)
	row := tab.Row(0)
	row[0] = Nom(2)
	if tab.Get(0, 0).Equal(Nom(2)) && !tab.Row(0)[0].Equal(row[0]) {
		t.Fatalf("Row must copy")
	}
	buf := make([]Value, 3)
	got := tab.RowInto(1, buf)
	if &got[0] != &buf[0] {
		t.Fatalf("RowInto must reuse the buffer")
	}
}

func TestTableDuplicateAndDelete(t *testing.T) {
	tab := fillTable(t, 5)
	id := tab.DuplicateRow(2)
	if id != 5 {
		t.Fatalf("duplicate should get fresh ID 5, got %d", id)
	}
	if tab.NumRows() != 6 {
		t.Fatalf("NumRows after dup = %d", tab.NumRows())
	}
	for c := 0; c < tab.NumCols(); c++ {
		if !tab.Get(5, c).Equal(tab.Get(2, c)) {
			t.Fatalf("duplicate row differs at col %d", c)
		}
	}
	tab.DeleteRow(0)
	if tab.NumRows() != 5 || tab.ID(0) != 1 {
		t.Fatalf("DeleteRow broken: rows=%d first id=%d", tab.NumRows(), tab.ID(0))
	}
	// A fresh append after delete must not reuse IDs.
	newID := tab.AppendRow(tab.Row(0))
	if newID != 6 {
		t.Fatalf("ID reuse after delete: got %d", newID)
	}
}

func TestTableCloneIndependence(t *testing.T) {
	tab := fillTable(t, 4)
	cl := tab.Clone()
	cl.Set(0, 0, Nom(1))
	cl.AppendRow(tab.Row(1))
	if tab.NumRows() != 4 {
		t.Fatalf("clone append affected original")
	}
	if tab.Get(0, 0).Equal(Nom(1)) && !fillTable(t, 4).Get(0, 0).Equal(Nom(1)) {
		t.Fatalf("clone set affected original")
	}
	if cl.ID(4) != tab.AppendRow(tab.Row(1)) {
		t.Fatalf("clone must carry over nextID so IDs stay unique per lineage")
	}
}

func TestRowIndexByID(t *testing.T) {
	tab := fillTable(t, 5)
	tab.DeleteRow(1)
	idx := tab.RowIndexByID()
	if len(idx) != 4 {
		t.Fatalf("index size = %d", len(idx))
	}
	if idx[0] != 0 || idx[2] != 1 || idx[4] != 3 {
		t.Fatalf("index wrong: %v", idx)
	}
}

func TestTableValidate(t *testing.T) {
	tab := fillTable(t, 3)
	if err := tab.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	tab.Set(1, 1, Num(1e12))
	if err := tab.Validate(); err == nil {
		t.Fatalf("out-of-range value must fail validation")
	}
}

func TestHeadString(t *testing.T) {
	tab := fillTable(t, 2)
	s := tab.HeadString(5)
	if !strings.Contains(s, "color") || !strings.Contains(s, "2010-05-05") {
		t.Fatalf("HeadString missing content:\n%s", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := fillTable(t, 20)
	tab.Set(4, 0, Null())
	tab.Set(5, 1, Null())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), tab.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Fatalf("row count changed: %d -> %d", tab.NumRows(), back.NumRows())
	}
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if !back.Get(r, c).Equal(tab.Get(r, c)) {
				t.Fatalf("cell (%d,%d) changed: %v -> %v", r, c, tab.Get(r, c), back.Get(r, c))
			}
		}
	}
}

func TestCSVHeaderMismatch(t *testing.T) {
	s := testSchema(t)
	_, err := ReadCSV(strings.NewReader("a,b,c\n"), s)
	if err == nil {
		t.Fatalf("header mismatch must fail")
	}
}

func TestCSVBadCell(t *testing.T) {
	s := testSchema(t)
	_, err := ReadCSV(strings.NewReader("color,size,made\nred,notanumber,2010-05-05\n"), s)
	if err == nil {
		t.Fatalf("bad numeric cell must fail")
	}
}

func TestGobTableRoundTrip(t *testing.T) {
	tab := fillTable(t, 15)
	tab.Set(2, 2, Null())
	tab.DeleteRow(7)
	b, err := MarshalTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Fatalf("rows %d -> %d", tab.NumRows(), back.NumRows())
	}
	for r := 0; r < tab.NumRows(); r++ {
		if back.ID(r) != tab.ID(r) {
			t.Fatalf("IDs not preserved at row %d", r)
		}
		for c := 0; c < tab.NumCols(); c++ {
			if !back.Get(r, c).Equal(tab.Get(r, c)) {
				t.Fatalf("cell (%d,%d) changed", r, c)
			}
		}
	}
	// nextID must survive so appends remain unique.
	if back.AppendRow(tab.Row(0)) != tab.AppendRow(tab.Row(0)) {
		t.Fatalf("nextID not preserved")
	}
}

func TestGobSchemaRoundTrip(t *testing.T) {
	s := testSchema(t)
	var buf bytes.Buffer
	if err := EncodeSchema(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("schema len changed")
	}
	for i := range s.Attrs() {
		a, b := s.Attr(i), back.Attr(i)
		if a.Name != b.Name || a.Type != b.Type || a.Min != b.Min || a.Max != b.Max {
			t.Fatalf("attribute %d changed: %+v vs %+v", i, a, b)
		}
		if _, ok := b.Index("red"); a.Type == NominalType && !ok {
			t.Fatalf("decoded nominal lost its index")
		}
	}
}

func TestColumnAccess(t *testing.T) {
	tab := fillTable(t, 5)
	col := tab.Column(1)
	if len(col) != 5 {
		t.Fatalf("Column length = %d", len(col))
	}
	col[0] = Num(42)
	if tab.Get(0, 1).Float() != 42 {
		t.Fatalf("Column must alias storage")
	}
}
