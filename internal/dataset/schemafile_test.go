package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSchemaText = `
# engine composition
BRV  nominal 404,501,600
KM   numeric 0 200000
PROD date    1995-01-01 2002-12-31
`

func TestParseSchemaText(t *testing.T) {
	s, err := ParseSchema(strings.NewReader(sampleSchemaText))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("attrs = %d", s.Len())
	}
	if s.Attr(0).Type != NominalType || s.Attr(0).NumValues() != 3 {
		t.Fatalf("BRV parsed wrong: %+v", s.Attr(0))
	}
	if s.Attr(1).Type != NumericType || s.Attr(1).Max != 200000 {
		t.Fatalf("KM parsed wrong: %+v", s.Attr(1))
	}
	if s.Attr(2).Type != DateType {
		t.Fatalf("PROD parsed wrong: %+v", s.Attr(2))
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"X unknowntype a,b",
		"X nominal",
		"X numeric 1",
		"X numeric a b",
		"X date 1995-01-01",
		"X date junk junk",
	}
	for _, c := range cases {
		if _, err := ParseSchema(strings.NewReader(c)); err == nil {
			t.Errorf("%q should fail to parse", c)
		}
	}
}

func TestSchemaTextRoundTrip(t *testing.T) {
	s, err := ParseSchema(strings.NewReader(sampleSchemaText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchemaText(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round-trip changed arity")
	}
	for i := range s.Attrs() {
		a, b := s.Attr(i), back.Attr(i)
		if a.Name != b.Name || a.Type != b.Type || a.Min != b.Min || a.Max != b.Max {
			t.Fatalf("attribute %d changed: %+v vs %+v", i, a, b)
		}
	}
}
