package dataset

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func jsonlSchema(t testing.TB) *Schema {
	t.Helper()
	return MustSchema(
		NewNominal("brv", "404", "501"),
		NewNumeric("disp", 0, 10000),
		NewDate("prod", MustParseDate("1995-01-01"), MustParseDate("2002-12-31")),
	)
}

func drain(t *testing.T, src RowSource) ([][]Value, []int64) {
	t.Helper()
	var rows [][]Value
	var ids []int64
	buf := make([]Value, src.Schema().Len())
	for {
		id, err := src.Next(buf)
		if err == io.EOF {
			return rows, ids
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, append([]Value(nil), buf...))
		ids = append(ids, id)
	}
}

func TestJSONLSourceDecodes(t *testing.T) {
	s := jsonlSchema(t)
	in := `{"brv":"404","disp":2300.5,"prod":"1999-03-02"}
{"brv":"501","disp":null,"prod":null}

{"disp":"1750"}
{"brv":"?","disp":1e3,"prod":""}
`
	rows, ids := drain(t, NewJSONLSource(strings.NewReader(in), s))
	want := [][]Value{
		{Nom(0), Num(2300.5), DateValue(MustParseDate("1999-03-02"))},
		{Nom(1), Null(), Null()},
		{Null(), Num(1750), Null()}, // missing fields are null, strings coerce
		{Null(), Num(1000), Null()}, // "?" and "" spell null, exponents parse
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	if !reflect.DeepEqual(ids, []int64{0, 1, 2, 3}) {
		t.Fatalf("ids = %v", ids)
	}
}

func TestJSONLSourceErrors(t *testing.T) {
	s := jsonlSchema(t)
	cases := []struct {
		name, in, wantSub string
	}{
		{"malformed JSON", `{"brv":`, "line 1"},
		{"not an object", `[1,2,3]`, "line 1"},
		{"unknown field", `{"brv":"404","bogus":1}`, `"bogus"`},
		{"bad nominal", `{"brv":"999"}`, "brv"},
		{"bad number", `{"disp":"abc"}`, "disp"},
		{"bad date", `{"prod":"03/02/1999"}`, "prod"},
		{"boolean cell", `{"disp":true}`, "boolean"},
		{"nested value", `{"disp":{"v":1}}`, "unsupported"},
		{"trailing data", `{"brv":"404"} {"brv":"501"}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := NewJSONLSource(strings.NewReader(tc.in), s)
			buf := make([]Value, s.Len())
			_, err := src.Next(buf)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestJSONLSourceLineNumbersSkipBlanks(t *testing.T) {
	s := jsonlSchema(t)
	src := NewJSONLSource(strings.NewReader("\n\n{\"brv\":\"404\"}\n\n{bad\n"), s)
	buf := make([]Value, s.Len())
	if _, err := src.Next(buf); err != nil {
		t.Fatal(err)
	}
	_, err := src.Next(buf)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("err = %v, want line 5", err)
	}
}

func TestBoundedJSONLSource(t *testing.T) {
	s := jsonlSchema(t)
	long := `{"brv":"404","disp":` + strings.Repeat("1", 200) + "}\n"
	src, err := NewBoundedJSONLSource(strings.NewReader(long), s, 64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Value, s.Len())
	if _, err := src.Next(buf); err == nil || !strings.Contains(err.Error(), "64-byte limit") {
		t.Fatalf("err = %v, want byte-limit failure", err)
	}
	// A cap below any line is rejected up front only for non-positive.
	if _, err := NewBoundedJSONLSource(strings.NewReader(""), s, 0); err == nil {
		t.Fatal("zero cap accepted")
	}
	// Short lines pass under a generous cap.
	src, err = NewBoundedJSONLSource(strings.NewReader(`{"brv":"404"}`+"\n"), s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// TestWriteJSONLRoundTrip: write → read reproduces the exact cell values
// and the chunk path agrees with the row path.
func TestWriteJSONLRoundTrip(t *testing.T) {
	s := jsonlSchema(t)
	tab := NewTable(s)
	tab.AppendRow([]Value{Nom(0), Num(2300.25), DateValue(MustParseDate("2001-07-09"))})
	tab.AppendRow([]Value{Nom(1), Null(), Null()})
	tab.AppendRow([]Value{Null(), Num(1e-7), DateValue(MustParseDate("1995-01-01"))})

	var b strings.Builder
	if err := WriteJSONL(&b, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(NewJSONLSource(strings.NewReader(b.String()), s))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Fatalf("round trip lost rows: %d != %d", back.NumRows(), tab.NumRows())
	}
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < s.Len(); c++ {
			if !tab.Get(r, c).Equal(back.Get(r, c)) {
				t.Fatalf("cell (%d,%d) changed: %v -> %v", r, c, tab.Get(r, c), back.Get(r, c))
			}
		}
	}

	// Chunk path: NextChunk must deliver the same rows and IDs.
	src := NewJSONLSource(strings.NewReader(b.String()), s)
	ck := NewColumnChunk(s)
	n, err := src.NextChunk(ck, 100)
	if err != nil || n != 3 {
		t.Fatalf("NextChunk = %d, %v", n, err)
	}
	for r := 0; r < n; r++ {
		for c := 0; c < s.Len(); c++ {
			if HashChunkCell(ck, r, c) != HashTableCell(tab, r, c) {
				t.Fatalf("chunk cell (%d,%d) differs from table", r, c)
			}
		}
	}
	if _, err := src.NextChunk(ck, 1); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}
