package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
)

// The chunk-stream codec carries many chunks of one relation over a single
// gob stream: the schema is sent once as a header message, then each chunk
// as an IDs/columns message without the schema repetition. It is the wire
// format of the sharded audit protocol (internal/shard): a coordinator
// streams a shard's chunks to a worker's shard endpoint without buffering
// the shard in wire form, and the worker scores chunks as they decode.
//
// One gob.Encoder/gob.Decoder pair lives for the whole stream — gob
// buffers reads, so layering a fresh decoder per message over the same
// reader would lose bytes.

// wireStreamChunk is the per-chunk message of a chunk stream: a wireChunk
// minus the schema, which the stream header carries once.
type wireStreamChunk struct {
	IDs  []int64
	N    int
	Cols []wireChunkCol
}

// ChunkStreamWriter encodes a sequence of ColumnChunks sharing one schema
// onto a single gob stream. The schema header is written lazily with the
// first chunk; a stream with zero Write calls is empty and decodes as an
// immediate io.EOF.
type ChunkStreamWriter struct {
	enc    *gob.Encoder
	schema *Schema
}

// NewChunkStreamWriter returns a writer encoding onto w.
func NewChunkStreamWriter(w io.Writer) *ChunkStreamWriter {
	return &ChunkStreamWriter{enc: gob.NewEncoder(w)}
}

// Write appends one chunk to the stream. Every chunk must share the first
// chunk's schema (pointer identity — chunks of one stream come from one
// source). The chunk's buffers are read synchronously and may be reused by
// the caller after Write returns.
func (sw *ChunkStreamWriter) Write(ck *ColumnChunk) error {
	if sw.schema == nil {
		if err := sw.enc.Encode(toWireSchema(ck.schema)); err != nil {
			return fmt.Errorf("dataset: chunk stream header: %w", err)
		}
		sw.schema = ck.schema
	} else if ck.schema != sw.schema {
		return fmt.Errorf("dataset: chunk stream: schema changed mid-stream")
	}
	wc := wireStreamChunk{IDs: ck.ids, N: ck.n, Cols: make([]wireChunkCol, len(ck.cols))}
	for c := range ck.cols {
		wc.Cols[c] = wireChunkCol{Nom: ck.cols[c].Nom, Num: ck.cols[c].Num, Nulls: ck.cols[c].nulls}
	}
	return sw.enc.Encode(&wc)
}

// ChunkStreamReader decodes a stream written by ChunkStreamWriter, applying
// the same validation as DecodeChunk to every chunk (arity, lengths,
// nominal domain bounds, null canonicalization).
type ChunkStreamReader struct {
	dec    *gob.Decoder
	schema *Schema
}

// NewChunkStreamReader returns a reader decoding from r. The header is
// decoded lazily on the first Read, so construction never blocks.
func NewChunkStreamReader(r io.Reader) *ChunkStreamReader {
	return &ChunkStreamReader{dec: gob.NewDecoder(r)}
}

// Schema returns the stream's schema, or nil before the first successful
// Read has decoded the header.
func (sr *ChunkStreamReader) Schema() *Schema { return sr.schema }

// Read decodes and validates the next chunk. It returns io.EOF at the
// clean end of the stream (including an empty stream with no header); any
// other error means the stream is corrupt or truncated.
func (sr *ChunkStreamReader) Read() (*ColumnChunk, error) {
	if sr.schema == nil {
		var ws wireSchema
		if err := sr.dec.Decode(&ws); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("dataset: chunk stream header: %w", err)
		}
		s, err := fromWireSchema(ws)
		if err != nil {
			return nil, err
		}
		sr.schema = s
	}
	var wc wireStreamChunk
	if err := sr.dec.Decode(&wc); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dataset: chunk stream: %w", err)
	}
	return chunkFromWire(sr.schema, wc.IDs, wc.N, wc.Cols)
}
