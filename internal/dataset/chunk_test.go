package dataset

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// chunkFixtureTable builds a small mixed-type table with nulls in every
// column and rows straddling a 64-row null-bitmap word boundary.
func chunkFixtureTable(t testing.TB) *Table {
	t.Helper()
	s := fuzzSchema(t)
	tab := NewTable(s)
	row := make([]Value, s.Len())
	for r := 0; r < 150; r++ {
		row[0] = Nom(r % 3)
		row[1] = Num(float64(r) * 1.25)
		row[2] = Num(float64(10957 + r)) // days ~ 2000s dates
		if r%7 == 0 {
			row[0] = Null()
		}
		if r%11 == 0 {
			row[1] = Null()
		}
		if r%13 == 0 {
			row[2] = Null()
		}
		tab.AppendRow(row)
	}
	return tab
}

// TestChunkIntoRoundTrip checks ChunkInto against the table it copied
// from: every reconstructed Value, row and record ID must match, for
// ranges starting at zero and mid-table.
func TestChunkIntoRoundTrip(t *testing.T) {
	tab := chunkFixtureTable(t)
	ck := NewColumnChunk(tab.Schema())
	for _, span := range [][2]int{{0, 150}, {0, 1}, {37, 103}, {149, 150}} {
		lo, hi := span[0], span[1]
		tab.ChunkInto(ck, lo, hi)
		if ck.Rows() != hi-lo {
			t.Fatalf("[%d,%d): chunk has %d rows", lo, hi, ck.Rows())
		}
		buf := make([]Value, tab.NumCols())
		want := make([]Value, tab.NumCols())
		for r := 0; r < ck.Rows(); r++ {
			if ck.ID(r) != tab.ID(lo+r) {
				t.Fatalf("[%d,%d) row %d: ID %d, want %d", lo, hi, r, ck.ID(r), tab.ID(lo+r))
			}
			ck.RowInto(r, buf)
			tab.RowInto(lo+r, want)
			for c := range want {
				if !reflect.DeepEqual(ck.Value(r, c), want[c]) || !reflect.DeepEqual(buf[c], want[c]) {
					t.Fatalf("[%d,%d) row %d col %d: %v, want %v", lo, hi, r, c, ck.Value(r, c), want[c])
				}
			}
		}
	}
}

// TestChunkResetClearsNulls is the stale-bitmap regression test: a chunk
// refilled after Reset must not inherit null bits from the rows it held
// before, and the refill must reuse the grown buffers (no reallocation).
func TestChunkResetClearsNulls(t *testing.T) {
	tab := chunkFixtureTable(t)
	ck := NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, 150)
	nomCap, numCap := cap(ck.Col(0).Nom), cap(ck.Col(1).Num)

	// Row 0 of the fixture is null in column 0 (0%7==0); refill starting
	// at a row that is not.
	tab.ChunkInto(ck, 1, 101)
	if ck.Col(0).Null(0) {
		t.Fatal("null bit survived Reset: chunk row 0 reads null after refill with a non-null row")
	}
	for r := 0; r < ck.Rows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if got, want := ck.Value(r, c), tab.Get(1+r, c); !reflect.DeepEqual(got, want) {
				t.Fatalf("row %d col %d after refill: %v, want %v", r, c, got, want)
			}
		}
	}
	if cap(ck.Col(0).Nom) != nomCap || cap(ck.Col(1).Num) != numCap {
		t.Fatal("refill below the high-water mark reallocated column buffers")
	}
}

// TestNextChunkAndFillChunkAgree checks the two chunk-filling paths — a
// source's native NextChunk and the generic FillChunk adapter — produce
// identical chunks and the same EOF behavior.
func TestNextChunkAndFillChunkAgree(t *testing.T) {
	tab := chunkFixtureTable(t)

	fast := NewTableSource(tab)
	a := NewColumnChunk(tab.Schema())
	var fastCounts []int
	for {
		n, err := fast.NextChunk(a, 64)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		fastCounts = append(fastCounts, n)
	}

	slow := NewTableSource(tab)
	b := NewColumnChunk(tab.Schema())
	buf := make([]Value, tab.NumCols())
	var slowCounts []int
	for {
		n, err := FillChunk(slow, b, buf, 64)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slowCounts = append(slowCounts, n)
	}

	if !reflect.DeepEqual(fastCounts, slowCounts) {
		t.Fatalf("chunk counts differ: NextChunk %v, FillChunk %v", fastCounts, slowCounts)
	}
	if a.Rows() != tab.NumRows() || b.Rows() != tab.NumRows() {
		t.Fatalf("accumulated %d and %d rows, want %d", a.Rows(), b.Rows(), tab.NumRows())
	}
	for r := 0; r < a.Rows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if !reflect.DeepEqual(a.Value(r, c), b.Value(r, c)) {
				t.Fatalf("row %d col %d: NextChunk %v, FillChunk %v", r, c, a.Value(r, c), b.Value(r, c))
			}
		}
	}
}

// corruptWire gob-encodes a wireChunk after the mutation — the way an
// adversarial or bit-rotted stream would present it to DecodeChunk.
func corruptWire(t *testing.T, tab *Table, mutate func(*wireChunk)) io.Reader {
	t.Helper()
	ck := NewColumnChunk(tab.Schema())
	tab.ChunkInto(ck, 0, 10)
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, ck); err != nil {
		t.Fatal(err)
	}
	var wc wireChunk
	if err := gob.NewDecoder(&buf).Decode(&wc); err != nil {
		t.Fatal(err)
	}
	mutate(&wc)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&wc); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestDecodeChunkRejectsCorruptStreams walks every validation DecodeChunk
// performs: each class of misalignment must fail instead of materializing
// a chunk the kernels would index out of bounds.
func TestDecodeChunkRejectsCorruptStreams(t *testing.T) {
	tab := chunkFixtureTable(t)
	cases := []struct {
		name   string
		mutate func(*wireChunk)
	}{
		{"id count mismatch", func(wc *wireChunk) { wc.IDs = wc.IDs[:len(wc.IDs)-1] }},
		{"negative row count", func(wc *wireChunk) { wc.N = -1 }},
		{"column count mismatch", func(wc *wireChunk) { wc.Cols = wc.Cols[:len(wc.Cols)-1] }},
		{"nominal index outside domain", func(wc *wireChunk) { wc.Cols[0].Nom[2] = 99 }},
		{"negative nominal index", func(wc *wireChunk) { wc.Cols[0].Nom[2] = -2 }},
		{"null row with live index", func(wc *wireChunk) { wc.Cols[0].Nom[0] = 1 }}, // row 0 is null in col 0
		{"short null bitmap", func(wc *wireChunk) { wc.Cols[1].Nulls = nil }},
		{"nominal data in numeric column", func(wc *wireChunk) { wc.Cols[1].Nom = []int32{1}; wc.Cols[1].Num = nil }},
		{"short numeric column", func(wc *wireChunk) { wc.Cols[1].Num = wc.Cols[1].Num[:3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeChunk(corruptWire(t, tab, tc.mutate)); err == nil {
				t.Fatal("DecodeChunk accepted a corrupt stream")
			}
		})
	}

	t.Run("truncated stream", func(t *testing.T) {
		ck := NewColumnChunk(tab.Schema())
		tab.ChunkInto(ck, 0, 10)
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, ck); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeChunk(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
			t.Fatal("DecodeChunk accepted a truncated stream")
		}
	})

	t.Run("null payload canonicalized", func(t *testing.T) {
		// A numeric null whose in-band payload is not NaN decodes with the
		// payload rewritten to NaN, so in-band and bitmap views agree.
		ck, err := DecodeChunk(corruptWire(t, tab, func(wc *wireChunk) { wc.Cols[1].Num[0] = 42 })) // row 0 is null in col 1
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(ck.Col(1).Num[0]) {
			t.Fatalf("null payload decoded as %v, want NaN", ck.Col(1).Num[0])
		}
	})
}

// TestValueAndSchemaGobRoundTrip covers the GobEncoder/GobDecoder pair on
// Value and Schema (the hooks model persistence relies on), including the
// short-buffer decode error paths.
func TestValueAndSchemaGobRoundTrip(t *testing.T) {
	type carrier struct {
		V []Value
		S *Schema
	}
	in := carrier{V: []Value{Null(), Nom(2), Num(-3.75)}, S: fuzzSchema(t)}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out carrier
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.V, out.V) {
		t.Fatalf("values changed: %v -> %v", in.V, out.V)
	}
	if !reflect.DeepEqual(in.S.Names(), out.S.Names()) {
		t.Fatalf("schema names changed: %v -> %v", in.S.Names(), out.S.Names())
	}

	var v Value
	if err := v.GobDecode([]byte{1}); err == nil {
		t.Fatal("Value.GobDecode accepted a short buffer")
	}

	// The legacy nested-gob encoding must still decode (models persisted
	// before the fixed v1 record), and the corrupt-kind guard must fire.
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(toWireValue(Nom(7))); err != nil {
		t.Fatal(err)
	}
	var lv Value
	if err := lv.GobDecode(legacy.Bytes()); err != nil {
		t.Fatalf("legacy Value encoding no longer decodes: %v", err)
	}
	if !lv.IsNominal() || lv.NomIdx() != 7 {
		t.Fatalf("legacy decode produced %v, want Nom(7)", lv)
	}
	bad := make([]byte, 14)
	bad[0], bad[1] = 1, 9
	if err := lv.GobDecode(bad); err == nil {
		t.Fatal("Value.GobDecode accepted a corrupt kind byte")
	}
	var s Schema
	if err := s.GobDecode([]byte{0xFF}); err == nil {
		t.Fatal("Schema.GobDecode accepted garbage")
	}
}

// TestTableFileRoundTrip covers the file-level persistence helpers for
// both wire formats, plus their open-error paths.
func TestTableFileRoundTrip(t *testing.T) {
	tab := chunkFixtureTable(t)
	dir := t.TempDir()

	bin := filepath.Join(dir, "t.bin")
	if err := WriteTableFile(bin, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() || !reflect.DeepEqual(got.Row(17), tab.Row(17)) {
		t.Fatal("binary table round trip changed the data")
	}
	if _, err := ReadTableFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("ReadTableFile succeeded on a missing file")
	}

	csvPath := filepath.Join(dir, "t.csv")
	if err := WriteCSVFile(csvPath, tab); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCSVFile(csvPath, tab.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() || !reflect.DeepEqual(got.Row(17), tab.Row(17)) {
		t.Fatal("CSV table round trip changed the data")
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv"), tab.Schema()); err == nil {
		t.Fatal("ReadCSVFile succeeded on a missing file")
	}
}

// TestReadAllPropagatesSourceErrors covers ReadAll's two exits: a clean
// EOF materializes the full table, a mid-stream decode failure surfaces
// the source's typed error with no table.
func TestReadAllPropagatesSourceErrors(t *testing.T) {
	s := fuzzSchema(t)
	good := "color,x,d\nred,1,2020-01-02\nblue,2,2020-01-03\n"
	src, err := NewCSVSource(strings.NewReader(good), s)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 || tab.Get(1, 0).NomIdx() != 2 {
		t.Fatalf("ReadAll materialized %d rows", tab.NumRows())
	}

	bad := "color,x,d\nred,1,2020-01-02\nred,1\n"
	src, err = NewCSVSource(strings.NewReader(bad), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(src); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("ReadAll returned %v, want a width error", err)
	}

	if _, err := ParseSchemaFile(filepath.Join(t.TempDir(), "missing.schema")); err == nil {
		t.Fatal("ParseSchemaFile succeeded on a missing file")
	}
}
