package dataset

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// Native fuzz targets for the two untrusted entry points of the columnar
// path: CSV decoding into chunks (malformed input must surface as the
// typed errors — ErrRowWidth, ErrHeader/HeaderMismatchError, a parse
// error — and never as a panic or a misaligned chunk) and the chunk wire
// format (a round trip preserves every value, null and ID bit-for-bit;
// an adversarial byte stream either fails to decode or yields an
// internally consistent chunk). CI runs each target for a short smoke
// window on top of the committed seed corpus.

// fuzzSchema is the fixed relation the fuzz targets decode against: one
// attribute of each type.
func fuzzSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema(
		NewNominal("color", "red", "green", "blue"),
		NewNumeric("x", -1e9, 1e9),
		NewDate("d", MustParseDate("1990-01-01"), MustParseDate("2030-01-01")),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// requireChunkAligned fails the test unless every column of the chunk has
// exactly rows entries of the type the schema dictates, with nulls
// encoded in-band (-1 nominal, NaN numeric) and nominal indices inside
// the attribute domain.
func requireChunkAligned(t *testing.T, ck *ColumnChunk) {
	t.Helper()
	s := ck.Schema()
	rows := ck.Rows()
	for c := 0; c < s.Len(); c++ {
		col := ck.Col(c)
		a := s.Attr(c)
		if a.Type == NominalType {
			if len(col.Nom) != rows {
				t.Fatalf("column %d (%s): %d nominal entries for %d rows", c, a.Name, len(col.Nom), rows)
			}
			for r := 0; r < rows; r++ {
				idx := col.Nom[r]
				if col.Null(r) {
					if idx != -1 {
						t.Fatalf("column %d row %d: null encodes index %d, want -1", c, r, idx)
					}
				} else if idx < 0 || int(idx) >= a.NumValues() {
					t.Fatalf("column %d row %d: index %d outside domain of %d", c, r, idx, a.NumValues())
				}
			}
		} else {
			if len(col.Num) != rows {
				t.Fatalf("column %d (%s): %d numeric entries for %d rows", c, a.Name, len(col.Num), rows)
			}
			for r := 0; r < rows; r++ {
				if col.Null(r) && !math.IsNaN(col.Num[r]) {
					t.Fatalf("column %d row %d: null encodes %v, want NaN", c, r, col.Num[r])
				}
			}
		}
	}
}

// FuzzCSVSource feeds arbitrary bytes through NewCSVSource + NextChunk.
// The contract under fuzz: no panic, every error is a typed header/width
// error or a parse/CSV error, and the chunk stays column-aligned after
// every call no matter where in the input the decoder gave up.
func FuzzCSVSource(f *testing.F) {
	f.Add([]byte("color,x,d\nred,1.5,2020-01-02\n?,,?\nblue,-3e4,1999-12-31\n"))
	f.Add([]byte("colour,x,d\nred,1,2020-01-02\n"))           // wrong header name
	f.Add([]byte("color,x\nred,1\n"))                         // wrong header arity
	f.Add([]byte("color,x,d\nred,1.5\n"))                     // short row mid-stream
	f.Add([]byte("color,x,d\nred,1.5,2020-01-02,extra\n"))    // long row mid-stream
	f.Add([]byte("color,x,d\nmauve,1.5,2020-01-02\n"))        // out-of-domain nominal
	f.Add([]byte("color,x,d\nred,not-a-number,2020-01-02\n")) // numeric parse error
	f.Add([]byte("color,x,d\nred,1.5,20th of May\n"))         // date parse error
	f.Add([]byte("color,x,d\n\"red\n\",1,2020-01-02"))        // quoted newline
	f.Add([]byte("\"color,x,d"))                              // unterminated quote in header
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		schema := fuzzSchema(t)
		for _, bound := range []int64{0, 1 << 10} {
			var src *CSVSource
			var err error
			if bound > 0 {
				src, err = NewBoundedCSVSource(bytes.NewReader(data), schema, bound)
			} else {
				src, err = NewCSVSource(bytes.NewReader(data), schema)
			}
			if err != nil {
				// A rejected header must be one of the typed contracts or a
				// CSV-level read error; all of them are errors, none panic.
				continue
			}
			ck := NewColumnChunk(schema)
			rows := 0
			for {
				n, err := src.NextChunk(ck, 7)
				rows += n
				if ck.Rows() != rows {
					t.Fatalf("chunk holds %d rows after %d accepted", ck.Rows(), rows)
				}
				requireChunkAligned(t, ck)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					// Mid-stream failures keep the previously decoded rows
					// and carry a typed width error or a parse error.
					var widthErr *RowWidthError
					if errors.As(err, &widthErr) && !errors.Is(err, ErrRowWidth) {
						t.Fatalf("RowWidthError does not wrap ErrRowWidth: %v", err)
					}
					break
				}
				if n == 0 {
					t.Fatal("NextChunk returned 0 rows with nil error")
				}
			}
		}
	})
}

// FuzzColumnChunkRoundTrip drives the chunk wire format from both sides:
// a chunk built from the fuzz input must survive EncodeChunk/DecodeChunk
// with every ID, null bit and value bit pattern (NaN payloads included)
// intact, and the raw fuzz bytes fed straight into DecodeChunk must
// either fail or produce an aligned chunk.
func FuzzColumnChunkRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 1, 0, 0, 0, 0, 0, 0xF0, 0x3F, 7})                    // one plain row
	f.Add([]byte{0x07, 2, 1, 2, 3, 4, 5, 0xF8, 0x7F, 9})                    // all-null row
	f.Add([]byte{0x02, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF8, 0x7F, 1})     // NaN payload
	f.Add(bytes.Repeat([]byte{0x01, 2, 8, 6, 7, 5, 3, 0x09, 0x40, 4}, 130)) // spans null words

	f.Fuzz(func(t *testing.T, data []byte) {
		schema := fuzzSchema(t)

		// Build a chunk from the input: 10 bytes per row — a null mask, a
		// nominal index, a raw float64 pattern shared by the numeric and
		// date columns, and an ID byte.
		const rec = 10
		ck := NewColumnChunk(schema)
		row := make([]Value, schema.Len())
		var ids []int64
		for off := 0; off+rec <= len(data) && ck.Rows() < 1024; off += rec {
			b := data[off : off+rec]
			bits := uint64(0)
			for i := 0; i < 8; i++ {
				bits |= uint64(b[2+i]) << (8 * i)
			}
			num := math.Float64frombits(bits)
			row[0], row[1], row[2] = Nom(int(b[1])%3), Num(num), Num(num)
			if b[0]&1 != 0 {
				row[0] = Null()
			}
			if b[0]&2 != 0 {
				row[1] = Null()
			}
			if b[0]&4 != 0 {
				row[2] = Null()
			}
			id := int64(b[0]) + int64(off)
			ck.AppendRow(row, id)
			ids = append(ids, id)
		}

		var buf bytes.Buffer
		if err := EncodeChunk(&buf, ck); err != nil {
			t.Fatalf("EncodeChunk: %v", err)
		}
		got, err := DecodeChunk(&buf)
		if err != nil {
			t.Fatalf("DecodeChunk of a freshly encoded chunk: %v", err)
		}
		if got.Rows() != ck.Rows() {
			t.Fatalf("round trip changed row count: %d -> %d", ck.Rows(), got.Rows())
		}
		for i, name := range schema.Names() {
			if got.Schema().Attr(i).Name != name || got.Schema().Attr(i).Type != schema.Attr(i).Type {
				t.Fatalf("round trip changed attribute %d", i)
			}
		}
		for r := 0; r < ck.Rows(); r++ {
			if got.ID(r) != ids[r] {
				t.Fatalf("row %d: ID %d -> %d", r, ids[r], got.ID(r))
			}
			for c := 0; c < schema.Len(); c++ {
				w, g := ck.Col(c), got.Col(c)
				if w.Null(r) != g.Null(r) {
					t.Fatalf("row %d col %d: null bit flipped", r, c)
				}
				if schema.Attr(c).Type == NominalType {
					if w.Nom[r] != g.Nom[r] {
						t.Fatalf("row %d col %d: nominal %d -> %d", r, c, w.Nom[r], g.Nom[r])
					}
				} else if !w.Null(r) && math.Float64bits(w.Num[r]) != math.Float64bits(g.Num[r]) {
					t.Fatalf("row %d col %d: value bits %x -> %x", r, c,
						math.Float64bits(w.Num[r]), math.Float64bits(g.Num[r]))
				}
			}
		}
		requireChunkAligned(t, got)

		// Adversarial decode: the raw input as a wire stream must error or
		// yield a chunk whose invariants hold.
		if adv, err := DecodeChunk(bytes.NewReader(data)); err == nil {
			requireChunkAligned(t, adv)
		}
	})
}

// FuzzJSONLSource feeds arbitrary bytes through NewJSONLSource +
// NextChunk — the third untrusted entry point. The contract matches the
// CSV target: no panic, malformed JSON / unknown fields / arity games /
// type coercions / null spellings all surface as errors or decode
// cleanly, and the chunk stays column-aligned after every call no matter
// where in the input the decoder gave up.
func FuzzJSONLSource(f *testing.F) {
	f.Add([]byte(`{"color":"red","x":1.5,"d":"2020-01-02"}` + "\n"))
	f.Add([]byte(`{"color":null,"x":null,"d":null}` + "\n"))
	f.Add([]byte(`{"color":"?","x":"","d":"?"}` + "\n"))     // textual null spellings
	f.Add([]byte(`{"x":"1e3"}` + "\n"))                      // missing fields + numeric string
	f.Add([]byte(`{"color":"mauve"}` + "\n"))                // out-of-domain nominal
	f.Add([]byte(`{"bogus":1}` + "\n"))                      // unknown field
	f.Add([]byte(`{"x":true}` + "\n"))                       // boolean cell
	f.Add([]byte(`{"x":{"nested":1}}` + "\n"))               // nested value
	f.Add([]byte(`{"x":[1,2]}` + "\n"))                      // array cell
	f.Add([]byte(`{"color":"red"} {"color":"blue"}` + "\n")) // trailing data
	f.Add([]byte(`[{"color":"red"}]` + "\n"))                // array, not object
	f.Add([]byte(`{"color":`))                               // truncated JSON
	f.Add([]byte("\n\n{\"x\":1}\n\n"))                       // blank lines
	f.Add([]byte(`{"x":1e309}` + "\n"))                      // float overflow
	f.Add([]byte(`{"d":"2020-13-45"}` + "\n"))               // impossible date
	f.Add([]byte(`{"color":"red","color":"blue"}` + "\n"))   // duplicate key
	f.Add([]byte{0xff, 0xfe, '{', '}'})                      // invalid UTF-8
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		schema := fuzzSchema(t)
		for _, bound := range []int64{0, 1 << 10} {
			var src *JSONLSource
			if bound > 0 {
				var err error
				src, err = NewBoundedJSONLSource(bytes.NewReader(data), schema, bound)
				if err != nil {
					t.Fatalf("positive bound rejected: %v", err)
				}
			} else {
				src = NewJSONLSource(bytes.NewReader(data), schema)
			}
			ck := NewColumnChunk(schema)
			rows := 0
			for {
				n, err := src.NextChunk(ck, 7)
				rows += n
				if ck.Rows() != rows {
					t.Fatalf("chunk holds %d rows after %d accepted", ck.Rows(), rows)
				}
				requireChunkAligned(t, ck)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					// Mid-stream failures keep the previously decoded rows.
					break
				}
				if n == 0 {
					t.Fatal("NextChunk returned 0 rows with nil error")
				}
			}
		}
	})
}
