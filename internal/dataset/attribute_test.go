package dataset

import (
	"strings"
	"testing"
)

func TestNominalAttribute(t *testing.T) {
	a := NewNominal("color", "red", "green", "blue")
	if a.Type != NominalType || a.NumValues() != 3 {
		t.Fatalf("bad attribute: %+v", a)
	}
	i, ok := a.Index("green")
	if !ok || i != 1 {
		t.Fatalf("Index(green) = %d, %v", i, ok)
	}
	if _, ok := a.Index("violet"); ok {
		t.Fatalf("Index must miss on out-of-domain value")
	}
	v := a.MustNominal("blue")
	if a.Format(v) != "blue" {
		t.Fatalf("Format = %q", a.Format(v))
	}
	if !a.Contains(v) {
		t.Fatalf("Contains(blue) = false")
	}
	if a.Contains(Nom(7)) {
		t.Fatalf("Contains(out-of-range idx) = true")
	}
	if a.Contains(Num(1)) {
		t.Fatalf("nominal attr must not contain numbers")
	}
	if !a.Contains(Null()) {
		t.Fatalf("null is admissible everywhere")
	}
}

func TestNominalParseErrors(t *testing.T) {
	a := NewNominal("c", "x")
	if _, err := a.Parse("y"); err == nil {
		t.Fatalf("Parse must fail for out-of-domain value")
	}
	v, err := a.Parse("?")
	if err != nil || !v.IsNull() {
		t.Fatalf("Parse(?) = %v, %v", v, err)
	}
	v, err = a.Parse("")
	if err != nil || !v.IsNull() {
		t.Fatalf("Parse(\"\") = %v, %v", v, err)
	}
}

func TestNumericAttribute(t *testing.T) {
	a := NewNumeric("km", 0, 500000)
	if !a.IsNumberLike() {
		t.Fatalf("numeric must be number-like")
	}
	if !a.Contains(Num(1234.5)) || a.Contains(Num(-1)) || a.Contains(Num(500001)) {
		t.Fatalf("Contains range check broken")
	}
	v, err := a.Parse("42.5")
	if err != nil || v.Float() != 42.5 {
		t.Fatalf("Parse = %v, %v", v, err)
	}
	if _, err := a.Parse("abc"); err == nil {
		t.Fatalf("Parse must fail on garbage")
	}
	if got := a.Format(Num(42.5)); got != "42.5" {
		t.Fatalf("Format = %q", got)
	}
	if got := a.Format(Null()); got != "?" {
		t.Fatalf("Format(null) = %q", got)
	}
}

func TestDateAttributeContains(t *testing.T) {
	a := NewDate("prod", MustParseDate("2000-01-01"), MustParseDate("2001-01-01"))
	if !a.Contains(DateValue(MustParseDate("2000-06-01"))) {
		t.Fatalf("mid-range date must be contained")
	}
	if a.Contains(DateValue(MustParseDate("1999-12-31"))) {
		t.Fatalf("date before range must not be contained")
	}
	if _, err := a.Parse("junk"); err == nil {
		t.Fatalf("Parse must fail on bad date")
	}
}

func TestAttributeValidate(t *testing.T) {
	cases := []struct {
		name string
		a    *Attribute
		ok   bool
	}{
		{"valid nominal", NewNominal("a", "x", "y"), true},
		{"empty name", &Attribute{Name: "", Type: NumericType, Max: 1}, false},
		{"empty domain", &Attribute{Name: "a", Type: NominalType}, false},
		{"dup domain", NewNominal("a", "x", "x"), false},
		{"min>max", NewNumeric("a", 5, 1), false},
		{"valid numeric", NewNumeric("a", 1, 5), true},
		{"unknown type", &Attribute{Name: "a", Type: Type(99)}, false},
	}
	for _, c := range cases {
		err := c.a.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAttributeClone(t *testing.T) {
	a := NewNominal("c", "x", "y")
	b := a.Clone()
	b.Domain[0] = "z"
	if a.Domain[0] != "x" {
		t.Fatalf("Clone must deep-copy the domain")
	}
	if _, ok := a.Index("x"); !ok {
		t.Fatalf("original index must be unaffected by clone mutation")
	}
}

func TestTypeString(t *testing.T) {
	if NominalType.String() != "nominal" || NumericType.String() != "numeric" || DateType.String() != "date" {
		t.Fatalf("Type.String broken")
	}
	if !strings.Contains(Type(42).String(), "42") {
		t.Fatalf("unknown type should render its code")
	}
}
