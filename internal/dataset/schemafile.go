package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// The schema text format used by the command-line tools. One attribute per
// line; blank lines and #-comments are skipped:
//
//	# engine composition
//	BRV  nominal 404,501,600
//	KM   numeric 0 200000
//	PROD date    1995-01-01 2002-12-31

// ParseSchema reads the text format.
func ParseSchema(r io.Reader) (*Schema, error) {
	var attrs []*Attribute
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("dataset: schema line %d: need `name type args...`", lineNo)
		}
		name, kind := fields[0], strings.ToLower(fields[1])
		switch kind {
		case "nominal":
			domain := strings.Split(strings.Join(fields[2:], ""), ",")
			attrs = append(attrs, NewNominal(name, domain...))
		case "numeric":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: schema line %d: numeric needs `min max`", lineNo)
			}
			min, err1 := strconv.ParseFloat(fields[2], 64)
			max, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: schema line %d: bad numeric bounds", lineNo)
			}
			attrs = append(attrs, NewNumeric(name, min, max))
		case "date":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: schema line %d: date needs `min max`", lineNo)
			}
			min, err1 := time.Parse("2006-01-02", fields[2])
			max, err2 := time.Parse("2006-01-02", fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: schema line %d: bad date bounds", lineNo)
			}
			attrs = append(attrs, NewDate(name, min, max))
		default:
			return nil, fmt.Errorf("dataset: schema line %d: unknown type %q", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewSchema(attrs...)
}

// ParseSchemaFile reads the text format from a file.
func ParseSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSchema(f)
}

// WriteSchemaText renders a schema in the text format (round-trips with
// ParseSchema).
func WriteSchemaText(w io.Writer, s *Schema) error {
	for _, a := range s.Attrs() {
		var line string
		switch a.Type {
		case NominalType:
			line = fmt.Sprintf("%s nominal %s", a.Name, strings.Join(a.Domain, ","))
		case NumericType:
			line = fmt.Sprintf("%s numeric %s %s",
				a.Name, strconv.FormatFloat(a.Min, 'g', -1, 64), strconv.FormatFloat(a.Max, 'g', -1, 64))
		case DateType:
			line = fmt.Sprintf("%s date %s %s",
				a.Name, DaysToDate(a.Min).UTC().Format("2006-01-02"), DaysToDate(a.Max).UTC().Format("2006-01-02"))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
