package dataset

import "fmt"

// Table is a column-oriented relation instance. Every row carries a stable
// record identifier that survives duplication and deletion; the pollution
// log (internal/pollute) and the evaluation harness (internal/evalx) join
// clean and dirty tables on these identifiers to establish ground truth.
type Table struct {
	schema *Schema
	cols   [][]Value
	ids    []int64
	nextID int64
}

// NewTable creates an empty table over the given schema.
func NewTable(s *Schema) *Table {
	return &Table{schema: s, cols: make([][]Value, s.Len())}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.ids) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Get returns the value at (row, col).
func (t *Table) Get(row, col int) Value { return t.cols[col][row] }

// Set overwrites the value at (row, col).
func (t *Table) Set(row, col int, v Value) { t.cols[col][row] = v }

// ID returns the stable record identifier of a row.
func (t *Table) ID(row int) int64 { return t.ids[row] }

// AppendRow adds a row and returns its freshly assigned record ID.
// The row slice is copied column-wise; the caller keeps ownership.
func (t *Table) AppendRow(row []Value) int64 {
	if len(row) != len(t.cols) {
		panic(fmt.Sprintf("dataset: AppendRow arity %d != %d", len(row), len(t.cols)))
	}
	id := t.nextID
	t.nextID++
	for c := range t.cols {
		t.cols[c] = append(t.cols[c], row[c])
	}
	t.ids = append(t.ids, id)
	return id
}

// appendRowWithID restores a row under a pre-existing ID (deserialization).
func (t *Table) appendRowWithID(row []Value, id int64) {
	for c := range t.cols {
		t.cols[c] = append(t.cols[c], row[c])
	}
	t.ids = append(t.ids, id)
	if id >= t.nextID {
		t.nextID = id + 1
	}
}

// Row copies row r into a fresh slice.
func (t *Table) Row(r int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c][r]
	}
	return out
}

// RowInto copies row r into buf (which must have the right arity) and
// returns it; use in hot loops to avoid allocation.
func (t *Table) RowInto(r int, buf []Value) []Value {
	for c := range t.cols {
		buf[c] = t.cols[c][r]
	}
	return buf
}

// DuplicateRow appends a copy of row r and returns the copy's new record ID.
func (t *Table) DuplicateRow(r int) int64 {
	id := t.nextID
	t.nextID++
	for c := range t.cols {
		t.cols[c] = append(t.cols[c], t.cols[c][r])
	}
	t.ids = append(t.ids, id)
	return id
}

// DeleteRow removes row r, preserving the order of the remaining rows.
func (t *Table) DeleteRow(r int) {
	for c := range t.cols {
		t.cols[c] = append(t.cols[c][:r], t.cols[c][r+1:]...)
	}
	t.ids = append(t.ids[:r], t.ids[r+1:]...)
}

// Clone returns a deep copy, preserving record IDs.
func (t *Table) Clone() *Table {
	c := &Table{schema: t.schema, cols: make([][]Value, len(t.cols)), nextID: t.nextID}
	for i := range t.cols {
		c.cols[i] = append([]Value(nil), t.cols[i]...)
	}
	c.ids = append([]int64(nil), t.ids...)
	return c
}

// RowIndexByID builds a map from record ID to current row index.
func (t *Table) RowIndexByID() map[int64]int {
	m := make(map[int64]int, len(t.ids))
	for r, id := range t.ids {
		m[id] = r
	}
	return m
}

// Validate checks every row against the schema.
func (t *Table) Validate() error {
	buf := make([]Value, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		if err := t.schema.CheckRow(t.RowInto(r, buf)); err != nil {
			return fmt.Errorf("row %d (id %d): %w", r, t.ids[r], err)
		}
	}
	return nil
}

// Column returns the raw backing slice of column c (callers must not
// append; mutation via the slice is equivalent to Set).
func (t *Table) Column(c int) []Value { return t.cols[c] }

// HeadString renders the first n rows as a human-readable fixed-width block;
// for debugging and example output.
func (t *Table) HeadString(n int) string {
	if n > t.NumRows() {
		n = t.NumRows()
	}
	out := ""
	for _, a := range t.schema.Attrs() {
		out += fmt.Sprintf("%-14s", a.Name)
	}
	out += "\n"
	for r := 0; r < n; r++ {
		for c, a := range t.schema.Attrs() {
			out += fmt.Sprintf("%-14s", a.Format(t.Get(r, c)))
		}
		out += "\n"
	}
	return out
}
