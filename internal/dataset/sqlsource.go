package dataset

import (
	"database/sql"
	"fmt"
	"io"
	"time"
)

// SQLRows is the subset of *sql.Rows the SQL source needs; the interface
// keeps the source testable without a live database handle.
type SQLRows interface {
	Columns() ([]string, error)
	Next() bool
	Scan(dest ...any) error
	Err() error
}

// SQLSource adapts a database/sql result set into a RowSource, so auditd
// can score a warehouse table in place: one row per Next call, O(1)
// memory. Record IDs are the 0-based result row index.
//
// Column mapping is by name and checked up front, like the CSV header: the
// result set must produce exactly the schema's columns in the schema's
// order (SELECT the audited attributes explicitly). Driver values coerce
// by type — strings and []byte parse like CSV cells, numeric types map to
// number-like attributes directly, time.Time to dates, NULL to null.
type SQLSource struct {
	schema *Schema
	rows   SQLRows
	scan   []any
	nextID int64
	rowBuf []Value // reusable row buffer for NextChunk
}

// NewSQLSource wraps a result set. Use it as
//
//	rows, err := db.Query("SELECT brv, gbm, disp FROM quis")
//	src, err := dataset.NewSQLSource(rows, schema)
//
// The caller keeps ownership of rows and must Close it when done.
func NewSQLSource(rows SQLRows, s *Schema) (*SQLSource, error) {
	cols, err := rows.Columns()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading SQL columns: %w", err)
	}
	if len(cols) != s.Len() {
		return nil, &RowWidthError{Got: len(cols), Want: s.Len()}
	}
	want := s.Names()
	var bad []int
	for i, name := range want {
		if cols[i] != name {
			bad = append(bad, i)
		}
	}
	if len(bad) > 0 {
		return nil, &HeaderMismatchError{Got: cols, Want: want, Bad: bad}
	}
	src := &SQLSource{schema: s, rows: rows, scan: make([]any, s.Len())}
	for i := range src.scan {
		src.scan[i] = new(any)
	}
	return src, nil
}

// Schema implements RowSource.
func (s *SQLSource) Schema() *Schema { return s.schema }

// Next implements RowSource.
func (s *SQLSource) Next(buf []Value) (int64, error) {
	if !s.rows.Next() {
		if err := s.rows.Err(); err != nil {
			return 0, fmt.Errorf("dataset: SQL row %d: %w", s.nextID, err)
		}
		return 0, io.EOF
	}
	if err := s.rows.Scan(s.scan...); err != nil {
		return 0, fmt.Errorf("dataset: SQL row %d: %w", s.nextID, err)
	}
	for c, a := range s.schema.Attrs() {
		v, err := sqlCell(a, *(s.scan[c].(*any)))
		if err != nil {
			return 0, fmt.Errorf("dataset: SQL row %d: %w", s.nextID, err)
		}
		buf[c] = v
	}
	id := s.nextID
	s.nextID++
	return id, nil
}

// sqlCell converts one driver value into a typed cell.
func sqlCell(a *Attribute, raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null(), nil
	case string:
		return a.Parse(x)
	case []byte:
		return a.Parse(string(x))
	case float64:
		if a.Type == NominalType {
			return Null(), fmt.Errorf("dataset: attribute %s: SQL numeric value for a nominal attribute", a.Name)
		}
		return Num(x), nil
	case int64:
		if a.Type == NominalType {
			return Null(), fmt.Errorf("dataset: attribute %s: SQL numeric value for a nominal attribute", a.Name)
		}
		return Num(float64(x)), nil
	case time.Time:
		if a.Type != DateType {
			return Null(), fmt.Errorf("dataset: attribute %s: SQL time value for a non-date attribute", a.Name)
		}
		return DateValue(x), nil
	default:
		return Null(), fmt.Errorf("dataset: attribute %s: unsupported SQL value of type %T", a.Name, raw)
	}
}

// NextChunk implements ChunkSource: it scans up to max result rows into
// the chunk. Errors carry the same typed values as Next.
func (s *SQLSource) NextChunk(ck *ColumnChunk, max int) (int, error) {
	if cap(s.rowBuf) < s.schema.Len() {
		s.rowBuf = make([]Value, s.schema.Len())
	}
	buf := s.rowBuf[:s.schema.Len()]
	n := 0
	for n < max {
		id, err := s.Next(buf)
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ck.AppendRow(buf, id)
		n++
	}
	return n, nil
}

// OpenSQLSource runs the query on the handle and wraps the result set.
// The returned closer owns the result set.
func OpenSQLSource(db *sql.DB, query string, s *Schema) (*SQLSource, io.Closer, error) {
	rows, err := db.Query(query)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: SQL query: %w", err)
	}
	src, err := NewSQLSource(rows, s)
	if err != nil {
		rows.Close()
		return nil, nil, err
	}
	return src, rows, nil
}
