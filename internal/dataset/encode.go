package dataset

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
)

// The wire format mirrors the in-memory structures with exported fields so
// that encoding/gob can traverse them. Schemas and tables round-trip
// exactly, including record IDs — this is what makes asynchronous auditing
// (offline structure induction, online checking; §2.2 of the paper)
// possible across process boundaries.

type wireValue struct {
	Kind uint8
	Idx  int32
	Num  float64
}

type wireAttribute struct {
	Name     string
	Type     uint8
	Domain   []string
	Min, Max float64
}

type wireSchema struct {
	Attrs []wireAttribute
}

type wireTable struct {
	Schema wireSchema
	IDs    []int64
	Cols   [][]wireValue
}

func toWireValue(v Value) wireValue { return wireValue{Kind: uint8(v.kind), Idx: v.idx, Num: v.num} }
func fromWireValue(w wireValue) Value {
	return Value{kind: valueKind(w.Kind), idx: w.Idx, num: w.Num}
}

func toWireSchema(s *Schema) wireSchema {
	ws := wireSchema{Attrs: make([]wireAttribute, s.Len())}
	for i, a := range s.Attrs() {
		ws.Attrs[i] = wireAttribute{Name: a.Name, Type: uint8(a.Type), Domain: a.Domain, Min: a.Min, Max: a.Max}
	}
	return ws
}

func fromWireSchema(ws wireSchema) (*Schema, error) {
	attrs := make([]*Attribute, len(ws.Attrs))
	for i, wa := range ws.Attrs {
		attrs[i] = &Attribute{Name: wa.Name, Type: Type(wa.Type), Domain: wa.Domain, Min: wa.Min, Max: wa.Max}
		if attrs[i].Type == NominalType {
			attrs[i].buildIndex()
		}
	}
	return NewSchema(attrs...)
}

// EncodeSchema writes a schema in the native binary format.
func EncodeSchema(w io.Writer, s *Schema) error {
	return gob.NewEncoder(w).Encode(toWireSchema(s))
}

// DecodeSchema reads a schema written by EncodeSchema.
func DecodeSchema(r io.Reader) (*Schema, error) {
	var ws wireSchema
	if err := gob.NewDecoder(r).Decode(&ws); err != nil {
		return nil, fmt.Errorf("dataset: decoding schema: %w", err)
	}
	return fromWireSchema(ws)
}

// EncodeTable writes the table (schema, record IDs, and data) in the native
// binary format.
func EncodeTable(w io.Writer, t *Table) error {
	wt := wireTable{Schema: toWireSchema(t.schema), IDs: t.ids, Cols: make([][]wireValue, len(t.cols))}
	for c := range t.cols {
		col := make([]wireValue, len(t.cols[c]))
		for r, v := range t.cols[c] {
			col[r] = toWireValue(v)
		}
		wt.Cols[c] = col
	}
	return gob.NewEncoder(w).Encode(wt)
}

// DecodeTable reads a table written by EncodeTable.
func DecodeTable(r io.Reader) (*Table, error) {
	var wt wireTable
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("dataset: decoding table: %w", err)
	}
	s, err := fromWireSchema(wt.Schema)
	if err != nil {
		return nil, err
	}
	t := NewTable(s)
	row := make([]Value, s.Len())
	for r := range wt.IDs {
		for c := range wt.Cols {
			row[c] = fromWireValue(wt.Cols[c][r])
		}
		t.appendRowWithID(row, wt.IDs[r])
	}
	return t, nil
}

// GobEncode implements gob.GobEncoder so Values embedded in model structs
// (trees, instance bases) serialize despite their unexported fields. The
// format is a hand-rolled fixed 14-byte record — version tag 0x01, kind,
// idx (big-endian uint32), num (IEEE 754 bits, big-endian) — rather than a
// nested gob stream: gob allocates type ids in process-global order, so a
// nested stream's embedded type definition would vary with whatever else
// the process happened to encode first, breaking the byte-identity
// contract between sharded and single-node audit results.
func (v Value) GobEncode() ([]byte, error) {
	b := make([]byte, 14)
	b[0] = 1
	b[1] = byte(v.kind)
	binary.BigEndian.PutUint32(b[2:6], uint32(v.idx))
	binary.BigEndian.PutUint64(b[6:14], math.Float64bits(v.num))
	return b, nil
}

// GobDecode implements gob.GobDecoder. It accepts both the fixed version-1
// record and the legacy nested-gob encoding (whose first byte is a gob
// message length, never 0x01), so models persisted before the format
// change still load.
func (v *Value) GobDecode(b []byte) error {
	if len(b) == 14 && b[0] == 1 {
		if b[1] > uint8(kindNumber) {
			return fmt.Errorf("dataset: corrupt Value encoding: kind %d", b[1])
		}
		v.kind = valueKind(b[1])
		v.idx = int32(binary.BigEndian.Uint32(b[2:6]))
		v.num = math.Float64frombits(binary.BigEndian.Uint64(b[6:14]))
		return nil
	}
	var w wireValue
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	*v = fromWireValue(w)
	return nil
}

// GobEncode implements gob.GobEncoder for schemas embedded in model structs.
func (s *Schema) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeSchema(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Schema) GobDecode(b []byte) error {
	dec, err := DecodeSchema(bytes.NewReader(b))
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}

// MarshalTable serializes a table to bytes.
func MarshalTable(t *Table) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeTable(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalTable deserializes a table from bytes.
func UnmarshalTable(b []byte) (*Table, error) {
	return DecodeTable(bytes.NewReader(b))
}

// WriteTableFile stores the table in the native binary format.
func WriteTableFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodeTable(f, t); err != nil {
		return err
	}
	return f.Close()
}

// ReadTableFile loads a table stored by WriteTableFile.
func ReadTableFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTable(f)
}
