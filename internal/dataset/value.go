// Package dataset provides the relational substrate for the data-auditing
// environment: typed attributes (nominal, numeric, date), values with
// explicit SQL-style nulls, schemas, and column-oriented tables with stable
// record identifiers.
//
// The package is deliberately self-contained (stdlib only) and forms the
// foundation every other package in this repository builds on: the test-data
// generator (internal/tdg), the polluters (internal/pollute), the
// classifiers (internal/c45 and friends) and the auditing tool
// (internal/audit) all operate on dataset.Table values.
package dataset

import (
	"fmt"
	"math"
	"time"
)

// valueKind discriminates the payload of a Value.
type valueKind uint8

const (
	kindNull valueKind = iota
	kindNominal
	kindNumber // numeric and date attributes share the float64 payload
)

// Value is a single cell of a table. A Value is either null, a nominal
// value (represented by its index into the attribute's domain), or a number
// (used for both numeric and date attributes; dates are stored as fractional
// days since the Unix epoch, see DateToDays).
//
// The zero Value is null.
type Value struct {
	kind valueKind
	idx  int32
	num  float64
}

// Null returns the null value.
func Null() Value { return Value{} }

// Nom returns a nominal value referring to index idx of its attribute's
// domain. It panics if idx is negative.
func Nom(idx int) Value {
	if idx < 0 {
		panic(fmt.Sprintf("dataset: negative nominal index %d", idx))
	}
	return Value{kind: kindNominal, idx: int32(idx)}
}

// Num returns a numeric (or date) value.
func Num(v float64) Value { return Value{kind: kindNumber, num: v} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == kindNull }

// IsNominal reports whether v holds a nominal domain index.
func (v Value) IsNominal() bool { return v.kind == kindNominal }

// IsNumber reports whether v holds a number (numeric or date payload).
func (v Value) IsNumber() bool { return v.kind == kindNumber }

// NomIdx returns the nominal domain index. It panics if v is not nominal.
func (v Value) NomIdx() int {
	if v.kind != kindNominal {
		panic("dataset: NomIdx on non-nominal value")
	}
	return int(v.idx)
}

// Float returns the numeric payload. It panics if v is not a number.
func (v Value) Float() float64 {
	if v.kind != kindNumber {
		panic("dataset: Float on non-number value")
	}
	return v.num
}

// Equal reports whether two values are identical. Nulls compare equal to
// nulls only. Nominal values compare by index (callers must ensure both
// values belong to the same attribute; cross-attribute comparison is
// handled by Attribute.Format-based comparison in higher layers).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case kindNull:
		return true
	case kindNominal:
		return v.idx == o.idx
	default:
		return v.num == o.num || (math.IsNaN(v.num) && math.IsNaN(o.num))
	}
}

// Compare orders two non-null number values: -1 if v < o, 0 if equal,
// +1 if v > o. It panics when either value is not a number.
func (v Value) Compare(o Value) int {
	a, b := v.Float(), o.Float()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value without attribute context; nominal values render
// as #idx. Use Attribute.Format for domain-aware rendering.
func (v Value) String() string {
	switch v.kind {
	case kindNull:
		return "<null>"
	case kindNominal:
		return fmt.Sprintf("#%d", v.idx)
	default:
		return fmt.Sprintf("%g", v.num)
	}
}

// epoch is the reference date for date payloads.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateToDays converts a time to fractional days since 1970-01-01 UTC.
func DateToDays(t time.Time) float64 {
	return t.Sub(epoch).Hours() / 24
}

// DaysToDate converts fractional days since 1970-01-01 UTC back to a time.
func DaysToDate(days float64) time.Time {
	return epoch.Add(time.Duration(days * 24 * float64(time.Hour)))
}

// DateValue builds a date Value from a time.
func DateValue(t time.Time) Value { return Num(DateToDays(t)) }

// MustParseDate parses an ISO date (2006-01-02) and panics on error.
// It is a convenience for tests and example programs.
func MustParseDate(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t
}
