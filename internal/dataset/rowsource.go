package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// ErrRowWidth is the sentinel wrapped by every row-arity failure: a row
// entering the system (CSV, JSON, a merged audit result) whose width does
// not match the schema it is checked against. Test with errors.Is.
var ErrRowWidth = errors.New("row width mismatches schema")

// ErrHeader is the sentinel wrapped by every CSV-header failure: an upload
// whose header row has the schema's arity but the wrong column names or
// order. Without this check such a file would be silently scored with
// every value parsed against the wrong attribute — confidently wrong
// findings instead of a fast failure. Test with errors.Is.
var ErrHeader = errors.New("CSV header mismatches schema")

// HeaderMismatchError names every header column that disagrees with the
// schema; it wraps ErrHeader.
type HeaderMismatchError struct {
	// Got and Want are the observed header and the schema's attribute
	// names (same length — an arity mismatch is a RowWidthError instead).
	Got, Want []string
	// Bad lists the 0-based columns where Got differs from Want.
	Bad []int
}

func (e *HeaderMismatchError) Error() string {
	var b strings.Builder
	b.WriteString("dataset: CSV header mismatches schema:")
	for i, c := range e.Bad {
		if i > 0 {
			b.WriteString(";")
		}
		fmt.Fprintf(&b, " column %d is %q (want %q)", c+1, e.Got[c], e.Want[c])
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrHeader) true.
func (e *HeaderMismatchError) Unwrap() error { return ErrHeader }

// RowWidthError carries the context of a width mismatch; it wraps
// ErrRowWidth.
type RowWidthError struct {
	// Line is the 1-based source line (or row index) of the offending row,
	// 0 when unknown.
	Line int
	// Got and Want are the observed and the schema's width.
	Got, Want int
}

func (e *RowWidthError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("dataset: row at line %d has %d values, schema has %d attributes", e.Line, e.Got, e.Want)
	}
	return fmt.Sprintf("dataset: row has %d values, schema has %d attributes", e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrRowWidth) true.
func (e *RowWidthError) Unwrap() error { return ErrRowWidth }

// RowSource is a pull iterator over the rows of a relation — the streaming
// counterpart of a fully materialized Table. Sources are single-pass and
// not safe for concurrent use; the streaming audit engine
// (audit.AuditStream) reads them from exactly one goroutine.
type RowSource interface {
	// Schema returns the relation schema every row conforms to.
	Schema() *Schema
	// Next fills buf (whose length must equal Schema().Len()) with the
	// next row and returns its record ID. It returns io.EOF when the
	// source is exhausted.
	Next(buf []Value) (id int64, err error)
}

// TableSource adapts a materialized Table into a RowSource, preserving the
// table's record IDs. It is the bridge that lets batch callers reuse the
// streaming engine (and lets tests prove the two paths equivalent).
type TableSource struct {
	tab *Table
	row int
}

// NewTableSource returns a RowSource over the table's rows in order.
func NewTableSource(t *Table) *TableSource { return &TableSource{tab: t} }

// Schema implements RowSource.
func (s *TableSource) Schema() *Schema { return s.tab.Schema() }

// Next implements RowSource.
func (s *TableSource) Next(buf []Value) (int64, error) {
	if s.row >= s.tab.NumRows() {
		return 0, io.EOF
	}
	s.tab.RowInto(s.row, buf)
	id := s.tab.ID(s.row)
	s.row++
	return id, nil
}

// CSVSource decodes CSV incrementally against a known schema: one row per
// Next call, O(1) memory regardless of input size. Record IDs are the
// 0-based data row index (the first row after the header is ID 0). Width
// mismatches surface as RowWidthError (wrapping ErrRowWidth), parse
// failures as the attribute's parse error, both tagged with the line
// number.
type CSVSource struct {
	schema *Schema
	cr     *csv.Reader
	budget *budgetReader // nil unless record bytes are bounded
	max    int64
	line   int // 1-based line of the next record (header was line 1)
	nextID int64
	rowBuf []Value // reusable row buffer for NextChunk
}

// NewCSVSource wraps a CSV stream. The header row is read and validated
// against the schema immediately, so a malformed upload fails before any
// data row is consumed.
func NewCSVSource(r io.Reader, s *Schema) (*CSVSource, error) {
	return newCSVSource(r, s, 0)
}

// NewBoundedCSVSource is NewCSVSource with a cap on the bytes of any
// single record (header included). The cap is enforced inside the read
// path, so a pathological record — e.g. an unterminated quoted field
// spanning gigabytes — fails once it crosses the cap instead of being
// buffered whole. Servers decoding untrusted streams should always
// bound records.
func NewBoundedCSVSource(r io.Reader, s *Schema, maxRecordBytes int64) (*CSVSource, error) {
	if maxRecordBytes <= 0 {
		return nil, fmt.Errorf("dataset: record byte cap must be positive, got %d", maxRecordBytes)
	}
	return newCSVSource(r, s, maxRecordBytes)
}

func newCSVSource(r io.Reader, s *Schema, maxRecordBytes int64) (*CSVSource, error) {
	src := &CSVSource{schema: s, max: maxRecordBytes}
	if maxRecordBytes > 0 {
		src.budget = &budgetReader{r: r, limit: maxRecordBytes, max: maxRecordBytes}
		r = src.budget
	}
	cr := csv.NewReader(r)
	// Arity is checked manually to produce the typed RowWidthError instead
	// of encoding/csv's ErrFieldCount.
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	src.cr = cr

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	src.extendBudget()
	if len(header) != s.Len() {
		return nil, &RowWidthError{Line: 1, Got: len(header), Want: s.Len()}
	}
	want := s.Names()
	var bad []int
	for i, name := range want {
		if header[i] != name {
			bad = append(bad, i)
		}
	}
	if len(bad) > 0 {
		// header aliases csv.Reader's reusable record buffer; copy it
		// before it is overwritten by the next Read.
		got := make([]string, len(header))
		copy(got, header)
		return nil, &HeaderMismatchError{Got: got, Want: want, Bad: bad}
	}
	src.line = 2
	return src, nil
}

// extendBudget grants the next record its byte allowance (called after
// every successfully decoded record).
func (s *CSVSource) extendBudget() {
	if s.budget != nil {
		// bufio inside csv.Reader may have read ahead past the record
		// just decoded; basing the new limit on bytes consumed from the
		// underlying reader only ever grants more headroom, never less.
		s.budget.limit = s.budget.n + s.budget.max
	}
}

// Schema implements RowSource.
func (s *CSVSource) Schema() *Schema { return s.schema }

// Next implements RowSource.
func (s *CSVSource) Next(buf []Value) (int64, error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, fmt.Errorf("dataset: reading CSV line %d: %w", s.line, err)
	}
	s.extendBudget()
	line := s.line
	s.line++
	if len(rec) != s.schema.Len() {
		return 0, &RowWidthError{Line: line, Got: len(rec), Want: s.schema.Len()}
	}
	for c, a := range s.schema.Attrs() {
		v, err := a.Parse(rec[c])
		if err != nil {
			return 0, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		buf[c] = v
	}
	id := s.nextID
	s.nextID++
	return id, nil
}

// budgetReader fails once more bytes were consumed than the current
// limit allows; CSVSource raises the limit as records complete, so the
// cap is per record no matter how the record's bytes are laid out
// (quoted fields may span any number of lines).
type budgetReader struct {
	r     io.Reader
	n     int64 // total bytes consumed
	limit int64 // n may not exceed this
	max   int64 // per-record allowance
}

func (b *budgetReader) Read(p []byte) (int, error) {
	if b.n >= b.limit {
		return 0, fmt.Errorf("dataset: CSV record exceeds the %d-byte limit", b.max)
	}
	// Never read past the budget, so a runaway record cannot buffer more
	// than max bytes before the error fires.
	if rem := b.limit - b.n; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// StringRowsSource is a RowSource over pre-split string rows in the
// attributes' text rendering — the shape JSON audit requests arrive in.
// Record IDs are the 0-based row index.
type StringRowsSource struct {
	schema *Schema
	rows   [][]string
	next   int
}

// NewStringRowsSource wraps rendered string rows.
func NewStringRowsSource(s *Schema, rows [][]string) *StringRowsSource {
	return &StringRowsSource{schema: s, rows: rows}
}

// Schema implements RowSource.
func (s *StringRowsSource) Schema() *Schema { return s.schema }

// Next implements RowSource.
func (s *StringRowsSource) Next(buf []Value) (int64, error) {
	if s.next >= len(s.rows) {
		return 0, io.EOF
	}
	rec := s.rows[s.next]
	i := s.next
	s.next++
	if len(rec) != s.schema.Len() {
		return 0, &RowWidthError{Line: i + 1, Got: len(rec), Want: s.schema.Len()}
	}
	for c, a := range s.schema.Attrs() {
		v, err := a.Parse(rec[c])
		if err != nil {
			return 0, fmt.Errorf("dataset: row %d: %w", i, err)
		}
		buf[c] = v
	}
	return int64(i), nil
}

// ReadAll drains a RowSource into a materialized Table — the inverse of
// NewTableSource. Source-assigned record IDs are discarded; the table
// assigns its own.
func ReadAll(src RowSource) (*Table, error) {
	t := NewTable(src.Schema())
	buf := make([]Value, src.Schema().Len())
	for {
		_, err := src.Next(buf)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.AppendRow(buf)
	}
}

// ReadAllKeepIDs drains a RowSource into a materialized Table preserving
// the source-assigned record IDs — unlike ReadAll, which re-assigns them.
// The shard coordinator uses it: a sharded audit must report the same
// record IDs a single-node audit of the same source would.
func ReadAllKeepIDs(src RowSource) (*Table, error) {
	t := NewTable(src.Schema())
	buf := make([]Value, src.Schema().Len())
	for {
		id, err := src.Next(buf)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.appendRowWithID(buf, id)
	}
}

// OpenCSVFileSource opens the named CSV file as a streaming RowSource.
// The caller owns the returned closer and must close it when done.
func OpenCSVFileSource(path string, s *Schema) (*CSVSource, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	src, err := NewCSVSource(f, s)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, f, nil
}
