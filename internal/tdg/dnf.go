package tdg

import (
	"errors"
	"fmt"

	"dataaudit/internal/dataset"
)

// ErrDNFTooLarge is returned when DNF expansion would exceed the disjunct
// cap. The rule generator keeps formulae small (complexity is one of its
// parameters, §4.1.2), so this only triggers on adversarial input.
var ErrDNFTooLarge = errors.New("tdg: DNF expansion exceeds the disjunct limit")

// MaxDNFDisjuncts caps DNF expansion; 4096 comfortably covers every
// formula the generator can produce at its default complexity limits.
const MaxDNFDisjuncts = 4096

// Conj is a conjunction of atoms — one disjunct of a DNF.
type Conj []Atom

// DNF converts a TDG-formula into disjunctive normal form: a slice of
// conjunctions of atoms such that the formula is true iff at least one
// conjunction is true. (§4.1.3: "First, the TDG-formula α is transformed
// into disjunctive normal form. α is satisfiable iff one of these
// disjuncts is satisfiable.")
func DNF(f Formula) ([]Conj, error) {
	switch g := f.(type) {
	case Atom:
		return []Conj{{g}}, nil
	case Or:
		var out []Conj
		for _, s := range g.Subs {
			d, err := DNF(s)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
			if len(out) > MaxDNFDisjuncts {
				return nil, ErrDNFTooLarge
			}
		}
		if len(g.Subs) == 0 {
			// An empty disjunction is false: no disjuncts.
			return nil, nil
		}
		return out, nil
	case And:
		// Cartesian product of the sub-DNFs.
		out := []Conj{{}}
		for _, s := range g.Subs {
			d, err := DNF(s)
			if err != nil {
				return nil, err
			}
			if len(out)*len(d) > MaxDNFDisjuncts {
				return nil, ErrDNFTooLarge
			}
			next := make([]Conj, 0, len(out)*len(d))
			for _, left := range out {
				for _, right := range d {
					merged := make(Conj, 0, len(left)+len(right))
					merged = append(merged, left...)
					merged = append(merged, right...)
					next = append(next, merged)
				}
			}
			out = next
		}
		return out, nil
	default:
		return nil, fmt.Errorf("tdg: unknown formula type %T", f)
	}
}

// EvalConj evaluates a conjunction of atoms on a row.
func EvalConj(schema *dataset.Schema, c Conj, row []dataset.Value) bool {
	for _, a := range c {
		if !a.Eval(schema, row) {
			return false
		}
	}
	return true
}

// WellTyped reports whether a formula only combines attributes and
// constants in type-correct ways per Definition 1: propositional order
// comparisons and relational order comparisons require number-like
// attributes, equality between attributes requires both nominal or both
// number-like, and constants must lie within the attribute's domain.
func WellTyped(schema *dataset.Schema, f Formula) bool {
	switch g := f.(type) {
	case Atom:
		return atomWellTyped(schema, g)
	case And:
		for _, s := range g.Subs {
			if !WellTyped(schema, s) {
				return false
			}
		}
		return true
	case Or:
		for _, s := range g.Subs {
			if !WellTyped(schema, s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func atomWellTyped(schema *dataset.Schema, a Atom) bool {
	if a.A < 0 || a.A >= schema.Len() {
		return false
	}
	attrA := schema.Attr(a.A)
	switch a.Kind {
	case IsNull, IsNotNull:
		return true
	case EqConst, NeqConst:
		return !a.Val.IsNull() && attrA.Contains(a.Val)
	case LtConst, GtConst:
		return attrA.IsNumberLike() && a.Val.IsNumber() && attrA.Contains(a.Val)
	case EqAttr, NeqAttr:
		if a.B < 0 || a.B >= schema.Len() || a.B == a.A {
			return false
		}
		attrB := schema.Attr(a.B)
		if attrA.Type == dataset.NominalType && attrB.Type == dataset.NominalType {
			return true
		}
		return attrA.IsNumberLike() && attrB.IsNumberLike()
	case LtAttr, GtAttr:
		if a.B < 0 || a.B >= schema.Len() || a.B == a.A {
			return false
		}
		return attrA.IsNumberLike() && schema.Attr(a.B).IsNumberLike()
	default:
		return false
	}
}
