package tdg

import (
	"dataaudit/internal/dataset"
)

// NaturalFormula implements Definition 4: a TDG-formula is natural iff it
// is a satisfiable atom, or a conjunction/disjunction of natural formulae
// in which no subformula is already implied by the remaining subformulae
// (and, for conjunctions, the whole conjunction is satisfiable).
//
// Degenerate composites (zero subformulae) are not natural; one-element
// composites are treated as transparent wrappers (natural iff the single
// subformula is natural).
func NaturalFormula(schema *dataset.Schema, f Formula) (bool, error) {
	switch g := f.(type) {
	case Atom:
		if !atomWellTyped(schema, g) {
			return false, nil
		}
		return Satisfiable(schema, g)
	case And:
		if len(g.Subs) == 0 {
			return false, nil
		}
		for _, s := range g.Subs {
			if ok, err := NaturalFormula(schema, s); err != nil || !ok {
				return false, err
			}
		}
		if len(g.Subs) == 1 {
			return true, nil
		}
		if ok, err := Satisfiable(schema, g); err != nil || !ok {
			return false, err
		}
		// ∀i: αi must not be implied by the conjunction of the others.
		for i := range g.Subs {
			others := And{Subs: withoutIndex(g.Subs, i)}
			implied, err := Implies(schema, others, g.Subs[i])
			if err != nil {
				return false, err
			}
			if implied {
				return false, nil
			}
		}
		return true, nil
	case Or:
		if len(g.Subs) == 0 {
			return false, nil
		}
		for _, s := range g.Subs {
			if ok, err := NaturalFormula(schema, s); err != nil || !ok {
				return false, err
			}
		}
		if len(g.Subs) == 1 {
			return true, nil
		}
		// ∀i: αi must not be implied by the disjunction of the others.
		for i := range g.Subs {
			others := Or{Subs: withoutIndex(g.Subs, i)}
			implied, err := Implies(schema, others, g.Subs[i])
			if err != nil {
				return false, err
			}
			if implied {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, nil
	}
}

func withoutIndex(subs []Formula, i int) []Formula {
	out := make([]Formula, 0, len(subs)-1)
	out = append(out, subs[:i]...)
	out = append(out, subs[i+1:]...)
	return out
}

// NaturalRule implements Definition 5: both sides natural, α ∧ β
// satisfiable, and the rule not tautological (α must not imply β).
func NaturalRule(schema *dataset.Schema, r Rule) (bool, error) {
	for _, side := range []Formula{r.Premise, r.Conclusion} {
		ok, err := NaturalFormula(schema, side)
		if err != nil || !ok {
			return false, err
		}
	}
	both := And{Subs: []Formula{r.Premise, r.Conclusion}}
	if ok, err := Satisfiable(schema, both); err != nil || !ok {
		return false, err
	}
	tauto, err := Implies(schema, r.Premise, r.Conclusion)
	if err != nil {
		return false, err
	}
	return !tauto, nil
}

// pairCompatible checks the Definition 6 condition for an ordered pair of
// natural rules (αi → βi, αj → βj): whenever αj ⇒ αi, the combined
// consequences must be satisfiable together with αj, and αj ∧ βi must not
// already imply βj (otherwise rule j adds no new dependency).
func pairCompatible(schema *dataset.Schema, ri, rj Rule) (bool, error) {
	stronger, err := Implies(schema, rj.Premise, ri.Premise)
	if err != nil {
		return false, err
	}
	if !stronger {
		return true, nil
	}
	joint := And{Subs: []Formula{rj.Premise, ri.Conclusion, rj.Conclusion}}
	if ok, err := Satisfiable(schema, joint); err != nil || !ok {
		return false, err
	}
	redundant, err := Implies(schema, And{Subs: []Formula{rj.Premise, ri.Conclusion}}, rj.Conclusion)
	if err != nil {
		return false, err
	}
	return !redundant, nil
}

// OverlapConsistent checks the condition Definition 6 deliberately skips
// for cost reasons ("it is expensive to check this condition"): whenever
// two premises can hold simultaneously, the combined conclusions must be
// satisfiable there too. Without it, rules with overlapping incomparable
// premises and contradictory conclusions force the data generator into
// premise-breaking, which leaves soft, inexplicable minorities in the data
// — the main source of false positives for any deviation detector.
func OverlapConsistent(schema *dataset.Schema, a, b Rule) (bool, error) {
	overlap := And{Subs: []Formula{a.Premise, b.Premise}}
	sat, err := Satisfiable(schema, overlap)
	if err != nil {
		return false, err
	}
	if !sat {
		return true, nil // disjoint premises cannot conflict
	}
	joint := And{Subs: []Formula{a.Premise, b.Premise, a.Conclusion, b.Conclusion}}
	return Satisfiable(schema, joint)
}

// CompatibleWithSet checks both Definition 6 directions between a candidate
// rule and every rule already in the set; with strictOverlap it adds the
// OverlapConsistent requirement.
func CompatibleWithSet(schema *dataset.Schema, set []Rule, r Rule, strictOverlap bool) (bool, error) {
	for _, existing := range set {
		if ok, err := pairCompatible(schema, existing, r); err != nil || !ok {
			return false, err
		}
		if ok, err := pairCompatible(schema, r, existing); err != nil || !ok {
			return false, err
		}
		if strictOverlap {
			if ok, err := OverlapConsistent(schema, existing, r); err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

// NaturalRuleSet implements Definition 6 for a whole set: every rule is a
// natural TDG-rule and every ordered pair satisfies the compatibility
// condition.
func NaturalRuleSet(schema *dataset.Schema, rules []Rule) (bool, error) {
	for _, r := range rules {
		if ok, err := NaturalRule(schema, r); err != nil || !ok {
			return false, err
		}
	}
	for i := range rules {
		for j := range rules {
			if i == j {
				continue
			}
			if ok, err := pairCompatible(schema, rules[i], rules[j]); err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}
