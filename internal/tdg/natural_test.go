package tdg

import (
	"testing"

	"dataaudit/internal/dataset"
)

func mustNaturalFormula(t *testing.T, s *dataset.Schema, f Formula) bool {
	t.Helper()
	ok, err := NaturalFormula(s, f)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func mustNaturalRule(t *testing.T, s *dataset.Schema, r Rule) bool {
	t.Helper()
	ok, err := NaturalRule(s, r)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestNaturalFormulaAtoms(t *testing.T) {
	s := tdgSchema(t)
	if !mustNaturalFormula(t, s, Atom{Kind: EqConst, A: 0, Val: v(0)}) {
		t.Errorf("satisfiable atom must be natural")
	}
	// An unsatisfiable atom (numeric bound outside the attribute range).
	if mustNaturalFormula(t, s, Atom{Kind: GtConst, A: 3, Val: n(100)}) {
		t.Errorf("unsatisfiable atom must not be natural")
	}
	// An ill-typed atom.
	if mustNaturalFormula(t, s, Atom{Kind: LtConst, A: 0, Val: n(5)}) {
		t.Errorf("ill-typed atom must not be natural")
	}
}

func TestNaturalFormulaConjunctions(t *testing.T) {
	s := tdgSchema(t)
	aEq := Atom{Kind: EqConst, A: 0, Val: v(0)}
	bEq := Atom{Kind: EqConst, A: 1, Val: v(0)}
	// Independent conjuncts: natural.
	if !mustNaturalFormula(t, s, And{Subs: []Formula{aEq, bEq}}) {
		t.Errorf("independent conjunction must be natural")
	}
	// Unsatisfiable conjunction: not natural (paper's second example:
	// A = Val1 ∧ A = Val2).
	if mustNaturalFormula(t, s, And{Subs: []Formula{aEq, Atom{Kind: EqConst, A: 0, Val: v(1)}}}) {
		t.Errorf("contradictory conjunction must not be natural")
	}
	// Redundant conjunct: A < 10 already implies A < 50.
	if mustNaturalFormula(t, s, And{Subs: []Formula{
		Atom{Kind: LtConst, A: 3, Val: n(10)},
		Atom{Kind: LtConst, A: 3, Val: n(50)},
	}}) {
		t.Errorf("conjunction with implied conjunct must not be natural")
	}
	// Equality implies disequality with another value: redundant.
	if mustNaturalFormula(t, s, And{Subs: []Formula{
		aEq,
		Atom{Kind: NeqConst, A: 0, Val: v(1)},
	}}) {
		t.Errorf("A=a1 ∧ A≠a2 has a redundant conjunct")
	}
	// Empty conjunction: not natural.
	if mustNaturalFormula(t, s, And{}) {
		t.Errorf("empty conjunction must not be natural")
	}
	// Single-element wrapper: transparent.
	if !mustNaturalFormula(t, s, And{Subs: []Formula{aEq}}) {
		t.Errorf("singleton wrapper around a natural formula must be natural")
	}
}

func TestNaturalFormulaDisjunctions(t *testing.T) {
	s := tdgSchema(t)
	aEq := Atom{Kind: EqConst, A: 0, Val: v(0)}
	bEq := Atom{Kind: EqConst, A: 1, Val: v(0)}
	if !mustNaturalFormula(t, s, Or{Subs: []Formula{aEq, bEq}}) {
		t.Errorf("independent disjunction must be natural")
	}
	// Duplicate disjunct is implied by the rest.
	if mustNaturalFormula(t, s, Or{Subs: []Formula{aEq, aEq}}) {
		t.Errorf("duplicate disjunct must not be natural")
	}
	// A < 10 is implied by the looser A < 50 disjunct.
	if mustNaturalFormula(t, s, Or{Subs: []Formula{
		Atom{Kind: LtConst, A: 3, Val: n(10)},
		Atom{Kind: LtConst, A: 3, Val: n(50)},
	}}) {
		t.Errorf("disjunction with absorbed disjunct must not be natural")
	}
}

func TestNaturalRulePaperExamples(t *testing.T) {
	s := tdgSchema(t)
	// Paper §4.1.2, first example: A = Val1 → A = Val2 is contradictory
	// (premise and conclusion cannot hold together).
	r1 := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
		Conclusion: Atom{Kind: EqConst, A: 0, Val: v(1)},
	}
	if mustNaturalRule(t, s, r1) {
		t.Errorf("contradictory rule must not be natural")
	}
	// Second example: A = Val1 ∧ A = Val2 → B = Val1 has an unnatural
	// premise.
	r2 := Rule{
		Premise: And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(0)},
			Atom{Kind: EqConst, A: 0, Val: v(1)},
		}},
		Conclusion: Atom{Kind: EqConst, A: 1, Val: v(0)},
	}
	if mustNaturalRule(t, s, r2) {
		t.Errorf("rule with contradictory premise must not be natural")
	}
	// Third example: A = Val1 → A ≠ Val2 is tautological.
	r3 := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
		Conclusion: Atom{Kind: NeqConst, A: 0, Val: v(1)},
	}
	if mustNaturalRule(t, s, r3) {
		t.Errorf("tautological rule must not be natural")
	}
	// A healthy dependency: A = a1 → B = b1.
	r4 := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
		Conclusion: Atom{Kind: EqConst, A: 1, Val: v(2)},
	}
	if !mustNaturalRule(t, s, r4) {
		t.Errorf("well-formed dependency must be natural")
	}
}

func TestNaturalRuleSetContradiction(t *testing.T) {
	s := tdgSchema(t)
	// Paper's mutually contradictory pair:
	//   A = Val1 → B = Val1
	//   A = Val1 → B = Val2
	prem := Atom{Kind: EqConst, A: 0, Val: v(0)}
	ruleA := Rule{Premise: prem, Conclusion: Atom{Kind: EqConst, A: 1, Val: v(0)}}
	ruleB := Rule{Premise: prem, Conclusion: Atom{Kind: EqConst, A: 1, Val: v(1)}}
	ok, err := NaturalRuleSet(s, []Rule{ruleA, ruleB})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("mutually contradictory rules must not form a natural rule set")
	}
	// CompatibleWithSet must reject the second rule incrementally, too.
	compat, err := CompatibleWithSet(s, []Rule{ruleA}, ruleB, false)
	if err != nil {
		t.Fatal(err)
	}
	if compat {
		t.Errorf("CompatibleWithSet must reject the contradictory rule")
	}
}

func TestNaturalRuleSetRedundancy(t *testing.T) {
	s := tdgSchema(t)
	// Paper's redundancy example:
	//   A = Val1 ∧ B = Val2 → C = Val1
	//   A = Val1 → C = Val1
	// The first rule is redundant given the second.
	specific := Rule{
		Premise: And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(0)},
			Atom{Kind: EqConst, A: 1, Val: v(1)},
		}},
		Conclusion: Atom{Kind: EqConst, A: 2, Val: v(0)},
	}
	general := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
		Conclusion: Atom{Kind: EqConst, A: 2, Val: v(0)},
	}
	ok, err := NaturalRuleSet(s, []Rule{general, specific})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("redundant rule pair must not form a natural rule set")
	}
}

func TestNaturalRuleSetCompatiblePair(t *testing.T) {
	s := tdgSchema(t)
	// Two rules with overlapping premises whose consequences are
	// independent and non-redundant:
	//   A = a1          → B = b1
	//   A = a1 ∧ C = c1 → N < 50
	rules := []Rule{
		{
			Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
			Conclusion: Atom{Kind: EqConst, A: 1, Val: v(2)},
		},
		{
			Premise: And{Subs: []Formula{
				Atom{Kind: EqConst, A: 0, Val: v(0)},
				Atom{Kind: EqConst, A: 2, Val: v(0)},
			}},
			Conclusion: Atom{Kind: LtConst, A: 3, Val: n(50)},
		},
	}
	ok, err := NaturalRuleSet(s, rules)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("independent overlapping rules must form a natural rule set")
	}
}

func TestNaturalRuleSetRejectsUnnaturalMember(t *testing.T) {
	s := tdgSchema(t)
	tauto := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
		Conclusion: Atom{Kind: NeqConst, A: 0, Val: v(1)},
	}
	ok, err := NaturalRuleSet(s, []Rule{tauto})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("a set containing an unnatural rule must be rejected")
	}
}
