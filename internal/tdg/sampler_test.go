package tdg

import (
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
)

// TestSampleConjProducesSatisfyingAssignments is the property test for the
// assignment sampler behind rule repair: for random satisfiable
// conjunctions, sampleConj must rewrite the row so that the conjunction
// holds, touching only mentioned attributes.
func TestSampleConjProducesSatisfyingAssignments(t *testing.T) {
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(101))
	g := &generator{schema: s, rng: rng, p: DataGenParams{}.WithDefaults()}
	attempts, successes := 0, 0
	for i := 0; i < 3000; i++ {
		k := 1 + rng.Intn(3)
		conj := make(Conj, k)
		for j := range conj {
			conj[j] = randomWellTypedAtom(s, rng)
		}
		if !SatConj(s, conj) {
			continue
		}
		attempts++
		row := randomRow(s, rng, 0.1)
		before := append([]dataset.Value(nil), row...)
		if !g.sampleConj(conj, row) {
			// The sampler may fail on rare pathological conjunctions; it
			// must never succeed wrongly, which is what we check below.
			continue
		}
		successes++
		if !EvalConj(s, conj, row) {
			t.Fatalf("sampleConj claimed success but conjunction is false: %v", conj)
		}
		// Untouched attributes keep their values.
		mentioned := map[int]bool{}
		var buf []int
		for _, a := range conj {
			for _, attr := range a.Attrs(buf[:0]) {
				mentioned[attr] = true
			}
		}
		for c := range row {
			if !mentioned[c] && !row[c].Equal(before[c]) {
				t.Fatalf("sampleConj touched unmentioned attribute %d", c)
			}
		}
	}
	if attempts == 0 || float64(successes)/float64(attempts) < 0.9 {
		t.Fatalf("sampler success rate too low: %d/%d", successes, attempts)
	}
}
