package tdg

import (
	"math/rand"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
)

// tdgSchema is the shared test schema: three nominal attributes (two with
// overlapping domains), two numerics and a date — the attribute-type mix of
// the paper's QUIS example domain.
func tdgSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("A", "a1", "a2", "a3"),
		dataset.NewNominal("B", "a2", "a3", "b1"),
		dataset.NewNominal("C", "c1", "c2"),
		dataset.NewNumeric("N", 0, 100),
		dataset.NewNumeric("M", 50, 150),
		dataset.NewDate("D", dataset.MustParseDate("2000-01-01"), dataset.MustParseDate("2010-12-31")),
	)
}

// row builds a full row; callers index attributes positionally
// (A=0, B=1, C=2, N=3, M=4, D=5).
func row(vals ...dataset.Value) []dataset.Value { return vals }

func v(idx int) dataset.Value   { return dataset.Nom(idx) }
func n(f float64) dataset.Value { return dataset.Num(f) }

func defaultRow() []dataset.Value {
	return row(v(0), v(1), v(0), n(10), n(60), n(12000))
}

func TestAtomEvalPropositional(t *testing.T) {
	s := tdgSchema(t)
	r := defaultRow()
	cases := []struct {
		name string
		a    Atom
		want bool
	}{
		{"A=a1 true", Atom{Kind: EqConst, A: 0, Val: v(0)}, true},
		{"A=a2 false", Atom{Kind: EqConst, A: 0, Val: v(1)}, false},
		{"A!=a2 true", Atom{Kind: NeqConst, A: 0, Val: v(1)}, true},
		{"A!=a1 false", Atom{Kind: NeqConst, A: 0, Val: v(0)}, false},
		{"N<20 true", Atom{Kind: LtConst, A: 3, Val: n(20)}, true},
		{"N<10 false (strict)", Atom{Kind: LtConst, A: 3, Val: n(10)}, false},
		{"N>5 true", Atom{Kind: GtConst, A: 3, Val: n(5)}, true},
		{"N>10 false (strict)", Atom{Kind: GtConst, A: 3, Val: n(10)}, false},
		{"A isnotnull", Atom{Kind: IsNotNull, A: 0}, true},
		{"A isnull false", Atom{Kind: IsNull, A: 0}, false},
	}
	for _, c := range cases {
		if got := c.a.Eval(s, r); got != c.want {
			t.Errorf("%s: got %v", c.name, got)
		}
	}
}

func TestAtomEvalNullSemantics(t *testing.T) {
	s := tdgSchema(t)
	r := defaultRow()
	r[0] = dataset.Null()
	r[3] = dataset.Null()
	// Every comparison with a null operand is false (Table 1 semantics).
	falseOnNull := []Atom{
		{Kind: EqConst, A: 0, Val: v(0)},
		{Kind: NeqConst, A: 0, Val: v(0)},
		{Kind: LtConst, A: 3, Val: n(50)},
		{Kind: GtConst, A: 3, Val: n(5)},
		{Kind: EqAttr, A: 0, B: 1},
		{Kind: NeqAttr, A: 0, B: 1},
		{Kind: LtAttr, A: 3, B: 4},
		{Kind: GtAttr, A: 3, B: 4},
		{Kind: EqAttr, A: 1, B: 0}, // null on the B side
		{Kind: LtAttr, A: 4, B: 3},
	}
	for _, a := range falseOnNull {
		if a.Eval(s, r) {
			t.Errorf("%s must be false on null operand", a.Render(s))
		}
	}
	if !(Atom{Kind: IsNull, A: 0}).Eval(s, r) {
		t.Errorf("isnull must be true on null")
	}
	if (Atom{Kind: IsNotNull, A: 0}).Eval(s, r) {
		t.Errorf("isnotnull must be false on null")
	}
}

func TestAtomEvalRelational(t *testing.T) {
	s := tdgSchema(t)
	// A=a1(#0), B=a2(#0 in B's domain) -> strings differ ("a1" vs "a2").
	r := defaultRow()
	r[1] = v(0) // B = "a2"
	if (Atom{Kind: EqAttr, A: 0, B: 1}).Eval(s, r) {
		t.Errorf("a1 = a2 must be false")
	}
	if !(Atom{Kind: NeqAttr, A: 0, B: 1}).Eval(s, r) {
		t.Errorf("a1 ≠ a2 must be true")
	}
	// A="a2"(#1), B="a2"(#0): same string, different indices.
	r[0] = v(1)
	if !(Atom{Kind: EqAttr, A: 0, B: 1}).Eval(s, r) {
		t.Errorf("cross-domain string equality must hold")
	}
	// Numeric relational.
	r[3], r[4] = n(10), n(60)
	if !(Atom{Kind: LtAttr, A: 3, B: 4}).Eval(s, r) {
		t.Errorf("10 < 60 must be true")
	}
	if (Atom{Kind: GtAttr, A: 3, B: 4}).Eval(s, r) {
		t.Errorf("10 > 60 must be false")
	}
	r[4] = n(10)
	if (Atom{Kind: LtAttr, A: 3, B: 4}).Eval(s, r) || (Atom{Kind: GtAttr, A: 3, B: 4}).Eval(s, r) {
		t.Errorf("equal values: both strict comparisons false")
	}
	if !(Atom{Kind: EqAttr, A: 3, B: 4}).Eval(s, r) {
		t.Errorf("numeric equality must hold")
	}
}

func TestCompositeEval(t *testing.T) {
	s := tdgSchema(t)
	r := defaultRow()
	tA := Atom{Kind: EqConst, A: 0, Val: v(0)} // true
	fA := Atom{Kind: EqConst, A: 0, Val: v(1)} // false
	and := And{Subs: []Formula{tA, fA}}
	or := Or{Subs: []Formula{fA, tA}}
	if and.Eval(s, r) {
		t.Errorf("And with false conjunct must be false")
	}
	if !or.Eval(s, r) {
		t.Errorf("Or with true disjunct must be true")
	}
	if !(And{Subs: []Formula{tA, tA}}).Eval(s, r) {
		t.Errorf("all-true And must be true")
	}
	if (Or{Subs: []Formula{fA, fA}}).Eval(s, r) {
		t.Errorf("all-false Or must be false")
	}
	// Empty composites: And = true, Or = false (standard identities).
	if !(And{}).Eval(s, r) || (Or{}).Eval(s, r) {
		t.Errorf("empty composite identities broken")
	}
}

func TestRuleHoldsViolated(t *testing.T) {
	s := tdgSchema(t)
	r := defaultRow()
	premTrue := Atom{Kind: EqConst, A: 0, Val: v(0)}
	concFalse := Atom{Kind: EqConst, A: 2, Val: v(1)}
	concTrue := Atom{Kind: EqConst, A: 2, Val: v(0)}
	violated := Rule{Premise: premTrue, Conclusion: concFalse}
	if !violated.Violated(s, r) || violated.Holds(s, r) {
		t.Errorf("rule with true premise and false conclusion must be violated")
	}
	holds := Rule{Premise: premTrue, Conclusion: concTrue}
	if holds.Violated(s, r) || !holds.Holds(s, r) {
		t.Errorf("rule with true conclusion must hold")
	}
	vacuous := Rule{Premise: concFalse, Conclusion: concFalse}
	if !vacuous.Holds(s, r) {
		t.Errorf("false premise must make the rule hold vacuously")
	}
}

func TestRendering(t *testing.T) {
	s := tdgSchema(t)
	f := And{Subs: []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(0)},
		Or{Subs: []Formula{
			Atom{Kind: LtConst, A: 3, Val: n(5)},
			Atom{Kind: IsNull, A: 2},
		}},
	}}
	got := f.Render(s)
	for _, want := range []string{"A = a1", "N < 5", "C isnull", "∧", "∨", "("} {
		if !strings.Contains(got, want) {
			t.Errorf("Render = %q, missing %q", got, want)
		}
	}
	rule := Rule{Premise: Atom{Kind: EqConst, A: 0, Val: v(0)}, Conclusion: Atom{Kind: EqAttr, A: 1, B: 2}}
	if rr := rule.Render(s); !strings.Contains(rr, "→") || !strings.Contains(rr, "B = C") {
		t.Errorf("rule Render = %q", rr)
	}
}

func TestUniqueAttrs(t *testing.T) {
	f := And{Subs: []Formula{
		Atom{Kind: EqConst, A: 2, Val: v(0)},
		Atom{Kind: EqAttr, A: 0, B: 1},
		Atom{Kind: LtConst, A: 0, Val: n(1)},
	}}
	got := UniqueAttrs(f)
	if len(got) != 3 {
		t.Fatalf("UniqueAttrs = %v", got)
	}
	seen := map[int]bool{}
	for _, a := range got {
		if seen[a] {
			t.Fatalf("duplicate in UniqueAttrs: %v", got)
		}
		seen[a] = true
	}
	for _, want := range []int{0, 1, 2} {
		if !seen[want] {
			t.Fatalf("missing attribute %d in %v", want, got)
		}
	}
}

func TestNegateTable1Cases(t *testing.T) {
	s := tdgSchema(t)
	// For every atom kind and several row situations (value matches, value
	// differs, null), f and Negate(f) must evaluate to opposite truth
	// values: this is exactly the defining property of Table 1.
	atoms := []Atom{
		{Kind: EqConst, A: 0, Val: v(0)},
		{Kind: NeqConst, A: 0, Val: v(0)},
		{Kind: LtConst, A: 3, Val: n(50)},
		{Kind: GtConst, A: 3, Val: n(50)},
		{Kind: IsNull, A: 0},
		{Kind: IsNotNull, A: 0},
		{Kind: EqAttr, A: 0, B: 1},
		{Kind: NeqAttr, A: 0, B: 1},
		{Kind: LtAttr, A: 3, B: 4},
		{Kind: GtAttr, A: 3, B: 4},
		{Kind: EqAttr, A: 3, B: 4},
	}
	rows := [][]dataset.Value{
		defaultRow(),
		row(v(1), v(0), v(1), n(50), n(50), n(11000)),           // boundary values, shared string
		row(dataset.Null(), v(0), v(0), n(99), n(51), n(11000)), // null A
		row(v(2), dataset.Null(), v(0), dataset.Null(), n(150), dataset.Null()),
	}
	for _, a := range atoms {
		na := Negate(a)
		for ri, r := range rows {
			if a.Eval(s, r) == na.Eval(s, r) {
				t.Errorf("Negate(%s) not complementary on row %d", a.Render(s), ri)
			}
		}
	}
}

func TestNegateComposites(t *testing.T) {
	s := tdgSchema(t)
	f := And{Subs: []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(0)},
		Or{Subs: []Formula{
			Atom{Kind: LtConst, A: 3, Val: n(20)},
			Atom{Kind: IsNull, A: 1},
		}},
	}}
	nf := Negate(f)
	if _, ok := nf.(Or); !ok {
		t.Fatalf("negation of And must be Or (De Morgan)")
	}
	for _, r := range [][]dataset.Value{
		defaultRow(),
		row(v(0), dataset.Null(), v(0), n(80), n(60), n(11000)),
		row(v(1), v(0), v(0), n(10), n(60), n(11000)),
	} {
		if f.Eval(s, r) == nf.Eval(s, r) {
			t.Fatalf("composite negation not complementary")
		}
	}
}

// randomWellTypedFormula draws a random well-typed formula for property
// tests.
func randomWellTypedFormula(s *dataset.Schema, rng *rand.Rand, depth int) Formula {
	if depth == 0 || rng.Float64() < 0.5 {
		return randomWellTypedAtom(s, rng)
	}
	k := 2 + rng.Intn(2)
	subs := make([]Formula, k)
	for i := range subs {
		subs[i] = randomWellTypedFormula(s, rng, depth-1)
	}
	if rng.Float64() < 0.5 {
		return Or{Subs: subs}
	}
	return And{Subs: subs}
}

func randomWellTypedAtom(s *dataset.Schema, rng *rand.Rand) Atom {
	for {
		a := rng.Intn(s.Len())
		attr := s.Attr(a)
		switch rng.Intn(10) {
		case 0:
			return Atom{Kind: IsNull, A: a}
		case 1:
			return Atom{Kind: IsNotNull, A: a}
		case 2, 3:
			if attr.Type == dataset.NominalType {
				return Atom{Kind: NeqConst, A: a, Val: dataset.Nom(rng.Intn(len(attr.Domain)))}
			}
			return Atom{Kind: LtConst, A: a, Val: dataset.Num(attr.Min + rng.Float64()*(attr.Max-attr.Min))}
		case 4, 5, 6:
			if attr.Type == dataset.NominalType {
				return Atom{Kind: EqConst, A: a, Val: dataset.Nom(rng.Intn(len(attr.Domain)))}
			}
			return Atom{Kind: GtConst, A: a, Val: dataset.Num(attr.Min + rng.Float64()*(attr.Max-attr.Min))}
		default:
			b := rng.Intn(s.Len())
			if b == a {
				continue
			}
			bAttr := s.Attr(b)
			if attr.Type == dataset.NominalType && bAttr.Type == dataset.NominalType {
				if rng.Intn(2) == 0 {
					return Atom{Kind: EqAttr, A: a, B: b}
				}
				return Atom{Kind: NeqAttr, A: a, B: b}
			}
			if attr.IsNumberLike() && bAttr.IsNumberLike() {
				kinds := []AtomKind{EqAttr, NeqAttr, LtAttr, GtAttr}
				return Atom{Kind: kinds[rng.Intn(4)], A: a, B: b}
			}
		}
	}
}

func randomRow(s *dataset.Schema, rng *rand.Rand, nullProb float64) []dataset.Value {
	r := make([]dataset.Value, s.Len())
	for i := range r {
		if rng.Float64() < nullProb {
			r[i] = dataset.Null()
			continue
		}
		a := s.Attr(i)
		if a.Type == dataset.NominalType {
			r[i] = dataset.Nom(rng.Intn(len(a.Domain)))
		} else {
			r[i] = dataset.Num(a.Min + rng.Float64()*(a.Max-a.Min))
		}
	}
	return r
}

func TestNegationComplementaryProperty(t *testing.T) {
	// E9 / Table 1: for random well-typed formulae and random rows
	// (including nulls), α is true iff Negate(α) is false.
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 3000; i++ {
		f := randomWellTypedFormula(s, rng, 2)
		nf := Negate(f)
		r := randomRow(s, rng, 0.2)
		if f.Eval(s, r) == nf.Eval(s, r) {
			t.Fatalf("negation property violated for %s", f.Render(s))
		}
	}
}

func TestDoubleNegationSemantics(t *testing.T) {
	// Negate(Negate(α)) is not syntactically α, but must be semantically
	// equivalent.
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 1000; i++ {
		f := randomWellTypedFormula(s, rng, 2)
		nnf := Negate(Negate(f))
		r := randomRow(s, rng, 0.2)
		if f.Eval(s, r) != nnf.Eval(s, r) {
			t.Fatalf("double negation changed semantics of %s", f.Render(s))
		}
	}
}
