package tdg

import (
	"errors"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
)

func TestDNFAtom(t *testing.T) {
	a := Atom{Kind: EqConst, A: 0, Val: v(0)}
	d, err := DNF(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || len(d[0]) != 1 || d[0][0] != a {
		t.Fatalf("DNF(atom) = %v", d)
	}
}

func TestDNFDistribution(t *testing.T) {
	// (a ∨ b) ∧ (c ∨ d) -> 4 disjuncts of 2 atoms.
	a := Atom{Kind: EqConst, A: 0, Val: v(0)}
	b := Atom{Kind: EqConst, A: 0, Val: v(1)}
	c := Atom{Kind: EqConst, A: 1, Val: v(0)}
	d := Atom{Kind: EqConst, A: 1, Val: v(1)}
	f := And{Subs: []Formula{Or{Subs: []Formula{a, b}}, Or{Subs: []Formula{c, d}}}}
	ds, err := DNF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("expected 4 disjuncts, got %d", len(ds))
	}
	for _, conj := range ds {
		if len(conj) != 2 {
			t.Fatalf("disjunct size = %d", len(conj))
		}
	}
}

func TestDNFEmptyOr(t *testing.T) {
	ds, err := DNF(Or{})
	if err != nil || len(ds) != 0 {
		t.Fatalf("empty Or must produce no disjuncts: %v, %v", ds, err)
	}
}

func TestDNFEmptyAnd(t *testing.T) {
	ds, err := DNF(And{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || len(ds[0]) != 0 {
		t.Fatalf("empty And must produce one empty disjunct (true): %v", ds)
	}
}

func TestDNFTooLarge(t *testing.T) {
	// 13 binary disjunctions conjoined: 2^13 = 8192 > cap.
	or := Or{Subs: []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(0)},
		Atom{Kind: EqConst, A: 0, Val: v(1)},
	}}
	subs := make([]Formula, 13)
	for i := range subs {
		subs[i] = or
	}
	_, err := DNF(And{Subs: subs})
	if !errors.Is(err, ErrDNFTooLarge) {
		t.Fatalf("expected ErrDNFTooLarge, got %v", err)
	}
}

func TestDNFSemanticEquivalenceProperty(t *testing.T) {
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 2000; i++ {
		f := randomWellTypedFormula(s, rng, 2)
		ds, err := DNF(f)
		if err != nil {
			t.Fatal(err)
		}
		r := randomRow(s, rng, 0.15)
		want := f.Eval(s, r)
		got := false
		for _, conj := range ds {
			if EvalConj(s, conj, r) {
				got = true
				break
			}
		}
		if got != want {
			t.Fatalf("DNF changed semantics of %s", f.Render(s))
		}
	}
}

func TestWellTyped(t *testing.T) {
	s := tdgSchema(t)
	good := []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(2)},
		Atom{Kind: LtConst, A: 3, Val: n(50)},
		Atom{Kind: EqAttr, A: 0, B: 1},
		Atom{Kind: LtAttr, A: 3, B: 5}, // numeric vs date: both number-like
		Atom{Kind: IsNull, A: 2},
		And{Subs: []Formula{Atom{Kind: IsNotNull, A: 0}, Atom{Kind: GtConst, A: 4, Val: n(60)}}},
	}
	for _, f := range good {
		if !WellTyped(s, f) {
			t.Errorf("%s should be well-typed", f.Render(s))
		}
	}
	bad := []Formula{
		Atom{Kind: LtConst, A: 0, Val: n(5)},           // order on nominal
		Atom{Kind: EqConst, A: 0, Val: v(17)},          // constant outside domain
		Atom{Kind: EqConst, A: 3, Val: n(4000)},        // numeric constant out of range
		Atom{Kind: EqAttr, A: 0, B: 3},                 // nominal = numeric
		Atom{Kind: LtAttr, A: 0, B: 1},                 // order between nominals
		Atom{Kind: EqAttr, A: 0, B: 0},                 // self-comparison
		Atom{Kind: EqConst, A: 99, Val: v(0)},          // attribute out of range
		Atom{Kind: EqConst, A: 0, Val: dataset.Null()}, // null constant
		Or{Subs: []Formula{Atom{Kind: LtConst, A: 0, Val: n(5)}}},
	}
	for _, f := range bad {
		if WellTyped(s, f) {
			t.Errorf("%v should be ill-typed", f)
		}
	}
}
