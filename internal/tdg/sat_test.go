package tdg

import (
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
)

func mustSat(t *testing.T, s *dataset.Schema, f Formula) bool {
	t.Helper()
	ok, err := Satisfiable(s, f)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func mustImply(t *testing.T, s *dataset.Schema, f, g Formula) bool {
	t.Helper()
	ok, err := Implies(s, f, g)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestSatPropositional(t *testing.T) {
	s := tdgSchema(t)
	cases := []struct {
		name string
		f    Formula
		want bool
	}{
		{"single equality", Atom{Kind: EqConst, A: 0, Val: v(0)}, true},
		{"contradictory equalities", And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(0)},
			Atom{Kind: EqConst, A: 0, Val: v(1)},
		}}, false},
		{"equality plus matching inequality", And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(0)},
			Atom{Kind: NeqConst, A: 0, Val: v(1)},
		}}, true},
		{"equality plus contradicting inequality", And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(0)},
			Atom{Kind: NeqConst, A: 0, Val: v(0)},
		}}, false},
		{"exhausted nominal domain", And{Subs: []Formula{
			Atom{Kind: NeqConst, A: 2, Val: v(0)},
			Atom{Kind: NeqConst, A: 2, Val: v(1)},
		}}, false}, // C has exactly two values
		{"numeric window", And{Subs: []Formula{
			Atom{Kind: GtConst, A: 3, Val: n(3)},
			Atom{Kind: LtConst, A: 3, Val: n(5)},
		}}, true},
		{"empty numeric window", And{Subs: []Formula{
			Atom{Kind: GtConst, A: 3, Val: n(7)},
			Atom{Kind: LtConst, A: 3, Val: n(5)},
		}}, false},
		{"point window is open", And{Subs: []Formula{
			Atom{Kind: GtConst, A: 3, Val: n(5)},
			Atom{Kind: LtConst, A: 3, Val: n(5)},
		}}, false},
		{"outside attribute range", Atom{Kind: GtConst, A: 3, Val: n(100)}, false},
		{"at attribute boundary", Atom{Kind: GtConst, A: 3, Val: n(99.5)}, true},
		{"null vs value", And{Subs: []Formula{
			Atom{Kind: IsNull, A: 0},
			Atom{Kind: EqConst, A: 0, Val: v(0)},
		}}, false},
		{"null vs notnull", And{Subs: []Formula{
			Atom{Kind: IsNull, A: 0},
			Atom{Kind: IsNotNull, A: 0},
		}}, false},
		{"null alone", Atom{Kind: IsNull, A: 0}, true},
		{"disjunction rescues contradiction", Or{Subs: []Formula{
			And{Subs: []Formula{
				Atom{Kind: EqConst, A: 0, Val: v(0)},
				Atom{Kind: EqConst, A: 0, Val: v(1)},
			}},
			Atom{Kind: EqConst, A: 0, Val: v(2)},
		}}, true},
	}
	for _, c := range cases {
		if got := mustSat(t, s, c.f); got != c.want {
			t.Errorf("%s: Satisfiable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSatRelational(t *testing.T) {
	s := tdgSchema(t)
	cases := []struct {
		name string
		f    Formula
		want bool
	}{
		{"equality link propagates constant", And{Subs: []Formula{
			Atom{Kind: EqAttr, A: 0, B: 1},
			Atom{Kind: EqConst, A: 0, Val: v(1)}, // A = "a2", in B's domain too
		}}, true},
		{"equality link with conflicting constants", And{Subs: []Formula{
			Atom{Kind: EqAttr, A: 0, B: 1},
			Atom{Kind: EqConst, A: 0, Val: v(1)}, // A = "a2"
			Atom{Kind: EqConst, A: 1, Val: v(1)}, // B = "a3"
		}}, false},
		{"equality link leaving no shared value", And{Subs: []Formula{
			Atom{Kind: EqAttr, A: 0, B: 1},
			Atom{Kind: EqConst, A: 0, Val: v(0)}, // A = "a1" not in B's domain
		}}, false},
		{"nominal/numeric equality link", Atom{Kind: EqAttr, A: 0, B: 3}, false},
		{"self-disequality via merge", And{Subs: []Formula{
			Atom{Kind: EqAttr, A: 0, B: 1},
			Atom{Kind: NeqAttr, A: 0, B: 1},
		}}, false},
		{"order cycle of two", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4},
			Atom{Kind: LtAttr, A: 4, B: 3},
		}}, false},
		{"order cycle of three", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4},
			Atom{Kind: LtAttr, A: 4, B: 5},
			Atom{Kind: LtAttr, A: 5, B: 3},
		}}, false},
		{"order with equality merge cycle", And{Subs: []Formula{
			Atom{Kind: EqAttr, A: 3, B: 4},
			Atom{Kind: LtAttr, A: 3, B: 4},
		}}, false},
		{"consistent chain", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4},
			Atom{Kind: LtAttr, A: 4, B: 5},
		}}, true},
		{"chain with compatible bounds", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4}, // N < M
			Atom{Kind: GtConst, A: 3, Val: n(95)},
		}}, true}, // N in (95,100], M in (95,150]
		{"chain with incompatible bounds", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 4, B: 3}, // M < N, M >= 50
			Atom{Kind: LtConst, A: 3, Val: n(40)},
		}}, false}, // M < N < 40 but M >= 50
		{"transitive bound propagation", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4}, // N < M
			Atom{Kind: LtAttr, A: 4, B: 5}, // M < D
			Atom{Kind: LtConst, A: 5, Val: n(11000)},
			Atom{Kind: GtConst, A: 3, Val: n(99)},
		}}, true}, // N in (99,100), M in (99,...) fine
		{"GtAttr mirrors LtAttr", And{Subs: []Formula{
			Atom{Kind: GtAttr, A: 3, B: 4}, // N > M, so M < N <= 100, M >= 50: fine
		}}, true},
		{"disequality between singletons", And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(1)},
			Atom{Kind: EqConst, A: 1, Val: v(0)}, // both "a2"
			Atom{Kind: NeqAttr, A: 0, B: 1},
		}}, false},
		{"disequality between distinct singletons", And{Subs: []Formula{
			Atom{Kind: EqConst, A: 0, Val: v(0)},
			Atom{Kind: EqConst, A: 1, Val: v(0)},
			Atom{Kind: NeqAttr, A: 0, B: 1},
		}}, true},
	}
	for _, c := range cases {
		if got := mustSat(t, s, c.f); got != c.want {
			t.Errorf("%s: Satisfiable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestImplies(t *testing.T) {
	s := tdgSchema(t)
	aEq := Atom{Kind: EqConst, A: 0, Val: v(0)}
	bEq := Atom{Kind: EqConst, A: 1, Val: v(0)}
	cases := []struct {
		name string
		f, g Formula
		want bool
	}{
		{"conjunction implies conjunct", And{Subs: []Formula{aEq, bEq}}, aEq, true},
		{"conjunct does not imply conjunction", aEq, And{Subs: []Formula{aEq, bEq}}, false},
		{"formula implies itself", aEq, aEq, true},
		{"formula implies weaker disjunction", aEq, Or{Subs: []Formula{aEq, bEq}}, true},
		{"equality implies inequality with other value", aEq, Atom{Kind: NeqConst, A: 0, Val: v(1)}, true},
		{"tighter bound implies looser", Atom{Kind: LtConst, A: 3, Val: n(10)}, Atom{Kind: LtConst, A: 3, Val: n(50)}, true},
		{"looser bound does not imply tighter", Atom{Kind: LtConst, A: 3, Val: n(50)}, Atom{Kind: LtConst, A: 3, Val: n(10)}, false},
		{"unrelated formulas", aEq, bEq, false},
		{"chain implies transitive", And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4},
			Atom{Kind: LtAttr, A: 4, B: 5},
		}}, Atom{Kind: LtAttr, A: 3, B: 5}, true},
		{"isnull implies not-equal's negation side", Atom{Kind: IsNull, A: 0}, Negate(aEq), true},
	}
	for _, c := range cases {
		if got := mustImply(t, s, c.f, c.g); got != c.want {
			t.Errorf("%s: Implies = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSatSoundnessProperty checks both useful directions on random
// conjunctions: (1) whenever SatConj reports UNSAT, no random assignment
// satisfies the conjunction (unsatisfiability claims are always correct —
// the guarantee the paper proves for its procedure); (2) whenever a random
// assignment satisfies the conjunction, SatConj reports SAT.
func TestSatSoundnessProperty(t *testing.T) {
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(71))
	unsatSeen := 0
	for i := 0; i < 1500; i++ {
		k := 1 + rng.Intn(4)
		conj := make(Conj, k)
		for j := range conj {
			conj[j] = randomWellTypedAtom(s, rng)
		}
		sat := SatConj(s, conj)
		if !sat {
			unsatSeen++
		}
		for trial := 0; trial < 120; trial++ {
			r := randomRow(s, rng, 0.1)
			if EvalConj(s, conj, r) {
				if !sat {
					t.Fatalf("SatConj claimed UNSAT but found witness for %v", conj)
				}
				break
			}
		}
	}
	if unsatSeen == 0 {
		t.Fatalf("property test never generated an unsatisfiable conjunction; strengthen the generator")
	}
}

func TestSatisfiableDNFError(t *testing.T) {
	or := Or{Subs: []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(0)},
		Atom{Kind: EqConst, A: 0, Val: v(1)},
	}}
	subs := make([]Formula, 13)
	for i := range subs {
		subs[i] = or
	}
	if _, err := Satisfiable(tdgSchema(t), And{Subs: subs}); err == nil {
		t.Fatalf("oversized formula must surface ErrDNFTooLarge")
	}
}
