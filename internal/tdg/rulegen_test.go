package tdg

import (
	"math/rand"
	"testing"
)

func TestGenerateRuleSetProducesNaturalSet(t *testing.T) {
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(81))
	rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 25, MaxValueLoad: 2, MaxAttrLoad: 2, MaxRegionConcentration: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 25 {
		t.Fatalf("generated %d rules, want 25", len(rules))
	}
	ok, err := NaturalRuleSet(s, rules)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		for _, r := range rules {
			t.Logf("rule: %s", r.Render(s))
		}
		t.Fatalf("generated rule set is not natural")
	}
}

func TestGenerateRuleSetWellTyped(t *testing.T) {
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(82))
	rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 30, RelationalProb: 0.4, NullTestProb: 0.1, MaxValueLoad: 2, MaxAttrLoad: 2, MaxRegionConcentration: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if !WellTyped(s, r.Premise) || !WellTyped(s, r.Conclusion) {
			t.Fatalf("ill-typed rule generated: %s", r.Render(s))
		}
	}
}

func TestGenerateRuleSetDeterministic(t *testing.T) {
	s := tdgSchema(t)
	gen := func(seed int64) []Rule {
		rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 10}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return rules
	}
	a, b := gen(99), gen(99)
	for i := range a {
		if a[i].Render(s) != b[i].Render(s) {
			t.Fatalf("rule generation is not deterministic at rule %d", i)
		}
	}
	c := gen(100)
	same := true
	for i := range a {
		if a[i].Render(s) != c[i].Render(s) {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical rule sets")
	}
}

func TestGenerateRuleSetRespectsDepth(t *testing.T) {
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(83))
	rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 20, MaxDepth: 1, MaxValueLoad: 2, MaxAttrLoad: 2, MaxRegionConcentration: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if _, ok := r.Premise.(Atom); !ok {
			t.Fatalf("MaxDepth=1 must yield atomic premises, got %s", r.Premise.Render(s))
		}
	}
}

func TestGenerateRuleSetGivesUpGracefully(t *testing.T) {
	// A one-attribute schema with a two-value domain supports very few
	// mutually compatible natural rules; an absurd request must error out
	// rather than loop forever.
	s := oneAttrSchema(t)
	rng := rand.New(rand.NewSource(84))
	rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 50, MaxTries: 2000}, rng)
	if err == nil {
		t.Fatalf("expected exhaustion error, got %d rules", len(rules))
	}
}
