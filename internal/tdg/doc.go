// Package tdg implements the paper's rule-pattern-based test data
// generator (§4.1) — the first of the three building blocks of the
// systematic development method: before a data quality tool is trusted on
// real data, it is exercised on artificial data whose regularities (and
// planted violations) are known exactly.
//
// # The formula logic
//
// TDG-formulae (Definitions 1–2) are propositional formulae over the
// attributes of the target relation: constant comparisons (A = a, N < n),
// null tests (A isnull) and relational atoms (A = B, N < M), closed under
// conjunction and disjunction. Negation is not a constructor — Negate
// computes the TDG-negation of Table 1, which pushes negation down to the
// atoms and keeps the language closed. A Rule (Definition 3) is a
// premise/conclusion pair of formulae.
//
// # Satisfiability and naturalness
//
// Satisfiable is the pragmatic satisfiability test of §4.1.3: it narrows
// per-attribute domain ranges through the formula structure instead of
// calling a full SAT solver — sound for the rule shapes the generator
// emits and fast enough to sit inside rejection-sampling loops. Implies
// tests α ⇒ β via unsatisfiability of α ∧ ¬β. NaturalFormula /
// NaturalRule / NaturalRuleSet check Definitions 4–6, the constraints
// that keep generated rule sets consistent, non-redundant and free of
// contradictions.
//
// # Generation
//
// GenerateRuleSet draws a random natural rule set under RuleGenParams
// (rule count, nesting depth, atom mix — §4.1.2); Generate then produces
// records that follow the rule set (§4.1.4), starting from parameterized
// univariate start distributions (StartDists) or a Bayesian network
// (internal/bayesnet) and repairing rule violations by resampling the
// violated conclusion. The result is a dataset.Table whose regularities
// are known by construction — the ground truth internal/pollute corrupts
// and internal/evalx measures recovery against.
package tdg
