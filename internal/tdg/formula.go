package tdg

import (
	"fmt"
	"strings"

	"dataaudit/internal/dataset"
)

// AtomKind enumerates the atomic TDG-formulae of Definition 1.
type AtomKind uint8

const (
	// EqConst is A = a (propositional equality with a domain constant).
	EqConst AtomKind = iota
	// NeqConst is A ≠ a.
	NeqConst
	// LtConst is N < n for numerical/date attributes.
	LtConst
	// GtConst is N > n for numerical/date attributes.
	GtConst
	// IsNull is A isnull.
	IsNull
	// IsNotNull is A isnotnull.
	IsNotNull
	// EqAttr is A = B (relational equality between two attributes).
	EqAttr
	// NeqAttr is A ≠ B.
	NeqAttr
	// LtAttr is N < M for numerical/date attributes.
	LtAttr
	// GtAttr is N > M for numerical/date attributes.
	GtAttr
)

func (k AtomKind) isRelational() bool { return k >= EqAttr }

func (k AtomKind) opString() string {
	switch k {
	case EqConst, EqAttr:
		return "="
	case NeqConst, NeqAttr:
		return "≠"
	case LtConst, LtAttr:
		return "<"
	case GtConst, GtAttr:
		return ">"
	case IsNull:
		return "isnull"
	case IsNotNull:
		return "isnotnull"
	default:
		return "?op?"
	}
}

// Formula is a TDG-formula: an atomic formula or a finite conjunction or
// disjunction of TDG-formulae (Definition 2). Negation is intentionally
// absent from the language; use Negate for the explicit TDG-negation of
// Table 1.
type Formula interface {
	// Eval evaluates the formula on a row. Comparisons involving a null
	// operand evaluate to false (the semantics implied by Table 1, where
	// the negation of every comparison explicitly adds "∨ A isnull").
	Eval(schema *dataset.Schema, row []dataset.Value) bool
	// Render pretty-prints the formula with attribute names and formatted
	// domain values.
	Render(schema *dataset.Schema) string
	// Attrs appends the indices of all attributes mentioned to dst.
	Attrs(dst []int) []int
}

// Atom is an atomic TDG-formula (Definition 1).
type Atom struct {
	Kind AtomKind
	A    int           // first attribute (column index)
	B    int           // second attribute for relational kinds
	Val  dataset.Value // constant for propositional kinds
}

// And is a finite conjunction α1 ∧ … ∧ αn.
type And struct{ Subs []Formula }

// Or is a finite disjunction α1 ∨ … ∨ αn.
type Or struct{ Subs []Formula }

// Eval implements Formula.
func (a Atom) Eval(schema *dataset.Schema, row []dataset.Value) bool {
	va := row[a.A]
	switch a.Kind {
	case IsNull:
		return va.IsNull()
	case IsNotNull:
		return !va.IsNull()
	}
	if va.IsNull() {
		return false
	}
	if a.Kind.isRelational() {
		vb := row[a.B]
		if vb.IsNull() {
			return false
		}
		return evalRelational(a.Kind, schema, a.A, va, a.B, vb)
	}
	return evalPropositional(a.Kind, va, a.Val)
}

func evalPropositional(kind AtomKind, v, c dataset.Value) bool {
	switch kind {
	case EqConst:
		return v.Equal(c)
	case NeqConst:
		return !v.Equal(c)
	case LtConst:
		return v.IsNumber() && c.IsNumber() && v.Float() < c.Float()
	case GtConst:
		return v.IsNumber() && c.IsNumber() && v.Float() > c.Float()
	default:
		return false
	}
}

func evalRelational(kind AtomKind, schema *dataset.Schema, ai int, va dataset.Value, bi int, vb dataset.Value) bool {
	attrA, attrB := schema.Attr(ai), schema.Attr(bi)
	switch kind {
	case EqAttr, NeqAttr:
		eq := false
		switch {
		case attrA.Type == dataset.NominalType && attrB.Type == dataset.NominalType:
			// Nominal attributes may have different (overlapping) domains;
			// cross-attribute equality compares the domain strings.
			eq = attrA.Domain[va.NomIdx()] == attrB.Domain[vb.NomIdx()]
		case attrA.IsNumberLike() && attrB.IsNumberLike():
			eq = va.Float() == vb.Float()
		default:
			return false // type mismatch: never true
		}
		if kind == EqAttr {
			return eq
		}
		return !eq
	case LtAttr:
		return attrA.IsNumberLike() && attrB.IsNumberLike() && va.Float() < vb.Float()
	case GtAttr:
		return attrA.IsNumberLike() && attrB.IsNumberLike() && va.Float() > vb.Float()
	default:
		return false
	}
}

// Render implements Formula.
func (a Atom) Render(schema *dataset.Schema) string {
	attr := schema.Attr(a.A)
	switch a.Kind {
	case IsNull, IsNotNull:
		return fmt.Sprintf("%s %s", attr.Name, a.Kind.opString())
	case EqAttr, NeqAttr, LtAttr, GtAttr:
		return fmt.Sprintf("%s %s %s", attr.Name, a.Kind.opString(), schema.Attr(a.B).Name)
	default:
		return fmt.Sprintf("%s %s %s", attr.Name, a.Kind.opString(), attr.Format(a.Val))
	}
}

// Attrs implements Formula.
func (a Atom) Attrs(dst []int) []int {
	dst = append(dst, a.A)
	if a.Kind.isRelational() {
		dst = append(dst, a.B)
	}
	return dst
}

// Eval implements Formula.
func (f And) Eval(schema *dataset.Schema, row []dataset.Value) bool {
	for _, s := range f.Subs {
		if !s.Eval(schema, row) {
			return false
		}
	}
	return true
}

// Render implements Formula.
func (f And) Render(schema *dataset.Schema) string { return renderJoin(schema, f.Subs, " ∧ ") }

// Attrs implements Formula.
func (f And) Attrs(dst []int) []int { return attrsOf(f.Subs, dst) }

// Eval implements Formula.
func (f Or) Eval(schema *dataset.Schema, row []dataset.Value) bool {
	for _, s := range f.Subs {
		if s.Eval(schema, row) {
			return true
		}
	}
	return false
}

// Render implements Formula.
func (f Or) Render(schema *dataset.Schema) string { return renderJoin(schema, f.Subs, " ∨ ") }

// Attrs implements Formula.
func (f Or) Attrs(dst []int) []int { return attrsOf(f.Subs, dst) }

func renderJoin(schema *dataset.Schema, subs []Formula, sep string) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		p := s.Render(schema)
		if _, atom := s.(Atom); !atom {
			p = "(" + p + ")"
		}
		parts[i] = p
	}
	return strings.Join(parts, sep)
}

func attrsOf(subs []Formula, dst []int) []int {
	for _, s := range subs {
		dst = s.Attrs(dst)
	}
	return dst
}

// Rule is a TDG-rule α → β (Definition 3).
type Rule struct {
	Premise    Formula
	Conclusion Formula
}

// Holds reports whether the implication is satisfied on the row.
func (r Rule) Holds(schema *dataset.Schema, row []dataset.Value) bool {
	return !r.Premise.Eval(schema, row) || r.Conclusion.Eval(schema, row)
}

// Violated reports whether the row violates the rule (premise true,
// conclusion false).
func (r Rule) Violated(schema *dataset.Schema, row []dataset.Value) bool {
	return r.Premise.Eval(schema, row) && !r.Conclusion.Eval(schema, row)
}

// Render pretty-prints the rule.
func (r Rule) Render(schema *dataset.Schema) string {
	return r.Premise.Render(schema) + " → " + r.Conclusion.Render(schema)
}

// UniqueAttrs returns the sorted, de-duplicated attribute indices a formula
// mentions.
func UniqueAttrs(f Formula) []int {
	raw := f.Attrs(nil)
	seen := make(map[int]bool, len(raw))
	var out []int
	for _, a := range raw {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Negate computes the TDG-negation α̃ of a TDG-formula α following Table 1
// of the paper: α evaluates to true iff Negate(α) evaluates to false.
// The result is again a TDG-formula (the language stays negation-free).
func Negate(f Formula) Formula {
	switch g := f.(type) {
	case Atom:
		return negateAtom(g)
	case And:
		subs := make([]Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = Negate(s)
		}
		return Or{Subs: subs}
	case Or:
		subs := make([]Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = Negate(s)
		}
		return And{Subs: subs}
	default:
		panic(fmt.Sprintf("tdg: unknown formula type %T", f))
	}
}

func negateAtom(a Atom) Formula {
	null := Atom{Kind: IsNull, A: a.A}
	switch a.Kind {
	case EqConst:
		return Or{Subs: []Formula{Atom{Kind: NeqConst, A: a.A, Val: a.Val}, null}}
	case NeqConst:
		return Or{Subs: []Formula{Atom{Kind: EqConst, A: a.A, Val: a.Val}, null}}
	case LtConst:
		return Or{Subs: []Formula{
			Atom{Kind: GtConst, A: a.A, Val: a.Val},
			Atom{Kind: EqConst, A: a.A, Val: a.Val},
			null,
		}}
	case GtConst:
		return Or{Subs: []Formula{
			Atom{Kind: LtConst, A: a.A, Val: a.Val},
			Atom{Kind: EqConst, A: a.A, Val: a.Val},
			null,
		}}
	case IsNull:
		return Atom{Kind: IsNotNull, A: a.A}
	case IsNotNull:
		return Atom{Kind: IsNull, A: a.A}
	case EqAttr:
		return Or{Subs: []Formula{
			Atom{Kind: NeqAttr, A: a.A, B: a.B},
			null,
			Atom{Kind: IsNull, A: a.B},
		}}
	case NeqAttr:
		return Or{Subs: []Formula{
			Atom{Kind: EqAttr, A: a.A, B: a.B},
			null,
			Atom{Kind: IsNull, A: a.B},
		}}
	case LtAttr:
		return Or{Subs: []Formula{
			Atom{Kind: GtAttr, A: a.A, B: a.B},
			Atom{Kind: EqAttr, A: a.A, B: a.B},
			null,
			Atom{Kind: IsNull, A: a.B},
		}}
	case GtAttr:
		return Or{Subs: []Formula{
			Atom{Kind: LtAttr, A: a.A, B: a.B},
			Atom{Kind: EqAttr, A: a.A, B: a.B},
			null,
			Atom{Kind: IsNull, A: a.B},
		}}
	default:
		panic(fmt.Sprintf("tdg: unknown atom kind %d", a.Kind))
	}
}
