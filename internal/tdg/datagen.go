package tdg

import (
	"fmt"
	"math/rand"
	"sort"

	"dataaudit/internal/bayesnet"
	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// StartDists are the start distributions of §4.1.4: independent univariate
// distributions per attribute, optionally overridden for a group of nominal
// attributes by a Bayesian network ("we developed a method for the
// intuitive specification of multivariate start distributions based on the
// graphical representation of stochastic dependencies among attributes in
// Bayesian networks").
type StartDists struct {
	// Cat maps nominal attribute indices to categorical start distributions;
	// unmapped nominal attributes start uniform over their domain.
	Cat map[int]*stats.Categorical
	// Num maps numeric/date attribute indices to continuous distributions
	// (truncated to the attribute's range); unmapped ones start uniform.
	Num map[int]stats.Dist
	// Net, if non-nil, jointly samples the nominal attributes it covers;
	// it takes precedence over Cat for those attributes.
	Net *bayesnet.Network
}

// DataGenParams parameterize record generation.
type DataGenParams struct {
	// NumRecords is the number of records to generate.
	NumRecords int
	// Start are the start distributions (zero value = all uniform).
	Start StartDists
	// MaxRepairPasses bounds the number of full repair sweeps per record
	// (default 12).
	MaxRepairPasses int
	// MaxRedraws bounds how often a non-converging record is redrawn from
	// scratch (default 200).
	MaxRedraws int
	// PremiseBreakProb is the base probability that a violated rule is
	// repaired by falsifying its premise instead of satisfying its
	// conclusion (default 0.15). The probability escalates towards 0.9 in
	// later repair passes so that records caught between rules with
	// overlapping premises and contradictory conclusions still converge.
	PremiseBreakProb float64
}

// WithDefaults fills unset fields.
func (p DataGenParams) WithDefaults() DataGenParams {
	if p.NumRecords == 0 {
		p.NumRecords = 10000
	}
	if p.MaxRepairPasses == 0 {
		p.MaxRepairPasses = 12
	}
	if p.MaxRedraws == 0 {
		p.MaxRedraws = 200
	}
	if p.PremiseBreakProb == 0 {
		p.PremiseBreakProb = 0.15
	}
	return p
}

// generator carries the per-run state of §4.1.4 data generation.
type generator struct {
	schema  *dataset.Schema
	rules   []Rule
	p       DataGenParams
	rng     *rand.Rand
	concDNF [][]Conj // per rule: DNF of the conclusion
	premNeg [][]Conj // per rule: DNF of the negated premise

	// sampledStrings caches, per equality-class root, the domain string
	// most recently sampled for that class; valueForAttr translates it into
	// each member attribute's own domain index at commit time.
	sampledStrings map[int]string
}

// Generate creates records that follow the rule set: each record starts
// from the start distributions and is then successively adjusted by the
// rules it violates ("selecting values for each attribute according to
// independent probability distributions and successively adjusting these
// guesses by rules that are violated", §4.1.4). Every returned record
// satisfies every rule.
func Generate(schema *dataset.Schema, rules []Rule, p DataGenParams, rng *rand.Rand) (*dataset.Table, error) {
	p = p.WithDefaults()
	g := &generator{schema: schema, rules: rules, p: p, rng: rng}
	g.concDNF = make([][]Conj, len(rules))
	g.premNeg = make([][]Conj, len(rules))
	for i, r := range rules {
		d, err := DNF(r.Conclusion)
		if err != nil {
			return nil, fmt.Errorf("tdg: rule %d conclusion: %w", i, err)
		}
		g.concDNF[i] = d
		nd, err := DNF(Negate(r.Premise))
		if err != nil {
			return nil, fmt.Errorf("tdg: rule %d premise negation: %w", i, err)
		}
		g.premNeg[i] = nd
	}

	table := dataset.NewTable(schema)
	row := make([]dataset.Value, schema.Len())
	for i := 0; i < p.NumRecords; i++ {
		ok := false
		for redraw := 0; redraw <= p.MaxRedraws; redraw++ {
			g.drawStart(row)
			if g.repair(row) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("tdg: record %d did not converge after %d redraws; the rule set is likely too contradictory for repair", i, p.MaxRedraws)
		}
		table.AppendRow(row)
	}
	return table, nil
}

// drawStart fills row with independent (or network-jointed) start values.
func (g *generator) drawStart(row []dataset.Value) {
	DrawStartRow(g.schema, g.p.Start, g.rng, row)
}

// DrawStartRow fills row with one sample from the start distributions
// (shared between data generation and the rule generator's coverage
// estimation).
func DrawStartRow(schema *dataset.Schema, start StartDists, rng *rand.Rand, row []dataset.Value) {
	covered := make(map[int]bool)
	if start.Net != nil {
		start.Net.Sample(rng, row)
		for _, n := range start.Net.Nodes {
			covered[n.Attr] = true
		}
	}
	for i := 0; i < schema.Len(); i++ {
		if covered[i] {
			continue
		}
		a := schema.Attr(i)
		if a.Type == dataset.NominalType {
			if c, ok := start.Cat[i]; ok {
				row[i] = dataset.Nom(c.Sample(rng))
			} else {
				row[i] = dataset.Nom(rng.Intn(len(a.Domain)))
			}
			continue
		}
		if d, ok := start.Num[i]; ok {
			row[i] = dataset.Num(stats.Truncated{D: d, Lo: a.Min, Hi: a.Max}.Sample(rng))
		} else {
			row[i] = dataset.Num(a.Min + rng.Float64()*(a.Max-a.Min))
		}
	}
}

// repair sweeps the rules, fixing each violated one by resampling the
// attributes of a randomly chosen satisfiable disjunct of its conclusion
// (falling back to falsifying the premise when no conclusion disjunct can
// be realized). It returns true when the record satisfies every rule.
func (g *generator) repair(row []dataset.Value) bool {
	for pass := 0; pass < g.p.MaxRepairPasses; pass++ {
		// Escalate the premise-breaking probability with the pass number:
		// early passes favor satisfying conclusions (which creates the
		// detectable structure); late passes increasingly dissolve the
		// conflict by making premises false.
		breakProb := g.p.PremiseBreakProb
		if g.p.MaxRepairPasses > 1 {
			frac := float64(pass) / float64(g.p.MaxRepairPasses-1)
			breakProb += (0.9 - breakProb) * frac
		}
		clean := true
		for ri := range g.rules {
			if !g.rules[ri].Violated(g.schema, row) {
				continue
			}
			clean = false
			if !g.fixRule(ri, row, breakProb) {
				return false
			}
		}
		if clean {
			return true
		}
	}
	for ri := range g.rules {
		if g.rules[ri].Violated(g.schema, row) {
			return false
		}
	}
	return true
}

// fixRule makes one violated rule hold on the row, either by satisfying its
// conclusion or (with probability breakProb, or as a fallback) by
// falsifying its premise.
func (g *generator) fixRule(ri int, row []dataset.Value, breakProb float64) bool {
	first, second := g.concDNF[ri], g.premNeg[ri]
	if g.rng.Float64() < breakProb {
		first, second = second, first
	}
	return g.tryDisjuncts(first, row) || g.tryDisjuncts(second, row)
}

// tryDisjuncts attempts the disjuncts in random order, but defers those
// that would set attributes to null: TDG-negation (Table 1) offers
// "A isnull" as an escape hatch in every negated comparison, and taking it
// eagerly would salt the clean data with nulls that no domain rule calls
// for (real QUIS-style code attributes are null for structural reasons,
// not to dodge a dependency).
func (g *generator) tryDisjuncts(ds []Conj, row []dataset.Value) bool {
	order := g.rng.Perm(len(ds))
	for _, di := range order {
		if conjForcesNull(ds[di]) {
			continue
		}
		if g.sampleConj(ds[di], row) {
			return true
		}
	}
	for _, di := range order {
		if !conjForcesNull(ds[di]) {
			continue
		}
		if g.sampleConj(ds[di], row) {
			return true
		}
	}
	return false
}

// conjForcesNull reports whether the conjunction contains an IsNull atom.
func conjForcesNull(c Conj) bool {
	for _, a := range c {
		if a.Kind == IsNull {
			return true
		}
	}
	return false
}

// sampleConj resamples exactly the attributes mentioned in the conjunction
// so that the conjunction holds afterwards; other attributes are untouched.
// Returns false when the conjunction is unsatisfiable or sampling ran into
// a dead end.
func (g *generator) sampleConj(conj Conj, row []dataset.Value) bool {
	s := newSolver(g.schema)
	for _, a := range conj {
		s.apply(a)
		if s.unsat {
			return false
		}
	}
	if !s.check() {
		return false
	}

	// Collect the root classes of the mentioned attributes. rootSeen keeps
	// a deterministic first-seen order so that sampling consumes random
	// numbers in a reproducible sequence.
	mentioned := make(map[int][]int) // root -> member attrs (mentioned only)
	var rootSeen []int
	var atomAttrs []int
	for _, a := range conj {
		atomAttrs = a.Attrs(atomAttrs[:0])
		for _, attr := range atomAttrs {
			r := s.find(attr)
			if _, ok := mentioned[r]; !ok {
				rootSeen = append(rootSeen, r)
			}
			mentioned[r] = append(mentioned[r], attr)
		}
	}

	// Assignment order: topologically ordered classes first (so that
	// strict-order predecessors are fixed before their successors), then
	// the rest in first-seen order.
	var orderRoots []int
	inOrder := make(map[int]bool)
	for _, r := range s.order {
		if _, ok := mentioned[r]; ok {
			orderRoots = append(orderRoots, r)
			inOrder[r] = true
		}
	}
	for _, r := range rootSeen {
		if !inOrder[r] {
			orderRoots = append(orderRoots, r)
		}
	}

	// A couple of global retries paper over rare dead ends caused by
	// disequality interactions.
	for attempt := 0; attempt < 4; attempt++ {
		if g.tryAssign(s, orderRoots, mentioned, row) {
			return true
		}
	}
	return false
}

// tryAssign samples one concrete assignment for the given classes into a
// scratch copy and commits it on success.
func (g *generator) tryAssign(s *solver, roots []int, mentioned map[int][]int, row []dataset.Value) bool {
	g.sampledStrings = make(map[int]string, len(roots))
	scratch := make(map[int]dataset.Value, len(roots)) // root -> sampled value
	for _, root := range roots {
		d := s.dom[root]
		if d.mustNull && !d.mustNotNull {
			scratch[root] = dataset.Null()
			continue
		}
		var v dataset.Value
		var ok bool
		if d.nominal {
			v, ok = g.sampleNominalClass(s, root, d, scratch)
		} else {
			v, ok = g.sampleNumberClass(s, root, d, scratch)
		}
		if !ok {
			return false
		}
		scratch[root] = v
	}
	// Commit: write each member attribute's representation of the class
	// value.
	for root, members := range mentioned {
		v := scratch[root]
		for _, attr := range members {
			row[attr] = g.valueForAttr(attr, v, s, root)
		}
	}
	return true
}

// valueForAttr translates a class value into the member attribute's own
// representation (nominal classes carry a shared domain string which may
// have different indices in different member domains).
func (g *generator) valueForAttr(attr int, v dataset.Value, s *solver, root int) dataset.Value {
	if v.IsNull() || !s.dom[root].nominal {
		return v
	}
	// v was sampled as an index into *some* member's domain; recover the
	// string from the class's sampled string cache instead: we store the
	// string-coded value in sampledStrings.
	str := g.sampledStrings[root]
	idx, ok := g.schema.Attr(attr).Index(str)
	if !ok {
		// Cannot happen: the allowed set was intersected over all members.
		panic(fmt.Sprintf("tdg: class value %q missing from domain of attribute %s", str, g.schema.Attr(attr).Name))
	}
	return dataset.Nom(idx)
}

// sampleNominalClass picks a domain string from the class's allowed set,
// honoring disequality partners already assigned, weighted by the start
// distribution of one member attribute when available.
func (g *generator) sampleNominalClass(s *solver, root int, d *classDomain, scratch map[int]dataset.Value) (dataset.Value, bool) {
	// Build the candidate list minus values taken by assigned ≠-partners.
	taken := make(map[string]bool)
	for _, e := range s.neq {
		ra, rb := s.find(e[0]), s.find(e[1])
		var other int
		switch root {
		case ra:
			other = rb
		case rb:
			other = ra
		default:
			continue
		}
		if v, ok := scratch[other]; ok && !v.IsNull() && s.dom[other].nominal {
			taken[g.sampledStrings[other]] = true
		}
	}
	var candidates []string
	for v := range d.allowed {
		if !taken[v] {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return dataset.Value{}, false
	}
	sort.Strings(candidates) // map order must not leak into the RNG stream
	str := g.pickNominal(root, candidates, s)
	if g.sampledStrings == nil {
		g.sampledStrings = make(map[int]string)
	}
	g.sampledStrings[root] = str
	// Encode with the root attribute's own index (translated per member at
	// commit time).
	idx, ok := g.schema.Attr(root).Index(str)
	if !ok {
		// The root attribute may not contain the string if the class was
		// merged across attributes with different domains; use any member
		// that does. valueForAttr re-translates anyway, so the index here
		// only needs to be valid for *some* attribute.
		idx = 0
	}
	return dataset.Nom(idx), true
}

// pickNominal samples a candidate string, weighted by the categorical start
// distribution of the root attribute when one exists.
func (g *generator) pickNominal(root int, candidates []string, s *solver) string {
	if cat, ok := g.p.Start.Cat[root]; ok {
		weights := make([]float64, len(candidates))
		attr := g.schema.Attr(root)
		total := 0.0
		for i, str := range candidates {
			if idx, found := attr.Index(str); found {
				weights[i] = cat.P(idx)
				total += weights[i]
			}
		}
		if total > 0 {
			c, err := stats.NewCategorical(weights)
			if err == nil {
				return candidates[c.Sample(g.rng)]
			}
		}
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// sampleNumberClass samples a number from the class interval, honoring
// strict-order neighbors and disequality partners already assigned.
func (g *generator) sampleNumberClass(s *solver, root int, d *classDomain, scratch map[int]dataset.Value) (dataset.Value, bool) {
	lo, hi := d.lo, d.hi
	loOpen, hiOpen := d.loOpen, d.hiOpen
	// Tighten by assigned strict-order predecessors (u < root) and
	// successors (root < v).
	for u, vs := range s.edges {
		for _, v := range vs {
			if v == root {
				if val, ok := scratch[u]; ok && !val.IsNull() {
					if val.Float() > lo || (val.Float() == lo && !loOpen) {
						lo, loOpen = val.Float(), true
					}
				}
			}
			if u == root {
				if val, ok := scratch[v]; ok && !val.IsNull() {
					if val.Float() < hi || (val.Float() == hi && !hiOpen) {
						hi, hiOpen = val.Float(), true
					}
				}
			}
		}
	}
	if lo > hi || (lo == hi && (loOpen || hiOpen)) {
		return dataset.Value{}, false
	}
	bad := func(x float64) bool {
		if x < lo || x > hi {
			return true
		}
		if x == lo && loOpen {
			return true
		}
		if x == hi && hiOpen {
			return true
		}
		if d.excl[x] {
			return true
		}
		for _, e := range s.neq {
			ra, rb := s.find(e[0]), s.find(e[1])
			var other int
			switch root {
			case ra:
				other = rb
			case rb:
				other = ra
			default:
				continue
			}
			if v, ok := scratch[other]; ok && !v.IsNull() && !s.dom[other].nominal && v.Float() == x {
				return true
			}
		}
		return false
	}
	if lo == hi {
		if bad(lo) {
			return dataset.Value{}, false
		}
		return dataset.Num(lo), true
	}
	// Prefer the start distribution truncated into the interval.
	if dist, ok := g.p.Start.Num[root]; ok {
		trunc := stats.Truncated{D: dist, Lo: lo, Hi: hi}
		for i := 0; i < 8; i++ {
			if x := trunc.Sample(g.rng); !bad(x) {
				return dataset.Num(x), true
			}
		}
	}
	// Fall back to uniform interior sampling (open-interval safe).
	for i := 0; i < 16; i++ {
		u := g.rng.Float64()
		x := lo + (0.001+0.998*u)*(hi-lo)
		if !bad(x) {
			return dataset.Num(x), true
		}
	}
	return dataset.Value{}, false
}
