package tdg

import (
	"fmt"
	"math/rand"

	"dataaudit/internal/dataset"
)

// RuleGenParams parameterize random rule generation (§4.1.2: "the rule
// generation process can be further parameterized to govern the complexity
// of a rule (e.g. nesting depth or number of atomic subformulae)").
type RuleGenParams struct {
	// NumRules is the size of the natural rule set to generate.
	NumRules int
	// MaxAtoms bounds the number of subformulae per composite (>= 2).
	MaxAtoms int
	// MaxDepth bounds formula nesting: 1 generates bare atoms, 2 flat
	// conjunctions/disjunctions of atoms, 3 one level of nesting, ...
	MaxDepth int
	// RelationalProb is the chance an atom is relational (A = B, N < M, …).
	RelationalProb float64
	// NullTestProb is the chance an atom is a null test.
	NullTestProb float64
	// DisjunctionProb is the chance a composite is a disjunction.
	DisjunctionProb float64
	// CompositeProb is the chance a formula position below MaxDepth becomes
	// a composite rather than an atom.
	CompositeProb float64
	// MaxTries bounds the total number of candidate rules drawn before
	// generation gives up (0 = 400 per requested rule).
	MaxTries int
	// MaxPremiseCoverage rejects candidate rules whose premise holds on
	// more than this fraction of uniformly sampled rows (default 0.3; set
	// >= 1 to disable). Domain dependencies like the paper's QUIS examples
	// (BRV = 404 → GBM = 901) are narrow: a rule whose premise covers most
	// of the table would make one conclusion value dominate the whole
	// attribute marginal, which no real code attribute exhibits.
	MaxPremiseCoverage float64
	// MaxConclusionsPerAttr caps how many rules may constrain the same
	// attribute in their conclusion (0 derives ~2·NumRules/#attributes;
	// negative disables). Without the cap, many stacked rules on one
	// attribute compound into strong *soft* regularities whose legitimate
	// minority values are indistinguishable from errors.
	MaxConclusionsPerAttr int
	// NoStrictOverlapCheck disables the OverlapConsistent requirement
	// (leaving exactly the pairwise Definition 6 of the paper). The strict
	// check is on by default: contradictory rules on overlapping premises
	// force premise-breaking during data generation, leaving soft
	// minorities that read as false positives.
	NoStrictOverlapCheck bool
	// MaxValueLoad caps, per (attribute, value), the cumulative premise
	// coverage of rules that conclude exactly that value (default 0.4;
	// >= 1 disables). It bounds how far the rule set can concentrate an
	// attribute's marginal: a marginal pushed past the error-confidence
	// flagging threshold would make every legitimate minority record look
	// like an error, which contradicts the ≈99 % specificity the paper
	// reports for its generated workloads.
	MaxValueLoad float64
	// Start, when set, makes coverage estimation sample rows from the
	// actual start distributions instead of uniformly — a skewed Bayesian
	// network start can make a syntactically narrow premise cover half the
	// table.
	Start *StartDists
	// MaxAttrLoad caps, per attribute, the cumulative premise coverage of
	// all rules whose conclusion constrains that attribute in any form
	// (default 0.6; >= 1 disables). It complements MaxValueLoad for
	// conclusion shapes that do not pin a single value (A = B links,
	// disjunctions, inequalities) but still stack up concentration.
	MaxAttrLoad float64
	// MaxRegionConcentration bounds how strongly a rule may concentrate
	// its premise population inside its conclusion region (and vice
	// versa): with premise coverage p and conclusion background coverage
	// v, the post-repair conditional concentration is ≈ p/(p + (1−p)·v),
	// and candidates exceeding the bound are rejected (default 0.7;
	// >= 1 disables). A rule like X = x → KM > h with a rare KM-region
	// floods that region with X = x records; past the error-confidence
	// flagging threshold, every legitimate other value there would read
	// as an error.
	MaxRegionConcentration float64
}

// WithDefaults fills unset fields with the defaults used throughout the
// evaluation (§6.1 base configuration).
func (p RuleGenParams) WithDefaults() RuleGenParams {
	if p.NumRules == 0 {
		p.NumRules = 100
	}
	if p.MaxAtoms == 0 {
		p.MaxAtoms = 3
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 2
	}
	if p.RelationalProb == 0 {
		p.RelationalProb = 0.10
	}
	if p.NullTestProb == 0 {
		p.NullTestProb = 0.03
	}
	if p.DisjunctionProb == 0 {
		p.DisjunctionProb = 0.30
	}
	if p.CompositeProb == 0 {
		p.CompositeProb = 0.50
	}
	if p.MaxTries == 0 {
		p.MaxTries = 400 * p.NumRules
	}
	if p.MaxPremiseCoverage == 0 {
		p.MaxPremiseCoverage = 0.3
	}
	if p.MaxValueLoad == 0 {
		p.MaxValueLoad = 0.4
	}
	if p.MaxRegionConcentration == 0 {
		p.MaxRegionConcentration = 0.7
	}
	if p.MaxAttrLoad == 0 {
		p.MaxAttrLoad = 0.6
	}
	return p
}

// ruleGen holds the generation state.
type ruleGen struct {
	schema *dataset.Schema
	p      RuleGenParams
	rng    *rand.Rand

	nominalAttrs []int
	numberAttrs  []int

	// inConclusion suppresses IsNull atoms while drawing conclusions:
	// a rule that *prescribes* nulls would salt the clean data with
	// missing values, which real domain dependencies never do (missing
	// values are a quality problem, not a constraint).
	inConclusion bool
}

// GenerateRuleSet draws a natural rule set (Definition 6) of the requested
// size. Generation is rejection-based: candidate atoms, formulae and rules
// are drawn at random and checked against Definitions 4–6; incompatible
// candidates are discarded. An error is returned when MaxTries candidates
// were exhausted before NumRules rules were accepted (e.g. because the
// schema is too narrow for the requested structural strength).
func GenerateRuleSet(schema *dataset.Schema, p RuleGenParams, rng *rand.Rand) ([]Rule, error) {
	p = p.WithDefaults()
	g := &ruleGen{schema: schema, p: p, rng: rng}
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Type == dataset.NominalType {
			g.nominalAttrs = append(g.nominalAttrs, i)
		} else {
			g.numberAttrs = append(g.numberAttrs, i)
		}
	}
	maxPerAttr := p.MaxConclusionsPerAttr
	if maxPerAttr == 0 {
		maxPerAttr = 2*p.NumRules/schema.Len() + 1
	}
	conclusionUse := make([]int, schema.Len())
	valueLoad := make(map[[2]int]float64)
	attrLoad := make([]float64, schema.Len())

	// The soft load caps guard the audit's specificity, but a dense rule
	// request on a narrow schema can saturate them before NumRules is
	// reached; escalation relaxes them stepwise (the hard concentration
	// bound stays) rather than failing.
	maxValueLoad, maxAttrLoad := p.MaxValueLoad, p.MaxAttrLoad
	escalations := 0
	triesThisRound := 0

	var rules []Rule
	for tries := 0; len(rules) < p.NumRules; tries++ {
		triesThisRound++
		if triesThisRound >= p.MaxTries/3 {
			if escalations >= 2 {
				return rules, fmt.Errorf("tdg: generated only %d of %d rules after %d tries", len(rules), p.NumRules, tries)
			}
			escalations++
			triesThisRound = 0
			maxValueLoad *= 1.3
			maxAttrLoad *= 1.3
		}
		r, ok := g.candidateRule()
		if !ok {
			continue
		}
		cov := g.coverage(r.Premise)
		if p.MaxPremiseCoverage < 1 && cov > p.MaxPremiseCoverage {
			continue
		}
		if p.MaxRegionConcentration < 1 && cov > 0 {
			covC := g.coverage(r.Conclusion)
			conc := cov / (cov + (1-cov)*covC)
			if conc > p.MaxRegionConcentration {
				continue
			}
		}
		contribs, ok := valueContribs(r.Conclusion, cov)
		if !ok {
			continue // DNF blow-up: discard exotic candidates
		}
		if maxValueLoad < 1 && overloadsValues(contribs, valueLoad, maxValueLoad) {
			continue
		}
		conclusionAttrs := UniqueAttrs(r.Conclusion)
		if maxAttrLoad < 1 && overloadsAttrs(conclusionAttrs, cov, attrLoad, maxAttrLoad) {
			continue
		}
		if maxPerAttr > 0 && conclusionOverused(r.Conclusion, conclusionUse, maxPerAttr) {
			continue
		}
		if natural, err := NaturalRule(g.schema, r); err != nil || !natural {
			continue
		}
		if compatible, err := CompatibleWithSet(g.schema, rules, r, !p.NoStrictOverlapCheck); err != nil || !compatible {
			continue
		}
		rules = append(rules, r)
		for _, a := range conclusionAttrs {
			conclusionUse[a]++
			attrLoad[a] += cov
		}
		for key, w := range contribs {
			valueLoad[key] += w
		}
	}
	return rules, nil
}

// overloadsAttrs reports whether adding cov to each attribute would exceed
// the attribute-level load cap.
func overloadsAttrs(attrs []int, cov float64, load []float64, max float64) bool {
	for _, a := range attrs {
		if load[a]+cov > max {
			return true
		}
	}
	return false
}

// valueContribs estimates how much marginal mass the rule shifts onto each
// (attribute, nominal value) pair its conclusion prescribes: the premise
// coverage, split evenly over the conclusion's DNF disjuncts.
func valueContribs(conclusion Formula, coverage float64) (map[[2]int]float64, bool) {
	ds, err := DNF(conclusion)
	if err != nil || len(ds) == 0 {
		return nil, err == nil
	}
	per := coverage / float64(len(ds))
	out := make(map[[2]int]float64)
	for _, conj := range ds {
		for _, a := range conj {
			if a.Kind == EqConst && a.Val.IsNominal() {
				out[[2]int{a.A, a.Val.NomIdx()}] += per
			}
		}
	}
	return out, true
}

// overloadsValues reports whether adding the contributions would push any
// (attribute, value) past the cap.
func overloadsValues(contribs map[[2]int]float64, load map[[2]int]float64, max float64) bool {
	for key, w := range contribs {
		if load[key]+w > max {
			return true
		}
	}
	return false
}

// conclusionOverused reports whether adding the conclusion would push any
// attribute past the per-attribute cap.
func conclusionOverused(conclusion Formula, use []int, max int) bool {
	for _, a := range UniqueAttrs(conclusion) {
		if use[a]+1 > max {
			return true
		}
	}
	return false
}

// coverage estimates the fraction of start-distribution rows that satisfy
// the formula (uniform sampling when no start distributions are supplied).
func (g *ruleGen) coverage(f Formula) float64 {
	const samples = 256
	row := make([]dataset.Value, g.schema.Len())
	hits := 0
	for i := 0; i < samples; i++ {
		if g.p.Start != nil {
			DrawStartRow(g.schema, *g.p.Start, g.rng, row)
		} else {
			for a := 0; a < g.schema.Len(); a++ {
				attr := g.schema.Attr(a)
				if attr.Type == dataset.NominalType {
					row[a] = dataset.Nom(g.rng.Intn(len(attr.Domain)))
				} else {
					row[a] = dataset.Num(attr.Min + g.rng.Float64()*(attr.Max-attr.Min))
				}
			}
		}
		if f.Eval(g.schema, row) {
			hits++
		}
	}
	return float64(hits) / samples
}

// candidateRule draws one raw rule candidate (before the Definition 5/6
// checks).
func (g *ruleGen) candidateRule() (Rule, bool) {
	premise, ok := g.candidateFormula(g.p.MaxDepth, nil)
	if !ok {
		return Rule{}, false
	}
	// Prefer conclusions over attributes the premise does not mention: such
	// rules encode dependencies *between* attributes, which is what both
	// QUIS-style domain rules and the multiple-classification auditing
	// approach are about. Fall back to any formula after a few tries.
	used := make(map[int]bool)
	for _, a := range UniqueAttrs(premise) {
		used[a] = true
	}
	g.inConclusion = true
	defer func() { g.inConclusion = false }()
	for attempt := 0; attempt < 8; attempt++ {
		conclusion, ok := g.candidateFormula(g.p.MaxDepth-1, used)
		if !ok {
			continue
		}
		return Rule{Premise: premise, Conclusion: conclusion}, true
	}
	conclusion, ok := g.candidateFormula(g.p.MaxDepth-1, nil)
	if !ok {
		return Rule{}, false
	}
	return Rule{Premise: premise, Conclusion: conclusion}, true
}

// candidateFormula draws a formula of at most the given depth, avoiding the
// given attributes if possible.
func (g *ruleGen) candidateFormula(depth int, avoid map[int]bool) (Formula, bool) {
	if depth <= 1 || g.rng.Float64() >= g.p.CompositeProb {
		a, ok := g.candidateAtom(avoid)
		if !ok {
			return nil, false
		}
		return a, true
	}
	k := 2 + g.rng.Intn(g.p.MaxAtoms-1)
	subs := make([]Formula, 0, k)
	for i := 0; i < k; i++ {
		s, ok := g.candidateFormula(depth-1, avoid)
		if !ok {
			return nil, false
		}
		subs = append(subs, s)
	}
	if g.rng.Float64() < g.p.DisjunctionProb {
		return Or{Subs: subs}, true
	}
	return And{Subs: subs}, true
}

// candidateAtom draws one well-typed atom, avoiding the given attributes if
// possible.
func (g *ruleGen) candidateAtom(avoid map[int]bool) (Atom, bool) {
	attr := g.pickAttr(avoid)
	if attr < 0 {
		return Atom{}, false
	}
	a := g.schema.Attr(attr)

	if g.rng.Float64() < g.p.NullTestProb {
		// isnotnull in premises is vacuous on clean generated data, but
		// isnull/isnotnull are part of the language (Definition 1); generate
		// both with a strong lean towards isnotnull, and never prescribe
		// nulls in conclusions.
		kind := IsNotNull
		if !g.inConclusion && g.rng.Float64() < 0.25 {
			kind = IsNull
		}
		return Atom{Kind: kind, A: attr}, true
	}

	if g.rng.Float64() < g.p.RelationalProb {
		if b := g.pickPartner(attr); b >= 0 {
			return g.relationalAtom(attr, b), true
		}
	}
	return g.propositionalAtom(attr, a), true
}

func (g *ruleGen) pickAttr(avoid map[int]bool) int {
	n := g.schema.Len()
	if len(avoid) >= n {
		avoid = nil
	}
	for tries := 0; tries < 16; tries++ {
		i := g.rng.Intn(n)
		if avoid == nil || !avoid[i] {
			return i
		}
	}
	return g.rng.Intn(n)
}

// pickPartner returns a type-compatible second attribute for a relational
// atom, or -1. Nominal partners additionally need overlapping domains —
// otherwise A = B is unsatisfiable and A ≠ B vacuous.
func (g *ruleGen) pickPartner(attr int) int {
	a := g.schema.Attr(attr)
	var candidates []int
	if a.Type == dataset.NominalType {
		for _, j := range g.nominalAttrs {
			if j == attr {
				continue
			}
			if domainsOverlap(a, g.schema.Attr(j)) {
				candidates = append(candidates, j)
			}
		}
	} else {
		for _, j := range g.numberAttrs {
			if j != attr && rangesOverlap(a, g.schema.Attr(j)) {
				candidates = append(candidates, j)
			}
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[g.rng.Intn(len(candidates))]
}

func domainsOverlap(a, b *dataset.Attribute) bool {
	for _, v := range a.Domain {
		if _, ok := b.Index(v); ok {
			return true
		}
	}
	return false
}

func rangesOverlap(a, b *dataset.Attribute) bool {
	return a.Min <= b.Max && b.Min <= a.Max
}

func (g *ruleGen) relationalAtom(attrA, attrB int) Atom {
	if g.schema.Attr(attrA).Type == dataset.NominalType {
		kind := EqAttr
		if g.rng.Float64() < 0.25 {
			kind = NeqAttr
		}
		return Atom{Kind: kind, A: attrA, B: attrB}
	}
	switch g.rng.Intn(4) {
	case 0:
		return Atom{Kind: EqAttr, A: attrA, B: attrB}
	case 1:
		return Atom{Kind: NeqAttr, A: attrA, B: attrB}
	case 2:
		return Atom{Kind: LtAttr, A: attrA, B: attrB}
	default:
		return Atom{Kind: GtAttr, A: attrA, B: attrB}
	}
}

func (g *ruleGen) propositionalAtom(attr int, a *dataset.Attribute) Atom {
	if a.Type == dataset.NominalType {
		val := dataset.Nom(g.rng.Intn(len(a.Domain)))
		kind := EqConst
		// Inequality atoms are fine as premises but make weak conclusions
		// (they barely constrain the attribute); conclusions lean hard on
		// value-determining equalities, like real domain dependencies.
		neqProb := 0.2
		if g.inConclusion {
			neqProb = 0.05
		}
		if g.rng.Float64() < neqProb && len(a.Domain) > 2 {
			kind = NeqConst
		}
		return Atom{Kind: kind, A: attr, Val: val}
	}
	// For continuous attributes, equality with a constant has measure-zero
	// support; use strict order comparisons with an interior cut point.
	cut := a.Min + (0.1+0.8*g.rng.Float64())*(a.Max-a.Min)
	kind := LtConst
	if g.rng.Float64() < 0.5 {
		kind = GtConst
	}
	return Atom{Kind: kind, A: attr, Val: dataset.Num(cut)}
}
