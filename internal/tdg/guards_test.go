package tdg

import (
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Tests for the generator guards that calibrate the §6.1 operating regime
// (see DESIGN.md §6): premise coverage, value/attribute load caps, region
// concentration, and overlap consistency.

func TestOverlapConsistent(t *testing.T) {
	s := tdgSchema(t)
	// Disjoint premises: trivially consistent.
	a := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(0)},
		Conclusion: Atom{Kind: EqConst, A: 1, Val: v(0)},
	}
	b := Rule{
		Premise:    Atom{Kind: EqConst, A: 0, Val: v(1)},
		Conclusion: Atom{Kind: EqConst, A: 1, Val: v(1)},
	}
	ok, err := OverlapConsistent(s, a, b)
	if err != nil || !ok {
		t.Fatalf("disjoint premises must be consistent: %v", err)
	}
	// Overlapping incomparable premises with contradictory conclusions:
	// the case Definition 6 misses.
	c := Rule{
		Premise:    Atom{Kind: EqConst, A: 2, Val: v(0)}, // C = c1 overlaps A = a1
		Conclusion: Atom{Kind: EqConst, A: 1, Val: v(1)}, // contradicts a's conclusion
	}
	ok, err = OverlapConsistent(s, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("contradictory conclusions on overlapping premises must be inconsistent")
	}
	// Same overlap, compatible conclusions.
	d := Rule{
		Premise:    Atom{Kind: EqConst, A: 2, Val: v(0)},
		Conclusion: Atom{Kind: LtConst, A: 3, Val: n(50)},
	}
	ok, err = OverlapConsistent(s, a, d)
	if err != nil || !ok {
		t.Fatalf("compatible conclusions must be consistent: %v", err)
	}
}

func TestCoverageEstimationUniform(t *testing.T) {
	s := tdgSchema(t)
	g := &ruleGen{schema: s, p: RuleGenParams{}.WithDefaults(), rng: rand.New(rand.NewSource(1))}
	// A = a1 covers 1/3 of uniform rows.
	got := g.coverage(Atom{Kind: EqConst, A: 0, Val: v(0)})
	if math.Abs(got-1.0/3.0) > 0.1 {
		t.Fatalf("coverage(A=a1) = %g, want ~0.33", got)
	}
	// N < 50 covers ~half of [0,100].
	got = g.coverage(Atom{Kind: LtConst, A: 3, Val: n(50)})
	if math.Abs(got-0.5) > 0.12 {
		t.Fatalf("coverage(N<50) = %g, want ~0.5", got)
	}
}

func TestCoverageEstimationUsesStartDists(t *testing.T) {
	s := tdgSchema(t)
	// A heavily skewed start makes A = a1 nearly certain.
	start := StartDists{Cat: map[int]*stats.Categorical{0: stats.MustCategorical(98, 1, 1)}}
	p := RuleGenParams{Start: &start}.WithDefaults()
	g := &ruleGen{schema: s, p: p, rng: rand.New(rand.NewSource(2))}
	got := g.coverage(Atom{Kind: EqConst, A: 0, Val: v(0)})
	if got < 0.9 {
		t.Fatalf("start-aware coverage = %g, want ~0.98", got)
	}
}

func TestValueContribs(t *testing.T) {
	// Conjunction: full coverage lands on each pinned value.
	conj := And{Subs: []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(1)},
		Atom{Kind: EqConst, A: 1, Val: v(2)},
	}}
	contribs, ok := valueContribs(conj, 0.2)
	if !ok || len(contribs) != 2 {
		t.Fatalf("contribs = %v", contribs)
	}
	if math.Abs(contribs[[2]int{0, 1}]-0.2) > 1e-12 || math.Abs(contribs[[2]int{1, 2}]-0.2) > 1e-12 {
		t.Fatalf("conjunction contribs wrong: %v", contribs)
	}
	// Disjunction: coverage splits across disjuncts.
	disj := Or{Subs: []Formula{
		Atom{Kind: EqConst, A: 0, Val: v(1)},
		Atom{Kind: EqConst, A: 0, Val: v(2)},
	}}
	contribs, ok = valueContribs(disj, 0.2)
	if !ok {
		t.Fatalf("disjunction contribs failed")
	}
	if math.Abs(contribs[[2]int{0, 1}]-0.1) > 1e-12 {
		t.Fatalf("disjunction split wrong: %v", contribs)
	}
	// Non-pinning conclusions contribute nothing.
	contribs, ok = valueContribs(Atom{Kind: NeqConst, A: 0, Val: v(0)}, 0.3)
	if !ok || len(contribs) != 0 {
		t.Fatalf("NeqConst should not pin values: %v", contribs)
	}
}

func TestGeneratedRuleSetRespectsGuards(t *testing.T) {
	s := tdgSchema(t)
	p := RuleGenParams{NumRules: 12}.WithDefaults()
	rng := rand.New(rand.NewSource(3))
	rules, err := GenerateRuleSet(s, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := &ruleGen{schema: s, p: p, rng: rand.New(rand.NewSource(4))}
	for _, r := range rules {
		cov := g.coverage(r.Premise)
		// Allow sampling slack over the 0.3 cap.
		if cov > p.MaxPremiseCoverage+0.12 {
			t.Fatalf("premise coverage %g exceeds the cap: %s", cov, r.Render(s))
		}
		// No isnull conclusions.
		for _, conj := range mustDNF(t, r.Conclusion) {
			if conjForcesNull(conj) {
				t.Fatalf("conclusion prescribes null: %s", r.Render(s))
			}
		}
	}
	// Pairwise overlap consistency (the strict default).
	for i := range rules {
		for j := i + 1; j < len(rules); j++ {
			ok, err := OverlapConsistent(s, rules[i], rules[j])
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("generated rules %d and %d are overlap-inconsistent", i, j)
			}
		}
	}
}

func mustDNF(t *testing.T, f Formula) []Conj {
	t.Helper()
	ds, err := DNF(f)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGeneratedDataHasNoSpuriousNulls(t *testing.T) {
	// With the isnull-deferral in repair and no isnull conclusions, clean
	// generated data should be (almost) entirely non-null.
	s := tdgSchema(t)
	rng := rand.New(rand.NewSource(5))
	rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 15}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Generate(s, rules, DataGenParams{NumRecords: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if tab.Get(r, c).IsNull() {
				nulls++
			}
		}
	}
	if frac := float64(nulls) / float64(tab.NumRows()*tab.NumCols()); frac > 0.01 {
		t.Fatalf("clean data contains %.2f%% nulls; generator leaks them", frac*100)
	}
}

func TestEscalationFillsDenseRequests(t *testing.T) {
	// 150 rules on the 6-attribute test schema saturates the default soft
	// caps; escalation must still deliver (or come close) without error
	// for a moderately dense request.
	s := dataset.MustSchema(
		dataset.NewNominal("A", "a0", "a1", "a2", "a3", "a4", "a5"),
		dataset.NewNominal("B", "b0", "b1", "b2", "b3", "b4", "b5"),
		dataset.NewNominal("C", "c0", "c1", "c2", "c3", "c4", "c5"),
		dataset.NewNominal("D", "d0", "d1", "d2", "d3", "d4", "d5"),
		dataset.NewNumeric("X", 0, 100),
		dataset.NewNumeric("Y", 0, 100),
	)
	rng := rand.New(rand.NewSource(6))
	rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 60}, rng)
	if err != nil {
		t.Fatalf("dense request failed: %v (got %d rules)", err, len(rules))
	}
	if len(rules) != 60 {
		t.Fatalf("got %d of 60 rules", len(rules))
	}
}
