package tdg

import (
	"dataaudit/internal/dataset"
)

// This file implements the paper's pragmatic satisfiability test (§4.1.3):
//
//	"The main idea of the procedure is to initialize the current domain
//	 ranges of every attribute defined in the schema for the target table
//	 with their domain ranges and then successively restrict them by
//	 integrating the constraints of each atomic TDG-formula in the
//	 conjunction. [...] The integration of relational constraints [...]
//	 are reflected by the instantiation of links between attributes while
//	 considering the transitive nature of the operators <, > and =."
//
// Like the paper's, the test is *correct for unsatisfiability*: whenever it
// reports UNSAT, the conjunction truly has no satisfying assignment. It may
// (rarely, and irrelevantly in practice) report SAT for unsatisfiable
// corner cases — e.g. disequality constraints that encode a graph-coloring
// conflict across three or more attributes.

// classDomain is the current domain range of one equality class of
// attributes.
type classDomain struct {
	nominal bool
	// nominal classes: the set of still-allowed domain strings.
	allowed map[string]bool
	// number classes: the current interval and excluded points.
	lo, hi         float64
	loOpen, hiOpen bool
	excl           map[float64]bool

	mustNull, mustNotNull bool
}

// solver carries the propagation state for one conjunction of atoms.
type solver struct {
	schema *dataset.Schema
	parent []int          // union-find over attribute indices
	dom    []*classDomain // indexed by attribute; authoritative at roots
	neq    [][2]int       // disequality links (attribute indices)
	lt     [][2]int       // strict order links a < b (attribute indices)
	unsat  bool

	// Populated by check() for use by the assignment sampler (datagen.go).
	edges map[int][]int // strict-order DAG over root classes
	order []int         // topological order of the classes in edges
}

func newSolver(schema *dataset.Schema) *solver {
	s := &solver{schema: schema, parent: make([]int, schema.Len()), dom: make([]*classDomain, schema.Len())}
	for i := range s.parent {
		s.parent[i] = i
		a := schema.Attr(i)
		d := &classDomain{}
		if a.Type == dataset.NominalType {
			d.nominal = true
			d.allowed = make(map[string]bool, len(a.Domain))
			for _, v := range a.Domain {
				d.allowed[v] = true
			}
		} else {
			d.lo, d.hi = a.Min, a.Max
		}
		s.dom[i] = d
	}
	return s
}

func (s *solver) find(i int) int {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

// union merges the equality classes of attributes a and b, intersecting
// their domains.
func (s *solver) union(a, b int) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	da, db := s.dom[ra], s.dom[rb]
	if da.nominal != db.nominal {
		s.unsat = true // type mismatch: A = B can never hold
		return
	}
	s.parent[rb] = ra
	if da.nominal {
		for v := range da.allowed {
			if !db.allowed[v] {
				delete(da.allowed, v)
			}
		}
	} else {
		s.intersectLower(da, db.lo, db.loOpen)
		s.intersectUpper(da, db.hi, db.hiOpen)
		for p := range db.excl {
			s.exclude(da, p)
		}
	}
	da.mustNull = da.mustNull || db.mustNull
	da.mustNotNull = da.mustNotNull || db.mustNotNull
}

func (s *solver) intersectLower(d *classDomain, lo float64, open bool) {
	if lo > d.lo || (lo == d.lo && open && !d.loOpen) {
		d.lo, d.loOpen = lo, open
	}
}

func (s *solver) intersectUpper(d *classDomain, hi float64, open bool) {
	if hi < d.hi || (hi == d.hi && open && !d.hiOpen) {
		d.hi, d.hiOpen = hi, open
	}
}

func (s *solver) exclude(d *classDomain, p float64) {
	if d.excl == nil {
		d.excl = make(map[float64]bool)
	}
	d.excl[p] = true
}

// apply integrates one atom's constraint.
func (s *solver) apply(a Atom) {
	if s.unsat {
		return
	}
	d := s.dom[s.find(a.A)]
	switch a.Kind {
	case IsNull:
		d.mustNull = true
	case IsNotNull:
		d.mustNotNull = true
	case EqConst:
		d.mustNotNull = true
		if d.nominal {
			str := s.schema.Attr(a.A).Domain[a.Val.NomIdx()]
			if !d.allowed[str] {
				s.unsat = true
				return
			}
			d.allowed = map[string]bool{str: true}
		} else {
			v := a.Val.Float()
			s.intersectLower(d, v, false)
			s.intersectUpper(d, v, false)
		}
	case NeqConst:
		d.mustNotNull = true
		if d.nominal {
			delete(d.allowed, s.schema.Attr(a.A).Domain[a.Val.NomIdx()])
		} else {
			s.exclude(d, a.Val.Float())
		}
	case LtConst:
		d.mustNotNull = true
		s.intersectUpper(d, a.Val.Float(), true)
	case GtConst:
		d.mustNotNull = true
		s.intersectLower(d, a.Val.Float(), true)
	case EqAttr:
		s.dom[s.find(a.A)].mustNotNull = true
		s.dom[s.find(a.B)].mustNotNull = true
		s.union(a.A, a.B)
	case NeqAttr:
		s.dom[s.find(a.A)].mustNotNull = true
		s.dom[s.find(a.B)].mustNotNull = true
		s.neq = append(s.neq, [2]int{a.A, a.B})
	case LtAttr:
		s.dom[s.find(a.A)].mustNotNull = true
		s.dom[s.find(a.B)].mustNotNull = true
		s.lt = append(s.lt, [2]int{a.A, a.B})
	case GtAttr:
		s.dom[s.find(a.A)].mustNotNull = true
		s.dom[s.find(a.B)].mustNotNull = true
		s.lt = append(s.lt, [2]int{a.B, a.A})
	}
}

// ltEdges resolves the strict-order links to root classes, deduplicated.
// A self-edge (both endpoints in one equality class) is a contradiction.
func (s *solver) ltEdges() (map[int][]int, bool) {
	edges := make(map[int][]int)
	seen := make(map[[2]int]bool)
	for _, e := range s.lt {
		u, v := s.find(e[0]), s.find(e[1])
		if u == v {
			return nil, false
		}
		key := [2]int{u, v}
		if !seen[key] {
			seen[key] = true
			edges[u] = append(edges[u], v)
		}
	}
	return edges, true
}

// topoOrder sorts the root classes touched by order edges topologically,
// returning false on a cycle (a strict-order cycle is unsatisfiable).
func topoOrder(edges map[int][]int) ([]int, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var order []int
	var visit func(u int) bool
	visit = func(u int) bool {
		switch color[u] {
		case gray:
			return false
		case black:
			return true
		}
		color[u] = gray
		for _, v := range edges[u] {
			if !visit(v) {
				return false
			}
		}
		color[u] = black
		order = append(order, u)
		return true
	}
	nodes := make(map[int]bool)
	for u, vs := range edges {
		nodes[u] = true
		for _, v := range vs {
			nodes[v] = true
		}
	}
	for u := range nodes {
		if !visit(u) {
			return nil, false
		}
	}
	// visit appends post-order (descendants first); reverse for topo order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, true
}

// propagate pushes interval bounds along the strict-order DAG: for every
// edge u < v, hi(u) tightens below hi(v) and lo(v) tightens above lo(u).
func (s *solver) propagate(edges map[int][]int, order []int) {
	// Forward pass (topological order): lower bounds flow downstream.
	for _, u := range order {
		du := s.dom[u]
		for _, v := range edges[u] {
			s.intersectLower(s.dom[v], du.lo, true)
		}
	}
	// Backward pass: upper bounds flow upstream.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		du := s.dom[u]
		for _, v := range edges[u] {
			s.intersectUpper(du, s.dom[v].hi, true)
		}
	}
}

// emptyInterval reports whether the number interval of d admits no value.
func emptyInterval(d *classDomain) bool {
	if d.lo > d.hi {
		return true
	}
	if d.lo == d.hi {
		if d.loOpen || d.hiOpen {
			return true
		}
		if d.excl[d.lo] {
			return true
		}
	}
	return false
}

// check runs the final consistency tests. It must only be called once all
// atoms were applied.
func (s *solver) check() bool {
	if s.unsat {
		return false
	}
	edges, ok := s.ltEdges()
	if !ok {
		return false
	}
	order, ok := topoOrder(edges)
	if !ok {
		return false
	}
	s.edges, s.order = edges, order
	s.propagate(edges, order)
	for i := 0; i < s.schema.Len(); i++ {
		if s.find(i) != i {
			continue
		}
		d := s.dom[i]
		if d.mustNull && d.mustNotNull {
			return false
		}
		if d.mustNotNull {
			if d.nominal && len(d.allowed) == 0 {
				return false
			}
			if !d.nominal && emptyInterval(d) {
				return false
			}
		}
	}
	for _, e := range s.neq {
		ra, rb := s.find(e[0]), s.find(e[1])
		if ra == rb {
			return false // A ≠ B while A = B is forced
		}
		da, db := s.dom[ra], s.dom[rb]
		if da.nominal && db.nominal && len(da.allowed) == 1 && len(db.allowed) == 1 {
			var va, vb string
			for v := range da.allowed {
				va = v
			}
			for v := range db.allowed {
				vb = v
			}
			if va == vb {
				return false
			}
		}
		if !da.nominal && !db.nominal &&
			da.lo == da.hi && !da.loOpen && !da.hiOpen &&
			db.lo == db.hi && !db.loOpen && !db.hiOpen &&
			da.lo == db.lo {
			return false
		}
	}
	return true
}

// SatConj reports whether a conjunction of atoms is satisfiable under the
// schema's domain ranges.
func SatConj(schema *dataset.Schema, conj Conj) bool {
	s := newSolver(schema)
	for _, a := range conj {
		s.apply(a)
		if s.unsat {
			return false
		}
	}
	return s.check()
}

// Satisfiable reports whether a TDG-formula is satisfiable: it is
// transformed into DNF and each disjunct is tested with SatConj.
func Satisfiable(schema *dataset.Schema, f Formula) (bool, error) {
	ds, err := DNF(f)
	if err != nil {
		return false, err
	}
	for _, d := range ds {
		if SatConj(schema, d) {
			return true, nil
		}
	}
	return false, nil
}

// Implies reports whether f ⇒ g, reduced per §4.1.3 to the unsatisfiability
// of f ∧ Negate(g).
func Implies(schema *dataset.Schema, f, g Formula) (bool, error) {
	sat, err := Satisfiable(schema, And{Subs: []Formula{f, Negate(g)}})
	if err != nil {
		return false, err
	}
	return !sat, nil
}
