package tdg

import (
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/bayesnet"
	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

func oneAttrSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(dataset.NewNominal("X", "x1", "x2"))
}

func TestGenerateSatisfiesHandWrittenRules(t *testing.T) {
	s := tdgSchema(t)
	rules := []Rule{
		// A = a1 → B = b1
		{Premise: Atom{Kind: EqConst, A: 0, Val: v(0)}, Conclusion: Atom{Kind: EqConst, A: 1, Val: v(2)}},
		// C = c1 → N < 50
		{Premise: Atom{Kind: EqConst, A: 2, Val: v(0)}, Conclusion: Atom{Kind: LtConst, A: 3, Val: n(50)}},
		// N > 80 → M > 100 ∧ C = c2
		{Premise: Atom{Kind: GtConst, A: 3, Val: n(80)}, Conclusion: And{Subs: []Formula{
			Atom{Kind: GtConst, A: 4, Val: n(100)},
			Atom{Kind: EqConst, A: 2, Val: v(1)},
		}}},
		// B = a2 → N < M (relational conclusion)
		{Premise: Atom{Kind: EqConst, A: 1, Val: v(0)}, Conclusion: Atom{Kind: LtAttr, A: 3, B: 4}},
	}
	rng := rand.New(rand.NewSource(91))
	table, err := Generate(s, rules, DataGenParams{NumRecords: 2000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != 2000 {
		t.Fatalf("rows = %d", table.NumRows())
	}
	if err := table.Validate(); err != nil {
		t.Fatalf("generated data out of domain: %v", err)
	}
	buf := make([]dataset.Value, s.Len())
	for r := 0; r < table.NumRows(); r++ {
		rowVals := table.RowInto(r, buf)
		for ri, rule := range rules {
			if rule.Violated(s, rowVals) {
				t.Fatalf("record %d violates rule %d (%s)", r, ri, rule.Render(s))
			}
		}
	}
}

func TestGenerateSatisfiesGeneratedRuleSetProperty(t *testing.T) {
	// End-to-end property (the §4.1.4 post-condition): generated records
	// satisfy every rule of a *randomly generated* natural rule set.
	s := tdgSchema(t)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(920 + seed))
		rules, err := GenerateRuleSet(s, RuleGenParams{NumRules: 20}, rng)
		if err != nil {
			t.Fatal(err)
		}
		table, err := Generate(s, rules, DataGenParams{NumRecords: 500}, rng)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]dataset.Value, s.Len())
		for r := 0; r < table.NumRows(); r++ {
			rowVals := table.RowInto(r, buf)
			for ri, rule := range rules {
				if rule.Violated(s, rowVals) {
					t.Fatalf("seed %d: record %d violates rule %d (%s)", seed, r, ri, rule.Render(s))
				}
			}
		}
	}
}

func TestGenerateStartDistributionsRespected(t *testing.T) {
	s := tdgSchema(t)
	// No rules: start distributions shine through unmodified.
	start := StartDists{
		Cat: map[int]*stats.Categorical{0: stats.MustCategorical(8, 1, 1)},
		Num: map[int]stats.Dist{3: stats.Normal{Mu: 30, Sigma: 5}},
	}
	rng := rand.New(rand.NewSource(93))
	table, err := Generate(s, nil, DataGenParams{NumRecords: 20000, Start: start}, rng)
	if err != nil {
		t.Fatal(err)
	}
	countA1 := 0
	var nVals []float64
	for r := 0; r < table.NumRows(); r++ {
		if table.Get(r, 0).NomIdx() == 0 {
			countA1++
		}
		nVals = append(nVals, table.Get(r, 3).Float())
	}
	if p := float64(countA1) / float64(table.NumRows()); math.Abs(p-0.8) > 0.02 {
		t.Fatalf("categorical start ignored: P(a1) = %g, want ~0.8", p)
	}
	if m := stats.Mean(nVals); math.Abs(m-30) > 0.5 {
		t.Fatalf("numeric start ignored: mean = %g, want ~30", m)
	}
}

func TestGenerateWithBayesNetStart(t *testing.T) {
	s := tdgSchema(t)
	// Couple A and C: when A = a1, C is almost surely c1.
	net, err := bayesnet.New(s, []*bayesnet.Node{
		{Attr: 0, CPT: []*stats.Categorical{stats.MustCategorical(0.5, 0.25, 0.25)}},
		{Attr: 2, Parents: []int{0}, CPT: []*stats.Categorical{
			stats.MustCategorical(0.95, 0.05),
			stats.MustCategorical(0.10, 0.90),
			stats.MustCategorical(0.50, 0.50),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(94))
	table, err := Generate(s, nil, DataGenParams{NumRecords: 20000, Start: StartDists{Net: net}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bothA1C1, a1 := 0, 0
	for r := 0; r < table.NumRows(); r++ {
		if table.Get(r, 0).NomIdx() == 0 {
			a1++
			if table.Get(r, 2).NomIdx() == 0 {
				bothA1C1++
			}
		}
	}
	if p := float64(bothA1C1) / float64(a1); math.Abs(p-0.95) > 0.02 {
		t.Fatalf("network coupling lost: P(c1|a1) = %g, want ~0.95", p)
	}
}

func TestGenerateNullConclusion(t *testing.T) {
	s := tdgSchema(t)
	// Forcing A to null through premise falsification: two rules demand
	// contradictory values whenever A is not null, so the only stable
	// records have A isnull.
	rules := []Rule{
		{Premise: Atom{Kind: IsNotNull, A: 0}, Conclusion: Atom{Kind: EqConst, A: 0, Val: v(0)}},
		{Premise: Atom{Kind: IsNotNull, A: 0}, Conclusion: Atom{Kind: NeqConst, A: 0, Val: v(0)}},
	}
	rng := rand.New(rand.NewSource(95))
	table, err := Generate(s, rules, DataGenParams{NumRecords: 50, MaxRepairPasses: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < table.NumRows(); r++ {
		if !table.Get(r, 0).IsNull() {
			t.Fatalf("record %d: A should have been forced to null", r)
		}
	}
}

func TestGenerateImpossibleRuleSetFails(t *testing.T) {
	s := tdgSchema(t)
	// Tautological premises with contradictory conclusions: repair can
	// neither satisfy both conclusions nor falsify the premises.
	taut := Or{Subs: []Formula{Atom{Kind: IsNull, A: 0}, Atom{Kind: IsNotNull, A: 0}}}
	rules := []Rule{
		{Premise: taut, Conclusion: Atom{Kind: EqConst, A: 1, Val: v(0)}},
		{Premise: taut, Conclusion: Atom{Kind: NeqConst, A: 1, Val: v(0)}},
	}
	rng := rand.New(rand.NewSource(96))
	_, err := Generate(s, rules, DataGenParams{NumRecords: 5, MaxRepairPasses: 4, MaxRedraws: 5}, rng)
	if err == nil {
		t.Fatalf("impossible rule set must make generation fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := tdgSchema(t)
	rules := []Rule{
		{Premise: Atom{Kind: EqConst, A: 0, Val: v(0)}, Conclusion: Atom{Kind: EqConst, A: 1, Val: v(2)}},
	}
	gen := func(seed int64) *dataset.Table {
		tab, err := Generate(s, rules, DataGenParams{NumRecords: 200}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a, b := gen(7), gen(7)
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			if !a.Get(r, c).Equal(b.Get(r, c)) {
				t.Fatalf("generation not deterministic at (%d,%d)", r, c)
			}
		}
	}
}

func TestGenerateRelationalEqualityConclusion(t *testing.T) {
	s := tdgSchema(t)
	// A = a2 → A = B (cross-domain equality; "a2"/"a3" are shared strings).
	rules := []Rule{
		{Premise: Atom{Kind: EqConst, A: 0, Val: v(1)}, Conclusion: Atom{Kind: EqAttr, A: 0, B: 1}},
	}
	rng := rand.New(rand.NewSource(97))
	table, err := Generate(s, rules, DataGenParams{NumRecords: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]dataset.Value, s.Len())
	sawPremise := false
	for r := 0; r < table.NumRows(); r++ {
		rowVals := table.RowInto(r, buf)
		if rules[0].Violated(s, rowVals) {
			t.Fatalf("record %d violates the relational rule", r)
		}
		if rules[0].Premise.Eval(s, rowVals) {
			sawPremise = true
		}
	}
	if !sawPremise {
		t.Fatalf("premise never fired; test is vacuous")
	}
}

func TestGenerateOrderConclusionChain(t *testing.T) {
	s := tdgSchema(t)
	// C = c1 → N < M ∧ M < D: exercises the strict-order topological
	// sampling path.
	rules := []Rule{
		{Premise: Atom{Kind: EqConst, A: 2, Val: v(0)}, Conclusion: And{Subs: []Formula{
			Atom{Kind: LtAttr, A: 3, B: 4},
			Atom{Kind: LtAttr, A: 4, B: 5},
		}}},
	}
	rng := rand.New(rand.NewSource(98))
	table, err := Generate(s, rules, DataGenParams{NumRecords: 800}, rng)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]dataset.Value, s.Len())
	fired := 0
	for r := 0; r < table.NumRows(); r++ {
		rowVals := table.RowInto(r, buf)
		if rules[0].Violated(s, rowVals) {
			t.Fatalf("record %d violates the order-chain rule", r)
		}
		if rules[0].Premise.Eval(s, rowVals) {
			fired++
			nv, mv, dv := rowVals[3].Float(), rowVals[4].Float(), rowVals[5].Float()
			if !(nv < mv && mv < dv) {
				t.Fatalf("order chain broken: %g, %g, %g", nv, mv, dv)
			}
		}
	}
	if fired == 0 {
		t.Fatalf("premise never fired")
	}
}
