package stats

// KMV is a K-minimum-values distinct-count sketch over 64-bit hashes.
// It keeps the K smallest distinct hash values seen; below saturation the
// sketch is exact, at saturation the classic bottom-k estimator
// (K-1) * 2^64 / kth-minimum extrapolates the distinct count.
//
// The state is a sorted set, so Merge is a set union: the sketch of a
// table is byte-identical no matter how the rows were chunked, ordered or
// sharded before being folded together. The audit layer depends on that
// to keep sequential, parallel and multi-process results gob-identical.
type KMV struct {
	// K is the capacity; Hashes the sorted distinct k-minimum values.
	K      int      `json:"k"`
	Hashes []uint64 `json:"hashes,omitempty"`
}

// DefaultKMVSize is the sketch capacity used by the audit dimensions:
// exact counts up to 1024 distinct values, ~3% standard error above.
const DefaultKMVSize = 1024

// NewKMV returns an empty sketch with capacity k (DefaultKMVSize when
// k <= 0).
func NewKMV(k int) *KMV {
	if k <= 0 {
		k = DefaultKMVSize
	}
	return &KMV{K: k}
}

// Add folds one hash into the sketch.
func (s *KMV) Add(h uint64) {
	n := len(s.Hashes)
	// Saturated and not below the current maximum: cannot enter the
	// bottom-k. This is the steady-state path once a high-cardinality
	// column has warmed the sketch up.
	if n == s.K && h >= s.Hashes[n-1] {
		return
	}
	// Binary search for the insertion point.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && s.Hashes[lo] == h {
		return // already present
	}
	if n == s.K {
		// Shift the tail right over the evicted maximum.
		copy(s.Hashes[lo+1:], s.Hashes[lo:n-1])
		s.Hashes[lo] = h
		return
	}
	s.Hashes = append(s.Hashes, 0)
	copy(s.Hashes[lo+1:], s.Hashes[lo:n])
	s.Hashes[lo] = h
}

// Merge unions other into s. Panics if the capacities differ: sketches
// with different K are not comparable.
func (s *KMV) Merge(other *KMV) {
	if other == nil || len(other.Hashes) == 0 {
		return
	}
	if s.K != other.K {
		panic("stats: KMV.Merge capacity mismatch")
	}
	merged := make([]uint64, 0, len(s.Hashes)+len(other.Hashes))
	i, j := 0, 0
	for i < len(s.Hashes) && j < len(other.Hashes) {
		a, b := s.Hashes[i], other.Hashes[j]
		switch {
		case a < b:
			merged = append(merged, a)
			i++
		case b < a:
			merged = append(merged, b)
			j++
		default:
			merged = append(merged, a)
			i++
			j++
		}
	}
	merged = append(merged, s.Hashes[i:]...)
	merged = append(merged, other.Hashes[j:]...)
	if len(merged) > s.K {
		merged = merged[:s.K]
	}
	s.Hashes = merged
}

// Distinct estimates the number of distinct hashes folded in. Exact while
// the sketch has not saturated.
func (s *KMV) Distinct() int64 {
	n := len(s.Hashes)
	if n < s.K || n == 0 {
		return int64(n)
	}
	kth := s.Hashes[n-1]
	if kth == 0 {
		return int64(n)
	}
	// (K-1) * 2^64 / kth-minimum, computed in float64: the estimate's
	// ~1/sqrt(K) relative error dwarfs the float rounding.
	est := float64(s.K-1) * (18446744073709551616.0 / float64(kth))
	if est < float64(n) {
		return int64(n)
	}
	return int64(est + 0.5)
}

// Saturated reports whether the sketch holds K hashes (estimates instead
// of exact counts).
func (s *KMV) Saturated() bool { return len(s.Hashes) >= s.K }

// Clone returns an independent copy.
func (s *KMV) Clone() *KMV {
	if s == nil {
		return nil
	}
	cp := &KMV{K: s.K}
	if len(s.Hashes) > 0 {
		cp.Hashes = append(make([]uint64, 0, len(s.Hashes)), s.Hashes...)
	}
	return cp
}
