package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func sampleMany(d Dist, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestUniformSampling(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 10}
	xs := sampleMany(u, 20000, 1)
	for _, x := range xs {
		if x < 2 || x > 10 {
			t.Fatalf("uniform sample %g out of range", x)
		}
	}
	if m := Mean(xs); math.Abs(m-6) > 0.1 {
		t.Fatalf("uniform mean = %g, want ~6", m)
	}
	if u.Mean() != 6 {
		t.Fatalf("Mean() = %g", u.Mean())
	}
}

func TestNormalSampling(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 2}
	xs := sampleMany(n, 50000, 2)
	if m := Mean(xs); math.Abs(m-5) > 0.05 {
		t.Fatalf("normal mean = %g, want ~5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Fatalf("normal sd = %g, want ~2", s)
	}
}

func TestExponentialSampling(t *testing.T) {
	e := Exponential{Rate: 0.5, Shift: 3}
	xs := sampleMany(e, 50000, 3)
	if m := Mean(xs); math.Abs(m-5) > 0.1 {
		t.Fatalf("exp mean = %g, want ~5", m)
	}
	for _, x := range xs {
		if x < 3 {
			t.Fatalf("shifted exponential produced %g < shift", x)
		}
	}
}

func TestTruncatedStaysInRange(t *testing.T) {
	d := Truncated{D: Normal{Mu: 0, Sigma: 100}, Lo: -1, Hi: 1}
	for _, x := range sampleMany(d, 5000, 4) {
		if x < -1 || x > 1 {
			t.Fatalf("truncated sample %g escaped", x)
		}
	}
}

func TestTruncatedDegenerateTerminates(t *testing.T) {
	// A distribution that can never hit the window must still terminate
	// (clamp fallback).
	d := Truncated{D: Normal{Mu: 1000, Sigma: 0.001}, Lo: 0, Hi: 1}
	x := d.Sample(rand.New(rand.NewSource(5)))
	if x != 1 {
		t.Fatalf("clamp fallback expected 1, got %g", x)
	}
}

func TestDistStrings(t *testing.T) {
	for _, d := range []Dist{Uniform{0, 1}, Normal{0, 1}, Exponential{1, 0}, Truncated{Uniform{0, 1}, 0, 1}} {
		if d.String() == "" {
			t.Fatalf("empty String() for %T", d)
		}
	}
}

func TestCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Fatalf("empty weights must fail")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Fatalf("negative weight must fail")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Fatalf("all-zero weights must fail")
	}
	if _, err := NewCategorical([]float64{1, math.NaN()}); err == nil {
		t.Fatalf("NaN weight must fail")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c := MustCategorical(1, 2, 7)
	rng := rand.New(rand.NewSource(6))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(rng)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %g, want ~%g", i, got, want)
		}
		if math.Abs(c.P(i)-want) > 1e-12 {
			t.Fatalf("P(%d) = %g", i, c.P(i))
		}
	}
}

func TestCategoricalNeverPicksZeroWeight(t *testing.T) {
	c := MustCategorical(0, 1, 0, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		got := c.Sample(rng)
		if got == 0 || got == 2 {
			t.Fatalf("sampled zero-weight category %d", got)
		}
	}
}

func TestUniformAndZipfCategorical(t *testing.T) {
	u := UniformCategorical(4)
	for i := 0; i < 4; i++ {
		if math.Abs(u.P(i)-0.25) > 1e-12 {
			t.Fatalf("uniform categorical P(%d) = %g", i, u.P(i))
		}
	}
	z := ZipfCategorical(5, 1)
	if z.Len() != 5 {
		t.Fatalf("Len = %d", z.Len())
	}
	for i := 1; i < 5; i++ {
		if z.P(i) >= z.P(i-1) {
			t.Fatalf("zipf weights must decrease: P(%d)=%g >= P(%d)=%g", i, z.P(i), i-1, z.P(i-1))
		}
	}
	if !strings.HasPrefix(z.String(), "categorical") {
		t.Fatalf("String = %q", z.String())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatalf("Clamp broken")
	}
}
