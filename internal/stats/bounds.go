package stats

import "math"

// This file implements the confidence-interval bounds the paper builds both
// its pruning criterion and its error-confidence measure on:
//
//	"rightBound(p, n) denotes the right bound of the confidence interval
//	 for the true probability of occurrence given the observed probability
//	 p and a sample size of n. The confidence level of this interval can
//	 be parameterized." (§5.1.2)
//
// We use one-sided Wilson score bounds, the standard choice for binomial
// proportions that remains well-behaved at p = 0 and p = 1 (exactly the
// regimes data auditing cares about: near-pure leaves and rare deviations).

// NormalQuantile returns the p-quantile of the standard normal
// distribution, computed with Peter Acklam's rational approximation
// (relative error < 1.15e-9; more than enough for confidence bounds).
// It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}

// wilson returns the center and half-width of the Wilson score interval for
// observed proportion p out of n trials at critical value z.
func wilson(p, n, z float64) (center, half float64) {
	if n <= 0 {
		// With no evidence at all, the interval is maximally wide.
		return 0.5, 0.5
	}
	z2 := z * z
	denom := 1 + z2/n
	center = (p + z2/(2*n)) / denom
	half = z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	return center, half
}

// LeftBound returns the lower one-sided Wilson bound on the true occurrence
// probability, given observed proportion p over a sample of size n, at the
// given one-sided confidence level (e.g. 0.95). This is the paper's
// leftBound(p, n).
func LeftBound(p, n, confidence float64) float64 {
	z := NormalQuantile(confidence)
	c, h := wilson(p, n, z)
	return math.Max(0, c-h)
}

// RightBound returns the upper one-sided Wilson bound; the paper's
// rightBound(p, n). C4.5's pessimistic error is RightBound(errorRate, n, 1-CF)
// with the default CF = 0.25.
func RightBound(p, n, confidence float64) float64 {
	z := NormalQuantile(confidence)
	c, h := wilson(p, n, z)
	return math.Min(1, c+h)
}

// ErrorConfidence is the paper's Definition 7: the error confidence with
// respect to one classifier, given the predicted class probability pHat,
// the observed class probability pObs, the supporting sample size n, and
// the confidence level of the interval:
//
//	errorConf(P, c) := max(0, leftBound(P(ĉ), n) − rightBound(P(c), n))
func ErrorConfidence(pHat, pObs, n, confidence float64) float64 {
	return math.Max(0, LeftBound(pHat, n, confidence)-RightBound(pObs, n, confidence))
}

// MinInstForConfidence computes the paper's minInst (§5.4): the minimal
// number of instances of one class that must occur in a leaf for that leaf
// to be able to flag an error with at least minConf error confidence. The
// best case is a pure leaf (observed majority probability 1, deviating
// class probability 0), so minInst is the smallest n with
// ErrorConfidence(1, 0, n, confidence) >= minConf.
//
// It returns at least 1. For unattainable minConf values (>= 1) it returns
// a large sentinel (1<<31 - 1), which effectively disables splitting.
func MinInstForConfidence(minConf, confidence float64) int {
	const sentinel = 1<<31 - 1
	if minConf <= 0 {
		return 1
	}
	if minConf >= 1 {
		return sentinel
	}
	// ErrorConfidence(1,0,n) is monotonically increasing in n; binary-search
	// the threshold. Upper limit 1e9 is far beyond any realistic leaf.
	lo, hi := 1, 1_000_000_000
	if ErrorConfidence(1, 0, float64(hi), confidence) < minConf {
		return sentinel
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if ErrorConfidence(1, 0, float64(mid), confidence) >= minConf {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
