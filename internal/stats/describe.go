package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of two equally long
// series, or 0 when either series is constant. The evaluation harness uses
// it to verify the paper's §6.1 claim that "the quality of correction is
// highly correlated to sensitivity".
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// GaussianPDF evaluates the normal density with the given mean and standard
// deviation at x; used by the naive-Bayes baseline for numeric attributes.
// A zero sigma degenerates to a narrow spike approximation.
func GaussianPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		sigma = 1e-9
	}
	d := (x - mu) / sigma
	return math.Exp(-0.5*d*d) / (sigma * math.Sqrt(2*math.Pi))
}
