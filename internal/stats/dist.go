// Package stats provides the statistical machinery the paper relies on:
// parameterizable sampling distributions for the test-data generator
// (§4.1.4: "Our system offers uniform, normal and exponential distributions
// that can be parameterized by the user"), one-sided confidence-interval
// bounds leftBound/rightBound used by both C4.5's pessimistic error (§5.1.2)
// and the error-confidence measure (Def. 7), entropy and information-gain
// helpers (§5.1.1), and equal-frequency discretization (§5: "these
// attributes are discretized into equal frequency bins").
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a continuous sampling distribution over float64.
type Dist interface {
	// Sample draws one value using the given source.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution's expectation (used in tests and for
	// correction heuristics).
	Mean() float64
	// String describes the distribution for logs and experiment reports.
	String() string
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// String implements Dist.
func (u Uniform) String() string { return fmt.Sprintf("uniform[%g,%g]", u.Lo, u.Hi) }

// Normal is the Gaussian distribution N(Mu, Sigma²).
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 { return n.Mu + n.Sigma*rng.NormFloat64() }

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// String implements Dist.
func (n Normal) String() string { return fmt.Sprintf("normal(%g,%g)", n.Mu, n.Sigma) }

// Exponential is the exponential distribution with the given rate,
// shifted by Shift (values are Shift + Exp(Rate)).
type Exponential struct {
	Rate  float64
	Shift float64
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 { return e.Shift + rng.ExpFloat64()/e.Rate }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.Shift + 1/e.Rate }

// String implements Dist.
func (e Exponential) String() string { return fmt.Sprintf("exp(rate=%g,shift=%g)", e.Rate, e.Shift) }

// Truncated clips another distribution into [Lo, Hi] by rejection sampling
// (falling back to clamping after maxRejects draws, so sampling always
// terminates even for badly mis-parameterized distributions).
type Truncated struct {
	D      Dist
	Lo, Hi float64
}

const maxRejects = 64

// Sample implements Dist.
func (t Truncated) Sample(rng *rand.Rand) float64 {
	for i := 0; i < maxRejects; i++ {
		v := t.D.Sample(rng)
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	return Clamp(t.D.Sample(rng), t.Lo, t.Hi)
}

// Mean implements Dist (approximation: the untruncated mean clamped to the
// interval; exact truncated means are not needed anywhere).
func (t Truncated) Mean() float64 { return Clamp(t.D.Mean(), t.Lo, t.Hi) }

// String implements Dist.
func (t Truncated) String() string { return fmt.Sprintf("trunc[%g,%g](%s)", t.Lo, t.Hi, t.D) }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Categorical is a discrete distribution over indices 0..len(W)-1 with
// unnormalized non-negative weights. It drives nominal start distributions
// for the test-data generator.
type Categorical struct {
	W   []float64
	cum []float64
}

// NewCategorical validates the weights and precomputes the cumulative sums.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: categorical distribution needs at least one weight")
	}
	c := &Categorical{W: weights, cum: make([]float64, len(weights))}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: categorical weight %d is %g", i, w)
		}
		total += w
		c.cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: categorical weights sum to %g", total)
	}
	return c, nil
}

// MustCategorical is NewCategorical but panics on error.
func MustCategorical(weights ...float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// UniformCategorical returns the uniform distribution over n categories.
func UniformCategorical(n int) *Categorical {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return MustCategorical(w...)
}

// ZipfCategorical returns a skewed categorical where weight(i) ∝ 1/(i+1)^s.
// Skewed nominal marginals are typical for code attributes in QUIS-like
// tables (a few very frequent codes, a long tail).
func ZipfCategorical(n int, s float64) *Categorical {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return MustCategorical(w...)
}

// Sample draws a category index.
func (c *Categorical) Sample(rng *rand.Rand) int {
	total := c.cum[len(c.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(c.cum, x)
	if i >= len(c.W) {
		i = len(c.W) - 1
	}
	// SearchFloat64s returns the first index with cum >= x; skip zero-weight
	// categories that share the same cumulative value.
	for i < len(c.W)-1 && c.W[i] == 0 {
		i++
	}
	return i
}

// P returns the normalized probability of category i.
func (c *Categorical) P(i int) float64 {
	return c.W[i] / c.cum[len(c.cum)-1]
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.W) }

// String implements fmt.Stringer.
func (c *Categorical) String() string { return fmt.Sprintf("categorical(%d)", len(c.W)) }
