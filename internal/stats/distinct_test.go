package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestKMVExactBelowCapacity(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 50; i++ {
		h := uint64(i)*2654435769 + 1
		s.Add(h)
		s.Add(h) // duplicates must not count
	}
	if got := s.Distinct(); got != 50 {
		t.Fatalf("Distinct = %d, want exact 50", got)
	}
	if s.Saturated() {
		t.Fatalf("sketch saturated at 50/64 hashes")
	}
	for i := 1; i < len(s.Hashes); i++ {
		if s.Hashes[i-1] >= s.Hashes[i] {
			t.Fatalf("Hashes not strictly sorted at %d: %d >= %d", i, s.Hashes[i-1], s.Hashes[i])
		}
	}
}

func TestKMVEstimateAtSaturation(t *testing.T) {
	s := NewKMV(256)
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	for i := 0; i < n; i++ {
		s.Add(rng.Uint64())
	}
	if !s.Saturated() {
		t.Fatalf("sketch not saturated after %d hashes", n)
	}
	got := float64(s.Distinct())
	if rel := math.Abs(got-n) / n; rel > 0.25 {
		t.Fatalf("Distinct = %.0f, want within 25%% of %d (rel err %.3f)", got, n, rel)
	}
}

// TestKMVMergeOrderInsensitive is the property the audit layer leans on:
// folding a hash stream through any partition and merge order yields a
// byte-identical sketch.
func TestKMVMergeOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hashes := make([]uint64, 5000)
	for i := range hashes {
		hashes[i] = rng.Uint64() % 3000 // force duplicates
	}

	whole := NewKMV(128)
	for _, h := range hashes {
		whole.Add(h)
	}

	for _, parts := range []int{2, 3, 7} {
		sketches := make([]*KMV, parts)
		for i := range sketches {
			sketches[i] = NewKMV(128)
		}
		for i, h := range hashes {
			sketches[i%parts].Add(h)
		}
		// Merge back-to-front to exercise a non-trivial order.
		merged := NewKMV(128)
		for i := parts - 1; i >= 0; i-- {
			merged.Merge(sketches[i])
		}
		if !reflect.DeepEqual(merged.Hashes, whole.Hashes) {
			t.Fatalf("parts=%d: merged sketch differs from whole-stream sketch", parts)
		}
	}
}

func TestKMVMergeEmptyAndClone(t *testing.T) {
	s := NewKMV(16)
	s.Add(3)
	s.Add(1)
	s.Merge(NewKMV(16)) // empty other is a no-op
	s.Merge(nil)
	if got := s.Distinct(); got != 2 {
		t.Fatalf("Distinct after empty merges = %d, want 2", got)
	}
	cp := s.Clone()
	cp.Add(2)
	if s.Distinct() != 2 || cp.Distinct() != 3 {
		t.Fatalf("Clone shares state: orig=%d copy=%d", s.Distinct(), cp.Distinct())
	}
	var nilSketch *KMV
	if nilSketch.Clone() != nil {
		t.Fatalf("nil Clone should stay nil")
	}
}

func TestKMVMergeCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Merge with differing K did not panic")
		}
	}()
	a, b := NewKMV(8), NewKMV(16)
	b.Add(1)
	a.Merge(b)
}

func TestKMVDefaultCapacity(t *testing.T) {
	if s := NewKMV(0); s.K != DefaultKMVSize {
		t.Fatalf("NewKMV(0).K = %d, want %d", s.K, DefaultKMVSize)
	}
}

func TestKMVEvictsMaximum(t *testing.T) {
	s := NewKMV(4)
	for _, h := range []uint64{40, 30, 20, 10} {
		s.Add(h)
	}
	s.Add(50) // above max at saturation: rejected
	if want := []uint64{10, 20, 30, 40}; !reflect.DeepEqual(s.Hashes, want) {
		t.Fatalf("Hashes = %v, want %v", s.Hashes, want)
	}
	s.Add(5) // below max: evicts 40
	if want := []uint64{5, 10, 20, 30}; !reflect.DeepEqual(s.Hashes, want) {
		t.Fatalf("Hashes after evicting insert = %v, want %v", s.Hashes, want)
	}
	s.Add(10) // duplicate at saturation: no-op
	if want := []uint64{5, 10, 20, 30}; !reflect.DeepEqual(s.Hashes, want) {
		t.Fatalf("Hashes after duplicate insert = %v, want %v", s.Hashes, want)
	}
}
