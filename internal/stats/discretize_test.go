package stats

import (
	"math/rand"
	"testing"
)

func TestDiscretizerErrors(t *testing.T) {
	if _, err := NewEqualFrequency(nil, 3); err == nil {
		t.Fatalf("empty input must fail")
	}
	if _, err := NewEqualFrequency([]float64{1}, 0); err == nil {
		t.Fatalf("zero bins must fail")
	}
}

func TestDiscretizerSingleBin(t *testing.T) {
	d, err := NewEqualFrequency([]float64{3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBins() != 1 {
		t.Fatalf("NumBins = %d", d.NumBins())
	}
	if d.Bin(-100) != 0 || d.Bin(100) != 0 {
		t.Fatalf("single bin must swallow everything")
	}
	if d.Rep(0) != 2 {
		t.Fatalf("median rep = %g, want 2", d.Rep(0))
	}
}

func TestDiscretizerEqualFrequency(t *testing.T) {
	values := make([]float64, 1000)
	rng := rand.New(rand.NewSource(31))
	for i := range values {
		values[i] = rng.Float64() * 100
	}
	d, err := NewEqualFrequency(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBins() != 4 {
		t.Fatalf("NumBins = %d, want 4", d.NumBins())
	}
	counts := make([]int, 4)
	for _, v := range values {
		counts[d.Bin(v)]++
	}
	for b, c := range counts {
		if c < 200 || c > 300 {
			t.Fatalf("bin %d has %d values; equal-frequency violated: %v", b, c, counts)
		}
	}
}

func TestDiscretizerMonotoneBins(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	d, err := NewEqualFrequency(values, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, v := range values {
		b := d.Bin(v)
		if b < prev {
			t.Fatalf("bins must be monotone in the value")
		}
		prev = b
	}
}

func TestDiscretizerHeavyTies(t *testing.T) {
	// 90% of the data is the single value 5: cuts collapse, fewer bins result.
	values := make([]float64, 100)
	for i := range values {
		if i < 90 {
			values[i] = 5
		} else {
			values[i] = float64(i)
		}
	}
	d, err := NewEqualFrequency(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBins() > 4 || d.NumBins() < 1 {
		t.Fatalf("NumBins = %d", d.NumBins())
	}
	// All the tied values land in one bin.
	b := d.Bin(5)
	for i := 0; i < 90; i++ {
		if d.Bin(values[i]) != b {
			t.Fatalf("tied values scattered across bins")
		}
	}
}

func TestDiscretizerRepsAreWithinBins(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	values := make([]float64, 500)
	for i := range values {
		values[i] = rng.NormFloat64() * 50
	}
	d, err := NewEqualFrequency(values, 6)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < d.NumBins(); b++ {
		if got := d.Bin(d.Rep(b)); got != b {
			t.Fatalf("representative of bin %d maps to bin %d", b, got)
		}
	}
}

func TestDiscretizerLabels(t *testing.T) {
	d, err := NewEqualFrequency([]float64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	labels := d.Labels(func(f float64) string { return "X" })
	if len(labels) != d.NumBins() {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] != "(-inf,X]" || labels[len(labels)-1] != "(X,+inf)" {
		t.Fatalf("label format: %v", labels)
	}
	d1, _ := NewEqualFrequency([]float64{1, 1, 1}, 3)
	if got := d1.Labels(func(float64) string { return "" }); len(got) != 1 || got[0] != "(-inf,+inf)" {
		t.Fatalf("degenerate labels: %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); r < 0.9999 {
		t.Fatalf("perfect correlation r = %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); r > -0.9999 {
		t.Fatalf("perfect anti-correlation r = %g", r)
	}
	if r := Pearson(xs, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Fatalf("constant series r = %g, want 0", r)
	}
	if r := Pearson(xs, ys[:3]); r != 0 {
		t.Fatalf("length mismatch should give 0")
	}
}

func TestGaussianPDF(t *testing.T) {
	p := GaussianPDF(0, 0, 1)
	if p < 0.398 || p > 0.399 {
		t.Fatalf("standard normal density at 0 = %g", p)
	}
	if GaussianPDF(0, 0, 0) <= 0 {
		t.Fatalf("degenerate sigma must still give positive density")
	}
	if GaussianPDF(5, 0, 1) >= GaussianPDF(0, 0, 1) {
		t.Fatalf("density must decay away from mean")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %g", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %g", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %g", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatalf("degenerate inputs")
	}
}
