package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.75, 0.674490},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.001, -3.090232},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		p := math.Abs(math.Mod(x, 1))
		if p <= 0.0001 || p >= 0.9999 {
			return true
		}
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-8
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%g) must panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestWilsonBoundsOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		p := rng.Float64()
		n := float64(1 + rng.Intn(100000))
		conf := 0.5 + rng.Float64()*0.49
		lo := LeftBound(p, n, conf)
		hi := RightBound(p, n, conf)
		if !(lo >= 0 && lo <= 1 && hi >= 0 && hi <= 1) {
			t.Fatalf("bounds escape [0,1]: lo=%g hi=%g (p=%g n=%g)", lo, hi, p, n)
		}
		if lo > hi {
			t.Fatalf("leftBound %g > rightBound %g (p=%g n=%g conf=%g)", lo, hi, p, n, conf)
		}
		// The Wilson interval always contains the observed proportion.
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Fatalf("observed p=%g outside [%g,%g] (n=%g conf=%g)", p, lo, hi, n, conf)
		}
	}
}

func TestWilsonBoundsShrinkWithN(t *testing.T) {
	prevWidth := math.Inf(1)
	for _, n := range []float64{1, 10, 100, 1000, 10000, 100000} {
		w := RightBound(0.3, n, 0.95) - LeftBound(0.3, n, 0.95)
		if w >= prevWidth {
			t.Fatalf("interval width must shrink with n: n=%g width=%g prev=%g", n, w, prevWidth)
		}
		prevWidth = w
	}
}

func TestWilsonBoundsAtExtremes(t *testing.T) {
	// At p=1 the left bound must stay strictly below 1 for finite n
	// (that's what makes small pure leaves weak evidence).
	if lb := LeftBound(1, 5, 0.95); lb >= 1 || lb <= 0 {
		t.Fatalf("LeftBound(1, 5) = %g", lb)
	}
	// At p=0 the right bound must stay strictly above 0 for finite n.
	if rb := RightBound(0, 5, 0.95); rb <= 0 || rb >= 1 {
		t.Fatalf("RightBound(0, 5) = %g", rb)
	}
	// And both converge with n -> infinity.
	if lb := LeftBound(1, 1e9, 0.95); lb < 0.9999 {
		t.Fatalf("LeftBound(1, 1e9) = %g, should approach 1", lb)
	}
	if rb := RightBound(0, 1e9, 0.95); rb > 0.0001 {
		t.Fatalf("RightBound(0, 1e9) = %g, should approach 0", rb)
	}
}

func TestWilsonZeroSampleIsVacuous(t *testing.T) {
	if lb := LeftBound(0.7, 0, 0.95); lb != 0 {
		t.Fatalf("LeftBound with n=0 = %g, want 0", lb)
	}
	if rb := RightBound(0.7, 0, 0.95); rb != 1 {
		t.Fatalf("RightBound with n=0 = %g, want 1", rb)
	}
}

func TestErrorConfidenceBasics(t *testing.T) {
	// Identical observed and predicted probabilities: no error evidence.
	if ec := ErrorConfidence(0.5, 0.5, 1000, 0.95); ec != 0 {
		t.Fatalf("equal probabilities must give 0, got %g", ec)
	}
	// Strong contrast on a large sample: confidence near 1.
	if ec := ErrorConfidence(1, 0, 100000, 0.95); ec < 0.99 {
		t.Fatalf("perfect contrast on 100k samples gives %g", ec)
	}
	// Same contrast on a tiny sample: much weaker.
	small := ErrorConfidence(1, 0, 5, 0.95)
	large := ErrorConfidence(1, 0, 5000, 0.95)
	if small >= large {
		t.Fatalf("error confidence must grow with sample size: %g >= %g", small, large)
	}
}

func TestErrorConfidenceMatchesPaperExample(t *testing.T) {
	// §6.2: rule BRV=404 -> GBM=901 based on 16118 instances with exactly
	// one deviation is assigned an error confidence of 99.95%.
	n := 16118.0
	ec := ErrorConfidence((n-1)/n, 1/n, n, 0.95)
	if math.Abs(ec-0.9995) > 0.0005 {
		t.Fatalf("paper example: error confidence = %.6f, want ~0.9995", ec)
	}
}

func TestErrorConfidenceNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 5000; i++ {
		pHat := rng.Float64()
		pObs := rng.Float64()
		n := float64(rng.Intn(100000))
		ec := ErrorConfidence(pHat, pObs, n, 0.95)
		if ec < 0 || ec > 1 {
			t.Fatalf("errorConf out of [0,1]: %g", ec)
		}
		if pObs >= pHat && ec != 0 {
			t.Fatalf("observed >= predicted must give 0 confidence, got %g (pHat=%g pObs=%g)", ec, pHat, pObs)
		}
	}
}

func TestMinInstForConfidence(t *testing.T) {
	mi := MinInstForConfidence(0.8, 0.95)
	if mi < 2 {
		t.Fatalf("minInst for 80%% = %d, suspiciously small", mi)
	}
	// Verify the defining property: mi reaches the confidence, mi-1 doesn't.
	if ErrorConfidence(1, 0, float64(mi), 0.95) < 0.8 {
		t.Fatalf("minInst %d does not reach 0.8", mi)
	}
	if ErrorConfidence(1, 0, float64(mi-1), 0.95) >= 0.8 {
		t.Fatalf("minInst-1 = %d already reaches 0.8", mi-1)
	}
	if MinInstForConfidence(0, 0.95) != 1 {
		t.Fatalf("minConf 0 should give 1")
	}
	if MinInstForConfidence(1, 0.95) != 1<<31-1 {
		t.Fatalf("minConf 1 should give sentinel")
	}
	// Higher thresholds need more instances.
	if MinInstForConfidence(0.95, 0.95) <= mi {
		t.Fatalf("minInst must grow with minConf")
	}
}
