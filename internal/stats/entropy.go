package stats

import "math"

// Entropy returns the Shannon entropy (base 2) of a histogram of
// non-negative class counts; the paper's entr(S) (§5.1.1). Zero counts
// contribute nothing; an empty or all-zero histogram has entropy 0.
func Entropy(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// InfoGain computes the expected entropy loss of partitioning a parent
// histogram into the given child histograms; the paper's info-gain(S, A).
// Children must partition the parent (this is not checked; callers in
// internal/c45 guarantee it by construction).
func InfoGain(parent []float64, children [][]float64) float64 {
	parentTotal := 0.0
	for _, c := range parent {
		parentTotal += c
	}
	if parentTotal <= 0 {
		return 0
	}
	expected := 0.0
	for _, child := range children {
		childTotal := 0.0
		for _, c := range child {
			childTotal += c
		}
		if childTotal > 0 {
			expected += childTotal / parentTotal * Entropy(child)
		}
	}
	return Entropy(parent) - expected
}

// SplitInfo computes C4.5's split information for branch sizes; the paper's
// split-info(S, A) (§5.1.2). sizes are the (weighted) branch cardinalities.
func SplitInfo(sizes []float64) float64 {
	return Entropy(sizes)
}

// GainRatio divides information gain by split information, C4.5's remedy
// against the many-valued-attribute bias of plain information gain. When
// split information is ~0 (a degenerate split), it returns 0.
func GainRatio(gain float64, sizes []float64) float64 {
	si := SplitInfo(sizes)
	if si < 1e-12 {
		return 0
	}
	return gain / si
}
