package stats

import (
	"fmt"
	"sort"
)

// Discretizer maps a continuous value to one of k bins. The paper uses
// equal-frequency binning to let C4.5 induce "decision trees for numerical
// class attributes" (§5): the class attribute is discretized before
// induction, and bin representatives serve as proposed corrections.
type Discretizer struct {
	// Cuts are the k-1 ascending cut points; value v falls into the first
	// bin i with v <= Cuts[i], or bin k-1 if it exceeds every cut.
	Cuts []float64
	// Reps are per-bin representative values (the median of the training
	// values that fell into the bin), used when a bin prediction must be
	// turned back into a concrete corrected value (§5.3).
	Reps []float64
}

// NewEqualFrequency builds a discretizer with (up to) k equal-frequency
// bins from the given training values. Duplicate cut candidates are merged,
// so heavily tied data may yield fewer than k bins. Values must be non-empty.
func NewEqualFrequency(values []float64, k int) (*Discretizer, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: cannot discretize zero values")
	}
	if k < 1 {
		return nil, fmt.Errorf("stats: need at least one bin, got %d", k)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)

	var cuts []float64
	n := len(sorted)
	for i := 1; i < k; i++ {
		// Cut after the i-th equal-frequency block.
		pos := i * n / k
		if pos <= 0 || pos >= n {
			continue
		}
		cut := (sorted[pos-1] + sorted[pos]) / 2
		// Merge duplicate / non-increasing cuts caused by ties.
		if len(cuts) == 0 || cut > cuts[len(cuts)-1] {
			if sorted[pos-1] < sorted[pos] {
				cuts = append(cuts, cut)
			}
		}
	}
	d := &Discretizer{Cuts: cuts}
	d.computeReps(sorted)
	return d, nil
}

func (d *Discretizer) computeReps(sorted []float64) {
	k := d.NumBins()
	buckets := make([][]float64, k)
	for _, v := range sorted {
		b := d.Bin(v)
		buckets[b] = append(buckets[b], v)
	}
	d.Reps = make([]float64, k)
	for i, bucket := range buckets {
		switch {
		case len(bucket) == 0:
			// Empty bin (possible only at the extremes with pathological
			// data): fall back to the nearest cut.
			if i < len(d.Cuts) {
				d.Reps[i] = d.Cuts[i]
			} else if len(d.Cuts) > 0 {
				d.Reps[i] = d.Cuts[len(d.Cuts)-1]
			}
		default:
			d.Reps[i] = bucket[len(bucket)/2] // median (bucket is sorted)
		}
	}
}

// NumBins returns the number of bins (len(Cuts)+1).
func (d *Discretizer) NumBins() int { return len(d.Cuts) + 1 }

// Bin maps a value to its bin index in [0, NumBins()).
func (d *Discretizer) Bin(v float64) int {
	return sort.SearchFloat64s(d.Cuts, v)
}

// Rep returns the representative value of bin b.
func (d *Discretizer) Rep(b int) float64 { return d.Reps[b] }

// Labels renders human-readable interval labels for each bin, using the
// format function (e.g. an Attribute's number formatting).
func (d *Discretizer) Labels(format func(float64) string) []string {
	k := d.NumBins()
	labels := make([]string, k)
	for i := 0; i < k; i++ {
		switch {
		case k == 1:
			labels[i] = "(-inf,+inf)"
		case i == 0:
			labels[i] = fmt.Sprintf("(-inf,%s]", format(d.Cuts[0]))
		case i == k-1:
			labels[i] = fmt.Sprintf("(%s,+inf)", format(d.Cuts[i-1]))
		default:
			labels[i] = fmt.Sprintf("(%s,%s]", format(d.Cuts[i-1]), format(d.Cuts[i]))
		}
	}
	return labels
}
