package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEntropyKnownValues(t *testing.T) {
	cases := []struct {
		counts []float64
		want   float64
	}{
		{[]float64{1, 1}, 1},
		{[]float64{1, 1, 1, 1}, 2},
		{[]float64{10, 0}, 0},
		{[]float64{}, 0},
		{[]float64{0, 0}, 0},
		{[]float64{3, 1}, 0.811278},
	}
	for _, c := range cases {
		if got := Entropy(c.counts); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Entropy(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		k := 1 + rng.Intn(10)
		counts := make([]float64, k)
		for j := range counts {
			counts[j] = rng.Float64() * 100
		}
		h := Entropy(counts)
		if h < 0 || h > math.Log2(float64(k))+1e-9 {
			t.Fatalf("entropy %g outside [0, log2(%d)]", h, k)
		}
	}
}

func TestInfoGainPerfectSplit(t *testing.T) {
	parent := []float64{5, 5}
	children := [][]float64{{5, 0}, {0, 5}}
	if g := InfoGain(parent, children); math.Abs(g-1) > 1e-9 {
		t.Fatalf("perfect split gain = %g, want 1", g)
	}
}

func TestInfoGainUselessSplit(t *testing.T) {
	parent := []float64{6, 6}
	children := [][]float64{{3, 3}, {3, 3}}
	if g := InfoGain(parent, children); math.Abs(g) > 1e-9 {
		t.Fatalf("useless split gain = %g, want 0", g)
	}
}

func TestInfoGainNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		k := 2 + rng.Intn(4)
		branches := 2 + rng.Intn(4)
		children := make([][]float64, branches)
		parent := make([]float64, k)
		for b := range children {
			children[b] = make([]float64, k)
			for j := range children[b] {
				v := float64(rng.Intn(20))
				children[b][j] = v
				parent[j] += v
			}
		}
		if g := InfoGain(parent, children); g < -1e-9 {
			t.Fatalf("info gain negative: %g", g)
		}
	}
}

func TestInfoGainEmptyParent(t *testing.T) {
	if g := InfoGain([]float64{0, 0}, nil); g != 0 {
		t.Fatalf("empty parent gain = %g", g)
	}
}

func TestGainRatio(t *testing.T) {
	// Balanced binary split: splitInfo = 1, so ratio == gain.
	sizes := []float64{5, 5}
	if gr := GainRatio(0.5, sizes); math.Abs(gr-0.5) > 1e-9 {
		t.Fatalf("GainRatio = %g, want 0.5", gr)
	}
	// Degenerate split: everything in one branch -> ratio forced to 0.
	if gr := GainRatio(0.5, []float64{10, 0}); gr != 0 {
		t.Fatalf("degenerate split ratio = %g, want 0", gr)
	}
}

func TestSplitInfoMatchesEntropy(t *testing.T) {
	sizes := []float64{2, 6}
	if SplitInfo(sizes) != Entropy(sizes) {
		t.Fatalf("SplitInfo must equal Entropy of branch sizes")
	}
}
