package bayesnet

import (
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

func netSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("weather", "sunny", "rainy"),
		dataset.NewNominal("sprinkler", "on", "off"),
		dataset.NewNominal("grass", "wet", "dry"),
		dataset.NewNumeric("unrelated", 0, 1),
	)
}

// sprinklerNet builds the classic sprinkler network:
// weather -> sprinkler, (weather, sprinkler) -> grass.
func sprinklerNet(t *testing.T) *Network {
	t.Helper()
	s := netSchema(t)
	nodes := []*Node{
		{Attr: 0, CPT: []*stats.Categorical{stats.MustCategorical(0.7, 0.3)}},
		{Attr: 1, Parents: []int{0}, CPT: []*stats.Categorical{
			stats.MustCategorical(0.2, 0.8), // sunny
			stats.MustCategorical(0.05, 0.95),
		}},
		{Attr: 2, Parents: []int{0, 1}, CPT: []*stats.Categorical{
			stats.MustCategorical(0.9, 0.1),   // sunny, on
			stats.MustCategorical(0.05, 0.95), // sunny, off
			stats.MustCategorical(0.99, 0.01), // rainy, on
			stats.MustCategorical(0.85, 0.15), // rainy, off
		}},
	}
	net, err := New(s, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestValidationErrors(t *testing.T) {
	s := netSchema(t)
	uni := []*stats.Categorical{stats.MustCategorical(1, 1)}
	cases := []struct {
		name  string
		nodes []*Node
	}{
		{"attr out of range", []*Node{{Attr: 99, CPT: uni}}},
		{"non-nominal attr", []*Node{{Attr: 3, CPT: uni}}},
		{"duplicate attr", []*Node{{Attr: 0, CPT: uni}, {Attr: 0, CPT: uni}}},
		{"self parent", []*Node{{Attr: 0, Parents: []int{0}, CPT: uni}}},
		{"parent out of range", []*Node{{Attr: 0, Parents: []int{5}, CPT: uni}}},
		{"wrong CPT rows", []*Node{{Attr: 0, Parents: nil, CPT: []*stats.Categorical{}}}},
		{"wrong row arity", []*Node{{Attr: 0, CPT: []*stats.Categorical{stats.MustCategorical(1, 1, 1)}}}},
		{"nil row", []*Node{{Attr: 0, CPT: []*stats.Categorical{nil}}}},
		{"cycle", []*Node{
			{Attr: 0, Parents: []int{1}, CPT: make2rows()},
			{Attr: 1, Parents: []int{0}, CPT: make2rows()},
		}},
	}
	for _, c := range cases {
		if _, err := New(s, c.nodes); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func make2rows() []*stats.Categorical {
	return []*stats.Categorical{stats.MustCategorical(1, 1), stats.MustCategorical(1, 1)}
}

func TestCovers(t *testing.T) {
	net := sprinklerNet(t)
	if !net.Covers(0) || !net.Covers(2) || net.Covers(3) {
		t.Fatalf("Covers broken")
	}
}

func TestSamplingMarginals(t *testing.T) {
	net := sprinklerNet(t)
	rng := rand.New(rand.NewSource(41))
	const n = 200000
	row := make([]dataset.Value, 4)
	sunny, grassWetGivenRainyOff := 0, 0
	rainyOff := 0
	for i := 0; i < n; i++ {
		net.Sample(rng, row)
		if row[0].NomIdx() == 0 {
			sunny++
		}
		if row[0].NomIdx() == 1 && row[1].NomIdx() == 1 {
			rainyOff++
			if row[2].NomIdx() == 0 {
				grassWetGivenRainyOff++
			}
		}
	}
	if p := float64(sunny) / n; math.Abs(p-0.7) > 0.01 {
		t.Fatalf("P(sunny) = %g, want ~0.7", p)
	}
	if p := float64(grassWetGivenRainyOff) / float64(rainyOff); math.Abs(p-0.85) > 0.02 {
		t.Fatalf("P(wet | rainy, off) = %g, want ~0.85", p)
	}
}

func TestSampleOnlyTouchesCoveredAttrs(t *testing.T) {
	net := sprinklerNet(t)
	row := make([]dataset.Value, 4)
	row[3] = dataset.Num(0.5)
	net.Sample(rand.New(rand.NewSource(42)), row)
	if row[3].Float() != 0.5 {
		t.Fatalf("sampling touched an uncovered attribute")
	}
	for i := 0; i < 3; i++ {
		if row[i].IsNull() {
			t.Fatalf("covered attribute %d not sampled", i)
		}
	}
}

func TestTopologicalOrderRespected(t *testing.T) {
	// Nodes intentionally listed child-first; sampling must still work.
	s := netSchema(t)
	nodes := []*Node{
		{Attr: 2, Parents: []int{1}, CPT: make2rows()},
		{Attr: 1, Parents: []int{2 /* index of node modelling weather */}, CPT: make2rows()},
		{Attr: 0, CPT: []*stats.Categorical{stats.MustCategorical(1, 1)}},
	}
	net, err := New(s, nodes)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]dataset.Value, 4)
	net.Sample(rand.New(rand.NewSource(43)), row) // must not panic
}

func TestFitRecoversCPT(t *testing.T) {
	// Generate data from a known net, fit the same structure, compare CPTs.
	net := sprinklerNet(t)
	s := net.Schema
	table := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(44))
	row := make([]dataset.Value, 4)
	for i := 0; i < 100000; i++ {
		net.Sample(rng, row)
		row[3] = dataset.Num(0)
		table.AppendRow(row)
	}
	structure := []*Node{
		{Attr: 0},
		{Attr: 1, Parents: []int{0}},
		{Attr: 2, Parents: []int{0, 1}},
	}
	fitted, err := Fit(s, table, structure, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range fitted.Nodes {
		for r, row := range node.CPT {
			for j := 0; j < row.Len(); j++ {
				want := net.Nodes[i].CPT[r].P(j)
				got := row.P(j)
				if math.Abs(got-want) > 0.02 {
					t.Fatalf("node %d row %d category %d: fitted %g, true %g", i, r, j, got, want)
				}
			}
		}
	}
}

func TestFitSkipsNulls(t *testing.T) {
	s := netSchema(t)
	table := dataset.NewTable(s)
	row := []dataset.Value{dataset.Nom(0), dataset.Null(), dataset.Nom(1), dataset.Num(0)}
	for i := 0; i < 10; i++ {
		table.AppendRow(row)
	}
	structure := []*Node{{Attr: 0}, {Attr: 1, Parents: []int{0}}, {Attr: 2, Parents: []int{1}}}
	fitted, err := Fit(s, table, structure, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Attribute 1 is always null: its CPT must fall back to the Laplace
	// prior (uniform).
	if p := fitted.Nodes[1].CPT[0].P(0); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("null-only attribute should fit to the prior, got %g", p)
	}
}

func TestFitRejectsNonNominal(t *testing.T) {
	s := netSchema(t)
	table := dataset.NewTable(s)
	if _, err := Fit(s, table, []*Node{{Attr: 3}}, 1); err == nil {
		t.Fatalf("fitting a numeric attribute must fail")
	}
}
