// Package bayesnet implements discrete Bayesian networks used by the
// test-data generator for "the intuitive specification of multivariate
// start distributions based on the graphical representation of stochastic
// dependencies among attributes" (§4.1.4 of the paper).
//
// A Network covers a subset of the nominal attributes of a schema. Each
// node carries a conditional probability table (CPT) over its attribute's
// domain, indexed by the joint configuration of its parents. Sampling is
// ancestral: nodes are visited in topological order, each drawing from the
// CPT row selected by its already-sampled parents.
package bayesnet

import (
	"fmt"
	"math/rand"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Node is one vertex of the network.
type Node struct {
	// Attr is the column index of the nominal attribute this node models.
	Attr int
	// Parents are node indices (into Network.Nodes) of this node's parents.
	Parents []int
	// CPT has one Categorical row per joint parent configuration. Rows are
	// indexed by mixed-radix encoding: with parents p1..pk having domain
	// sizes n1..nk, configuration (v1..vk) maps to ((v1*n2+v2)*n3+v3)...
	CPT []*stats.Categorical
}

// Network is a DAG of nodes over a schema.
type Network struct {
	Schema *dataset.Schema
	Nodes  []*Node

	order []int // topological order of node indices, computed by Validate
}

// New builds a network and validates it.
func New(schema *dataset.Schema, nodes []*Node) (*Network, error) {
	n := &Network{Schema: schema, Nodes: nodes}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// numConfigs returns the number of joint parent configurations of node i.
func (n *Network) numConfigs(i int) int {
	c := 1
	for _, p := range n.Nodes[i].Parents {
		c *= n.Schema.Attr(n.Nodes[p].Attr).NumValues()
	}
	return c
}

// configIndex computes the CPT row index for the sampled parent values of
// node i (values indexed per node position).
func (n *Network) configIndex(i int, sampled []int) int {
	idx := 0
	for _, p := range n.Nodes[i].Parents {
		size := n.Schema.Attr(n.Nodes[p].Attr).NumValues()
		idx = idx*size + sampled[p]
	}
	return idx
}

// Validate checks that the graph is a DAG over nominal attributes, that no
// attribute is modelled twice, and that every CPT has the right shape. It
// also caches the topological order used by Sample.
func (n *Network) Validate() error {
	seen := make(map[int]bool)
	for i, node := range n.Nodes {
		if node.Attr < 0 || node.Attr >= n.Schema.Len() {
			return fmt.Errorf("bayesnet: node %d references attribute %d outside the schema", i, node.Attr)
		}
		attr := n.Schema.Attr(node.Attr)
		if attr.Type != dataset.NominalType {
			return fmt.Errorf("bayesnet: node %d models non-nominal attribute %s", i, attr.Name)
		}
		if seen[node.Attr] {
			return fmt.Errorf("bayesnet: attribute %s modelled by more than one node", attr.Name)
		}
		seen[node.Attr] = true
		for _, p := range node.Parents {
			if p < 0 || p >= len(n.Nodes) {
				return fmt.Errorf("bayesnet: node %d has out-of-range parent %d", i, p)
			}
			if p == i {
				return fmt.Errorf("bayesnet: node %d is its own parent", i)
			}
		}
		want := n.numConfigs(i)
		if len(node.CPT) != want {
			return fmt.Errorf("bayesnet: node %d (attr %s) has %d CPT rows, want %d", i, attr.Name, len(node.CPT), want)
		}
		for r, row := range node.CPT {
			if row == nil {
				return fmt.Errorf("bayesnet: node %d CPT row %d is nil", i, r)
			}
			if row.Len() != attr.NumValues() {
				return fmt.Errorf("bayesnet: node %d CPT row %d has %d categories, want %d", i, r, row.Len(), attr.NumValues())
			}
		}
	}
	order, err := n.topoSort()
	if err != nil {
		return err
	}
	n.order = order
	return nil
}

// topoSort returns a topological order of node indices or an error if the
// graph has a cycle.
func (n *Network) topoSort() ([]int, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(n.Nodes))
	order := make([]int, 0, len(n.Nodes))
	var visit func(i int) error
	visit = func(i int) error {
		switch color[i] {
		case gray:
			return fmt.Errorf("bayesnet: dependency cycle through node %d", i)
		case black:
			return nil
		}
		color[i] = gray
		for _, p := range n.Nodes[i].Parents {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[i] = black
		order = append(order, i)
		return nil
	}
	for i := range n.Nodes {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Sample draws one joint configuration and writes it into row (a full
// schema-width row; only the attributes covered by the network are
// touched). It returns the per-node sampled domain indices.
func (n *Network) Sample(rng *rand.Rand, row []dataset.Value) []int {
	sampled := make([]int, len(n.Nodes))
	for _, i := range n.order {
		node := n.Nodes[i]
		rowIdx := n.configIndex(i, sampled)
		v := node.CPT[rowIdx].Sample(rng)
		sampled[i] = v
		row[node.Attr] = dataset.Nom(v)
	}
	return sampled
}

// Covers reports whether the network models the given attribute index.
func (n *Network) Covers(attr int) bool {
	for _, node := range n.Nodes {
		if node.Attr == attr {
			return true
		}
	}
	return false
}

// Fit estimates a network with the given structure (node attrs + parent
// lists) from data using Laplace-smoothed maximum likelihood. It is used by
// the QUIS domain simulator to derive realistic multivariate distributions
// from a seed table.
func Fit(schema *dataset.Schema, table *dataset.Table, structure []*Node, laplace float64) (*Network, error) {
	nodes := make([]*Node, len(structure))
	for i, st := range structure {
		nodes[i] = &Node{Attr: st.Attr, Parents: st.Parents}
	}
	net := &Network{Schema: schema, Nodes: nodes}
	// Shape-validate without CPTs first (build empty CPTs to pass checks).
	for i, node := range nodes {
		k := schema.Attr(node.Attr).NumValues()
		if k == 0 {
			return nil, fmt.Errorf("bayesnet: Fit on non-nominal attribute %d", node.Attr)
		}
		rows := net.numConfigs(i)
		counts := make([][]float64, rows)
		for r := range counts {
			counts[r] = make([]float64, k)
			for j := range counts[r] {
				counts[r][j] = laplace
			}
		}
		for r := 0; r < table.NumRows(); r++ {
			v := table.Get(r, node.Attr)
			if v.IsNull() {
				continue
			}
			// Build the parent configuration from the same record; skip if
			// any parent is null.
			idx, ok := 0, true
			for _, p := range node.Parents {
				pv := table.Get(r, nodes[p].Attr)
				if pv.IsNull() {
					ok = false
					break
				}
				size := schema.Attr(nodes[p].Attr).NumValues()
				idx = idx*size + pv.NomIdx()
			}
			if !ok {
				continue
			}
			counts[idx][v.NomIdx()]++
		}
		node.CPT = make([]*stats.Categorical, rows)
		for r := range counts {
			cat, err := stats.NewCategorical(counts[r])
			if err != nil {
				return nil, fmt.Errorf("bayesnet: node %d row %d: %w", i, r, err)
			}
			node.CPT[r] = cat
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
