package monitor

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/obs"
	"dataaudit/internal/registry"
)

// Options configure a Monitor.
type Options struct {
	// WindowRows is the snapshot granularity: a window seals once at least
	// this many audited rows accumulated (default 1024). Windows are
	// counted in rows, not wall time, so snapshot history is a
	// deterministic function of the observation sequence.
	WindowRows int64
	// MaxSnapshots bounds the retained snapshot history per model
	// (default 128; oldest dropped first).
	MaxSnapshots int
	// MaxEvents bounds the retained lifecycle events per model
	// (default 256; oldest dropped first).
	MaxEvents int
	// DriftDelta is the threshold detector: drift fires when a sealed
	// window's suspicious rate exceeds the baseline rate by more than this.
	// Zero or negative selects the default 0.10 (as everywhere in this
	// struct — there is no "fire on any excess" zero setting; use a tiny
	// positive delta for that).
	DriftDelta float64
	// PHDelta and PHLambda parameterize the Page-Hinkley cumulative test
	// over the window suspicious-rate series (defaults 0.005 and 0.25;
	// zero or negative selects the default).
	PHDelta, PHLambda float64
	// NullDelta is the completeness detector: an attribute drifts when a
	// sealed window's null rate exceeds the attribute's baseline null
	// rate by more than this (default 0.05). Completeness drift is
	// reported — an event, the latched attribute list, a metric — but
	// never triggers re-induction: missing values are an ingestion
	// problem, and re-inducing on them would teach the model that nulls
	// are normal.
	NullDelta float64
	// MinWindows is the number of sealed windows required since the
	// baseline before either detector may fire (default 2) — a warm-up
	// against alarming on the very first partial view of the data.
	MinWindows int
	// ReservoirRows caps the uniform row sample kept for re-induction
	// (default 4096).
	ReservoirRows int
	// MinReinduceRows is the smallest reservoir that may be re-induced
	// from (default 128); with fewer rows a drift only emits events.
	MinReinduceRows int
	// AutoReinduce enables drift-triggered re-induction: on drift the
	// monitor induces a successor from the reservoir in a background
	// worker and publishes it as the next version through the registry's
	// atomic publish path. The induction runs outside the model's
	// monitoring lock, so concurrent audits of a drifting model never
	// stall behind it (see worker.go).
	AutoReinduce bool
	// ReinduceMode selects how a partial re-induction rebuilds the drifted
	// attributes: "incremental" (default — frozen discretizer bins, warm
	// starts, tally refreshes) or "full" (each drifted attribute re-induced
	// from scratch). Matches audit.ReinduceMode.
	ReinduceMode string
	// DisablePartialReinduce forces every drift-triggered re-induction to
	// rebuild the whole model with audit.Induce even when the per-attribute
	// detectors attributed the drift — the pre-incremental behaviour. The
	// zero value keeps partial re-induction on.
	DisablePartialReinduce bool
	// StateDir, when non-empty, makes monitoring state crash-durable:
	// snapshots, events, drift-detector state and the re-induction
	// reservoir are serialized atomically (temp file + rename, versioned
	// envelope) into this directory on every window close and on
	// SaveAll/Close, and reloaded lazily at the next boot so quality
	// history survives process restarts (see persist.go). Empty disables
	// persistence. The serving layer defaults this to the registry's
	// StateDir.
	StateDir string
	// Seed seeds the reservoir PRNG (default 1); fixed so the sample is a
	// deterministic function of the observed rows. After a state reload
	// the PRNG restarts from the seed — sampled rows and the seen count
	// survive a restart exactly, while the sampling stream itself is only
	// deterministic between restarts.
	Seed int64
	// Now is the clock used for snapshot/event timestamps (default
	// time.Now; injectable for byte-identical histories in tests).
	Now func() time.Time
	// Logger receives lifecycle messages (default log.Default()).
	Logger *log.Logger
	// Metrics, when set, receives scoring and lifecycle instrumentation:
	// rows and per-attribute deviations folded batch-at-a-time, sealed
	// windows, drift-detector gauges, reservoir fill and re-induction
	// outcomes/durations. The handles are interned per model state, so
	// the fold path's per-observation cost is a handful of atomic adds —
	// never an allocation (see modelMetrics). Nil disables instrumentation.
	Metrics *obs.AuditMetrics

	// hookReinduceStart, when set, is called by the background
	// re-induction worker after the reservoir snapshot is taken and
	// before induction begins — test instrumentation for simulating slow
	// re-inductions. It runs outside every monitor lock.
	hookReinduceStart func(name string, version int)
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.WindowRows <= 0 {
		o.WindowRows = 1024
	}
	if o.MaxSnapshots <= 0 {
		o.MaxSnapshots = 128
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 256
	}
	if o.DriftDelta <= 0 {
		o.DriftDelta = 0.10
	}
	if o.PHDelta <= 0 {
		o.PHDelta = 0.005
	}
	if o.PHLambda <= 0 {
		o.PHLambda = 0.25
	}
	if o.NullDelta <= 0 {
		o.NullDelta = 0.05
	}
	if o.MinWindows <= 0 {
		o.MinWindows = 2
	}
	if o.ReservoirRows <= 0 {
		o.ReservoirRows = 4096
	}
	if o.MinReinduceRows <= 0 {
		o.MinReinduceRows = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ReinduceMode == "" {
		o.ReinduceMode = string(audit.ReinduceIncremental)
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// EventKind names a lifecycle event.
type EventKind string

const (
	// EventBaselineAdopted: the model had no induction-time QualityProfile,
	// so the first sealed window was adopted as the baseline.
	EventBaselineAdopted EventKind = "baseline-adopted"
	// EventDrift: a drift detector fired against the baseline.
	EventDrift EventKind = "drift"
	// EventReinduced: a successor model was induced from the reservoir and
	// published as the next version.
	EventReinduced EventKind = "reinduced"
	// EventReinduceSkipped: drift fired but re-induction was not attempted
	// (disabled, the reservoir is too small, or a re-induction for the
	// model is already in flight — duplicate triggers coalesce into the
	// running one).
	EventReinduceSkipped EventKind = "reinduce-skipped"
	// EventReinduceFailed: re-induction or the publish failed.
	EventReinduceFailed EventKind = "reinduce-failed"
	// EventReinduceSuperseded: a background re-induction finished but the
	// tracked (version, createdAt) changed while it ran — the model was
	// deleted, recreated or republished — so the candidate was discarded
	// instead of swapped in.
	EventReinduceSuperseded EventKind = "reinduce-superseded"
)

// Event is one entry of a model's lifecycle log.
type Event struct {
	Kind    EventKind `json:"kind"`
	Window  int       `json:"window"`
	Version int       `json:"version"`
	// NewVersion is the published successor version (EventReinduced, or an
	// EventReinduceSuperseded whose publish had already committed).
	NewVersion int `json:"newVersion,omitempty"`
	// Detector names what fired an EventDrift: "threshold" or
	// "page-hinkley".
	Detector string `json:"detector,omitempty"`
	// Delta is the window suspicious rate minus the baseline rate; PH the
	// Page-Hinkley statistic, both at the time of the event.
	Delta float64 `json:"delta,omitempty"`
	PH    float64 `json:"ph,omitempty"`
	// Attrs names the attributes the per-attribute detectors had latched
	// when an EventDrift fired — the offending columns the re-induction
	// partial path rebuilds. Empty when only the model-level detector saw
	// the drift.
	Attrs   []string  `json:"attrs,omitempty"`
	Message string    `json:"message,omitempty"`
	At      time.Time `json:"at"`
}

// AttrWindow is one attribute's deviation tally inside a sealed window.
// Only grouping-insensitive statistics appear here — counts, rates and
// max are bit-identical however the stream engine chunked the rows,
// whereas a float sum (and thus a mean) picks up ULP differences from the
// summation order. That restriction is what makes snapshot history
// byte-identical across chunkings and worker counts.
type AttrWindow struct {
	Attr         string  `json:"attr"`
	Deviations   int64   `json:"deviations"`
	Suspicious   int64   `json:"suspicious"`
	MaxErrorConf float64 `json:"maxErrorConf"`
	// Nulls counts the attribute's null cells in the window — the
	// completeness observation the null-drift detector compares against
	// the baseline null rate.
	Nulls int64 `json:"nulls"`
}

// Snapshot is one sealed monitoring window.
type Snapshot struct {
	// Window is the 0-based sealed-window index over the model's whole
	// monitored lifetime; Version the model version the rows were scored
	// against.
	Window  int `json:"window"`
	Version int `json:"version"`
	// Rows and Suspicious count the window; a window holds at least
	// Options.WindowRows rows (it seals at the first observation boundary
	// at or past the target, so a large batch lands in one window).
	Rows           int64        `json:"rows"`
	Suspicious     int64        `json:"suspicious"`
	SuspiciousRate float64      `json:"suspiciousRate"`
	Attrs          []AttrWindow `json:"attrs"`
	At             time.Time    `json:"at"`
}

// DriftState is the live detector state of one model.
type DriftState struct {
	// Drifted latches once a detector fires and clears when re-induction
	// establishes a new baseline.
	Drifted bool `json:"drifted"`
	// LastDelta is the most recent window's suspicious-rate delta versus
	// the baseline.
	LastDelta float64 `json:"lastDelta"`
	// PH and PHMean expose the Page-Hinkley statistic and its running
	// mean.
	PH     float64 `json:"ph"`
	PHMean float64 `json:"phMean"`
	// WindowsSinceBaseline counts sealed windows since the current
	// baseline was established.
	WindowsSinceBaseline int `json:"windowsSinceBaseline"`
	// Attrs names the attributes whose per-attribute detectors are
	// currently latched — the drift's attribution. Sorted by schema
	// column, empty while nothing attribute-level has fired.
	Attrs []string `json:"attrs,omitempty"`
	// NullAttrs names the attributes whose completeness detectors are
	// currently latched (windowed null rate above baseline by more than
	// Options.NullDelta). Sorted by schema column.
	NullAttrs []string `json:"nullAttrs,omitempty"`
}

// State is a point-in-time copy of one model's monitoring state.
type State struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// WindowRows / Windows describe the snapshot cadence; PendingRows is
	// the open (not yet sealed) window's row count.
	WindowRows  int64 `json:"windowRows"`
	Windows     int   `json:"windows"`
	PendingRows int64 `json:"pendingRows"`
	// Baseline is the QualityProfile drift is measured against;
	// BaselineAdopted reports it was taken from the first sealed window
	// rather than captured at induction.
	Baseline        *audit.QualityProfile `json:"baseline,omitempty"`
	BaselineAdopted bool                  `json:"baselineAdopted,omitempty"`
	Snapshots       []Snapshot            `json:"snapshots"`
	Drift           DriftState            `json:"drift"`
	Events          []Event               `json:"events"`
	// ReservoirRows / ReservoirSeen describe the re-induction sample: rows
	// currently held and rows ever offered since the last re-induction.
	ReservoirRows int   `json:"reservoirRows"`
	ReservoirSeen int64 `json:"reservoirSeen"`
	AutoReinduce  bool  `json:"autoReinduce"`
	// Reinducing reports that a background re-induction worker is in
	// flight for the model (audits keep being served meanwhile).
	Reinducing bool `json:"reinducing,omitempty"`
}

// Monitor folds audit results into per-model windowed snapshots, runs the
// drift detectors and (optionally) closes the re-induction loop through
// the registry. All methods are safe for concurrent use.
type Monitor struct {
	reg  *registry.Registry
	opts Options

	mu     sync.Mutex
	models map[string]*modelState

	// wg tracks background work: re-induction workers and asynchronous
	// state writes. Close/WaitReinductions rendezvous on it.
	wg sync.WaitGroup

	// disk is the crash-durability sink (nil: persistence disabled).
	disk *persister
	// gens numbers modelState generations: every state entered into the
	// map (fresh or loaded) takes the next value, so the persister can
	// tell a dead generation's late write from a recreated name's fresh
	// one.
	gens atomic.Uint64
}

// StateDisabled is the Options.StateDir sentinel that turns persistence
// off explicitly — for embedders (like the serving layer) that default a
// non-empty state dir when the field is left empty.
const StateDisabled = "disabled"

// New builds a Monitor over a registry.
func New(reg *registry.Registry, opts Options) *Monitor {
	m := &Monitor{reg: reg, opts: opts.WithDefaults(), models: make(map[string]*modelState)}
	if m.opts.StateDir != "" && m.opts.StateDir != StateDisabled {
		m.disk = newPersister(m.opts.StateDir)
	}
	return m
}

// modelState is the per-model monitoring state. Its own mutex (not the
// Monitor's) guards it, so folding one model never blocks another; the
// Monitor lock only guards the map.
type modelState struct {
	mu sync.Mutex

	name      string
	version   int
	createdAt time.Time // publish time of the tracked version (incarnation check)
	// gen is the Monitor-wide generation number assigned when the state
	// entered the model map (see Monitor.gens).
	gen uint64

	// dead marks a state removed by Forget while a background worker may
	// still hold a pointer to it: the worker's swap guard refuses a dead
	// state, so an in-flight re-induction cannot resurrect a deleted
	// model.
	dead bool
	// reinducing coalesces drift triggers: while a background
	// re-induction worker is in flight for this model, further triggers
	// are logged as skipped instead of spawning duplicate workers.
	reinducing bool
	// saveSeq orders persisted snapshots of this state: each marshal under
	// st.mu takes the next sequence number, and the persister drops writes
	// that would regress it (see persist.go).
	saveSeq uint64

	// What the fold and re-induction paths need from the model — never the
	// model itself: retaining every audited model's classifiers here would
	// defeat the registry's LRU bound on resident models.
	schema  *dataset.Schema
	opts    audit.Options
	classes []int // schema column of each tallied attribute (Model.Attrs order)

	baseline        *audit.QualityProfile
	baselineAdopted bool

	// open-window accumulation
	winRows, winSuspicious int64
	winAttrs               []audit.AttrTally

	windows              int
	windowsSinceBaseline int
	snapshots            []Snapshot
	ph                   pageHinkley
	drifted              bool
	lastDelta            float64
	// attrDrift runs the per-attribute detectors, aligned with classes;
	// rebuilt (zeroed) whenever adoptModel runs.
	attrDrift []attrDetector
	events    []Event
	rv        *reservoir

	// met caches the model's interned metric children (nil when metrics
	// are disabled, or until the first fold after the state adopted a
	// model or was reloaded from disk). adoptModel clears it so the
	// per-attribute handle slices are rebuilt for the new attribute set.
	met *modelMetrics
}

// modelMetrics holds one model's interned metric children. Resolving a
// labelled child costs a map lookup under the vec's lock; interning the
// children once per (state, attribute set) makes every fold a short run
// of pure atomic operations — no lookups, no allocation — which is what
// lets the monitor instrument the scoring path without violating the
// core's zero-allocation contract.
type modelMetrics struct {
	rows, suspicious, sealed *obs.Counter
	winRate, baseRate        *obs.Gauge
	delta, ph, active        *obs.Gauge
	reservoir                *obs.Gauge
	// Model.Attrs order, aligned with st.classes.
	attrDev, attrSus, attrDrift []*obs.Counter
	attrNulls, attrNullDrift    []*obs.Counter
	attrNullRate                []*obs.Gauge
}

// buildMetricsLocked interns the metric children for the current
// attribute set; st.mu must be held and st.schema set.
func (st *modelState) buildMetricsLocked(mets *obs.AuditMetrics) {
	mm := &modelMetrics{
		rows:          mets.RowsScored.With(st.name),
		suspicious:    mets.RowsSuspicious.With(st.name),
		sealed:        mets.WindowsSealed.With(st.name),
		winRate:       mets.WindowSuspiciousRate.With(st.name),
		baseRate:      mets.BaselineSuspiciousRate.With(st.name),
		delta:         mets.DriftDelta.With(st.name),
		ph:            mets.DriftPageHinkley.With(st.name),
		active:        mets.DriftActive.With(st.name),
		reservoir:     mets.ReservoirRows.With(st.name),
		attrDev:       make([]*obs.Counter, len(st.classes)),
		attrSus:       make([]*obs.Counter, len(st.classes)),
		attrDrift:     make([]*obs.Counter, len(st.classes)),
		attrNulls:     make([]*obs.Counter, len(st.classes)),
		attrNullDrift: make([]*obs.Counter, len(st.classes)),
		attrNullRate:  make([]*obs.Gauge, len(st.classes)),
	}
	for i, c := range st.classes {
		attr := st.schema.Attr(c).Name
		mm.attrDev[i] = mets.AttrDeviations.With(st.name, attr)
		mm.attrSus[i] = mets.AttrSuspicious.With(st.name, attr)
		mm.attrDrift[i] = mets.AttrDrift.With(st.name, attr)
		mm.attrNulls[i] = mets.AttrNulls.With(st.name, attr)
		mm.attrNullDrift[i] = mets.AttrNullDrift.With(st.name, attr)
		mm.attrNullRate[i] = mets.AttrNullRate.With(st.name, attr)
	}
	st.met = mm
}

// syncDriftGaugesLocked publishes the detector state into the drift
// gauges; st.mu must be held. Called after every sealed window and after
// a re-induction swap establishes a fresh baseline.
func (st *modelState) syncDriftGaugesLocked() {
	mm := st.met
	if mm == nil {
		return
	}
	if st.baseline != nil {
		mm.baseRate.Set(st.baseline.SuspiciousRate)
	}
	mm.delta.Set(st.lastDelta)
	mm.ph.Set(st.ph.PH)
	if st.drifted {
		mm.active.Set(1)
	} else {
		mm.active.Set(0)
	}
}

// tracking reports whether the state is still tracking exactly the given
// model version — same version AND same publish time, so two incarnations
// of a name that happen to share a version number never alias; st.mu must
// be held.
func (st *modelState) tracking(meta registry.Meta) bool {
	return !st.dead && st.version == meta.Version && st.createdAt.Equal(meta.CreatedAt)
}

// state returns (creating if needed) the tracked state for a model
// version, resetting it when a newer version or incarnation appears. It
// returns nil when the observation is stale — an older version, or any
// version of an earlier incarnation of the name — because stale scores
// must not perturb the current model's drift statistics.
//
// Observations are ordered incarnation-first, by (CreatedAt, Version):
// within one incarnation versions and publish times increase together,
// and across a delete/recreate the newer incarnation has the later
// publish time even though its version counter restarted at 1. Comparing
// versions alone would let a late audit of a *deleted* model's higher
// version hijack a recreated same-name model's state (and then every
// live-model audit would be dropped as "stale" until the new incarnation's
// version caught up — monitoring silently dead).
func (m *Monitor) state(meta registry.Meta, model *audit.Model) *modelState {
	st := m.lookupOrLoad(meta.Name, true)

	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case st.dead:
		return nil // raced with Forget; the next observation re-creates
	case st.version == 0:
		st.resetForVersion(meta, model, m.opts)
	case meta.Version == st.version && meta.CreatedAt.Equal(st.createdAt):
		// the tracked version: fold
	case meta.CreatedAt.After(st.createdAt):
		// Newer publish time: either the next version of the same
		// incarnation, or the first version of a newer incarnation
		// (delete + recreate). Either way the newer model wins.
		st.resetForVersion(meta, model, m.opts)
	case meta.CreatedAt.Before(st.createdAt):
		// Older publish time — a stale version, or a ghost incarnation
		// (even one with a higher version number): drop.
		return nil
	case meta.Version > st.version:
		// Identical publish times with different versions cannot come from
		// the registry clock; trust the version order (synthetic metas).
		st.resetForVersion(meta, model, m.opts)
	default:
		return nil
	}
	return st
}

// lookupOrLoad returns the map entry for a name, recovering persisted
// state from the state dir on the first sight of the name since boot
// (disk I/O outside both locks). With create set it always returns an
// entry, allocating an empty one when nothing was persisted; without it
// the result is nil for unknown names — the Quality read path must not
// invent entries.
func (m *Monitor) lookupOrLoad(name string, create bool) *modelState {
	m.mu.Lock()
	st, ok := m.models[name]
	m.mu.Unlock()
	if ok {
		return st
	}
	loaded := m.loadState(name)
	if loaded == nil && !create {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, raced := m.models[name]; raced {
		return cur // a concurrent first sight won; use its entry
	}
	st = loaded
	if st == nil {
		st = &modelState{name: name}
	}
	st.gen = m.gens.Add(1)
	m.models[name] = st
	return st
}

// resetForVersion points the state at a (new) model version; st.mu held.
// Events and snapshot history survive version switches — they are the
// lifecycle log — but windows, detectors and the reservoir restart.
func (st *modelState) resetForVersion(meta registry.Meta, model *audit.Model, opts Options) {
	if st.version == meta.Version && st.createdAt.Equal(meta.CreatedAt) {
		return
	}
	st.version = meta.Version
	st.createdAt = meta.CreatedAt
	st.adoptModel(model)
	st.baseline = meta.Quality
	st.baselineAdopted = false
	st.windowsSinceBaseline = 0
	st.ph = pageHinkley{Delta: opts.PHDelta, Lambda: opts.PHLambda}
	st.drifted = false
	st.lastDelta = 0
	if st.rv == nil {
		st.rv = newReservoir(model.Schema, opts.ReservoirRows, opts.Seed)
	} else {
		st.rv.schema = model.Schema
		st.rv.resetSample()
	}
}

// adoptModel captures the slices of the model the fold path needs and
// rebuilds the open-window accumulators to match its attribute set;
// st.mu held.
func (st *modelState) adoptModel(model *audit.Model) {
	st.schema = model.Schema
	st.opts = model.Opts
	st.classes = make([]int, len(model.Attrs))
	st.winAttrs = make([]audit.AttrTally, len(model.Attrs))
	st.attrDrift = make([]attrDetector, len(model.Attrs))
	for i, am := range model.Attrs {
		st.classes[i] = am.Class
		st.winAttrs[i].Attr = am.Class
	}
	st.winRows, st.winSuspicious = 0, 0
	// Invalidate the interned metric handles: the successor's attribute
	// set may differ, and the fold path re-interns lazily.
	st.met = nil
}

// ObserveBatch folds one buffered audit (the /audit route, or any
// AuditTable/AuditTableParallel result) into the model's monitoring
// state: every row is offered to the re-induction reservoir and the
// result's aggregate seals windows as they fill.
func (m *Monitor) ObserveBatch(meta registry.Meta, model *audit.Model, tab *dataset.Table, res *audit.Result) {
	st := m.state(meta, model)
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.tracking(meta) {
		return // raced with a newer version between state() and here
	}
	row := make([]dataset.Value, tab.NumCols())
	for r := 0; r < tab.NumRows(); r++ {
		st.rv.offer(tab.RowInto(r, row))
	}
	sus, tallies := model.TallyResult(res)
	m.foldLocked(st, int64(tab.NumRows()), sus, tallies)
}

// StreamObserver feeds one streaming audit into the monitor: wire OnRow
// into audit.StreamOptions.OnRow and call Finish with the StreamResult
// once the stream succeeded. A failed stream is simply never finished —
// its sampled rows stay in the reservoir (they were audited), but no
// aggregate is folded.
type StreamObserver struct {
	m    *Monitor
	meta registry.Meta
	st   *modelState // nil when the observation is for a stale version
}

// Stream returns an observer for one streaming audit of the given model
// version.
func (m *Monitor) Stream(meta registry.Meta, model *audit.Model) *StreamObserver {
	return &StreamObserver{m: m, meta: meta, st: m.state(meta, model)}
}

// OnRow offers one audited row to the re-induction reservoir (rows arrive
// in source order from the stream engine's reader goroutine).
func (o *StreamObserver) OnRow(row []dataset.Value, id int64) {
	if o.st == nil {
		return
	}
	o.st.mu.Lock()
	if o.st.tracking(o.meta) {
		o.st.rv.offer(row)
	}
	o.st.mu.Unlock()
}

// Finish folds the completed stream's aggregate.
func (o *StreamObserver) Finish(res *audit.StreamResult) {
	if o.st == nil {
		return
	}
	o.st.mu.Lock()
	defer o.st.mu.Unlock()
	if !o.st.tracking(o.meta) {
		return
	}
	tallies := append([]audit.AttrTally(nil), res.Attrs...)
	o.m.foldLocked(o.st, res.RowsChecked, res.NumSuspicious, tallies)
}

// foldLocked accumulates one observation into the open window and seals
// it when full; st.mu must be held.
func (m *Monitor) foldLocked(st *modelState, rows, suspicious int64, tallies []audit.AttrTally) {
	if st.met == nil && m.opts.Metrics != nil && st.schema != nil {
		// Lazy so state reloaded from disk (which never runs adoptModel)
		// interns its handles on the first fold after boot.
		st.buildMetricsLocked(m.opts.Metrics)
	}
	mm := st.met
	st.winRows += rows
	st.winSuspicious += suspicious
	if mm != nil {
		mm.rows.Add(uint64(rows))
		mm.suspicious.Add(uint64(suspicious))
		mm.reservoir.Set(float64(len(st.rv.rows)))
	}
	for i := range tallies {
		if i >= len(st.winAttrs) {
			break
		}
		t, u := &st.winAttrs[i], &tallies[i]
		t.Deviations += u.Deviations
		t.Suspicious += u.Suspicious
		t.SumErrorConf += u.SumErrorConf
		t.Nulls += u.Nulls
		if u.MaxErrorConf > t.MaxErrorConf {
			t.MaxErrorConf = u.MaxErrorConf
		}
		if mm != nil && i < len(mm.attrDev) {
			mm.attrDev[i].Add(uint64(u.Deviations))
			mm.attrSus[i].Add(uint64(u.Suspicious))
			mm.attrNulls[i].Add(uint64(u.Nulls))
		}
	}
	if st.winRows >= m.opts.WindowRows {
		m.sealLocked(st)
	}
}

// sealLocked turns the open window into a Snapshot, runs the drift
// detectors, triggers the (asynchronous) re-induction path on drift and
// persists the sealed state; st.mu must be held.
func (m *Monitor) sealLocked(st *modelState) {
	snap := Snapshot{
		Window:     st.windows,
		Version:    st.version,
		Rows:       st.winRows,
		Suspicious: st.winSuspicious,
		At:         m.opts.Now(),
		Attrs:      make([]AttrWindow, len(st.winAttrs)),
	}
	if snap.Rows > 0 {
		snap.SuspiciousRate = float64(snap.Suspicious) / float64(snap.Rows)
	}
	for i := range st.winAttrs {
		t := &st.winAttrs[i]
		snap.Attrs[i] = AttrWindow{
			Attr:         st.schema.Attr(t.Attr).Name,
			Deviations:   t.Deviations,
			Suspicious:   t.Suspicious,
			MaxErrorConf: t.MaxErrorConf,
			Nulls:        t.Nulls,
		}
	}
	st.snapshots = append(st.snapshots, snap)
	if len(st.snapshots) > m.opts.MaxSnapshots {
		st.snapshots = st.snapshots[len(st.snapshots)-m.opts.MaxSnapshots:]
	}
	st.windows++
	st.windowsSinceBaseline++
	st.winRows, st.winSuspicious = 0, 0
	for i := range st.winAttrs {
		st.winAttrs[i] = audit.AttrTally{Attr: st.winAttrs[i].Attr}
	}
	if mm := st.met; mm != nil {
		mm.sealed.Inc()
		mm.winRate.Set(snap.SuspiciousRate)
		// Deferred so every return path below — baseline adoption, warm-up,
		// drift — exports whatever detector state it left behind.
		defer st.syncDriftGaugesLocked()
	}
	// Every sealed window is a persistence commit point: whatever happens
	// below (baseline adoption, drift events, a re-induction trigger)
	// mutates st before saveLocked runs at the end of each return path.
	defer m.saveLocked(st)

	if st.baseline == nil {
		// A model published without an induction-time profile: adopt the
		// first sealed window as the baseline of "normal".
		st.baseline = baselineFromSnapshot(&snap, st.schema)
		st.baselineAdopted = true
		st.windowsSinceBaseline = 0
		m.event(st, Event{Kind: EventBaselineAdopted, Window: snap.Window, Version: st.version,
			Message: fmt.Sprintf("adopted window %d (suspicious rate %.4f) as baseline", snap.Window, snap.SuspiciousRate)})
		return
	}

	st.lastDelta = snap.SuspiciousRate - st.baseline.SuspiciousRate
	phTrip := st.ph.observe(snap.SuspiciousRate)
	nullFired, maxNullDelta := m.observeAttrsLocked(st, &snap)
	if len(nullFired) > 0 {
		// Completeness drift is its own event stream: it latches and
		// reports but never enters the re-induction trigger below —
		// re-inducing on a load full of nulls would normalize them.
		m.event(st, Event{Kind: EventDrift, Window: snap.Window, Version: st.version,
			Detector: "completeness", Delta: maxNullDelta, Attrs: nullFired,
			Message: fmt.Sprintf("window %d null rate exceeds baseline by more than %.3f on %s",
				snap.Window, m.opts.NullDelta, strings.Join(nullFired, ", "))})
	}
	if st.drifted || st.windowsSinceBaseline < m.opts.MinWindows {
		return
	}
	detector := ""
	switch {
	case st.lastDelta > m.opts.DriftDelta:
		detector = "threshold"
	case phTrip:
		detector = "page-hinkley"
	default:
		return
	}
	st.drifted = true
	attrClasses, attrNames := st.driftedAttrsLocked()
	m.event(st, Event{Kind: EventDrift, Window: snap.Window, Version: st.version,
		Detector: detector, Delta: st.lastDelta, PH: st.ph.PH, Attrs: attrNames,
		Message: fmt.Sprintf("window %d suspicious rate %.4f vs baseline %.4f", snap.Window, snap.SuspiciousRate, st.baseline.SuspiciousRate)})
	m.triggerReinduceLocked(st, snap.Window, attrClasses)
}

// observeAttrsLocked folds the sealed window into the per-attribute drift
// detectors; st.mu must be held and st.baseline set. Each attribute runs
// the same threshold + Page-Hinkley pair as the model-level detector,
// against its own baseline suspicious rate (resolved by name — the
// baseline's attribute set can differ from the tally order), plus the
// completeness detector: windowed null rate versus the baseline null
// rate. The detectors observe every window, including during warm-up and
// while already latched, so their statistics stay comparable to the
// model's. It returns the attributes whose completeness detector latched
// on this window (names, in tally order) and the largest null-rate delta
// among them, for the completeness drift event.
func (m *Monitor) observeAttrsLocked(st *modelState, snap *Snapshot) (nullFired []string, maxNullDelta float64) {
	if len(st.attrDrift) != len(snap.Attrs) {
		return nil, 0 // a reloaded state mid-adoption; the next adoptModel realigns
	}
	baseRate := make(map[string]float64, len(st.baseline.Attrs))
	baseNull := make(map[string]float64, len(st.baseline.Attrs))
	for _, aq := range st.baseline.Attrs {
		baseRate[aq.Name] = aq.SuspiciousRate
		baseNull[aq.Name] = aq.NullRate
	}
	warm := st.windowsSinceBaseline >= m.opts.MinWindows
	for i := range snap.Attrs {
		aw := &snap.Attrs[i]
		det := &st.attrDrift[i]
		// The PH parameters are injected here rather than persisted, so a
		// restart under new options picks them up immediately.
		det.PH.Delta, det.PH.Lambda = m.opts.PHDelta, m.opts.PHLambda
		rate, nullRate := 0.0, 0.0
		if snap.Rows > 0 {
			rate = float64(aw.Suspicious) / float64(snap.Rows)
			nullRate = float64(aw.Nulls) / float64(snap.Rows)
		}
		det.LastDelta = rate - baseRate[aw.Attr]
		det.LastNullDelta = nullRate - baseNull[aw.Attr]
		phTrip := det.PH.observe(rate)
		mm := st.met
		if mm != nil && i < len(mm.attrNullRate) {
			mm.attrNullRate[i].Set(nullRate)
		}
		if warm && !det.NullDrifted && det.LastNullDelta > m.opts.NullDelta {
			det.NullDrifted = true
			nullFired = append(nullFired, aw.Attr)
			if det.LastNullDelta > maxNullDelta {
				maxNullDelta = det.LastNullDelta
			}
			if mm != nil && i < len(mm.attrNullDrift) {
				mm.attrNullDrift[i].Inc()
			}
		}
		if det.Drifted || !warm {
			continue
		}
		if det.LastDelta > m.opts.DriftDelta || phTrip {
			det.Drifted = true
			if mm != nil && i < len(mm.attrDrift) {
				mm.attrDrift[i].Inc()
			}
		}
	}
	return nullFired, maxNullDelta
}

// driftedAttrsLocked lists the currently latched attributes as schema
// columns and names, in tally (schema-column) order; st.mu must be held.
func (st *modelState) driftedAttrsLocked() (classes []int, names []string) {
	for i := range st.attrDrift {
		if st.attrDrift[i].Drifted && i < len(st.classes) {
			classes = append(classes, st.classes[i])
			names = append(names, st.schema.Attr(st.classes[i]).Name)
		}
	}
	return classes, names
}

// nullDriftedAttrsLocked lists the attributes whose completeness detector
// is currently latched, in tally (schema-column) order; st.mu must be
// held.
func (st *modelState) nullDriftedAttrsLocked() (names []string) {
	for i := range st.attrDrift {
		if st.attrDrift[i].NullDrifted && i < len(st.classes) {
			names = append(names, st.schema.Attr(st.classes[i]).Name)
		}
	}
	return names
}

// baselineFromSnapshot lifts a sealed window into a QualityProfile so the
// detectors have something to compare against. AttrQuality.Attr is the
// schema column (resolved by name), matching every other profile
// producer — Model.Attrs may be a subset of the schema under
// SkipClasses, so the tally index is not the column.
func baselineFromSnapshot(snap *Snapshot, schema *dataset.Schema) *audit.QualityProfile {
	p := &audit.QualityProfile{
		Rows:           snap.Rows,
		SuspiciousRate: snap.SuspiciousRate,
		ConfHist:       make([]int64, audit.ConfHistBins),
	}
	for _, aw := range snap.Attrs {
		aq := audit.AttrQuality{
			Attr:     schema.Index(aw.Attr),
			Name:     aw.Attr,
			ConfHist: make([]int64, audit.ConfHistBins),
		}
		if snap.Rows > 0 {
			aq.DeviationRate = float64(aw.Deviations) / float64(snap.Rows)
			aq.SuspiciousRate = float64(aw.Suspicious) / float64(snap.Rows)
			aq.NullRate = float64(aw.Nulls) / float64(snap.Rows)
		}
		p.Attrs = append(p.Attrs, aq)
	}
	return p
}

// event appends to the bounded lifecycle log; st.mu must be held.
func (m *Monitor) event(st *modelState, e Event) {
	if e.At.IsZero() {
		e.At = m.opts.Now()
	}
	st.events = append(st.events, e)
	if len(st.events) > m.opts.MaxEvents {
		st.events = st.events[len(st.events)-m.opts.MaxEvents:]
	}
}

// Forget drops the named model's monitoring state — in memory and on disk
// — after the model is deleted from the registry. Without this, a model
// recreated under the same name would inherit the deleted model's
// baseline, windows and reservoir — and, because versions restart at 1,
// the stale state would never be reset by the version check. The dropped
// state is marked dead so an in-flight re-induction worker still holding
// it cannot publish into (and thereby resurrect) the deleted model.
func (m *Monitor) Forget(name string) {
	m.mu.Lock()
	st := m.models[name]
	delete(m.models, name)
	m.mu.Unlock()
	var gen uint64
	if st != nil {
		st.mu.Lock()
		st.dead = true
		gen = st.gen
		st.mu.Unlock()
	}
	if m.disk != nil {
		// Exhausting the dead generation's sequence space blocks its
		// in-flight writes; a recreated name gets a later generation and
		// persists normally.
		m.disk.remove(name, gen)
	}
	if m.opts.Metrics != nil {
		// Drop every series labelled with the name so a recreated model
		// starts from zero instead of inheriting the dead incarnation's
		// counters.
		m.opts.Metrics.ForgetModel(name)
	}
}

// Quality returns a copy of the named model's monitoring state; ok is
// false when the monitor has not observed the model yet — neither in this
// process nor, when persistence is enabled, in a previous one (persisted
// state is recovered lazily, so quality history is served across restarts
// even before the model's first audit).
func (m *Monitor) Quality(name string) (State, bool) {
	st := m.lookupOrLoad(name, false)
	if st == nil {
		return State{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version == 0 || st.dead {
		// The entry was created by a concurrent first observation whose
		// resetForVersion has not run yet (or was just forgotten); there
		// is no state to report (and st.rv may still be nil).
		return State{}, false
	}
	_, driftedNames := st.driftedAttrsLocked()
	out := State{
		Name:            st.name,
		Version:         st.version,
		WindowRows:      m.opts.WindowRows,
		Windows:         st.windows,
		PendingRows:     st.winRows,
		Baseline:        st.baseline,
		BaselineAdopted: st.baselineAdopted,
		// Empty histories marshal as [] (not null) for wire clients.
		Snapshots: append([]Snapshot{}, st.snapshots...),
		Events:    append([]Event{}, st.events...),
		Drift: DriftState{
			Drifted:              st.drifted,
			LastDelta:            st.lastDelta,
			PH:                   st.ph.PH,
			PHMean:               st.ph.Mean,
			WindowsSinceBaseline: st.windowsSinceBaseline,
			Attrs:                driftedNames,
			NullAttrs:            st.nullDriftedAttrsLocked(),
		},
		ReservoirRows: len(st.rv.rows),
		ReservoirSeen: st.rv.seen,
		AutoReinduce:  m.opts.AutoReinduce,
		Reinducing:    st.reinducing,
	}
	return out, true
}
