package monitor

import (
	"fmt"
	"log"
	"sync"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// Options configure a Monitor.
type Options struct {
	// WindowRows is the snapshot granularity: a window seals once at least
	// this many audited rows accumulated (default 1024). Windows are
	// counted in rows, not wall time, so snapshot history is a
	// deterministic function of the observation sequence.
	WindowRows int64
	// MaxSnapshots bounds the retained snapshot history per model
	// (default 128; oldest dropped first).
	MaxSnapshots int
	// MaxEvents bounds the retained lifecycle events per model
	// (default 256; oldest dropped first).
	MaxEvents int
	// DriftDelta is the threshold detector: drift fires when a sealed
	// window's suspicious rate exceeds the baseline rate by more than this.
	// Zero or negative selects the default 0.10 (as everywhere in this
	// struct — there is no "fire on any excess" zero setting; use a tiny
	// positive delta for that).
	DriftDelta float64
	// PHDelta and PHLambda parameterize the Page-Hinkley cumulative test
	// over the window suspicious-rate series (defaults 0.005 and 0.25;
	// zero or negative selects the default).
	PHDelta, PHLambda float64
	// MinWindows is the number of sealed windows required since the
	// baseline before either detector may fire (default 2) — a warm-up
	// against alarming on the very first partial view of the data.
	MinWindows int
	// ReservoirRows caps the uniform row sample kept for re-induction
	// (default 4096).
	ReservoirRows int
	// MinReinduceRows is the smallest reservoir that may be re-induced
	// from (default 128); with fewer rows a drift only emits events.
	MinReinduceRows int
	// AutoReinduce enables drift-triggered re-induction: on drift the
	// monitor induces a successor from the reservoir and publishes it as
	// the next version through the registry's atomic publish path.
	AutoReinduce bool
	// Seed seeds the reservoir PRNG (default 1); fixed so the sample is a
	// deterministic function of the observed rows.
	Seed int64
	// Now is the clock used for snapshot/event timestamps (default
	// time.Now; injectable for byte-identical histories in tests).
	Now func() time.Time
	// Logger receives lifecycle messages (default log.Default()).
	Logger *log.Logger
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.WindowRows <= 0 {
		o.WindowRows = 1024
	}
	if o.MaxSnapshots <= 0 {
		o.MaxSnapshots = 128
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 256
	}
	if o.DriftDelta <= 0 {
		o.DriftDelta = 0.10
	}
	if o.PHDelta <= 0 {
		o.PHDelta = 0.005
	}
	if o.PHLambda <= 0 {
		o.PHLambda = 0.25
	}
	if o.MinWindows <= 0 {
		o.MinWindows = 2
	}
	if o.ReservoirRows <= 0 {
		o.ReservoirRows = 4096
	}
	if o.MinReinduceRows <= 0 {
		o.MinReinduceRows = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// EventKind names a lifecycle event.
type EventKind string

const (
	// EventBaselineAdopted: the model had no induction-time QualityProfile,
	// so the first sealed window was adopted as the baseline.
	EventBaselineAdopted EventKind = "baseline-adopted"
	// EventDrift: a drift detector fired against the baseline.
	EventDrift EventKind = "drift"
	// EventReinduced: a successor model was induced from the reservoir and
	// published as the next version.
	EventReinduced EventKind = "reinduced"
	// EventReinduceSkipped: drift fired but re-induction was not attempted
	// (disabled, or the reservoir is too small).
	EventReinduceSkipped EventKind = "reinduce-skipped"
	// EventReinduceFailed: re-induction or the publish failed.
	EventReinduceFailed EventKind = "reinduce-failed"
)

// Event is one entry of a model's lifecycle log.
type Event struct {
	Kind    EventKind `json:"kind"`
	Window  int       `json:"window"`
	Version int       `json:"version"`
	// NewVersion is the published successor version (EventReinduced only).
	NewVersion int `json:"newVersion,omitempty"`
	// Detector names what fired an EventDrift: "threshold" or
	// "page-hinkley".
	Detector string `json:"detector,omitempty"`
	// Delta is the window suspicious rate minus the baseline rate; PH the
	// Page-Hinkley statistic, both at the time of the event.
	Delta   float64   `json:"delta,omitempty"`
	PH      float64   `json:"ph,omitempty"`
	Message string    `json:"message,omitempty"`
	At      time.Time `json:"at"`
}

// AttrWindow is one attribute's deviation tally inside a sealed window.
// Only grouping-insensitive statistics appear here — counts, rates and
// max are bit-identical however the stream engine chunked the rows,
// whereas a float sum (and thus a mean) picks up ULP differences from the
// summation order. That restriction is what makes snapshot history
// byte-identical across chunkings and worker counts.
type AttrWindow struct {
	Attr         string  `json:"attr"`
	Deviations   int64   `json:"deviations"`
	Suspicious   int64   `json:"suspicious"`
	MaxErrorConf float64 `json:"maxErrorConf"`
}

// Snapshot is one sealed monitoring window.
type Snapshot struct {
	// Window is the 0-based sealed-window index over the model's whole
	// monitored lifetime; Version the model version the rows were scored
	// against.
	Window  int `json:"window"`
	Version int `json:"version"`
	// Rows and Suspicious count the window; a window holds at least
	// Options.WindowRows rows (it seals at the first observation boundary
	// at or past the target, so a large batch lands in one window).
	Rows           int64        `json:"rows"`
	Suspicious     int64        `json:"suspicious"`
	SuspiciousRate float64      `json:"suspiciousRate"`
	Attrs          []AttrWindow `json:"attrs"`
	At             time.Time    `json:"at"`
}

// DriftState is the live detector state of one model.
type DriftState struct {
	// Drifted latches once a detector fires and clears when re-induction
	// establishes a new baseline.
	Drifted bool `json:"drifted"`
	// LastDelta is the most recent window's suspicious-rate delta versus
	// the baseline.
	LastDelta float64 `json:"lastDelta"`
	// PH and PHMean expose the Page-Hinkley statistic and its running
	// mean.
	PH     float64 `json:"ph"`
	PHMean float64 `json:"phMean"`
	// WindowsSinceBaseline counts sealed windows since the current
	// baseline was established.
	WindowsSinceBaseline int `json:"windowsSinceBaseline"`
}

// State is a point-in-time copy of one model's monitoring state.
type State struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// WindowRows / Windows describe the snapshot cadence; PendingRows is
	// the open (not yet sealed) window's row count.
	WindowRows  int64 `json:"windowRows"`
	Windows     int   `json:"windows"`
	PendingRows int64 `json:"pendingRows"`
	// Baseline is the QualityProfile drift is measured against;
	// BaselineAdopted reports it was taken from the first sealed window
	// rather than captured at induction.
	Baseline        *audit.QualityProfile `json:"baseline,omitempty"`
	BaselineAdopted bool                  `json:"baselineAdopted,omitempty"`
	Snapshots       []Snapshot            `json:"snapshots"`
	Drift           DriftState            `json:"drift"`
	Events          []Event               `json:"events"`
	// ReservoirRows / ReservoirSeen describe the re-induction sample: rows
	// currently held and rows ever offered since the last re-induction.
	ReservoirRows int   `json:"reservoirRows"`
	ReservoirSeen int64 `json:"reservoirSeen"`
	AutoReinduce  bool  `json:"autoReinduce"`
}

// Monitor folds audit results into per-model windowed snapshots, runs the
// drift detectors and (optionally) closes the re-induction loop through
// the registry. All methods are safe for concurrent use.
type Monitor struct {
	reg  *registry.Registry
	opts Options

	mu     sync.Mutex
	models map[string]*modelState
}

// New builds a Monitor over a registry.
func New(reg *registry.Registry, opts Options) *Monitor {
	return &Monitor{reg: reg, opts: opts.WithDefaults(), models: make(map[string]*modelState)}
}

// modelState is the per-model monitoring state. Its own mutex (not the
// Monitor's) guards it, so folding one model never blocks another; the
// Monitor lock only guards the map.
type modelState struct {
	mu sync.Mutex

	name      string
	version   int
	createdAt time.Time // publish time of the tracked version (incarnation check)

	// What the fold and re-induction paths need from the model — never the
	// model itself: retaining every audited model's classifiers here would
	// defeat the registry's LRU bound on resident models.
	schema  *dataset.Schema
	opts    audit.Options
	classes []int // schema column of each tallied attribute (Model.Attrs order)

	baseline        *audit.QualityProfile
	baselineAdopted bool

	// open-window accumulation
	winRows, winSuspicious int64
	winAttrs               []audit.AttrTally

	windows              int
	windowsSinceBaseline int
	snapshots            []Snapshot
	ph                   pageHinkley
	drifted              bool
	lastDelta            float64
	events               []Event
	rv                   *reservoir
}

// state returns (creating if needed) the tracked state for a model
// version, resetting it when a newer version appears. It returns nil when
// the observation is for an older version than the one being tracked —
// stale scores must not perturb the current model's drift statistics.
func (m *Monitor) state(meta registry.Meta, model *audit.Model) *modelState {
	m.mu.Lock()
	st, ok := m.models[meta.Name]
	if !ok {
		st = &modelState{name: meta.Name}
		m.models[meta.Name] = st
	}
	m.mu.Unlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case st.version == 0:
		st.resetForVersion(meta, model, m.opts)
	case meta.Version > st.version:
		st.resetForVersion(meta, model, m.opts)
	case meta.Version < st.version:
		return nil
	case !meta.CreatedAt.Equal(st.createdAt):
		// Same version number, different publish time: a different
		// incarnation of the name (the model was deleted and recreated —
		// versions restart at 1 — while an audit of the old incarnation
		// was in flight). The newer incarnation wins; observations of the
		// older one are dropped so a ghost cannot poison the successor's
		// baseline and reservoir.
		if !meta.CreatedAt.After(st.createdAt) {
			return nil
		}
		st.resetForVersion(meta, model, m.opts)
	}
	return st
}

// resetForVersion points the state at a (new) model version; st.mu held.
// Events and snapshot history survive version switches — they are the
// lifecycle log — but windows, detectors and the reservoir restart.
func (st *modelState) resetForVersion(meta registry.Meta, model *audit.Model, opts Options) {
	if st.version == meta.Version && st.createdAt.Equal(meta.CreatedAt) {
		return
	}
	st.version = meta.Version
	st.createdAt = meta.CreatedAt
	st.adoptModel(model)
	st.baseline = meta.Quality
	st.baselineAdopted = false
	st.windowsSinceBaseline = 0
	st.ph = pageHinkley{Delta: opts.PHDelta, Lambda: opts.PHLambda}
	st.drifted = false
	st.lastDelta = 0
	if st.rv == nil {
		st.rv = newReservoir(model.Schema, opts.ReservoirRows, opts.Seed)
	} else {
		st.rv.schema = model.Schema
		st.rv.resetSample()
	}
}

// adoptModel captures the slices of the model the fold path needs and
// rebuilds the open-window accumulators to match its attribute set;
// st.mu held.
func (st *modelState) adoptModel(model *audit.Model) {
	st.schema = model.Schema
	st.opts = model.Opts
	st.classes = make([]int, len(model.Attrs))
	st.winAttrs = make([]audit.AttrTally, len(model.Attrs))
	for i, am := range model.Attrs {
		st.classes[i] = am.Class
		st.winAttrs[i].Attr = am.Class
	}
	st.winRows, st.winSuspicious = 0, 0
}

// ObserveBatch folds one buffered audit (the /audit route, or any
// AuditTable/AuditTableParallel result) into the model's monitoring
// state: every row is offered to the re-induction reservoir and the
// result's aggregate seals windows as they fill.
func (m *Monitor) ObserveBatch(meta registry.Meta, model *audit.Model, tab *dataset.Table, res *audit.Result) {
	st := m.state(meta, model)
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version != meta.Version {
		return // raced with a newer version between state() and here
	}
	row := make([]dataset.Value, tab.NumCols())
	for r := 0; r < tab.NumRows(); r++ {
		st.rv.offer(tab.RowInto(r, row))
	}
	sus, tallies := model.TallyResult(res)
	m.foldLocked(st, int64(tab.NumRows()), sus, tallies)
}

// StreamObserver feeds one streaming audit into the monitor: wire OnRow
// into audit.StreamOptions.OnRow and call Finish with the StreamResult
// once the stream succeeded. A failed stream is simply never finished —
// its sampled rows stay in the reservoir (they were audited), but no
// aggregate is folded.
type StreamObserver struct {
	m    *Monitor
	meta registry.Meta
	st   *modelState // nil when the observation is for a stale version
}

// Stream returns an observer for one streaming audit of the given model
// version.
func (m *Monitor) Stream(meta registry.Meta, model *audit.Model) *StreamObserver {
	return &StreamObserver{m: m, meta: meta, st: m.state(meta, model)}
}

// OnRow offers one audited row to the re-induction reservoir (rows arrive
// in source order from the stream engine's reader goroutine).
func (o *StreamObserver) OnRow(row []dataset.Value, id int64) {
	if o.st == nil {
		return
	}
	o.st.mu.Lock()
	if o.st.version == o.meta.Version {
		o.st.rv.offer(row)
	}
	o.st.mu.Unlock()
}

// Finish folds the completed stream's aggregate.
func (o *StreamObserver) Finish(res *audit.StreamResult) {
	if o.st == nil {
		return
	}
	o.st.mu.Lock()
	defer o.st.mu.Unlock()
	if o.st.version != o.meta.Version {
		return
	}
	tallies := append([]audit.AttrTally(nil), res.Attrs...)
	o.m.foldLocked(o.st, res.RowsChecked, res.NumSuspicious, tallies)
}

// foldLocked accumulates one observation into the open window and seals
// it when full; st.mu must be held.
func (m *Monitor) foldLocked(st *modelState, rows, suspicious int64, tallies []audit.AttrTally) {
	st.winRows += rows
	st.winSuspicious += suspicious
	for i := range tallies {
		if i >= len(st.winAttrs) {
			break
		}
		t, u := &st.winAttrs[i], &tallies[i]
		t.Deviations += u.Deviations
		t.Suspicious += u.Suspicious
		t.SumErrorConf += u.SumErrorConf
		if u.MaxErrorConf > t.MaxErrorConf {
			t.MaxErrorConf = u.MaxErrorConf
		}
	}
	if st.winRows >= m.opts.WindowRows {
		m.sealLocked(st)
	}
}

// sealLocked turns the open window into a Snapshot, runs the drift
// detectors and (on drift) the re-induction path; st.mu must be held.
func (m *Monitor) sealLocked(st *modelState) {
	snap := Snapshot{
		Window:     st.windows,
		Version:    st.version,
		Rows:       st.winRows,
		Suspicious: st.winSuspicious,
		At:         m.opts.Now(),
		Attrs:      make([]AttrWindow, len(st.winAttrs)),
	}
	if snap.Rows > 0 {
		snap.SuspiciousRate = float64(snap.Suspicious) / float64(snap.Rows)
	}
	for i := range st.winAttrs {
		t := &st.winAttrs[i]
		snap.Attrs[i] = AttrWindow{
			Attr:         st.schema.Attr(t.Attr).Name,
			Deviations:   t.Deviations,
			Suspicious:   t.Suspicious,
			MaxErrorConf: t.MaxErrorConf,
		}
	}
	st.snapshots = append(st.snapshots, snap)
	if len(st.snapshots) > m.opts.MaxSnapshots {
		st.snapshots = st.snapshots[len(st.snapshots)-m.opts.MaxSnapshots:]
	}
	st.windows++
	st.windowsSinceBaseline++
	st.winRows, st.winSuspicious = 0, 0
	for i := range st.winAttrs {
		st.winAttrs[i] = audit.AttrTally{Attr: st.winAttrs[i].Attr}
	}

	if st.baseline == nil {
		// A model published without an induction-time profile: adopt the
		// first sealed window as the baseline of "normal".
		st.baseline = baselineFromSnapshot(&snap, st.schema)
		st.baselineAdopted = true
		st.windowsSinceBaseline = 0
		m.event(st, Event{Kind: EventBaselineAdopted, Window: snap.Window, Version: st.version,
			Message: fmt.Sprintf("adopted window %d (suspicious rate %.4f) as baseline", snap.Window, snap.SuspiciousRate)})
		return
	}

	st.lastDelta = snap.SuspiciousRate - st.baseline.SuspiciousRate
	phTrip := st.ph.observe(snap.SuspiciousRate)
	if st.drifted || st.windowsSinceBaseline < m.opts.MinWindows {
		return
	}
	detector := ""
	switch {
	case st.lastDelta > m.opts.DriftDelta:
		detector = "threshold"
	case phTrip:
		detector = "page-hinkley"
	default:
		return
	}
	st.drifted = true
	m.event(st, Event{Kind: EventDrift, Window: snap.Window, Version: st.version,
		Detector: detector, Delta: st.lastDelta, PH: st.ph.PH,
		Message: fmt.Sprintf("window %d suspicious rate %.4f vs baseline %.4f", snap.Window, snap.SuspiciousRate, st.baseline.SuspiciousRate)})
	m.reinduceLocked(st, snap.Window)
}

// baselineFromSnapshot lifts a sealed window into a QualityProfile so the
// detectors have something to compare against. AttrQuality.Attr is the
// schema column (resolved by name), matching every other profile
// producer — Model.Attrs may be a subset of the schema under
// SkipClasses, so the tally index is not the column.
func baselineFromSnapshot(snap *Snapshot, schema *dataset.Schema) *audit.QualityProfile {
	p := &audit.QualityProfile{
		Rows:           snap.Rows,
		SuspiciousRate: snap.SuspiciousRate,
		ConfHist:       make([]int64, audit.ConfHistBins),
	}
	for _, aw := range snap.Attrs {
		aq := audit.AttrQuality{
			Attr:     schema.Index(aw.Attr),
			Name:     aw.Attr,
			ConfHist: make([]int64, audit.ConfHistBins),
		}
		if snap.Rows > 0 {
			aq.DeviationRate = float64(aw.Deviations) / float64(snap.Rows)
			aq.SuspiciousRate = float64(aw.Suspicious) / float64(snap.Rows)
		}
		p.Attrs = append(p.Attrs, aq)
	}
	return p
}

// reinduceLocked closes the lifecycle loop after a drift: induce a
// successor from the reservoir sample and publish it as the next version
// through the registry's atomic publish path; st.mu must be held.
func (m *Monitor) reinduceLocked(st *modelState, window int) {
	if !m.opts.AutoReinduce {
		m.event(st, Event{Kind: EventReinduceSkipped, Window: window, Version: st.version,
			Message: "auto re-induction disabled"})
		return
	}
	if len(st.rv.rows) < m.opts.MinReinduceRows {
		m.event(st, Event{Kind: EventReinduceSkipped, Window: window, Version: st.version,
			Message: fmt.Sprintf("reservoir has %d rows, need %d", len(st.rv.rows), m.opts.MinReinduceRows)})
		return
	}
	tab := st.rv.table()
	next, err := audit.Induce(tab, st.opts)
	if err != nil {
		m.event(st, Event{Kind: EventReinduceFailed, Window: window, Version: st.version,
			Message: fmt.Sprintf("induction over %d reservoir rows: %v", tab.NumRows(), err)})
		return
	}
	profile := next.QualityProfile(tab, 0)
	meta, err := m.reg.PublishWithQuality(st.name, next, profile)
	if err != nil {
		m.event(st, Event{Kind: EventReinduceFailed, Window: window, Version: st.version,
			Message: fmt.Sprintf("publish: %v", err)})
		return
	}
	m.opts.Logger.Printf("monitor: %s drifted at window %d; re-induced v%d from %d reservoir rows",
		st.name, window, meta.Version, tab.NumRows())
	m.event(st, Event{Kind: EventReinduced, Window: window, Version: st.version, NewVersion: meta.Version,
		Message: fmt.Sprintf("re-induced from %d reservoir rows", tab.NumRows())})

	// The successor becomes the tracked version with a fresh baseline;
	// history (snapshots, events) carries across. adoptModel rebuilds the
	// window accumulators for the successor's attribute set — a model
	// re-induced from a small reservoir can model fewer attributes than
	// its predecessor, and stale accumulators would misattribute tallies.
	st.version = meta.Version
	st.createdAt = meta.CreatedAt
	st.adoptModel(next)
	st.baseline = profile
	st.baselineAdopted = false
	st.windowsSinceBaseline = 0
	st.ph.reset()
	st.drifted = false
	st.lastDelta = 0
	st.rv.resetSample()
}

// event appends to the bounded lifecycle log; st.mu must be held.
func (m *Monitor) event(st *modelState, e Event) {
	if e.At.IsZero() {
		e.At = m.opts.Now()
	}
	st.events = append(st.events, e)
	if len(st.events) > m.opts.MaxEvents {
		st.events = st.events[len(st.events)-m.opts.MaxEvents:]
	}
}

// Forget drops the named model's monitoring state (after the model is
// deleted from the registry). Without this, a model recreated under the
// same name would inherit the deleted model's baseline, windows and
// reservoir — and, because versions restart at 1, the stale state would
// never be reset by the version check.
func (m *Monitor) Forget(name string) {
	m.mu.Lock()
	delete(m.models, name)
	m.mu.Unlock()
}

// Quality returns a copy of the named model's monitoring state; ok is
// false when the monitor has not observed the model yet.
func (m *Monitor) Quality(name string) (State, bool) {
	m.mu.Lock()
	st, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return State{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version == 0 {
		// The entry was created by a concurrent first observation whose
		// resetForVersion has not run yet; there is no state to report
		// (and st.rv is still nil).
		return State{}, false
	}
	out := State{
		Name:            st.name,
		Version:         st.version,
		WindowRows:      m.opts.WindowRows,
		Windows:         st.windows,
		PendingRows:     st.winRows,
		Baseline:        st.baseline,
		BaselineAdopted: st.baselineAdopted,
		// Empty histories marshal as [] (not null) for wire clients.
		Snapshots: append([]Snapshot{}, st.snapshots...),
		Events:    append([]Event{}, st.events...),
		Drift: DriftState{
			Drifted:              st.drifted,
			LastDelta:            st.lastDelta,
			PH:                   st.ph.PH,
			PHMean:               st.ph.Mean,
			WindowsSinceBaseline: st.windowsSinceBaseline,
		},
		ReservoirRows: len(st.rv.rows),
		ReservoirSeen: st.rv.seen,
		AutoReinduce:  m.opts.AutoReinduce,
	}
	return out, true
}
