package monitor

import (
	"math/rand"

	"dataaudit/internal/dataset"
)

// reservoir keeps a bounded uniform sample of audited rows (algorithm R)
// for drift-triggered re-induction. The PRNG is seeded, so the sample —
// and therefore the re-induced model — is a deterministic function of the
// observed row sequence.
type reservoir struct {
	schema *dataset.Schema
	cap    int
	rng    *rand.Rand
	rows   [][]dataset.Value
	seen   int64
}

func newReservoir(schema *dataset.Schema, capRows int, seed int64) *reservoir {
	return &reservoir{
		schema: schema,
		cap:    capRows,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// offer considers one row for the sample; the row is copied, never
// retained.
func (rv *reservoir) offer(row []dataset.Value) {
	rv.seen++
	if len(rv.rows) < rv.cap {
		rv.rows = append(rv.rows, append([]dataset.Value(nil), row...))
		return
	}
	if j := rv.rng.Int63n(rv.seen); j < int64(rv.cap) {
		copy(rv.rows[j], row)
	}
}

// table materializes the sample as a Table over the reservoir's schema.
func (rv *reservoir) table() *dataset.Table {
	t := dataset.NewTable(rv.schema)
	for _, row := range rv.rows {
		t.AppendRow(row)
	}
	return t
}

// resetSample drops the sampled rows (after they were consumed by a
// re-induction) but keeps the PRNG stream, so determinism holds across
// the whole observation sequence.
func (rv *reservoir) resetSample() {
	rv.rows = rv.rows[:0]
	rv.seen = 0
}

// restore refills the sample from a persisted table (state reload). The
// PRNG was freshly seeded by the caller: the recovered rows and the seen
// count match the pre-restart sample exactly, while the sampling stream
// restarts from the seed.
func (rv *reservoir) restore(tab *dataset.Table, seen int64) {
	rv.rows = rv.rows[:0]
	buf := make([]dataset.Value, tab.NumCols())
	for r := 0; r < tab.NumRows(); r++ {
		rv.rows = append(rv.rows, append([]dataset.Value(nil), tab.RowInto(r, buf)...))
	}
	if seen < int64(len(rv.rows)) {
		seen = int64(len(rv.rows))
	}
	rv.seen = seen
}
