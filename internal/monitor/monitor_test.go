package monitor

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// fixture builds a relation with a strong BRV → GBM dependency, a model
// induced on clean history, and a polluted table in which every GBM value
// contradicts the dependency — the drift source.
func fixture(t *testing.T, rows int) (model *audit.Model, clean, dirty *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501", "600"),
		dataset.NewNominal("KBM", "01", "02"),
		dataset.NewNominal("GBM", "901", "911", "950"),
		dataset.NewNumeric("DISP", 1000, 4000),
	)
	clean = dataset.NewTable(schema)
	rng := rand.New(rand.NewSource(2003))
	row := make([]dataset.Value, 4)
	for i := 0; i < rows; i++ {
		brv := rng.Intn(3)
		disp := 1500 + float64(brv)*1000 + rng.NormFloat64()*80
		if disp < 1000 {
			disp = 1000
		}
		if disp > 4000 {
			disp = 4000
		}
		row[0], row[1], row[2], row[3] = dataset.Nom(brv), dataset.Nom(rng.Intn(2)), dataset.Nom(brv), dataset.Num(disp)
		clean.AppendRow(row)
	}
	var err error
	// A model trained on clean history needs its pure rules to flag
	// deviations in future loads (the cmd/audit -induce default).
	model, err = audit.Induce(clean, audit.Options{MinConfidence: 0.8, Filter: audittree.FilterReachableOnly})
	if err != nil {
		t.Fatal(err)
	}
	dirty = clean.Clone()
	for r := 0; r < dirty.NumRows(); r++ {
		brv := dirty.Get(r, 0).NomIdx()
		dirty.Set(r, 2, dataset.Nom((brv+1)%3)) // break BRV → GBM everywhere
	}
	return model, clean, dirty
}

func fixedClock() func() time.Time {
	base := time.Date(2026, 7, 29, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
}

func metaFor(model *audit.Model, clean *dataset.Table) registry.Meta {
	return registry.Meta{
		Name:    "engines",
		Version: 1,
		Quality: model.QualityProfile(clean, 0),
	}
}

// stateJSON marshals the monitor's view of a model for byte comparison.
func stateJSON(t *testing.T, m *Monitor, name string) []byte {
	t.Helper()
	st, ok := m.Quality(name)
	if !ok {
		t.Fatalf("no monitoring state for %q", name)
	}
	b, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFoldDeterminism is the monitoring mirror of the stream engine's
// differential tests: the same sequence of fold inputs must yield
// byte-identical snapshot history (and reservoir, drift and event state)
// regardless of how the underlying streams were chunked or parallelized,
// and regardless of whether the batch or the stream path produced the
// observation.
func TestFoldDeterminism(t *testing.T) {
	model, clean, dirty := fixture(t, 3000)
	meta := metaFor(model, clean)
	opts := Options{WindowRows: 700, Now: nil, Seed: 7}

	// Observation sequence: clean, dirty, clean — three requests.
	parts := []*dataset.Table{clean, dirty, clean}

	streamed := func(chunk, workers int) []byte {
		mon := New(nil, withClock(opts))
		for _, part := range parts {
			obs := mon.Stream(meta, model)
			res, err := model.AuditStream(dataset.NewTableSource(part), audit.StreamOptions{
				ChunkSize: chunk,
				Workers:   workers,
				TopK:      10,
				OnRow:     obs.OnRow,
			})
			if err != nil {
				t.Fatal(err)
			}
			obs.Finish(res)
		}
		return stateJSON(t, mon, meta.Name)
	}

	want := streamed(7, 1)
	for _, cfg := range []struct{ chunk, workers int }{{64, 4}, {1024, 8}, {311, 3}} {
		if got := streamed(cfg.chunk, cfg.workers); string(got) != string(want) {
			t.Fatalf("snapshot history differs for chunk=%d workers=%d:\n%s\n--- vs ---\n%s",
				cfg.chunk, cfg.workers, got, want)
		}
	}

	// The batch path must fold to the identical state: same rows offered
	// in the same order, same aggregate tallies.
	monB := New(nil, withClock(opts))
	for _, part := range parts {
		res := model.AuditTableParallel(part, 4)
		monB.ObserveBatch(meta, model, part, res)
	}
	if got := stateJSON(t, monB, meta.Name); string(got) != string(want) {
		t.Fatalf("batch-fed state differs from stream-fed state:\n%s\n--- vs ---\n%s", got, want)
	}
}

// withClock attaches a fresh deterministic clock to a copy of opts.
func withClock(o Options) Options {
	o.Now = fixedClock()
	return o
}

// TestDriftLifecycle drives the full loop at library level: a clean
// baseline, clean windows that stay quiet, polluted windows that fire the
// drift detector, and auto re-induction publishing version 2 through the
// registry's atomic path with a fresh baseline attached.
func TestDriftLifecycle(t *testing.T) {
	model, clean, dirty := fixture(t, 3000)
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profile := model.QualityProfile(clean, 0)
	meta, err := reg.PublishWithQuality("engines", model, profile)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Quality == nil {
		t.Fatal("published meta lost its quality baseline")
	}

	mon := New(reg, withClock(Options{
		WindowRows:      1000,
		MinWindows:      1,
		DriftDelta:      0.10,
		AutoReinduce:    true,
		MinReinduceRows: 200,
		ReservoirRows:   2048,
	}))

	// Clean traffic: window seals, no drift.
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	st, _ := mon.Quality("engines")
	if st.Windows == 0 || st.Drift.Drifted {
		t.Fatalf("clean window mis-scored: %+v", st.Drift)
	}
	for _, e := range st.Events {
		if e.Kind == EventDrift {
			t.Fatalf("drift fired on clean data: %+v", e)
		}
	}

	// Polluted traffic: drift fires, the background worker re-induces and
	// publishes v2 (WaitReinductions is the async rendezvous).
	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	mon.WaitReinductions()
	st, _ = mon.Quality("engines")
	var drifted, reinduced bool
	for _, e := range st.Events {
		switch e.Kind {
		case EventDrift:
			drifted = true
			if e.Detector == "" || e.Delta <= 0 {
				t.Fatalf("drift event lacks detector/delta: %+v", e)
			}
		case EventReinduced:
			reinduced = true
			if e.NewVersion != 2 {
				t.Fatalf("reinduced to version %d, want 2", e.NewVersion)
			}
		}
	}
	if !drifted || !reinduced {
		t.Fatalf("lifecycle incomplete (drift=%v reinduce=%v): %+v", drifted, reinduced, st.Events)
	}
	if st.Version != 2 || st.Drift.Drifted {
		t.Fatalf("state not reset onto the successor: version=%d drift=%+v", st.Version, st.Drift)
	}

	// The successor is committed: latest is v2 and carries its own
	// baseline.
	meta2, err := reg.MetaOf("engines")
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Version != 2 || meta2.Quality == nil {
		t.Fatalf("successor meta wrong: version=%d quality=%v", meta2.Version, meta2.Quality != nil)
	}

	// Stale scores against v1 must not perturb the v2 state.
	before, _ := mon.Quality("engines")
	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	after, _ := mon.Quality("engines")
	if after.Windows != before.Windows || after.PendingRows != before.PendingRows {
		t.Fatalf("stale v1 observation folded into v2 state")
	}
}

// TestDriftAttributionRoutesPartialReinduce drives the attribution loop:
// the per-attribute detectors latch on the attributes the pollution
// actually broke, the drift event names them, the background worker takes
// the partial re-induction path over exactly that set, and the successor
// comes up with cleared latches. The control run with
// DisablePartialReinduce pins the escape hatch: same drift, same
// attribution, but the worker induces from scratch.
func TestDriftAttributionRoutesPartialReinduce(t *testing.T) {
	run := func(disable bool) State {
		model, clean, dirty := fixture(t, 3000)
		reg, err := registry.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		meta, err := reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
		if err != nil {
			t.Fatal(err)
		}
		mon := New(reg, withClock(Options{
			WindowRows:             1000,
			MinWindows:             1,
			DriftDelta:             0.10,
			AutoReinduce:           true,
			MinReinduceRows:        200,
			ReservoirRows:          2048,
			DisablePartialReinduce: disable,
		}))
		mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
		mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
		mon.WaitReinductions()
		st, ok := mon.Quality("engines")
		if !ok {
			t.Fatal("no monitoring state")
		}
		return st
	}

	st := run(false)
	var drift, reind *Event
	for i := range st.Events {
		switch st.Events[i].Kind {
		case EventDrift:
			drift = &st.Events[i]
		case EventReinduced:
			reind = &st.Events[i]
		}
	}
	if drift == nil || reind == nil {
		t.Fatalf("lifecycle incomplete: %+v", st.Events)
	}
	if len(drift.Attrs) == 0 {
		t.Fatalf("drift event carries no attributed attributes: %+v", drift)
	}
	var hasGBM bool
	for _, a := range drift.Attrs {
		hasGBM = hasGBM || a == "GBM"
	}
	if !hasGBM {
		t.Fatalf("pollution broke GBM but attribution found %v", drift.Attrs)
	}
	want := fmt.Sprintf("partial re-induction of %d attributes", len(drift.Attrs))
	if !strings.Contains(reind.Message, want) {
		t.Fatalf("worker did not take the partial path over the attributed set: %q (want %q)", reind.Message, want)
	}
	if st.Version != 2 {
		t.Fatalf("partial successor not adopted: version=%d", st.Version)
	}
	// The successor's baseline starts with every latch cleared.
	if st.Drift.Drifted || len(st.Drift.Attrs) != 0 {
		t.Fatalf("latches survived re-induction: %+v", st.Drift)
	}

	// Control: partial path disabled — the same drift re-induces from
	// scratch and says so.
	st = run(true)
	reind = nil
	for i := range st.Events {
		if st.Events[i].Kind == EventReinduced {
			reind = &st.Events[i]
		}
	}
	if reind == nil {
		t.Fatalf("control run never re-induced: %+v", st.Events)
	}
	if !strings.Contains(reind.Message, "full induction") {
		t.Fatalf("DisablePartialReinduce did not force a full induction: %q", reind.Message)
	}
}

// TestBaselineAdopted covers models published without an induction-time
// profile: the first sealed window becomes the baseline and only later
// windows can drift.
func TestBaselineAdopted(t *testing.T) {
	model, clean, dirty := fixture(t, 2000)
	meta := registry.Meta{Name: "bare", Version: 1} // no Quality
	mon := New(nil, withClock(Options{WindowRows: 1000, MinWindows: 1, DriftDelta: 0.10}))

	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	st, _ := mon.Quality("bare")
	if st.Baseline == nil || !st.BaselineAdopted {
		t.Fatalf("first window not adopted as baseline: %+v", st)
	}
	if len(st.Events) == 0 || st.Events[0].Kind != EventBaselineAdopted {
		t.Fatalf("missing baseline-adopted event: %+v", st.Events)
	}

	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	st, _ = mon.Quality("bare")
	if !st.Drift.Drifted {
		t.Fatalf("polluted window after adopted baseline did not drift: %+v", st.Drift)
	}
	// Auto re-induction is off: the drift must be logged as skipped, not
	// silently dropped.
	var skipped bool
	for _, e := range st.Events {
		if e.Kind == EventReinduceSkipped {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("drift without auto-reinduce not logged as skipped: %+v", st.Events)
	}
}

// TestCompletenessDrift drives the null-rate detector: a load whose GBM
// column loses a fifth of its values fires a completeness drift event
// attributed to GBM, latches DriftState.NullAttrs — and never touches
// the re-induction path, because re-inducing on a null-ridden load would
// teach the successor that the nulls are normal.
func TestCompletenessDrift(t *testing.T) {
	model, clean, _ := fixture(t, 3000)
	meta := metaFor(model, clean)
	nulled := clean.Clone()
	for r := 0; r < nulled.NumRows(); r += 5 {
		nulled.Set(r, 2, dataset.Null()) // GBM: null rate 0.2 vs baseline ~0
	}
	// The accuracy detectors are parked out of reach so only the
	// completeness detector can fire.
	mon := New(nil, withClock(Options{
		WindowRows: 1000, MinWindows: 1,
		DriftDelta: 0.99, PHLambda: 100,
		NullDelta:    0.05,
		AutoReinduce: true,
	}))

	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	st, _ := mon.Quality("engines")
	if len(st.Drift.NullAttrs) != 0 {
		t.Fatalf("completeness latched on clean data: %v", st.Drift.NullAttrs)
	}

	mon.ObserveBatch(meta, model, nulled, model.AuditTable(nulled))
	st, _ = mon.Quality("engines")
	var comp *Event
	for i := range st.Events {
		if st.Events[i].Kind == EventDrift && st.Events[i].Detector == "completeness" {
			comp = &st.Events[i]
		}
	}
	if comp == nil {
		t.Fatalf("no completeness drift event: %+v", st.Events)
	}
	var hasGBM bool
	for _, a := range comp.Attrs {
		hasGBM = hasGBM || a == "GBM"
	}
	if !hasGBM || comp.Delta < 0.1 {
		t.Fatalf("completeness event misattributed: attrs=%v delta=%g", comp.Attrs, comp.Delta)
	}
	found := false
	for _, a := range st.Drift.NullAttrs {
		found = found || a == "GBM"
	}
	if !found {
		t.Fatalf("GBM not latched in NullAttrs: %v", st.Drift.NullAttrs)
	}
	// The sealed window records the raw null counts.
	last := st.Snapshots[len(st.Snapshots)-1]
	var gbmNulls int64
	for _, aw := range last.Attrs {
		if aw.Attr == "GBM" {
			gbmNulls = aw.Nulls
		}
	}
	if gbmNulls != int64((nulled.NumRows()+4)/5) {
		t.Fatalf("window GBM nulls = %d, want %d", gbmNulls, (nulled.NumRows()+4)/5)
	}
	// Completeness never enters the re-induction loop, even with
	// AutoReinduce on: no reinduce events, no model-level latch.
	if st.Drift.Drifted {
		t.Fatalf("completeness drift set the model-level latch: %+v", st.Drift)
	}
	for _, e := range st.Events {
		switch e.Kind {
		case EventReinduced, EventReinduceSkipped, EventReinduceFailed:
			t.Fatalf("completeness drift reached the re-induction path: %+v", e)
		}
	}

	// The latch holds without duplicate events on further null-heavy
	// windows.
	mon.ObserveBatch(meta, model, nulled, model.AuditTable(nulled))
	st, _ = mon.Quality("engines")
	n := 0
	for _, e := range st.Events {
		if e.Detector == "completeness" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("completeness event fired %d times, want 1 (latched)", n)
	}
}

// TestPageHinkleyCatchesSlowDrift pins the cumulative detector: a
// degradation too small for the single-window threshold accumulates into
// a Page-Hinkley alarm.
func TestPageHinkleyCatchesSlowDrift(t *testing.T) {
	ph := pageHinkley{Delta: 0.005, Lambda: 0.25}
	// Stable series: no alarm.
	for i := 0; i < 50; i++ {
		if ph.observe(0.02) {
			t.Fatalf("alarm on a flat series at step %d", i)
		}
	}
	// Mean shifts up by 0.08 — under a 0.10 threshold — but persists.
	fired := false
	for i := 0; i < 50; i++ {
		if ph.observe(0.10) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("Page-Hinkley never fired on a persistent small shift")
	}
	ph.reset()
	if ph.PH != 0 || ph.N != 0 {
		t.Fatalf("reset incomplete: %+v", ph)
	}
}

// TestReservoirDeterministicAndBounded pins the re-induction sample:
// capacity is respected, the sample is a deterministic function of the
// offered sequence, and resetSample keeps the PRNG stream.
func TestReservoirDeterministicAndBounded(t *testing.T) {
	schema := dataset.MustSchema(dataset.NewNumeric("x", 0, 1e6))
	sample := func() *dataset.Table {
		rv := newReservoir(schema, 32, 99)
		row := make([]dataset.Value, 1)
		for i := 0; i < 10_000; i++ {
			row[0] = dataset.Num(float64(i))
			rv.offer(row)
		}
		if len(rv.rows) != 32 || rv.seen != 10_000 {
			t.Fatalf("reservoir off: %d rows, %d seen", len(rv.rows), rv.seen)
		}
		return rv.table()
	}
	a, b := sample(), sample()
	for r := 0; r < a.NumRows(); r++ {
		if a.Get(r, 0).Float() != b.Get(r, 0).Float() {
			t.Fatalf("reservoir not deterministic at row %d", r)
		}
	}
}

// TestForget pins the delete hook: dropped state is gone, and a model
// recreated under the same name (version 1 again) starts fresh.
func TestForget(t *testing.T) {
	model, clean, _ := fixture(t, 2000)
	meta := metaFor(model, clean)
	mon := New(nil, withClock(Options{WindowRows: 1000}))
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	if _, ok := mon.Quality("engines"); !ok {
		t.Fatal("no state after observe")
	}
	mon.Forget("engines")
	if _, ok := mon.Quality("engines"); ok {
		t.Fatal("state survived Forget")
	}
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	st, ok := mon.Quality("engines")
	if !ok || st.Windows != 1 || len(st.Snapshots) != 1 {
		t.Fatalf("recreated state not fresh: %+v", st)
	}
}

// TestIncarnationCheck pins the delete/recreate race guard: two metas
// with the same version but different publish times are different
// incarnations of the name — the newer one resets the state, and
// observations of the older one are dropped instead of poisoning it.
func TestIncarnationCheck(t *testing.T) {
	model, clean, _ := fixture(t, 2000)
	old := metaFor(model, clean)
	old.CreatedAt = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	recreated := old
	recreated.CreatedAt = old.CreatedAt.Add(time.Hour)

	mon := New(nil, withClock(Options{WindowRows: 1000}))
	mon.ObserveBatch(old, model, clean, model.AuditTable(clean))
	st, _ := mon.Quality("engines")
	if st.Windows != 1 {
		t.Fatalf("old incarnation not folded: %+v", st)
	}

	// The recreated model's first audit resets the state...
	mon.ObserveBatch(recreated, model, clean, model.AuditTable(clean))
	st, _ = mon.Quality("engines")
	if st.Windows != 1 || len(st.Snapshots) != 2 {
		// windows restarts are not visible (history carries), but the
		// reservoir and window accumulation reset: ReservoirSeen counts
		// only the new incarnation's rows.
		t.Logf("state after recreate: %+v", st)
	}
	if st.ReservoirSeen != int64(clean.NumRows()) {
		t.Fatalf("recreated incarnation inherited the old reservoir: seen=%d want %d", st.ReservoirSeen, clean.NumRows())
	}

	// ...and a late observation of the old incarnation is dropped.
	before, _ := mon.Quality("engines")
	mon.ObserveBatch(old, model, clean, model.AuditTable(clean))
	after, _ := mon.Quality("engines")
	if after.ReservoirSeen != before.ReservoirSeen || after.Windows != before.Windows {
		t.Fatalf("stale incarnation folded: before=%+v after=%+v", before, after)
	}
}
