package monitor

import (
	"fmt"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/obs"
)

// Asynchronous re-induction. Induction over the reservoir plus the
// quality-profile audit of the candidate take CPU-seconds on a real
// sample — far too long to run under st.mu inside a client's audit
// request, where every concurrent batch and in-flight NDJSON stream of
// the model (via OnRow) would stall behind it. Instead the drift path
// snapshots everything the induction needs under the lock, runs the
// expensive part in a background worker, and re-locks only to swap the
// successor in — guarded by (version, createdAt, dead), so a model that
// was republished, deleted or recreated while the worker ran can never
// be clobbered by a stale candidate.

// reinduceJob is the immutable snapshot a re-induction worker runs on.
// Everything here is private to the worker: the sample is a fresh Table
// copied out of the reservoir under st.mu, so later audits mutating the
// reservoir race with nothing.
type reinduceJob struct {
	name      string
	version   int
	createdAt time.Time
	window    int
	opts      audit.Options
	sample    *dataset.Table
	// attrs are the schema columns the per-attribute detectors attributed
	// the drift to; non-empty routes the worker through the partial
	// re-induction path (only these attributes rebuilt, the rest shared
	// with the predecessor). Empty falls back to a full induction.
	attrs []int
}

// triggerReinduceLocked starts the asynchronous re-induction path after a
// drift, or logs why it did not; st.mu must be held. Duplicate triggers
// while a worker is in flight coalesce into the running one. attrs is the
// drifted-attribute set for the partial path (may be empty).
func (m *Monitor) triggerReinduceLocked(st *modelState, window int, attrs []int) {
	if !m.opts.AutoReinduce {
		m.event(st, Event{Kind: EventReinduceSkipped, Window: window, Version: st.version,
			Message: "auto re-induction disabled"})
		m.reinduceOutcome(st.name, obs.OutcomeSkipped, -1)
		return
	}
	if st.reinducing {
		m.event(st, Event{Kind: EventReinduceSkipped, Window: window, Version: st.version,
			Message: "re-induction already in flight; coalesced"})
		m.reinduceOutcome(st.name, obs.OutcomeSkipped, -1)
		return
	}
	if len(st.rv.rows) < m.opts.MinReinduceRows {
		m.event(st, Event{Kind: EventReinduceSkipped, Window: window, Version: st.version,
			Message: fmt.Sprintf("reservoir has %d rows, need %d", len(st.rv.rows), m.opts.MinReinduceRows)})
		m.reinduceOutcome(st.name, obs.OutcomeSkipped, -1)
		return
	}
	job := reinduceJob{
		name:      st.name,
		version:   st.version,
		createdAt: st.createdAt,
		window:    window,
		opts:      st.opts,
		sample:    st.rv.table(),
		attrs:     attrs,
	}
	st.reinducing = true
	m.wg.Add(1)
	go m.reinduce(st, job)
}

// reinduce is the background worker: induce a successor from the
// reservoir snapshot, audit its quality profile, publish it through the
// registry's atomic path, and swap it in — all without holding st.mu
// during the expensive stages.
func (m *Monitor) reinduce(st *modelState, job reinduceJob) {
	defer m.wg.Done()
	start := m.opts.Now()
	elapsed := func() float64 { return m.opts.Now().Sub(start).Seconds() }
	if h := m.opts.hookReinduceStart; h != nil {
		h(job.name, job.version)
	}

	next, partial, indErr := m.induceCandidate(job)
	var profile *audit.QualityProfile
	if indErr == nil {
		profile = next.QualityProfile(job.sample, 0)
	}

	// Pre-publish guard: if the tracked incarnation already moved on (or
	// the model was deleted), discard the candidate before touching the
	// registry — a publish for a dead name would recreate the deleted
	// model's directory as a side effect.
	st.mu.Lock()
	if !st.guardHolds(job) {
		m.finishSuperseded(st, job, 0)
		st.mu.Unlock()
		m.reinduceOutcome(job.name, obs.OutcomeSuperseded, elapsed())
		return
	}
	if indErr != nil {
		st.reinducing = false
		m.event(st, Event{Kind: EventReinduceFailed, Window: job.window, Version: job.version,
			Message: fmt.Sprintf("induction over %d reservoir rows: %v", job.sample.NumRows(), indErr)})
		m.saveLocked(st)
		st.mu.Unlock()
		m.reinduceOutcome(job.name, obs.OutcomeFailed, elapsed())
		return
	}
	st.mu.Unlock()

	// The publish (disk I/O) also runs outside st.mu. A Forget/Delete
	// landing in this narrow window can still interleave with the commit
	// — that ordering is a registry-level concern the monitor cannot
	// close from here — but the swap below re-checks the guard, so the
	// monitor state itself stays consistent and the outcome is logged as
	// superseded rather than silently adopted.
	meta, pubErr := m.reg.PublishWithQuality(job.name, next, profile)

	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.guardHolds(job) {
		m.finishSuperseded(st, job, meta.Version)
		m.reinduceOutcome(job.name, obs.OutcomeSuperseded, elapsed())
		return
	}
	st.reinducing = false
	if pubErr != nil {
		m.event(st, Event{Kind: EventReinduceFailed, Window: job.window, Version: job.version,
			Message: fmt.Sprintf("publish: %v", pubErr)})
		m.saveLocked(st)
		m.reinduceOutcome(job.name, obs.OutcomeFailed, elapsed())
		return
	}

	how := "full induction"
	if partial > 0 {
		how = fmt.Sprintf("partial re-induction of %d attributes", partial)
	}
	m.opts.Logger.Printf("monitor: %s drifted at window %d; re-induced v%d from %d reservoir rows (%s)",
		job.name, job.window, meta.Version, job.sample.NumRows(), how)
	m.event(st, Event{Kind: EventReinduced, Window: job.window, Version: job.version, NewVersion: meta.Version,
		Message: fmt.Sprintf("re-induced from %d reservoir rows (%s)", job.sample.NumRows(), how)})

	// The successor becomes the tracked version with a fresh baseline;
	// history (snapshots, events) carries across. adoptModel rebuilds the
	// window accumulators for the successor's attribute set — a model
	// re-induced from a small reservoir can model fewer attributes than
	// its predecessor, and stale accumulators would misattribute tallies.
	st.version = meta.Version
	st.createdAt = meta.CreatedAt
	st.adoptModel(next)
	st.baseline = profile
	st.baselineAdopted = false
	st.windowsSinceBaseline = 0
	st.ph.reset()
	st.drifted = false
	st.lastDelta = 0
	st.rv.resetSample()
	if mets := m.opts.Metrics; mets != nil {
		// Re-intern immediately (adoptModel invalidated the handles) so
		// the drift gauges clear now, not at the next fold.
		st.buildMetricsLocked(mets)
		st.syncDriftGaugesLocked()
	}
	m.saveLocked(st)
	m.reinduceOutcome(job.name, obs.OutcomeReinduced, elapsed())
}

// induceCandidate builds the successor model for a re-induction job. When
// the drift was attributed to specific attributes, the predecessor model
// is fetched back from the registry (guarded by the same (version,
// createdAt) incarnation check as the swap) and only the drifted
// attributes are re-induced — with no Prev delta, because consecutive
// reservoir samples share no row identity, so the families take their
// full-replacement path over frozen state. Any failure along the partial
// path falls back to a full induction from scratch; partial reports how
// many attributes the partial path rebuilt (0 for a full induction).
func (m *Monitor) induceCandidate(job reinduceJob) (next *audit.Model, partial int, err error) {
	if len(job.attrs) > 0 && !m.opts.DisablePartialReinduce && m.reg != nil {
		prev, meta, getErr := m.reg.GetVersion(job.name, job.version)
		if getErr == nil && meta.CreatedAt.Equal(job.createdAt) {
			next, reErr := prev.ReinduceAttrs(job.sample, job.attrs, audit.ReinduceOptions{
				Mode: audit.ReinduceMode(m.opts.ReinduceMode),
			})
			if reErr == nil {
				return next, len(job.attrs), nil
			}
			m.opts.Logger.Printf("monitor: %s: partial re-induction of %d attributes failed (%v); falling back to full induction",
				job.name, len(job.attrs), reErr)
		}
	}
	next, err = audit.Induce(job.sample, job.opts)
	return next, 0, err
}

// reinduceOutcome records one re-induction outcome; seconds is the
// worker's end-to-end duration, or negative for trigger-time skips (no
// worker ran, so there is no duration to observe).
func (m *Monitor) reinduceOutcome(name, outcome string, seconds float64) {
	mets := m.opts.Metrics
	if mets == nil {
		return
	}
	mets.Reinductions.With(name, outcome).Inc()
	if seconds >= 0 {
		mets.ReinduceSeconds.Observe(seconds)
	}
}

// guardHolds reports whether the worker's snapshot still matches the
// tracked incarnation; st.mu must be held.
func (st *modelState) guardHolds(job reinduceJob) bool {
	return !st.dead && st.version == job.version && st.createdAt.Equal(job.createdAt)
}

// finishSuperseded logs a worker that lost the guard race; st.mu must be
// held. published is the committed successor version when the registry
// publish had already happened (0 otherwise).
func (m *Monitor) finishSuperseded(st *modelState, job reinduceJob, published int) {
	st.reinducing = false
	msg := "model version changed during re-induction; candidate discarded"
	if st.dead {
		msg = "model deleted during re-induction; candidate discarded"
	}
	if published > 0 {
		msg += fmt.Sprintf(" (v%d had already been published)", published)
	}
	m.event(st, Event{Kind: EventReinduceSuperseded, Window: job.window, Version: job.version,
		NewVersion: published, Message: msg})
	m.saveLocked(st)
}

// WaitReinductions blocks until every in-flight background re-induction
// worker and pending asynchronous state write has finished — the
// rendezvous tests and graceful shutdown use before inspecting or
// persisting final state. It does not prevent new work from starting;
// callers are expected to have quiesced the observation sources first.
func (m *Monitor) WaitReinductions() { m.wg.Wait() }
