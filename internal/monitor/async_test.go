package monitor

import (
	"io"
	"sync"
	"testing"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// The concurrency harness for the asynchronous re-induction worker: the
// hookReinduceStart instrumentation holds a worker hostage on a channel,
// which is the deterministic stand-in for a slow induction. Under the old
// synchronous design (Induce + QualityProfile + publish inside st.mu on
// the drifting audit's request path) every test below deadlocks instead
// of merely slowing down, so they double as regression tests for the
// reinduceLocked stall.

// gatedSource wraps a TableSource and blocks mid-stream after gateAfter
// rows until gate is closed — it keeps an AuditStream (the library half of
// the NDJSON route) genuinely in flight across a re-induction trigger.
type gatedSource struct {
	src       dataset.RowSource
	gate      <-chan struct{}
	gateAfter int64
	n         int64
}

func (g *gatedSource) Schema() *dataset.Schema { return g.src.Schema() }

func (g *gatedSource) Next(buf []dataset.Value) (int64, error) {
	if g.n == g.gateAfter {
		<-g.gate
	}
	g.n++
	return g.src.Next(buf)
}

// publishFixture publishes the fixture model with its quality baseline
// into a fresh registry.
func publishFixture(t *testing.T, rows int) (*registry.Registry, *audit.Model, *dataset.Table, *dataset.Table, registry.Meta) {
	t.Helper()
	model, clean, dirty := fixture(t, rows)
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
	if err != nil {
		t.Fatal(err)
	}
	return reg, model, clean, dirty, meta
}

// TestReinductionDoesNotBlockAudits is the stress test for the st.mu
// stall: while a (instrumented, arbitrarily slow) re-induction is in
// flight for a drifted model, an NDJSON-style stream that was already
// mid-flight when drift fired AND a burst of parallel batch audits of
// the same model must all complete — provably before the re-induction
// finishes — and the v2 swap must still be observed afterwards.
func TestReinductionDoesNotBlockAudits(t *testing.T) {
	reg, model, clean, dirty, meta := publishFixture(t, 3000)

	reinduceStarted := make(chan struct{})
	reinduceRelease := make(chan struct{})
	opts := Options{
		WindowRows:      500,
		MinWindows:      1,
		DriftDelta:      0.05,
		AutoReinduce:    true,
		MinReinduceRows: 100,
		ReservoirRows:   1024,
	}
	opts.hookReinduceStart = func(string, int) {
		close(reinduceStarted) // panics on a second worker: triggers must coalesce
		<-reinduceRelease
	}
	mon := New(reg, withClock(opts))

	// An NDJSON-style stream is mid-flight (half its rows consumed, rest
	// gated) when the drifting batch lands.
	streamGate := make(chan struct{})
	streamDone := make(chan error, 1)
	obs := mon.Stream(meta, model)
	go func() {
		src := &gatedSource{src: dataset.NewTableSource(clean), gate: streamGate, gateAfter: int64(clean.NumRows() / 2)}
		res, err := model.AuditStream(src, audit.StreamOptions{
			ChunkSize: 64, Workers: 2, TopK: 10, OnRow: obs.OnRow,
		})
		if err == nil {
			obs.Finish(res)
		}
		streamDone <- err
	}()

	// Drift fires inside this audit; the worker parks in the hook.
	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	select {
	case <-reinduceStarted:
	case <-time.After(30 * time.Second):
		t.Fatal("re-induction worker never started")
	}

	if st, ok := mon.Quality("engines"); !ok || !st.Reinducing || st.Version != meta.Version {
		t.Fatalf("in-flight state wrong: ok=%v %+v", ok, st)
	}

	// With the worker still parked: release the gated stream and fire
	// parallel batch audits. All of it must finish while re-induction is
	// "running" — the old code held st.mu here and everything below
	// would park forever on the lock.
	close(streamGate)
	const parallelBatches = 4
	start := time.Now()
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < parallelBatches; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel batch audits stalled behind the in-flight re-induction")
	}
	select {
	case err := <-streamDone:
		if err != nil && err != io.EOF {
			t.Fatalf("in-flight stream failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight stream stalled behind the in-flight re-induction")
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("audits of the drifting model took %s while re-induction ran", elapsed)
	}

	// Let the worker land and verify the swap was observed.
	close(reinduceRelease)
	mon.WaitReinductions()

	st, _ := mon.Quality("engines")
	if st.Version != 2 || st.Reinducing || st.Drift.Drifted {
		t.Fatalf("v2 swap not observed: %+v", st)
	}
	var reinduced bool
	for _, e := range st.Events {
		if e.Kind == EventReinduced && e.NewVersion == 2 {
			reinduced = true
		}
	}
	if !reinduced {
		t.Fatalf("no reinduced event: %+v", st.Events)
	}
	if meta2, err := reg.MetaOf("engines"); err != nil || meta2.Version != 2 {
		t.Fatalf("registry latest = %+v, %v; want v2", meta2, err)
	}

	// The successor keeps folding: monitoring did not go dead. The probe
	// batch stays below WindowRows so no window can seal (a sealed window
	// against the successor's reservoir-trained baseline could
	// legitimately drift again, which is not what this probe is about).
	model2, meta2v, err := reg.Get("engines")
	if err != nil {
		t.Fatal(err)
	}
	probe := dataset.NewTable(clean.Schema())
	row := make([]dataset.Value, clean.NumCols())
	for r := 0; r < 200; r++ {
		probe.AppendRow(clean.RowInto(r, row))
	}
	before, _ := mon.Quality("engines")
	mon.ObserveBatch(meta2v, model2, probe, model2.AuditTable(probe))
	after, _ := mon.Quality("engines")
	if after.ReservoirSeen != before.ReservoirSeen+200 {
		t.Fatalf("successor state not folding: before=%d after=%d", before.ReservoirSeen, after.ReservoirSeen)
	}
}

// TestReinduceCoalesceAndSupersede pins the two guard behaviours of the
// background worker: a second drift trigger while a worker is in flight
// coalesces into it (no duplicate worker — the hook panics on a second
// start), and a worker whose tracked (version, createdAt) changed while
// it ran discards its candidate with a reinduce-superseded event instead
// of publishing.
func TestReinduceCoalesceAndSupersede(t *testing.T) {
	reg, model, clean, dirty, meta := publishFixture(t, 3000)

	started := make(chan struct{})
	release := make(chan struct{})
	opts := Options{
		WindowRows:      500,
		MinWindows:      1,
		DriftDelta:      0.05,
		AutoReinduce:    true,
		MinReinduceRows: 100,
		ReservoirRows:   1024,
	}
	opts.hookReinduceStart = func(string, int) {
		close(started) // a second worker would panic: coalescing regression
		<-release
	}
	mon := New(reg, withClock(opts))

	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	<-started

	// A newer version appears while the worker is parked (a manual
	// republish): the tracked incarnation moves on...
	meta2, err := reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Version != 2 {
		t.Fatalf("manual republish got v%d, want v2", meta2.Version)
	}
	// ...and a fresh drift of v2 must coalesce, not spawn a second worker.
	mon.ObserveBatch(meta2, model, dirty, model.AuditTable(dirty))

	st, _ := mon.Quality("engines")
	var coalesced bool
	for _, e := range st.Events {
		if e.Kind == EventReinduceSkipped && e.Version == 2 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("in-flight drift trigger not coalesced: %+v", st.Events)
	}

	close(release)
	mon.WaitReinductions()

	st, _ = mon.Quality("engines")
	var superseded bool
	for _, e := range st.Events {
		switch e.Kind {
		case EventReinduceSuperseded:
			superseded = true
		case EventReinduced:
			t.Fatalf("superseded worker swapped its candidate in: %+v", e)
		}
	}
	if !superseded {
		t.Fatalf("no reinduce-superseded event: %+v", st.Events)
	}
	if st.Version != 2 || st.Reinducing {
		t.Fatalf("state clobbered by superseded worker: %+v", st)
	}
	// The discarded candidate was never published: the registry still
	// tops out at the manual v2.
	if latest, err := reg.MetaOf("engines"); err != nil || latest.Version != 2 {
		t.Fatalf("registry latest = %+v, %v; want the manual v2", latest, err)
	}
}

// TestReinduceSupersededByForget pins the delete race: a model forgotten
// (deleted) while its re-induction worker is in flight must not be
// resurrected by that worker's publish.
func TestReinduceSupersededByForget(t *testing.T) {
	reg, model, _, dirty, meta := publishFixture(t, 3000)

	started := make(chan struct{})
	release := make(chan struct{})
	opts := Options{
		WindowRows:      500,
		MinWindows:      1,
		DriftDelta:      0.05,
		AutoReinduce:    true,
		MinReinduceRows: 100,
		ReservoirRows:   1024,
	}
	opts.hookReinduceStart = func(string, int) {
		close(started)
		<-release
	}
	mon := New(reg, withClock(opts))

	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	<-started
	mon.Forget("engines")
	close(release)
	mon.WaitReinductions()

	// The dead state swallowed the candidate: no v2 was published, and
	// the monitor reports no state for the name.
	if latest, err := reg.MetaOf("engines"); err != nil || latest.Version != 1 {
		t.Fatalf("forgotten model republished by in-flight worker: %+v, %v", latest, err)
	}
	if _, ok := mon.Quality("engines"); ok {
		t.Fatal("monitor state survived Forget")
	}
}
