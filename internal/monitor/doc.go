// Package monitor turns the one-shot auditing engine into a continuous
// quality-monitoring loop: the ongoing activity the paper frames auditing
// as (§5–§6), where structure models are induced once and then used to
// measure and monitor quality as new data arrives.
//
// A Monitor sits over the model registry and observes every batch
// (audit.Result) and stream (audit.StreamResult) scored through the
// serving layer. Observations accumulate into row-count windows; when a
// window fills, it is sealed into a Snapshot (rows, suspicious rate,
// per-attribute deviation tallies) and two drift detectors are run
// against the model's QualityProfile baseline — the quality statistics
// frozen on the training table at induction time:
//
//   - a threshold detector on the window's suspicious-rate delta versus
//     the baseline rate, and
//   - a Page-Hinkley cumulative test over the window rate series, which
//     catches slow upward drifts a single-window threshold misses.
//
// When drift fires, the monitor emits a lifecycle Event and — when
// auto-re-induction is enabled — re-induces a successor model from a
// bounded reservoir sample of recently audited rows and publishes it
// through the registry's atomic publish path, so the model lifecycle
// closes without operator intervention: induce → monitor → drift →
// re-induce → monitor. Re-induction runs in a background worker outside
// the per-model lock (worker.go): concurrent audits of a drifting model
// — including in-flight streams — are never blocked while it adapts,
// duplicate drift triggers coalesce into the running worker, and the
// final swap is guarded by (version, createdAt) so a model republished,
// deleted or recreated mid-flight discards the stale candidate instead
// of being clobbered by it.
//
// With Options.StateDir set the lifecycle is also crash-durable
// (persist.go): state commits atomically on every sealed window, every
// re-induction outcome and on Close, and is recovered lazily at the next
// boot — validated against the registry so a deleted incarnation's state
// file is discarded rather than resurrected, and degrading to fresh
// state (never failing the model) on corrupt files.
//
// Windows are counted in rows (not wall time) and the reservoir uses a
// seeded deterministic PRNG, so the same sequence of observations always
// yields byte-identical snapshot history — the property the determinism
// tests pin.
package monitor
