package monitor

// pageHinkley is the Page-Hinkley cumulative test for an upward change in
// the mean of a series — here the per-window suspicious rate. Each
// observation x updates the running mean x̄ and the cumulative sum
// m += x − x̄ − δ (δ absorbs noise); the statistic PH = m − min(m) grows
// only while observations sit persistently above the running mean, and an
// alarm fires once PH exceeds λ. Unlike the single-window threshold
// detector this accumulates evidence, so a slow degradation that never
// trips the threshold in any one window is still caught.
type pageHinkley struct {
	Delta  float64 // δ: per-observation tolerance
	Lambda float64 // λ: alarm threshold

	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Cum  float64 `json:"cum"`
	Min  float64 `json:"min"`
	PH   float64 `json:"ph"`
}

// observe folds one window rate and reports whether the alarm fires.
func (p *pageHinkley) observe(x float64) bool {
	p.N++
	p.Mean += (x - p.Mean) / float64(p.N)
	p.Cum += x - p.Mean - p.Delta
	if p.Cum < p.Min {
		p.Min = p.Cum
	}
	p.PH = p.Cum - p.Min
	return p.PH > p.Lambda
}

// reset clears the accumulated state (after re-induction establishes a
// new baseline).
func (p *pageHinkley) reset() {
	p.N, p.Mean, p.Cum, p.Min, p.PH = 0, 0, 0, 0, 0
}

// attrDetector is one attribute's drift detector: the same threshold +
// Page-Hinkley pair the model-level detector runs, but over the
// attribute's own suspicious-rate series, so a drift can be attributed to
// the attributes that caused it — and re-induction can rebuild only
// those. The slice of these is aligned with modelState.classes.
type attrDetector struct {
	PH        pageHinkley `json:"ph"`
	LastDelta float64     `json:"lastDelta"`
	// Drifted latches on first fire and clears when re-induction
	// establishes a new baseline (adoptModel rebuilds the slice).
	Drifted bool `json:"drifted"`
	// LastNullDelta is the most recent window's null rate minus the
	// attribute's baseline null rate; NullDrifted latches once it exceeds
	// Options.NullDelta. Completeness drift is observational only — it
	// never enters the re-induction trigger (see Options.NullDelta).
	LastNullDelta float64 `json:"lastNullDelta,omitempty"`
	NullDrifted   bool    `json:"nullDrifted,omitempty"`
}
