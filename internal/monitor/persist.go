package monitor

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// Crash-durable monitoring state. When Options.StateDir is set, every
// model's monitoring state — snapshot history, lifecycle events, drift
// detector state and the re-induction reservoir — is serialized into one
// JSON envelope per model and committed atomically (temp file + rename)
// at every persistence commit point: a sealed window, a re-induction
// outcome, and SaveAll/Close at graceful shutdown. At the next boot the
// state is recovered lazily, on the model's first observation or quality
// read, after validating that the persisted (version, createdAt) still
// names a committed registry version — a state file left behind by a
// deleted incarnation is discarded, never resurrected.
//
// Writes are asynchronous: the envelope is marshalled under st.mu (cheap,
// pure memory) and handed to a goroutine, so the fold path never waits on
// disk. Each marshal takes the state's next saveSeq; the persister drops
// any write that would regress the sequence already on disk, so slow
// writers cannot overwrite newer state with older state.

// stateFormat versions the envelope. Readers reject other formats and
// fall back to fresh state — forward compatibility by degradation, never
// by failing the model.
const stateFormat = 1

// StateFile returns the path of the persisted monitoring state for one
// model inside a state directory.
func StateFile(dir, name string) string {
	return filepath.Join(dir, name+".monitor.json")
}

// stateEnvelope is the on-disk form of one modelState. envelopeLocked
// fills it with consistent copies under st.mu; the expensive part —
// gob-encoding the reservoir and marshalling the JSON — happens in
// encode, outside every monitor lock.
type stateEnvelope struct {
	// reservoir is the materialized sample, encoded into ReservoirTable
	// by encode (never marshalled directly).
	reservoir *dataset.Table

	Format    int       `json:"format"`
	Name      string    `json:"name"`
	Version   int       `json:"version"`
	CreatedAt time.Time `json:"createdAt"`
	SavedAt   time.Time `json:"savedAt"`

	Options persistedOptions `json:"options"`
	Classes []int            `json:"classes"`

	Baseline        *audit.QualityProfile `json:"baseline,omitempty"`
	BaselineAdopted bool                  `json:"baselineAdopted,omitempty"`

	WinRows       int64             `json:"winRows"`
	WinSuspicious int64             `json:"winSuspicious"`
	WinAttrs      []audit.AttrTally `json:"winAttrs"`

	Windows              int         `json:"windows"`
	WindowsSinceBaseline int         `json:"windowsSinceBaseline"`
	Snapshots            []Snapshot  `json:"snapshots"`
	PH                   pageHinkley `json:"ph"`
	Drifted              bool        `json:"drifted"`
	LastDelta            float64     `json:"lastDelta"`
	// AttrDrift is the per-attribute detector state, aligned with Classes.
	// Absent in envelopes written before attribution existed; those load
	// with fresh (zeroed) detectors.
	AttrDrift []attrDetector `json:"attrDrift,omitempty"`
	Events    []Event        `json:"events"`

	// ReservoirTable is the sampled rows plus their schema in the dataset
	// package's native binary encoding (base64 inside the JSON envelope);
	// ReservoirSeen the rows ever offered since the last re-induction.
	// The schema embedded here is also what rebuilds st.schema on load.
	ReservoirTable []byte `json:"reservoirTable"`
	ReservoirSeen  int64  `json:"reservoirSeen"`
}

// persistedOptions is the serializable subset of audit.Options the
// re-induction path needs. A custom Options.Trainer (a code hook) cannot
// be persisted; after a restart re-induction falls back to the named
// Inducer.
type persistedOptions struct {
	MinConfidence float64             `json:"minConfidence,omitempty"`
	ConfLevel     float64             `json:"confLevel,omitempty"`
	Bins          int                 `json:"bins,omitempty"`
	Inducer       audit.InducerKind   `json:"inducer,omitempty"`
	KNNk          int                 `json:"knnK,omitempty"`
	BaseAttrs     map[string][]string `json:"baseAttrs,omitempty"`
	SkipClasses   []string            `json:"skipClasses,omitempty"`
	Filter        uint8               `json:"filter,omitempty"`
}

func toPersistedOptions(o audit.Options) persistedOptions {
	return persistedOptions{
		MinConfidence: o.MinConfidence,
		ConfLevel:     o.ConfLevel,
		Bins:          o.Bins,
		Inducer:       o.Inducer,
		KNNk:          o.KNNk,
		BaseAttrs:     o.BaseAttrs,
		SkipClasses:   o.SkipClasses,
		Filter:        uint8(o.Filter),
	}
}

func (p persistedOptions) toAudit() audit.Options {
	return audit.Options{
		MinConfidence: p.MinConfidence,
		ConfLevel:     p.ConfLevel,
		Bins:          p.Bins,
		Inducer:       p.Inducer,
		KNNk:          p.KNNk,
		BaseAttrs:     p.BaseAttrs,
		SkipClasses:   p.SkipClasses,
		Filter:        audittree.FilterMode(p.Filter),
	}
}

// seqMark orders persisted snapshots of one name across state
// generations: gen identifies the modelState incarnation (monotonic per
// Monitor), seq the marshal order within it. A write is stale — and
// dropped — when it does not advance the mark.
type seqMark struct{ gen, seq uint64 }

// persister owns the state directory. Its lock serializes file writes and
// guards the per-model sequence marks.
type persister struct {
	dir string

	mu      sync.Mutex
	written map[string]seqMark // newest (generation, saveSeq) committed per model
}

func newPersister(dir string) *persister {
	return &persister{dir: dir, written: make(map[string]seqMark)}
}

// stale reports whether (gen, seq) does not advance the mark.
func (mk seqMark) stale(gen, seq uint64) bool {
	return gen < mk.gen || (gen == mk.gen && seq <= mk.seq)
}

// write commits one marshalled envelope atomically, unless a newer
// snapshot of the name — from this state generation or a later one —
// already reached disk, or the generation was blocked by remove.
func (p *persister) write(name string, gen, seq uint64, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.written[name].stale(gen, seq) {
		return nil
	}
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return err
	}
	path := StateFile(p.dir, name)
	tmp, err := os.CreateTemp(p.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	p.written[name] = seqMark{gen: gen, seq: seq}
	return nil
}

// remove deletes a model's state file (Forget, or a stale file found at
// load) and exhausts the dropped generation's sequence space, so an
// in-flight write for that dead state cannot recreate the file — while a
// *later* generation (the name recreated) starts a fresh mark and
// persists normally.
func (p *persister) remove(name string, gen uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	os.Remove(StateFile(p.dir, name))
	if gen >= p.written[name].gen {
		p.written[name] = seqMark{gen: gen, seq: ^uint64(0)}
	}
}

// read loads a model's raw state file; os.IsNotExist errors mean "no
// persisted state".
func (p *persister) read(name string) ([]byte, error) {
	return os.ReadFile(StateFile(p.dir, name))
}

// envelopeLocked captures a consistent copy of the state for
// persistence; st.mu must be held. The capture is cheap, pure memory:
// the histories and open-window tallies are copied (they are mutated in
// place by the fold path), the reservoir is materialized as a fresh
// table, and immutable values (schema, baseline, classes — replaced
// wholesale, never edited) are shared. Encoding happens later, outside
// the lock, so audits never wait on serialization.
func (st *modelState) envelopeLocked(now time.Time) *stateEnvelope {
	return &stateEnvelope{
		reservoir:            st.rv.table(),
		Format:               stateFormat,
		Name:                 st.name,
		Version:              st.version,
		CreatedAt:            st.createdAt,
		SavedAt:              now,
		Options:              toPersistedOptions(st.opts),
		Classes:              st.classes,
		Baseline:             st.baseline,
		BaselineAdopted:      st.baselineAdopted,
		WinRows:              st.winRows,
		WinSuspicious:        st.winSuspicious,
		WinAttrs:             append([]audit.AttrTally(nil), st.winAttrs...),
		Windows:              st.windows,
		WindowsSinceBaseline: st.windowsSinceBaseline,
		Snapshots:            append([]Snapshot(nil), st.snapshots...),
		PH:                   st.ph,
		Drifted:              st.drifted,
		LastDelta:            st.lastDelta,
		AttrDrift:            append([]attrDetector(nil), st.attrDrift...),
		Events:               append([]Event(nil), st.events...),
		ReservoirSeen:        st.rv.seen,
	}
}

// encode serializes a captured envelope — the expensive half of a save,
// safe to run without any lock because the envelope owns its data.
func (env *stateEnvelope) encode() ([]byte, error) {
	rvTab, err := dataset.MarshalTable(env.reservoir)
	if err != nil {
		return nil, err
	}
	env.ReservoirTable = rvTab
	return json.Marshal(env)
}

// saveLocked schedules an asynchronous persistence commit of the state;
// st.mu must be held. A no-op when persistence is disabled or the state
// is dead (its file was already removed by Forget).
func (m *Monitor) saveLocked(st *modelState) {
	if m.disk == nil || st.dead || st.version == 0 {
		return
	}
	env := st.envelopeLocked(m.opts.Now())
	st.saveSeq++
	gen, seq, name := st.gen, st.saveSeq, st.name
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		data, err := env.encode()
		if err == nil {
			err = m.disk.write(name, gen, seq, data)
		}
		if err != nil {
			m.opts.Logger.Printf("monitor: persisting state for %s: %v", name, err)
		}
	}()
}

// SaveAll synchronously persists every tracked model's state — the
// graceful-shutdown commit point, also usable as a checkpoint. It returns
// the first write error (later models are still attempted).
func (m *Monitor) SaveAll() error {
	if m.disk == nil {
		return nil
	}
	m.mu.Lock()
	states := make([]*modelState, 0, len(m.models))
	for _, st := range m.models {
		states = append(states, st)
	}
	m.mu.Unlock()

	var firstErr error
	for _, st := range states {
		st.mu.Lock()
		if st.dead || st.version == 0 {
			st.mu.Unlock()
			continue
		}
		env := st.envelopeLocked(m.opts.Now())
		st.saveSeq++
		gen, seq, name := st.gen, st.saveSeq, st.name
		st.mu.Unlock()

		data, err := env.encode()
		if err == nil {
			err = m.disk.write(name, gen, seq, data)
		}
		if err != nil {
			m.opts.Logger.Printf("monitor: persisting state for %s: %v", name, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("monitor: persisting state for %s: %w", name, err)
			}
		}
	}
	return firstErr
}

// Close waits for in-flight re-induction workers and pending asynchronous
// writes, then persists every model's final state — the graceful-shutdown
// hook. The caller is expected to have quiesced the observation sources
// (e.g. drained the HTTP server) first.
func (m *Monitor) Close() error {
	m.wg.Wait()
	return m.SaveAll()
}

// loadState recovers one model's persisted state from the state dir, or
// nil when there is none, it is unreadable (corrupt/truncated files
// degrade to fresh state, never fail the model), or it belongs to a dead
// incarnation. The incarnation check consults the registry: the persisted
// (version, createdAt) must still name a committed version, byte-for-byte
// the same publish — a file left behind by a model that was deleted (and
// possibly recreated under the same name) while the process was down is
// discarded by the same guard that drops live ghost observations.
func (m *Monitor) loadState(name string) *modelState {
	if m.disk == nil || !registry.ValidName(name) {
		return nil
	}
	data, err := m.disk.read(name)
	if err != nil {
		if !os.IsNotExist(err) {
			m.opts.Logger.Printf("monitor: reading state for %s: %v", name, err)
		}
		return nil
	}
	var env stateEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		m.opts.Logger.Printf("monitor: discarding corrupt state for %s: %v", name, err)
		return nil
	}
	if env.Format != stateFormat || env.Name != name || env.Version < 1 {
		m.opts.Logger.Printf("monitor: discarding state for %s: format %d, name %q, version %d",
			name, env.Format, env.Name, env.Version)
		return nil
	}
	rvTab, err := dataset.UnmarshalTable(env.ReservoirTable)
	if err != nil {
		m.opts.Logger.Printf("monitor: discarding corrupt reservoir for %s: %v", name, err)
		return nil
	}
	schema := rvTab.Schema()
	for _, c := range env.Classes {
		if c < 0 || c >= schema.Len() {
			m.opts.Logger.Printf("monitor: discarding state for %s: class column %d outside schema", name, c)
			return nil
		}
	}
	if len(env.WinAttrs) != len(env.Classes) {
		m.opts.Logger.Printf("monitor: discarding state for %s: %d window tallies for %d classes",
			name, len(env.WinAttrs), len(env.Classes))
		return nil
	}
	if len(env.AttrDrift) != 0 && len(env.AttrDrift) != len(env.Classes) {
		m.opts.Logger.Printf("monitor: discarding state for %s: %d attribute detectors for %d classes",
			name, len(env.AttrDrift), len(env.Classes))
		return nil
	}

	if m.reg != nil {
		meta, err := m.reg.MetaOfVersion(name, env.Version)
		if err != nil || !meta.CreatedAt.Equal(env.CreatedAt) {
			m.opts.Logger.Printf("monitor: discarding stale state for %s: v%d@%s is not a committed registry version",
				name, env.Version, env.CreatedAt.Format(time.RFC3339Nano))
			// gen 0: no live state generation owns the discarded file, so
			// nothing needs blocking — a state created afterwards persists
			// normally.
			m.disk.remove(name, 0)
			return nil
		}
	}

	rv := newReservoir(schema, m.opts.ReservoirRows, m.opts.Seed)
	rv.restore(rvTab, env.ReservoirSeen)
	ph := env.PH
	ph.Delta, ph.Lambda = m.opts.PHDelta, m.opts.PHLambda
	attrDrift := env.AttrDrift
	if attrDrift == nil {
		// Pre-attribution envelope: start fresh detectors (their PH
		// parameters are injected at seal time).
		attrDrift = make([]attrDetector, len(env.Classes))
	}
	return &modelState{
		name:                 name,
		version:              env.Version,
		createdAt:            env.CreatedAt,
		schema:               schema,
		opts:                 env.Options.toAudit(),
		classes:              env.Classes,
		baseline:             env.Baseline,
		baselineAdopted:      env.BaselineAdopted,
		winRows:              env.WinRows,
		winSuspicious:        env.WinSuspicious,
		winAttrs:             env.WinAttrs,
		windows:              env.Windows,
		windowsSinceBaseline: env.WindowsSinceBaseline,
		snapshots:            env.Snapshots,
		ph:                   ph,
		drifted:              env.Drifted,
		lastDelta:            env.LastDelta,
		attrDrift:            attrDrift,
		events:               env.Events,
		rv:                   rv,
	}
}
