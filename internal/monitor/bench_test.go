package monitor

import (
	"fmt"
	"math/rand"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// benchModel builds a model shell with n audited attributes — the fold
// path only touches Schema names and the Attrs slice, never the
// classifiers.
func benchModel(n int) *audit.Model {
	attrs := make([]*dataset.Attribute, n)
	ams := make([]*audit.AttrModel, n)
	for i := range attrs {
		attrs[i] = dataset.NewNumeric(fmt.Sprintf("a%d", i), 0, 1)
		ams[i] = &audit.AttrModel{Class: i}
	}
	return &audit.Model{Schema: dataset.MustSchema(attrs...), Attrs: ams}
}

// BenchmarkMonitorFold measures the monitoring overhead per observation:
// one pre-tallied aggregate folded into the windowed state, sealing a
// snapshot (and running both drift detectors) every WindowRows/obsRows
// folds — so snapshots/sec = folds/sec × obsRows/WindowRows.
func BenchmarkMonitorFold(b *testing.B) {
	for _, obsRows := range []int64{256, 1024, 4096} {
		b.Run(fmt.Sprintf("obsRows=%d", obsRows), func(b *testing.B) {
			const attrs = 8
			tallies := make([]audit.AttrTally, attrs)
			rng := rand.New(rand.NewSource(1))
			for i := range tallies {
				tallies[i] = audit.AttrTally{
					Attr:         i,
					Deviations:   rng.Int63n(obsRows),
					Suspicious:   rng.Int63n(obsRows/4 + 1),
					MaxErrorConf: rng.Float64(),
				}
			}
			mon := New(nil, Options{WindowRows: 4096})
			meta := registry.Meta{Name: "bench", Version: 1, Quality: &audit.QualityProfile{SuspiciousRate: 0.01}}
			st := mon.state(meta, benchModel(attrs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.mu.Lock()
				mon.foldLocked(st, obsRows, obsRows/100, tallies)
				st.mu.Unlock()
			}
		})
	}
}
