package monitor

import (
	"strings"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/obs"
	"dataaudit/internal/registry"
)

// TestMetricsLifecycle drives the drift → re-induction loop with
// instrumentation attached and checks every stage left its mark: row and
// window counters, the drift gauges raised and then cleared by the
// successor's fresh baseline, the outcome counter and duration
// histogram, and Forget dropping the model's series.
func TestMetricsLifecycle(t *testing.T) {
	model, clean, dirty := fixture(t, 3000)
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
	if err != nil {
		t.Fatal(err)
	}

	obsReg := obs.NewRegistry()
	mets := obs.NewAuditMetrics(obsReg)
	mon := New(reg, withClock(Options{
		WindowRows:      1000,
		MinWindows:      1,
		DriftDelta:      0.10,
		AutoReinduce:    true,
		MinReinduceRows: 200,
		ReservoirRows:   2048,
		Metrics:         mets,
	}))

	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	if got := mets.RowsScored.With("engines").Value(); got != uint64(clean.NumRows()) {
		t.Fatalf("rows scored = %d, want %d", got, clean.NumRows())
	}
	if got := mets.WindowsSealed.With("engines").Value(); got != 1 {
		t.Fatalf("windows sealed = %d, want 1", got)
	}
	if got := mets.DriftActive.With("engines").Value(); got != 0 {
		t.Fatalf("drift active on clean data = %v", got)
	}
	if got := mets.BaselineSuspiciousRate.With("engines").Value(); got != meta.Quality.SuspiciousRate {
		t.Fatalf("baseline rate gauge = %v, want %v", got, meta.Quality.SuspiciousRate)
	}
	if got := mets.ReservoirRows.With("engines").Value(); got == 0 {
		t.Fatal("reservoir gauge never set")
	}
	// The polluted fixture breaks BRV → GBM on every row, so the GBM
	// attribute series must exist already (zero on clean data is fine).
	if got := mets.AttrSuspicious.With("engines", "GBM").Value(); got > uint64(clean.NumRows()) {
		t.Fatalf("GBM suspicious on clean data = %d", got)
	}

	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	mon.WaitReinductions()

	if got := mets.Reinductions.With("engines", obs.OutcomeReinduced).Value(); got != 1 {
		t.Fatalf("reinduced outcome count = %d, want 1", got)
	}
	if got := mets.ReinduceSeconds.Snapshot().Count; got != 1 {
		t.Fatalf("reinduction duration observations = %d, want 1", got)
	}
	if got := mets.AttrSuspicious.With("engines", "GBM").Value(); got == 0 {
		t.Fatal("polluted GBM rows left no attribute deviations")
	}
	// The successor swap establishes a fresh baseline: the latch gauge
	// must read 0 again without waiting for the next fold.
	if got := mets.DriftActive.With("engines").Value(); got != 0 {
		t.Fatalf("drift gauge not cleared after re-induction: %v", got)
	}

	mon.Forget("engines")
	var sb strings.Builder
	if err := obsReg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `model="engines"`) {
		t.Fatalf("forgotten model's series survive:\n%s", sb.String())
	}
}

// TestMetricsSkippedOutcome pins the trigger-time skip path: drift with
// auto re-induction disabled records a skipped outcome and raises the
// drift gauge, and no duration is observed (no worker ran).
func TestMetricsSkippedOutcome(t *testing.T) {
	model, clean, dirty := fixture(t, 3000)
	meta := metaFor(model, clean)
	obsReg := obs.NewRegistry()
	mets := obs.NewAuditMetrics(obsReg)
	mon := New(nil, withClock(Options{
		WindowRows: 1000,
		MinWindows: 1,
		DriftDelta: 0.10,
		Metrics:    mets,
	}))

	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	if got := mets.Reinductions.With("engines", obs.OutcomeSkipped).Value(); got != 1 {
		t.Fatalf("skipped outcome count = %d, want 1", got)
	}
	if got := mets.ReinduceSeconds.Snapshot().Count; got != 0 {
		t.Fatalf("duration observed for a skipped trigger: %d", got)
	}
	if got := mets.DriftActive.With("engines").Value(); got != 1 {
		t.Fatalf("drift gauge = %v, want 1 while latched", got)
	}
	if got := mets.DriftDelta.With("engines").Value(); got <= 0.10 {
		t.Fatalf("drift delta gauge = %v, want above the threshold", got)
	}
}

// TestMetricsFoldAllocFree pins the zero-allocation contract on the
// instrumented fold path: once the per-model handles are interned, a
// fold with metrics attached performs only atomic updates — exactly as
// many allocations as the uninstrumented path, i.e. none.
func TestMetricsFoldAllocFree(t *testing.T) {
	const attrs = 8
	tallies := make([]audit.AttrTally, attrs)
	for i := range tallies {
		tallies[i] = audit.AttrTally{Attr: i, Deviations: 3, Suspicious: 1, MaxErrorConf: 0.9}
	}
	mets := obs.NewAuditMetrics(obs.NewRegistry())
	// A window far larger than the folded rows: sealing (which builds a
	// Snapshot) must not run inside the measured loop.
	mon := New(nil, Options{WindowRows: 1 << 40, Metrics: mets})
	meta := registry.Meta{Name: "bench", Version: 1, Quality: &audit.QualityProfile{SuspiciousRate: 0.01}}
	st := mon.state(meta, benchModel(attrs))

	fold := func() {
		st.mu.Lock()
		mon.foldLocked(st, 256, 2, tallies)
		st.mu.Unlock()
	}
	fold() // warm-up interns the metric handles
	if st.met == nil {
		t.Fatal("metric handles not interned by the fold path")
	}
	if allocs := testing.AllocsPerRun(200, fold); allocs != 0 {
		t.Fatalf("instrumented fold allocates %.1f per observation, want 0", allocs)
	}
}
