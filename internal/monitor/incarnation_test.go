package monitor

import (
	"testing"
	"time"

	"dataaudit/internal/registry"
)

// TestIncarnationGuardTable drives every (version, createdAt) ordering a
// late or racing observation can arrive with, against a tracked state,
// and pins what the guard must do: fold (same version, same incarnation),
// reset (anything newer — a successor version or a recreated name), or
// drop (anything older — including the ROADMAP hijack, a *deleted*
// model's higher version arriving at a recreated same-name model). After
// every case a live-model observation must still fold: monitoring must
// never go silently dead.
func TestIncarnationGuardTable(t *testing.T) {
	model, clean, _ := fixture(t, 1000)
	rows := int64(clean.NumRows())
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

	type effect int
	const (
		fold effect = iota
		drop
		reset
	)
	mkMeta := func(version int, at time.Time) registry.Meta {
		return registry.Meta{Name: "engines", Version: version, CreatedAt: at, Quality: model.QualityProfile(clean, 0)}
	}

	cases := []struct {
		name     string
		tracked  registry.Meta
		incoming registry.Meta
		want     effect
	}{
		{"same version, same incarnation folds",
			mkMeta(2, t0), mkMeta(2, t0), fold},
		{"older version of the same incarnation drops",
			mkMeta(2, t0), mkMeta(1, t0.Add(-time.Hour)), drop},
		{"successor version of the same incarnation resets",
			mkMeta(2, t0), mkMeta(3, t0.Add(time.Hour)), reset},
		{"recreated name (same version, later publish) resets",
			mkMeta(1, t0), mkMeta(1, t0.Add(time.Hour)), reset},
		{"ghost same-version earlier publish drops",
			mkMeta(1, t0), mkMeta(1, t0.Add(-time.Hour)), drop},
		{"deleted model's higher version cannot hijack a recreated model (ROADMAP)",
			mkMeta(1, t0), mkMeta(5, t0.Add(-time.Hour)), drop},
		{"newer incarnation with a lower version resets",
			mkMeta(5, t0), mkMeta(1, t0.Add(time.Hour)), reset},
		{"equal publish time, higher version resets (synthetic metas)",
			mkMeta(1, t0), mkMeta(2, t0), reset},
		{"equal publish time, lower version drops (synthetic metas)",
			mkMeta(2, t0), mkMeta(1, t0), drop},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mon := New(nil, withClock(Options{WindowRows: 10 * rows}))

			// Establish the tracked state, then fire the incoming
			// observation and diff the reservoir's seen counter — it
			// advances by exactly the observed rows on every fold.
			mon.ObserveBatch(tc.tracked, model, clean, model.AuditTable(clean))
			st, ok := mon.Quality("engines")
			if !ok || st.ReservoirSeen != rows || st.Version != tc.tracked.Version {
				t.Fatalf("tracked state not established: ok=%v %+v", ok, st)
			}

			mon.ObserveBatch(tc.incoming, model, clean, model.AuditTable(clean))
			st, _ = mon.Quality("engines")
			switch tc.want {
			case fold:
				if st.Version != tc.tracked.Version || st.ReservoirSeen != 2*rows {
					t.Fatalf("want fold, got %+v", st)
				}
			case drop:
				if st.Version != tc.tracked.Version || st.ReservoirSeen != rows {
					t.Fatalf("want drop, got %+v", st)
				}
			case reset:
				if st.Version != tc.incoming.Version || st.ReservoirSeen != rows {
					t.Fatalf("want reset onto the incoming incarnation, got %+v", st)
				}
			}

			// Whatever happened, the *live* model — the newest of the two
			// incarnations — must still fold. Before the CreatedAt check
			// ran on the higher-version branch, the hijack case left the
			// recreated model's audits dropping into the ghost's
			// stale-version branch: monitoring silently dead.
			live := tc.tracked
			if tc.want == reset {
				live = tc.incoming
			}
			seenBefore := st.ReservoirSeen
			mon.ObserveBatch(live, model, clean, model.AuditTable(clean))
			st, _ = mon.Quality("engines")
			if st.ReservoirSeen != seenBefore+rows {
				t.Fatalf("monitoring went dead for the live model %d@%s: seen %d -> %d",
					live.Version, live.CreatedAt, seenBefore, st.ReservoirSeen)
			}
			if st.Version != live.Version {
				t.Fatalf("live model not tracked after the dust settled: %+v", st)
			}
		})
	}
}
