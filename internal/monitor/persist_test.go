package monitor

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// persistFixture publishes the fixture model and returns a monitor
// factory bound to one registry + state dir, so tests can simulate
// process restarts by building successive monitors over the same roots.
func persistFixture(t *testing.T, rows int) (reg *registry.Registry, stateDir string, model *audit.Model, clean, dirty *dataset.Table, meta registry.Meta, newMon func() *Monitor) {
	t.Helper()
	model, clean, dirty = fixture(t, rows)
	var err error
	reg, err = registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err = reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
	if err != nil {
		t.Fatal(err)
	}
	stateDir = reg.StateDir()
	newMon = func() *Monitor {
		return New(reg, withClock(Options{WindowRows: 1000, MinWindows: 1, DriftDelta: 0.10, StateDir: stateDir}))
	}
	return
}

// TestPersistRestartRoundTrip is the library half of the restart
// acceptance criterion: quality history, drift state and the reservoir
// survive a monitor "restart" (new Monitor over the same registry root)
// byte-equivalently, including the open (unsealed) window, and the
// reloaded state keeps folding where the old one left off.
func TestPersistRestartRoundTrip(t *testing.T) {
	_, stateDir, model, clean, dirty, meta, newMon := persistFixture(t, 2500)

	mon := newMon()
	// One clean window, one dirty window that drifts (re-induction
	// disabled: skipped event), then a sub-window probe so the open
	// window holds pending rows at shutdown.
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	probe := dataset.NewTable(clean.Schema())
	row := make([]dataset.Value, clean.NumCols())
	for r := 0; r < 300; r++ {
		probe.AppendRow(clean.RowInto(r, row))
	}
	mon.ObserveBatch(meta, model, probe, model.AuditTable(probe))
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	before, ok := mon.Quality("engines")
	if !ok || before.Windows == 0 {
		t.Fatalf("no state before restart: %+v", before)
	}
	var drifted bool
	for _, e := range before.Events {
		if e.Kind == EventDrift {
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("fixture did not drift; restart test would be vacuous: %+v", before.Events)
	}
	if _, err := os.Stat(StateFile(stateDir, "engines")); err != nil {
		t.Fatalf("no persisted state file: %v", err)
	}

	// "Restart": a fresh monitor over the same registry + state dir must
	// serve the identical state without having observed anything.
	mon2 := newMon()
	after, ok := mon2.Quality("engines")
	if !ok {
		t.Fatal("no state after restart")
	}
	bj, _ := json.MarshalIndent(before, "", " ")
	aj, _ := json.MarshalIndent(after, "", " ")
	if string(bj) != string(aj) {
		t.Fatalf("state not byte-equivalent across restart:\n%s\n--- vs ---\n%s", bj, aj)
	}

	// The recovered state continues where the old one stopped: the open
	// window still holds its pending rows and seals on schedule.
	if after.PendingRows == 0 {
		t.Fatalf("open window lost: %+v", after)
	}
	mon2.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	cont, _ := mon2.Quality("engines")
	if cont.Windows != after.Windows+1 {
		t.Fatalf("recovered state did not keep sealing: %d -> %d windows", after.Windows, cont.Windows)
	}
	if cont.ReservoirSeen != after.ReservoirSeen+int64(clean.NumRows()) {
		t.Fatalf("recovered reservoir did not keep sampling: %d -> %d", after.ReservoirSeen, cont.ReservoirSeen)
	}
}

// TestPersistWindowCloseCommitPoint pins the commit cadence: a sealed
// window reaches disk without any explicit Save/Close call.
func TestPersistWindowCloseCommitPoint(t *testing.T) {
	_, stateDir, model, clean, _, meta, newMon := persistFixture(t, 2500)
	mon := newMon()
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	mon.WaitReinductions() // drains the asynchronous state write
	data, err := os.ReadFile(StateFile(stateDir, "engines"))
	if err != nil {
		t.Fatalf("window close did not commit state: %v", err)
	}
	var env stateEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Format != stateFormat || env.Windows != 1 || env.Version != meta.Version {
		t.Fatalf("committed envelope wrong: format=%d windows=%d version=%d", env.Format, env.Windows, env.Version)
	}
}

// TestPersistCorruptStateDegradesToFresh: an unreadable, truncated or
// wrong-format state file must load as "no state" — never fail the model
// — and the next observation rebuilds and overwrites it.
func TestPersistCorruptStateDegradesToFresh(t *testing.T) {
	_, stateDir, model, clean, _, meta, newMon := persistFixture(t, 2500)
	mon := newMon()
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	path := StateFile(stateDir, "engines")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("{ not json")},
		{"truncated", good[:len(good)/3]},
		{"wrong format", []byte(`{"format":999,"name":"engines","version":1}`)},
		{"wrong name", []byte(`{"format":1,"name":"other","version":1}`)},
		{"corrupt reservoir", []byte(`{"format":1,"name":"engines","version":` +
			`1,"createdAt":"2026-07-01T00:00:00Z","reservoirTable":"AAAA"}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			mon2 := newMon()
			if st, ok := mon2.Quality("engines"); ok {
				t.Fatalf("corrupt state served as history: %+v", st)
			}
			// The model is not failed: observations start a fresh state.
			mon2.ObserveBatch(meta, model, clean, model.AuditTable(clean))
			st, ok := mon2.Quality("engines")
			if !ok || st.Windows != 1 || st.ReservoirSeen != int64(clean.NumRows()) {
				t.Fatalf("fresh state not rebuilt after corrupt load: ok=%v %+v", ok, st)
			}
			// Drain this monitor's asynchronous state write before the next
			// subtest plants its corrupt file — a late good-state commit
			// landing over it would leak state across subtests. (Sharing
			// one state dir between live monitors is not a supported
			// configuration outside this test.)
			mon2.WaitReinductions()
		})
	}
}

// TestPersistAttrDriftRoundTrip pins the per-attribute detector state
// across restart: the detectors' Page-Hinkley accumulators and drift
// latches reload byte-equivalently, and an envelope whose detector
// matrix disagrees with its class list — state from a different schema
// era — is discarded wholesale, never partially adopted.
func TestPersistAttrDriftRoundTrip(t *testing.T) {
	_, stateDir, model, clean, dirty, meta, newMon := persistFixture(t, 2500)
	mon := newMon()
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	mon.ObserveBatch(meta, model, dirty, model.AuditTable(dirty))
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	path := StateFile(stateDir, "engines")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env1 stateEnvelope
	if err := json.Unmarshal(good, &env1); err != nil {
		t.Fatal(err)
	}
	if len(env1.AttrDrift) != len(env1.Classes) {
		t.Fatalf("persisted %d attribute detectors for %d classes", len(env1.AttrDrift), len(env1.Classes))
	}
	var observed, latched bool
	for _, det := range env1.AttrDrift {
		observed = observed || det.PH.N > 0
		latched = latched || det.Drifted
	}
	if !observed || !latched {
		t.Fatalf("detectors idle (observed=%v latched=%v); round-trip would be vacuous: %+v",
			observed, latched, env1.AttrDrift)
	}

	// Restart: the reloaded detectors must re-persist byte-equivalently.
	mon2 := newMon()
	if _, ok := mon2.Quality("engines"); !ok {
		t.Fatal("no state after restart")
	}
	if err := mon2.SaveAll(); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env2 stateEnvelope
	if err := json.Unmarshal(again, &env2); err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(env1.AttrDrift)
	b2, _ := json.Marshal(env2.AttrDrift)
	if string(b1) != string(b2) {
		t.Fatalf("attribute detector state changed across restart:\n%s\n--- vs ---\n%s", b1, b2)
	}

	// Ghost matrix: one detector too many for the class list.
	env1.AttrDrift = append(env1.AttrDrift, attrDetector{})
	bad, err := json.Marshal(&env1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	mon3 := newMon()
	if st, ok := mon3.Quality("engines"); ok {
		t.Fatalf("misaligned detector matrix served as history: %+v", st)
	}
}

// TestPersistGhostStateFileDiscarded pins the at-rest incarnation guard:
// a state file persisted for a model that was deleted (and recreated)
// while the process was down names a (version, createdAt) that no longer
// exists in the registry — it must be discarded, not resurrected as the
// recreated model's history.
func TestPersistGhostStateFileDiscarded(t *testing.T) {
	reg, stateDir, model, clean, _, meta, newMon := persistFixture(t, 2500)
	mon := newMon()
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	// While "down": the model is deleted and recreated under the same
	// name — versions restart at 1, but CreatedAt moves.
	if err := reg.Delete("engines"); err != nil {
		t.Fatal(err)
	}
	meta2, err := reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Version != meta.Version || meta2.CreatedAt.Equal(meta.CreatedAt) {
		t.Fatalf("recreation did not reproduce the ghost shape: %+v vs %+v", meta2, meta)
	}

	mon2 := newMon()
	if st, ok := mon2.Quality("engines"); ok {
		t.Fatalf("ghost incarnation resurrected from its state file: %+v", st)
	}
	if _, err := os.Stat(StateFile(stateDir, "engines")); !os.IsNotExist(err) {
		t.Fatalf("stale state file not discarded: %v", err)
	}
	// The recreated incarnation monitors from scratch.
	mon2.ObserveBatch(meta2, model, clean, model.AuditTable(clean))
	st, ok := mon2.Quality("engines")
	if !ok || st.ReservoirSeen != int64(clean.NumRows()) || st.Windows != 1 {
		t.Fatalf("recreated incarnation state wrong: ok=%v %+v", ok, st)
	}
}

// TestPersistForgetRemovesFile: Forget must delete the on-disk state with
// the in-memory state, and block late writes from recreating it.
func TestPersistForgetRemovesFile(t *testing.T) {
	_, stateDir, model, clean, _, meta, newMon := persistFixture(t, 2500)
	mon := newMon()
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	mon.WaitReinductions()
	path := StateFile(stateDir, "engines")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	mon.Forget("engines")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("state file survived Forget: %v", err)
	}
	// SaveAll after Forget must not resurrect the file (dead state).
	if err := mon.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("dead state re-persisted: %v", err)
	}
}

// TestPersistAfterForgetRecreate is the regression test for the
// sequence-floor bug: Forget must only block the *dead* generation's
// in-flight writes — a model recreated under the same name afterwards
// must persist normally again (its fresh state generation outranks the
// dead one's exhausted sequence space), and the recreated state must
// survive a restart.
func TestPersistAfterForgetRecreate(t *testing.T) {
	reg, stateDir, model, clean, _, meta, newMon := persistFixture(t, 2500)
	mon := newMon()
	mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
	mon.WaitReinductions()
	path := StateFile(stateDir, "engines")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// Delete + recreate the model (registry and monitor).
	mon.Forget("engines")
	if err := reg.Delete("engines"); err != nil {
		t.Fatal(err)
	}
	meta2, err := reg.PublishWithQuality("engines", model, model.QualityProfile(clean, 0))
	if err != nil {
		t.Fatal(err)
	}

	// The recreated incarnation's monitoring state must reach disk again.
	mon.ObserveBatch(meta2, model, clean, model.AuditTable(clean))
	mon.WaitReinductions()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("recreated model's state never persisted after Forget: %v", err)
	}
	var env stateEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.CreatedAt.Equal(meta2.CreatedAt) || env.Windows != 1 {
		t.Fatalf("persisted state is not the recreated incarnation's: %+v vs %+v", env.CreatedAt, meta2.CreatedAt)
	}

	// And it survives a restart like any other state.
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	mon2 := newMon()
	st, ok := mon2.Quality("engines")
	if !ok || st.Windows != 1 || st.ReservoirSeen != int64(clean.NumRows()) {
		t.Fatalf("recreated state lost across restart: ok=%v %+v", ok, st)
	}
}

// TestPersistDisabled: without a StateDir nothing is written.
func TestPersistDisabled(t *testing.T) {
	model, clean, _ := fixture(t, 1500)
	meta := metaFor(model, clean)
	dir := t.TempDir()
	for _, stateDir := range []string{"", StateDisabled} {
		mon := New(nil, withClock(Options{WindowRows: 1000, StateDir: stateDir}))
		mon.ObserveBatch(meta, model, clean, model.AuditTable(clean))
		if err := mon.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("persistence disabled but files appeared: %v", ents)
	}
	if _, err := os.Stat(filepath.Join(dir, StateDisabled)); !os.IsNotExist(err) {
		t.Fatalf("sentinel state dir created: %v", err)
	}
}
