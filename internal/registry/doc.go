// Package registry is a thread-safe, disk-backed catalogue of named audit
// models. It operationalizes the paper's asynchronous auditing workflow
// (§2.2): structure models are induced once — possibly in another process
// or on another machine — published under a stable name with a monotonic
// version, and later loaded by scoring services to check incoming data.
//
// # Layout on disk
//
// One directory per model name:
//
//	<root>/<name>/v000042.model   gob-encoded audit.Model (via audit.Save)
//	<root>/<name>/v000042.json    Meta sidecar — the commit record
//
// # Atomicity and crash safety
//
// Publishing is atomic: both files are written to temporaries in the
// target directory and moved into place with os.Rename, model first, meta
// second. The meta sidecar is the commit point — a version without its
// .json is an aborted publish and is ignored (and garbage-collected on
// the next publish). Concurrent readers either see the previous latest
// version or the new one, never a torn state.
//
// # Caching
//
// Loads are lazy and cached with LRU eviction (WithCacheSize, default 8
// resident models), so a serving process keeps its hot models resident
// while rarely-used ones are re-read from disk on demand. The disk load
// of a cache miss happens outside the registry lock: one cold load never
// stalls cache hits for other models, and when two goroutines miss on the
// same version the first inserted copy wins so every caller shares one
// resident model.
//
// # Drift detection
//
// Meta.SchemaHash (see SchemaHash) fingerprints the model's relation
// schema, letting clients detect drift between the data they score and
// the data the model was trained on without loading the model.
//
// Missing models surface as *NotFoundError; test with IsNotFound.
package registry
