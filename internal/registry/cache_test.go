package registry

import (
	"fmt"
	"sync"
	"testing"
)

// cacheKeys snapshots the resident cache keys under the registry lock.
func cacheKeys(r *Registry) map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]bool, len(r.cache))
	for k := range r.cache {
		out[k] = true
	}
	return out
}

// TestCacheEviction pins the LRU contract: the cache never exceeds its
// cap, the least-recently-used entry is the one evicted, and evicted
// models remain perfectly loadable from disk.
func TestCacheEviction(t *testing.T) {
	reg, err := Open(t.TempDir(), WithCacheSize(2))
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	for _, name := range []string{"a", "b"} {
		if _, err := reg.Publish(name, m); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" becomes the LRU entry.
	if _, _, err := reg.Get("a"); err != nil {
		t.Fatal(err)
	}
	// Publishing "c" must evict "b", not "a".
	if _, err := reg.Publish("c", m); err != nil {
		t.Fatal(err)
	}
	keys := cacheKeys(reg)
	if len(keys) != 2 {
		t.Fatalf("cache holds %d entries, cap is 2: %v", len(keys), keys)
	}
	if !keys["a@1"] || !keys["c@1"] || keys["b@1"] {
		t.Fatalf("LRU evicted the wrong entry: %v (want a@1 and c@1 resident)", keys)
	}

	// The evicted model reloads from disk and re-enters the cache.
	if _, meta, err := reg.Get("b"); err != nil || meta.Version != 1 {
		t.Fatalf("evicted model unloadable: v%d, %v", meta.Version, err)
	}
	if keys = cacheKeys(reg); !keys["b@1"] || len(keys) != 2 {
		t.Fatalf("reload did not re-cache b: %v", keys)
	}
}

// TestCacheEvictionAcrossVersions checks that versions of one name are
// distinct cache entries and eviction plays well with republish.
func TestCacheEvictionAcrossVersions(t *testing.T) {
	reg, err := Open(t.TempDir(), WithCacheSize(2))
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	for i := 0; i < 4; i++ {
		if _, err := reg.Publish("hot", m); err != nil {
			t.Fatal(err)
		}
	}
	keys := cacheKeys(reg)
	if len(keys) != 2 || !keys["hot@4"] || !keys["hot@3"] {
		t.Fatalf("want the two newest versions resident, got %v", keys)
	}
	// A pinned old version loads from disk despite eviction.
	if _, meta, err := reg.GetVersion("hot", 1); err != nil || meta.Version != 1 {
		t.Fatalf("pinned old version: v%d, %v", meta.Version, err)
	}
}

// TestConcurrentGetUnderEvictionPressure hammers a cache of 1 with
// readers of many names plus publishers of the same name — under -race
// this proves eviction, lazy loads and publish commits never tear.
func TestConcurrentGetUnderEvictionPressure(t *testing.T) {
	reg, err := Open(t.TempDir(), WithCacheSize(1))
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	names := []string{"n0", "n1", "n2", "n3"}
	for _, name := range names {
		if _, err := reg.Publish(name, m); err != nil {
			t.Fatal(err)
		}
	}

	const readers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds+rounds)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := names[(r+i)%len(names)]
				got, meta, err := reg.Get(name)
				if err != nil {
					errs <- fmt.Errorf("get %s: %w", name, err)
					return
				}
				if got == nil || len(got.Attrs) != len(m.Attrs) || meta.Name != name {
					errs <- fmt.Errorf("torn read of %s: %+v", name, meta)
					return
				}
			}
		}(r)
	}
	// Publishers churn the same name the readers are hitting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := reg.Publish("n0", m); err != nil {
				errs <- fmt.Errorf("publish: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if keys := cacheKeys(reg); len(keys) > 1 {
		t.Fatalf("cache exceeded its cap of 1: %v", keys)
	}
}
