package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dataaudit/internal/audit"
)

// ErrReplicaConflict marks a replica install that would silently overwrite
// a different committed model under the same (name, version) key. Match
// with errors.Is.
var ErrReplicaConflict = errors.New("registry: replica conflict")

// ReplicaConflictError details the conflicting publish: the local version
// exists but was committed at a different time (or with a different
// schema) than the replica — the classic recreated-model hazard, where a
// model was deleted and re-published so version numbers restarted and
// collide. The resolution belongs to the caller: a worker resolving a
// coordinator push deletes its local copy and re-installs, because the
// coordinator's registry is the source of truth.
type ReplicaConflictError struct {
	Name    string
	Version int
}

func (e *ReplicaConflictError) Error() string {
	return fmt.Sprintf("registry: replica of %s v%d conflicts with a locally committed version (deleted/recreated model?)", e.Name, e.Version)
}

func (e *ReplicaConflictError) Unwrap() error { return ErrReplicaConflict }

// InstallReplica commits a model under the exact (version, createdAt,
// quality) identity of a publish made elsewhere — registry replication.
// Unlike Publish it allocates no version: meta travels verbatim from the
// source registry, so a worker's copy of "model v3" is indistinguishable
// from the coordinator's (same sidecar, same gob model bytes on load).
//
// The install is atomic like Publish (model file first, meta sidecar as
// the commit point) and idempotent: re-installing a version that is
// already committed with the same CreatedAt and SchemaHash is a no-op.
// A committed version with a *different* identity fails with
// ErrReplicaConflict and changes nothing — the caller decides whether to
// delete and re-install.
func (r *Registry) InstallReplica(meta Meta, m *audit.Model) error {
	if !ValidName(meta.Name) {
		return fmt.Errorf("registry: invalid model name %q", meta.Name)
	}
	if meta.Version < 1 {
		return fmt.Errorf("registry: replica of %s: invalid version %d", meta.Name, meta.Version)
	}
	if m == nil || m.Schema == nil {
		return fmt.Errorf("registry: nil replica model")
	}
	if meta.CreatedAt.IsZero() {
		return fmt.Errorf("registry: replica of %s v%d has no CreatedAt (cannot guard against recreated models)", meta.Name, meta.Version)
	}
	// The payload must match its metadata: a replica whose model hashes
	// differently from its meta is corrupt in flight, and committing it
	// would poison every schema-drift check downstream.
	if hash := SchemaHash(m.Schema); hash == "" || hash != meta.SchemaHash {
		return fmt.Errorf("registry: replica of %s v%d: model schema hash %.12s does not match meta %.12s", meta.Name, meta.Version, SchemaHash(m.Schema), meta.SchemaHash)
	}

	r.pubMu.Lock()
	defer r.pubMu.Unlock()

	dir := r.modelDir(meta.Name)
	if existing, err := r.readMeta(meta.Name, meta.Version); err == nil {
		if existing.CreatedAt.Equal(meta.CreatedAt) && existing.SchemaHash == meta.SchemaHash {
			return nil // already committed — idempotent
		}
		return &ReplicaConflictError{Name: meta.Name, Version: meta.Version}
	} else if !IsNotFound(err) {
		return err
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	modelFile, metaFile := versionFiles(meta.Version)
	if err := audit.Save(filepath.Join(dir, modelFile), m); err != nil {
		return fmt.Errorf("registry: writing replica model: %w", err)
	}
	if err := writeJSONAtomic(filepath.Join(dir, metaFile), meta); err != nil {
		os.Remove(filepath.Join(dir, modelFile)) // roll back the orphan
		return fmt.Errorf("registry: committing replica meta: %w", err)
	}

	r.mu.Lock()
	r.cachePutLocked(meta.Name, meta.Version, m, meta)
	r.mu.Unlock()
	return nil
}
