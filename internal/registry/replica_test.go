package registry

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dataaudit/internal/audit"
)

// publishSource publishes a model into a fresh "coordinator" registry and
// returns both registries plus the committed meta.
func publishSource(t *testing.T) (src, dst *Registry, meta Meta, m *audit.Model) {
	t.Helper()
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst, err = Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m = testModel(t)
	meta, err = src.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	return src, dst, meta, m
}

func TestInstallReplicaRoundTrip(t *testing.T) {
	_, dst, meta, m := publishSource(t)
	if err := dst.InstallReplica(meta, m); err != nil {
		t.Fatal(err)
	}

	gotModel, gotMeta, err := dst.GetVersion("engines", meta.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !gotMeta.CreatedAt.Equal(meta.CreatedAt) || gotMeta.Version != meta.Version || gotMeta.SchemaHash != meta.SchemaHash {
		t.Fatalf("replica meta %+v diverges from source %+v", gotMeta, meta)
	}
	want, err := audit.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := audit.Marshal(gotModel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("replica model bytes diverge from the source model")
	}

	// Latest resolution sees the replica.
	latest, err := dst.MetaOf("engines")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != meta.Version {
		t.Fatalf("latest = v%d, want v%d", latest.Version, meta.Version)
	}
}

func TestInstallReplicaIdempotent(t *testing.T) {
	_, dst, meta, m := publishSource(t)
	for i := 0; i < 2; i++ {
		if err := dst.InstallReplica(meta, m); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
}

// TestInstallReplicaConflict: the same (name, version) committed at a
// different CreatedAt — a deleted-and-recreated model — must be rejected
// with ErrReplicaConflict, and the committed copy must survive untouched.
func TestInstallReplicaConflict(t *testing.T) {
	_, dst, meta, m := publishSource(t)
	if err := dst.InstallReplica(meta, m); err != nil {
		t.Fatal(err)
	}

	recreated := meta
	recreated.CreatedAt = meta.CreatedAt.Add(time.Hour)
	err := dst.InstallReplica(recreated, m)
	if !errors.Is(err, ErrReplicaConflict) {
		t.Fatalf("conflicting install: err = %v, want ErrReplicaConflict", err)
	}
	var rc *ReplicaConflictError
	if !errors.As(err, &rc) || rc.Name != "engines" || rc.Version != meta.Version {
		t.Fatalf("conflict detail = %+v", rc)
	}

	got, err := dst.MetaOfVersion("engines", meta.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CreatedAt.Equal(meta.CreatedAt) {
		t.Fatal("conflicting install overwrote the committed sidecar")
	}

	// Delete-then-reinstall is the sanctioned resolution.
	if err := dst.Delete("engines"); err != nil {
		t.Fatal(err)
	}
	if err := dst.InstallReplica(recreated, m); err != nil {
		t.Fatalf("reinstall after delete: %v", err)
	}
}

func TestInstallReplicaRejectsBadInputs(t *testing.T) {
	_, dst, meta, m := publishSource(t)

	cases := []struct {
		name   string
		mutate func(*Meta)
	}{
		{"bad name", func(mt *Meta) { mt.Name = "../escape" }},
		{"zero version", func(mt *Meta) { mt.Version = 0 }},
		{"zero createdAt", func(mt *Meta) { mt.CreatedAt = time.Time{} }},
		{"schema hash mismatch", func(mt *Meta) { mt.SchemaHash = "deadbeef" }},
	}
	for _, tc := range cases {
		bad := meta
		tc.mutate(&bad)
		if err := dst.InstallReplica(bad, m); err == nil {
			t.Errorf("%s: install accepted", tc.name)
		}
	}
	if err := dst.InstallReplica(meta, nil); err == nil {
		t.Error("nil model: install accepted")
	}
}
