package registry

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/quis"
)

// testModel induces a small structure model (a QUIS-flavoured relation
// with a strong BRV → GBM dependency) for registry tests.
func testModel(t testing.TB) *audit.Model {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501", "600"),
		dataset.NewNominal("KBM", "01", "02"),
		dataset.NewNominal("GBM", "901", "911", "950"),
		dataset.NewNumeric("DISP", 1000, 4000),
	)
	tab := dataset.NewTable(schema)
	rng := rand.New(rand.NewSource(7))
	row := make([]dataset.Value, 4)
	for i := 0; i < 800; i++ {
		brv := rng.Intn(3)
		disp := 1500 + float64(brv)*1000 + rng.NormFloat64()*80
		if disp < 1000 {
			disp = 1000
		}
		if disp > 4000 {
			disp = 4000
		}
		row[0], row[1], row[2], row[3] = dataset.Nom(brv), dataset.Nom(rng.Intn(2)), dataset.Nom(brv), dataset.Num(disp)
		tab.AppendRow(row)
	}
	m, err := audit.Induce(tab, audit.Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublishGetRoundTrip(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)

	meta, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 {
		t.Fatalf("first publish version = %d, want 1", meta.Version)
	}
	if meta.SchemaHash == "" || meta.SchemaHash != SchemaHash(m.Schema) {
		t.Fatalf("bad schema hash %q", meta.SchemaHash)
	}
	if meta.TrainRows != m.TrainRows {
		t.Fatalf("TrainRows = %d, want %d", meta.TrainRows, m.TrainRows)
	}

	got, gotMeta, err := reg.Get("engines")
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Version != 1 || got == nil {
		t.Fatalf("Get returned version %d, model %v", gotMeta.Version, got)
	}
	if len(got.Attrs) != len(m.Attrs) {
		t.Fatalf("loaded model has %d attr models, want %d", len(got.Attrs), len(m.Attrs))
	}

	// A second publish bumps the version; Get serves the latest, and the
	// old version stays addressable.
	meta2, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Version != 2 {
		t.Fatalf("second publish version = %d, want 2", meta2.Version)
	}
	if _, latest, err := reg.Get("engines"); err != nil || latest.Version != 2 {
		t.Fatalf("latest = v%d, err %v; want v2", latest.Version, err)
	}
	if _, old, err := reg.GetVersion("engines", 1); err != nil || old.Version != 1 {
		t.Fatalf("GetVersion(1) = v%d, err %v", old.Version, err)
	}
}

func TestListAndDelete(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	for _, name := range []string{"b-model", "a-model"} {
		if _, err := reg.Publish(name, m); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Name != "a-model" || metas[1].Name != "b-model" {
		t.Fatalf("List = %+v, want a-model then b-model", metas)
	}

	if err := reg.Delete("a-model"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Get("a-model"); !IsNotFound(err) {
		t.Fatalf("Get after Delete: err = %v, want not-found", err)
	}
	if err := reg.Delete("a-model"); !IsNotFound(err) {
		t.Fatalf("double Delete: err = %v, want not-found", err)
	}
}

func TestInvalidNames(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	for _, name := range []string{"", "../escape", "a/b", ".hidden", "x y"} {
		if _, err := reg.Publish(name, m); err == nil {
			t.Fatalf("Publish(%q) accepted an invalid name", name)
		}
		if _, _, err := reg.Get(name); err == nil {
			t.Fatalf("Get(%q) accepted an invalid name", name)
		}
	}
}

// TestConcurrentPublishGet hammers one model name with concurrent
// publishers and readers; run with -race. Every publish must get a unique
// monotonic version and readers must always see a complete model.
func TestConcurrentPublishGet(t *testing.T) {
	reg, err := Open(t.TempDir(), WithCacheSize(2))
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	if _, err := reg.Publish("hot", m); err != nil {
		t.Fatal(err)
	}

	const publishers, readers, rounds = 4, 8, 5
	versions := make(chan int, publishers*rounds)
	var wg sync.WaitGroup
	errs := make(chan error, publishers*rounds+readers*rounds)

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				meta, err := reg.Publish("hot", m)
				if err != nil {
					errs <- err
					return
				}
				versions <- meta.Version
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, meta, err := reg.Get("hot")
				if err != nil {
					errs <- err
					return
				}
				if got == nil || meta.Version < 1 {
					errs <- fmt.Errorf("incomplete read: model %v, meta %+v", got, meta)
					return
				}
				// The loaded model must be usable, not torn.
				if len(got.Attrs) != len(m.Attrs) {
					errs <- fmt.Errorf("read model with %d attrs, want %d", len(got.Attrs), len(m.Attrs))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(versions)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	seen := make(map[int]bool)
	for v := range versions {
		if seen[v] {
			t.Fatalf("version %d assigned twice", v)
		}
		seen[v] = true
	}
	if len(seen) != publishers*rounds {
		t.Fatalf("%d distinct versions, want %d", len(seen), publishers*rounds)
	}
}

// TestAbortedPublishIgnored plants a model file without its meta sidecar
// (a simulated crash between the two renames) and checks that reads skip
// it and the next publish garbage-collects it.
func TestAbortedPublishIgnored(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	if _, err := reg.Publish("engines", m); err != nil {
		t.Fatal(err)
	}

	// Simulate an aborted publish of v2: model written, meta missing.
	orphan := filepath.Join(dir, "engines", "v000002.model")
	if err := audit.Save(orphan, m); err != nil {
		t.Fatal(err)
	}
	if _, meta, err := reg.Get("engines"); err != nil || meta.Version != 1 {
		t.Fatalf("Get with orphan present: v%d, err %v; want v1", meta.Version, err)
	}

	// The next publish claims version 2 (the orphan never committed) and
	// atomically replaces the leftover model file.
	meta, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 {
		t.Fatalf("publish after abort: v%d, want v2", meta.Version)
	}
}

func TestSchemaHashStability(t *testing.T) {
	s1 := quis.Schema()
	s2 := quis.Schema()
	if SchemaHash(s1) != SchemaHash(s2) {
		t.Fatal("identical schemas hash differently")
	}
	other := dataset.MustSchema(dataset.NewNominal("X", "a", "b"))
	if SchemaHash(s1) == SchemaHash(other) {
		t.Fatal("different schemas share a hash")
	}
}

// TestPublishRefusesEmptySchemaHash pins the corrupt-fingerprint guard: a
// schema that does not render to well-formed text (here: an attribute
// whose Type was corrupted after construction) hashes to "", and Publish
// must refuse to commit it rather than publish a Meta whose empty hash
// would make every schema-drift comparison silently pass.
func TestPublishRefusesEmptySchemaHash(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	if SchemaHash(m.Schema) == "" {
		t.Fatal("healthy schema must hash")
	}
	m.Schema.Attrs()[0].Type = dataset.Type(99) // corrupt in place
	if SchemaHash(m.Schema) != "" {
		t.Fatal("corrupt schema must hash to empty")
	}
	if _, err := reg.Publish("corrupt", m); err == nil || !strings.Contains(err.Error(), "schema hash") {
		t.Fatalf("publish of corrupt schema not refused: %v", err)
	}
	// Nothing may have been committed — the model must not exist.
	if _, err := reg.MetaOf("corrupt"); !IsNotFound(err) {
		t.Fatalf("refused publish left state behind: %v", err)
	}
}

// TestPublishWithQualityRoundTrip checks the quality baseline commits
// atomically with the meta sidecar and survives a registry reopen.
func TestPublishWithQualityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	profile := &audit.QualityProfile{
		Rows:           800,
		SuspiciousRate: 0.0125,
		ConfHist:       make([]int64, audit.ConfHistBins),
		Attrs: []audit.AttrQuality{
			{Attr: 0, Name: "BRV", DeviationRate: 0.02, ConfHist: make([]int64, audit.ConfHistBins)},
		},
	}
	profile.ConfHist[1] = 10

	meta, err := reg.PublishWithQuality("engines", m, profile)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Quality == nil || meta.Quality.SuspiciousRate != 0.0125 {
		t.Fatalf("publish dropped the profile: %+v", meta.Quality)
	}

	// A fresh registry handle reads the profile back from the sidecar.
	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg2.MetaOf("engines")
	if err != nil {
		t.Fatal(err)
	}
	if got.Quality == nil || got.Quality.Rows != 800 || got.Quality.ConfHist[1] != 10 ||
		len(got.Quality.Attrs) != 1 || got.Quality.Attrs[0].Name != "BRV" {
		t.Fatalf("profile did not round-trip: %+v", got.Quality)
	}

	// Plain Publish still works and simply carries no baseline.
	meta2, err := reg2.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Version != 2 || meta2.Quality != nil {
		t.Fatalf("plain publish meta wrong: v%d quality=%v", meta2.Version, meta2.Quality)
	}
}

// TestMetaOfVersionAndStateDir pins the cross-restart plumbing the
// quality monitor's persistence layer relies on: MetaOfVersion resolves
// a specific committed version without loading the model (and without
// caching it), its CreatedAt identifies the incarnation across a
// delete/recreate, and StateDir stays outside the model namespace.
func TestMetaOfVersionAndStateDir(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	meta1, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}

	got, err := reg.MetaOfVersion("engines", 1)
	if err != nil || got.Version != 1 || !got.CreatedAt.Equal(meta1.CreatedAt) {
		t.Fatalf("MetaOfVersion(1) = %+v, %v", got, err)
	}
	if got, err = reg.MetaOfVersion("engines", 2); err != nil || got.Version != 2 {
		t.Fatalf("MetaOfVersion(2) = %+v, %v", got, err)
	}
	if _, err := reg.MetaOfVersion("engines", 3); !IsNotFound(err) {
		t.Fatalf("missing version must be NotFound, got %v", err)
	}
	if _, err := reg.MetaOfVersion("engines", 0); err == nil {
		t.Fatal("version 0 must be rejected")
	}
	if _, err := reg.MetaOfVersion("../escape", 1); err == nil {
		t.Fatal("invalid name must be rejected")
	}

	// Delete + recreate: the version number exists again, but CreatedAt
	// moved — the incarnation check a persisted monitor state must fail.
	if err := reg.Delete("engines"); err != nil {
		t.Fatal(err)
	}
	meta3, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	got, err = reg.MetaOfVersion("engines", meta2.Version-1)
	if err != nil || got.CreatedAt.Equal(meta1.CreatedAt) || !got.CreatedAt.Equal(meta3.CreatedAt) {
		t.Fatalf("recreated v1 must carry the new incarnation's CreatedAt: %+v, %v", got, err)
	}

	// StateDir sits under the root but cannot collide with a model: its
	// name is not a ValidName, so List and the model routes skip it.
	sd := reg.StateDir()
	if filepath.Dir(sd) != reg.Root() {
		t.Fatalf("StateDir %q not under root %q", sd, reg.Root())
	}
	if ValidName(filepath.Base(sd)) {
		t.Fatalf("StateDir base %q collides with the model namespace", filepath.Base(sd))
	}
}
