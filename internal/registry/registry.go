package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
)

// Meta describes one published model version.
type Meta struct {
	// Name is the registry key; Version the monotonic publish counter.
	Name    string `json:"name"`
	Version int    `json:"version"`
	// SchemaHash fingerprints the model's relation schema (sha256 over the
	// canonical schema text format) so clients can detect drift between
	// the data they score and the data the model was trained on.
	SchemaHash string `json:"schemaHash"`
	// Attributes are the schema's attribute names, for display.
	Attributes []string `json:"attributes"`
	// Inducer is the structure-induction algorithm the model was built with.
	Inducer audit.InducerKind `json:"inducer"`
	// TrainRows is the induction sample size.
	TrainRows int `json:"trainRows"`
	// NumAttrModels is the number of per-attribute classifiers, recorded
	// here so metadata reads never have to load the model itself.
	NumAttrModels int `json:"numAttrModels"`
	// InduceMillis is the induction wall time in milliseconds.
	InduceMillis int64 `json:"induceMillis"`
	// CreatedAt is the publish timestamp (UTC).
	CreatedAt time.Time `json:"createdAt"`
	// Quality is the model's quality baseline on its training table
	// (audit.Model.QualityProfile), persisted with the meta sidecar so the
	// monitoring layer can compare fresh audits against it without
	// re-scoring the training data. Nil on versions published without a
	// profile.
	Quality *audit.QualityProfile `json:"quality,omitempty"`
}

// SchemaHash computes the canonical schema fingerprint recorded in Meta.
// It returns "" when the schema does not render to a well-formed text form
// (e.g. an attribute of unknown type, which renders an empty line) — a
// fingerprint over such text would not round-trip through ParseSchema.
// Publish refuses to commit a Meta with an empty hash, so a corrupt
// fingerprint can never be published.
func SchemaHash(s *dataset.Schema) string {
	var b strings.Builder
	if err := dataset.WriteSchemaText(&b, s); err != nil {
		return "" // strings.Builder never errors; defensive only
	}
	text := b.String()
	if text == "" {
		return ""
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			return ""
		}
	}
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether a model name is acceptable as a registry key
// (and therefore as a directory name and URL path segment).
func ValidName(name string) bool { return nameRe.MatchString(name) }

// Registry is the catalogue handle. All methods are safe for concurrent
// use; a single Registry is meant to be shared by every goroutine of a
// serving process.
//
// Locking: mu guards only the in-memory cache and is never held across
// disk I/O, so a slow publish or cold load cannot stall cache hits.
// pubMu serializes the writers (Publish, Delete) — version allocation
// and the two-file commit must not interleave. Readers need no disk
// lock at all: committed meta sidecars are immutable, and a mid-publish
// directory scan simply does not see the uncommitted version yet (the
// sidecar is the commit point). Lock order where both are held:
// pubMu before mu.
type Registry struct {
	root string

	pubMu sync.Mutex // serializes Publish/Delete disk mutations

	mu    sync.Mutex
	cache map[string]*cacheEntry // key: "<name>@<version>"
	clock int64                  // logical clock for LRU bookkeeping
	gen   int64                  // bumped by Delete; stale loads skip the cache
	max   int

	// Cache statistics, atomic so CacheStats never contends with the
	// cache lock. The registry stays dependency-free: the serving layer
	// bridges these into its metric registry with scrape-time functions.
	hits, misses, evictions atomic.Uint64
}

// CacheStats reports the model cache's cumulative hit/miss/eviction
// counts and the number of currently resident models.
func (r *Registry) CacheStats() (hits, misses, evictions uint64, resident int) {
	r.mu.Lock()
	resident = len(r.cache)
	r.mu.Unlock()
	return r.hits.Load(), r.misses.Load(), r.evictions.Load(), resident
}

type cacheEntry struct {
	model *audit.Model
	meta  Meta
	used  int64
}

// Option customizes Open.
type Option func(*Registry)

// WithCacheSize caps the number of models kept resident (default 8).
func WithCacheSize(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.max = n
		}
	}
}

// Open creates (if needed) and opens a registry rooted at dir.
func Open(dir string, opts ...Option) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r := &Registry{root: dir, cache: make(map[string]*cacheEntry), max: 8}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Root returns the registry's backing directory.
func (r *Registry) Root() string { return r.root }

// StateDir returns the directory reserved under the registry root for
// sidecar state that should live and die with the catalogue — e.g. the
// quality monitor's persisted lifecycle state. The leading dot keeps it
// out of the model namespace: ValidName rejects it, so List and the model
// directories can never collide with it. The directory is created lazily
// by its users.
func (r *Registry) StateDir() string { return filepath.Join(r.root, ".state") }

func (r *Registry) modelDir(name string) string { return filepath.Join(r.root, name) }

func versionFiles(version int) (model, meta string) {
	return fmt.Sprintf("v%06d.model", version), fmt.Sprintf("v%06d.json", version)
}

// committedVersions scans a model directory for versions whose meta
// sidecar (the commit point) exists, ascending.
func committedVersions(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []int
	for _, e := range ents {
		var v int
		if n, _ := fmt.Sscanf(e.Name(), "v%06d.json", &v); n == 1 && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Publish stores the model under name with the next monotonic version and
// returns the committed metadata. The publish is atomic (write-temp-then-
// rename for both files): concurrent readers either see the previous
// latest version or the new one, never a torn state.
func (r *Registry) Publish(name string, m *audit.Model) (Meta, error) {
	return r.PublishWithQuality(name, m, nil)
}

// PublishWithQuality is Publish with a quality baseline attached: the
// profile is committed inside the meta sidecar (the same atomic rename),
// so a version either carries its baseline or does not exist.
func (r *Registry) PublishWithQuality(name string, m *audit.Model, quality *audit.QualityProfile) (Meta, error) {
	if !ValidName(name) {
		return Meta{}, fmt.Errorf("registry: invalid model name %q", name)
	}
	if m == nil || m.Schema == nil {
		return Meta{}, fmt.Errorf("registry: nil model")
	}
	hash := SchemaHash(m.Schema)
	if hash == "" {
		// SchemaHash's defensive error path must never become a published
		// fingerprint: an empty hash would make every schema-drift
		// comparison silently pass.
		return Meta{}, fmt.Errorf("registry: refusing to publish %q: empty schema hash", name)
	}

	// Serialize writers only: the encode + two renames below can take a
	// while for a large model, and readers must not queue behind them.
	r.pubMu.Lock()
	defer r.pubMu.Unlock()

	dir := r.modelDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	versions, err := committedVersions(dir)
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	version := 1
	if len(versions) > 0 {
		version = versions[len(versions)-1] + 1
	}

	meta := Meta{
		Name:          name,
		Version:       version,
		SchemaHash:    hash,
		Attributes:    m.Schema.Names(),
		Inducer:       m.Opts.Inducer,
		TrainRows:     m.TrainRows,
		NumAttrModels: len(m.Attrs),
		InduceMillis:  m.InduceTime.Milliseconds(),
		CreatedAt:     time.Now().UTC(),
		Quality:       quality,
	}

	modelFile, metaFile := versionFiles(version)
	if err := audit.Save(filepath.Join(dir, modelFile), m); err != nil {
		return Meta{}, fmt.Errorf("registry: writing model: %w", err)
	}
	if err := writeJSONAtomic(filepath.Join(dir, metaFile), meta); err != nil {
		os.Remove(filepath.Join(dir, modelFile)) // roll back the orphan
		return Meta{}, fmt.Errorf("registry: committing meta: %w", err)
	}
	gcAborted(dir, version)

	r.mu.Lock()
	r.cachePutLocked(name, version, m, meta)
	r.mu.Unlock()
	return meta, nil
}

// writeJSONAtomic writes v as JSON via temp-file + rename.
func writeJSONAtomic(path string, v any) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp makes the file 0600; widen to world-readable like a
	// plain os.Create would.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// gcAborted removes .model files (below the just-committed version) that
// never got their meta sidecar — leftovers of crashed publishes.
func gcAborted(dir string, committed int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		var v int
		if n, _ := fmt.Sscanf(e.Name(), "v%06d.model", &v); n != 1 || !strings.HasSuffix(e.Name(), ".model") {
			continue
		}
		if v >= committed {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("v%06d.json", v))); os.IsNotExist(err) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Get returns the latest committed version of the named model, loading it
// from disk on a cache miss.
func (r *Registry) Get(name string) (*audit.Model, Meta, error) {
	return r.GetVersion(name, 0)
}

// GetVersion returns a specific version (0 selects the latest). The disk
// load of a cache miss happens outside the registry lock, so one cold
// load never stalls cache hits for other models.
func (r *Registry) GetVersion(name string, version int) (*audit.Model, Meta, error) {
	if !ValidName(name) {
		return nil, Meta{}, fmt.Errorf("registry: invalid model name %q", name)
	}
	dir := r.modelDir(name)

	// Resolving "latest" scans the directory — no lock needed: committed
	// sidecars are immutable and a mid-publish version is invisible
	// until its sidecar lands.
	if version == 0 {
		versions, err := committedVersions(dir)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("registry: %w", err)
		}
		if len(versions) == 0 {
			return nil, Meta{}, &NotFoundError{Name: name}
		}
		version = versions[len(versions)-1]
	}
	key := cacheKey(name, version)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.clock++
		e.used = r.clock
		m, meta := e.model, e.meta
		r.mu.Unlock()
		r.hits.Add(1)
		return m, meta, nil
	}
	genAtMiss := r.gen
	r.mu.Unlock()
	r.misses.Add(1)

	meta, err := r.readMeta(name, version)
	if err != nil {
		return nil, Meta{}, err
	}
	modelFile, _ := versionFiles(version)
	m, err := audit.Load(filepath.Join(dir, modelFile))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("registry: loading %s v%d: %w", name, version, err)
	}

	r.mu.Lock()
	// A concurrent miss may have loaded the same version; keep the first
	// entry so every caller shares one resident copy.
	if e, ok := r.cache[key]; ok {
		r.clock++
		e.used = r.clock
		m, meta = e.model, e.meta
	} else if r.gen == genAtMiss {
		// Cache only when no Delete ran during the lock-free disk load:
		// a model read concurrently with its deletion may be returned
		// (it was committed when the read began) but must not be
		// re-inserted, or the stale entry would keep serving — and after
		// a re-publish restarts versions at 1, even alias — a dead model.
		r.cachePutLocked(name, version, m, meta)
	}
	r.mu.Unlock()
	return m, meta, nil
}

// MetaOf returns the latest committed metadata of the named model without
// loading (or caching) the model itself.
func (r *Registry) MetaOf(name string) (Meta, error) {
	if !ValidName(name) {
		return Meta{}, fmt.Errorf("registry: invalid model name %q", name)
	}
	versions, err := committedVersions(r.modelDir(name))
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	if len(versions) == 0 {
		return Meta{}, &NotFoundError{Name: name}
	}
	return r.readMeta(name, versions[len(versions)-1])
}

// MetaOfVersion returns the committed metadata of one specific version
// without loading (or caching) the model itself. Like MetaOf it takes no
// lock: committed sidecars are immutable. Callers use it to validate that
// a (version, createdAt) pair they tracked across a process boundary
// still names a live publish — a deleted or recreated model fails the
// CreatedAt comparison even when the version number exists again.
func (r *Registry) MetaOfVersion(name string, version int) (Meta, error) {
	if !ValidName(name) {
		return Meta{}, fmt.Errorf("registry: invalid model name %q", name)
	}
	if version < 1 {
		return Meta{}, fmt.Errorf("registry: invalid version %d", version)
	}
	return r.readMeta(name, version)
}

// readMeta reads one version's meta sidecar (no locking needed: the
// sidecar is immutable once renamed into place).
func (r *Registry) readMeta(name string, version int) (Meta, error) {
	_, metaFile := versionFiles(version)
	metaBytes, err := os.ReadFile(filepath.Join(r.modelDir(name), metaFile))
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, &NotFoundError{Name: name, Version: version}
		}
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return Meta{}, fmt.Errorf("registry: corrupt meta for %s v%d: %w", name, version, err)
	}
	return meta, nil
}

// List returns the latest committed metadata of every model, sorted by
// name. Like MetaOf it takes no lock: it reads only immutable committed
// sidecars.
func (r *Registry) List() ([]Meta, error) {
	ents, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []Meta
	for _, e := range ents {
		if !e.IsDir() || !ValidName(e.Name()) {
			continue
		}
		dir := r.modelDir(e.Name())
		versions, err := committedVersions(dir)
		if err != nil || len(versions) == 0 {
			continue
		}
		_, metaFile := versionFiles(versions[len(versions)-1])
		b, err := os.ReadFile(filepath.Join(dir, metaFile))
		if err != nil {
			continue
		}
		var meta Meta
		if json.Unmarshal(b, &meta) == nil {
			out = append(out, meta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Delete removes the named model — every version — from disk and cache.
func (r *Registry) Delete(name string) error {
	if !ValidName(name) {
		return fmt.Errorf("registry: invalid model name %q", name)
	}
	// A writer: must not interleave with a publish into the same
	// directory (pubMu), and must purge the cache atomically (mu).
	r.pubMu.Lock()
	defer r.pubMu.Unlock()

	dir := r.modelDir(name)
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return &NotFoundError{Name: name}
	}
	err := os.RemoveAll(dir)
	// Purge and bump gen only after the files are gone: a lock-free load
	// that started before the removal recorded the old gen and will skip
	// its cache insert; one that starts after the purge finds nothing on
	// disk. Purging first would leave a window to re-cache the dead
	// model from still-present files.
	r.mu.Lock()
	r.gen++
	for key := range r.cache {
		if n, _, ok := strings.Cut(key, "@"); ok && n == name {
			delete(r.cache, key)
		}
	}
	r.mu.Unlock()
	return err
}

// NotFoundError reports a missing model (or model version).
type NotFoundError struct {
	Name    string
	Version int
}

func (e *NotFoundError) Error() string {
	if e.Version > 0 {
		return fmt.Sprintf("registry: model %q version %d not found", e.Name, e.Version)
	}
	return fmt.Sprintf("registry: model %q not found", e.Name)
}

// IsNotFound reports whether err is a registry NotFoundError.
func IsNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

func cacheKey(name string, version int) string { return fmt.Sprintf("%s@%d", name, version) }

// cachePutLocked inserts into the LRU cache; r.mu must be held.
func (r *Registry) cachePutLocked(name string, version int, m *audit.Model, meta Meta) {
	r.clock++
	r.cache[cacheKey(name, version)] = &cacheEntry{model: m, meta: meta, used: r.clock}
	for len(r.cache) > r.max {
		oldestKey, oldest := "", int64(1<<62)
		for k, e := range r.cache {
			if e.used < oldest {
				oldestKey, oldest = k, e.used
			}
		}
		delete(r.cache, oldestKey)
		r.evictions.Add(1)
	}
}
