// Package pollute implements the controlled data corruption of §4.2:
// components that "simulate the strategies for identification and analysis
// of different forms of data pollution", each parameterized with an
// activation probability. Every corruption is logged, which gives the test
// environment its ground truth ("pollutes this data in a controlled and
// logged procedure", §4).
//
// The five polluters of the paper are implemented: wrong-value, null-value,
// limiter, switcher, and duplicator (which duplicates or deletes records).
package pollute

import (
	"fmt"
	"math/rand"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Kind identifies the corruption a log event records.
type Kind uint8

const (
	// WrongValue replaced a cell with a different value.
	WrongValue Kind = iota
	// NullValue replaced a cell with null.
	NullValue
	// Limit clamped a numeric cell to a bound.
	Limit
	// Switch swapped the values of two attributes within a record.
	Switch
	// Duplicate appended a spurious copy of a record.
	Duplicate
	// Delete removed a record.
	Delete
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case WrongValue:
		return "wrong-value"
	case NullValue:
		return "null-value"
	case Limit:
		return "limit"
	case Switch:
		return "switch"
	case Duplicate:
		return "duplicate"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one logged corruption.
type Event struct {
	// RecordID identifies the affected record in the dirty table (for
	// Delete: the removed record's former ID; for Duplicate: the fresh
	// copy's ID).
	RecordID int64
	Kind     Kind
	// Attr is the corrupted column (-1 for record-level events).
	Attr int
	// Before and After are the cell values around the corruption.
	Before, After dataset.Value
	// OtherAttr/OtherBefore/OtherAfter describe the second half of a Switch.
	OtherAttr               int
	OtherBefore, OtherAfter dataset.Value
	// DupOfID is the source record of a Duplicate.
	DupOfID int64
}

// Log is the complete record of a pollution run.
type Log struct {
	Events []Event
}

// CorruptedIDs returns the set of record IDs present in the dirty table
// that carry at least one error: cell-level corruptions and spurious
// duplicates. Deleted records are not included (a record-marking audit tool
// cannot flag an absent record; deletions concern the completeness
// dimension and are reported separately via DeletedIDs).
func (l *Log) CorruptedIDs() map[int64]bool {
	out := make(map[int64]bool)
	for _, e := range l.Events {
		switch e.Kind {
		case Delete:
			// not in the dirty table
		default:
			out[e.RecordID] = true
		}
	}
	return out
}

// DeletedIDs returns the IDs removed by the duplicator's delete mode.
func (l *Log) DeletedIDs() map[int64]bool {
	out := make(map[int64]bool)
	for _, e := range l.Events {
		if e.Kind == Delete {
			out[e.RecordID] = true
		}
	}
	return out
}

// CellEvents returns the events that modified a cell in place (everything
// except duplicates/deletes), keyed by record ID.
func (l *Log) CellEvents() map[int64][]Event {
	out := make(map[int64][]Event)
	for _, e := range l.Events {
		switch e.Kind {
		case Duplicate, Delete:
		default:
			out[e.RecordID] = append(out[e.RecordID], e)
		}
	}
	return out
}

// DuplicateGroups returns the spurious copies keyed by their source
// record: source ID → the IDs of the copies appended for it, in log
// order. Together with DeletedIDs this is the record-level half of the
// ground truth CellEvents intentionally drops — a duplicate detector's
// sweep joins its groups against this map. A source may itself have been
// deleted after being copied; intersect with DeletedIDs when only
// surviving records matter.
func (l *Log) DuplicateGroups() map[int64][]int64 {
	out := make(map[int64][]int64)
	for _, e := range l.Events {
		if e.Kind == Duplicate {
			out[e.DupOfID] = append(out[e.DupOfID], e.RecordID)
		}
	}
	return out
}

// CountByKind tallies events per corruption kind.
func (l *Log) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range l.Events {
		out[e.Kind]++
	}
	return out
}

// CellPolluter corrupts (at most) one record in place.
type CellPolluter interface {
	// Name identifies the polluter in logs and reports.
	Name() string
	// Corrupt applies the pollution to row r of the table and returns the
	// events describing what changed (empty when the attempt was a no-op,
	// e.g. nulling an already-null cell).
	Corrupt(t *dataset.Table, r int, rng *rand.Rand) []Event
}

// Configured pairs a polluter with its activation probability.
type Configured struct {
	Prob float64
	P    CellPolluter
}

// Plan is a complete pollution configuration: cell-level polluters plus the
// record-level duplicator.
type Plan struct {
	Cell []Configured
	// DuplicateProb is the per-record probability of appending a spurious
	// duplicate; DeleteProb the per-record probability of deletion.
	DuplicateProb float64
	DeleteProb    float64
	// DuplicateFuzz is the probability that a fresh copy additionally
	// gets one attribute perturbed, turning the exact duplicate into a
	// near duplicate (re-keyed exports, re-typed merges). The
	// perturbation is logged as a WrongValue event on the copy. Not a
	// pollution intensity, so Scale leaves it untouched.
	DuplicateFuzz float64
}

// Scale multiplies every activation probability by the common pollution
// factor of §6.1 ("we vary the activation probabilities of the employed
// pollution procedures by multiplying them with a common pollution
// factor"), clamping at 1.
func (p Plan) Scale(factor float64) Plan {
	scaled := Plan{
		Cell:          make([]Configured, len(p.Cell)),
		DuplicateProb: stats.Clamp(p.DuplicateProb*factor, 0, 1),
		DeleteProb:    stats.Clamp(p.DeleteProb*factor, 0, 1),
		DuplicateFuzz: p.DuplicateFuzz,
	}
	for i, c := range p.Cell {
		scaled.Cell[i] = Configured{Prob: stats.Clamp(c.Prob*factor, 0, 1), P: c.P}
	}
	return scaled
}

// Run corrupts a clone of the clean table according to the plan and returns
// the dirty table together with the complete corruption log. The clean
// table is never modified. Record IDs are preserved, so the ground truth
// can be joined back against the clean table.
func Run(clean *dataset.Table, plan Plan, rng *rand.Rand) (*dataset.Table, *Log) {
	dirty := clean.Clone()
	log := &Log{}

	// Phase 1: cell-level pollution, record by record.
	for r := 0; r < dirty.NumRows(); r++ {
		for _, c := range plan.Cell {
			if rng.Float64() >= c.Prob {
				continue
			}
			events := c.P.Corrupt(dirty, r, rng)
			log.Events = append(log.Events, events...)
		}
	}

	// Phase 2: record-level duplication/deletion over the original row
	// range (corruptions apply to the already cell-polluted rows, matching
	// a pipeline where load glitches hit the same feed).
	n := dirty.NumRows()
	var deletions []int
	for r := 0; r < n; r++ {
		if plan.DuplicateProb > 0 && rng.Float64() < plan.DuplicateProb {
			id := dirty.DuplicateRow(r)
			log.Events = append(log.Events, Event{
				RecordID: id, Kind: Duplicate, Attr: -1, OtherAttr: -1, DupOfID: dirty.ID(r),
			})
			// Every rng draw below is gated behind DuplicateFuzz > 0 so
			// plans without fuzz reproduce their historical seed streams
			// bit for bit.
			if plan.DuplicateFuzz > 0 && rng.Float64() < plan.DuplicateFuzz {
				if ev, ok := fuzzRow(dirty, dirty.NumRows()-1, rng); ok {
					log.Events = append(log.Events, ev)
				}
			}
		}
		if plan.DeleteProb > 0 && rng.Float64() < plan.DeleteProb {
			deletions = append(deletions, r)
		}
	}
	// Delete back to front so indices stay valid.
	for i := len(deletions) - 1; i >= 0; i-- {
		r := deletions[i]
		log.Events = append(log.Events, Event{
			RecordID: dirty.ID(r), Kind: Delete, Attr: -1, OtherAttr: -1,
		})
		dirty.DeleteRow(r)
	}
	return dirty, log
}

// fuzzRow perturbs one randomly chosen non-null cell of row r: a nominal
// cell moves to a different domain value, a number-like cell is nudged by
// 0.5% of the attribute's range. Returns ok=false when the row offers no
// perturbable cell (all nulls, single-value domains).
func fuzzRow(t *dataset.Table, r int, rng *rand.Rand) (Event, bool) {
	s := t.Schema()
	width := s.Len()
	for attempt := 0; attempt < 2*width; attempt++ {
		c := rng.Intn(width)
		a := s.Attr(c)
		before := t.Get(r, c)
		if before.IsNull() {
			continue
		}
		var after dataset.Value
		if a.Type == dataset.NominalType {
			if len(a.Domain) < 2 {
				continue
			}
			after = dataset.Nom((before.NomIdx() + 1 + rng.Intn(len(a.Domain)-1)) % len(a.Domain))
		} else {
			nudge := (a.Max - a.Min) * 0.005
			if nudge <= 0 {
				nudge = 1
			}
			if rng.Intn(2) == 1 {
				nudge = -nudge
			}
			after = dataset.Num(before.Float() + nudge)
		}
		t.Set(r, c, after)
		return Event{
			RecordID: t.ID(r), Kind: WrongValue, Attr: c,
			Before: before, After: after, OtherAttr: -1,
		}, true
	}
	return Event{}, false
}
