package pollute

import (
	"math/rand"
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

func polluteSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("color", "red", "green", "blue"),
		dataset.NewNominal("shade", "green", "blue", "black"),
		dataset.NewNumeric("size", 0, 1000),
		dataset.NewNumeric("weight", 0, 1000),
	)
}

func cleanTable(t testing.TB, n int) *dataset.Table {
	t.Helper()
	s := polluteSchema(t)
	tab := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < n; i++ {
		tab.AppendRow([]dataset.Value{
			dataset.Nom(rng.Intn(3)),
			dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(rng.Intn(1001))),
			dataset.Num(float64(rng.Intn(1001))),
		})
	}
	return tab
}

func TestWrongValueChangesCell(t *testing.T) {
	tab := cleanTable(t, 50)
	rng := rand.New(rand.NewSource(1))
	p := &WrongValuePolluter{}
	for r := 0; r < 50; r++ {
		before := tab.Row(r)
		events := p.Corrupt(tab, r, rng)
		if len(events) != 1 {
			t.Fatalf("row %d: %d events", r, len(events))
		}
		e := events[0]
		if e.Kind != WrongValue || e.After.Equal(e.Before) {
			t.Fatalf("bad event: %+v", e)
		}
		if !tab.Get(r, e.Attr).Equal(e.After) || before[e.Attr].Equal(tab.Get(r, e.Attr)) {
			t.Fatalf("event does not describe the actual change")
		}
	}
}

func TestWrongValueRespectsDistribution(t *testing.T) {
	tab := cleanTable(t, 2000)
	rng := rand.New(rand.NewSource(2))
	// Force every replacement on attribute 0 to "blue" (index 2).
	p := &WrongValuePolluter{
		Attrs: []int{0},
		Cat:   map[int]*stats.Categorical{0: stats.MustCategorical(0, 0, 1)},
	}
	for r := 0; r < 2000; r++ {
		if events := p.Corrupt(tab, r, rng); len(events) == 1 {
			if events[0].After.NomIdx() != 2 {
				t.Fatalf("replacement ignored the distribution")
			}
		} else if tab.Get(r, 0).NomIdx() != 2 {
			// A no-op is only acceptable when the cell was already "blue".
			t.Fatalf("no-op on a corruptible cell")
		}
	}
}

func TestWrongValueDegenerateDomainNoop(t *testing.T) {
	s := dataset.MustSchema(dataset.NewNominal("only", "x"))
	tab := dataset.NewTable(s)
	tab.AppendRow([]dataset.Value{dataset.Nom(0)})
	p := &WrongValuePolluter{}
	if events := p.Corrupt(tab, 0, rand.New(rand.NewSource(3))); len(events) != 0 {
		t.Fatalf("single-value domain cannot be wrong-valued: %v", events)
	}
}

func TestNullValuePolluter(t *testing.T) {
	tab := cleanTable(t, 10)
	rng := rand.New(rand.NewSource(4))
	p := &NullValuePolluter{Attrs: []int{2}}
	events := p.Corrupt(tab, 0, rng)
	if len(events) != 1 || events[0].Kind != NullValue || !events[0].After.IsNull() {
		t.Fatalf("bad events: %+v", events)
	}
	if !tab.Get(0, 2).IsNull() {
		t.Fatalf("cell not nulled")
	}
	// Nulling again is a no-op.
	if events := p.Corrupt(tab, 0, rng); len(events) != 0 {
		t.Fatalf("nulling a null must be a no-op")
	}
}

func TestLimiter(t *testing.T) {
	tab := cleanTable(t, 1)
	tab.Set(0, 2, dataset.Num(900))
	p := &Limiter{Attr: 2, Lo: 0, Hi: 500}
	events := p.Corrupt(tab, 0, rand.New(rand.NewSource(5)))
	if len(events) != 1 || events[0].After.Float() != 500 {
		t.Fatalf("limiter failed: %+v", events)
	}
	// Value already inside the window: no-op.
	tab.Set(0, 2, dataset.Num(100))
	if events := p.Corrupt(tab, 0, rand.New(rand.NewSource(6))); len(events) != 0 {
		t.Fatalf("limiter must not log no-ops")
	}
	// Null cell: no-op.
	tab.Set(0, 2, dataset.Null())
	if events := p.Corrupt(tab, 0, rand.New(rand.NewSource(7))); len(events) != 0 {
		t.Fatalf("limiter on null must be a no-op")
	}
}

func TestSwitcherNumeric(t *testing.T) {
	tab := cleanTable(t, 1)
	tab.Set(0, 2, dataset.Num(11))
	tab.Set(0, 3, dataset.Num(22))
	p := &Switcher{AttrA: 2, AttrB: 3}
	events := p.Corrupt(tab, 0, rand.New(rand.NewSource(8)))
	if len(events) != 1 || events[0].Kind != Switch {
		t.Fatalf("bad events: %+v", events)
	}
	if tab.Get(0, 2).Float() != 22 || tab.Get(0, 3).Float() != 11 {
		t.Fatalf("values not swapped")
	}
	// Equal values: swap is invisible, no event.
	tab.Set(0, 2, dataset.Num(5))
	tab.Set(0, 3, dataset.Num(5))
	if events := p.Corrupt(tab, 0, rand.New(rand.NewSource(9))); len(events) != 0 {
		t.Fatalf("invisible swap must not be logged")
	}
}

func TestSwitcherNominalCrossDomain(t *testing.T) {
	tab := cleanTable(t, 1)
	// color=green (#1), shade=blue (#1): both strings exist in both domains.
	tab.Set(0, 0, dataset.Nom(1))
	tab.Set(0, 1, dataset.Nom(1))
	p := &Switcher{AttrA: 0, AttrB: 1}
	events := p.Corrupt(tab, 0, rand.New(rand.NewSource(10)))
	if len(events) != 1 {
		t.Fatalf("swap should have happened: %v", events)
	}
	s := tab.Schema()
	if s.Attr(0).Format(tab.Get(0, 0)) != "blue" || s.Attr(1).Format(tab.Get(0, 1)) != "green" {
		t.Fatalf("cross-domain swap wrong: %s / %s",
			s.Attr(0).Format(tab.Get(0, 0)), s.Attr(1).Format(tab.Get(0, 1)))
	}
}

func TestSwitcherUntranslatableHalfStays(t *testing.T) {
	tab := cleanTable(t, 1)
	// color=red: "red" is not in shade's domain, so shade keeps its value;
	// shade=black is not in color's domain either -> complete no-op.
	tab.Set(0, 0, dataset.Nom(0))
	tab.Set(0, 1, dataset.Nom(2))
	p := &Switcher{AttrA: 0, AttrB: 1}
	if events := p.Corrupt(tab, 0, rand.New(rand.NewSource(11))); len(events) != 0 {
		t.Fatalf("untranslatable swap must be a no-op: %v", events)
	}
}

func TestSwitcherTypeMismatchNoop(t *testing.T) {
	tab := cleanTable(t, 1)
	p := &Switcher{AttrA: 0, AttrB: 2}
	if events := p.Corrupt(tab, 0, rand.New(rand.NewSource(12))); len(events) != 0 {
		t.Fatalf("nominal/numeric switch must be a no-op")
	}
}

func TestRunLogMatchesTableDiff(t *testing.T) {
	// The central ground-truth invariant: replaying the log against the
	// clean table must yield exactly the dirty table — every difference is
	// logged, and nothing else changed.
	clean := cleanTable(t, 400)
	plan := Plan{
		Cell: []Configured{
			{Prob: 0.10, P: &WrongValuePolluter{}},
			{Prob: 0.05, P: &NullValuePolluter{}},
			{Prob: 0.05, P: &Limiter{Attr: 2, Lo: 100, Hi: 800}},
			{Prob: 0.05, P: &Switcher{AttrA: 2, AttrB: 3}},
		},
		DuplicateProb: 0.03,
		DeleteProb:    0.02,
	}
	rng := rand.New(rand.NewSource(13))
	dirty, log := Run(clean, plan, rng)

	// 1. The clean table is untouched.
	if clean.NumRows() != 400 {
		t.Fatalf("clean table modified")
	}

	// 2. Rebuild the dirty table from clean + log.
	rebuilt := clean.Clone()
	idx := rebuilt.RowIndexByID()
	for _, e := range log.Events {
		switch e.Kind {
		case Duplicate:
			src, ok := idx[e.DupOfID]
			if !ok {
				t.Fatalf("duplicate of unknown record %d", e.DupOfID)
			}
			id := rebuilt.DuplicateRow(src)
			if id != e.RecordID {
				t.Fatalf("duplicate got ID %d, log says %d", id, e.RecordID)
			}
			idx[id] = rebuilt.NumRows() - 1
		case Delete:
			r, ok := idx[e.RecordID]
			if !ok {
				t.Fatalf("delete of unknown record %d", e.RecordID)
			}
			rebuilt.DeleteRow(r)
			idx = rebuilt.RowIndexByID()
		case Switch:
			r := idx[e.RecordID]
			if !rebuilt.Get(r, e.Attr).Equal(e.Before) || !rebuilt.Get(r, e.OtherAttr).Equal(e.OtherBefore) {
				t.Fatalf("switch Before mismatch at record %d", e.RecordID)
			}
			rebuilt.Set(r, e.Attr, e.After)
			rebuilt.Set(r, e.OtherAttr, e.OtherAfter)
		default:
			r := idx[e.RecordID]
			if !rebuilt.Get(r, e.Attr).Equal(e.Before) {
				t.Fatalf("event Before does not match table state at record %d", e.RecordID)
			}
			rebuilt.Set(r, e.Attr, e.After)
		}
	}
	if rebuilt.NumRows() != dirty.NumRows() {
		t.Fatalf("row counts differ: rebuilt %d, dirty %d", rebuilt.NumRows(), dirty.NumRows())
	}
	for r := 0; r < dirty.NumRows(); r++ {
		if rebuilt.ID(r) != dirty.ID(r) {
			t.Fatalf("ID order differs at row %d", r)
		}
		for c := 0; c < dirty.NumCols(); c++ {
			if !rebuilt.Get(r, c).Equal(dirty.Get(r, c)) {
				t.Fatalf("cell (%d,%d): rebuilt %v, dirty %v", r, c, rebuilt.Get(r, c), dirty.Get(r, c))
			}
		}
	}
}

func TestRunCorruptedIDsConsistency(t *testing.T) {
	clean := cleanTable(t, 300)
	plan := Plan{
		Cell: []Configured{
			{Prob: 0.15, P: &WrongValuePolluter{}},
			{Prob: 0.05, P: &NullValuePolluter{}},
		},
		DuplicateProb: 0.05,
		DeleteProb:    0.03,
	}
	dirty, log := Run(clean, plan, rand.New(rand.NewSource(14)))
	corrupted := log.CorruptedIDs()
	deleted := log.DeletedIDs()
	present := make(map[int64]bool)
	for r := 0; r < dirty.NumRows(); r++ {
		present[dirty.ID(r)] = true
	}
	for id := range corrupted {
		if deleted[id] {
			continue // corrupted then deleted: gone from the dirty table
		}
		if !present[id] {
			t.Fatalf("corrupted ID %d missing from dirty table", id)
		}
	}
	for id := range deleted {
		if present[id] {
			t.Fatalf("deleted ID %d still present", id)
		}
	}
	if len(corrupted) == 0 || len(deleted) == 0 {
		t.Fatalf("test should exercise both kinds (corrupted=%d deleted=%d)", len(corrupted), len(deleted))
	}
}

func TestRunActivationProbability(t *testing.T) {
	clean := cleanTable(t, 5000)
	plan := Plan{Cell: []Configured{{Prob: 0.2, P: &NullValuePolluter{}}}}
	_, log := Run(clean, plan, rand.New(rand.NewSource(15)))
	// Nulling hits a random attr; a tiny fraction are no-ops (already
	// null) — none here since the clean table has no nulls.
	rate := float64(len(log.Events)) / 5000
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("activation rate %g, want ~0.2", rate)
	}
}

func TestPlanScale(t *testing.T) {
	plan := Plan{
		Cell:          []Configured{{Prob: 0.2, P: &NullValuePolluter{}}},
		DuplicateProb: 0.4,
		DeleteProb:    0.1,
	}
	scaled := plan.Scale(3)
	if got := scaled.Cell[0].Prob; got < 0.6-1e-12 || got > 0.6+1e-12 {
		t.Fatalf("cell prob = %g", got)
	}
	if scaled.DuplicateProb != 1 { // clamped
		t.Fatalf("dup prob = %g", scaled.DuplicateProb)
	}
	if got := scaled.DeleteProb; got < 0.3-1e-12 || got > 0.3+1e-12 {
		t.Fatalf("delete prob = %g", got)
	}
	// Original untouched.
	if plan.Cell[0].Prob != 0.2 {
		t.Fatalf("Scale mutated the original plan")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{WrongValue, NullValue, Limit, Switch, Duplicate, Delete}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("Kind strings must be unique and non-empty: %q", s)
		}
		seen[s] = true
	}
}

func TestLogHelpers(t *testing.T) {
	log := &Log{Events: []Event{
		{RecordID: 1, Kind: WrongValue, Attr: 0},
		{RecordID: 1, Kind: NullValue, Attr: 2},
		{RecordID: 2, Kind: Duplicate, Attr: -1, DupOfID: 1},
		{RecordID: 3, Kind: Delete, Attr: -1},
	}}
	if got := log.CorruptedIDs(); !got[1] || !got[2] || got[3] {
		t.Fatalf("CorruptedIDs = %v", got)
	}
	if got := log.DeletedIDs(); !got[3] || len(got) != 1 {
		t.Fatalf("DeletedIDs = %v", got)
	}
	cells := log.CellEvents()
	if len(cells[1]) != 2 || len(cells[2]) != 0 {
		t.Fatalf("CellEvents = %v", cells)
	}
	counts := log.CountByKind()
	if counts[WrongValue] != 1 || counts[Delete] != 1 {
		t.Fatalf("CountByKind = %v", counts)
	}
}

// TestLogRecordLevelGroundTruth is the regression test for the record-
// level half of the ground truth: CellEvents intentionally drops
// Duplicate/Delete events, so DuplicateGroups and DeletedIDs must expose
// them — otherwise no sweep could ever score a duplicate detector.
func TestLogRecordLevelGroundTruth(t *testing.T) {
	cases := []struct {
		name       string
		events     []Event
		wantGroups map[int64][]int64
		wantDel    map[int64]bool
		wantCellBy map[int64]int // record ID -> cell-event count
	}{
		{
			name:       "empty log",
			wantGroups: map[int64][]int64{},
			wantDel:    map[int64]bool{},
			wantCellBy: map[int64]int{},
		},
		{
			name: "two copies of one source, in order",
			events: []Event{
				{RecordID: 100, Kind: Duplicate, Attr: -1, DupOfID: 7},
				{RecordID: 101, Kind: Duplicate, Attr: -1, DupOfID: 7},
			},
			wantGroups: map[int64][]int64{7: {100, 101}},
			wantDel:    map[int64]bool{},
			wantCellBy: map[int64]int{},
		},
		{
			name: "duplicate, fuzz on the copy, source deleted",
			events: []Event{
				{RecordID: 100, Kind: Duplicate, Attr: -1, DupOfID: 7},
				{RecordID: 100, Kind: WrongValue, Attr: 2},
				{RecordID: 7, Kind: Delete, Attr: -1},
			},
			wantGroups: map[int64][]int64{7: {100}},
			wantDel:    map[int64]bool{7: true},
			wantCellBy: map[int64]int{100: 1},
		},
		{
			name: "mixed kinds route to their own accessor",
			events: []Event{
				{RecordID: 1, Kind: WrongValue, Attr: 0},
				{RecordID: 2, Kind: NullValue, Attr: 1},
				{RecordID: 3, Kind: Delete, Attr: -1},
				{RecordID: 200, Kind: Duplicate, Attr: -1, DupOfID: 2},
				{RecordID: 2, Kind: Limit, Attr: 2},
			},
			wantGroups: map[int64][]int64{2: {200}},
			wantDel:    map[int64]bool{3: true},
			wantCellBy: map[int64]int{1: 1, 2: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := &Log{Events: tc.events}
			if got := l.DuplicateGroups(); !reflect.DeepEqual(got, tc.wantGroups) {
				t.Errorf("DuplicateGroups = %v, want %v", got, tc.wantGroups)
			}
			if got := l.DeletedIDs(); !reflect.DeepEqual(got, tc.wantDel) {
				t.Errorf("DeletedIDs = %v, want %v", got, tc.wantDel)
			}
			cells := l.CellEvents()
			gotCellBy := make(map[int64]int)
			for id, evs := range cells {
				gotCellBy[id] = len(evs)
			}
			if !reflect.DeepEqual(gotCellBy, tc.wantCellBy) {
				t.Errorf("CellEvents counts = %v, want %v", gotCellBy, tc.wantCellBy)
			}
		})
	}
}

// TestDuplicateFuzz: fuzzed copies differ from their source in exactly
// one logged attribute, and a fuzz-free plan's rng stream (and therefore
// its entire dirty table and log) is unchanged by the feature existing.
func TestDuplicateFuzz(t *testing.T) {
	clean := cleanTable(t, 400)
	plan := Plan{DuplicateProb: 0.2, DuplicateFuzz: 1.0}
	dirty, log := Run(clean, plan, rand.New(rand.NewSource(77)))

	groups := log.DuplicateGroups()
	if len(groups) == 0 {
		t.Fatal("no duplicates produced at p=0.2 over 400 rows")
	}
	idx := dirty.RowIndexByID()
	fuzzed := 0
	for srcID, copies := range groups {
		for _, copyID := range copies {
			src, cp := idx[srcID], idx[copyID]
			diff := 0
			for c := 0; c < dirty.NumCols(); c++ {
				if !dirty.Get(src, c).Equal(dirty.Get(cp, c)) {
					diff++
				}
			}
			if diff > 1 {
				t.Fatalf("copy %d differs from source %d in %d attributes, want at most 1", copyID, srcID, diff)
			}
			if diff == 1 {
				fuzzed++
			}
		}
	}
	if fuzzed == 0 {
		t.Fatal("DuplicateFuzz=1.0 produced no near duplicates")
	}
	// Every fuzz is logged as a WrongValue on the copy.
	cellEvents := log.CellEvents()
	if got := len(cellEvents); got != fuzzed {
		t.Fatalf("%d fuzzed copies but %d cell-event records", fuzzed, got)
	}

	// Scale must carry the fuzz probability through unscaled.
	if s := plan.Scale(0.5); s.DuplicateFuzz != 1.0 {
		t.Fatalf("Scale changed DuplicateFuzz to %v", s.DuplicateFuzz)
	}

	// rng-stream stability: a fuzz-free plan produces the identical run
	// it did before the feature existed (same seed, same draws).
	base := Plan{DuplicateProb: 0.2}
	d1, l1 := Run(clean, base, rand.New(rand.NewSource(9)))
	d2, l2 := Run(clean, base, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(l1.Events, l2.Events) || d1.NumRows() != d2.NumRows() {
		t.Fatal("fuzz-free runs with one seed diverged")
	}
}
