package pollute

import (
	"math/rand"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// WrongValuePolluter assigns a new value to one attribute "according to a
// probability distribution defined in the same way as in section 4.1.4"
// (§4.2). Attribute choice is uniform over Attrs (or the whole schema when
// Attrs is empty); the replacement value is drawn from the configured
// distribution (falling back to uniform over the attribute's domain) and is
// guaranteed to differ from the old value.
type WrongValuePolluter struct {
	// Attrs restricts the columns this polluter may hit (empty = all).
	Attrs []int
	// Cat supplies replacement distributions for nominal attributes.
	Cat map[int]*stats.Categorical
	// Num supplies replacement distributions for numeric/date attributes.
	Num map[int]stats.Dist
}

// Name implements CellPolluter.
func (p *WrongValuePolluter) Name() string { return "wrong-value" }

// Corrupt implements CellPolluter.
func (p *WrongValuePolluter) Corrupt(t *dataset.Table, r int, rng *rand.Rand) []Event {
	attr := pickAttr(t, p.Attrs, rng)
	a := t.Schema().Attr(attr)
	old := t.Get(r, attr)
	var nv dataset.Value
	for tries := 0; tries < 16; tries++ {
		if a.Type == dataset.NominalType {
			if c, ok := p.Cat[attr]; ok {
				nv = dataset.Nom(c.Sample(rng))
			} else {
				nv = dataset.Nom(rng.Intn(a.NumValues()))
			}
		} else {
			if d, ok := p.Num[attr]; ok {
				nv = dataset.Num(stats.Truncated{D: d, Lo: a.Min, Hi: a.Max}.Sample(rng))
			} else {
				nv = dataset.Num(a.Min + rng.Float64()*(a.Max-a.Min))
			}
		}
		if !nv.Equal(old) {
			t.Set(r, attr, nv)
			return []Event{{RecordID: t.ID(r), Kind: WrongValue, Attr: attr, OtherAttr: -1, Before: old, After: nv}}
		}
	}
	// Degenerate domain (single value): nothing to corrupt.
	return nil
}

// NullValuePolluter replaces the value of an attribute by a null value.
type NullValuePolluter struct {
	Attrs []int
}

// Name implements CellPolluter.
func (p *NullValuePolluter) Name() string { return "null-value" }

// Corrupt implements CellPolluter.
func (p *NullValuePolluter) Corrupt(t *dataset.Table, r int, rng *rand.Rand) []Event {
	attr := pickAttr(t, p.Attrs, rng)
	old := t.Get(r, attr)
	if old.IsNull() {
		return nil // already null: no corruption happened
	}
	t.Set(r, attr, dataset.Null())
	return []Event{{RecordID: t.ID(r), Kind: NullValue, Attr: attr, OtherAttr: -1, Before: old, After: dataset.Null()}}
}

// Limiter cuts off a numerical value according to a maximal or minimal
// bound — the truncation glitch of legacy load processes.
type Limiter struct {
	// Attr is the numeric/date column to clamp.
	Attr int
	// Lo and Hi are the clamping bounds.
	Lo, Hi float64
}

// Name implements CellPolluter.
func (p *Limiter) Name() string { return "limiter" }

// Corrupt implements CellPolluter.
func (p *Limiter) Corrupt(t *dataset.Table, r int, rng *rand.Rand) []Event {
	old := t.Get(r, p.Attr)
	if old.IsNull() || !old.IsNumber() {
		return nil
	}
	clamped := stats.Clamp(old.Float(), p.Lo, p.Hi)
	if clamped == old.Float() {
		return nil // value already within the limiter's window
	}
	nv := dataset.Num(clamped)
	t.Set(r, p.Attr, nv)
	return []Event{{RecordID: t.ID(r), Kind: Limit, Attr: p.Attr, OtherAttr: -1, Before: old, After: nv}}
}

// Switcher swaps the values of two attributes — the classic transposed-
// columns mistake. Nominal values are swapped via their domain strings and
// only when each value exists in the other attribute's domain (otherwise
// the swap is not representable and becomes a no-op); numbers always swap.
type Switcher struct {
	AttrA, AttrB int
}

// Name implements CellPolluter.
func (p *Switcher) Name() string { return "switcher" }

// Corrupt implements CellPolluter.
func (p *Switcher) Corrupt(t *dataset.Table, r int, rng *rand.Rand) []Event {
	s := t.Schema()
	aAttr, bAttr := s.Attr(p.AttrA), s.Attr(p.AttrB)
	va, vb := t.Get(r, p.AttrA), t.Get(r, p.AttrB)
	if va.IsNull() && vb.IsNull() {
		return nil
	}
	var na, nb dataset.Value // new values for A and B
	switch {
	case aAttr.Type == dataset.NominalType && bAttr.Type == dataset.NominalType:
		na, nb = crossNominal(aAttr, bAttr, va, vb)
		if na.Equal(va) && nb.Equal(vb) {
			return nil
		}
	case aAttr.IsNumberLike() && bAttr.IsNumberLike():
		na, nb = vb, va
	default:
		return nil // incompatible attribute pair
	}
	if na.Equal(va) && nb.Equal(vb) {
		return nil
	}
	t.Set(r, p.AttrA, na)
	t.Set(r, p.AttrB, nb)
	return []Event{{
		RecordID: t.ID(r), Kind: Switch,
		Attr: p.AttrA, Before: va, After: na,
		OtherAttr: p.AttrB, OtherBefore: vb, OtherAfter: nb,
	}}
}

// crossNominal translates a nominal swap across (possibly different)
// domains; non-translatable halves stay put.
func crossNominal(aAttr, bAttr *dataset.Attribute, va, vb dataset.Value) (na, nb dataset.Value) {
	na, nb = va, vb
	if !vb.IsNull() {
		if idx, ok := aAttr.Index(bAttr.Domain[vb.NomIdx()]); ok {
			na = dataset.Nom(idx)
		}
	} else {
		na = dataset.Null()
	}
	if !va.IsNull() {
		if idx, ok := bAttr.Index(aAttr.Domain[va.NomIdx()]); ok {
			nb = dataset.Nom(idx)
		}
	} else {
		nb = dataset.Null()
	}
	return na, nb
}

// pickAttr selects a column uniformly from attrs (or the full schema).
func pickAttr(t *dataset.Table, attrs []int, rng *rand.Rand) int {
	if len(attrs) == 0 {
		return rng.Intn(t.NumCols())
	}
	return attrs[rng.Intn(len(attrs))]
}
