package evalx

import (
	"fmt"
	"math/rand"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/tdg"
)

// Config describes one full test-environment run (Figure 2): test data
// generation parameters, the pollution plan, and the auditing options.
type Config struct {
	// Seed drives every stochastic stage; identical configs reproduce
	// identical results.
	Seed int64
	// Schema is the target relation.
	Schema *dataset.Schema
	// Rules, when non-nil, are used instead of generating a rule set.
	Rules []tdg.Rule
	// RuleGen parameterizes rule generation when Rules is nil.
	RuleGen tdg.RuleGenParams
	// DataGen parameterizes record generation.
	DataGen tdg.DataGenParams
	// Plan is the pollution configuration.
	Plan pollute.Plan
	// Audit configures structure induction and deviation detection.
	Audit audit.Options
}

// Result captures everything a test-environment run measures.
type Result struct {
	// Confusion is the record-level error-detection matrix (§4.3).
	Confusion Confusion
	// Correction is the before/after correction matrix (§4.3).
	Correction CorrectionMatrix
	// NumRules is the size of the generated rule set.
	NumRules int
	// NumRecords is the clean table size; NumDirty the polluted table size.
	NumRecords, NumDirty int
	// NumCorrupted is the ground-truth number of erroneous records present
	// in the dirty table.
	NumCorrupted int
	// NumSuspicious is the number of records the tool marked.
	NumSuspicious int
	// GenTime/PolluteTime/InduceTime/CheckTime are stage wall times.
	GenTime, PolluteTime, InduceTime, CheckTime time.Duration
	// Breakdown splits detection quality per corruption kind.
	Breakdown []KindBreakdown
}

// Sensitivity is shorthand for the confusion matrix's sensitivity.
func (r *Result) Sensitivity() float64 { return r.Confusion.Sensitivity() }

// Specificity is shorthand for the confusion matrix's specificity.
func (r *Result) Specificity() float64 { return r.Confusion.Specificity() }

// QualityOfCorrection is shorthand for the correction improvement.
func (r *Result) QualityOfCorrection() float64 { return r.Correction.Improvement() }

// Run executes generate → pollute → induce → check → evaluate.
//
// Following the paper's test setup (§6.1 audits the very table it
// induced from; §8 demands the tool "work ... when there is only a single
// database which serves both for training and data audit"), structure
// induction runs on the *polluted* table.
func Run(cfg Config) (*Result, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("evalx: config needs a schema")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	// 1. Rule set.
	rules := cfg.Rules
	if rules == nil {
		var err error
		rules, err = tdg.GenerateRuleSet(cfg.Schema, cfg.RuleGen, rng)
		if err != nil {
			return nil, fmt.Errorf("evalx: rule generation: %w", err)
		}
	}
	res.NumRules = len(rules)

	// 2. Artificial clean data.
	t0 := time.Now()
	clean, err := tdg.Generate(cfg.Schema, rules, cfg.DataGen, rng)
	if err != nil {
		return nil, fmt.Errorf("evalx: data generation: %w", err)
	}
	res.GenTime = time.Since(t0)
	res.NumRecords = clean.NumRows()

	// 3. Controlled corruption.
	t0 = time.Now()
	dirty, log := pollute.Run(clean, cfg.Plan, rng)
	res.PolluteTime = time.Since(t0)
	res.NumDirty = dirty.NumRows()

	// 4. Structure induction + deviation detection.
	model, err := audit.Induce(dirty, cfg.Audit)
	if err != nil {
		return nil, fmt.Errorf("evalx: induction: %w", err)
	}
	res.InduceTime = model.InduceTime
	auditRes := model.AuditTable(dirty)
	res.CheckTime = auditRes.CheckTime
	res.NumSuspicious = auditRes.NumSuspicious()

	// 5. Evaluation against the logged ground truth.
	res.Confusion = Evaluate(dirty, log, auditRes)
	res.NumCorrupted = res.Confusion.TP + res.Confusion.FN
	res.Breakdown = EvaluateByKind(log, auditRes)
	corrected := model.ApplyCorrections(dirty, auditRes)
	res.Correction = EvaluateCorrection(clean, dirty, corrected)
	return res, nil
}

// Evaluate joins the tool's verdicts with the pollution log's ground truth
// into the §4.3 confusion matrix. Records deleted by the duplicator are not
// part of the dirty table and therefore outside the matrix (a record-
// marking tool cannot flag an absent record).
func Evaluate(dirty *dataset.Table, log *pollute.Log, res *audit.Result) Confusion {
	corrupted := log.CorruptedIDs()
	var c Confusion
	for _, rep := range res.Reports {
		bad := corrupted[rep.ID]
		switch {
		case bad && rep.Suspicious:
			c.TP++
		case bad && !rep.Suspicious:
			c.FN++
		case !bad && rep.Suspicious:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// EvaluateCorrection fills the §4.3 before/after matrix by comparing each
// dirty record and its corrected version against the clean original.
// Records without a 1:1 clean counterpart (spurious duplicates) are skipped
// — they have no "correct" state to compare against.
func EvaluateCorrection(clean, dirty, corrected *dataset.Table) CorrectionMatrix {
	cleanIdx := clean.RowIndexByID()
	var m CorrectionMatrix
	for r := 0; r < dirty.NumRows(); r++ {
		cr, ok := cleanIdx[dirty.ID(r)]
		if !ok {
			continue
		}
		before := rowsEqual(clean, cr, dirty, r)
		after := rowsEqual(clean, cr, corrected, r)
		switch {
		case before && after:
			m.A++
		case before && !after:
			m.B++
		case !before && after:
			m.C++
		default:
			m.D++
		}
	}
	return m
}

func rowsEqual(a *dataset.Table, ra int, b *dataset.Table, rb int) bool {
	for c := 0; c < a.NumCols(); c++ {
		if !a.Get(ra, c).Equal(b.Get(rb, c)) {
			return false
		}
	}
	return true
}
