package evalx

import (
	"testing"

	"dataaudit/internal/dedup"
	"dataaudit/internal/pollute"
)

// TestDedupSweepExactFloor commits the headline floor: exact duplicates
// (no fuzz) are detected with sensitivity 1.0 — the full-row-hash pass is
// collision-checked, so every surviving planted copy lands in a group —
// and specificity at least 0.99 at both 1% and 5% duplicator probability.
func TestDedupSweepExactFloor(t *testing.T) {
	points, err := DedupSweep(smallConfig(2003), []float64{0.01, 0.05}, 0, 2, dedup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Planted == 0 {
			t.Fatalf("x=%g: no duplicates planted; sweep is vacuous", p.X)
		}
		if p.Sensitivity != 1.0 {
			t.Errorf("x=%g: exact-duplicate sensitivity = %.4f, floor is 1.0", p.X, p.Sensitivity)
		}
		if p.Specificity < 0.99 {
			t.Errorf("x=%g: specificity = %.4f, floor is 0.99", p.X, p.Specificity)
		}
	}
}

// TestDedupSweepNearFloor commits the near-duplicate floor: with every
// planted copy perturbed in one attribute (fuzz = 1), blocking plus
// per-attribute similarity must recover at least 90% of them at 5%
// pollution without losing specificity.
func TestDedupSweepNearFloor(t *testing.T) {
	points, err := DedupSweep(smallConfig(2003), []float64{0.05}, 1.0, 2, dedup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Planted == 0 {
		t.Fatal("no duplicates planted; sweep is vacuous")
	}
	if p.Sensitivity < 0.9 {
		t.Errorf("near-duplicate sensitivity = %.4f, floor is 0.9", p.Sensitivity)
	}
	if p.Specificity < 0.99 {
		t.Errorf("specificity = %.4f, floor is 0.99", p.Specificity)
	}
}

// TestCompletenessSweepExact commits the completeness floor: the measured
// per-attribute null counts equal the log replay bit for bit at every
// pollution level, and drift flags at a 0.2% delta match the ground truth
// perfectly when pollution is far from the threshold.
func TestCompletenessSweepExact(t *testing.T) {
	points, err := CompletenessSweep(smallConfig(2003), []float64{0, 1, 5}, 0.002, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.MaxCountError != 0 {
			t.Errorf("factor %g: measured null counts deviate from replay by %d", p.X, p.MaxCountError)
		}
		if s := p.Confusion.Sensitivity(); p.Confusion.TP+p.Confusion.FN > 0 && s != 1.0 {
			t.Errorf("factor %g: completeness-drift sensitivity = %.4f", p.X, s)
		}
		if s := p.Confusion.Specificity(); p.Confusion.FP+p.Confusion.TN > 0 && s != 1.0 {
			t.Errorf("factor %g: completeness-drift specificity = %.4f", p.X, s)
		}
	}
	// The factor-5 point must actually exercise the positive side.
	last := points[len(points)-1]
	if last.Confusion.TP == 0 {
		t.Error("factor 5 produced no drifted attributes; floor is vacuous")
	}
}

// TestReplayNullCounts pins the replay on a hand-checkable run: the
// replayed counts must match a direct scan of the dirty table.
func TestReplayNullCounts(t *testing.T) {
	cfg := smallConfig(7)
	cfg.Plan.DuplicateProb = 0.03
	cfg.Plan.DeleteProb = 0.02
	cfg.Plan.DuplicateFuzz = 0.5
	clean, dirty, log, err := generateDirty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed := ReplayNullCounts(clean, log)
	for c := 0; c < dirty.Schema().Len(); c++ {
		var scan int64
		for r := 0; r < dirty.NumRows(); r++ {
			if dirty.Get(r, c).IsNull() {
				scan++
			}
		}
		if replayed[c] != scan {
			t.Errorf("attr %d: replay says %d nulls, table has %d", c, replayed[c], scan)
		}
	}
}

// TestDuplicatePositivesSurvivorship pins the ground-truth derivation on
// a deleted-source corner: when a source dies but two copies survive, one
// surviving copy is canonical and only the other is a positive.
func TestDuplicatePositivesSurvivorship(t *testing.T) {
	cfg := smallConfig(11)
	cfg.DataGen.NumRecords = 400
	clean, _, _, err := generateDirty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirty := clean.Clone()
	log := &pollute.Log{}
	srcID := dirty.ID(0)
	id1 := dirty.DuplicateRow(0)
	id2 := dirty.DuplicateRow(0)
	log.Events = append(log.Events,
		pollute.Event{RecordID: id1, Kind: pollute.Duplicate, Attr: -1, OtherAttr: -1, DupOfID: srcID},
		pollute.Event{RecordID: id2, Kind: pollute.Duplicate, Attr: -1, OtherAttr: -1, DupOfID: srcID},
		pollute.Event{RecordID: srcID, Kind: pollute.Delete, Attr: -1, OtherAttr: -1},
	)
	dirty.DeleteRow(0)
	pos := duplicatePositives(dirty, log)
	if len(pos) != 1 || !pos[id2] {
		t.Fatalf("positives = %v, want exactly {%d}", pos, id2)
	}
}
