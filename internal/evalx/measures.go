// Package evalx implements the paper's test environment (§4, Figure 2):
// it "generates artificial data that simulate structural characteristics of
// the application database, pollutes this data in a controlled and logged
// procedure, runs the data auditing tool and evaluates its performance by
// comparing the deviations of the dirty from the clean database with the
// detected errors".
package evalx

import (
	"fmt"
	"strings"
)

// Confusion is the §4.3 record-level 2x2 matrix:
//
//	                     tool's opinion
//	                  incorrect   correct
//	incorrect data  | TP        | FN |
//	correct data    | FP        | TN |
type Confusion struct {
	TP, FN, FP, TN int
}

// Sensitivity is TP/(TP+FN): "the ratio of the truly found errors by the
// number of records that have been corrupted". Chosen over recall's twin
// precision because it is independent of the prevalence.
func (c Confusion) Sensitivity() float64 { return ratio(c.TP, c.TP+c.FN) }

// Specificity is TN/(TN+FP): "how many of the error free records have been
// marked as such".
func (c Confusion) Specificity() float64 { return ratio(c.TN, c.TN+c.FP) }

// Precision is TP/(TP+FP) — reported alongside because the IR literature
// the paper cites uses it.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Prevalence is the total ratio of errors in the table.
func (c Confusion) Prevalence() float64 { return ratio(c.TP+c.FN, c.Total()) }

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Total()) }

// Total is the number of records evaluated.
func (c Confusion) Total() int { return c.TP + c.FN + c.FP + c.TN }

// String renders the matrix like the paper's table.
func (c Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "                 tool: incorrect  tool: correct\n")
	fmt.Fprintf(&b, "incorrect data   %15d %14d\n", c.TP, c.FN)
	fmt.Fprintf(&b, "correct data     %15d %14d\n", c.FP, c.TN)
	fmt.Fprintf(&b, "sensitivity=%.4f specificity=%.4f precision=%.4f",
		c.Sensitivity(), c.Specificity(), c.Precision())
	return b.String()
}

// CorrectionMatrix is the §4.3 before/after-correction 2x2 matrix:
//
//	                      after correction
//	                    correct   incorrect
//	before correct    | A       | B |
//	before incorrect  | C       | D |
type CorrectionMatrix struct {
	A, B, C, D int
}

// Improvement is the paper's quality-of-correction measure:
// ((c+d)−(b+d))/(c+d) = (c−b)/(c+d) — the relative reduction of the number
// of erroneous records achieved by applying the proposed corrections.
func (m CorrectionMatrix) Improvement() float64 {
	if m.C+m.D == 0 {
		return 0
	}
	return float64(m.C-m.B) / float64(m.C+m.D)
}

// String renders the matrix.
func (m CorrectionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "                   after: correct  after: incorrect\n")
	fmt.Fprintf(&b, "before correct     %14d %17d\n", m.A, m.B)
	fmt.Fprintf(&b, "before incorrect   %14d %17d\n", m.C, m.D)
	fmt.Fprintf(&b, "quality of correction=%.4f", m.Improvement())
	return b.String()
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// FormatTable renders an aligned text table for experiment reports.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
