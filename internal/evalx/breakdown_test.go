package evalx

import (
	"strings"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/pollute"
)

func TestEvaluateByKind(t *testing.T) {
	log := &pollute.Log{Events: []pollute.Event{
		{RecordID: 1, Kind: pollute.WrongValue, Attr: 0},
		{RecordID: 2, Kind: pollute.WrongValue, Attr: 1},
		{RecordID: 2, Kind: pollute.NullValue, Attr: 0}, // doubly corrupted
		{RecordID: 3, Kind: pollute.Duplicate, Attr: -1, DupOfID: 1},
		{RecordID: 4, Kind: pollute.Delete, Attr: -1}, // must be ignored
	}}
	res := &audit.Result{Reports: []audit.RecordReport{
		{ID: 0, Suspicious: false},
		{ID: 1, Suspicious: true},
		{ID: 2, Suspicious: true},
		{ID: 3, Suspicious: false},
	}}
	got := EvaluateByKind(log, res)
	byKind := map[pollute.Kind]KindBreakdown{}
	for _, b := range got {
		byKind[b.Kind] = b
	}
	if b := byKind[pollute.WrongValue]; b.Total != 2 || b.Detected != 2 {
		t.Fatalf("wrong-value breakdown: %+v", b)
	}
	if b := byKind[pollute.NullValue]; b.Total != 1 || b.Detected != 1 {
		t.Fatalf("null breakdown: %+v", b)
	}
	if b := byKind[pollute.Duplicate]; b.Total != 1 || b.Detected != 0 || b.Rate() != 0 {
		t.Fatalf("duplicate breakdown: %+v", b)
	}
	if _, present := byKind[pollute.Delete]; present {
		t.Fatalf("deleted records must not appear in the breakdown")
	}
	out := RenderBreakdown(got)
	if !strings.Contains(out, "wrong-value") || !strings.Contains(out, "sensitivity") {
		t.Fatalf("RenderBreakdown:\n%s", out)
	}
}

func TestKindBreakdownIntegration(t *testing.T) {
	// End-to-end: duplicates of clean records must show ~zero per-kind
	// sensitivity while wrong values dominate detections.
	cfg := BaseConfig(31)
	cfg.DataGen.NumRecords = 2500
	cfg.RuleGen.NumRules = 40
	// Re-run the pipeline manually so we keep the intermediate artifacts.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // Run is exercised elsewhere; this test guards the breakdown path.
}
