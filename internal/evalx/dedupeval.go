package evalx

import (
	"fmt"
	"math/rand"
	"sort"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/dedup"
	"dataaudit/internal/pollute"
	"dataaudit/internal/tdg"
)

// Ground-truth harness for the record-level quality dimensions. The cell
// polluters are audited through the classifier pipeline (Run/Evaluate);
// the duplicator's Duplicate/Delete events and the null-value polluter's
// completeness impact are audited here, against internal/dedup and the
// audit dimension trackers, with the same sensitivity/specificity
// vocabulary as the paper's Figures 3–5.

// generateDirty runs stages 1–3 of the pipeline: rule set, clean data,
// controlled pollution.
func generateDirty(cfg Config) (clean, dirty *dataset.Table, log *pollute.Log, err error) {
	if cfg.Schema == nil {
		return nil, nil, nil, fmt.Errorf("evalx: config needs a schema")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rules := cfg.Rules
	if rules == nil {
		rules, err = tdg.GenerateRuleSet(cfg.Schema, cfg.RuleGen, rng)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("evalx: rule generation: %w", err)
		}
	}
	clean, err = tdg.Generate(cfg.Schema, rules, cfg.DataGen, rng)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("evalx: data generation: %w", err)
	}
	dirty, log = pollute.Run(clean, cfg.Plan, rng)
	return clean, dirty, log, nil
}

// duplicatePositives derives the record-level duplicate ground truth from
// the pollution log: for every duplicated source, the surviving members of
// its copy group (source + copies, minus deletions) beyond the first — in
// dirty-table row order, matching the detector's lowest-row-canonical
// convention. A group whose source and copies collapsed to a single
// surviving record contributes nothing: one remaining instance is not a
// duplicate.
func duplicatePositives(dirty *dataset.Table, log *pollute.Log) map[int64]bool {
	rowOf := dirty.RowIndexByID()
	deleted := log.DeletedIDs()
	positives := make(map[int64]bool)
	for src, copies := range log.DuplicateGroups() {
		var rows []int
		for _, id := range append([]int64{src}, copies...) {
			if deleted[id] {
				continue
			}
			if r, ok := rowOf[id]; ok {
				rows = append(rows, r)
			}
		}
		if len(rows) < 2 {
			continue
		}
		sort.Ints(rows)
		for _, r := range rows[1:] {
			positives[dirty.ID(r)] = true
		}
	}
	return positives
}

// EvaluateDedup joins a detector result with the pollution log's
// record-level ground truth: a row counts as flagged when it is a
// non-canonical member of some duplicate group.
func EvaluateDedup(dirty *dataset.Table, log *pollute.Log, res *dedup.Result) Confusion {
	positives := duplicatePositives(dirty, log)
	flagged := make(map[int64]bool)
	for _, g := range res.Groups {
		for _, id := range g.IDs[1:] {
			flagged[id] = true
		}
	}
	var c Confusion
	for r := 0; r < dirty.NumRows(); r++ {
		id := dirty.ID(r)
		switch {
		case positives[id] && flagged[id]:
			c.TP++
		case positives[id]:
			c.FN++
		case flagged[id]:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// DedupPoint is one duplicate-detection sweep measurement.
type DedupPoint struct {
	// X is the duplicator activation probability.
	X           float64
	Sensitivity float64
	Specificity float64
	// Groups and DuplicateRows average the detector's counts.
	Groups, DuplicateRows int
	// Planted averages the ground-truth positive count.
	Planted int
}

// DedupSweep measures duplicate detection per pollution level: for each
// duplicator probability the pipeline generates, pollutes (fuzz turns
// exact copies into near duplicates), detects, and scores against the
// log. The cell polluters of the base plan stay active, so copies are
// copies of already-polluted records — the realistic case.
func DedupSweep(base Config, probs []float64, fuzz float64, reps int, opts dedup.Options) ([]DedupPoint, error) {
	if reps < 1 {
		reps = 1
	}
	var out []DedupPoint
	for _, prob := range probs {
		p := DedupPoint{X: prob}
		for rep := 0; rep < reps; rep++ {
			cfg := base
			cfg.Seed = base.Seed + int64(rep)*7919
			cfg.Plan.DuplicateProb = prob
			cfg.Plan.DuplicateFuzz = fuzz
			_, dirty, log, err := generateDirty(cfg)
			if err != nil {
				return out, fmt.Errorf("evalx: dedup sweep x=%g rep %d: %w", prob, rep, err)
			}
			res, err := dedup.Detect(dirty, opts)
			if err != nil {
				return out, fmt.Errorf("evalx: dedup sweep x=%g rep %d: %w", prob, rep, err)
			}
			c := EvaluateDedup(dirty, log, res)
			p.Sensitivity += c.Sensitivity()
			p.Specificity += c.Specificity()
			p.Groups += len(res.Groups)
			p.DuplicateRows += res.DuplicateRows
			p.Planted += c.TP + c.FN
		}
		p.Sensitivity /= float64(reps)
		p.Specificity /= float64(reps)
		p.Groups /= reps
		p.DuplicateRows /= reps
		p.Planted /= reps
		out = append(out, p)
	}
	return out, nil
}

// RenderDedupPoints formats a duplicate sweep as an aligned table.
func RenderDedupPoints(points []DedupPoint) string {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.4f", p.Sensitivity),
			fmt.Sprintf("%.4f", p.Specificity),
			fmt.Sprintf("%d", p.Planted),
			fmt.Sprintf("%d", p.Groups),
			fmt.Sprintf("%d", p.DuplicateRows),
		}
	}
	return FormatTable(
		[]string{"dup-prob", "sensitivity", "specificity", "planted", "groups", "dup-rows"},
		rows,
	)
}

// ReplayNullCounts computes the per-attribute null counts of the dirty
// table purely from the clean table and the pollution log — an event
// replay that never scans the dirty table. Agreement with the audit's
// measured dimensions is therefore an end-to-end check of the
// completeness instrumentation against the ground truth.
func ReplayNullCounts(clean *dataset.Table, log *pollute.Log) []int64 {
	width := clean.Schema().Len()
	nulls := make(map[int64][]bool, clean.NumRows())
	for r := 0; r < clean.NumRows(); r++ {
		row := make([]bool, width)
		for c := 0; c < width; c++ {
			row[c] = clean.Get(r, c).IsNull()
		}
		nulls[clean.ID(r)] = row
	}
	for _, e := range log.Events {
		switch e.Kind {
		case pollute.Duplicate:
			src := nulls[e.DupOfID]
			nulls[e.RecordID] = append([]bool(nil), src...)
		case pollute.Delete:
			delete(nulls, e.RecordID)
		default:
			row := nulls[e.RecordID]
			row[e.Attr] = e.After.IsNull()
			if e.OtherAttr >= 0 {
				row[e.OtherAttr] = e.OtherAfter.IsNull()
			}
		}
	}
	counts := make([]int64, width)
	for _, row := range nulls {
		for c, isNull := range row {
			if isNull {
				counts[c]++
			}
		}
	}
	return counts
}

// CompletenessPoint is one completeness sweep measurement.
type CompletenessPoint struct {
	// X is the pollution factor applied to the plan.
	X float64
	// MaxCountError is the largest |measured − replayed| per-attribute
	// null-count difference — zero when the instrumentation is exact.
	MaxCountError int64
	// Confusion scores attribute-level completeness-drift flags (null
	// rate above clean baseline by more than the delta) from the measured
	// dimensions against flags derived from the log replay.
	Confusion Confusion
}

// CompletenessSweep audits the completeness dimension against the
// pollution log: per pollution factor it compares the measured
// per-attribute null counts (audit.TableDims — the same popcount path the
// batch, stream and shard audits use) with an independent event replay,
// and scores drift flags at the given null-rate delta.
func CompletenessSweep(base Config, factors []float64, delta float64, reps int) ([]CompletenessPoint, error) {
	if reps < 1 {
		reps = 1
	}
	var out []CompletenessPoint
	for _, factor := range factors {
		p := CompletenessPoint{X: factor}
		for rep := 0; rep < reps; rep++ {
			cfg := base
			cfg.Seed = base.Seed + int64(rep)*7919
			cfg.Plan = cfg.Plan.Scale(factor)
			clean, dirty, log, err := generateDirty(cfg)
			if err != nil {
				return out, fmt.Errorf("evalx: completeness sweep x=%g rep %d: %w", factor, rep, err)
			}
			cleanDims := audit.TableDims(clean)
			measured := audit.TableDims(dirty)
			replayed := ReplayNullCounts(clean, log)
			rows := float64(dirty.NumRows())
			for c := range measured {
				diff := measured[c].Nulls - replayed[c]
				if diff < 0 {
					diff = -diff
				}
				if diff > p.MaxCountError {
					p.MaxCountError = diff
				}
				baseline := cleanDims[c].NullRate()
				measuredDrift := measured[c].NullRate()-baseline > delta
				truthDrift := float64(replayed[c])/rows-baseline > delta
				switch {
				case truthDrift && measuredDrift:
					p.Confusion.TP++
				case truthDrift:
					p.Confusion.FN++
				case measuredDrift:
					p.Confusion.FP++
				default:
					p.Confusion.TN++
				}
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderCompletenessPoints formats a completeness sweep as an aligned
// table.
func RenderCompletenessPoints(points []CompletenessPoint) string {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%d", p.MaxCountError),
			fmt.Sprintf("%.4f", p.Confusion.Sensitivity()),
			fmt.Sprintf("%.4f", p.Confusion.Specificity()),
			fmt.Sprintf("%d", p.Confusion.TP+p.Confusion.FN),
		}
	}
	return FormatTable(
		[]string{"factor", "max-count-err", "sensitivity", "specificity", "drifted"},
		rows,
	)
}
