package evalx

import (
	"math"
	"strings"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/tdg"
)

func TestConfusionMeasures(t *testing.T) {
	c := Confusion{TP: 30, FN: 70, FP: 10, TN: 890}
	if got := c.Sensitivity(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("sensitivity = %g", got)
	}
	if got := c.Specificity(); math.Abs(got-890.0/900.0) > 1e-12 {
		t.Fatalf("specificity = %g", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("precision = %g", got)
	}
	if got := c.Prevalence(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("prevalence = %g", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.92) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if c.Total() != 1000 {
		t.Fatalf("total = %d", c.Total())
	}
	if (Confusion{}).Sensitivity() != 0 {
		t.Fatalf("empty matrix must not divide by zero")
	}
	if !strings.Contains(c.String(), "sensitivity=0.3000") {
		t.Fatalf("String: %s", c.String())
	}
}

func TestCorrectionMatrix(t *testing.T) {
	// 40 errors before; 25 corrected, 15 remain, 5 fresh errors introduced.
	m := CorrectionMatrix{A: 955, B: 5, C: 25, D: 15}
	want := (25.0 - 5.0) / 40.0
	if got := m.Improvement(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("improvement = %g, want %g", got, want)
	}
	if (CorrectionMatrix{A: 10}).Improvement() != 0 {
		t.Fatalf("no errors before correction must yield 0")
	}
	// Degradation is negative.
	if (CorrectionMatrix{B: 10, C: 1, D: 9}).Improvement() >= 0 {
		t.Fatalf("corrections that break records must score negative")
	}
	if !strings.Contains(m.String(), "quality of correction") {
		t.Fatalf("String: %s", m.String())
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"x", "value"}, [][]string{{"1", "alpha"}, {"22", "b"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "x ") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header: %q", lines[0])
	}
}

// smallConfig is a scaled-down base configuration for fast pipeline tests.
func smallConfig(seed int64) Config {
	cfg := BaseConfig(seed)
	cfg.RuleGen.NumRules = 20
	cfg.DataGen.NumRecords = 1500
	return cfg
}

func TestPipelineEndToEnd(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRules != 20 {
		t.Fatalf("rules = %d", res.NumRules)
	}
	if res.NumRecords != 1500 {
		t.Fatalf("records = %d", res.NumRecords)
	}
	if res.Confusion.Total() != res.NumDirty {
		t.Fatalf("confusion covers %d of %d dirty records", res.Confusion.Total(), res.NumDirty)
	}
	if res.NumCorrupted == 0 {
		t.Fatalf("pollution produced no ground-truth errors")
	}
	s := res.Specificity()
	if s < 0.95 {
		t.Fatalf("specificity collapsed: %g", s)
	}
	if res.GenTime <= 0 || res.InduceTime <= 0 {
		t.Fatalf("stage timings missing")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	a, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Confusion != b.Confusion || a.Correction != b.Correction {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a.Confusion, b.Confusion)
	}
	c, err := Run(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Confusion == c.Confusion {
		t.Fatalf("different seeds produced identical confusion matrices (suspicious)")
	}
}

func TestEvaluateJoinsOnIDs(t *testing.T) {
	// Hand-built scenario: 4 records, record 1 corrupted+flagged (TP),
	// record 2 corrupted+missed (FN), record 3 clean+flagged (FP),
	// record 0 clean+unflagged (TN).
	schema := dataset.MustSchema(dataset.NewNominal("a", "x", "y"))
	dirty := dataset.NewTable(schema)
	for i := 0; i < 4; i++ {
		dirty.AppendRow([]dataset.Value{dataset.Nom(0)})
	}
	log := &pollute.Log{Events: []pollute.Event{
		{RecordID: 1, Kind: pollute.WrongValue, Attr: 0},
		{RecordID: 2, Kind: pollute.NullValue, Attr: 0},
	}}
	res := &audit.Result{Reports: []audit.RecordReport{
		{Row: 0, ID: 0, Suspicious: false},
		{Row: 1, ID: 1, Suspicious: true},
		{Row: 2, ID: 2, Suspicious: false},
		{Row: 3, ID: 3, Suspicious: true},
	}}
	c := Evaluate(dirty, log, res)
	want := Confusion{TP: 1, FN: 1, FP: 1, TN: 1}
	if c != want {
		t.Fatalf("confusion = %+v, want %+v", c, want)
	}
}

func TestEvaluateCorrectionMatrix(t *testing.T) {
	schema := dataset.MustSchema(dataset.NewNominal("a", "x", "y", "z"))
	clean := dataset.NewTable(schema)
	for i := 0; i < 4; i++ {
		clean.AppendRow([]dataset.Value{dataset.Nom(0)})
	}
	dirty := clean.Clone()
	dirty.Set(1, 0, dataset.Nom(1)) // corrupted, will be fixed
	dirty.Set(2, 0, dataset.Nom(1)) // corrupted, stays wrong
	corrected := dirty.Clone()
	corrected.Set(1, 0, dataset.Nom(0)) // fixed
	corrected.Set(2, 0, dataset.Nom(2)) // still wrong
	corrected.Set(3, 0, dataset.Nom(1)) // fresh damage
	m := EvaluateCorrection(clean, dirty, corrected)
	want := CorrectionMatrix{A: 1, B: 1, C: 1, D: 1}
	if m != want {
		t.Fatalf("correction matrix = %+v, want %+v", m, want)
	}
	// A spurious duplicate (no clean counterpart) is skipped.
	dirty.DuplicateRow(0)
	corrected.DuplicateRow(0)
	m2 := EvaluateCorrection(clean, dirty, corrected)
	if m2 != want {
		t.Fatalf("duplicate should not enter the matrix: %+v", m2)
	}
}

func TestSweepModifiesConfig(t *testing.T) {
	base := smallConfig(3)
	points, err := RecordsSweep(base, []float64{400, 800}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].X != 400 || points[1].X != 800 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.Sensitivity < 0 || p.Sensitivity > 1 || p.Specificity < 0 || p.Specificity > 1 {
			t.Fatalf("measures out of range: %+v", p)
		}
	}
	out := RenderPoints("records", points)
	if !strings.Contains(out, "records") || !strings.Contains(out, "sensitivity") {
		t.Fatalf("RenderPoints output:\n%s", out)
	}
}

func TestPollutionSweepScalesPlan(t *testing.T) {
	base := smallConfig(4)
	points, err := PollutionSweep(base, []float64{0.5, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %+v", points)
	}
	if points[1].NumCorrupted <= points[0].NumCorrupted {
		t.Fatalf("higher pollution factor must corrupt more records: %+v", points)
	}
}

func TestRulesSweepChangesRuleCount(t *testing.T) {
	base := smallConfig(5)
	points, err := RulesSweep(base, []float64{5, 15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].NumRules != 5 || points[1].NumRules != 15 {
		t.Fatalf("rule counts: %+v", points)
	}
}

func TestBaseSchemaShape(t *testing.T) {
	s := BaseSchema()
	if s.Len() != 8 {
		t.Fatalf("base schema must have 8 attributes (6 nominal + date + numeric)")
	}
	nominal, date, numeric := 0, 0, 0
	sizes := map[int]bool{}
	for i := 0; i < s.Len(); i++ {
		switch s.Attr(i).Type {
		case dataset.NominalType:
			nominal++
			sizes[s.Attr(i).NumValues()] = true
		case dataset.DateType:
			date++
		case dataset.NumericType:
			numeric++
		}
	}
	if nominal != 6 || date != 1 || numeric != 1 {
		t.Fatalf("attribute mix: %d nominal, %d date, %d numeric", nominal, date, numeric)
	}
	if len(sizes) != 6 {
		t.Fatalf("nominal domain sizes must differ, got %v", sizes)
	}
}

func TestRunRequiresSchema(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatalf("missing schema must fail")
	}
}

func TestRunWithExplicitRules(t *testing.T) {
	schema := BaseSchema()
	rules := []tdg.Rule{
		{
			Premise:    tdg.Atom{Kind: tdg.EqConst, A: 0, Val: dataset.Nom(0)},
			Conclusion: tdg.Atom{Kind: tdg.EqConst, A: 3, Val: dataset.Nom(1)},
		},
	}
	cfg := Config{
		Seed:    11,
		Schema:  schema,
		Rules:   rules,
		DataGen: tdg.DataGenParams{NumRecords: 500},
		Plan:    BasePlan(schema),
		Audit:   audit.Options{MinConfidence: 0.8},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRules != 1 {
		t.Fatalf("explicit rules ignored")
	}
}
