package evalx

import (
	"fmt"
	"math/rand"

	"dataaudit/internal/audit"
	"dataaudit/internal/bayesnet"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/stats"
	"dataaudit/internal/tdg"
)

// BaseSchema is the §6.1 base parameter configuration's relation: "6
// nominal attributes with different domain sizes, 1 date type and 1
// numeric attribute". CAT2/CAT3 share domain values so relational atoms
// between nominal attributes are satisfiable.
func BaseSchema() *dataset.Schema {
	mkDomain := func(prefix string, n int, shared []string) []string {
		out := append([]string(nil), shared...)
		for i := len(out); i < n; i++ {
			out = append(out, fmt.Sprintf("%s%02d", prefix, i))
		}
		return out
	}
	shared := []string{"s01", "s02", "s03"}
	return dataset.MustSchema(
		dataset.NewNominal("CAT1", mkDomain("a", 4, nil)...),
		dataset.NewNominal("CAT2", mkDomain("b", 6, shared)...),
		dataset.NewNominal("CAT3", mkDomain("c", 8, shared)...),
		dataset.NewNominal("CAT4", mkDomain("d", 10, nil)...),
		dataset.NewNominal("CAT5", mkDomain("e", 12, nil)...),
		dataset.NewNominal("CAT6", mkDomain("f", 20, nil)...),
		dataset.NewDate("PROD", dataset.MustParseDate("2000-01-01"), dataset.MustParseDate("2003-12-31")),
		dataset.NewNumeric("KM", 0, 200000),
	)
}

// BaseStart builds the §6.1 start distributions: "one multivariate nominal
// and 5 univariate start distributions of different kinds". The
// multivariate part is a Bayesian network coupling CAT1 → CAT2 → CAT3; the
// univariate ones are a skewed and a uniform categorical, plus normal,
// exponential and uniform continuous distributions.
func BaseStart(schema *dataset.Schema, rng *rand.Rand) tdg.StartDists {
	net := baseNet(schema, rng)
	return tdg.StartDists{
		Net: net,
		Cat: map[int]*stats.Categorical{
			3: stats.ZipfCategorical(schema.Attr(3).NumValues(), 1.0),
			4: stats.UniformCategorical(schema.Attr(4).NumValues()),
			5: stats.ZipfCategorical(schema.Attr(5).NumValues(), 0.5),
		},
		Num: map[int]stats.Dist{
			6: stats.Uniform{Lo: schema.Attr(6).Min, Hi: schema.Attr(6).Max},
			7: stats.Exponential{Rate: 1.0 / 40000, Shift: 0},
		},
	}
}

// baseNet builds a randomly-parameterized (but seeded) three-node network
// CAT1 → CAT2 → CAT3.
func baseNet(schema *dataset.Schema, rng *rand.Rand) *bayesnet.Network {
	randomCPT := func(rows, k int) []*stats.Categorical {
		out := make([]*stats.Categorical, rows)
		for r := range out {
			w := make([]float64, k)
			for i := range w {
				w[i] = 0.2 + rng.Float64() // bounded away from zero
			}
			// Sharpen one preferred value per configuration so the joint
			// distribution has real structure — but keep the conditional
			// maximum well below the flagging regime (deterministic-looking
			// regularities must come from rules, not from the soft start
			// coupling, or legitimate minority combinations flood the
			// false positives).
			w[rng.Intn(k)] += 1.2
			out[r] = stats.MustCategorical(w...)
		}
		return out
	}
	n1 := schema.Attr(0).NumValues()
	n2 := schema.Attr(1).NumValues()
	n3 := schema.Attr(2).NumValues()
	net, err := bayesnet.New(schema, []*bayesnet.Node{
		{Attr: 0, CPT: randomCPT(1, n1)},
		{Attr: 1, Parents: []int{0}, CPT: randomCPT(n1, n2)},
		{Attr: 2, Parents: []int{1}, CPT: randomCPT(n2, n3)},
	})
	if err != nil {
		panic(err) // shapes are correct by construction
	}
	return net
}

// BasePlan is the base pollution configuration: "a variety of pollution
// procedures with different activation probabilities" (§6.1) — all five
// §4.2 polluters.
func BasePlan(schema *dataset.Schema) pollute.Plan {
	return pollute.Plan{
		Cell: []pollute.Configured{
			{Prob: 0.015, P: &pollute.WrongValuePolluter{}},
			{Prob: 0.008, P: &pollute.NullValuePolluter{}},
			{Prob: 0.004, P: &pollute.Limiter{Attr: 7, Lo: 0, Hi: 120000}},
			{Prob: 0.004, P: &pollute.Switcher{AttrA: 1, AttrB: 2}},
		},
		DuplicateProb: 0.002,
		DeleteProb:    0.001,
	}
}

// BaseConfig assembles the full §6.1 base parameter configuration:
// 10 000 records, 100 randomly generated natural rules, minimum error
// confidence 0.8.
func BaseConfig(seed int64) Config {
	schema := BaseSchema()
	startRng := rand.New(rand.NewSource(seed ^ 0x5eed))
	start := BaseStart(schema, startRng)
	return Config{
		Seed:   seed,
		Schema: schema,
		RuleGen: tdg.RuleGenParams{
			NumRules: 100,
			Start:    &start,
		},
		DataGen: tdg.DataGenParams{
			NumRecords: 10000,
			Start:      start,
		},
		Plan: BasePlan(schema),
		Audit: audit.Options{
			MinConfidence: 0.8,
		},
	}
}

// Point is one sweep measurement.
type Point struct {
	X             float64
	Sensitivity   float64
	Specificity   float64
	QoC           float64
	NumRules      int
	NumSuspicious int
	NumCorrupted  int
}

// Sweep runs the pipeline per X value, deriving each run's config from the
// base via modify. reps > 1 averages the measures over that many seeds per
// point (single runs of a fully randomized pipeline are noisy; the paper's
// figures show smoothed trends).
func Sweep(base Config, xs []float64, reps int, modify func(cfg *Config, x float64)) ([]Point, error) {
	if reps < 1 {
		reps = 1
	}
	var out []Point
	for _, x := range xs {
		p := Point{X: x}
		for rep := 0; rep < reps; rep++ {
			cfg := base
			cfg.Seed = base.Seed + int64(rep)*7919
			modify(&cfg, x)
			res, err := Run(cfg)
			if err != nil {
				return out, fmt.Errorf("evalx: sweep point x=%g rep %d: %w", x, rep, err)
			}
			p.Sensitivity += res.Sensitivity()
			p.Specificity += res.Specificity()
			p.QoC += res.QualityOfCorrection()
			p.NumRules = res.NumRules
			p.NumSuspicious += res.NumSuspicious
			p.NumCorrupted += res.NumCorrupted
		}
		p.Sensitivity /= float64(reps)
		p.Specificity /= float64(reps)
		p.QoC /= float64(reps)
		p.NumSuspicious /= reps
		p.NumCorrupted /= reps
		out = append(out, p)
	}
	return out, nil
}

// RecordsSweep reproduces Figure 3: sensitivity as a function of the
// number of records.
func RecordsSweep(base Config, counts []float64, reps int) ([]Point, error) {
	return Sweep(base, counts, reps, func(cfg *Config, x float64) {
		cfg.DataGen.NumRecords = int(x)
	})
}

// RulesSweep reproduces Figure 4: sensitivity as a function of the number
// of rules (the structural strength).
func RulesSweep(base Config, counts []float64, reps int) ([]Point, error) {
	return Sweep(base, counts, reps, func(cfg *Config, x float64) {
		cfg.RuleGen.NumRules = int(x)
	})
}

// PollutionSweep reproduces Figure 5: sensitivity as a function of the
// common pollution factor multiplying every activation probability.
func PollutionSweep(base Config, factors []float64, reps int) ([]Point, error) {
	return Sweep(base, factors, reps, func(cfg *Config, x float64) {
		cfg.Plan = cfg.Plan.Scale(x)
	})
}

// RenderPoints formats sweep results as an aligned table.
func RenderPoints(xLabel string, points []Point) string {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.4f", p.Sensitivity),
			fmt.Sprintf("%.4f", p.Specificity),
			fmt.Sprintf("%.4f", p.QoC),
			fmt.Sprintf("%d", p.NumRules),
			fmt.Sprintf("%d", p.NumCorrupted),
			fmt.Sprintf("%d", p.NumSuspicious),
		}
	}
	return FormatTable(
		[]string{xLabel, "sensitivity", "specificity", "qoc", "rules", "corrupted", "flagged"},
		rows,
	)
}
