package evalx

import (
	"fmt"
	"sort"

	"dataaudit/internal/audit"
	"dataaudit/internal/pollute"
)

// KindBreakdown reports detection quality per corruption kind. It
// quantifies the paper's §6.1 argument that "data auditing tools can
// principally only detect errors that are deviations from regularities,
// which is not the case for all error types": wrong values on
// rule-constrained attributes are detectable, duplicates of consistent
// records are not.
type KindBreakdown struct {
	Kind     pollute.Kind
	Total    int // records whose corruption includes this kind
	Detected int
}

// Rate is the per-kind sensitivity.
func (k KindBreakdown) Rate() float64 {
	if k.Total == 0 {
		return 0
	}
	return float64(k.Detected) / float64(k.Total)
}

// EvaluateByKind joins the audit verdicts with the pollution log per
// corruption kind. A record corrupted by several polluters counts towards
// each of its kinds (the tool flags records, not causes).
func EvaluateByKind(log *pollute.Log, res *audit.Result) []KindBreakdown {
	// Kinds per record.
	kinds := make(map[int64]map[pollute.Kind]bool)
	for _, e := range log.Events {
		if e.Kind == pollute.Delete {
			continue // absent from the dirty table
		}
		if kinds[e.RecordID] == nil {
			kinds[e.RecordID] = make(map[pollute.Kind]bool)
		}
		kinds[e.RecordID][e.Kind] = true
	}
	agg := make(map[pollute.Kind]*KindBreakdown)
	for _, rep := range res.Reports {
		ks, corrupted := kinds[rep.ID]
		if !corrupted {
			continue
		}
		for k := range ks {
			b := agg[k]
			if b == nil {
				b = &KindBreakdown{Kind: k}
				agg[k] = b
			}
			b.Total++
			if rep.Suspicious {
				b.Detected++
			}
		}
	}
	out := make([]KindBreakdown, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// RenderBreakdown formats the per-kind table.
func RenderBreakdown(breakdown []KindBreakdown) string {
	rows := make([][]string, len(breakdown))
	for i, b := range breakdown {
		rows[i] = []string{
			b.Kind.String(),
			fmt.Sprintf("%d", b.Total),
			fmt.Sprintf("%d", b.Detected),
			fmt.Sprintf("%.4f", b.Rate()),
		}
	}
	return FormatTable([]string{"corruption", "records", "detected", "sensitivity"}, rows)
}
