package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/monitor"
	"dataaudit/internal/obs"
	"dataaudit/internal/registry"
)

// newMetricsServer boots a server with a small monitoring window so one
// audited batch seals windows and populates the full metric surface.
func newMetricsServer(t *testing.T, opts ...Option) (*httptest.Server, *Server) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithMonitorOptions(monitor.Options{WindowRows: 500})}, opts...)
	srv := New(reg, opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func scrape(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp
}

// TestMetricsEndpoint drives induce → audit → scrape and checks the
// exposition is well-formed (via the obs package's format oracle) and
// carries the advertised series with live values.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newMetricsServer(t)
	tab := publishEngines(t, ts, 3000)

	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, tab); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(csvBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	decode[AuditResponse](t, resp, http.StatusOK)

	body, mresp := scrape(t, ts.URL)
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, body)
	}

	// The families the docs advertise must all be present.
	for _, fam := range []string{
		"dataaudit_rows_scored_total",
		"dataaudit_rows_suspicious_total",
		"dataaudit_attr_deviations_total",
		"dataaudit_attr_suspicious_total",
		"dataaudit_monitor_windows_sealed_total",
		"dataaudit_window_suspicious_rate",
		"dataaudit_baseline_suspicious_rate",
		"dataaudit_drift_delta",
		"dataaudit_drift_page_hinkley",
		"dataaudit_drift_active",
		"dataaudit_reservoir_rows",
		// dataaudit_reinductions_total is absent here by design: a vec
		// family with no children exports nothing, and no re-induction
		// outcome has happened yet (the monitor E2E covers that path).
		"dataaudit_reinduction_seconds",
		"dataaudit_http_requests_total",
		"dataaudit_http_request_seconds",
		"dataaudit_registry_cache_hits_total",
		"dataaudit_registry_cache_misses_total",
		"dataaudit_registry_cache_evictions_total",
		"dataaudit_registry_cache_resident",
		"dataaudit_uptime_seconds",
		"dataaudit_build_info",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	// The ≥12-distinct-series contract, counted rather than assumed.
	if n := strings.Count(body, "# TYPE "); n < 12 {
		t.Errorf("only %d metric families exported, want >= 12", n)
	}

	// Live values: the 3000-row audit must show up in the model's row
	// counter, the sealed-window counter (one batch folds as one window,
	// however large) and the instrumented route's request counter.
	for _, want := range []string{
		`dataaudit_rows_scored_total{model="engines"} 3000`,
		`dataaudit_monitor_windows_sealed_total{model="engines"} 1`,
		`dataaudit_http_requests_total{route="/v1/models/{name}/audit",method="POST",code="200"} 1`,
		`dataaudit_http_request_seconds_count{route="/v1/models/{name}/audit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("series %q missing from exposition:\n%s", want, body)
		}
	}

	// Deleting the model must drop its series — a recreated name starts
	// from zero instead of inheriting the dead incarnation's counters.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/engines", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	body, _ = scrape(t, ts.URL)
	if strings.Contains(body, `model="engines"`) {
		t.Fatalf("deleted model's series survive:\n%s", body)
	}
}

// TestMetricsScrapeDeterministic pins the exposition's ordering contract
// end-to-end: two scrapes of an idle server are byte-identical (the
// /metrics route does not instrument itself).
func TestMetricsScrapeDeterministic(t *testing.T) {
	ts, _ := newMetricsServer(t)
	publishEngines(t, ts, 1000)

	a, _ := scrape(t, ts.URL)
	b, _ := scrape(t, ts.URL)
	// The uptime gauge is the one legitimately time-varying series; mask
	// it before comparing.
	re := regexp.MustCompile(`(?m)^dataaudit_uptime_seconds .*$`)
	if got, want := re.ReplaceAllString(a, "UPTIME"), re.ReplaceAllString(b, "UPTIME"); got != want {
		t.Fatalf("two idle scrapes differ:\n--- first ---\n%s\n--- second ---\n%s", got, want)
	}
}

// TestMetricsDifferential proves the instrumentation changes nothing a
// client can see: the same induce + audit + stream conversation against
// a metrics-enabled and a metrics-disabled server produces byte-identical
// response bodies (modulo checkMillis, which is wall-clock timing and
// varies run to run with or without metrics).
func TestMetricsDifferential(t *testing.T) {
	timing := regexp.MustCompile(`"checkMillis":\d+`)
	run := func(enabled bool) (audit, stream string) {
		ts, _ := newMetricsServer(t, WithMetrics(enabled))
		tab := publishEngines(t, ts, 2000)
		dirty, _ := corruptGBM(t, tab, 40)
		var csvBuf bytes.Buffer
		if err := dataset.WriteCSV(&csvBuf, dirty); err != nil {
			t.Fatal(err)
		}

		resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(csvBuf.String()))
		if err != nil {
			t.Fatal(err)
		}
		ab, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("audit: status %d, err %v", resp.StatusCode, err)
		}

		resp, err = http.Post(ts.URL+"/v1/models/engines/audit/stream?workers=1&chunk=256", "text/csv", strings.NewReader(csvBuf.String()))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("stream: status %d, err %v", resp.StatusCode, err)
		}
		return timing.ReplaceAllString(string(ab), `"checkMillis":0`),
			timing.ReplaceAllString(string(sb), `"checkMillis":0`)
	}

	auditOn, streamOn := run(true)
	auditOff, streamOff := run(false)
	if auditOn != auditOff {
		t.Errorf("audit response differs with metrics enabled:\n--- on ---\n%s\n--- off ---\n%s", auditOn, auditOff)
	}
	if streamOn != streamOff {
		t.Errorf("stream response differs with metrics enabled:\n--- on ---\n%s\n--- off ---\n%s", streamOn, streamOff)
	}
}

// TestMetricsDisabled pins the opt-out: no /metrics route, no metric
// plumbing on the monitor.
func TestMetricsDisabled(t *testing.T) {
	ts, srv := newMetricsServer(t, WithMetrics(false))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}
	if srv.obsReg != nil || srv.metrics != nil || srv.httpMetrics != nil {
		t.Fatal("metric plumbing constructed despite WithMetrics(false)")
	}
}

// TestHealthzBuildInfo covers the upgraded health body: the bare-200
// contract plus version/uptime/model-count fields.
func TestHealthzBuildInfo(t *testing.T) {
	ts, _ := newMetricsServer(t)
	h := decode[HealthzResponse](t, mustGet(t, ts.URL+"/healthz"), http.StatusOK)
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.Version == "" || h.GoVersion == "" {
		t.Fatalf("build info missing: %+v", h)
	}
	if h.Models != 0 || h.Workers < 1 || h.UptimeSeconds < 0 {
		t.Fatalf("unexpected healthz: %+v", h)
	}
}

// TestDashboard covers the embedded page: served with its data route,
// self-contained (no external URL anywhere in the asset, so it renders
// with the network unplugged), and removable via WithDashboard(false).
func TestDashboard(t *testing.T) {
	ts, _ := newMetricsServer(t)
	publishEngines(t, ts, 1000)

	resp := mustGet(t, ts.URL+"/dashboard")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, external := range []string{"http://", "https://", "//cdn", "@import", "src="} {
		if bytes.Contains(page, []byte(external)) {
			t.Errorf("dashboard asset references an external resource (%q)", external)
		}
	}
	if !bytes.Contains(page, []byte("dashboard/data")) {
		t.Fatal("dashboard does not fetch its data route")
	}

	data := decode[DashboardData](t, mustGet(t, ts.URL+"/dashboard/data"), http.StatusOK)
	if len(data.Models) != 1 || data.Models[0].Meta.Name != "engines" {
		t.Fatalf("dashboard data = %+v", data)
	}

	t.Run("disabled", func(t *testing.T) {
		ts2, _ := newMetricsServer(t, WithDashboard(false))
		resp, err := http.Get(ts2.URL + "/dashboard")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/dashboard with dashboard disabled: status %d, want 404", resp.StatusCode)
		}
	})
}
