package serve

import (
	"bytes"
	"net/http"
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
)

// Tests of the ingestion-format surface: JSONL bodies on the audit
// routes, JSONL training uploads, the per-attribute quality dimensions
// and the opt-in duplicate scan.

// dirtyEngineBatch clones the fixture table and corrupts the GBM of every
// 97th BRV=404 row (the seeded §6.2 deviation the batch tests flag).
func dirtyEngineBatch(t *testing.T, tab *dataset.Table) (*dataset.Table, int) {
	t.Helper()
	gbm := tab.Schema().Index("GBM")
	gbmAttr := tab.Schema().Attr(gbm)
	dirty := tab.Clone()
	corrupted := 0
	for r := 0; r < dirty.NumRows() && corrupted < 25; r += 97 {
		if gbmAttr.Format(dirty.Get(r, gbm)) == "901" {
			dirty.Set(r, gbm, gbmAttr.MustNominal("911"))
			corrupted++
		}
	}
	return dirty, corrupted
}

// TestJSONLMatchesCSV publishes a model from JSONL training rows, then
// audits the same dirty batch through the CSV and the JSONL content
// types and requires identical responses — the JSONL decoder must not
// change a single score, report or dimension.
func TestJSONLMatchesCSV(t *testing.T) {
	ts := newTestServer(t)
	schemaText, _, tab := engineFixture(t, 4000)

	var trainJSONL bytes.Buffer
	if err := dataset.WriteJSONL(&trainJSONL, tab); err != nil {
		t.Fatal(err)
	}
	created := decode[ModelResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name:    "engines",
		Schema:  schemaText,
		JSONL:   trainJSONL.String(),
		Options: OptionsJSON{MinConfidence: 0.8, Filter: "reachable-only"},
	}), http.StatusCreated)
	if created.Version != 1 || created.TrainRows != tab.NumRows() {
		t.Fatalf("JSONL induce: %+v", created)
	}

	dirty, corrupted := dirtyEngineBatch(t, tab)
	var csvBody, jsonlBody bytes.Buffer
	if err := dataset.WriteCSV(&csvBody, dirty); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteJSONL(&jsonlBody, dirty); err != nil {
		t.Fatal(err)
	}

	audit := func(contentType string, body *bytes.Buffer) AuditResponse {
		resp, err := http.Post(ts.URL+"/v1/models/engines/audit?workers=2", contentType, body)
		if err != nil {
			t.Fatal(err)
		}
		res := decode[AuditResponse](t, resp, http.StatusOK)
		res.CheckMillis = 0 // wall time — the only field allowed to differ
		return res
	}
	fromCSV := audit("text/csv", &csvBody)
	fromJSONL := audit("application/x-ndjson", &jsonlBody)

	if fromCSV.NumSuspicious < corrupted/2 {
		t.Fatalf("seeded deviations not flagged: suspicious=%d corrupted=%d", fromCSV.NumSuspicious, corrupted)
	}
	if !reflect.DeepEqual(fromCSV, fromJSONL) {
		t.Fatalf("JSONL audit differs from CSV audit:\ncsv:   %+v\njsonl: %+v", fromCSV, fromJSONL)
	}
}

// TestStreamJSONLMatchesCSVStream runs the streaming endpoint once with
// a CSV body and once with the same rows as JSONL and requires identical
// report lines and summaries (wall time aside).
func TestStreamJSONLMatchesCSVStream(t *testing.T) {
	ts := newTestServer(t)
	tab := publishEngines(t, ts, 4000)
	dirty, _ := corruptGBM(t, tab, 20)

	var csvBody, jsonlBody bytes.Buffer
	if err := dataset.WriteCSV(&csvBody, dirty); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteJSONL(&jsonlBody, dirty); err != nil {
		t.Fatal(err)
	}

	stream := func(contentType string, body *bytes.Buffer) ([]ReportJSON, *StreamSummaryJSON) {
		resp, err := http.Post(ts.URL+"/v1/models/engines/audit/stream?workers=2&chunk=256", contentType, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		reports, summary, errLine := readStream(t, resp.Body)
		if errLine != "" || summary == nil {
			t.Fatalf("stream failed: err=%q summary=%v", errLine, summary)
		}
		summary.CheckMillis = 0
		return reports, summary
	}
	csvReports, csvSummary := stream("text/csv", &csvBody)
	jsonlReports, jsonlSummary := stream("application/x-ndjson", &jsonlBody)

	if csvSummary.NumSuspicious == 0 {
		t.Fatal("seeded deviations not flagged")
	}
	if !reflect.DeepEqual(csvReports, jsonlReports) {
		t.Fatalf("JSONL stream reports differ from CSV:\ncsv:   %+v\njsonl: %+v", csvReports, jsonlReports)
	}
	if !reflect.DeepEqual(csvSummary, jsonlSummary) {
		t.Fatalf("JSONL stream summary differs from CSV:\ncsv:   %+v\njsonl: %+v", csvSummary, jsonlSummary)
	}
}

// TestInduceRejectsBothFormats requires the induce route to fail loudly
// when a request carries both CSV and JSONL training rows.
func TestInduceRejectsBothFormats(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, tab := engineFixture(t, 600)
	var jsonl bytes.Buffer
	if err := dataset.WriteJSONL(&jsonl, tab); err != nil {
		t.Fatal(err)
	}
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "x", Schema: schemaText, CSV: csvText, JSONL: jsonl.String(),
	}), http.StatusBadRequest)
}

// TestAuditAttrDims seeds nulls into one column and checks the response's
// per-attribute quality dimensions: exact null counts and rates on the
// nulled column, full completeness elsewhere.
func TestAuditAttrDims(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, tab := engineFixture(t, 2000)
	decode[ModelResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "engines", Schema: schemaText, CSV: csvText,
	}), http.StatusCreated)

	kbm := tab.Schema().Index("KBM")
	nulled := tab.Clone()
	nulls := 0
	for r := 0; r < nulled.NumRows(); r += 4 {
		nulled.Set(r, kbm, dataset.Null())
		nulls++
	}
	var body bytes.Buffer
	if err := dataset.WriteCSV(&body, nulled); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", &body)
	if err != nil {
		t.Fatal(err)
	}
	res := decode[AuditResponse](t, resp, http.StatusOK)

	if len(res.AttrDims) != tab.Schema().Len() {
		t.Fatalf("attrDims has %d entries, want %d", len(res.AttrDims), tab.Schema().Len())
	}
	for _, d := range res.AttrDims {
		if d.Rows != int64(nulled.NumRows()) {
			t.Fatalf("%s rows = %d, want %d", d.Attr, d.Rows, nulled.NumRows())
		}
		wantNulls := int64(0)
		if d.Attr == "KBM" {
			wantNulls = int64(nulls)
		}
		if d.Nulls != wantNulls {
			t.Fatalf("%s nulls = %d, want %d", d.Attr, d.Nulls, wantNulls)
		}
		if want := float64(wantNulls) / float64(nulled.NumRows()); d.NullRate != want {
			t.Fatalf("%s nullRate = %v, want %v", d.Attr, d.NullRate, want)
		}
		if d.Attr == "DISP" && d.Uniqueness == 0 {
			t.Fatalf("DISP uniqueness = 0, want > 0")
		}
	}
}

// TestAuditDedup duplicates rows of the batch and checks the opt-in
// duplicate scan: absent by default, exact groups with the seeded
// duplicates under ?dedup=1.
func TestAuditDedup(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, tab := engineFixture(t, 1500)
	decode[ModelResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "engines", Schema: schemaText, CSV: csvText,
	}), http.StatusCreated)

	// Re-append 10 existing rows verbatim: exact duplicates.
	dup := tab.Clone()
	row := make([]dataset.Value, tab.Schema().Len())
	const copies = 10
	for i := 0; i < copies; i++ {
		r := i * 131
		for c := range row {
			row[c] = tab.Get(r, c)
		}
		dup.AppendRow(row)
	}
	render := func() *bytes.Buffer {
		var b bytes.Buffer
		if err := dataset.WriteCSV(&b, dup); err != nil {
			t.Fatal(err)
		}
		return &b
	}

	resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", render())
	if err != nil {
		t.Fatal(err)
	}
	plain := decode[AuditResponse](t, resp, http.StatusOK)
	if plain.Duplicates != nil {
		t.Fatalf("duplicates present without dedup=1: %+v", plain.Duplicates)
	}

	resp, err = http.Post(ts.URL+"/v1/models/engines/audit?dedup=1", "text/csv", render())
	if err != nil {
		t.Fatal(err)
	}
	res := decode[AuditResponse](t, resp, http.StatusOK)
	d := res.Duplicates
	if d == nil {
		t.Fatal("no duplicates in dedup=1 response")
	}
	if d.Rows != dup.NumRows() {
		t.Fatalf("scan rows = %d, want %d", d.Rows, dup.NumRows())
	}
	if d.DuplicateRows < copies {
		t.Fatalf("duplicateRows = %d, want >= %d seeded copies", d.DuplicateRows, copies)
	}
	if d.ExactGroups < 1 || len(d.Groups) == 0 {
		t.Fatalf("no exact groups found: %+v", d)
	}
	for _, g := range d.Groups {
		if len(g.Rows) < 2 || len(g.Rows) != len(g.IDs) {
			t.Fatalf("malformed group %+v", g)
		}
		if g.Exact && g.MinSimilarity != 1 {
			t.Fatalf("exact group with minSimilarity %v", g.MinSimilarity)
		}
	}
}
