package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/monitor"
	"dataaudit/internal/registry"
)

// The restart acceptance scenario: quality history must be a property of
// the registry root, not of the process. A server is stopped gracefully,
// a new one opens the same directory, and GET /v1/models/{name}/quality
// answers byte-identically — snapshots, drift state, lifecycle events and
// reservoir counters included.

// startServer opens (or reopens) a registry root as a serving process.
func startServer(t *testing.T, root string) (*httptest.Server, *Server) {
	t.Helper()
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(reg, WithMonitorOptions(monitor.Options{
		WindowRows: 1000,
		MinWindows: 1,
		DriftDelta: 0.10,
	}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func getQualityBody(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp := mustGet(t, ts.URL+"/v1/models/engines/quality")
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quality status %d: %s", resp.StatusCode, body)
	}
	return body
}

func auditCSV(t *testing.T, ts *httptest.Server, csv string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	decode[AuditResponse](t, resp, http.StatusOK)
}

// TestQualitySurvivesRestart is the E2E restart test: induce → audit →
// drift events → stop the server → restart against the same registry
// root → /quality returns the pre-restart snapshots and events
// byte-equivalently, and monitoring picks up where it left off.
func TestQualitySurvivesRestart(t *testing.T) {
	root := t.TempDir()
	ts1, srv1 := startServer(t, root)
	tab := publishEngines(t, ts1, 4000)

	var cleanCSV bytes.Buffer
	if err := dataset.WriteCSV(&cleanCSV, tab); err != nil {
		t.Fatal(err)
	}
	dirty := tab.Clone()
	gbm, brv := dirty.Schema().Index("GBM"), dirty.Schema().Index("BRV")
	for r := 0; r < dirty.NumRows(); r++ {
		dirty.Set(r, gbm, dataset.Nom((dirty.Get(r, brv).NomIdx()+1)%3))
	}
	var dirtyCSV bytes.Buffer
	if err := dataset.WriteCSV(&dirtyCSV, dirty); err != nil {
		t.Fatal(err)
	}

	// Clean window, then a dirty window that fires drift (auto
	// re-induction is off: the event log records drift + skip).
	auditCSV(t, ts1, cleanCSV.String())
	auditCSV(t, ts1, dirtyCSV.String())

	before := decode[QualityResponse](t, mustGet(t, ts1.URL+"/v1/models/engines/quality"), http.StatusOK)
	if before.Monitor == nil || len(before.Monitor.Snapshots) == 0 {
		t.Fatalf("no monitor state before restart: %+v", before)
	}
	var drifted bool
	for _, e := range before.Monitor.Events {
		if e.Kind == monitor.EventDrift {
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("no drift event before restart; the test would be vacuous: %+v", before.Monitor.Events)
	}
	beforeBody := getQualityBody(t, ts1)

	// Graceful stop: drain HTTP, persist monitoring state.
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart against the same root: history must be byte-identical
	// before the new process has observed a single row.
	ts2, srv2 := startServer(t, root)
	afterBody := getQualityBody(t, ts2)
	if !bytes.Equal(beforeBody, afterBody) {
		t.Fatalf("quality history not byte-equivalent across restart:\n%s\n--- vs ---\n%s", beforeBody, afterBody)
	}

	// The recovered state keeps monitoring: another audited window seals
	// on top of the restored history.
	auditCSV(t, ts2, cleanCSV.String())
	after := decode[QualityResponse](t, mustGet(t, ts2.URL+"/v1/models/engines/quality"), http.StatusOK)
	if after.Monitor == nil || after.Monitor.Windows != before.Monitor.Windows+1 {
		t.Fatalf("recovered monitor did not keep sealing: %+v vs %+v", after.Monitor, before.Monitor)
	}
	if after.Monitor.ReservoirSeen != before.Monitor.ReservoirSeen+int64(tab.NumRows()) {
		t.Fatalf("recovered reservoir did not keep sampling: %d -> %d",
			before.Monitor.ReservoirSeen, after.Monitor.ReservoirSeen)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupted/truncated state files must degrade to fresh state — a 200
	// with no monitor history — never fail the model.
	t.Run("corrupt state file recovers fresh", func(t *testing.T) {
		reg, err := registry.Open(root)
		if err != nil {
			t.Fatal(err)
		}
		path := monitor.StateFile(reg.StateDir(), "engines")
		good, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil {
			t.Fatal(err)
		}

		ts3, srv3 := startServer(t, root)
		q := decode[QualityResponse](t, mustGet(t, ts3.URL+"/v1/models/engines/quality"), http.StatusOK)
		if q.Monitor != nil {
			t.Fatalf("truncated state file served as history: %+v", q.Monitor)
		}
		if q.Baseline == nil || q.Version != 1 {
			t.Fatalf("registry-side quality lost: %+v", q)
		}
		// The model still audits and rebuilds monitoring state from
		// scratch.
		auditCSV(t, ts3, cleanCSV.String())
		q = decode[QualityResponse](t, mustGet(t, ts3.URL+"/v1/models/engines/quality"), http.StatusOK)
		if q.Monitor == nil || q.Monitor.Windows != 1 {
			t.Fatalf("fresh monitor state not rebuilt after corrupt load: %+v", q.Monitor)
		}
		if err := srv3.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
