package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
	"dataaudit/internal/shard"
)

// shardServer bundles everything the shard route tests need.
type shardServer struct {
	ts    *httptest.Server
	srv   *Server
	reg   *registry.Registry
	model *audit.Model
	meta  registry.Meta
	tab   *dataset.Table
}

// shardFixture publishes an induced model straight into a fresh registry
// and boots a server over it.
func shardFixture(t *testing.T, opts ...Option) *shardServer {
	t.Helper()
	_, _, tab := engineFixture(t, 1200)
	m, err := audit.Induce(tab, audit.Options{MinConfidence: 0.8, Filter: audittree.FilterReachableOnly})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.Publish("engines", m)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(reg, opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &shardServer{ts: ts, srv: srv, reg: reg, model: m, meta: meta, tab: tab}
}

// chunkStreamBody renders a table as the shard route's chunk-stream wire
// format.
func chunkStreamBody(t *testing.T, tab *dataset.Table, chunkRows int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	sw := dataset.NewChunkStreamWriter(&buf)
	ck := dataset.NewColumnChunk(tab.Schema())
	for lo := 0; lo < tab.NumRows(); lo += chunkRows {
		hi := lo + chunkRows
		if hi > tab.NumRows() {
			hi = tab.NumRows()
		}
		tab.ChunkInto(ck, lo, hi)
		if err := sw.Write(ck); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func postShard(t *testing.T, tsURL string, query string, contentType string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, tsURL+"/v1/models/engines/audit/shard?"+query, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestShardRoute: the worker half of the protocol end to end — a chunk
// stream in, a shard result out, identical to in-process scoring.
func TestShardRoute(t *testing.T) {
	f := shardFixture(t)
	meta, tab, m := f.meta, f.tab, f.model
	pin := url.Values{
		"version":   {fmt.Sprint(meta.Version)},
		"createdAt": {meta.CreatedAt.UTC().Format(time.RFC3339Nano)},
	}.Encode()

	resp := postShard(t, f.ts.URL, pin, shard.ContentTypeChunkStream, chunkStreamBody(t, tab, 128))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != shard.ContentTypeShardResult {
		t.Fatalf("response Content-Type %q", ct)
	}
	got, err := shard.DecodeShardResult(resp.Body, tab.NumRows(), tab.NumCols())
	if err != nil {
		t.Fatal(err)
	}
	want := m.AuditTable(tab)
	if len(got.Result.Reports) != len(want.Reports) {
		t.Fatalf("%d reports, want %d", len(got.Result.Reports), len(want.Reports))
	}
	for i := range want.Reports {
		g, w := got.Result.Reports[i], want.Reports[i]
		if g.ErrorConf != w.ErrorConf || g.Suspicious != w.Suspicious || g.ID != w.ID {
			t.Fatalf("report %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestShardRouteRejects: protocol violations map to the documented
// status codes.
func TestShardRouteRejects(t *testing.T) {
	f := shardFixture(t, WithMaxBatchRows(100))
	meta, tab := f.meta, f.tab
	goodPin := url.Values{
		"version":   {fmt.Sprint(meta.Version)},
		"createdAt": {meta.CreatedAt.UTC().Format(time.RFC3339Nano)},
	}.Encode()
	stalePin := url.Values{
		"version":   {fmt.Sprint(meta.Version)},
		"createdAt": {meta.CreatedAt.Add(time.Second).UTC().Format(time.RFC3339Nano)},
	}.Encode()

	foreign := dataset.NewTable(dataset.MustSchema(dataset.NewNumeric("x", 0, 1)))
	foreign.AppendRow([]dataset.Value{dataset.Num(0.5)})

	cases := []struct {
		name        string
		query       string
		contentType string
		body        io.Reader
		wantStatus  int
		fragment    string
	}{
		{"wrong content type", goodPin, "application/json", strings.NewReader("{}"), http.StatusUnsupportedMediaType, "Content-Type"},
		{"bad version", "version=abc", shard.ContentTypeChunkStream, chunkStreamBody(t, tab, 64), http.StatusBadRequest, "version"},
		{"unknown version", "version=99", shard.ContentTypeChunkStream, chunkStreamBody(t, tab, 64), http.StatusNotFound, ""},
		{"malformed createdAt", "version=1&createdAt=yesterday", shard.ContentTypeChunkStream, chunkStreamBody(t, tab, 64), http.StatusBadRequest, "createdAt"},
		{"stale createdAt pin", stalePin, shard.ContentTypeChunkStream, chunkStreamBody(t, tab, 64), http.StatusConflict, "pinned"},
		{"garbage stream", goodPin, shard.ContentTypeChunkStream, strings.NewReader("not a chunk stream"), http.StatusBadRequest, ""},
		{"schema mismatch", goodPin, shard.ContentTypeChunkStream, chunkStreamBody(t, foreign, 8), http.StatusBadRequest, "schema"},
		{"row limit", goodPin, shard.ContentTypeChunkStream, chunkStreamBody(t, tab, 64), http.StatusRequestEntityTooLarge, "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postShard(t, f.ts.URL, tc.query, tc.contentType, tc.body)
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("non-JSON error body: %s", raw)
			}
			if !strings.Contains(e.Error, tc.fragment) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.fragment)
			}
		})
	}
}

func putReplica(t *testing.T, tsURL, name, contentType string, meta registry.Meta, m *audit.Model) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := shard.EncodeReplica(&buf, meta, m); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, tsURL+"/v1/models/"+name+"/replicate", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestReplicateRoute: identity-preserving install, idempotent re-push,
// conflict resolution by dropping the local copy, and input validation.
func TestReplicateRoute(t *testing.T) {
	// Source side: a published model whose identity we replicate.
	src := shardFixture(t)
	m, meta := src.model, src.meta

	// Destination: an empty worker.
	wreg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(wreg).Handler())
	t.Cleanup(ts.Close)

	resp := putReplica(t, ts.URL, "engines", shard.ContentTypeReplica, meta, m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("install: status %d", resp.StatusCode)
	}
	got, err := wreg.MetaOfVersion("engines", meta.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CreatedAt.Equal(meta.CreatedAt) || got.SchemaHash != meta.SchemaHash {
		t.Fatalf("replica meta %+v diverges from %+v", got, meta)
	}

	// Idempotent re-push.
	resp = putReplica(t, ts.URL, "engines", shard.ContentTypeReplica, meta, m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("re-push: status %d", resp.StatusCode)
	}

	// Conflicting identity (same version, different CreatedAt): the worker
	// must drop its copy and take the push — coordinator wins.
	meta2 := meta
	meta2.CreatedAt = meta.CreatedAt.Add(time.Minute)
	resp = putReplica(t, ts.URL, "engines", shard.ContentTypeReplica, meta2, m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("conflict push: status %d", resp.StatusCode)
	}
	got, err = wreg.MetaOfVersion("engines", meta.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CreatedAt.Equal(meta2.CreatedAt) {
		t.Fatal("worker kept the stale replica after a conflicting push")
	}

	// Name mismatch between route and envelope.
	resp = putReplica(t, ts.URL, "other", shard.ContentTypeReplica, meta, m)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "route names") {
		t.Fatalf("name mismatch: status %d body %s", resp.StatusCode, raw)
	}

	// Wrong content type.
	resp = putReplica(t, ts.URL, "engines", "application/json", meta, m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("wrong content type: status %d", resp.StatusCode)
	}
}

// TestCoordinatorModeAudit: a coordinator auditd fans the buffered audit
// route out across worker processes; the JSON reports are identical to
// the ?local=1 in-process path and the response is flagged sharded.
func TestCoordinatorModeAudit(t *testing.T) {
	// Two plain workers.
	var workerURLs []string
	for i := 0; i < 2; i++ {
		wreg, err := registry.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		wts := httptest.NewServer(New(wreg).Handler())
		t.Cleanup(wts.Close)
		workerURLs = append(workerURLs, wts.URL)
	}

	f := shardFixture(t, WithCoordinator(shard.Options{
		Workers:   workerURLs,
		Shards:    4,
		ChunkRows: 128,
	}))
	tab := f.tab

	// GET /v1/shard/workers reflects the configuration.
	var sw ShardWorkersResponse
	resp, err := http.Get(f.ts.URL + "/v1/shard/workers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sw.Workers) != 2 || sw.Shards != 4 || sw.Strategy != string(shard.StrategyRange) {
		t.Fatalf("workers response %+v", sw)
	}

	// Craft a batch with known suspicious rows: break the BRV=404 → GBM=901
	// dependency on every eighth conforming row.
	gbm := tab.Schema().Index("GBM")
	rows := make([][]string, 0, 64)
	flipped := 0
	for r := 0; r < 64; r++ {
		rendered := make([]string, tab.NumCols())
		for c := 0; c < tab.NumCols(); c++ {
			rendered[c] = tab.Schema().Attr(c).Format(tab.Get(r, c))
		}
		if flipped < 5 && rendered[gbm] == "901" {
			rendered[gbm] = "911"
			flipped++
		}
		rows = append(rows, rendered)
	}
	if flipped == 0 {
		t.Fatal("fixture has no conforming GBM=901 row in the first 64")
	}

	auditURL := f.ts.URL + "/v1/models/engines/audit?all=1"
	shardedResp := decode[AuditResponse](t, postJSON(t, auditURL, AuditRequest{Rows: rows}), http.StatusOK)
	localResp := decode[AuditResponse](t, postJSON(t, auditURL+"&local=1", AuditRequest{Rows: rows}), http.StatusOK)

	if !shardedResp.Sharded || shardedResp.ShardWorkers != 2 {
		t.Fatalf("sharded response not flagged: %+v", shardedResp)
	}
	if localResp.Sharded || localResp.ShardWorkers != 0 {
		t.Fatalf("?local=1 response flagged sharded: %+v", localResp)
	}
	if shardedResp.NumSuspicious == 0 {
		t.Fatal("polluted batch produced no suspicious records")
	}

	// Identical modulo timing and topology fields.
	norm := func(r AuditResponse) AuditResponse {
		r.CheckMillis, r.Workers, r.Sharded, r.ShardWorkers = 0, 0, false, 0
		return r
	}
	a, _ := json.Marshal(norm(shardedResp))
	b, _ := json.Marshal(norm(localResp))
	if !bytes.Equal(a, b) {
		t.Fatalf("sharded and local JSON diverge:\n%s\n%s", a, b)
	}
}

// TestCoordinatorModeSingleRow: the single-row audit path also rides the
// coordinator (it is the same buffered route).
func TestCoordinatorModeSingleRow(t *testing.T) {
	wreg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(New(wreg).Handler())
	t.Cleanup(wts.Close)

	f := shardFixture(t, WithCoordinator(shard.Options{Workers: []string{wts.URL}}))
	tab := f.tab
	row := make([]string, tab.NumCols())
	for c := range row {
		row[c] = tab.Schema().Attr(c).Format(tab.Get(0, c))
	}
	got := decode[AuditResponse](t, postJSON(t, f.ts.URL+"/v1/models/engines/audit?all=1", AuditRequest{Row: row}), http.StatusOK)
	if !got.Sharded || got.RowsChecked != 1 {
		t.Fatalf("single-row coordinator audit: %+v", got)
	}
}

// TestCoordinatorAllWorkersDownIs502: coordinator with an unreachable
// worker set surfaces a gateway error, not a silent local fallback.
func TestCoordinatorAllWorkersDownIs502(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	f := shardFixture(t, WithCoordinator(shard.Options{
		Workers: []string{deadURL},
		Backoff: time.Millisecond,
	}))
	tab := f.tab
	row := make([]string, tab.NumCols())
	for c := range row {
		row[c] = tab.Schema().Attr(c).Format(tab.Get(0, c))
	}
	resp := postJSON(t, f.ts.URL+"/v1/models/engines/audit", AuditRequest{Row: row})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 502; body: %s", resp.StatusCode, raw)
	}

	// The escape hatch still works with every worker down.
	got := decode[AuditResponse](t, postJSON(t, f.ts.URL+"/v1/models/engines/audit?local=1", AuditRequest{Row: row}), http.StatusOK)
	if got.Sharded {
		t.Fatal("?local=1 flagged sharded")
	}
}

// TestWorkerShardRouteSkipsMonitor: scoring a shard must not feed the
// worker's quality monitor — the coordinator observes the merged batch.
func TestWorkerShardRouteSkipsMonitor(t *testing.T) {
	f := shardFixture(t)
	pin := url.Values{
		"version":   {fmt.Sprint(f.meta.Version)},
		"createdAt": {f.meta.CreatedAt.UTC().Format(time.RFC3339Nano)},
	}.Encode()
	resp := postShard(t, f.ts.URL, pin, shard.ContentTypeChunkStream, chunkStreamBody(t, f.tab, 256))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st, ok := f.srv.mon.Quality("engines"); ok && st.PendingRows > 0 {
		t.Fatalf("shard route fed the worker monitor: %+v", st)
	}
}
