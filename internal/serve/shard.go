package serve

import (
	"errors"
	"mime"
	"net/http"
	"time"

	"dataaudit/internal/dataset"
	"dataaudit/internal/obs"
	"dataaudit/internal/registry"
	"dataaudit/internal/shard"
)

// Coordinator mode. Every auditd is always a capable shard *worker* (the
// shard and replicate routes below are part of the standard surface); an
// auditd becomes a *coordinator* when WithCoordinator hands it a worker
// set. A coordinator's buffered audit route then fans batches out to the
// workers and merges, while ?local=1 forces the in-process path — the
// escape hatch differential tests diff against.

// WithCoordinator enables coordinator mode over the given shard options.
// Logger and Metrics are wired by the server (options passed here for
// those fields are overridden); the worker list must be non-empty and
// pre-validated by the caller via shard.New, because server construction
// has no error path — an invalid set here logs and disables coordination.
func WithCoordinator(opts shard.Options) Option {
	return func(s *Server) { s.coordOpts = &opts }
}

// initCoordinator builds the coordinator once logger and metrics exist.
func (s *Server) initCoordinator() {
	opts := *s.coordOpts
	opts.Logger = s.logger
	if s.metricsOn {
		opts.Metrics = obs.NewShardMetrics(s.obsReg)
	}
	coord, err := shard.New(opts)
	if err != nil {
		s.logger.Printf("serve: coordinator disabled: %v", err)
		return
	}
	s.coord = coord
}

// Coordinator exposes the server's shard coordinator (nil when not in
// coordinator mode) — tests and embedders.
func (s *Server) Coordinator() *shard.Coordinator { return s.coord }

// handleAuditShard implements POST /v1/models/{name}/audit/shard — the
// worker half of the shard protocol. The body is a dataset chunk stream;
// the response a gob shard result with shard-local row indices. The
// request pins the model identity: ?version= selects it and &createdAt=
// (RFC3339Nano) must match the committed sidecar, so a worker whose model
// was deleted/recreated answers 409 instead of scoring with an impostor.
// This route does not feed the worker's quality monitor: the coordinator
// observes the merged batch exactly once on its side.
func (s *Server) handleAuditShard(w http.ResponseWriter, r *http.Request) {
	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct != shard.ContentTypeChunkStream {
		s.writeError(w, http.StatusUnsupportedMediaType, "shard audits take Content-Type %s", shard.ContentTypeChunkStream)
		return
	}
	version, err := versionParam(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	model, meta, err := s.reg.GetVersion(r.PathValue("name"), version)
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	if pinned := r.URL.Query().Get("createdAt"); pinned != "" {
		at, err := time.Parse(time.RFC3339Nano, pinned)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad createdAt %q: %v", pinned, err)
			return
		}
		if !meta.CreatedAt.Equal(at) {
			s.writeError(w, http.StatusConflict,
				"model %s v%d was published at %s, request pinned %s (deleted/recreated model?)",
				meta.Name, meta.Version, meta.CreatedAt.UTC().Format(time.RFC3339Nano), pinned)
			return
		}
	}

	res, err := shard.ScoreStream(model, dataset.NewChunkStreamReader(r.Body), meta.SchemaHash, s.maxBatch)
	if err != nil {
		var rle *shard.RowLimitError
		switch {
		case errors.As(err, &rle):
			s.writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Content-Type", shard.ContentTypeShardResult)
	w.WriteHeader(http.StatusOK)
	if err := shard.EncodeShardResult(w, res); err != nil {
		s.logger.Printf("serve: writing shard result: %v", err)
	}
}

// handleReplicate implements PUT /v1/models/{name}/replicate: install a
// model under the exact identity committed elsewhere. On a replica
// conflict — same (name, version) committed locally with a different
// CreatedAt, i.e. a deleted-and-recreated model — the local copy is
// dropped wholesale (monitoring state included) and the push re-applied:
// the coordinator's registry is the source of truth for replicated names.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct != shard.ContentTypeReplica {
		s.writeError(w, http.StatusUnsupportedMediaType, "replication takes Content-Type %s", shard.ContentTypeReplica)
		return
	}
	meta, model, err := shard.DecodeReplica(r.Body)
	if err != nil {
		s.writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	if meta.Name != r.PathValue("name") {
		s.writeError(w, http.StatusBadRequest, "replica names model %q, route names %q", meta.Name, r.PathValue("name"))
		return
	}
	err = s.reg.InstallReplica(meta, model)
	if errors.Is(err, registry.ErrReplicaConflict) {
		s.logger.Printf("serve: replica conflict on %s v%d; dropping local copy", meta.Name, meta.Version)
		if derr := s.reg.Delete(meta.Name); derr != nil {
			s.writeError(w, s.errStatus(derr), "resolving replica conflict: %v", derr)
			return
		}
		s.mon.Forget(meta.Name)
		err = s.reg.InstallReplica(meta, model)
	}
	if err != nil {
		s.writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	s.logger.Printf("serve: installed replica %s v%d", meta.Name, meta.Version)
	w.WriteHeader(http.StatusNoContent)
}

// handleShardWorkers implements GET /v1/shard/workers (coordinator mode
// only): the configured worker set and split parameters.
func (s *Server) handleShardWorkers(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, ShardWorkersResponse{
		Workers:  s.coord.Workers(),
		Shards:   s.coord.Shards(),
		Strategy: string(s.coord.Strategy()),
	})
}
