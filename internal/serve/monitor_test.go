package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/monitor"
	"dataaudit/internal/registry"
)

// newMonitoredServer builds a test server with an aggressive monitoring
// configuration so a single polluted upload can walk the whole lifecycle.
func newMonitoredServer(t *testing.T, monOpts monitor.Options) (*httptest.Server, *Server) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(reg, WithMonitorOptions(monOpts))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestQualityEndpoint covers the read path: baseline present right after
// induction, monitor state appearing after the first audit.
func TestQualityEndpoint(t *testing.T) {
	ts := newTestServer(t)
	tab := publishEngines(t, ts, 3000)

	q := decode[QualityResponse](t, mustGet(t, ts.URL+"/v1/models/engines/quality"), http.StatusOK)
	if q.Model != "engines" || q.Version != 1 {
		t.Fatalf("quality identity wrong: %+v", q)
	}
	if q.Baseline == nil || q.Baseline.Rows != int64(tab.NumRows()) {
		t.Fatalf("induction-time baseline missing: %+v", q.Baseline)
	}
	if q.Monitor != nil {
		t.Fatalf("monitor state before any audit: %+v", q.Monitor)
	}

	// One audited batch makes the monitor state appear.
	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, tab); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(csvBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	decode[AuditResponse](t, resp, http.StatusOK)

	q = decode[QualityResponse](t, mustGet(t, ts.URL+"/v1/models/engines/quality"), http.StatusOK)
	if q.Monitor == nil || q.Monitor.Windows == 0 || len(q.Monitor.Snapshots) == 0 {
		t.Fatalf("monitor state missing after audit: %+v", q.Monitor)
	}
	if q.Monitor.Snapshots[0].SuspiciousRate > 0.05 {
		t.Fatalf("clean batch scored dirty: %+v", q.Monitor.Snapshots[0])
	}

	t.Run("unknown model is 404", func(t *testing.T) {
		decode[ErrorResponse](t, mustGet(t, ts.URL+"/v1/models/nope/quality"), http.StatusNotFound)
	})
}

// TestDriftToReinductionE2E is the acceptance scenario: a clean-trained
// model audits a polluted stream, drift fires, auto re-induction
// publishes version 2 through the registry's atomic path, and the
// quality route returns baseline, snapshot history and the lifecycle
// events.
func TestDriftToReinductionE2E(t *testing.T) {
	ts, srv := newMonitoredServer(t, monitor.Options{
		WindowRows:      1000,
		MinWindows:      1,
		DriftDelta:      0.10,
		AutoReinduce:    true,
		MinReinduceRows: 200,
		ReservoirRows:   2048,
	})
	tab := publishEngines(t, ts, 4000)

	// Pollute every row: break the BRV → GBM dependency wholesale.
	dirty := tab.Clone()
	gbm := dirty.Schema().Index("GBM")
	brv := dirty.Schema().Index("BRV")
	for r := 0; r < dirty.NumRows(); r++ {
		dirty.Set(r, gbm, dataset.Nom((dirty.Get(r, brv).NomIdx()+1)%3))
	}
	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, dirty); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/models/engines/audit/stream", "text/csv", strings.NewReader(csvBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	_, summary, errLine := readStream(t, resp.Body)
	if summary == nil || errLine != "" {
		t.Fatalf("stream did not finish cleanly: %q", errLine)
	}
	if summary.NumSuspicious == 0 {
		t.Fatal("polluted stream scored clean; drift cannot fire")
	}
	// Re-induction runs in a background worker; rendezvous before
	// asserting the published successor.
	srv.Monitor().WaitReinductions()

	// The lifecycle must have closed: drift event, re-induction event,
	// version 2 committed with its own baseline.
	q := decode[QualityResponse](t, mustGet(t, ts.URL+"/v1/models/engines/quality"), http.StatusOK)
	if q.Version != 2 {
		t.Fatalf("latest version %d, want 2 (auto re-induction)", q.Version)
	}
	if q.Baseline == nil {
		t.Fatal("successor version lacks a baseline")
	}
	if q.Monitor == nil || len(q.Monitor.Snapshots) == 0 {
		t.Fatalf("no snapshot history: %+v", q.Monitor)
	}
	var drifted, reinduced bool
	for _, e := range q.Monitor.Events {
		switch e.Kind {
		case monitor.EventDrift:
			drifted = true
			// The per-attribute detectors attribute the drift: GBM is the
			// broken column, and the names ride the event over HTTP.
			var hasGBM bool
			for _, a := range e.Attrs {
				hasGBM = hasGBM || a == "GBM"
			}
			if !hasGBM {
				t.Fatalf("drift event did not attribute the broken attribute: %+v", e)
			}
		case monitor.EventReinduced:
			reinduced = true
			if e.NewVersion != 2 {
				t.Fatalf("re-induced to v%d, want 2", e.NewVersion)
			}
		}
	}
	if !drifted || !reinduced {
		t.Fatalf("lifecycle incomplete (drift=%v reinduce=%v): %+v", drifted, reinduced, q.Monitor.Events)
	}
	if q.Monitor.Drift.Drifted {
		t.Fatalf("drift latch not cleared by re-induction: %+v", q.Monitor.Drift)
	}

	// The registry agrees: GET /v1/models/{name} serves the successor.
	got := decode[ModelResponse](t, mustGet(t, ts.URL+"/v1/models/engines"), http.StatusOK)
	if got.Version != 2 || got.Quality == nil {
		t.Fatalf("registry meta wrong after re-induction: v%d quality=%v", got.Version, got.Quality != nil)
	}
}

// TestVersionParam pins the ?version= contract: absent means latest,
// explicit 0 (and anything else that is not a positive integer) is a 400
// — serving latest for an explicit 0 would mask client bugs with
// confidently wrong scores.
func TestVersionParam(t *testing.T) {
	ts := newTestServer(t)
	publishEngines(t, ts, 2000)

	body := `{"row":["404","01","901","1500"]}`
	cases := []struct {
		name    string
		query   string
		status  int
		mention string
	}{
		{"absent means latest", "", http.StatusOK, ""},
		{"explicit latest version", "?version=1", http.StatusOK, ""},
		{"explicit zero is rejected", "?version=0", http.StatusBadRequest, "bad version"},
		{"negative is rejected", "?version=-1", http.StatusBadRequest, "bad version"},
		{"garbage is rejected", "?version=latest", http.StatusBadRequest, "bad version"},
		{"missing version is 404", "?version=99", http.StatusNotFound, "not found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSONBody(t, ts.URL+"/v1/models/engines/audit"+tc.query, body)
			if tc.status == http.StatusOK {
				decode[AuditResponse](t, resp, http.StatusOK)
				return
			}
			e := decode[ErrorResponse](t, resp, tc.status)
			if !strings.Contains(e.Error, tc.mention) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.mention)
			}
		})
	}
}

func postJSONBody(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHeaderMismatchRejectedEverywhere is the serving half of the
// column-misalignment regression: a CSV whose header has the right arity
// but shuffled or renamed columns must be a 400 naming the offending
// columns on induction, buffered audit and streaming audit — never
// silently scored.
func TestHeaderMismatchRejectedEverywhere(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, _ := engineFixture(t, 2000)
	publishEngines(t, ts, 2000)

	// Same arity, swapped BRV/GBM names: every value would land in the
	// wrong column if accepted.
	shuffled := "GBM,KBM,BRV,DISP\n" + strings.SplitN(csvText, "\n", 2)[1]

	requireNamed := func(t *testing.T, e ErrorResponse) {
		t.Helper()
		for _, want := range []string{"header", `"GBM"`, `"BRV"`} {
			if !strings.Contains(e.Error, want) {
				t.Fatalf("error %q does not mention %s", e.Error, want)
			}
		}
	}

	t.Run("induction", func(t *testing.T) {
		e := decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
			Name: "misaligned", Schema: schemaText, CSV: shuffled,
		}), http.StatusBadRequest)
		requireNamed(t, e)
	})
	t.Run("buffered audit", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(shuffled))
		if err != nil {
			t.Fatal(err)
		}
		requireNamed(t, decode[ErrorResponse](t, resp, http.StatusBadRequest))
	})
	t.Run("streaming audit", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models/engines/audit/stream", "text/csv", strings.NewReader(shuffled))
		if err != nil {
			t.Fatal(err)
		}
		requireNamed(t, decode[ErrorResponse](t, resp, http.StatusBadRequest))
	})
}

// TestDeleteClearsMonitorState is the regression test for monitor-state
// poisoning: deleting a model and recreating it under the same name
// (versions restart at 1) must start monitoring from scratch, not
// inherit the deleted model's baseline, windows and reservoir.
func TestDeleteClearsMonitorState(t *testing.T) {
	ts := newTestServer(t)
	tab := publishEngines(t, ts, 2000)

	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, tab); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(csvBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	decode[AuditResponse](t, resp, http.StatusOK)
	if q := decode[QualityResponse](t, mustGet(t, ts.URL+"/v1/models/engines/quality"), http.StatusOK); q.Monitor == nil {
		t.Fatal("no monitor state before delete")
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/engines", nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", del.StatusCode)
	}

	// Recreate under the same name: version restarts at 1, and the
	// monitor must know nothing about it.
	publishEngines(t, ts, 2000)
	q := decode[QualityResponse](t, mustGet(t, ts.URL+"/v1/models/engines/quality"), http.StatusOK)
	if q.Version != 1 {
		t.Fatalf("recreated model version %d, want 1", q.Version)
	}
	if q.Monitor != nil {
		t.Fatalf("recreated model inherited monitor state: %+v", q.Monitor)
	}
}
