package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// engineFixture renders a QUIS-flavoured relation (strong BRV → GBM
// dependency, DISP correlated with BRV) as the text artefacts a client
// would upload: schema text + training CSV, plus the live table for
// crafting audit batches.
func engineFixture(t *testing.T, rows int) (schemaText, csvText string, tab *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501", "600"),
		dataset.NewNominal("KBM", "01", "02"),
		dataset.NewNominal("GBM", "901", "911", "950"),
		dataset.NewNumeric("DISP", 1000, 4000),
	)
	tab = dataset.NewTable(schema)
	rng := rand.New(rand.NewSource(2003))
	row := make([]dataset.Value, 4)
	for i := 0; i < rows; i++ {
		brv := rng.Intn(3)
		disp := 1500 + float64(brv)*1000 + rng.NormFloat64()*80
		if disp < 1000 {
			disp = 1000
		}
		if disp > 4000 {
			disp = 4000
		}
		row[0], row[1], row[2], row[3] = dataset.Nom(brv), dataset.Nom(rng.Intn(2)), dataset.Nom(brv), dataset.Num(disp)
		tab.AppendRow(row)
	}
	var schemaBuf, csvBuf bytes.Buffer
	if err := dataset.WriteSchemaText(&schemaBuf, schema); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(&csvBuf, tab); err != nil {
		t.Fatal(err)
	}
	return schemaBuf.String(), csvBuf.String(), tab
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, wantStatus, raw)
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return v
}

// TestEndToEnd exercises the whole acceptance path: induce a model from an
// uploaded CSV, audit a dirty batch and a single dirty row, and get ranked
// findings with confidences and proposed corrections.
func TestEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, tab := engineFixture(t, 5000)

	// --- publish ---------------------------------------------------------
	// A model trained on clean history needs its pure rules to flag
	// deviations in future loads, hence filter reachable-only (the same
	// reasoning as cmd/audit's -induce default).
	created := decode[ModelResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name:    "engines",
		Schema:  schemaText,
		CSV:     csvText,
		Options: OptionsJSON{MinConfidence: 0.8, Filter: "reachable-only"},
	}), http.StatusCreated)
	if created.Version != 1 || created.TrainRows != tab.NumRows() || created.NumAttrModels == 0 {
		t.Fatalf("unexpected create response: %+v", created)
	}

	// --- list + get ------------------------------------------------------
	list := decode[ListResponse](t, mustGet(t, ts.URL+"/v1/models"), http.StatusOK)
	if len(list.Models) != 1 || list.Models[0].Name != "engines" {
		t.Fatalf("list = %+v", list)
	}
	got := decode[ModelResponse](t, mustGet(t, ts.URL+"/v1/models/engines"), http.StatusOK)
	if got.SchemaHash != created.SchemaHash {
		t.Fatalf("get schema hash %q != create %q", got.SchemaHash, created.SchemaHash)
	}

	// --- audit a dirty single row (JSON) ---------------------------------
	// Take a conforming BRV=404 row from the sample and break the paper's
	// §6.2 dependency BRV=404 → GBM=901 by observing GBM=911.
	schema := tab.Schema()
	brv, gbm := schema.Index("BRV"), schema.Index("GBM")
	dirtyRow := findCleanRow(t, tab, brv, gbm)
	dirtyRow[gbm] = "911"

	single := decode[AuditResponse](t, postJSON(t, ts.URL+"/v1/models/engines/audit",
		AuditRequest{Row: dirtyRow}), http.StatusOK)
	if single.RowsChecked != 1 {
		t.Fatalf("rowsChecked = %d, want 1", single.RowsChecked)
	}
	if single.NumSuspicious != 1 || len(single.Reports) != 1 {
		t.Fatalf("dirty row not flagged: %+v", single)
	}
	rep := single.Reports[0]
	if rep.ErrorConf < 0.8 || rep.Best == nil {
		t.Fatalf("weak report for seeded deviation: %+v", rep)
	}
	gbmFinding := findFinding(rep.Findings, "GBM")
	if gbmFinding == nil {
		t.Fatalf("no GBM finding in %+v", rep.Findings)
	}
	if gbmFinding.Observed != "911" || gbmFinding.Suggestion != "901" {
		t.Fatalf("GBM finding observed %q suggestion %q, want 911 → 901", gbmFinding.Observed, gbmFinding.Suggestion)
	}

	// --- audit a dirty CSV batch with workers=4, ranked output -----------
	dirty := tab.Clone()
	gbmAttr := dirty.Schema().Attr(gbm)
	corrupted := 0
	for r := 0; r < dirty.NumRows() && corrupted < 25; r += 97 {
		if gbmAttr.Format(dirty.Get(r, gbm)) == "901" {
			dirty.Set(r, gbm, gbmAttr.MustNominal("911"))
			corrupted++
		}
	}
	var batch bytes.Buffer
	if err := dataset.WriteCSV(&batch, dirty); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/engines/audit?workers=4", "text/csv", &batch)
	if err != nil {
		t.Fatal(err)
	}
	batchRes := decode[AuditResponse](t, resp, http.StatusOK)
	if batchRes.RowsChecked != dirty.NumRows() {
		t.Fatalf("rowsChecked = %d, want %d", batchRes.RowsChecked, dirty.NumRows())
	}
	if batchRes.NumSuspicious < corrupted/2 || len(batchRes.Reports) != batchRes.NumSuspicious {
		t.Fatalf("batch response shape: corrupted=%d suspicious=%d reports=%d",
			corrupted, batchRes.NumSuspicious, len(batchRes.Reports))
	}
	for i := 1; i < len(batchRes.Reports); i++ {
		if batchRes.Reports[i-1].ErrorConf < batchRes.Reports[i].ErrorConf {
			t.Fatalf("reports not ranked by error confidence at %d", i)
		}
	}

	// --- delete ----------------------------------------------------------
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/engines", nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", delResp.StatusCode)
	}
	decode[ErrorResponse](t, mustGet(t, ts.URL+"/v1/models/engines"), http.StatusNotFound)
}

// TestMultipartInduce publishes through the multipart form path (the curl
// -F shape from the auditd docs).
func TestMultipartInduce(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, _ := engineFixture(t, 1500)

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	mw.WriteField("name", "engines-mp")
	fw, _ := mw.CreateFormFile("schema", "engine.schema")
	io.Copy(fw, strings.NewReader(schemaText))
	fw, _ = mw.CreateFormFile("csv", "history.csv")
	io.Copy(fw, strings.NewReader(csvText))
	mw.WriteField("options", `{"minConfidence":0.8,"filter":"paper"}`)
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/models", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	created := decode[ModelResponse](t, resp, http.StatusCreated)
	if created.Name != "engines-mp" || created.Version != 1 {
		t.Fatalf("multipart create: %+v", created)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	schemaText, csvText, _ := engineFixture(t, 600)

	// Invalid name.
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "../escape", Schema: schemaText, CSV: csvText,
	}), http.StatusBadRequest)

	// Garbage schema.
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "x", Schema: "BRV wat", CSV: csvText,
	}), http.StatusBadRequest)

	// Unknown filter mode.
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "x", Schema: schemaText, CSV: csvText,
		Options: OptionsJSON{Filter: "bogus"},
	}), http.StatusBadRequest)

	// Audit against a model that does not exist.
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models/nope/audit",
		AuditRequest{Row: []string{"404"}}), http.StatusNotFound)

	// Publish one model, then send malformed batches.
	decode[ModelResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name: "ok", Schema: schemaText, CSV: csvText,
	}), http.StatusCreated)
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models/ok/audit",
		AuditRequest{}), http.StatusBadRequest)
	decode[ErrorResponse](t, postJSON(t, ts.URL+"/v1/models/ok/audit",
		AuditRequest{Row: []string{"404", "901"}}), http.StatusBadRequest) // wrong arity
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	health := decode[map[string]any](t, mustGet(t, ts.URL+"/healthz"), http.StatusOK)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// findCleanRow returns the rendered values of a sample row with BRV=404
// and GBM=901 (the strong §6.2 dependency) and no nulls.
func findCleanRow(t *testing.T, tab *dataset.Table, brv, gbm int) []string {
	t.Helper()
	schema := tab.Schema()
	for r := 0; r < tab.NumRows(); r++ {
		if schema.Attr(brv).Format(tab.Get(r, brv)) != "404" ||
			schema.Attr(gbm).Format(tab.Get(r, gbm)) != "901" {
			continue
		}
		hasNull := false
		out := make([]string, schema.Len())
		for c, a := range schema.Attrs() {
			v := tab.Get(r, c)
			if v.IsNull() {
				hasNull = true
				break
			}
			out[c] = a.Format(v)
		}
		if !hasNull {
			return out
		}
	}
	t.Fatal("no clean BRV=404/GBM=901 row in sample")
	return nil
}

func findFinding(fs []FindingJSON, attr string) *FindingJSON {
	for i := range fs {
		if fs[i].Attr == attr {
			return &fs[i]
		}
	}
	return nil
}
