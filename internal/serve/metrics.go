package serve

import "net/http"

// GET /metrics — Prometheus text exposition of the server's whole metric
// registry: scoring and lifecycle series fed by the quality monitor,
// per-route HTTP request counters and latency histograms from the
// middleware, and the process/registry series registered at startup.
//
// The route itself is deliberately not wrapped by the instrumentation
// middleware: a scrape that counted itself would change the registry it
// is rendering, so two scrapes of an otherwise idle server could never
// be byte-identical — and that determinism is what the scrape tests pin.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obsReg.WritePrometheus(w); err != nil {
		s.logger.Printf("serve: writing /metrics: %v", err)
	}
}
