package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/dedup"
	"dataaudit/internal/monitor"
	"dataaudit/internal/obs"
	"dataaudit/internal/registry"
	"dataaudit/internal/shard"
)

// Server is the auditd HTTP service.
type Server struct {
	reg         *registry.Registry
	mux         *http.ServeMux
	started     time.Time
	logger      *log.Logger
	maxBody     int64
	workers     int
	maxBatch    int
	streamChunk int
	streamTopK  int
	monOpts     monitor.Options
	mon         *monitor.Monitor

	// Observability. obsReg is the Prometheus-exposition registry behind
	// GET /metrics; metrics the scoring/lifecycle set shared with the
	// monitor; httpMetrics the per-route request/latency middleware. All
	// nil when metrics are disabled. dashboardOn gates GET /dashboard.
	metricsOn   bool
	dashboardOn bool
	obsReg      *obs.Registry
	metrics     *obs.AuditMetrics
	httpMetrics *obs.HTTPMetrics

	// Coordinator mode: set via WithCoordinator, built in New once the
	// logger and metric registry exist. Both nil on a plain auditd.
	coordOpts *shard.Options
	coord     *shard.Coordinator
}

// Option customizes New.
type Option func(*Server)

// WithMaxBodyBytes caps request body size (default 64 MiB).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithWorkers sets the default scoring pool size (default runtime.NumCPU).
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithMaxBatchRows caps the number of rows per audit request (default
// 1_000_000). The buffered endpoint rejects larger batches outright; the
// streaming endpoint aborts mid-stream once the limit is crossed.
func WithMaxBatchRows(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithStreamChunkSize sets the default scoring-chunk size of the
// streaming audit endpoint (default 1024; clients can override per
// request with ?chunk=, capped at 65536).
func WithStreamChunkSize(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.streamChunk = n
		}
	}
}

// WithStreamTopK sets the default ranking depth of the streaming audit
// endpoint's summary (default 1000; clients override per request with
// ?top=, capped at 10000 — the server never ranks unboundedly).
func WithStreamTopK(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.streamTopK = n
		}
	}
}

// WithLogger sets the request logger (default log.Default()).
func WithLogger(l *log.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithMonitorOptions configures the quality monitor every audit route
// feeds (window size, drift thresholds, auto re-induction). Monitoring
// itself is always on — it costs one aggregate fold per request — and
// auto re-induction stays opt-in via monitor.Options.AutoReinduce.
func WithMonitorOptions(opts monitor.Options) Option {
	return func(s *Server) { s.monOpts = opts }
}

// WithMetrics enables or disables the Prometheus /metrics endpoint and
// the per-route request instrumentation (default enabled). Disabling it
// removes every metric hook: no registry, no middleware, no monitor
// instrumentation — responses on every other route are byte-identical
// either way.
func WithMetrics(enabled bool) Option {
	return func(s *Server) { s.metricsOn = enabled }
}

// WithDashboard enables or disables the embedded quality dashboard at
// GET /dashboard (default enabled). The dashboard is self-contained —
// one embedded HTML page plus its own JSON data route, no external
// assets — and read-only.
func WithDashboard(enabled bool) Option {
	return func(s *Server) { s.dashboardOn = enabled }
}

// New builds a Server over a registry.
func New(reg *registry.Registry, opts ...Option) *Server {
	s := &Server{
		reg:         reg,
		mux:         http.NewServeMux(),
		started:     time.Now(),
		logger:      log.Default(),
		maxBody:     64 << 20,
		workers:     runtime.NumCPU(),
		maxBatch:    1_000_000,
		streamChunk: 1024,
		streamTopK:  1000,
		metricsOn:   true,
		dashboardOn: true,
	}
	for _, o := range opts {
		o(s)
	}
	if s.monOpts.Logger == nil {
		s.monOpts.Logger = s.logger
	}
	if s.monOpts.StateDir == "" {
		// Monitoring state is crash-durable by default when serving: it
		// persists under the registry root, so quality history, drift
		// state and the re-induction reservoir survive a daemon restart
		// against the same -dir. monitor.StateDisabled opts out.
		s.monOpts.StateDir = reg.StateDir()
	}
	if s.metricsOn {
		s.obsReg = obs.NewRegistry()
		s.metrics = obs.NewAuditMetrics(s.obsReg)
		s.httpMetrics = obs.NewHTTPMetrics(s.obsReg)
		if s.monOpts.Metrics == nil {
			s.monOpts.Metrics = s.metrics
		}
		s.registerProcessMetrics()
	}
	s.mon = monitor.New(reg, s.monOpts)
	if s.coordOpts != nil {
		s.initCoordinator()
	}
	// Every buffered route takes the body byte cap; the streaming audit
	// route alone is registered uncapped — bounded memory regardless of
	// upload size is its reason to exist, and its own guards (row limit,
	// per-record byte cap, chunk/worker buffer bound) replace the cap.
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /v1/models", s.limitedBody(s.handleList))
	s.route("POST /v1/models", s.limitedBody(s.handleInduce))
	s.route("GET /v1/models/{name}", s.limitedBody(s.handleGet))
	s.route("GET /v1/models/{name}/quality", s.limitedBody(s.handleQuality))
	s.route("DELETE /v1/models/{name}", s.limitedBody(s.handleDelete))
	s.route("POST /v1/models/{name}/audit", s.limitedBody(s.handleAudit))
	s.route("POST /v1/models/{name}/audit/stream", s.handleAuditStream)
	// The shard-worker half of the protocol is part of every auditd's
	// surface — any instance can serve shards for a coordinator. The
	// shard route is row-bounded (maxBatch) rather than byte-capped,
	// like the streaming route; the replicate route carries one model
	// and takes the ordinary body cap.
	s.route("POST /v1/models/{name}/audit/shard", s.handleAuditShard)
	s.route("PUT /v1/models/{name}/replicate", s.limitedBody(s.handleReplicate))
	if s.coord != nil {
		s.route("GET /v1/shard/workers", s.limitedBody(s.handleShardWorkers))
	}
	if s.metricsOn {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.dashboardOn {
		s.route("GET /dashboard", s.handleDashboard)
		s.route("GET /dashboard/data", s.limitedBody(s.handleDashboardData))
	}
	return s
}

// route registers one mux pattern, wrapping the handler with the HTTP
// instrumentation middleware when metrics are enabled. The metric label
// is the pattern's path ("/v1/models/{name}/audit"), never the raw
// request path — raw paths would mint one series per model name.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	if s.httpMetrics != nil {
		path := pattern
		if i := strings.IndexByte(pattern, ' '); i >= 0 {
			path = pattern[i+1:]
		}
		h = s.httpMetrics.Wrap(path, h)
	}
	s.mux.HandleFunc(pattern, h)
}

// registerProcessMetrics adds the process- and registry-level series:
// uptime, build info, and the model cache's hit/miss/eviction counters
// bridged from the registry's own atomics at scrape time (the registry
// package stays free of the obs dependency).
func (s *Server) registerProcessMetrics() {
	s.obsReg.NewGaugeFunc("dataaudit_uptime_seconds",
		"Seconds since the serving process constructed this server.",
		func() float64 { return time.Since(s.started).Seconds() })
	version, goVersion := buildVersion()
	s.obsReg.NewGaugeVec("dataaudit_build_info",
		"Build metadata; the value is always 1.", "version", "goversion").
		With(version, goVersion).Set(1)
	s.obsReg.NewCounterFunc("dataaudit_registry_cache_hits_total",
		"Model cache hits in the registry.",
		func() uint64 { h, _, _, _ := s.reg.CacheStats(); return h })
	s.obsReg.NewCounterFunc("dataaudit_registry_cache_misses_total",
		"Model cache misses (disk loads) in the registry.",
		func() uint64 { _, m, _, _ := s.reg.CacheStats(); return m })
	s.obsReg.NewCounterFunc("dataaudit_registry_cache_evictions_total",
		"Models evicted from the registry's LRU cache.",
		func() uint64 { _, _, e, _ := s.reg.CacheStats(); return e })
	s.obsReg.NewGaugeFunc("dataaudit_registry_cache_resident",
		"Model versions currently resident in the registry cache.",
		func() float64 { _, _, _, n := s.reg.CacheStats(); return float64(n) })
}

// buildVersion resolves the module version (or VCS revision) and the Go
// toolchain version from the binary's embedded build info.
func buildVersion() (version, goVersion string) {
	version, goVersion = "devel", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
			version = kv.Value[:12]
		}
	}
	return version, goVersion
}

// Monitor exposes the server's quality monitor (tests and embedders).
func (s *Server) Monitor() *monitor.Monitor { return s.mon }

// RouteLatency snapshots one route pattern's request-latency histogram —
// the same series /metrics exports as dataaudit_http_request_seconds.
// The route is the mux pattern's path ("/v1/models/{name}/audit"), and
// the zero snapshot comes back when metrics are disabled. cmd/benchserve
// reads per-route p50/p99 through this instead of parsing a scrape.
func (s *Server) RouteLatency(route string) obs.HistSnapshot {
	if s.httpMetrics == nil {
		return obs.HistSnapshot{}
	}
	return s.httpMetrics.LatencySeconds.With(route).Snapshot()
}

// Close is the graceful-shutdown hook: it waits for in-flight background
// re-inductions and persists every model's monitoring state so quality
// history survives the restart. Call it after the HTTP server has
// drained (no new audits can arrive).
func (s *Server) Close() error { return s.mon.Close() }

// limitedBody applies the body byte cap to one route.
func (s *Server) limitedBody(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		h(w, r)
	}
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("serve: writing response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxWorkersPerRequest bounds the ?workers= override: generous enough to
// oversubscribe for experiments, small enough that a single request
// cannot exhaust the scheduler.
func (s *Server) maxWorkersPerRequest() int {
	max := 4 * runtime.NumCPU()
	if s.workers > max {
		max = s.workers
	}
	return max
}

// versionParam parses ?version= (0 when absent, meaning latest). An
// explicit ?version=0 is rejected: registry versions start at 1, and
// silently serving latest for it would mask a client bug (e.g. an
// uninitialized version field) with confidently wrong scores.
func versionParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("version")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad version %q (versions start at 1; omit the parameter for latest)", v)
	}
	return n, nil
}

// workersParam parses ?workers=, capping the client-requested pool so
// one request cannot spawn an arbitrary number of goroutines. ok is
// false when the parameter is absent.
func (s *Server) workersParam(r *http.Request) (workers int, ok bool, err error) {
	v := r.URL.Query().Get("workers")
	if v == "" {
		return 0, false, nil
	}
	n, perr := strconv.Atoi(v)
	if perr != nil || n < 1 {
		return 0, false, fmt.Errorf("bad workers %q", v)
	}
	if max := s.maxWorkersPerRequest(); n > max {
		n = max
	}
	return n, true, nil
}

// badRequestStatus distinguishes a body that tripped the MaxBytesReader
// limit (413) from one that is merely malformed (400).
func badRequestStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errStatus maps an internal error onto an HTTP status.
func (s *Server) errStatus(err error) int {
	switch {
	case registry.IsNotFound(err):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	metas, err := s.reg.List()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "registry unavailable: %v", err)
		return
	}
	version, goVersion := buildVersion()
	s.writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		Version:       version,
		GoVersion:     goVersion,
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Models:        len(metas),
		Workers:       s.workers,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	metas, err := s.reg.List()
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	if metas == nil {
		metas = []registry.Meta{}
	}
	s.writeJSON(w, http.StatusOK, ListResponse{Models: metas})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Metadata only — never load (or cache-churn) the model itself for a
	// metadata poll.
	meta, err := s.reg.MetaOf(name)
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, ModelResponse{Meta: meta})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Delete(name); err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	// Drop the monitoring state with the model: versions restart at 1 on
	// re-creation, so stale state would otherwise survive the version
	// check and poison the new model's baseline and reservoir.
	s.mon.Forget(name)
	w.WriteHeader(http.StatusNoContent)
}

// handleInduce implements POST /v1/models: parse the uploaded schema and
// training rows (CSV or JSONL), induce a structure model and publish it.
func (s *Server) handleInduce(w http.ResponseWriter, r *http.Request) {
	req, err := decodeInduceRequest(r)
	if err != nil {
		s.writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	if !registry.ValidName(req.Name) {
		s.writeError(w, http.StatusBadRequest, "invalid model name %q", req.Name)
		return
	}
	schema, err := dataset.ParseSchema(strings.NewReader(req.Schema))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "schema: %v", err)
		return
	}
	if req.CSV != "" && req.JSONL != "" {
		s.writeError(w, http.StatusBadRequest, "set either csv or jsonl training rows, not both")
		return
	}
	var tab *dataset.Table
	if req.JSONL != "" {
		tab, err = dataset.ReadAll(dataset.NewJSONLSource(strings.NewReader(req.JSONL), schema))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "jsonl: %v", err)
			return
		}
	} else {
		tab, err = dataset.ReadCSV(strings.NewReader(req.CSV), schema)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "csv: %v", err)
			return
		}
	}
	if tab.NumRows() == 0 {
		s.writeError(w, http.StatusBadRequest, "no training rows")
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "options: %v", err)
		return
	}
	model, err := audit.Induce(tab, opts)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "induction: %v", err)
		return
	}
	// Freeze the quality baseline on the training table so the monitor
	// can measure drift against it from the model's first audit on.
	profile := model.QualityProfile(tab, s.workers)
	meta, err := s.reg.PublishWithQuality(req.Name, model, profile)
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	s.logger.Printf("serve: published %s v%d (%d rows, %s)", meta.Name, meta.Version, meta.TrainRows, meta.Inducer)
	s.writeJSON(w, http.StatusCreated, ModelResponse{Meta: meta})
}

// decodeInduceRequest accepts either a JSON body or a multipart form with
// fields/parts name, schema, csv, jsonl and options (options itself JSON).
func decodeInduceRequest(r *http.Request) (*InduceRequest, error) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "multipart/form-data" {
		if err := r.ParseMultipartForm(32 << 20); err != nil {
			return nil, fmt.Errorf("multipart: %w", err)
		}
		req := &InduceRequest{
			Name:   r.FormValue("name"),
			Schema: r.FormValue("schema"),
			CSV:    r.FormValue("csv"),
			JSONL:  r.FormValue("jsonl"),
		}
		if f, _, err := r.FormFile("schema"); err == nil {
			b, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			req.Schema = string(b)
		}
		if f, _, err := r.FormFile("csv"); err == nil {
			b, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			req.CSV = string(b)
		}
		if f, _, err := r.FormFile("jsonl"); err == nil {
			b, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			req.JSONL = string(b)
		}
		if o := r.FormValue("options"); o != "" {
			if err := json.Unmarshal([]byte(o), &req.Options); err != nil {
				return nil, fmt.Errorf("options: %w", err)
			}
		}
		return req, nil
	}
	var req InduceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, fmt.Errorf("body: %w", err)
	}
	return &req, nil
}

// handleAudit implements POST /v1/models/{name}/audit: score a batch (or a
// single row) against a published model and return the ranked findings.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	version, err := versionParam(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	model, meta, err := s.reg.GetVersion(r.PathValue("name"), version)
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}

	tab, err := s.decodeAuditBatch(r, model.Schema)
	if err != nil {
		s.writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	if tab.NumRows() == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if tab.NumRows() > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge, "batch of %d rows exceeds limit %d", tab.NumRows(), s.maxBatch)
		return
	}

	workers := s.workers
	if n, ok, err := s.workersParam(r); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	} else if ok {
		workers = n
	}

	// Coordinator mode fans the batch out across the worker set and
	// merges — the merged result is byte-identical to the local path, so
	// everything below (monitor fold, ranking, rendering) is shared.
	// ?local=1 is the escape hatch: score in-process even on a
	// coordinator (differential tests diff the two).
	var res *audit.Result
	sharded := s.coord != nil && r.URL.Query().Get("local") != "1"
	if sharded {
		res, err = s.coord.AuditTable(r.Context(), model, meta, tab)
		if err != nil {
			s.writeError(w, http.StatusBadGateway, "sharded audit: %v", err)
			return
		}
	} else {
		res = model.AuditTableParallel(tab, workers)
	}
	s.mon.ObserveBatch(meta, model, tab, res)

	resp := AuditResponse{
		Model:         meta.Name,
		Version:       meta.Version,
		RowsChecked:   tab.NumRows(),
		NumSuspicious: res.NumSuspicious(),
		CheckMillis:   res.CheckTime.Milliseconds(),
		Workers:       workers,
		Reports:       []ReportJSON{},
		AttrDims:      attrDimsJSON(model.Schema, res.Dims),
	}
	if sharded {
		resp.Sharded = true
		resp.ShardWorkers = len(s.coord.Workers())
	}
	if r.URL.Query().Get("dedup") == "1" {
		// The duplicate scan is a second pass over the buffered table —
		// cheap next to scoring (hash + blocked pairwise compare) and
		// strictly opt-in, so the default audit path stays untouched.
		dres, err := dedup.Detect(tab, dedup.Options{})
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "dedup: %v", err)
			return
		}
		resp.Duplicates = duplicatesJSON(model.Schema, dres)
	}
	if r.URL.Query().Get("all") == "1" {
		for i := range res.Reports {
			resp.Reports = append(resp.Reports, reportJSON(model, &res.Reports[i]))
		}
	} else {
		for _, rep := range res.Suspicious() {
			resp.Reports = append(resp.Reports, reportJSON(model, &rep))
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// isCSVType / isJSONLType classify the batch content types both audit
// routes accept beyond the default JSON body.
func isCSVType(ct string) bool { return ct == "text/csv" || ct == "application/csv" }

func isJSONLType(ct string) bool {
	return ct == "application/x-ndjson" || ct == "application/jsonl" || ct == "application/x-jsonlines"
}

// decodeAuditBatch reads the records to score: a CSV body (with header)
// or a JSONL body (one object per line, fields keyed by attribute name)
// when the content type says so, otherwise a JSON AuditRequest.
func (s *Server) decodeAuditBatch(r *http.Request, schema *dataset.Schema) (*dataset.Table, error) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if isCSVType(ct) {
		tab, err := dataset.ReadCSV(r.Body, schema)
		if err != nil {
			return nil, fmt.Errorf("csv: %w", err)
		}
		return tab, nil
	}
	if isJSONLType(ct) {
		tab, err := dataset.ReadAll(dataset.NewJSONLSource(r.Body, schema))
		if err != nil {
			return nil, fmt.Errorf("jsonl: %w", err)
		}
		return tab, nil
	}
	var req AuditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, fmt.Errorf("body: %w", err)
	}
	rows := req.Rows
	if len(req.Row) > 0 {
		if len(rows) > 0 {
			return nil, fmt.Errorf("set either row or rows, not both")
		}
		rows = [][]string{req.Row}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no rows in request")
	}
	return parseRows(schema, rows)
}
