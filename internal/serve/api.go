package serve

import (
	"fmt"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/dedup"
	"dataaudit/internal/registry"
)

// JSON wire types of the auditd API. Cell values travel as strings in the
// attribute's canonical text rendering (the same format the CSV layer
// uses: nulls as "?", dates as ISO 2006-01-02) so that clients never deal
// with the internal domain-index encoding.

// OptionsJSON is the client-facing subset of audit.Options.
type OptionsJSON struct {
	MinConfidence float64             `json:"minConfidence,omitempty"`
	ConfLevel     float64             `json:"confLevel,omitempty"`
	Bins          int                 `json:"bins,omitempty"`
	Inducer       string              `json:"inducer,omitempty"`
	KNNk          int                 `json:"knnK,omitempty"`
	SkipClasses   []string            `json:"skipClasses,omitempty"`
	BaseAttrs     map[string][]string `json:"baseAttrs,omitempty"`
	// Filter is the §5.4 rule-deletion mode: "paper" (default),
	// "reachable-only" or "none".
	Filter string `json:"filter,omitempty"`
}

// ToOptions converts the wire form into audit.Options.
func (o OptionsJSON) ToOptions() (audit.Options, error) {
	opts := audit.Options{
		MinConfidence: o.MinConfidence,
		ConfLevel:     o.ConfLevel,
		Bins:          o.Bins,
		Inducer:       audit.InducerKind(o.Inducer),
		KNNk:          o.KNNk,
		SkipClasses:   o.SkipClasses,
		BaseAttrs:     o.BaseAttrs,
	}
	switch o.Filter {
	case "", "paper":
		opts.Filter = audittree.FilterPaper
	case "reachable-only":
		opts.Filter = audittree.FilterReachableOnly
	case "none":
		opts.Filter = audittree.FilterNone
	default:
		return opts, fmt.Errorf("unknown filter mode %q (want paper, reachable-only or none)", o.Filter)
	}
	return opts, nil
}

// InduceRequest is the JSON body of POST /v1/models (the multipart form
// carries the same fields as parts).
type InduceRequest struct {
	// Name is the registry key to publish under.
	Name string `json:"name"`
	// Schema is the relation schema in the text format of
	// dataset.ParseSchema ("BRV nominal 404,501\nKM numeric 0 200000\n...").
	Schema string `json:"schema"`
	// CSV is the training sample with a header row of attribute names.
	// Exactly one of CSV and JSONL must be set.
	CSV string `json:"csv,omitempty"`
	// JSONL is the training sample as newline-delimited JSON objects,
	// fields keyed by attribute name (dataset.JSONLSource).
	JSONL string `json:"jsonl,omitempty"`
	// Options configure structure induction.
	Options OptionsJSON `json:"options"`
}

// AuditRequest is the JSON body of POST /v1/models/{name}/audit. Exactly
// one of Row and Rows must be set; CSV bodies bypass this type entirely.
type AuditRequest struct {
	// Row is a single record, one rendered value per schema attribute.
	Row []string `json:"row,omitempty"`
	// Rows is a batch of records.
	Rows [][]string `json:"rows,omitempty"`
}

// FindingJSON is one attribute-level deviation with its proposed
// correction.
type FindingJSON struct {
	// Attr is the audited attribute's name.
	Attr string `json:"attr"`
	// Observed and Predicted are class labels (bin labels for discretized
	// numeric attributes); Observed is "?" for null.
	Observed  string `json:"observed"`
	Predicted string `json:"predicted"`
	// PHat / PObs are P(ĉ) and P(c); N the supporting sample size.
	PHat float64 `json:"pHat"`
	PObs float64 `json:"pObs"`
	N    float64 `json:"n"`
	// ErrorConf is Definition 7.
	ErrorConf float64 `json:"errorConf"`
	// Suggestion is the proposed correction (§5.3) in the attribute's text
	// rendering.
	Suggestion string `json:"suggestion"`
}

// ReportJSON is one record's audit outcome.
type ReportJSON struct {
	// Row is the record's position in the submitted batch; ID its record ID.
	Row int   `json:"row"`
	ID  int64 `json:"id"`
	// ErrorConf is the overall error confidence (Definition 8).
	ErrorConf  float64 `json:"errorConf"`
	Suspicious bool    `json:"suspicious"`
	// Best is the finding the overall confidence stems from.
	Best *FindingJSON `json:"best,omitempty"`
	// Findings lists every deviation with positive error confidence.
	Findings []FindingJSON `json:"findings,omitempty"`
	// Description renders the best finding like the paper's §6.2 examples.
	Description string `json:"description,omitempty"`
}

// AuditResponse is the body of POST /v1/models/{name}/audit.
type AuditResponse struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	// RowsChecked / NumSuspicious summarize the batch.
	RowsChecked   int `json:"rowsChecked"`
	NumSuspicious int `json:"numSuspicious"`
	// CheckMillis is the scoring wall time; Workers the pool size used.
	CheckMillis int64 `json:"checkMillis"`
	Workers     int   `json:"workers"`
	// Reports holds the suspicious records ranked by descending error
	// confidence — "ranked according to their associated error confidence"
	// (§6.2) — or every record when the request asked for all=1.
	Reports []ReportJSON `json:"reports"`
	// AttrDims lists the batch's per-attribute quality dimensions
	// (completeness and uniqueness), schema order.
	AttrDims []AttrDimJSON `json:"attrDims,omitempty"`
	// Duplicates is the duplicate scan of the batch, present when the
	// request asked for dedup=1.
	Duplicates *DuplicatesJSON `json:"duplicates,omitempty"`
	// Sharded marks a batch scored by the shard coordinator across
	// worker processes; ShardWorkers is the configured worker count.
	// Absent on locally scored batches (including ?local=1 on a
	// coordinator) — the reports themselves are identical either way.
	Sharded      bool `json:"sharded,omitempty"`
	ShardWorkers int  `json:"shardWorkers,omitempty"`
}

// AttrDimJSON carries one attribute's observed quality dimensions.
type AttrDimJSON struct {
	// Attr is the attribute's name.
	Attr string `json:"attr"`
	// Rows counts observed rows; Nulls the null cells among them.
	Rows  int64 `json:"rows"`
	Nulls int64 `json:"nulls"`
	// NullRate is Nulls/Rows (completeness' complement).
	NullRate float64 `json:"nullRate"`
	// Distinct is the (estimated) distinct non-null value count;
	// Uniqueness the distinct-per-non-null ratio in [0, 1].
	Distinct   int64   `json:"distinct"`
	Uniqueness float64 `json:"uniqueness"`
}

// DuplicateGroupJSON is one set of mutually duplicate records. The first
// row is the canonical record; the rest are its duplicates.
type DuplicateGroupJSON struct {
	Rows []int   `json:"rows"`
	IDs  []int64 `json:"ids"`
	// Exact reports a cell-for-cell identical group; MinSimilarity the
	// smallest member-to-canonical similarity (1 for exact groups).
	Exact         bool    `json:"exact"`
	MinSimilarity float64 `json:"minSimilarity"`
}

// DuplicatesJSON is the duplicate scan of an audited batch (?dedup=1).
type DuplicatesJSON struct {
	// Rows is the number of records scanned.
	Rows int `json:"rows"`
	// Key names the blocking-key attributes of the near pass;
	// KeyDiscovered whether the key was mined from the batch rather than
	// supplied.
	Key           []string `json:"key,omitempty"`
	KeyDiscovered bool     `json:"keyDiscovered,omitempty"`
	// ExactGroups / NearGroups split the group count; DuplicateRows
	// counts non-canonical members; DuplicateRate is their row fraction.
	ExactGroups   int     `json:"exactGroups"`
	NearGroups    int     `json:"nearGroups"`
	DuplicateRows int     `json:"duplicateRows"`
	DuplicateRate float64 `json:"duplicateRate"`
	// BlocksCapped counts near-pass blocks truncated by the block cap —
	// when positive, coverage of those blocks is partial.
	BlocksCapped int `json:"blocksCapped,omitempty"`
	// DetectMillis is the scan wall time.
	DetectMillis int64 `json:"detectMillis"`
	// Groups lists every duplicate group, ordered by canonical row.
	Groups []DuplicateGroupJSON `json:"groups"`
}

// ShardWorkersResponse is the body of GET /v1/shard/workers (coordinator
// mode only).
type ShardWorkersResponse struct {
	Workers  []string `json:"workers"`
	Shards   int      `json:"shards"`
	Strategy string   `json:"strategy"`
}

// ModelResponse is the body of POST /v1/models and GET /v1/models/{name}.
type ModelResponse struct {
	registry.Meta
}

// ListResponse is the body of GET /v1/models.
type ListResponse struct {
	Models []registry.Meta `json:"models"`
}

// HealthzResponse is the body of GET /healthz. The contract is the bare
// 200: probes may ignore the body entirely, and every field here is
// informational.
type HealthzResponse struct {
	Status string `json:"status"`
	// Version is the module version or VCS revision embedded in the
	// binary ("devel" for plain go-build trees); GoVersion the toolchain
	// that built it.
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	// UptimeSeconds counts from server construction; Models is the number
	// of published models; Workers the default scoring pool size.
	UptimeSeconds int64 `json:"uptimeSeconds"`
	Models        int   `json:"models"`
	Workers       int   `json:"workers"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// findingJSON renders a Finding against the model's labels.
func findingJSON(m *audit.Model, f *audit.Finding) FindingJSON {
	attr := m.Schema.Attr(f.Attr)
	out := FindingJSON{
		Attr:       attr.Name,
		Observed:   "?",
		PHat:       f.PHat,
		PObs:       f.PObs,
		N:          f.N,
		ErrorConf:  f.ErrorConf,
		Suggestion: attr.Format(f.Suggestion),
	}
	for _, am := range m.Attrs {
		if am.Class != f.Attr {
			continue
		}
		if f.Observed >= 0 && f.Observed < len(am.Labels) {
			out.Observed = am.Labels[f.Observed]
		}
		if f.Predicted >= 0 && f.Predicted < len(am.Labels) {
			out.Predicted = am.Labels[f.Predicted]
		}
		break
	}
	return out
}

// reportJSON renders a RecordReport.
func reportJSON(m *audit.Model, rep *audit.RecordReport) ReportJSON {
	out := ReportJSON{
		Row:        rep.Row,
		ID:         rep.ID,
		ErrorConf:  rep.ErrorConf,
		Suspicious: rep.Suspicious,
	}
	for i := range rep.Findings {
		out.Findings = append(out.Findings, findingJSON(m, &rep.Findings[i]))
	}
	if rep.Best != nil {
		fj := findingJSON(m, rep.Best)
		out.Best = &fj
		out.Description = m.DescribeFinding(rep.Best)
	}
	return out
}

// parseRows builds a table from rendered string rows against a schema.
// Decoding (including the typed dataset.ErrRowWidth on arity mismatches)
// is the same StringRowsSource path the streaming engine uses.
func parseRows(s *dataset.Schema, rows [][]string) (*dataset.Table, error) {
	return dataset.ReadAll(dataset.NewStringRowsSource(s, rows))
}

// attrDimsJSON renders the per-attribute quality dimensions.
func attrDimsJSON(s *dataset.Schema, dims []audit.AttrDim) []AttrDimJSON {
	out := make([]AttrDimJSON, 0, len(dims))
	for i := range dims {
		d := &dims[i]
		out = append(out, AttrDimJSON{
			Attr:       s.Attr(d.Attr).Name,
			Rows:       d.Rows,
			Nulls:      d.Nulls,
			NullRate:   d.NullRate(),
			Distinct:   d.Distinct(),
			Uniqueness: d.Uniqueness(),
		})
	}
	return out
}

// duplicatesJSON renders a duplicate scan.
func duplicatesJSON(s *dataset.Schema, res *dedup.Result) *DuplicatesJSON {
	out := &DuplicatesJSON{
		Rows:          res.Rows,
		KeyDiscovered: res.KeyDiscovered,
		ExactGroups:   res.ExactGroups,
		NearGroups:    res.NearGroups,
		DuplicateRows: res.DuplicateRows,
		DuplicateRate: res.DuplicateRate(),
		BlocksCapped:  res.BlocksCapped,
		DetectMillis:  res.DetectTime.Milliseconds(),
		Groups:        make([]DuplicateGroupJSON, 0, len(res.Groups)),
	}
	for _, c := range res.Key {
		out.Key = append(out.Key, s.Attr(c).Name)
	}
	for i := range res.Groups {
		g := &res.Groups[i]
		out.Groups = append(out.Groups, DuplicateGroupJSON{
			Rows:          g.Rows,
			IDs:           g.IDs,
			Exact:         g.Exact,
			MinSimilarity: g.MinSimilarity,
		})
	}
	return out
}
