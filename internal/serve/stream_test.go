package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
)

// publishEngines uploads the engine fixture as model "engines" and
// returns the live table for crafting batches.
func publishEngines(t *testing.T, ts *httptest.Server, rows int) *dataset.Table {
	t.Helper()
	schemaText, csvText, tab := engineFixture(t, rows)
	decode[ModelResponse](t, postJSON(t, ts.URL+"/v1/models", InduceRequest{
		Name:    "engines",
		Schema:  schemaText,
		CSV:     csvText,
		Options: OptionsJSON{MinConfidence: 0.8, Filter: "reachable-only"},
	}), http.StatusCreated)
	return tab
}

// corruptGBM breaks the BRV → GBM dependency on up to n spread-out rows
// of a clone and returns the dirty table plus the corrupted count.
func corruptGBM(t *testing.T, tab *dataset.Table, n int) (*dataset.Table, int) {
	t.Helper()
	dirty := tab.Clone()
	gbm := dirty.Schema().Index("GBM")
	gbmAttr := dirty.Schema().Attr(gbm)
	corrupted := 0
	for r := 0; r < dirty.NumRows() && corrupted < n; r += 43 {
		if gbmAttr.Format(dirty.Get(r, gbm)) == "901" {
			dirty.Set(r, gbm, gbmAttr.MustNominal("911"))
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("could not corrupt any row")
	}
	return dirty, corrupted
}

// readStream decodes an NDJSON audit stream into its parts.
func readStream(t *testing.T, body io.Reader) (reports []ReportJSON, summary *StreamSummaryJSON, errLine string) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Report != nil:
			if summary != nil || errLine != "" {
				t.Fatal("report line after terminal line")
			}
			reports = append(reports, *line.Report)
		case line.Summary != nil:
			summary = line.Summary
		case line.Error != "":
			errLine = line.Error
		default:
			t.Fatalf("empty NDJSON line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return reports, summary, errLine
}

// TestStreamEndpointMatchesBatch audits the same dirty CSV through the
// buffered and the streaming endpoint and requires identical verdicts.
func TestStreamEndpointMatchesBatch(t *testing.T) {
	ts := newTestServer(t)
	tab := publishEngines(t, ts, 5000)
	dirty, _ := corruptGBM(t, tab, 25)

	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, dirty); err != nil {
		t.Fatal(err)
	}
	csvText := csvBuf.String()

	batchResp, err := http.Post(ts.URL+"/v1/models/engines/audit?workers=2", "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	batch := decode[AuditResponse](t, batchResp, http.StatusOK)

	resp, err := http.Post(ts.URL+"/v1/models/engines/audit/stream?workers=2&chunk=256&top=5000", "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	reports, summary, errLine := readStream(t, resp.Body)
	if errLine != "" {
		t.Fatalf("stream failed: %s", errLine)
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary.RowsChecked != int64(dirty.NumRows()) {
		t.Fatalf("rowsChecked %d, want %d", summary.RowsChecked, dirty.NumRows())
	}
	if summary.NumSuspicious != int64(batch.NumSuspicious) || len(reports) != batch.NumSuspicious {
		t.Fatalf("stream flagged %d (emitted %d), batch flagged %d",
			summary.NumSuspicious, len(reports), batch.NumSuspicious)
	}
	// Reports are emitted in row order; the batch endpoint ranks by
	// confidence — compare as sets keyed by row.
	batchByRow := make(map[int]ReportJSON, len(batch.Reports))
	for _, rep := range batch.Reports {
		batchByRow[rep.Row] = rep
	}
	prevRow := -1
	for _, rep := range reports {
		if rep.Row <= prevRow {
			t.Fatalf("stream reports out of row order: %d after %d", rep.Row, prevRow)
		}
		prevRow = rep.Row
		want, ok := batchByRow[rep.Row]
		if !ok {
			t.Fatalf("stream flagged row %d, batch did not", rep.Row)
		}
		if rep.ErrorConf != want.ErrorConf || len(rep.Findings) != len(want.Findings) {
			t.Fatalf("row %d diverges: stream %+v batch %+v", rep.Row, rep, want)
		}
	}
	var tallied int64
	for _, tally := range summary.AttrTallies {
		tallied += tally.Suspicious
	}
	if tallied == 0 {
		t.Fatalf("summary has no attribute tallies: %+v", summary.AttrTallies)
	}
	// The summary's ranking must equal the batch endpoint's report order
	// (descending confidence, ties by row).
	if len(summary.Top) != len(batch.Reports) {
		t.Fatalf("summary ranked %d records, batch %d", len(summary.Top), len(batch.Reports))
	}
	for i, tr := range summary.Top {
		if tr.Row != batch.Reports[i].Row || tr.ErrorConf != batch.Reports[i].ErrorConf {
			t.Fatalf("ranking diverges at %d: stream (row %d, %.6f) batch (row %d, %.6f)",
				i, tr.Row, tr.ErrorConf, batch.Reports[i].Row, batch.Reports[i].ErrorConf)
		}
	}
}

// TestStreamEndpointStreamsDuringUpload proves findings flow back while
// the request body is still open: the client holds the upload after the
// first rows, reads a report line, then finishes the upload.
func TestStreamEndpointStreamsDuringUpload(t *testing.T) {
	ts := newTestServer(t)
	tab := publishEngines(t, ts, 3000)
	dirty, _ := corruptGBM(t, tab, 50)

	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, dirty); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(csvBuf.String(), "\n")
	half := len(lines) / 2

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/engines/audit/stream?chunk=64", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")

	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		done <- result{resp, err}
	}()

	// First half of the upload: enough corrupted rows to force report
	// lines out long before EOF.
	if _, err := io.WriteString(pw, strings.Join(lines[:half], "")); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.resp.StatusCode)
	}

	// A report line must arrive while the second half is still unsent.
	sc := bufio.NewScanner(res.resp.Body)
	if !sc.Scan() {
		t.Fatalf("no line before upload finished: %v", sc.Err())
	}
	var first StreamLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Report == nil {
		t.Fatalf("first line is not a report: %q", sc.Text())
	}

	// Finish the upload and drain to the summary.
	if _, err := io.WriteString(pw, strings.Join(lines[half:], "")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	var summary *StreamSummaryJSON
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Error != "" {
			t.Fatalf("stream failed: %s", line.Error)
		}
		if line.Summary != nil {
			summary = line.Summary
		}
	}
	if summary == nil || summary.RowsChecked != int64(dirty.NumRows()) {
		t.Fatalf("summary after duplex stream: %+v", summary)
	}
}

// TestStreamEndpointErrors covers the failure surface: pre-stream
// failures are status codes, mid-stream failures are terminal NDJSON
// error lines on the already-committed 200.
func TestStreamEndpointErrors(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, WithMaxBatchRows(100)).Handler())
	t.Cleanup(ts.Close)
	tab := publishEngines(t, ts, 1200)

	post := func(path, contentType, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("unknown model is 404", func(t *testing.T) {
		decode[ErrorResponse](t, post("/v1/models/nope/audit/stream", "text/csv", "BRV\n404\n"), http.StatusNotFound)
	})
	t.Run("JSON body is 415", func(t *testing.T) {
		decode[ErrorResponse](t, post("/v1/models/engines/audit/stream", "application/json", `{"rows":[]}`), http.StatusUnsupportedMediaType)
	})
	t.Run("bad header is 400", func(t *testing.T) {
		decode[ErrorResponse](t, post("/v1/models/engines/audit/stream", "text/csv", "WAT,NO\n1,2\n"), http.StatusBadRequest)
	})
	t.Run("bad query is 400", func(t *testing.T) {
		decode[ErrorResponse](t, post("/v1/models/engines/audit/stream?workers=zero", "text/csv", "BRV\n"), http.StatusBadRequest)
		// The server bounds its ranking: non-positive top is rejected
		// (the library's -1 = unlimited is not exposed over HTTP).
		decode[ErrorResponse](t, post("/v1/models/engines/audit/stream?top=-1", "text/csv", "BRV\n"), http.StatusBadRequest)
		decode[ErrorResponse](t, post("/v1/models/engines/audit/stream?top=0", "text/csv", "BRV\n"), http.StatusBadRequest)
	})

	t.Run("oversized CSV line fails instead of buffering", func(t *testing.T) {
		body := "BRV,KBM,GBM,DISP\n\"" + strings.Repeat("x", 2<<20) + "\",01,901,2000\n"
		resp := post("/v1/models/engines/audit/stream", "text/csv", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// The limit tripped inside the header read path is also fine.
			return
		}
		_, summary, errLine := readStream(t, resp.Body)
		if summary != nil || !strings.Contains(errLine, "byte limit") {
			t.Fatalf("oversized line not rejected: summary=%v err=%q", summary, errLine)
		}
	})

	t.Run("short row mid-stream is a terminal error line", func(t *testing.T) {
		var csvBuf bytes.Buffer
		if err := dataset.WriteCSV(&csvBuf, tab); err != nil {
			t.Fatal(err)
		}
		body := strings.Join(strings.SplitAfter(csvBuf.String(), "\n")[:50], "") + "404,01\n"
		resp := post("/v1/models/engines/audit/stream?chunk=8", "text/csv", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 (stream already committed)", resp.StatusCode)
		}
		_, summary, errLine := readStream(t, resp.Body)
		if summary != nil {
			t.Fatal("summary on failed stream")
		}
		if !strings.Contains(errLine, "schema has") {
			t.Fatalf("error line %q does not describe the width mismatch", errLine)
		}
	})

	t.Run("row limit aborts with a terminal error line", func(t *testing.T) {
		var csvBuf bytes.Buffer
		if err := dataset.WriteCSV(&csvBuf, tab); err != nil {
			t.Fatal(err)
		}
		resp := post("/v1/models/engines/audit/stream?chunk=16", "text/csv", csvBuf.String())
		defer resp.Body.Close()
		_, summary, errLine := readStream(t, resp.Body)
		if summary != nil {
			t.Fatal("summary despite row limit")
		}
		if !strings.Contains(errLine, "row limit") && !strings.Contains(errLine, "100-row") {
			t.Fatalf("error line %q does not mention the row limit", errLine)
		}
	})
}

// TestAuditBatchMalformedCSV is the buffered endpoint's table-driven
// malformed-CSV contract: every malformed body is a clean 400 whose
// message names the offending line.
func TestAuditBatchMalformedCSV(t *testing.T) {
	ts := newTestServer(t)
	publishEngines(t, ts, 1200)

	cases := []struct {
		name, body, wantIn string
	}{
		{"short row", "BRV,KBM,GBM,DISP\n404,01,901\n", "line 2"},
		{"extra column", "BRV,KBM,GBM,DISP\n404,01,901,2000,extra\n", "line 2"},
		{"bad numeric", "BRV,KBM,GBM,DISP\n404,01,901,banana\n", "line 2"},
		{"unknown nominal", "BRV,KBM,GBM,DISP\n999,01,901,2000\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/models/engines/audit", "text/csv", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			errResp := decode[ErrorResponse](t, resp, http.StatusBadRequest)
			if !strings.Contains(errResp.Error, tc.wantIn) {
				t.Fatalf("error %q does not mention %q", errResp.Error, tc.wantIn)
			}
		})
	}

	// The JSON rows path reports width mismatches with the same typed
	// error rendering.
	resp := postJSON(t, ts.URL+"/v1/models/engines/audit", AuditRequest{Rows: [][]string{{"404", "01"}}})
	errResp := decode[ErrorResponse](t, resp, http.StatusBadRequest)
	if !strings.Contains(errResp.Error, "schema has") {
		t.Fatalf("JSON rows width error %q", errResp.Error)
	}
}
