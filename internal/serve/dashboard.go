package serve

import (
	_ "embed"
	"net/http"
	"time"

	"dataaudit/internal/monitor"
	"dataaudit/internal/registry"
)

// The embedded quality dashboard: one self-contained HTML page (no
// external assets, scripts or fonts — everything it renders comes from
// the bytes below plus its own JSON data route) that draws SPC control
// charts over the monitor's sealed-window history. The charts are the
// paper's quality-over-time view: a p-chart of the per-window suspicious
// rate against binomial control limits, and an individuals/moving-range
// (I-MR) chart of the same series, with drift and lifecycle events
// annotated on the window axis.

//go:embed dashboard.html
var dashboardHTML []byte

// DashboardModel is one model's slice of GET /dashboard/data: the
// registry metadata plus the monitor state (nil before the first
// observed audit).
type DashboardModel struct {
	Meta    registry.Meta  `json:"meta"`
	Quality *monitor.State `json:"quality,omitempty"`
}

// DashboardData is the body of GET /dashboard/data.
type DashboardData struct {
	Now           time.Time        `json:"now"`
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Models        []DashboardModel `json:"models"`
}

// GET /dashboard — the embedded page.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

// GET /dashboard/data — the JSON the page renders from: every published
// model joined with its monitoring state.
func (s *Server) handleDashboardData(w http.ResponseWriter, r *http.Request) {
	metas, err := s.reg.List()
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	data := DashboardData{
		Now:           time.Now().UTC(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Models:        make([]DashboardModel, 0, len(metas)),
	}
	for _, meta := range metas {
		dm := DashboardModel{Meta: meta}
		if st, ok := s.mon.Quality(meta.Name); ok {
			dm.Quality = &st
		}
		data.Models = append(data.Models, dm)
	}
	s.writeJSON(w, http.StatusOK, data)
}
