package serve

import (
	"net/http"

	"dataaudit/internal/audit"
	"dataaudit/internal/monitor"
)

// GET /v1/models/{name}/quality — the continuous-monitoring view of one
// model: the induction-time quality baseline, the windowed snapshot
// history folded from every audit served, the live drift-detector state
// and the lifecycle event log (drift, re-induction). The route reads only
// registry metadata and the monitor's in-memory state; it never loads the
// model.

// QualityResponse is the body of GET /v1/models/{name}/quality.
type QualityResponse struct {
	Model string `json:"model"`
	// Version is the latest committed registry version; the monitor's
	// state (when present) reports which version it is tracking.
	Version int `json:"version"`
	// Baseline is the latest version's induction-time QualityProfile
	// (null for versions published without one).
	Baseline *audit.QualityProfile `json:"baseline,omitempty"`
	// Monitor is the windowed snapshot history, drift state and lifecycle
	// events; null until the model's first audit through this server.
	Monitor *monitor.State `json:"monitor,omitempty"`
}

// handleQuality implements GET /v1/models/{name}/quality.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	meta, err := s.reg.MetaOf(name)
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}
	resp := QualityResponse{Model: meta.Name, Version: meta.Version, Baseline: meta.Quality}
	if st, ok := s.mon.Quality(name); ok {
		resp.Monitor = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}
