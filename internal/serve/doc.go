// Package serve exposes the audit tool as a long-running JSON-over-HTTP
// service — the deployment shape the paper sketches in §2.2: "While the
// time-consuming structure induction can be prepared off-line, new data
// can be checked for deviations and loaded quickly". Models live in an
// internal/registry catalogue shared by every request, so a model is
// loaded (and its classifiers deserialized) once and then scored
// concurrently by any number of audit requests.
//
// # API surface
//
// All bodies JSON unless noted; docs/api.md documents every route field
// by field:
//
//	GET    /healthz                         liveness + model count
//	GET    /v1/models                       list published models
//	POST   /v1/models                       induce + publish (JSON or multipart)
//	GET    /v1/models/{name}                latest metadata
//	DELETE /v1/models/{name}                drop a model
//	POST   /v1/models/{name}/audit          score a batch (JSON rows or text/csv)
//	POST   /v1/models/{name}/audit/stream   bounded-memory scoring (text/csv in, NDJSON out)
//
// # Two scoring paths
//
// The buffered endpoint parses the whole batch into a dataset.Table and
// fans it out over the parallel table scorer (audit.AuditTableParallel);
// it is capped by WithMaxBodyBytes and WithMaxBatchRows and answers with
// one ranked JSON document.
//
// The streaming endpoint decodes the CSV upload incrementally
// (dataset.CSVSource), scores it chunk by chunk (audit.AuditStream) and
// writes suspicious records back as NDJSON lines while the upload is
// still being read (full-duplex HTTP). Server memory stays
// O(chunk × workers + top-K) regardless of upload size, so it is exempt
// from the body byte cap; WithMaxBatchRows still bounds the row count and
// WithStreamChunkSize / WithStreamTopK tune the defaults. Failures before
// the first row are ordinary 4xx JSON responses; once the 200 stream has
// begun, failures arrive as a terminal {"error": ...} line.
//
// # Error envelope
//
// Every non-2xx response body is ErrorResponse: {"error": "<message>"}.
// Malformed rows — wrong arity anywhere, CSV or JSON — carry the typed
// dataset.ErrRowWidth rendering ("row at line N has X values, schema has
// Y attributes").
package serve
