package serve

import (
	"encoding/json"
	"mime"
	"net/http"
	"strconv"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
)

// The streaming audit endpoint: POST /v1/models/{name}/audit/stream
// accepts a text/csv or application/x-ndjson (JSONL) body of unbounded
// length and answers with NDJSON
// (application/x-ndjson), one line per suspicious record as soon as its
// chunk is scored — while the upload is still being read — terminated by
// a summary line. Memory on the server stays O(chunk × workers + top-K)
// regardless of the upload size (audit.AuditStream), which is what lets
// auditd check warehouse-scale batches the buffered endpoint must reject.
//
// Line shapes (exactly one field set per line):
//
//	{"report": {...}}    one suspicious record, row order
//	{"summary": {...}}   terminal line of a successful stream
//	{"error": "..."}     terminal line of a failed stream
//
// Errors detected before the first row (unknown model, bad header, bad
// query parameters) are plain JSON error responses with a 4xx/5xx status;
// once streaming has begun the status is already 200 and failures arrive
// as the terminal error line.

// StreamLine is one NDJSON line of the streaming audit response.
type StreamLine struct {
	// Report is a suspicious record (row order, emitted incrementally).
	Report *ReportJSON `json:"report,omitempty"`
	// Summary terminates a successful stream.
	Summary *StreamSummaryJSON `json:"summary,omitempty"`
	// Error terminates a failed stream.
	Error string `json:"error,omitempty"`
}

// AttrTallyJSON is the per-attribute deviation tally of a stream.
type AttrTallyJSON struct {
	// Attr is the audited attribute's name.
	Attr string `json:"attr"`
	// Deviations counts findings with positive error confidence;
	// Suspicious those at or above the model's minimum confidence.
	Deviations int64 `json:"deviations"`
	Suspicious int64 `json:"suspicious"`
	// MaxErrorConf / MeanErrorConf summarize the deviation strengths.
	MaxErrorConf  float64 `json:"maxErrorConf"`
	MeanErrorConf float64 `json:"meanErrorConf"`
}

// TopRecordJSON is one entry of the summary's confidence ranking — the
// full reports were already emitted as report lines, so the ranking only
// carries the keys needed to find them.
type TopRecordJSON struct {
	Row       int     `json:"row"`
	ID        int64   `json:"id"`
	ErrorConf float64 `json:"errorConf"`
}

// StreamSummaryJSON is the terminal summary line.
type StreamSummaryJSON struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	// RowsChecked / NumSuspicious summarize the whole stream.
	RowsChecked   int64 `json:"rowsChecked"`
	NumSuspicious int64 `json:"numSuspicious"`
	// TopK is the requested ranking depth; TopTruncated reports whether
	// suspicious records beyond it were emitted but not ranked.
	TopK         int  `json:"topK"`
	TopTruncated bool `json:"topTruncated"`
	// CheckMillis is the stream wall time; Workers / ChunkSize the pool
	// geometry used.
	CheckMillis int64 `json:"checkMillis"`
	Workers     int   `json:"workers"`
	ChunkSize   int   `json:"chunkSize"`
	// Top is the top-K confidence ranking (descending error confidence,
	// ties by ascending row) — identical to the buffered endpoint's
	// report order, truncated to TopK.
	Top []TopRecordJSON `json:"top"`
	// AttrTallies lists the per-attribute deviation tallies.
	AttrTallies []AttrTallyJSON `json:"attrTallies"`
	// AttrDims lists the stream's per-attribute quality dimensions
	// (completeness and uniqueness), schema order — identical to the
	// buffered endpoint's attrDims on the same rows.
	AttrDims []AttrDimJSON `json:"attrDims"`
}

// handleAuditStream implements POST /v1/models/{name}/audit/stream.
func (s *Server) handleAuditStream(w http.ResponseWriter, r *http.Request) {
	version, err := versionParam(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	model, meta, err := s.reg.GetVersion(r.PathValue("name"), version)
	if err != nil {
		s.writeError(w, s.errStatus(err), "%v", err)
		return
	}

	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if !isCSVType(ct) && !isJSONLType(ct) {
		s.writeError(w, http.StatusUnsupportedMediaType, "streaming audit needs a text/csv or application/x-ndjson body, got %q", ct)
		return
	}

	opts := audit.StreamOptions{
		ChunkSize: s.streamChunk,
		Workers:   s.workers,
		TopK:      s.streamTopK,
		MaxRows:   int64(s.maxBatch),
	}
	if workers, ok, err := s.workersParam(r); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	} else if ok {
		opts.Workers = workers
	}
	if v := r.URL.Query().Get("chunk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, "bad chunk %q", v)
			return
		}
		if n > maxStreamChunk {
			n = maxStreamChunk
		}
		opts.ChunkSize = n
	}
	if v := r.URL.Query().Get("top"); v != "" {
		// Unlike the library (where TopK < 0 means unlimited), the server
		// keeps the ranking bounded so one request cannot grow its heap
		// with the number of suspicious rows.
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, "bad top %q (want 1..%d)", v, maxStreamTopK)
			return
		}
		if n > maxStreamTopK {
			n = maxStreamTopK
		}
		opts.TopK = n
	}

	// Bound the engine's upfront allocation: AuditStream pre-allocates
	// workers+1 chunk buffers of ChunkSize × width values, and chunk and
	// workers caps alone still allow their product to reach hundreds of
	// MB per request. Shrink the chunk until the buffer pool fits the
	// same order as the buffered endpoints' body cap.
	if width := int64(model.Schema.Len()); width > 0 {
		maxChunk := maxStreamBufferBytes / streamValueBytes / int64(opts.Workers+1) / width
		if maxChunk < 1 {
			maxChunk = 1
		}
		if int64(opts.ChunkSize) > maxChunk {
			opts.ChunkSize = int(maxChunk)
		}
	}

	// The streaming route is exempt from the body byte cap, so bound the
	// one thing the incremental decoder buffers: a single record. Without
	// this, a body with no record boundary — no newline, or an
	// unterminated quoted field spanning newlines — would grow the
	// decoder's buffer to the upload size.
	var src dataset.RowSource
	if isJSONLType(ct) {
		src, err = dataset.NewBoundedJSONLSource(r.Body, model.Schema, maxStreamRecordBytes)
	} else {
		src, err = dataset.NewBoundedCSVSource(r.Body, model.Schema, maxStreamRecordBytes)
	}
	if err != nil {
		s.writeError(w, badRequestStatus(err), "body: %v", err)
		return
	}

	// From here on the response is a 200 NDJSON stream; failures become
	// the terminal error line. Full duplex lets report lines go out while
	// the request body is still being read on HTTP/1.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex() // HTTP/2 always is; HTTP/1 needs opting in
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")

	enc := json.NewEncoder(w)
	emit := func(line StreamLine) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		return rc.Flush()
	}

	opts.OnSuspicious = func(rep *audit.RecordReport) error {
		rj := reportJSON(model, rep)
		return emit(StreamLine{Report: &rj})
	}
	// Feed the quality monitor: rows sampled in source order while the
	// stream runs, the aggregate folded only if the stream succeeds.
	obs := s.mon.Stream(meta, model)
	opts.OnRow = obs.OnRow

	res, err := model.AuditStream(src, opts)
	if err != nil {
		s.logger.Printf("serve: stream %s v%d: %v", meta.Name, meta.Version, err)
		_ = emit(StreamLine{Error: err.Error()})
		return
	}
	obs.Finish(res)

	summary := StreamSummaryJSON{
		Model:         meta.Name,
		Version:       meta.Version,
		RowsChecked:   res.RowsChecked,
		NumSuspicious: res.NumSuspicious,
		TopK:          opts.TopK,
		TopTruncated:  res.TopTruncated,
		CheckMillis:   res.CheckTime.Milliseconds(),
		Workers:       opts.Workers,
		ChunkSize:     opts.ChunkSize,
		Top:           make([]TopRecordJSON, 0, len(res.Top)),
		AttrTallies:   make([]AttrTallyJSON, 0, len(res.Attrs)),
		AttrDims:      attrDimsJSON(model.Schema, res.Dims),
	}
	for i := range res.Top {
		rep := &res.Top[i]
		summary.Top = append(summary.Top, TopRecordJSON{Row: rep.Row, ID: rep.ID, ErrorConf: rep.ErrorConf})
	}
	for _, tally := range res.Attrs {
		tj := AttrTallyJSON{
			Attr:         model.Schema.Attr(tally.Attr).Name,
			Deviations:   tally.Deviations,
			Suspicious:   tally.Suspicious,
			MaxErrorConf: tally.MaxErrorConf,
		}
		if tally.Deviations > 0 {
			tj.MeanErrorConf = tally.SumErrorConf / float64(tally.Deviations)
		}
		summary.AttrTallies = append(summary.AttrTallies, tj)
	}
	_ = emit(StreamLine{Summary: &summary})
}

// maxStreamChunk bounds the client-requested chunk size so one request
// cannot make the server buffer an arbitrarily large scoring unit.
const maxStreamChunk = 1 << 16

// maxStreamTopK bounds the client-requested ranking depth for the same
// reason (each retained report carries its findings).
const maxStreamTopK = 10_000

// maxStreamRecordBytes bounds a single CSV record on the byte-cap-exempt
// streaming route (enforced quote-aware inside the decoder).
const maxStreamRecordBytes = 1 << 20

// maxStreamBufferBytes bounds the scoring pipeline's pre-allocated chunk
// pool per request; streamValueBytes is the in-memory size of one cell.
const (
	maxStreamBufferBytes = 64 << 20
	streamValueBytes     = 16
)
