// Package ruleind implements two classification-rule inducers — the third
// algorithm family evaluated for the QUIS domain in §5 of the paper:
//
//   - 1R (Holte's one-rule classifier): picks the single attribute whose
//     value → majority-class mapping has the lowest training error.
//   - PRISM (Cendrowska's covering algorithm): induces, per class, maximal
//     precision conjunctions of attribute-value tests.
//
// Numeric and date attributes are equal-frequency discretized before
// induction, mirroring the treatment of numeric class attributes in §5.
package ruleind

import (
	"fmt"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// FeatureView discretizes the base attributes into small nominal spaces.
type FeatureView struct {
	Base   []int
	IsNum  []bool
	Disc   []stats.Discretizer // value entries; unused at nominal positions
	Widths []int
}

func newFeatureView(ins *mlcore.Instances, bins int) (*FeatureView, error) {
	schema := ins.Table.Schema()
	fv := &FeatureView{
		Base:   ins.Base,
		IsNum:  make([]bool, len(ins.Base)),
		Disc:   make([]stats.Discretizer, len(ins.Base)),
		Widths: make([]int, len(ins.Base)),
	}
	var vals []float64 // shared across attributes; NewEqualFrequency copies
	for i, attr := range ins.Base {
		a := schema.Attr(attr)
		if a.Type == dataset.NominalType {
			fv.Widths[i] = a.NumValues()
			continue
		}
		fv.IsNum[i] = true
		vals = vals[:0]
		for _, r := range ins.Rows {
			if v := ins.Table.Get(r, attr); !v.IsNull() {
				vals = append(vals, v.Float())
			}
		}
		if len(vals) == 0 {
			// Attribute entirely null in training: single dummy bucket.
			fv.Disc[i] = stats.Discretizer{Reps: []float64{0}}
			fv.Widths[i] = 1
			continue
		}
		d, err := stats.NewEqualFrequency(vals, bins)
		if err != nil {
			return nil, err
		}
		fv.Disc[i] = *d
		fv.Widths[i] = d.NumBins()
	}
	return fv, nil
}

// feature maps base position i of a row to a bucket index, or -1 for null.
func (fv *FeatureView) feature(row []dataset.Value, i int) int {
	v := row[fv.Base[i]]
	if v.IsNull() {
		return -1
	}
	if fv.IsNum[i] {
		return fv.Disc[i].Bin(v.Float())
	}
	return v.NomIdx()
}

// ---------------------------------------------------------------------------
// 1R

// OneRTrainer induces 1R models.
type OneRTrainer struct {
	// Bins is the numeric discretization width (default 6).
	Bins int
	// FV, when non-nil, is reused as the (frozen) feature view instead of
	// deriving discretization bins from the training data. This is the
	// warm re-induction path: against a drifted sample the bins stay
	// frozen, so the incremental tally refresh and a frozen-view retrain
	// are byte-identical.
	FV *FeatureView
}

var _ mlcore.Trainer = (*OneRTrainer)(nil)

// Name implements mlcore.Trainer.
func (t *OneRTrainer) Name() string { return "1r" }

// OneRModel predicts from a single attribute's value buckets.
type OneRModel struct {
	FV      *FeatureView
	AttrPos int // position within FV.base
	// BucketDist[bucket] is the training class distribution of the bucket.
	BucketDist []mlcore.Distribution
	// NullDist covers rows whose chosen attribute is null.
	NullDist mlcore.Distribution
	K        int
	// AllDists[pos][bucket] and AllNull[pos] keep every attribute's
	// tallies (not just the winner's) so Update can refresh the counts
	// and re-pick the best attribute without rescanning the training
	// set. BucketDist/NullDist alias AllDists[AttrPos]/AllNull[AttrPos].
	AllDists [][]mlcore.Distribution
	AllNull  []mlcore.Distribution
}

var _ mlcore.Classifier = (*OneRModel)(nil)
var _ mlcore.IncrementalClassifier = (*OneRModel)(nil)

// Train implements mlcore.Trainer.
func (t *OneRTrainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	bins := t.Bins
	if bins == 0 {
		bins = 6
	}
	fv := t.FV
	if fv == nil {
		var err error
		if fv, err = newFeatureView(ins, bins); err != nil {
			return nil, err
		}
	} else if len(fv.Base) != len(ins.Base) {
		return nil, fmt.Errorf("ruleind: frozen feature view covers %d attributes, instances have %d", len(fv.Base), len(ins.Base))
	}
	allDists := make([][]mlcore.Distribution, len(fv.Base))
	allNull := make([]mlcore.Distribution, len(fv.Base))
	row := make([]dataset.Value, ins.Table.NumCols())
	for pos := range fv.Base {
		dists := make([]mlcore.Distribution, fv.Widths[pos])
		for b := range dists {
			dists[b] = mlcore.NewDistribution(ins.K)
		}
		nullDist := mlcore.NewDistribution(ins.K)
		for i, r := range ins.Rows {
			c := ins.Class[r]
			if c < 0 {
				continue
			}
			ins.Table.RowInto(r, row)
			b := fv.feature(row, pos)
			if b < 0 {
				nullDist.Add(c, ins.Weights[i])
			} else {
				dists[b].Add(c, ins.Weights[i])
			}
		}
		allDists[pos] = dists
		allNull[pos] = nullDist
	}
	m := &OneRModel{FV: fv, K: ins.K, AllDists: allDists, AllNull: allNull}
	if !m.pickBest() {
		return nil, fmt.Errorf("ruleind: no usable attribute for 1R")
	}
	return m, nil
}

// pickBest recomputes each attribute's training error from the tallies
// and selects the winner (lowest error, ties to the lowest position —
// the same deterministic order Train has always used). It reports false
// when no attribute has any training weight.
func (m *OneRModel) pickBest() bool {
	bestPos, bestErr := -1, -1.0
	for pos := range m.AllDists {
		// Training error of the value -> majority mapping.
		errW, totW := 0.0, 0.0
		acc := func(d mlcore.Distribution) {
			if d.N() <= 0 {
				return
			}
			_, pMaj := d.Best()
			errW += (1 - pMaj) * d.N()
			totW += d.N()
		}
		for _, d := range m.AllDists[pos] {
			acc(d)
		}
		acc(m.AllNull[pos])
		if totW <= 0 {
			continue
		}
		rate := errW / totW
		if bestPos < 0 || rate < bestErr {
			bestPos, bestErr = pos, rate
		}
	}
	if bestPos < 0 {
		return false
	}
	m.AttrPos = bestPos
	m.BucketDist = m.AllDists[bestPos]
	m.NullDist = m.AllNull[bestPos]
	return true
}

// Update implements mlcore.IncrementalClassifier: the per-bucket class
// tallies are weight-1-exact under add/subtract, so the delta is applied
// directly and the winning attribute re-picked from the refreshed
// counts. The feature view stays frozen, so the successor is
// gob-byte-identical to a frozen-view retrain on the full set. The
// trainer argument is unused.
func (m *OneRModel) Update(_ mlcore.Trainer, d mlcore.UpdateDelta) (mlcore.Classifier, error) {
	if m.AllDists == nil {
		return nil, fmt.Errorf("ruleind: 1R model predates per-attribute tallies (old gob); full retrain required")
	}
	if d.Added == nil && d.Removed == nil {
		// Full replacement: re-tally from Full against the frozen feature
		// view — the same code path as a frozen-view retrain, so the
		// successor is bit-identical to one.
		if d.Full == nil {
			return nil, fmt.Errorf("ruleind: 1R update requires the full post-delta instance set")
		}
		return (&OneRTrainer{FV: m.FV}).Train(d.Full)
	}
	n := &OneRModel{FV: m.FV, K: m.K}
	n.AllDists = make([][]mlcore.Distribution, len(m.AllDists))
	for pos := range m.AllDists {
		dists := make([]mlcore.Distribution, len(m.AllDists[pos]))
		for b := range dists {
			dists[b] = m.AllDists[pos][b].Clone()
		}
		n.AllDists[pos] = dists
	}
	n.AllNull = make([]mlcore.Distribution, len(m.AllNull))
	for pos := range m.AllNull {
		n.AllNull[pos] = m.AllNull[pos].Clone()
	}

	apply := func(ins *mlcore.Instances, sign float64) {
		if ins == nil {
			return
		}
		row := make([]dataset.Value, ins.Table.NumCols())
		for i, r := range ins.Rows {
			c := ins.Class[r]
			if c < 0 {
				continue
			}
			ins.Table.RowInto(r, row)
			w := sign * ins.Weights[i]
			for pos := range n.AllDists {
				b := n.FV.feature(row, pos)
				switch {
				case b < 0:
					n.AllNull[pos].Add(c, w)
				case b < len(n.AllDists[pos]):
					n.AllDists[pos][b].Add(c, w)
				}
			}
		}
	}
	apply(d.Removed, -1)
	apply(d.Added, +1)
	if !n.pickBest() {
		return nil, fmt.Errorf("ruleind: no usable attribute for 1R after update")
	}
	return n, nil
}

// Predict implements mlcore.Classifier.
func (m *OneRModel) Predict(row []dataset.Value) mlcore.Distribution {
	b := m.FV.feature(row, m.AttrPos)
	if b < 0 {
		return m.NullDist
	}
	return m.BucketDist[b]
}

// PredictInto implements mlcore.Classifier without allocating.
func (m *OneRModel) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	d.CopyFrom(m.Predict(row))
}

// ---------------------------------------------------------------------------
// PRISM

// PrismTrainer induces PRISM covering rules.
type PrismTrainer struct {
	// Bins is the numeric discretization width (default 6).
	Bins int
	// MaxRulesPerClass caps rule induction (default 64).
	MaxRulesPerClass int
	// FV, when non-nil, is reused as the (frozen) feature view instead of
	// deriving discretization bins from the training data — the warm
	// re-induction path (see OneRTrainer.FV).
	FV *FeatureView
}

var _ mlcore.Trainer = (*PrismTrainer)(nil)

// Name implements mlcore.Trainer.
func (t *PrismTrainer) Name() string { return "prism" }

// PrismCond is one attribute-bucket test.
type PrismCond struct {
	Pos    int // position in FV.base
	Bucket int
}

// PrismRule is a conjunction of tests predicting one class.
type PrismRule struct {
	Conds []PrismCond
	Dist  mlcore.Distribution
}

// PrismModel is the ordered rule list.
type PrismModel struct {
	FV      *FeatureView
	Rules   []PrismRule
	Default mlcore.Distribution
	K       int
}

var _ mlcore.Classifier = (*PrismModel)(nil)
var _ mlcore.IncrementalClassifier = (*PrismModel)(nil)

// Update implements mlcore.IncrementalClassifier via warm re-induction:
// the covering search reruns over the full post-delta set, but with the
// model's feature view frozen, so no discretization pass happens and the
// successor stays byte-identical to a frozen-view retrain (and
// quality-equivalent to a cold one). The trainer, when it is a
// *PrismTrainer, supplies the rule-count cap; otherwise the defaults
// apply.
func (m *PrismModel) Update(trainer mlcore.Trainer, d mlcore.UpdateDelta) (mlcore.Classifier, error) {
	if d.Full == nil {
		return nil, fmt.Errorf("ruleind: prism update requires the full post-delta instance set")
	}
	warm := &PrismTrainer{FV: m.FV}
	if pt, ok := trainer.(*PrismTrainer); ok && pt != nil {
		warm.Bins = pt.Bins
		warm.MaxRulesPerClass = pt.MaxRulesPerClass
	}
	return warm.Train(d.Full)
}

// Train implements mlcore.Trainer.
func (t *PrismTrainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	bins := t.Bins
	if bins == 0 {
		bins = 6
	}
	maxRules := t.MaxRulesPerClass
	if maxRules == 0 {
		maxRules = 64
	}
	fv := t.FV
	if fv == nil {
		var err error
		if fv, err = newFeatureView(ins, bins); err != nil {
			return nil, err
		}
	} else if len(fv.Base) != len(ins.Base) {
		return nil, fmt.Errorf("ruleind: frozen feature view covers %d attributes, instances have %d", len(fv.Base), len(ins.Base))
	}

	// Materialize feature buckets per instance.
	type inst struct {
		feats []int
		class int
		w     float64
	}
	var data []inst
	row := make([]dataset.Value, ins.Table.NumCols())
	for i, r := range ins.Rows {
		c := ins.Class[r]
		if c < 0 {
			continue
		}
		ins.Table.RowInto(r, row)
		feats := make([]int, len(fv.Base))
		for pos := range fv.Base {
			feats[pos] = fv.feature(row, pos)
		}
		data = append(data, inst{feats: feats, class: c, w: ins.Weights[i]})
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("ruleind: no instances with a known class value")
	}

	model := &PrismModel{FV: fv, K: ins.K, Default: mlcore.NewDistribution(ins.K)}
	for _, d := range data {
		model.Default.Add(d.class, d.w)
	}

	covers := func(conds []PrismCond, in inst) bool {
		for _, c := range conds {
			if in.feats[c.Pos] != c.Bucket {
				return false
			}
		}
		return true
	}

	for class := 0; class < ins.K; class++ {
		remaining := make([]inst, 0, len(data))
		for _, d := range data {
			remaining = append(remaining, d)
		}
		for ruleCount := 0; ruleCount < maxRules; ruleCount++ {
			// Any positives left?
			hasPos := false
			for _, d := range remaining {
				if d.class == class {
					hasPos = true
					break
				}
			}
			if !hasPos {
				break
			}
			var conds []PrismCond
			pool := remaining
			for len(conds) < len(fv.Base) {
				// Choose the test maximizing precision p/t on the pool.
				bestPrec, bestCover := -1.0, 0.0
				var best PrismCond
				used := make(map[int]bool, len(conds))
				for _, c := range conds {
					used[c.Pos] = true
				}
				for pos := range fv.Base {
					if used[pos] {
						continue
					}
					pw := make([]float64, fv.Widths[pos])
					tw := make([]float64, fv.Widths[pos])
					for _, d := range pool {
						b := d.feats[pos]
						if b < 0 {
							continue
						}
						tw[b] += d.w
						if d.class == class {
							pw[b] += d.w
						}
					}
					for b := range tw {
						if tw[b] <= 0 {
							continue
						}
						prec := pw[b] / tw[b]
						if prec > bestPrec+1e-12 || (prec > bestPrec-1e-12 && pw[b] > bestCover) {
							bestPrec, bestCover = prec, pw[b]
							best = PrismCond{Pos: pos, Bucket: b}
						}
					}
				}
				if bestPrec < 0 || bestCover <= 0 {
					break
				}
				conds = append(conds, best)
				var next []inst
				for _, d := range pool {
					if d.feats[best.Pos] == best.Bucket {
						next = append(next, d)
					}
				}
				pool = next
				if bestPrec >= 1-1e-12 {
					break // perfect rule
				}
			}
			if len(conds) == 0 || len(pool) == 0 {
				break
			}
			dist := mlcore.NewDistribution(ins.K)
			for _, d := range pool {
				dist.Add(d.class, d.w)
			}
			model.Rules = append(model.Rules, PrismRule{Conds: conds, Dist: dist})
			// Remove the covered positives of this class.
			var next []inst
			for _, d := range remaining {
				if d.class == class && covers(conds, d) {
					continue
				}
				next = append(next, d)
			}
			remaining = next
		}
	}
	return model, nil
}

// featStackSize bounds the base-attribute count whose feature buckets fit
// in a stack-allocated buffer during Predict; wider schemas fall back to a
// heap allocation.
const featStackSize = 64

// Predict implements mlcore.Classifier: the first matching rule's training
// distribution, falling back to the global class distribution.
func (m *PrismModel) Predict(row []dataset.Value) mlcore.Distribution {
	var stack [featStackSize]int
	var feats []int
	if len(m.FV.Base) <= featStackSize {
		feats = stack[:len(m.FV.Base)]
	} else {
		feats = make([]int, len(m.FV.Base))
	}
	for pos := range m.FV.Base {
		feats[pos] = m.FV.feature(row, pos)
	}
	for _, r := range m.Rules {
		match := true
		for _, c := range r.Conds {
			if feats[c.Pos] != c.Bucket {
				match = false
				break
			}
		}
		if match {
			return r.Dist
		}
	}
	return m.Default
}

// PredictInto implements mlcore.Classifier without allocating for the
// usual schema widths.
func (m *PrismModel) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	d.CopyFrom(m.Predict(row))
}
