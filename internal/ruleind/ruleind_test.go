package ruleind

import (
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

func riSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("a", "a0", "a1", "a2"),
		dataset.NewNominal("b", "b0", "b1"),
		dataset.NewNumeric("x", 0, 100),
		dataset.NewNominal("class", "c0", "c1", "c2"),
	)
}

func riInstances(t testing.TB, tab *dataset.Table) *mlcore.Instances {
	t.Helper()
	return mlcore.NewInstances(tab, []int{0, 1, 2}, 3, func(r int) int {
		v := tab.Get(r, 3)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
}

// aDrivenTable: class == a (the 1R-winning attribute), b and x random.
func aDrivenTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(riSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := rng.Intn(3)
		tab.AppendRow([]dataset.Value{
			dataset.Nom(a), dataset.Nom(rng.Intn(2)), dataset.Num(rng.Float64() * 100), dataset.Nom(a),
		})
	}
	return tab
}

func TestOneRPicksBestAttribute(t *testing.T) {
	tab := aDrivenTable(t, 600, 51)
	model, err := (&OneRTrainer{}).Train(riInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	m := model.(*OneRModel)
	if m.AttrPos != 0 {
		t.Fatalf("1R should pick attribute a (pos 0), got %d", m.AttrPos)
	}
	correct := 0
	for r := 0; r < tab.NumRows(); r++ {
		d := model.Predict(tab.Row(r))
		best, _ := d.Best()
		if best == tab.Get(r, 3).NomIdx() {
			correct++
		}
	}
	if acc := float64(correct) / float64(tab.NumRows()); acc < 0.99 {
		t.Fatalf("1R accuracy = %g", acc)
	}
}

func TestOneRNumericAttribute(t *testing.T) {
	// Class determined by x's range: 1R must discretize and win with x.
	tab := dataset.NewTable(riSchema(t))
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 600; i++ {
		x := rng.Float64() * 100
		c := 0
		if x > 33 {
			c = 1
		}
		if x > 66 {
			c = 2
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(rng.Intn(3)), dataset.Nom(rng.Intn(2)), dataset.Num(x), dataset.Nom(c)})
	}
	model, err := (&OneRTrainer{Bins: 6}).Train(riInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	m := model.(*OneRModel)
	if m.AttrPos != 2 {
		t.Fatalf("1R should pick the numeric attribute, got pos %d", m.AttrPos)
	}
	correct := 0
	for r := 0; r < tab.NumRows(); r++ {
		d := model.Predict(tab.Row(r))
		best, _ := d.Best()
		if best == tab.Get(r, 3).NomIdx() {
			correct++
		}
	}
	if acc := float64(correct) / float64(tab.NumRows()); acc < 0.9 {
		t.Fatalf("1R numeric accuracy = %g", acc)
	}
}

func TestOneRNullFeatureBucket(t *testing.T) {
	tab := aDrivenTable(t, 100, 53)
	for r := 0; r < 30; r++ {
		tab.Set(r, 0, dataset.Null())
	}
	model, err := (&OneRTrainer{}).Train(riInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	d := model.Predict([]dataset.Value{dataset.Null(), dataset.Nom(0), dataset.Num(5), dataset.Null()})
	if d.K() != 3 {
		t.Fatalf("bad distribution")
	}
}

func TestPrismLearnsConjunction(t *testing.T) {
	// class c1 iff a=a1 ∧ b=b1, else c0 — exactly a PRISM-shaped target.
	tab := dataset.NewTable(riSchema(t))
	rng := rand.New(rand.NewSource(54))
	for i := 0; i < 800; i++ {
		a, b := rng.Intn(3), rng.Intn(2)
		c := 0
		if a == 1 && b == 1 {
			c = 1
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(a), dataset.Nom(b), dataset.Num(50), dataset.Nom(c)})
	}
	model, err := (&PrismTrainer{}).Train(riInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for r := 0; r < tab.NumRows(); r++ {
		d := model.Predict(tab.Row(r))
		best, _ := d.Best()
		if best == tab.Get(r, 3).NomIdx() {
			correct++
		}
	}
	if acc := float64(correct) / float64(tab.NumRows()); acc < 0.99 {
		t.Fatalf("PRISM accuracy = %g", acc)
	}
	pm := model.(*PrismModel)
	if len(pm.Rules) == 0 {
		t.Fatalf("no rules induced")
	}
}

func TestPrismFallbackToDefault(t *testing.T) {
	tab := aDrivenTable(t, 200, 55)
	model, err := (&PrismTrainer{}).Train(riInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	// An all-null row matches no rule: default distribution with support.
	d := model.Predict([]dataset.Value{dataset.Null(), dataset.Null(), dataset.Null(), dataset.Null()})
	if d.N() <= 0 {
		t.Fatalf("default prediction must carry support")
	}
}

func TestTrainersFailWithoutLabels(t *testing.T) {
	tab := aDrivenTable(t, 10, 56)
	for r := 0; r < 10; r++ {
		tab.Set(r, 3, dataset.Null())
	}
	ins := riInstances(t, tab)
	if _, err := (&OneRTrainer{}).Train(ins); err == nil {
		t.Fatalf("1R must fail without labels")
	}
	if _, err := (&PrismTrainer{}).Train(ins); err == nil {
		t.Fatalf("PRISM must fail without labels")
	}
}

func TestTrainerNames(t *testing.T) {
	if (&OneRTrainer{}).Name() != "1r" || (&PrismTrainer{}).Name() != "prism" {
		t.Fatalf("trainer names changed")
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	tab := aDrivenTable(t, 600, 57)
	ins := riInstances(t, tab)
	for _, tr := range []mlcore.Trainer{&OneRTrainer{}, &PrismTrainer{}} {
		t.Run(tr.Name(), func(t *testing.T) {
			model, err := tr.Train(ins)
			if err != nil {
				t.Fatal(err)
			}
			var d mlcore.Distribution
			rng := rand.New(rand.NewSource(58))
			for i := 0; i < 500; i++ {
				row := []dataset.Value{
					dataset.Nom(rng.Intn(3)), dataset.Nom(rng.Intn(2)),
					dataset.Num(rng.Float64() * 100), dataset.Null(),
				}
				if rng.Intn(5) == 0 {
					row[rng.Intn(3)] = dataset.Null()
				}
				want := model.Predict(row)
				model.PredictInto(row, &d)
				if want.Total != d.Total || len(want.Counts) != len(d.Counts) {
					t.Fatalf("row %v: Predict %+v, PredictInto %+v", row, want, d)
				}
				for c := range want.Counts {
					if want.Counts[c] != d.Counts[c] {
						t.Fatalf("row %v class %d: %v vs %v", row, c, want.Counts[c], d.Counts[c])
					}
				}
			}
		})
	}
}
