package ruleind_test

import (
	"testing"

	"dataaudit/internal/mlcore"
	"dataaudit/internal/mlcore/conform"
	"dataaudit/internal/ruleind"
)

// Both rule inducers freeze the discretization bins inside the model, so
// their incremental contract is exactness *against a frozen-view
// retrain*: the Retrain override reuses the base model's FeatureView,
// mirroring what the warm re-induction path does in production.

// TestOneRIncrementalConformance: the 1R tally refresh must reproduce a
// frozen-view retrain byte for byte.
func TestOneRIncrementalConformance(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 3)
	conform.Run(t, conform.Config{
		Trainer: &ruleind.OneRTrainer{},
		Exact:   true,
		Retrain: func(model mlcore.Classifier, full *mlcore.Instances) (mlcore.Classifier, error) {
			return (&ruleind.OneRTrainer{FV: model.(*ruleind.OneRModel).FV}).Train(full)
		},
	}, base, delta)
}

// TestPrismIncrementalConformance: the warm covering rerun must
// reproduce a frozen-view retrain byte for byte.
func TestPrismIncrementalConformance(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 4)
	conform.Run(t, conform.Config{
		Trainer: &ruleind.PrismTrainer{},
		Exact:   true,
		Retrain: func(model mlcore.Classifier, full *mlcore.Instances) (mlcore.Classifier, error) {
			return (&ruleind.PrismTrainer{FV: model.(*ruleind.PrismModel).FV}).Train(full)
		},
	}, base, delta)
}
