// Partial re-induction: rebuild the structure model for a subset of the
// audited attributes instead of the whole relation. This is the audit-layer
// half of the incremental-induction stack — the per-family delta updates
// live behind mlcore.IncrementalClassifier; ReinduceAttrs routes each
// requested attribute to the cheapest sound path and shares the untouched
// AttrModels with the predecessor.

package audit

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// ReinduceMode selects how a re-induced attribute's classifier is rebuilt.
type ReinduceMode string

const (
	// ReinduceIncremental freezes the attribute's discretizer bins and
	// routes through the family's IncrementalClassifier.Update (warm start
	// for trees and rule sets, tally refresh for the count families),
	// falling back to a frozen-bin retrain when the family has no
	// incremental path. The default.
	ReinduceIncremental ReinduceMode = "incremental"
	// ReinduceFull re-induces the attribute from scratch, re-deriving the
	// discretizer from the new table — identical to what Induce would
	// produce for that attribute.
	ReinduceFull ReinduceMode = "full"
)

// ReinduceOptions configure a partial re-induction.
type ReinduceOptions struct {
	// Mode defaults to ReinduceIncremental.
	Mode ReinduceMode
	// Prev, when non-nil, is the previous training table. Incremental mode
	// then hands the families a row-level delta (multiset difference of the
	// two tables) so count-maintained classifiers apply only the changed
	// rows. When nil — e.g. consecutive reservoir samples that share no
	// rows — the delta degenerates to a full replacement and the families
	// rebuild from the new table, still reusing their frozen state.
	Prev *dataset.Table
}

// ReinduceAttrs returns a successor model in which the classifiers for the
// given class attributes (column indices) are re-induced from tab while
// every other AttrModel is shared, pointer-for-pointer, with the receiver.
// The receiver is never mutated — live scorers may keep serving it.
//
// The successor's quality baseline is NOT recomputed here: scoring is cheap
// (the columnar kernels run at ~tens of ns/row) and callers that maintain a
// QualityProfile re-derive it from the successor over their sample; the
// partiality lives in induction, where the cost is.
func (m *Model) ReinduceAttrs(tab *dataset.Table, attrs []int, ropts ReinduceOptions) (*Model, error) {
	opts := m.Opts.WithDefaults()
	if err := compatibleSchema(m.Schema, tab.Schema()); err != nil {
		return nil, fmt.Errorf("audit: reinduce: %w", err)
	}
	mode := ropts.Mode
	if mode == "" {
		mode = ReinduceIncremental
	}
	if mode != ReinduceIncremental && mode != ReinduceFull {
		return nil, fmt.Errorf("audit: reinduce: unknown mode %q", mode)
	}

	start := time.Now()
	n := &Model{
		Schema:    m.Schema,
		Attrs:     append([]*AttrModel(nil), m.Attrs...),
		Opts:      m.Opts,
		TrainRows: tab.NumRows(),
	}

	// The row-level delta is shared by every re-induced attribute, so
	// compute it once up front.
	var addedTab, removedTab *dataset.Table
	if mode == ReinduceIncremental && ropts.Prev != nil {
		addedTab, removedTab = tableDiff(ropts.Prev, tab)
	}

	var scratch []float64
	for _, class := range attrs {
		pos := -1
		for i, am := range n.Attrs {
			if am.Class == class {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("audit: reinduce: attribute %s is not modelled", m.Schema.Attr(class).Name)
		}

		if mode == ReinduceFull {
			am, err := induceAttr(tab, class, opts, &scratch)
			if err != nil {
				return nil, fmt.Errorf("audit: reinduce attribute %s: %w", m.Schema.Attr(class).Name, err)
			}
			if am == nil {
				return nil, fmt.Errorf("audit: reinduce attribute %s: no training signal in the new table", m.Schema.Attr(class).Name)
			}
			n.Attrs[pos] = am
			continue
		}

		am, err := reinduceIncremental(n.Attrs[pos], tab, addedTab, removedTab, opts)
		if err != nil {
			return nil, fmt.Errorf("audit: reinduce attribute %s: %w", m.Schema.Attr(class).Name, err)
		}
		n.Attrs[pos] = am
	}
	n.InduceTime = time.Since(start)
	return n, nil
}

// reinduceIncremental rebuilds one attribute's classifier with frozen
// discretizer bins, class count and labels, preferring the family's
// incremental Update and falling back to a frozen-bin retrain.
func reinduceIncremental(prev *AttrModel, tab, addedTab, removedTab *dataset.Table, opts Options) (*AttrModel, error) {
	am := &AttrModel{
		Class:  prev.Class,
		Base:   prev.Base,
		K:      prev.K,
		Disc:   prev.Disc,
		Labels: prev.Labels,
	}
	insOver := func(t *dataset.Table) *mlcore.Instances {
		return mlcore.NewInstances(t, am.Base, am.K, func(r int) int {
			return am.ClassIndex(t.Get(r, am.Class))
		})
	}
	full := insOver(tab)
	d := mlcore.UpdateDelta{Full: full}
	if addedTab != nil {
		d.Added = insOver(addedTab)
		d.Removed = insOver(removedTab)
	}

	trainer, err := trainerFor(opts)
	if err != nil {
		return nil, err
	}
	if ic, ok := prev.Classifier.(mlcore.IncrementalClassifier); ok {
		if clf, err := ic.Update(trainer, d); err == nil {
			am.Classifier = clf
			return am, nil
		}
		// An unsound incremental path (e.g. a gob-decoded model predating
		// its raw tallies) falls through to a frozen-bin retrain.
	}
	clf, err := trainer.Train(full)
	if err != nil {
		return nil, err
	}
	am.Classifier = clf
	return am, nil
}

// compatibleSchema checks that the new training table still describes the
// relation the model was induced on.
func compatibleSchema(want, got *dataset.Schema) error {
	if want.Len() != got.Len() {
		return fmt.Errorf("schema width changed: model has %d attributes, table has %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		w, g := want.Attr(i), got.Attr(i)
		if w.Name != g.Name || w.Type != g.Type {
			return fmt.Errorf("attribute %d changed: model has %s (%v), table has %s (%v)", i, w.Name, w.Type, g.Name, g.Type)
		}
	}
	return nil
}

// tableDiff computes the multiset row difference between two tables over
// the same schema: added holds rows of cur not matched in prev, removed the
// rows of prev not matched in cur. Matching is by value (record IDs are
// ignored — reservoir samples renumber rows), with null, nominal and
// numeric values keyed distinctly so e.g. Nom(1) never collides with
// Num(1).
func tableDiff(prev, cur *dataset.Table) (added, removed *dataset.Table) {
	counts := make(map[string]int, prev.NumRows())
	prevKeys := make([]string, prev.NumRows())
	row := make([]dataset.Value, prev.NumCols())
	for r := 0; r < prev.NumRows(); r++ {
		k := rowKey(prev.RowInto(r, row))
		prevKeys[r] = k
		counts[k]++
	}
	added = dataset.NewTable(cur.Schema())
	for r := 0; r < cur.NumRows(); r++ {
		cur.RowInto(r, row)
		if k := rowKey(row); counts[k] > 0 {
			counts[k]--
		} else {
			added.AppendRow(row)
		}
	}
	removed = dataset.NewTable(prev.Schema())
	for r := 0; r < prev.NumRows(); r++ {
		if counts[prevKeys[r]] > 0 {
			counts[prevKeys[r]]--
			removed.AppendRow(prev.RowInto(r, row))
		}
	}
	return added, removed
}

// rowKey renders a row as a typed string key for the multiset diff.
func rowKey(row []dataset.Value) string {
	var b strings.Builder
	for i, v := range row {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		switch {
		case v.IsNull():
			b.WriteByte('_')
		case v.IsNominal():
			b.WriteByte('n')
			b.WriteString(strconv.Itoa(v.NomIdx()))
		default:
			b.WriteByte('f')
			b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
		}
	}
	return b.String()
}
