package audit_test

import (
	"math/rand"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/evalx"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// The warm-started families (C4.5, ID3, PRISM, the adjusted audit trees)
// re-search structure from a previous skeleton, so their incremental
// successors are not byte-identical to a cold retrain — the contract is
// quality equivalence: on the polluted QUIS fixture, auditing with the
// warm successor must detect errors with sensitivity and specificity no
// worse (within tolerance) than auditing with a from-scratch model. The
// check is one-sided: a warm tree landing in a *better* local optimum
// than the unpruned cold search (ID3 does, on this fixture) is fine.

func TestReinduceQualityEquivalenceWarmFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("quality-equivalence fixture is expensive")
	}
	sample, err := quis.Generate(quis.Params{NumRecords: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	clean := dataset.NewTable(sample.Data.Schema())
	for r := 0; r < 3000; r++ {
		clean.AppendRow(sample.Data.Row(r))
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	prev, _ := pollute.Run(clean, plan, rand.New(rand.NewSource(42)))
	cur, log := pollute.Run(clean, plan, rand.New(rand.NewSource(43)))

	for _, kind := range []audit.InducerKind{
		audit.InducerC45Audit, audit.InducerC45, audit.InducerID3, audit.InducerPrism,
	} {
		t.Run(string(kind), func(t *testing.T) {
			opts := audit.Options{MinConfidence: 0.8, Inducer: kind}
			m, err := audit.Induce(prev, opts)
			if err != nil {
				t.Fatal(err)
			}
			attrs := make([]int, len(m.Attrs))
			for i, am := range m.Attrs {
				attrs[i] = am.Class
			}
			warm, err := m.ReinduceAttrs(cur, attrs, audit.ReinduceOptions{Prev: prev})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := audit.Induce(cur, opts)
			if err != nil {
				t.Fatal(err)
			}

			warmConf := evalx.Evaluate(cur, log, warm.AuditTable(cur))
			coldConf := evalx.Evaluate(cur, log, cold.AuditTable(cur))
			t.Logf("warm sens=%.4f spec=%.4f, cold sens=%.4f spec=%.4f",
				warmConf.Sensitivity(), warmConf.Specificity(),
				coldConf.Sensitivity(), coldConf.Specificity())
			if d := coldConf.Sensitivity() - warmConf.Sensitivity(); d > 0.10 {
				t.Errorf("warm sensitivity %.4f is %.4f below the cold retrain's %.4f",
					warmConf.Sensitivity(), d, coldConf.Sensitivity())
			}
			if d := coldConf.Specificity() - warmConf.Specificity(); d > 0.05 {
				t.Errorf("warm specificity %.4f is %.4f below the cold retrain's %.4f",
					warmConf.Specificity(), d, coldConf.Specificity())
			}
		})
	}
}
