package audit

import (
	"strings"
	"testing"

	"dataaudit/internal/dataset"
)

func TestExplainRowFindsRootCause(t *testing.T) {
	tab := engineTable(t, 5000, 91)
	// Corrupt BRV on record 0: both the BRV classifier (BRV inconsistent
	// with GBM/DISP) and the GBM classifier (GBM inconsistent with the
	// corrupted BRV) will fire. The single substitution that clears the
	// record is restoring BRV.
	trueBRV := tab.Get(0, 0).NomIdx()
	tab.Set(0, 0, dataset.Nom((trueBRV+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Row(0)
	causes := m.ExplainRow(row)
	if len(causes) == 0 {
		t.Fatalf("no root-cause hypotheses for a suspicious record")
	}
	best := causes[0]
	if best.Attr != 0 {
		for _, c := range causes {
			t.Logf("cause: attr=%d residual=%.3f clears=%v", c.Attr, c.Residual, c.Clears)
		}
		t.Fatalf("best hypothesis should substitute BRV (attr 0), got attr %d", best.Attr)
	}
	if !best.Clears {
		t.Fatalf("restoring BRV must clear the record (residual %.3f)", best.Residual)
	}
	if best.Substitution.NomIdx() != trueBRV {
		t.Fatalf("substitution should restore the original BRV")
	}
	// Hypotheses are ranked by residual.
	for i := 1; i < len(causes); i++ {
		if causes[i].Residual < causes[i-1].Residual-1e-12 {
			t.Fatalf("hypotheses not sorted by residual")
		}
	}
	desc := m.DescribeRootCause(&best)
	if !strings.Contains(desc, "BRV :=") || !strings.Contains(desc, "explains the record") {
		t.Fatalf("DescribeRootCause = %q", desc)
	}
}

func TestExplainRowCleanRecordIsNil(t *testing.T) {
	tab := engineTable(t, 3000, 92)
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if causes := m.ExplainRow(tab.Row(1)); causes != nil {
		t.Fatalf("clean record must yield no hypotheses, got %d", len(causes))
	}
}

func TestExplainRowDoesNotMutateInput(t *testing.T) {
	tab := engineTable(t, 3000, 93)
	tab.Set(0, 2, dataset.Nom((tab.Get(0, 0).NomIdx()+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Row(0)
	before := append([]dataset.Value(nil), row...)
	m.ExplainRow(row)
	for i := range row {
		if !row[i].Equal(before[i]) {
			t.Fatalf("ExplainRow mutated the input row at %d", i)
		}
	}
}
