package audit

import (
	"math/bits"
	"sort"

	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Row-signature memoization. On low-cardinality relations — the common
// case for the quality-auditing workloads the paper targets — most rows
// are exact repeats of an earlier row once numeric values are reduced to
// the comparisons the model actually performs. A rule-set model's entire
// output for a row (every finding, its confidences, the best pick) is a
// pure function of:
//
//   - each nominal attribute's domain index (tries compare indices, and
//     the observed class is the index itself), and
//   - each numeric attribute's *rank* within the finite set of constants
//     it is ever compared against: the thresholds of every trie node
//     testing it plus its own discretizer cuts (which determine the
//     observed class bin). Two values with the same rank are
//     indistinguishable to every kernel.
//
// sigMemo packs those codes into one mixed-radix uint64 per row and
// caches the complete per-row finding set per distinct signature, so a
// repeated row costs one encode + one table probe instead of a full
// descent through every attribute model. Rows with a signature never seen
// before are scored by the regular kernels (restricted to just those
// rows) and their result is inserted, so output is byte-identical to the
// unmemoized path regardless of hit pattern — the differential suite
// exercises exactly that.
//
// The memo is only sound when every attribute model is a compiled
// rule-set trie: families that consume raw numeric values (naive Bayes
// densities, kNN distances) are not rank-invariant, and build leaves the
// memo disabled for them.

// memoMaxEntries bounds the cache (and its finding arena) on
// high-cardinality data; once full, unseen signatures simply keep taking
// the kernel path.
const memoMaxEntries = 1 << 16

// memoEntry is one cached per-row outcome: a segment of the memo's
// finding arena plus the row-relative index of the best finding (valid
// when n > 0 — a finding only exists with positive error confidence, so
// any non-empty row has a best).
type memoEntry struct {
	off  int32
	n    int32
	best int32
}

// sigMemo is the per-scratch signature cache. Not safe for concurrent
// use — like the rest of ChunkScratch it is per-worker state.
type sigMemo struct {
	built bool
	ok    bool
	model *Model

	radix []uint64    // per attribute: size of its code domain
	isNom []bool      // per attribute: nominal (domain-index) encoding
	ranks []rankIndex // per numeric attribute: its rank index

	keys    []uint64 // open-addressed signature table
	vals    []int32  // entry index per slot, -1 = empty
	shift   uint     // fibonacci-hash shift for the current table size
	live    int
	entries []memoEntry
	arena   []Finding

	sig  []uint64 // per-chunk row signatures
	bad  []bool   // per-chunk: row had an out-of-domain code, never memoize
	hit  []int32  // per-chunk: entry index per row, -1 = miss
	miss []int32  // per-chunk: rows that need the kernel path
	rep  []int32  // per-chunk: earlier miss row with the same signature, -1

	// Per-chunk pending table for within-chunk dedup: repeated rows
	// cluster, so most occurrences of a new signature land in the chunk
	// that first sees it — all before the end-of-chunk insert. Probe
	// detects the duplicates and aliases them to the first occurrence, so
	// the kernels score each new signature once per chunk, not once per
	// row.
	pkeys  []uint64
	pvals  []int32
	pused  []int32 // occupied slots, for O(distinct) clearing per chunk
	pshift uint
}

// build derives the encoding from the model, enabling the memo only when
// every attribute model is a rule set with a compiled trie (so the rank
// grids provably cover every comparison) and the combined code space fits
// a uint64 signature.
func (mm *sigMemo) build(m *Model) {
	mm.built, mm.ok, mm.model = true, false, m
	width := m.Schema.Len()
	thresholds := make([][]float64, width)
	// m.Attrs is position-indexed (a model may audit fewer attributes than
	// the schema holds); key the per-column discretizers by Class.
	discByClass := make([]*stats.Discretizer, width)
	for _, am := range m.Attrs {
		discByClass[am.Class] = am.Disc
		rs, isRS := am.Classifier.(*audittree.RuleSet)
		if !isRS {
			return
		}
		if !rs.NumericSplits(func(attr int, thresh float64) {
			thresholds[attr] = append(thresholds[attr], thresh)
		}) {
			return
		}
	}
	mm.radix = make([]uint64, width)
	mm.isNom = make([]bool, width)
	mm.ranks = make([]rankIndex, width)
	product := uint64(1)
	for c := 0; c < width; c++ {
		if m.Schema.Attr(c).Type == dataset.NominalType {
			mm.isNom[c] = true
			// Codes 0 (null) .. domain (last index).
			mm.radix[c] = uint64(len(m.Schema.Attr(c).Domain)) + 1
		} else {
			grid := thresholds[c]
			if disc := discByClass[c]; disc != nil {
				grid = append(grid, disc.Cuts...)
			}
			sort.Float64s(grid)
			grid = dedupFloats(grid)
			mm.ranks[c] = newRankIndex(grid)
			// Codes 0..len(grid) (ranks), len+1 (NaN), len+2 (null).
			mm.radix[c] = uint64(len(grid)) + 3
		}
		if mm.radix[c] == 0 || product > (1<<62)/mm.radix[c] {
			return // signature would overflow; leave the memo disabled
		}
		product *= mm.radix[c]
	}
	mm.grow(1 << 10)
	mm.entries = mm.entries[:0]
	mm.arena = mm.arena[:0]
	mm.live = 0
	mm.ok = true
}

// rankBuckets is the uniform-bucket count of a rankIndex. 256 int32
// starts per numeric attribute stay L1-resident.
const rankBuckets = 256

// rankIndex computes rank(v) = |{g in grid : g < v}| — the number the
// signature encodes for a numeric value. A uniform bucket grid over
// [grid[0], grid[len-1]] narrows the candidate range to (usually) zero or
// one comparison per lookup; the mapping from value to bucket is monotone,
// so scanning from start[b] to start[b+1] is exact, not approximate.
type rankIndex struct {
	grid  []float64
	lo    float64
	scale float64 // 0 disables the buckets (tiny or degenerate grid)
	start []int32 // rankBuckets+1 first-grid-index-per-bucket offsets
}

func newRankIndex(grid []float64) rankIndex {
	ri := rankIndex{grid: grid}
	if len(grid) < 2 || grid[len(grid)-1] <= grid[0] {
		return ri
	}
	ri.lo = grid[0]
	ri.scale = float64(rankBuckets-1) / (grid[len(grid)-1] - grid[0])
	ri.start = make([]int32, rankBuckets+1)
	i := 0
	for b := 0; b <= rankBuckets; b++ {
		for i < len(grid) && ri.bucket(grid[i]) < b {
			i++
		}
		ri.start[b] = int32(i)
	}
	return ri
}

// bucket maps a non-NaN value to its bucket, clamping before the
// float-to-int conversion (out-of-range conversions are undefined).
func (ri *rankIndex) bucket(v float64) int {
	t := (v - ri.lo) * ri.scale
	if t <= 0 {
		return 0
	}
	if t >= rankBuckets-1 {
		return rankBuckets - 1
	}
	return int(t)
}

// rank returns |{g in grid : g < v}| for a non-NaN v.
func (ri *rankIndex) rank(v float64) int {
	if ri.scale == 0 {
		r := 0
		for r < len(ri.grid) && ri.grid[r] < v {
			r++
		}
		return r
	}
	b := ri.bucket(v)
	i := int(ri.start[b])
	end := int(ri.start[b+1])
	for i < end && ri.grid[i] < v {
		i++
	}
	return i
}

// dedupFloats removes adjacent duplicates from a sorted slice in place.
func dedupFloats(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// encode fills the per-row signatures for the chunk, columnar per
// attribute. A row whose nominal code falls outside the attribute's
// domain (possible only for chunks built outside the validated decode
// path) is flagged bad: it still scores through the kernels but is never
// looked up or inserted, so a malformed code can't alias another row's
// cached outcome.
func (mm *sigMemo) encode(ck *dataset.ColumnChunk) {
	n := ck.Rows()
	if cap(mm.sig) < n {
		mm.sig = make([]uint64, n)
		mm.bad = make([]bool, n)
	}
	sig := mm.sig[:n]
	bad := mm.bad[:n]
	for r := range sig {
		sig[r] = 0
		bad[r] = false
	}
	for c, rad := range mm.radix {
		col := ck.Col(c)
		if mm.isNom[c] {
			noms := col.Nom
			for r := 0; r < n; r++ {
				// Nulls are stored as -1, so +1 maps the column onto
				// 0..domain without a bitmap load.
				code := uint64(noms[r] + 1)
				if code >= rad {
					bad[r] = true
					code = 0
				}
				sig[r] = sig[r]*rad + code
			}
		} else {
			ri := &mm.ranks[c]
			nan := uint64(len(ri.grid)) + 1
			null := nan + 1
			nums := col.Num
			grid, start, lo, scale := ri.grid, ri.start, ri.lo, ri.scale
			for r := 0; r < n; r++ {
				var code uint64
				if col.Null(r) {
					code = null
				} else if v := nums[r]; v != v {
					// A genuine NaN value: distinct from null (the
					// observed-class bin differs) and from any rank (it
					// fails both sides of every threshold).
					code = nan
				} else if scale != 0 {
					// rankIndex.rank, inlined for the hot loop.
					t := (v - lo) * scale
					b := 0
					if t >= rankBuckets-1 {
						b = rankBuckets - 1
					} else if t > 0 {
						b = int(t)
					}
					i := int(start[b])
					end := int(start[b+1])
					for i < end && grid[i] < v {
						i++
					}
					code = uint64(i)
				} else {
					code = uint64(ri.rank(v))
				}
				sig[r] = sig[r]*rad + code
			}
		}
	}
}

// probe looks the chunk's signatures up, recording the entry index per
// row and collecting the rows that need the kernel path. Miss rows whose
// signature already missed earlier in the same chunk are not returned:
// they are aliased (rep) to that first occurrence and assembled by
// copying its freshly scored segment. Bad rows are always returned and
// never aliased — their signatures are unreliable.
func (mm *sigMemo) probe(n int) []int32 {
	if cap(mm.hit) < n {
		mm.hit = make([]int32, n)
		mm.rep = make([]int32, n)
		mm.miss = make([]int32, 0, n)
	}
	mm.hit = mm.hit[:n]
	mm.rep = mm.rep[:n]
	mm.miss = mm.miss[:0]

	psize := 1
	for psize < 2*n {
		psize <<= 1
	}
	if len(mm.pvals) < psize {
		mm.pkeys = make([]uint64, psize)
		mm.pvals = make([]int32, psize)
		for i := range mm.pvals {
			mm.pvals[i] = -1
		}
		mm.pshift = 64 - uint(bits.Len64(uint64(psize-1)))
	}
	for _, i := range mm.pused {
		mm.pvals[i] = -1
	}
	mm.pused = mm.pused[:0]
	pmask := uint64(len(mm.pvals) - 1)

	for r := 0; r < n; r++ {
		mm.rep[r] = -1
		if mm.bad[r] {
			mm.hit[r] = -1
			mm.miss = append(mm.miss, int32(r))
			continue
		}
		sig := mm.sig[r]
		e := mm.find(sig)
		mm.hit[r] = e
		if e >= 0 {
			continue
		}
		i := (sig * 0x9E3779B97F4A7C15) >> mm.pshift
		for {
			v := mm.pvals[i]
			if v < 0 {
				mm.pkeys[i], mm.pvals[i] = sig, int32(r)
				mm.pused = append(mm.pused, int32(i))
				mm.miss = append(mm.miss, int32(r))
				break
			}
			if mm.pkeys[i] == sig {
				mm.rep[r] = v
				break
			}
			i = (i + 1) & pmask
		}
	}
	return mm.miss
}

// find returns the entry index for a signature, or -1.
func (mm *sigMemo) find(sig uint64) int32 {
	mask := uint64(len(mm.keys) - 1)
	i := (sig * 0x9E3779B97F4A7C15) >> mm.shift
	for {
		v := mm.vals[i]
		if v < 0 || mm.keys[i] == sig {
			return v
		}
		i = (i + 1) & mask
	}
}

// insert adds a signature -> entry mapping (the caller has checked it is
// absent) unless the cache is full.
func (mm *sigMemo) insert(sig uint64, entry int32) {
	if mm.live >= memoMaxEntries {
		return
	}
	if (mm.live+1)*4 > len(mm.keys)*3 {
		mm.grow(len(mm.keys) * 2)
	}
	mask := uint64(len(mm.keys) - 1)
	i := (sig * 0x9E3779B97F4A7C15) >> mm.shift
	for mm.vals[i] >= 0 {
		i = (i + 1) & mask
	}
	mm.keys[i], mm.vals[i] = sig, entry
	mm.live++
}

// grow rehashes the table into a larger power-of-two size.
func (mm *sigMemo) grow(size int) {
	oldKeys, oldVals := mm.keys, mm.vals
	mm.keys = make([]uint64, size)
	mm.vals = make([]int32, size)
	for i := range mm.vals {
		mm.vals[i] = -1
	}
	mm.shift = 64 - uint(bits.Len64(uint64(size-1)))
	mask := uint64(size - 1)
	for i, v := range oldVals {
		if v < 0 {
			continue
		}
		k := oldKeys[i]
		j := (k * 0x9E3779B97F4A7C15) >> mm.shift
		for mm.vals[j] >= 0 {
			j = (j + 1) & mask
		}
		mm.keys[j], mm.vals[j] = k, v
	}
}

// remember captures a freshly scored row's findings segment as the cached
// outcome for its signature.
func (mm *sigMemo) remember(sig uint64, findings []Finding, bestRel int32) {
	if mm.live >= memoMaxEntries {
		return
	}
	e := memoEntry{off: int32(len(mm.arena)), n: int32(len(findings)), best: bestRel}
	mm.arena = append(mm.arena, findings...)
	mm.entries = append(mm.entries, e)
	mm.insert(sig, int32(len(mm.entries)-1))
}
