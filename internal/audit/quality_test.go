package audit

import (
	"math/rand"
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
)

func qualityFixture(t *testing.T, rows int) (*Model, *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501"),
		dataset.NewNominal("GBM", "901", "911"),
		dataset.NewNumeric("DISP", 1000, 4000),
	)
	tab := dataset.NewTable(schema)
	rng := rand.New(rand.NewSource(42))
	row := make([]dataset.Value, 3)
	for i := 0; i < rows; i++ {
		brv := rng.Intn(2)
		row[0], row[1] = dataset.Nom(brv), dataset.Nom(brv)
		if rng.Intn(20) == 0 {
			row[1] = dataset.Nom(1 - brv) // a few contradictions
		}
		row[2] = dataset.Num(1500 + float64(brv)*1000 + rng.NormFloat64()*50)
		if rng.Intn(25) == 0 {
			row[2] = dataset.Null() // and a few nulls
		}
		tab.AppendRow(row)
	}
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return m, tab
}

// TestQualityProfile pins the baseline computation: rates normalized by
// rows, null rates counted from the table, histograms consistent with the
// deviation counts, and the parallel path identical to the sequential.
func TestQualityProfile(t *testing.T) {
	m, tab := qualityFixture(t, 2000)
	p := m.QualityProfile(tab, 1)

	if p.Rows != int64(tab.NumRows()) {
		t.Fatalf("Rows = %d, want %d", p.Rows, tab.NumRows())
	}
	if p.SuspiciousRate < 0 || p.SuspiciousRate > 1 {
		t.Fatalf("SuspiciousRate out of range: %v", p.SuspiciousRate)
	}
	if len(p.Attrs) != len(m.Attrs) {
		t.Fatalf("%d attr baselines for %d attr models", len(p.Attrs), len(m.Attrs))
	}
	for _, aq := range p.Attrs {
		if aq.Name != m.Schema.Attr(aq.Attr).Name {
			t.Fatalf("attr %d misnamed %q", aq.Attr, aq.Name)
		}
		if aq.DeviationRate < aq.SuspiciousRate {
			t.Fatalf("%s: suspicious rate %v exceeds deviation rate %v", aq.Name, aq.SuspiciousRate, aq.DeviationRate)
		}
		var hist int64
		for _, c := range aq.ConfHist {
			hist += c
		}
		if want := int64(aq.DeviationRate * float64(p.Rows)); abs64(hist-want) > 1 {
			t.Fatalf("%s: histogram sums to %d, deviation count is %d", aq.Name, hist, want)
		}
	}
	// The DISP column was nulled ~1/25 of the time.
	var disp *AttrQuality
	for i := range p.Attrs {
		if p.Attrs[i].Name == "DISP" {
			disp = &p.Attrs[i]
		}
	}
	if disp == nil || disp.NullRate < 0.01 || disp.NullRate > 0.1 {
		t.Fatalf("DISP null rate implausible: %+v", disp)
	}

	// The profile must not depend on the scoring pool geometry.
	for _, workers := range []int{0, 4, 8} {
		if q := m.QualityProfile(tab, workers); !reflect.DeepEqual(p, q) {
			t.Fatalf("profile differs at %d workers", workers)
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestConfHistBucket pins the bucket edges.
func TestConfHistBucket(t *testing.T) {
	cases := []struct {
		conf float64
		want int
	}{
		{0.0001, 0}, {0.05, 0}, {0.1, 1}, {0.55, 5}, {0.9999, 9}, {1.0, 9},
	}
	for _, tc := range cases {
		if got := ConfHistBucket(tc.conf); got != tc.want {
			t.Fatalf("ConfHistBucket(%v) = %d, want %d", tc.conf, got, tc.want)
		}
	}
}

// TestQualityProfileDimensions pins the new quality dimensions: distinct
// counts and uniqueness come from the audit's Dims, duplicate rate from
// verified exact-copy counting.
func TestQualityProfileDimensions(t *testing.T) {
	m, tab := qualityFixture(t, 2000)
	// The random fixture already contains natural exact duplicates (three
	// narrow columns); appending 40 copies must raise the verified
	// duplicate count by exactly 40.
	before := int64(m.QualityProfile(tab, 1).DuplicateRate*float64(tab.NumRows()) + 0.5)
	for r := 0; r < 40; r++ {
		tab.DuplicateRow(r)
	}
	p := m.QualityProfile(tab, 1)
	after := int64(p.DuplicateRate*float64(tab.NumRows()) + 0.5)
	if after != before+40 {
		t.Fatalf("duplicate count went %d -> %d after appending 40 copies", before, after)
	}
	for _, aq := range p.Attrs {
		if aq.Distinct <= 0 {
			t.Errorf("%s: Distinct = %d, want > 0", aq.Name, aq.Distinct)
		}
		if aq.Uniqueness < 0 || aq.Uniqueness > 1 {
			t.Errorf("%s: Uniqueness out of range: %g", aq.Name, aq.Uniqueness)
		}
		switch aq.Name {
		case "BRV", "GBM":
			if aq.Distinct != 2 {
				t.Errorf("%s: Distinct = %d, want 2 (binary domain)", aq.Name, aq.Distinct)
			}
			if aq.Uniqueness > 0.01 {
				t.Errorf("%s: Uniqueness = %g, want near 0 for a binary column", aq.Name, aq.Uniqueness)
			}
		case "DISP":
			if aq.Uniqueness < 0.5 {
				t.Errorf("DISP: Uniqueness = %g, want high for a continuous column", aq.Uniqueness)
			}
		}
	}

	// A hand-built Result without Dims must yield the identical profile:
	// the condenser measures the table directly in that case.
	res := m.AuditTable(tab)
	res.Dims = nil
	q := m.QualityProfileFromResult(tab, res)
	p2 := m.QualityProfile(tab, 1)
	if !reflect.DeepEqual(p2, q) {
		t.Fatalf("profile from dims-less result differs from dims-backed profile")
	}
}
