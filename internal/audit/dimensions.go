package audit

import (
	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Quality dimensions beyond deviation detection: per-attribute
// completeness (null rate) and uniqueness (distinct-value ratio), in the
// sense of the measurement-tool surveys' core dimension catalogue. They
// are folded into every audit Result so the monitor can watch them drift
// and the serving layer can expose them without a second table scan.
//
// The accumulators are built exclusively from set-union and sum
// operations (null counts, domain-occupancy bitmaps, bottom-k hash
// sketches), so any partition of the rows — sequential chunks, the
// parallel pool's spans, shard workers in other processes — folds to a
// byte-identical []AttrDim. The differential tests gob-compare whole
// Results across those paths and rely on this.

// AttrDim carries the observed quality dimensions of one schema column.
type AttrDim struct {
	// Attr is the schema column index.
	Attr int
	// Rows counts observed rows, Nulls the null cells among them.
	Nulls int64
	Rows  int64
	// NomSeen marks the occupied domain indices of a nominal column
	// (nil for number-like columns).
	NomSeen []bool
	// Sketch estimates the distinct count of a numeric or date column
	// (nil for nominal columns). NaN payloads are not folded in.
	Sketch *stats.KMV
}

// NullRate is the fraction of null cells (completeness' complement).
func (d *AttrDim) NullRate() float64 {
	if d.Rows == 0 {
		return 0
	}
	return float64(d.Nulls) / float64(d.Rows)
}

// Distinct is the (estimated) number of distinct non-null values.
func (d *AttrDim) Distinct() int64 {
	if d.NomSeen != nil {
		var n int64
		for _, seen := range d.NomSeen {
			if seen {
				n++
			}
		}
		return n
	}
	if d.Sketch == nil {
		return 0
	}
	return d.Sketch.Distinct()
}

// Uniqueness is distinct non-null values per non-null cell in [0, 1]:
// 1 for a key-like column, near 0 for a heavily repeated one.
func (d *AttrDim) Uniqueness() float64 {
	nonNull := d.Rows - d.Nulls
	if nonNull <= 0 {
		return 0
	}
	u := float64(d.Distinct()) / float64(nonNull)
	if u > 1 {
		u = 1
	}
	return u
}

// clone deep-copies the dimension.
func (d *AttrDim) clone() AttrDim {
	cp := AttrDim{Attr: d.Attr, Nulls: d.Nulls, Rows: d.Rows}
	if d.NomSeen != nil {
		cp.NomSeen = append(make([]bool, 0, len(d.NomSeen)), d.NomSeen...)
	}
	cp.Sketch = d.Sketch.Clone()
	return cp
}

// merge folds o into d. All operations commute, so merge order never
// changes the outcome.
func (d *AttrDim) merge(o *AttrDim) {
	d.Nulls += o.Nulls
	d.Rows += o.Rows
	for i, seen := range o.NomSeen {
		if seen {
			d.NomSeen[i] = true
		}
	}
	if d.Sketch != nil && o.Sketch != nil {
		d.Sketch.Merge(o.Sketch)
	}
}

// CloneDims deep-copies a dimension slice (nil in, nil out).
func CloneDims(dims []AttrDim) []AttrDim {
	if dims == nil {
		return nil
	}
	out := make([]AttrDim, len(dims))
	for i := range dims {
		out[i] = dims[i].clone()
	}
	return out
}

// MergeDims folds src into dst in place. The slices must describe the
// same schema (same length, same per-attribute shapes).
func MergeDims(dst, src []AttrDim) {
	for i := range src {
		dst[i].merge(&src[i])
	}
}

// DimTracker accumulates AttrDims over a stream of column chunks. One
// tracker per goroutine; merge the trackers afterwards.
type DimTracker struct {
	dims []AttrDim
}

// NewDimTracker returns a tracker with empty accumulators shaped by the
// schema: domain-occupancy slices for nominal attributes, distinct
// sketches for number-like ones.
func NewDimTracker(s *dataset.Schema) *DimTracker {
	t := &DimTracker{dims: make([]AttrDim, s.Len())}
	for c := 0; c < s.Len(); c++ {
		a := s.Attr(c)
		d := &t.dims[c]
		d.Attr = c
		if a.IsNumberLike() {
			d.Sketch = stats.NewKMV(stats.DefaultKMVSize)
		} else {
			d.NomSeen = make([]bool, len(a.Domain))
		}
	}
	return t
}

// ObserveChunk folds one chunk into the tracker. Cost per row is a few
// stores (nominal) or one hash and compare (numeric), so it rides the
// chunked scoring loops without disturbing their zero-allocation steady
// state.
func (t *DimTracker) ObserveChunk(ck *dataset.ColumnChunk) {
	n := ck.Rows()
	if n == 0 {
		return
	}
	for c := range t.dims {
		d := &t.dims[c]
		col := ck.Col(c)
		d.Rows += int64(n)
		d.Nulls += col.NullCount(n)
		if d.NomSeen != nil {
			seen := d.NomSeen
			for _, v := range col.Nom[:n] {
				if v >= 0 {
					seen[v] = true
				}
			}
			continue
		}
		sk := d.Sketch
		for _, v := range col.Num[:n] {
			if v == v { // skips in-band nulls and NaN payloads
				sk.Add(dataset.HashFloat(v))
			}
		}
	}
}

// Dims returns the accumulated dimensions. The caller owns the slice; the
// tracker must not be reused afterwards.
func (t *DimTracker) Dims() []AttrDim { return t.dims }

// TableDims computes the quality dimensions of a whole table through the
// same chunked accumulator the scoring paths use, so the results compare
// byte-identically.
func TableDims(tab *dataset.Table) []AttrDim {
	tr := NewDimTracker(tab.Schema())
	ck := dataset.NewColumnChunk(tab.Schema())
	n := tab.NumRows()
	for lo := 0; lo < n; lo += batchChunkRows {
		hi := min(lo+batchChunkRows, n)
		tab.ChunkInto(ck, lo, hi)
		tr.ObserveChunk(ck)
	}
	return tr.Dims()
}
