package audit

import (
	"testing"

	"dataaudit/internal/dataset"
)

// BenchmarkCheckChunk measures the columnar scoring core alone on a
// pre-filled chunk — the steady-state per-row cost with fill and report
// materialization excluded.
func BenchmarkCheckChunk(b *testing.B) {
	model, dirty := streamBenchSetup(b, 50000)
	n := dirty.NumRows()
	ck := dataset.NewColumnChunk(dirty.Schema())
	scratch := NewChunkScratch(model)
	sus := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sus = 0
		for lo := 0; lo < n; lo += batchChunkRows {
			hi := min(lo+batchChunkRows, n)
			dirty.ChunkInto(ck, lo, hi)
			reps := model.CheckChunk(ck, int64(lo), scratch)
			for j := range reps {
				if reps[j].Suspicious {
					sus++
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sus), "suspicious")
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkChunkFill isolates the Table→ColumnChunk transposition cost.
func BenchmarkChunkFill(b *testing.B) {
	_, dirty := streamBenchSetup(b, 50000)
	n := dirty.NumRows()
	ck := dataset.NewColumnChunk(dirty.Schema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < n; lo += batchChunkRows {
			hi := min(lo+batchChunkRows, n)
			dirty.ChunkInto(ck, lo, hi)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
