package audit

import (
	"testing"

	"dataaudit/internal/dataset"
)

// Allocation pinning for the columnar core: the chunked scoring loop —
// chunk fill, signature memo, batched descent, report assembly — must
// reach a steady state that allocates nothing per chunk, and the
// streaming pipeline must recycle its ColumnChunk buffers through the
// free list instead of building fresh ones per chunk.

// TestCheckChunkZeroAlloc pins the columnar inner loop at zero heap
// allocations per chunk once warm. The warm-up pass covers the whole
// fixture so every buffer (partition slabs, finding arenas, the
// signature memo's table and arena) has grown to its high-water mark
// and every distinct row signature is cached.
func TestCheckChunkZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	m, dirty := streamQUIS(t)
	n := dirty.NumRows()
	ck := dataset.NewColumnChunk(dirty.Schema())
	scratch := NewChunkScratch(m)
	for lo := 0; lo < n; lo += batchChunkRows {
		hi := min(lo+batchChunkRows, n)
		dirty.ChunkInto(ck, lo, hi)
		m.CheckChunk(ck, int64(lo), scratch)
	}

	lo := 0
	allocs := testing.AllocsPerRun(100, func() {
		hi := min(lo+batchChunkRows, n)
		dirty.ChunkInto(ck, lo, hi)
		m.CheckChunk(ck, int64(lo), scratch)
		lo += batchChunkRows
		if lo >= n {
			lo = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("CheckChunk allocated %.1f times per chunk in steady state, want 0", allocs)
	}
}

// chunkSpySource wraps a ChunkSource and records the identity of every
// *ColumnChunk the caller hands it, so a test can count how many
// distinct chunk buffers a whole streaming audit ever used.
type chunkSpySource struct {
	inner  dataset.ChunkSource
	seen   map[*dataset.ColumnChunk]int
	chunks int
}

func (s *chunkSpySource) Schema() *dataset.Schema { return s.inner.Schema() }

func (s *chunkSpySource) Next(buf []dataset.Value) (int64, error) { return s.inner.Next(buf) }

func (s *chunkSpySource) NextChunk(ck *dataset.ColumnChunk, max int) (int, error) {
	s.seen[ck]++
	s.chunks++
	return s.inner.NextChunk(ck, max)
}

// TestAuditStreamReusesChunkBuffers proves the stream's ColumnChunk
// buffers are recycled: across a 55k-row audit in 64-row chunks (several
// hundred chunk fills) the reader only ever presents the workers+1
// buffers the free list was seeded with.
func TestAuditStreamReusesChunkBuffers(t *testing.T) {
	m, dirty := streamQUIS(t)
	const workers = 2
	spy := &chunkSpySource{
		inner: dataset.NewTableSource(dirty),
		seen:  make(map[*dataset.ColumnChunk]int),
	}
	if _, err := m.AuditStream(spy, StreamOptions{ChunkSize: 64, Workers: workers, TopK: 10}); err != nil {
		t.Fatal(err)
	}
	minChunks := dirty.NumRows() / 64
	if spy.chunks < minChunks {
		t.Fatalf("stream filled only %d chunks, expected at least %d", spy.chunks, minChunks)
	}
	if len(spy.seen) > workers+1 {
		t.Fatalf("stream used %d distinct chunk buffers over %d fills, want at most workers+1 = %d",
			len(spy.seen), spy.chunks, workers+1)
	}
}
