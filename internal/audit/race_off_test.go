//go:build !race

package audit

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation changes heap accounting.
const raceEnabled = false
