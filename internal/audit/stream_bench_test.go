package audit

import (
	"fmt"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// benchStreamFixture caches one polluted QUIS table + model across
// benchmark runs (induction dominates setup, not the measured loop).
var benchStreamFixture struct {
	rows  int
	model *Model
	table *dataset.Table
}

func streamBenchSetup(b *testing.B, rows int) (*Model, *dataset.Table) {
	b.Helper()
	if benchStreamFixture.rows != rows {
		sample, err := quis.Generate(quis.Params{NumRecords: rows, Seed: 2003})
		if err != nil {
			b.Fatal(err)
		}
		plan := pollute.Plan{Cell: []pollute.Configured{
			{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
			{Prob: 0.01, P: &pollute.NullValuePolluter{}},
		}}
		dirty, _ := pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))
		m, err := Induce(dirty, Options{MinConfidence: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		benchStreamFixture.rows, benchStreamFixture.model, benchStreamFixture.table = rows, m, dirty
	}
	return benchStreamFixture.model, benchStreamFixture.table
}

// BenchmarkAuditBatch is the baseline: batch scoring materializes one
// RecordReport per row, so B/op grows linearly with the table
// (go test -bench 'AuditBatch|AuditStream' -benchmem ./internal/audit).
func BenchmarkAuditBatch(b *testing.B) {
	for _, rows := range []int{50000} {
		m, dirty := streamBenchSetup(b, rows)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("rows=%d/workers=%d", rows, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := m.AuditTableParallel(dirty, workers)
					b.ReportMetric(float64(res.NumSuspicious()), "suspicious")
				}
			})
		}
	}
}

// BenchmarkAuditStream scores the same rows through the bounded-memory
// pipeline: retained state is O(ChunkSize × Workers + TopK), so B/op
// stays a small fraction of the batch path's (the residual scales with
// the number of *suspicious* rows, whose findings are transiently
// allocated, not with the table).
func BenchmarkAuditStream(b *testing.B) {
	for _, rows := range []int{50000} {
		m, dirty := streamBenchSetup(b, rows)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("rows=%d/workers=%d", rows, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{
						Workers: workers, TopK: 100,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.NumSuspicious), "suspicious")
				}
			})
		}
	}
}
