package audit

import (
	"testing"

	"dataaudit/internal/dataset"
)

// BenchmarkCheckRow measures steady-state single-record scoring — the
// innermost loop of every audit surface (batch, parallel, stream, monitor
// folds, auditd routes). With a per-worker ScoreScratch this is the
// zero-allocation path: allocs/op must stay 0 (the CI bench gate enforces
// it against the committed BENCH_core.json baseline).
func BenchmarkCheckRow(b *testing.B) {
	m, dirty := streamBenchSetup(b, 50000)
	row := make([]dataset.Value, dirty.NumCols())
	n := dirty.NumRows()
	scratch := NewScoreScratch(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dirty.RowInto(i%n, row)
		m.CheckRowScratch(row, scratch)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
