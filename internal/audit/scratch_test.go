package audit

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/quis"
	"dataaudit/internal/stats"
)

// checkRowReference is the pre-scratch scoring path, kept verbatim as the
// differential oracle: per-attribute Predict with a freshly allocated
// distribution, findings accumulated in a fresh slice. CheckRowScratch
// must reproduce its output bit for bit.
func checkRowReference(m *Model, row []dataset.Value) RecordReport {
	rep := RecordReport{Row: -1, ID: -1}
	for _, am := range m.Attrs {
		dist := am.Classifier.Predict(row)
		if dist.N() <= 0 {
			continue
		}
		cHat, pHat := dist.Best()
		obs := am.ClassIndex(row[am.Class])
		f := Finding{
			Attr:       am.Class,
			Observed:   obs,
			Predicted:  cHat,
			PHat:       pHat,
			N:          dist.N(),
			Suggestion: am.SuggestedValue(cHat),
		}
		if obs >= 0 {
			f.PObs = dist.P(obs)
		}
		if obs != cHat {
			f.ErrorConf = stats.ErrorConfidence(pHat, f.PObs, dist.N(), m.Opts.ConfLevel)
		}
		if f.ErrorConf > 0 {
			rep.Findings = append(rep.Findings, f)
			if f.ErrorConf > rep.ErrorConf {
				rep.ErrorConf = f.ErrorConf
				rep.Best = &rep.Findings[len(rep.Findings)-1]
			}
		}
	}
	rep.repointBest()
	rep.Suspicious = rep.ErrorConf >= m.Opts.MinConfidence
	return rep
}

// auditTableReference scores a table through the reference path. The
// quality dimensions have no row-at-a-time reference implementation of
// their own — TableDims is the independently chunked accumulator — so the
// byte-identity the differential asserts covers the scoring paths'
// agreement with it.
func auditTableReference(m *Model, tab *dataset.Table) *Result {
	res := &Result{Reports: make([]RecordReport, tab.NumRows()), NumAttrs: m.Schema.Len(), Dims: TableDims(tab)}
	row := make([]dataset.Value, tab.NumCols())
	for r := 0; r < tab.NumRows(); r++ {
		tab.RowInto(r, row)
		rep := checkRowReference(m, row)
		rep.Row = r
		rep.ID = tab.ID(r)
		res.Reports[r] = rep
	}
	return res
}

// gobBytes serializes a Result with the wall-time field zeroed, for
// byte-identity comparison.
func gobBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	cp := *res
	cp.CheckTime = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScratchDifferentialQUIS is the tentpole contract: on the polluted
// QUIS table, the scratch-based scoring core (sequential, parallel and
// compatibility CheckRow) produces reports byte-identical to the
// reference path, and the suspicious ranking is unchanged.
func TestScratchDifferentialQUIS(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fixture is expensive")
	}
	m, dirty := streamQUIS(t)
	want := auditTableReference(m, dirty)
	wantBytes := gobBytes(t, want)

	got := m.AuditTable(dirty)
	if !bytes.Equal(wantBytes, gobBytes(t, got)) {
		t.Fatal("AuditTable reports are not byte-identical to the reference path")
	}
	gotPar := m.AuditTableParallel(dirty, 4)
	if !bytes.Equal(wantBytes, gobBytes(t, gotPar)) {
		t.Fatal("AuditTableParallel reports are not byte-identical to the reference path")
	}

	// Per-report strict equality (catches nil-vs-empty slice drift that
	// gob canonicalizes away) on a sample plus every suspicious row.
	row := make([]dataset.Value, dirty.NumCols())
	scratch := NewScoreScratch(m)
	for r := 0; r < dirty.NumRows(); r += 97 {
		dirty.RowInto(r, row)
		wantRep := want.Reports[r]
		gotRep := m.CheckRowScratch(row, scratch).Detach()
		gotRep.Row, gotRep.ID = wantRep.Row, wantRep.ID
		if !reflect.DeepEqual(wantRep, gotRep) {
			t.Fatalf("row %d: scratch report differs:\nwant %+v\ngot  %+v", r, wantRep, gotRep)
		}
	}

	// The ranking consumed by reports and the serving layer.
	wantSus, gotSus := want.Suspicious(), got.Suspicious()
	if len(wantSus) != len(gotSus) {
		t.Fatalf("suspicious count differs: want %d, got %d", len(wantSus), len(gotSus))
	}
	for i := range wantSus {
		if wantSus[i].Row != gotSus[i].Row || wantSus[i].ErrorConf != gotSus[i].ErrorConf {
			t.Fatalf("rank %d differs: want row %d conf %.9f, got row %d conf %.9f",
				i, wantSus[i].Row, wantSus[i].ErrorConf, gotSus[i].Row, gotSus[i].ErrorConf)
		}
	}
}

// TestScratchDifferentialAllInducers runs the same differential contract
// once per induction algorithm, so every classifier's PredictInto is
// proven equivalent to its Predict inside the full scoring loop.
func TestScratchDifferentialAllInducers(t *testing.T) {
	sample, err := quis.Generate(quis.Params{NumRecords: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A small slice of the sample keeps the slow families (kNN scores
	// against every stored instance) tractable.
	tab := dataset.NewTable(sample.Data.Schema())
	for r := 0; r < 800; r++ {
		tab.AppendRow(sample.Data.Row(r))
	}
	for _, kind := range []InducerKind{
		InducerC45Audit, InducerC45, InducerID3,
		InducerNaiveBayes, InducerKNN, InducerOneR, InducerPrism,
	} {
		t.Run(string(kind), func(t *testing.T) {
			m, err := Induce(tab, Options{MinConfidence: 0.8, Inducer: kind})
			if err != nil {
				t.Fatal(err)
			}
			row := make([]dataset.Value, tab.NumCols())
			scratch := NewScoreScratch(m)
			for r := 0; r < tab.NumRows(); r++ {
				tab.RowInto(r, row)
				want := checkRowReference(m, row)
				got := m.CheckRowScratch(row, scratch).Detach()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("row %d: scratch report differs:\nwant %+v\ngot  %+v", r, want, got)
				}
				compat := m.CheckRow(row)
				if !reflect.DeepEqual(want, compat) {
					t.Fatalf("row %d: CheckRow report differs from reference", r)
				}
			}
		})
	}
}

// TestCheckRowScratchZeroAlloc pins the allocation contract: once warm, a
// CheckRowScratch call performs zero heap allocations.
func TestCheckRowScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	m, dirty := streamQUIS(t)
	row := make([]dataset.Value, dirty.NumCols())
	scratch := NewScoreScratch(m)
	// Warm the arena over a spread of rows (including suspicious ones).
	for r := 0; r < dirty.NumRows(); r += 11 {
		dirty.RowInto(r, row)
		m.CheckRowScratch(row, scratch)
	}
	r := 0
	allocs := testing.AllocsPerRun(500, func() {
		dirty.RowInto(r%dirty.NumRows(), row)
		m.CheckRowScratch(row, scratch)
		r += 13
	})
	if allocs != 0 {
		t.Fatalf("CheckRowScratch allocated %.1f times per run in steady state, want 0", allocs)
	}
}

// TestDetachOutlivesScratch proves the Detach contract: a detached report
// is unaffected by scratch reuse, and its Best points into its own
// findings.
func TestDetachOutlivesScratch(t *testing.T) {
	m, dirty := streamQUIS(t)
	row := make([]dataset.Value, dirty.NumCols())
	scratch := NewScoreScratch(m)

	// Find a row with findings.
	var detached RecordReport
	found := false
	for r := 0; r < dirty.NumRows() && !found; r++ {
		dirty.RowInto(r, row)
		rep := m.CheckRowScratch(row, scratch)
		if len(rep.Findings) > 0 {
			detached = rep.Detach()
			found = true
		}
	}
	if !found {
		t.Fatal("no row with findings in the fixture")
	}
	want := detached.Detach() // deep copy for comparison

	// Hammer the scratch with other rows; the detached report must not move.
	for r := 0; r < 1000; r++ {
		dirty.RowInto(r%dirty.NumRows(), row)
		m.CheckRowScratch(row, scratch)
	}
	if !reflect.DeepEqual(want, detached) {
		t.Fatal("detached report changed when the scratch was reused")
	}
	if detached.Best != nil {
		ok := false
		for i := range detached.Findings {
			if detached.Best == &detached.Findings[i] {
				ok = true
			}
		}
		if !ok {
			t.Fatal("detached Best does not point into the detached findings")
		}
	}
}

// TestScratchGrowsAcrossModels verifies a scratch sized for one model is
// safely reusable with a wider one (the buffers regrow on demand).
func TestScratchGrowsAcrossModels(t *testing.T) {
	m, dirty := streamQUIS(t)
	scratch := &ScoreScratch{} // deliberately unsized
	row := make([]dataset.Value, dirty.NumCols())
	dirty.RowInto(0, row)
	want := checkRowReference(m, row)
	got := m.CheckRowScratch(row, scratch).Detach()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("zero-value scratch produced a different report")
	}
}
