package audit

import "testing"

// TestAuditWithSkippedClasses is a regression test for the sigMemo grid
// builder: m.Attrs is position-indexed, so when SkipClasses leaves fewer
// attribute models than schema columns, a numeric column whose index is
// >= len(m.Attrs) must still find its discretizer (by Class, not by
// position). Before the fix, AuditTable panicked with an out-of-range
// index while assembling the signature grid.
func TestAuditWithSkippedClasses(t *testing.T) {
	tab := engineTable(t, 2000, 78)
	// Skipping KBM drops the model count to 3 while numeric DISP keeps
	// schema index 3 — exactly the shape that used to panic.
	m, err := Induce(tab, Options{SkipClasses: []string{"KBM"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Attrs) != 3 {
		t.Fatalf("expected 3 attribute models, got %d", len(m.Attrs))
	}
	res := m.AuditTable(tab)
	if len(res.Reports) != tab.NumRows() {
		t.Fatalf("expected %d reports, got %d", tab.NumRows(), len(res.Reports))
	}
}
