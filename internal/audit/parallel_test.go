package audit

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// pollutedQUIS generates a QUIS sample, corrupts it with wrong-value and
// null-value polluters (§4.2), and induces a model on the dirty table —
// the workload the parallel-equivalence contract is stated against.
func pollutedQUIS(t testing.TB) (*Model, *dataset.Table) {
	t.Helper()
	sample, err := quis.Generate(quis.Params{NumRecords: 30000, Seed: 2003})
	if err != nil {
		t.Fatal(err)
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	dirty, _ := pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))
	m, err := Induce(dirty, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return m, dirty
}

// TestAuditTableParallelMatchesSequential is the determinism contract:
// sharded scoring must reproduce the sequential reports exactly — same
// order, same findings, same confidences — on a polluted QUIS sample. Run
// under -race this also proves the model is safe to share across workers.
func TestAuditTableParallelMatchesSequential(t *testing.T) {
	m, dirty := pollutedQUIS(t)
	want := m.AuditTable(dirty)
	if want.NumSuspicious() == 0 {
		t.Fatal("fixture produced no suspicious records; the comparison would be vacuous")
	}

	for _, workers := range []int{0, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := m.AuditTableParallel(dirty, workers)
			if len(got.Reports) != len(want.Reports) {
				t.Fatalf("got %d reports, want %d", len(got.Reports), len(want.Reports))
			}
			for r := range want.Reports {
				if !reflect.DeepEqual(got.Reports[r], want.Reports[r]) {
					t.Fatalf("report %d differs:\ngot  %+v\nwant %+v", r, got.Reports[r], want.Reports[r])
				}
			}
			if got.NumSuspicious() != want.NumSuspicious() {
				t.Fatalf("suspicious: got %d, want %d", got.NumSuspicious(), want.NumSuspicious())
			}
		})
	}
}

// TestAuditTableParallelSmallTableFallsBack checks the sequential
// fallback below the fan-out threshold still fills every report.
func TestAuditTableParallelSmallTableFallsBack(t *testing.T) {
	tab := engineTable(t, 100, 9)
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := m.AuditTableParallel(tab, 4)
	if len(res.Reports) != 100 {
		t.Fatalf("got %d reports, want 100", len(res.Reports))
	}
	for r, rep := range res.Reports {
		if rep.Row != r || rep.ID != tab.ID(r) {
			t.Fatalf("report %d misaligned: %+v", r, rep)
		}
	}
}

// TestAuditTableParallelConcurrentCallers shares one model across many
// goroutines, each scoring the full table — the serving layer's usage
// pattern (one loaded model, many concurrent audit requests).
func TestAuditTableParallelConcurrentCallers(t *testing.T) {
	tab := engineTable(t, 2000, 73)
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := m.AuditTable(tab).NumSuspicious()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			res := m.AuditTableParallel(tab, workers)
			if got := res.NumSuspicious(); got != want {
				errs <- fmt.Errorf("workers=%d: suspicious %d, want %d", workers, got, want)
			}
		}(1 + i%4)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResultMerge checks that scoring a table in horizontal shards and
// merging equals scoring it whole.
func TestResultMerge(t *testing.T) {
	tab := engineTable(t, 2400, 74)
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := m.AuditTable(tab)

	half := tab.NumRows() / 2
	shard1, shard2 := cloneRows(tab, 0, half), cloneRows(tab, half, tab.NumRows())
	merged, err := MergeResults(m.AuditTable(shard1), m.AuditTable(shard2))
	if err != nil {
		t.Fatal(err)
	}

	if len(merged.Reports) != len(want.Reports) {
		t.Fatalf("got %d reports, want %d", len(merged.Reports), len(want.Reports))
	}
	for r := range want.Reports {
		g, w := merged.Reports[r], want.Reports[r]
		if g.Row != w.Row || g.ErrorConf != w.ErrorConf || g.Suspicious != w.Suspicious ||
			len(g.Findings) != len(w.Findings) {
			t.Fatalf("report %d differs after merge:\ngot  %+v\nwant %+v", r, g, w)
		}
		if (g.Best == nil) != (w.Best == nil) {
			t.Fatalf("report %d: Best nil mismatch", r)
		}
		if g.Best != nil && !reflect.DeepEqual(*g.Best, *w.Best) {
			t.Fatalf("report %d: Best differs: got %+v want %+v", r, *g.Best, *w.Best)
		}
	}
	if merged.NumSuspicious() != want.NumSuspicious() {
		t.Fatalf("suspicious: got %d, want %d", merged.NumSuspicious(), want.NumSuspicious())
	}
}

// TestMergeRejectsWidthMismatch checks that results produced against
// relations of different widths — whose finding attribute indices would
// silently cross-reference the wrong columns — fail with the typed
// dataset.ErrRowWidth instead of merging.
func TestMergeRejectsWidthMismatch(t *testing.T) {
	a := &Result{NumAttrs: 8}
	b := &Result{NumAttrs: 5}
	if err := a.Merge(b); !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("want ErrRowWidth, got %v", err)
	}
	if _, err := MergeResults(a, b); !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("MergeResults: want ErrRowWidth, got %v", err)
	}

	// A report whose findings point past the declared width is equally
	// rejected, even when the widths agree.
	bad := &Result{NumAttrs: 8, Reports: []RecordReport{{
		Row: 0, Findings: []Finding{{Attr: 9, ErrorConf: 0.9}},
	}}}
	if err := (&Result{NumAttrs: 8}).Merge(bad); !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("out-of-width finding: want ErrRowWidth, got %v", err)
	}

	// Unknown widths (hand-built results) still merge.
	if err := (&Result{}).Merge(&Result{}); err != nil {
		t.Fatalf("merging width-less results: %v", err)
	}
}

// cloneRows copies rows [lo, hi) into a fresh table.
func cloneRows(tab *dataset.Table, lo, hi int) *dataset.Table {
	out := dataset.NewTable(tab.Schema())
	for r := lo; r < hi; r++ {
		out.AppendRow(tab.Row(r))
	}
	return out
}
