package audit

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"dataaudit/internal/dataset"
)

// Streaming deviation detection. AuditTable and AuditTableParallel hold
// the whole relation (and one RecordReport per row) in memory, so audit
// memory grows linearly with input size. AuditStream instead pulls rows
// from a dataset.RowSource in bounded chunks, fans the chunks out to the
// same worker-pool scorer, and folds each chunk into an incremental
// StreamResult the moment it is scored: running counts, per-attribute
// deviation tallies and the top-K suspicious records by error confidence
// (a bounded heap). Peak memory is O(ChunkSize × Workers + TopK),
// independent of the number of rows — the §2.2 "check online" path at
// warehouse scale.

// ErrRowLimit is the sentinel wrapped by RowLimitError when a stream
// exceeds StreamOptions.MaxRows. Test with errors.Is.
var ErrRowLimit = errors.New("audit: row limit exceeded")

// RowLimitError reports a stream that was cut off at MaxRows; it wraps
// ErrRowLimit.
type RowLimitError struct {
	// Limit is the configured StreamOptions.MaxRows.
	Limit int64
}

func (e *RowLimitError) Error() string {
	return fmt.Sprintf("audit: stream exceeds the %d-row limit", e.Limit)
}

// Unwrap makes errors.Is(err, ErrRowLimit) true.
func (e *RowLimitError) Unwrap() error { return ErrRowLimit }

// StreamOptions configure AuditStream.
type StreamOptions struct {
	// ChunkSize is the number of rows per scoring unit (default 1024).
	// Smaller chunks bound memory tighter; larger chunks amortize fan-out
	// overhead.
	ChunkSize int
	// Workers is the scoring pool size (default runtime.NumCPU, the same
	// meaning as AuditTableParallel's workers argument).
	Workers int
	// TopK caps the suspicious records retained in StreamResult.Top
	// (default 100). TopK < 0 retains every suspicious record — then
	// memory is bounded by the number of suspicious rows, not by K.
	TopK int
	// MaxRows, when positive, aborts the stream with a RowLimitError once
	// more than MaxRows rows arrive — the serving layer's batch limit.
	MaxRows int64
	// OnSuspicious, when non-nil, is called for every suspicious record in
	// row order, as soon as the record's chunk is scored — the hook the
	// NDJSON streaming endpoint emits findings through while the upload is
	// still being read. Returning an error aborts the stream with that
	// error. The report (and its findings) must not be retained.
	OnSuspicious func(rep *RecordReport) error
	// OnRow, when non-nil, is called from the reader goroutine for every
	// row pulled from the source, in source order, before the row is
	// scored — the hook the monitoring layer samples rows through (e.g.
	// into a re-induction reservoir). The row buffer is recycled between
	// calls and must be copied if retained.
	OnRow func(row []dataset.Value, id int64)
}

// withDefaults fills unset fields.
func (o StreamOptions) withDefaults() StreamOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1024
	}
	if o.TopK == 0 {
		o.TopK = 100
	}
	return o
}

// AttrTally accumulates the deviations one audited attribute produced over
// a stream — the per-attribute view a batch Result offers by scanning all
// reports, maintained incrementally here.
type AttrTally struct {
	// Attr is the audited schema column (resolve its name with
	// Schema.Attr(Attr)). The tally slice itself is ordered like
	// Model.Attrs — only modelled attributes are tallied.
	Attr int
	// Deviations counts findings with positive error confidence.
	Deviations int64
	// Suspicious counts findings at or above the minimum confidence.
	Suspicious int64
	// MaxErrorConf is the largest error confidence seen.
	MaxErrorConf float64
	// SumErrorConf accumulates error confidences (mean = Sum/Deviations).
	SumErrorConf float64
	// Nulls counts the attribute's null cells among the audited rows —
	// the windowed completeness observation the monitor's drift
	// detectors consume.
	Nulls int64
}

// StreamResult is the incremental outcome of a streaming audit.
type StreamResult struct {
	// RowsChecked counts every row pulled from the source.
	RowsChecked int64
	// NumSuspicious counts the rows whose error confidence reached the
	// model's minimum confidence.
	NumSuspicious int64
	// Top holds the top-K suspicious records ranked by descending error
	// confidence (ties by ascending row) — the same ranking
	// (*Result).Suspicious produces, truncated to K.
	Top []RecordReport
	// TopTruncated reports whether suspicious records beyond TopK were
	// dropped from Top (their counts and tallies are still included).
	TopTruncated bool
	// Attrs are the per-attribute deviation tallies, one per modelled
	// attribute, aligned with Model.Attrs.
	Attrs []AttrTally
	// Dims holds the observed per-attribute quality dimensions
	// (completeness, uniqueness) of every scored row, one entry per
	// schema column — byte-identical to the batch paths' Result.Dims on
	// the same rows.
	Dims []AttrDim
	// CheckTime is the wall time of the whole stream, including source I/O.
	CheckTime time.Duration
}

// streamChunk is one scoring unit travelling reader → worker → collector.
// The rows live in a typed ColumnChunk (the columnar scoring core's
// native representation); the chunk buffers are recycled through the
// free list, so a stream reaches a steady state with no per-chunk
// allocation.
type streamChunk struct {
	seq      int
	firstRow int64
	data     *dataset.ColumnChunk
}

// chunkResult is a scored chunk: only the suspicious reports survive.
type chunkResult struct {
	seq        int
	rows       int
	suspicious []RecordReport
	tallies    []AttrTally
}

// AuditStream checks every record pulled from src against the structure
// model with bounded memory. The suspicious set and its confidence
// ranking are identical to AuditTable's on the same rows (truncated to
// TopK); only the non-suspicious per-row reports are not materialized.
func (m *Model) AuditStream(src dataset.RowSource, opts StreamOptions) (*StreamResult, error) {
	opts = opts.withDefaults()
	width := m.Schema.Len()
	if sw := src.Schema().Len(); sw != width {
		return nil, &dataset.RowWidthError{Got: sw, Want: width}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	start := time.Now()

	work := make(chan *streamChunk, workers)
	results := make(chan chunkResult, workers)
	free := make(chan *streamChunk, workers+1)
	for i := 0; i < workers+1; i++ {
		free <- &streamChunk{data: dataset.NewColumnChunk(src.Schema())}
	}

	// slots maps a schema column to its tally index once, so the per-
	// finding lookup in the scoring hot loop is O(1).
	slots := make([]int, width)
	for i, am := range m.Attrs {
		slots[am.Class] = i
	}

	// Workers: score chunks with the shared immutable model, keep only
	// the suspicious reports plus the chunk's deviation tallies, recycle
	// the chunk buffer.
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		var done sync.WaitGroup
		done.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer done.Done()
				scratch := NewChunkScratch(m)
				for ck := range work {
					results <- m.scoreChunk(ck, slots, scratch)
					free <- ck
				}
			}()
		}
		done.Wait()
	}()

	// Collector: fold scored chunks in sequence order so counters, the
	// top-K heap and the OnSuspicious callback all observe rows in the
	// deterministic table order regardless of worker scheduling.
	res := &StreamResult{Attrs: make([]AttrTally, len(m.Attrs))}
	for i, am := range m.Attrs {
		res.Attrs[i].Attr = am.Class
	}
	top := &topKHeap{}
	collectErr := make(chan error, 1)
	collectDone := make(chan struct{})
	abort := make(chan struct{})
	go func() {
		defer close(collectDone)
		pending := make(map[int]chunkResult)
		next := 0
		failed := false
		for cr := range results {
			pending[cr.seq] = cr
			for {
				cur, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if failed {
					continue // drain without folding
				}
				if err := res.fold(cur, top, opts); err != nil {
					collectErr <- err
					failed = true
					close(abort) // stop the reader from queueing more work
				}
			}
		}
		if !failed {
			collectErr <- nil
		}
	}()

	// Reader: fill chunks from the source on this goroutine (sources are
	// single-pass and not concurrency-safe). The dimension tracker rides
	// the reader so a single accumulator observes every queued chunk
	// without cross-goroutine merging.
	dims := NewDimTracker(src.Schema())
	readErr := m.readChunks(src, opts, width, work, free, abort, dims)

	close(work)
	<-workersDone
	close(results)
	<-collectDone
	cbErr := <-collectErr

	if readErr != nil {
		return nil, readErr
	}
	if cbErr != nil {
		return nil, cbErr
	}

	res.Top = top.ranked()
	res.TopTruncated = opts.TopK >= 0 && res.NumSuspicious > int64(len(res.Top))
	res.Dims = dims.Dims()
	res.CheckTime = time.Since(start)
	return res, nil
}

// readChunks pulls rows from src into recycled column chunks and queues
// them for scoring, using the source's native NextChunk when it has one
// (CSVSource and TableSource decode straight into the columnar form) and
// the generic FillChunk adapter otherwise. It returns the first source
// error (io.EOF is a clean end) and nil on abort (the collector already
// holds the real error).
//
// Semantics match the row-at-a-time reader exactly: OnRow fires for
// every accepted row in source order before the row's chunk is queued; a
// row beyond MaxRows aborts with a RowLimitError before its OnRow and
// without queueing its chunk; rows preceding a malformed row still get
// their OnRow before the error is returned.
func (m *Model) readChunks(src dataset.RowSource, opts StreamOptions, width int, work chan<- *streamChunk, free <-chan *streamChunk, abort <-chan struct{}, dims *DimTracker) error {
	cs, fast := src.(dataset.ChunkSource)
	var rowBuf []dataset.Value
	if !fast || opts.OnRow != nil {
		rowBuf = make([]dataset.Value, width)
	}
	var rows int64
	seq := 0
	for {
		var ck *streamChunk
		select {
		case <-abort:
			return nil
		case ck = <-free:
		}
		ck.seq = seq
		ck.firstRow = rows
		ck.data.Reset()

		// Pull at most one row past MaxRows, so the limit fires on the
		// first overflowing row exactly as a row-at-a-time read would.
		target := opts.ChunkSize
		if opts.MaxRows > 0 {
			if rem := opts.MaxRows - rows; rem < int64(target) {
				target = int(rem) + 1
			}
		}
		var n int
		var err error
		if fast {
			n, err = cs.NextChunk(ck.data, target)
		} else {
			n, err = dataset.FillChunk(src, ck.data, rowBuf, target)
		}
		accepted := n
		overflow := opts.MaxRows > 0 && rows+int64(n) > opts.MaxRows
		if overflow {
			accepted = int(opts.MaxRows - rows)
		}
		if opts.OnRow != nil {
			for i := 0; i < accepted; i++ {
				opts.OnRow(ck.data.RowInto(i, rowBuf), ck.data.ID(i))
			}
		}
		if overflow {
			return &RowLimitError{Limit: opts.MaxRows}
		}
		rows += int64(n)
		if err != nil && !errors.Is(err, io.EOF) {
			return err
		}
		if n > 0 {
			seq++
			dims.ObserveChunk(ck.data)
			select {
			case <-abort:
				return nil
			case work <- ck:
			}
		}
		if err != nil {
			return nil // clean io.EOF
		}
	}
}

// scoreChunk runs deviation detection over one chunk using the worker's
// scratch. slots maps schema columns to tally indices (findings only ever
// reference modelled attributes). Non-suspicious rows live and die inside
// the scratch — only the suspicious minority is detached and retained.
func (m *Model) scoreChunk(ck *streamChunk, slots []int, scratch *ChunkScratch) chunkResult {
	cr := chunkResult{seq: ck.seq, rows: ck.data.Rows(), tallies: make([]AttrTally, len(m.Attrs))}
	for i, am := range m.Attrs {
		cr.tallies[i].Attr = am.Class
		cr.tallies[i].Nulls = ck.data.Col(am.Class).NullCount(cr.rows)
	}
	reps := m.CheckChunk(ck.data, ck.firstRow, scratch)
	for i := range reps {
		rep := &reps[i]
		tallyReport(rep, slots, cr.tallies, m.Opts.MinConfidence)
		if rep.Suspicious {
			cr.suspicious = append(cr.suspicious, rep.Detach())
		}
	}
	return cr
}

// tallyReport folds one report's findings into the per-attribute tallies;
// slots maps schema columns to tally indices. This is the single
// definition of the tally semantics — the streaming engine (scoreChunk)
// and the batch condenser (TallyResult) both use it, so the two paths
// cannot drift apart.
func tallyReport(rep *RecordReport, slots []int, tallies []AttrTally, minConf float64) {
	for fi := range rep.Findings {
		f := &rep.Findings[fi]
		t := &tallies[slots[f.Attr]]
		t.Deviations++
		t.SumErrorConf += f.ErrorConf
		if f.ErrorConf > t.MaxErrorConf {
			t.MaxErrorConf = f.ErrorConf
		}
		if f.ErrorConf >= minConf {
			t.Suspicious++
		}
	}
}

// TallyResult condenses a batch Result into the suspicious count and the
// per-attribute tallies a StreamResult carries natively (aligned with
// Model.Attrs), so batch and stream observations fold identically in
// downstream consumers like the quality monitor.
func (m *Model) TallyResult(res *Result) (suspicious int64, tallies []AttrTally) {
	slots := make([]int, m.Schema.Len())
	tallies = make([]AttrTally, len(m.Attrs))
	for i, am := range m.Attrs {
		slots[am.Class] = i
		tallies[i].Attr = am.Class
		if am.Class < len(res.Dims) {
			tallies[i].Nulls = res.Dims[am.Class].Nulls
		}
	}
	for ri := range res.Reports {
		rep := &res.Reports[ri]
		if rep.Suspicious {
			suspicious++
		}
		tallyReport(rep, slots, tallies, m.Opts.MinConfidence)
	}
	return suspicious, tallies
}

// fold merges one scored chunk (arriving in sequence order) into the
// running result.
func (res *StreamResult) fold(cr chunkResult, top *topKHeap, opts StreamOptions) error {
	res.RowsChecked += int64(cr.rows)
	res.NumSuspicious += int64(len(cr.suspicious))
	for i := range cr.tallies {
		t, u := &res.Attrs[i], &cr.tallies[i]
		t.Deviations += u.Deviations
		t.Suspicious += u.Suspicious
		t.SumErrorConf += u.SumErrorConf
		t.Nulls += u.Nulls
		if u.MaxErrorConf > t.MaxErrorConf {
			t.MaxErrorConf = u.MaxErrorConf
		}
	}
	for i := range cr.suspicious {
		rep := &cr.suspicious[i]
		if opts.OnSuspicious != nil {
			if err := opts.OnSuspicious(rep); err != nil {
				return err
			}
		}
		top.offer(rep, opts.TopK)
	}
	return nil
}

// topKHeap retains the K best suspicious reports under the total order
// "higher error confidence first, earlier row breaks ties" — exactly the
// ranking (*Result).Suspicious produces (its stable sort keeps the row
// order of equal confidences). The heap is a min-heap on that order, so
// the root is the weakest retained report.
type topKHeap struct {
	reps []RecordReport
}

// rankedBefore reports whether a outranks b.
func rankedBefore(a, b *RecordReport) bool {
	if a.ErrorConf != b.ErrorConf {
		return a.ErrorConf > b.ErrorConf
	}
	return a.Row < b.Row
}

func (h *topKHeap) Len() int           { return len(h.reps) }
func (h *topKHeap) Less(i, j int) bool { return rankedBefore(&h.reps[j], &h.reps[i]) }
func (h *topKHeap) Swap(i, j int)      { h.reps[i], h.reps[j] = h.reps[j], h.reps[i] }
func (h *topKHeap) Push(x any)         { h.reps = append(h.reps, x.(RecordReport)) }
func (h *topKHeap) Pop() any {
	last := h.reps[len(h.reps)-1]
	h.reps = h.reps[:len(h.reps)-1]
	return last
}

// offer inserts the report if it ranks within the best k (k < 0: no cap).
// Reports arriving here were already detached by scoreChunk, so the heap
// can take ownership without another copy.
func (h *topKHeap) offer(rep *RecordReport, k int) {
	if k == 0 {
		return
	}
	if k > 0 && len(h.reps) >= k {
		// Weakest retained report is at the root; skip reports that do
		// not outrank it.
		if !rankedBefore(rep, &h.reps[0]) {
			return
		}
		heap.Pop(h)
	}
	heap.Push(h, *rep)
}

// ranked drains the heap into descending rank order.
func (h *topKHeap) ranked() []RecordReport {
	out := make([]RecordReport, len(h.reps))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(RecordReport)
	}
	// The heap order is total and strict (rows are unique), so the drain
	// is already exact; the assertion below is cheap and keeps the
	// contract honest under -race test runs.
	if !sort.SliceIsSorted(out, func(i, j int) bool { return rankedBefore(&out[i], &out[j]) }) {
		panic("audit: topKHeap drain out of order")
	}
	return out
}
