package audit

import (
	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// ScoreScratch is the per-worker reusable state of the scoring hot path:
// one prediction distribution buffer plus a findings arena. Every scoring
// surface (CheckRow, AuditTable, AuditTableParallel, AuditStream) threads
// one scratch per goroutine through CheckRowScratch, so steady-state
// record checking performs zero heap allocations — the buffers grow to
// the model's high-water mark once and are reused for every subsequent
// row.
//
// A ScoreScratch must not be shared between goroutines.
type ScoreScratch struct {
	dist     mlcore.Distribution
	findings []Finding
	rep      RecordReport
}

// NewScoreScratch returns a scratch pre-sized for the model: the
// distribution buffer covers the widest class domain and the findings
// arena one finding per modelled attribute (the per-row maximum).
func NewScoreScratch(m *Model) *ScoreScratch {
	maxK := 0
	for _, am := range m.Attrs {
		if am.K > maxK {
			maxK = am.K
		}
	}
	s := &ScoreScratch{findings: make([]Finding, 0, len(m.Attrs))}
	s.dist.Reset(maxK)
	return s
}

// CheckRowScratch runs deviation detection for one record using the
// scratch's buffers. The returned report (including its Findings slice
// and Best pointer) is backed by the scratch and is only valid until the
// next CheckRowScratch call on the same scratch; callers that retain the
// report must Detach it first. The report's values are identical to
// CheckRow's on the same row.
func (m *Model) CheckRowScratch(row []dataset.Value, s *ScoreScratch) *RecordReport {
	rep := &s.rep
	*rep = RecordReport{Row: -1, ID: -1}
	s.findings = s.findings[:0]
	best := -1
	for _, am := range m.Attrs {
		am.Classifier.PredictInto(row, &s.dist)
		n := s.dist.N()
		if n <= 0 {
			continue // no evidence: the classifier offers no opinion
		}
		cHat, pHat := s.dist.Best()
		obs := am.ClassIndex(row[am.Class])
		if obs == cHat {
			continue // errorConf stays 0, no finding
		}
		// A null observed value (obs < 0) has no support in the
		// distribution; treat it as probability zero — this is how the
		// tool addresses the completeness dimension (§2.2: "substituting
		// an erroneously missing value by the suggestion of a data
		// auditing application").
		var pObs float64
		if obs >= 0 {
			pObs = s.dist.P(obs)
		}
		errConf := stats.ErrorConfidence(pHat, pObs, n, m.Opts.ConfLevel)
		if errConf <= 0 {
			continue
		}
		s.findings = append(s.findings, Finding{
			Attr:       am.Class,
			Observed:   obs,
			Predicted:  cHat,
			PHat:       pHat,
			PObs:       pObs,
			N:          n,
			ErrorConf:  errConf,
			Suggestion: am.SuggestedValue(cHat),
		})
		if errConf > rep.ErrorConf {
			rep.ErrorConf = errConf
			best = len(s.findings) - 1
		}
	}
	if len(s.findings) > 0 {
		rep.Findings = s.findings
	}
	if best >= 0 {
		rep.Best = &rep.Findings[best]
	}
	rep.Suspicious = rep.ErrorConf >= m.Opts.MinConfidence
	return rep
}

// Detach returns a self-contained copy of a scratch-backed report: the
// findings are copied into a fresh slice and Best re-pointed into it, so
// the copy stays valid after the scratch is reused.
func (rep *RecordReport) Detach() RecordReport {
	cp := *rep
	cp.Findings = append([]Finding(nil), rep.Findings...)
	cp.repointBest()
	return cp
}
