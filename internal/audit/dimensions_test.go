package audit

import (
	"math"
	"reflect"
	"testing"

	"dataaudit/internal/dataset"
)

func dimsTestTable(t *testing.T) *dataset.Table {
	t.Helper()
	s, err := dataset.NewSchema(
		dataset.NewNominal("grade", "a", "b", "c", "d"),
		dataset.NewNumeric("score", 0, 1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	tab := dataset.NewTable(s)
	for i := 0; i < 300; i++ {
		row := []dataset.Value{dataset.Nom(i % 3), dataset.Num(float64(i % 50))}
		if i%10 == 0 {
			row[0] = dataset.Null()
		}
		if i%4 == 0 {
			row[1] = dataset.Null()
		}
		tab.AppendRow(row)
	}
	return tab
}

func TestTableDims(t *testing.T) {
	tab := dimsTestTable(t)
	dims := TableDims(tab)
	if len(dims) != 2 {
		t.Fatalf("got %d dims, want 2", len(dims))
	}

	grade := &dims[0]
	if grade.Rows != 300 || grade.Nulls != 30 {
		t.Errorf("grade: rows=%d nulls=%d, want 300/30", grade.Rows, grade.Nulls)
	}
	if got := grade.NullRate(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("grade NullRate = %g, want 0.1", got)
	}
	// Domain value "d" never occurs, so 3 of 4 indices are occupied.
	if got := grade.Distinct(); got != 3 {
		t.Errorf("grade Distinct = %d, want 3", got)
	}

	score := &dims[1]
	if score.Rows != 300 || score.Nulls != 75 {
		t.Errorf("score: rows=%d nulls=%d, want 300/75", score.Rows, score.Nulls)
	}
	if got := score.Distinct(); got != 50 {
		t.Errorf("score Distinct = %d, want exact 50 (below sketch capacity)", got)
	}
	wantU := 50.0 / 225.0
	if got := score.Uniqueness(); math.Abs(got-wantU) > 1e-12 {
		t.Errorf("score Uniqueness = %g, want %g", got, wantU)
	}
}

func TestDimsEmptyAndClamp(t *testing.T) {
	var d AttrDim
	if d.NullRate() != 0 || d.Uniqueness() != 0 || d.Distinct() != 0 {
		t.Errorf("zero AttrDim should report zero rates, got %g/%g/%d",
			d.NullRate(), d.Uniqueness(), d.Distinct())
	}
}

// TestDimsPartitionInsensitive merges per-partition trackers in a
// scrambled order and expects the whole-table dims exactly — the property
// the parallel and sharded paths rely on for gob byte-identity.
func TestDimsPartitionInsensitive(t *testing.T) {
	tab := dimsTestTable(t)
	whole := TableDims(tab)

	bounds := []int{0, 17, 18, 100, 231, 300}
	var parts [][]AttrDim
	for i := 1; i < len(bounds); i++ {
		tr := NewDimTracker(tab.Schema())
		ck := dataset.NewColumnChunk(tab.Schema())
		tab.ChunkInto(ck, bounds[i-1], bounds[i])
		tr.ObserveChunk(ck)
		parts = append(parts, tr.Dims())
	}
	merged := CloneDims(parts[2])
	for _, i := range []int{4, 0, 3, 1} {
		MergeDims(merged, parts[i])
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Fatalf("merged partition dims differ from whole-table dims:\n got %+v\nwant %+v", merged, whole)
	}
}

// TestStreamDimsMatchBatch holds the streaming engine's dims to the batch
// path's on the same rows.
func TestStreamDimsMatchBatch(t *testing.T) {
	m, dirty := streamQUIS(t)
	want := m.AuditTable(dirty)
	for _, chunk := range []int{1, 64, 4096} {
		sr, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{ChunkSize: chunk, Workers: 3})
		if err != nil {
			t.Fatalf("AuditStream(chunk=%d): %v", chunk, err)
		}
		if !reflect.DeepEqual(want.Dims, sr.Dims) {
			t.Fatalf("chunk=%d: stream dims differ from batch dims", chunk)
		}
	}
}

// TestTallyNullsMatchStream: the batch condenser's per-attribute null
// counts (pulled from Result.Dims) must equal the streaming tallies'.
func TestTallyNullsMatchStream(t *testing.T) {
	m, dirty := streamQUIS(t)
	res := m.AuditTable(dirty)
	_, batchTallies := m.TallyResult(res)
	sr, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batchTallies) != len(sr.Attrs) {
		t.Fatalf("tally widths differ: %d vs %d", len(batchTallies), len(sr.Attrs))
	}
	for i := range batchTallies {
		if batchTallies[i].Nulls != sr.Attrs[i].Nulls {
			t.Errorf("attr %d: batch nulls %d != stream nulls %d",
				batchTallies[i].Attr, batchTallies[i].Nulls, sr.Attrs[i].Nulls)
		}
	}
}
